package planarsi_test

import (
	"bytes"
	"context"
	"sort"
	"testing"

	"planarsi"
)

// TestPublicIndex exercises the public Index surface: batched Scan
// answers must equal the package-level calls for the same Options, and
// equal seeds must give identical results with and without the Index.
func TestPublicIndex(t *testing.T) {
	g := planarsi.Grid(6, 6)
	patterns := []*planarsi.Graph{
		planarsi.Cycle(4), planarsi.Cycle(3), planarsi.Path(4), planarsi.Star(4),
	}
	opt := planarsi.Options{Seed: 21, MaxRuns: 8}
	ix := planarsi.NewIndex(g, opt)

	for i, res := range ix.Scan(context.Background(), patterns) {
		if res.Err != nil {
			t.Fatalf("pattern %d: %v", i, res.Err)
		}
		direct, err := planarsi.Decide(g, patterns[i], opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found != direct {
			t.Errorf("pattern %d: Scan=%v, Decide=%v", i, res.Found, direct)
		}
	}

	// Same seed, fresh Index: identical answers (determinism with and
	// without shared preprocessing).
	ix2 := planarsi.NewIndex(g, opt)
	count1, err1 := ix.CountOccurrences(planarsi.Cycle(4))
	count2, err2 := ix2.CountOccurrences(planarsi.Cycle(4))
	direct, err3 := planarsi.CountOccurrences(g, planarsi.Cycle(4), opt)
	if err1 != nil || err2 != nil || err3 != nil {
		t.Fatal(err1, err2, err3)
	}
	if count1 != count2 || count1 != direct {
		t.Errorf("C4 counts diverge: index=%d, fresh index=%d, direct=%d", count1, count2, direct)
	}
	if want := 5 * 5 * 8; count1 != want {
		t.Errorf("C4 maps in 6x6 grid = %d, want %d", count1, want)
	}

	occs, err := ix.ListOccurrences(planarsi.Cycle(4))
	if err != nil {
		t.Fatal(err)
	}
	directOccs, err := planarsi.ListOccurrences(g, planarsi.Cycle(4), opt)
	if err != nil {
		t.Fatal(err)
	}
	keys := func(os []planarsi.Occurrence) []string {
		out := make([]string, len(os))
		for i, o := range os {
			out[i] = o.Key()
		}
		sort.Strings(out)
		return out
	}
	a, b := keys(occs), keys(directOccs)
	if len(a) != len(b) {
		t.Fatalf("List through index: %d occurrences, direct: %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("List sets diverge at %d", i)
		}
	}

	if !ix.Planar() {
		t.Error("grid reported non-planar")
	}
}

// TestPublicIndexFindAndVerify checks witness queries through the Index.
func TestPublicIndexFindAndVerify(t *testing.T) {
	g := planarsi.Wheel(8)
	ix := planarsi.NewIndex(g, planarsi.Options{Seed: 5})
	h := planarsi.Cycle(3)
	occ, err := ix.FindOccurrence(h)
	if err != nil {
		t.Fatal(err)
	}
	if occ == nil {
		t.Fatal("wheel contains triangles; none found")
	}
	if !planarsi.VerifyOccurrence(g, h, occ) {
		t.Errorf("witness does not verify: %v", occ)
	}
}

// TestPublicIndexSaveLoad exercises the public persistence surface:
// Index.Save and planarsi.LoadIndex round-trip the cache, the restored
// Index answers exactly like the original, and its Stats (artifact
// counts, byte accounting, query counter) come back identical.
func TestPublicIndexSaveLoad(t *testing.T) {
	g := planarsi.Grid(5, 5)
	opt := planarsi.Options{Seed: 2, MaxRuns: 4}
	ix := planarsi.NewIndex(g, opt)
	patterns := []*planarsi.Graph{planarsi.Cycle(4), planarsi.Path(4)}
	before := ix.Scan(context.Background(), patterns)

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := planarsi.LoadIndex(&buf)
	if err != nil {
		t.Fatalf("LoadIndex: %v", err)
	}
	if got, want := loaded.Stats(), ix.Stats(); got != want {
		t.Fatalf("Stats diverge after load:\n got %+v\nwant %+v", got, want)
	}
	after := loaded.Scan(context.Background(), patterns)
	for i := range before {
		if before[i].Err != nil || after[i].Err != nil || before[i].Found != after[i].Found {
			t.Fatalf("pattern %d diverges after load: %+v vs %+v", i, before[i], after[i])
		}
	}
	if _, err := planarsi.LoadIndex(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage unexpectedly loaded")
	}
}
