package planarsi

import (
	"math/rand/v2"

	"planarsi/internal/graph"
)

// Graph construction and the generator families used throughout the
// examples, tests and benchmarks. Every planar generator returns an
// embedded graph (a rotation system validated by Euler's formula), which
// VertexConnectivity requires.

// NewBuilder returns a builder for a graph on n vertices. Freeze it with
// Build (no embedding), BuildEmbedded (derive a rotation system from
// planar straight-line coordinates) or BuildWithRotations (adjacency
// insertion order is already a counterclockwise rotation system).
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a non-embedded graph from an edge list.
func FromEdges(n int, edges [][2]int32) *Graph { return graph.FromEdges(n, edges) }

// Path returns the path on n vertices (connectivity 1).
func Path(n int) *Graph { return graph.Path(n) }

// Cycle returns the cycle on n >= 3 vertices (connectivity 2).
func Cycle(n int) *Graph { return graph.Cycle(n) }

// Star returns the star K_{1,n-1} with center 0 (connectivity 1).
func Star(n int) *Graph { return graph.Star(n) }

// Wheel returns a hub joined to a cycle on n-1 rim vertices
// (connectivity 3).
func Wheel(n int) *Graph { return graph.Wheel(n) }

// Grid returns the r x c grid graph (connectivity 2).
func Grid(r, c int) *Graph { return graph.Grid(r, c) }

// GridWithDiagonals returns the r x c grid with one diagonal per cell, a
// planar near-triangulation.
func GridWithDiagonals(r, c int) *Graph { return graph.GridWithDiagonals(r, c) }

// Bipyramid returns the n-gonal bipyramid: an equatorial n-cycle plus two
// poles adjacent to every equatorial vertex (4-connected for n >= 4; the
// octahedron is Bipyramid(4)).
func Bipyramid(n int) *Graph { return graph.Bipyramid(n) }

// Tetrahedron returns K4 embedded (3-connected).
func Tetrahedron() *Graph { return graph.Tetrahedron() }

// Cube returns the 3-cube graph embedded (3-connected).
func Cube() *Graph { return graph.Cube() }

// Octahedron returns the octahedron embedded (4-connected).
func Octahedron() *Graph { return graph.Octahedron() }

// Dodecahedron returns the dodecahedron embedded (3-connected).
func Dodecahedron() *Graph { return graph.Dodecahedron() }

// Icosahedron returns the icosahedron embedded (5-connected, the extremal
// planar case).
func Icosahedron() *Graph { return graph.Icosahedron() }

// Apollonian returns a random Apollonian network (stacked planar
// triangulation, 3-connected) on n >= 3 vertices.
func Apollonian(n int, rng *rand.Rand) *Graph { return graph.Apollonian(n, rng) }

// RandomPlanar returns a connected random planar graph: an Apollonian
// triangulation thinned to a spanning tree plus each extra edge kept with
// probability keep.
func RandomPlanar(n int, keep float64, rng *rand.Rand) *Graph {
	return graph.RandomPlanar(n, keep, rng)
}

// RandomTree returns a uniform random recursive tree on n vertices.
func RandomTree(n int, rng *rand.Rand) *Graph { return graph.RandomTree(n, rng) }

// Caterpillar returns a spine path with legs leaves per spine vertex.
func Caterpillar(spine, legs int) *Graph { return graph.Caterpillar(spine, legs) }

// Complete returns K_n (planar only for n <= 4).
func Complete(n int) *Graph { return graph.Complete(n) }

// TorusGrid returns the r x c grid with wraparound in both directions: a
// genus-1, locally-bounded-treewidth target for the Section 4.3
// extension. Subgraph isomorphism works on it; VertexConnectivity does
// not (no planar embedding).
func TorusGrid(r, c int) *Graph { return graph.TorusGrid(r, c) }

// GridWithHandles returns an r x c grid plus extra random long-range
// edges ("handles"), a bounded-genus family for the Section 4.3
// extension.
func GridWithHandles(r, c, handles int, rng *rand.Rand) *Graph {
	return graph.GridWithHandles(r, c, handles, rng)
}

// DisjointUnion returns the disjoint union of the given graphs with
// vertex ids offset in argument order (no embedding). Useful for building
// disconnected patterns.
func DisjointUnion(gs ...*Graph) *Graph { return graph.DisjointUnion(gs...) }

// Diameter returns the exact diameter of g (largest intra-component
// distance); quadratic, intended for pattern-sized graphs.
func Diameter(g *Graph) int { return graph.Diameter(g) }

// IsConnected reports whether g is connected.
func IsConnected(g *Graph) bool { return graph.IsConnected(g) }

// ValidateEmbedding checks the graph's rotation system against Euler's
// formula and returns an error when it is not a planar embedding.
func ValidateEmbedding(g *Graph) error { return graph.ValidateEmbedding(g) }
