// Package planarsi is a parallel library for subgraph isomorphism in
// planar graphs and planar vertex connectivity, reproducing
//
//	Gianinazzi, Hoefler: "Parallel Planar Subgraph Isomorphism and
//	Vertex Connectivity", SPAA 2020 (arXiv:2007.01199).
//
// The headline results: deciding whether a connected pattern H with k
// vertices occurs in a planar target G with n vertices takes
// O((3k)^{3k+1} n log n) work and O(k log² n) depth (Monte Carlo), and
// planar vertex connectivity is decided in O(n log n) work and
// O(log² n) depth via separating cycles in the vertex-face incidence
// graph.
//
// # Quick start
//
//	g := planarsi.Grid(32, 32)
//	h := planarsi.Cycle(4)
//	found, _ := planarsi.Decide(g, h, planarsi.Options{})           // true
//	occs, _ := planarsi.ListOccurrences(g, h, planarsi.Options{})   // all C4s
//	res, _ := planarsi.VertexConnectivity(g, planarsi.Options{})    // 2
//
// # Batch queries: the Index
//
// The pipeline spends most of its work on target-side preprocessing —
// ESTC clustering, the treewidth k-d cover, and nice tree decompositions
// of the cover's bands — while the per-pattern dynamic program is
// comparatively cheap. The package-level functions rebuild everything per
// call; when many patterns are matched against one target, build an Index
// instead:
//
//	ix := planarsi.NewIndex(g, planarsi.Options{Seed: 1})
//	found, _ := ix.Decide(h)                        // same answer as Decide(g, h, opt)
//	results := ix.Scan(ctx, []*planarsi.Graph{...}) // whole batch, concurrently
//
// Batched scans and the *Ctx query variants (DecideCtx, ScanCount, ...)
// honor a context.Context: cancellation or an expired deadline stops the
// in-flight per-band dynamic programs at their next checkpoint and
// returns the context's error. Cancellation never changes answers — a
// rerun with a live context returns exactly what an unwatched call
// would have.
//
// Lifecycle and cost model: NewIndex is O(1) — preprocessing artifacts
// are built lazily on first use and memoized for the Index's lifetime
// (Prewarm pays the cost up front). The first query for a pattern shape
// pays the usual preprocessing cost; every further query over the same
// shape — any pattern with equal vertex count k and diameter d — reuses
// the cached covers and decompositions and pays only for its dynamic
// programs. Clusterings are memoized by (clustering parameter 2k, run)
// and shared across all diameters of a size class; prepared covers are
// memoized by (k, d, run); separating covers additionally key on the
// terminal set. Seed and Heuristic are fixed per Index.
//
// Determinism and correctness are unchanged: per-run randomness is
// derived purely from (Options.Seed, run), so an Index returns exactly
// the covers a fresh call would build — for equal Options, answers with
// and without an Index are identical, and the paper's exact-yes/w.h.p.-no
// guarantees carry over verbatim.
//
// Concurrency: an Index is safe for concurrent use by any number of
// goroutines. Cached artifacts are immutable and built exactly once per
// key (concurrent requesters of a missing artifact block until the single
// build finishes); Scan and ScanCount run their batch concurrently via
// the internal fork-join runtime. Index.Stats reports the cache contents
// and approximate memory footprint — the accounting the planarsid
// daemon's LRU eviction budgets against (see cmd/planarsid).
//
// Live graphs: Index.ApplyEdits mutates the target in place with a batch
// of edge insertions and deletions, advancing an edit epoch. Migration is
// copy-on-write and band-granular — artifacts the edit did not touch are
// retained verbatim, the rest rebuild through the fresh-build path — so
// post-edit answers are byte-identical to a fresh NewIndex on the edited
// graph, while queries already in flight drain consistently against the
// pre-edit generation. See EditBatch, EditResult, and Index.Epoch.
//
// Yes-answers (found occurrences, reported cuts) are always exact and can
// be re-checked with VerifyOccurrence / the returned witnesses;
// no-answers are correct with high probability, with failure probability
// shrinking geometrically in Options.MaxRuns.
//
// The implementation follows the paper's pipeline: Exponential Start Time
// Clustering decomposes the target into low-diameter clusters (Lemma
// 2.3), a parallel treewidth k-d cover cuts each cluster into
// bounded-treewidth bands (Theorem 2.4), and each band is solved by a
// dynamic program over a nice tree decomposition — either bottom-up
// (Section 3.2) or through the parallel path-DAG engine with shortcut
// reachability (Section 3.3). Extensions cover disconnected patterns
// (Lemma 4.1), listing every occurrence (Theorem 4.2), and S-separating
// occurrences (Lemma 5.3), which power the vertex connectivity decision
// (Lemma 5.2). See DESIGN.md for the architecture and EXPERIMENTS.md for
// the reproduced tables and figures.
package planarsi

import (
	"io"

	"planarsi/internal/conn"
	"planarsi/internal/core"
	"planarsi/internal/graph"
	"planarsi/internal/index"
	"planarsi/internal/match"
	"planarsi/internal/planarity"
	"planarsi/internal/treedecomp"
	"planarsi/internal/wd"
)

// Graph is an immutable simple undirected graph in CSR form; embedded
// graphs additionally carry a rotation system (combinatorial planar
// embedding). Construct with NewBuilder/FromEdges or the generators.
type Graph = graph.Graph

// Builder accumulates edges for a Graph.
type Builder = graph.Builder

// Tracker accumulates empirical work (operation counts) and depth
// (synchronous round counts), the PRAM quantities the paper's bounds are
// stated in. Pass one in Options to instrument a call; nil disables
// instrumentation.
type Tracker = wd.Tracker

// NewTracker returns an empty work/depth tracker.
func NewTracker() *Tracker { return wd.NewTracker() }

// Occurrence maps pattern vertices to target vertices; it certifies a
// subgraph isomorphism (check with VerifyOccurrence).
type Occurrence = core.Occurrence

// Engine selects the per-band bounded-treewidth solver.
type Engine = core.Engine

const (
	// EngineAuto picks the path-DAG engine for plain searches and the
	// sequential engine for separating ones.
	EngineAuto = core.EngineAuto
	// EngineSequential forces the Section 3.2 bottom-up dynamic program.
	EngineSequential = core.EngineSequential
	// EnginePathDAG forces the Section 3.3 parallel path-DAG engine.
	EnginePathDAG = core.EnginePathDAG
)

// Heuristic selects the tree decomposition heuristic used on cover bands.
type Heuristic = treedecomp.Heuristic

const (
	// MinDegree eliminates minimum-degree vertices first (fast, default).
	MinDegree = treedecomp.MinDegree
	// MinFill eliminates minimum-fill-in vertices first (slower, often
	// narrower decompositions).
	MinFill = treedecomp.MinFill
)

// Options configures the randomized pipeline. The zero value is usable.
type Options struct {
	// Seed makes runs reproducible; equal seeds give equal results.
	Seed uint64
	// Engine selects the per-band solver (default EngineAuto).
	Engine Engine
	// MaxRuns bounds the independent repetitions used to drive down the
	// one-sided error; 0 selects 2·ceil(log2 n)+3, enough for w.h.p.
	// correctness of negative answers.
	MaxRuns int
	// Heuristic selects the band tree-decomposition heuristic.
	Heuristic Heuristic
	// Beta overrides the clustering parameter (default 2k).
	Beta float64
	// Tracker records empirical work/depth when non-nil.
	Tracker *Tracker
	// Stats receives pipeline statistics when non-nil.
	Stats *Stats
}

// Stats reports what a pipeline call did.
type Stats = core.Stats

func (o Options) core() core.Options {
	return core.Options{
		Seed:      o.Seed,
		Engine:    o.Engine,
		MaxRuns:   o.MaxRuns,
		Heuristic: o.Heuristic,
		Beta:      o.Beta,
		Tracker:   o.Tracker,
		Stats:     o.Stats,
	}
}

// Decide reports whether the pattern h occurs in the target g as a
// subgraph (Theorem 2.1 for connected patterns, Lemma 4.1 for
// disconnected ones). True answers are exact; false answers hold w.h.p.
func Decide(g, h *Graph, opt Options) (bool, error) {
	return core.Decide(g, h, opt.core())
}

// FindOccurrence returns one occurrence of the connected pattern h in g,
// or nil when none was found within the run budget.
func FindOccurrence(g, h *Graph, opt Options) (Occurrence, error) {
	return core.FindOne(g, h, opt.core())
}

// ListOccurrences returns (w.h.p.) every occurrence of the connected
// pattern h in g, deduplicated, following the Theorem 4.2 stopping rule.
// Automorphic images of the same vertex set count as distinct
// occurrences.
func ListOccurrences(g, h *Graph, opt Options) ([]Occurrence, error) {
	return core.List(g, h, opt.core())
}

// CountOccurrences returns (w.h.p.) the number of occurrences of the
// connected pattern h in g.
func CountOccurrences(g, h *Graph, opt Options) (int, error) {
	return core.Count(g, h, opt.core())
}

// DecideSeparating searches for an occurrence of the connected pattern h
// whose removal disconnects at least two vertices of the terminal set s
// (Lemma 5.3). It returns a witness occurrence or nil.
func DecideSeparating(g, h *Graph, s []bool, opt Options) (Occurrence, error) {
	return core.DecideSeparating(g, h, s, opt.core())
}

// Index preprocesses one target graph and serves repeated pattern
// queries (Decide, FindOccurrence, ListOccurrences, CountOccurrences,
// DecideSeparating) plus batched scans (Scan, ScanCount) over shared,
// memoized pipeline artifacts. See the package documentation ("Batch
// queries: the Index") for the lifecycle, memoization keys and
// concurrency guarantees.
type Index = index.Index

// ScanResult is one pattern's answer in an Index.Scan or Index.ScanCount
// batch.
type ScanResult = index.ScanResult

// IndexStats is a point-in-time snapshot of an Index's cache contents,
// approximate memory footprint, and query traffic (Index.Stats). Serving
// layers use it to drive cache-eviction policies against a memory budget.
type IndexStats = index.Stats

// NewIndex builds an Index over the target g. The options play the same
// role as in the package-level calls and are fixed for the Index's
// lifetime; for equal Options, Index answers are identical to the
// corresponding package-level call.
func NewIndex(g *Graph, opt Options) *Index {
	return index.New(g, opt.core())
}

// EditBatch is one atomic set of edge insertions and deletions for
// Index.ApplyEdits: removals apply before additions, validation is
// all-or-nothing, and the optional RequirePlanar / IfEpoch fields gate
// the batch on planarity and on optimistic epoch matching. See
// Index.ApplyEdits for the consistency contract.
type EditBatch = index.EditBatch

// EditResult describes one applied edit batch: the Index's new epoch and
// how much of the memoized artifact state the migration kept verbatim vs
// rebuilt, per artifact class and per band.
type EditResult = index.EditResult

// EditClassDelta is one artifact class's kept/rebuilt split in an
// EditResult.
type EditClassDelta = index.ClassDelta

// IndexInvalidationStats is one artifact class's lifetime tally of
// edit-migration invalidations vs retentions (Index.InvalidationStats).
type IndexInvalidationStats = index.InvalidationStats

// ErrEdit reports an edit batch that failed validation (unknown vertex,
// self-loop, adding a present edge, removing an absent one). The target
// is left unchanged.
var ErrEdit = graph.ErrEdit

// ErrEpochConflict reports an edit batch whose IfEpoch condition no
// longer matched the Index's epoch: a concurrent editor won the race.
var ErrEpochConflict = index.ErrEpochConflict

// ErrNonPlanarEdit reports an edit batch rejected because RequirePlanar
// was set and the edited graph would not be planar.
var ErrNonPlanarEdit = index.ErrNonPlanarEdit

// LoadIndex restores an Index from a snapshot previously written with
// Index.Save: the target graph, options and every completed cached
// artifact (clusterings, prepared covers, band decompositions) come
// back behind the same memoization keys, so queries that hit the
// snapshot's cache skip preprocessing entirely. A restored Index
// answers byte-identically to the Index that saved it — and to a fresh
// NewIndex with the same graph and Options. The snapshot format is
// versioned and checksummed; malformed or truncated input fails with an
// error, never a panic.
func LoadIndex(r io.Reader) (*Index, error) {
	return index.Load(r)
}

// CanonicalPattern returns a canonically relabeled copy of the pattern
// h: isomorphic patterns (up to MaxPatternSize vertices) yield
// identical copies, so the result serves as a canonical representative
// for deduplication. The Index canonicalizes internally — batched scans
// dedupe isomorphic members and share compiled pattern entries
// automatically — so this is for clients that want to dedupe or key on
// patterns themselves. For rare refinement-resistant patterns an
// internal search budget may keep the input labeling; the result is
// then still isomorphic to h, merely not cross-labeling canonical.
func CanonicalPattern(h *Graph) *Graph {
	c, _ := match.Canonicalize(h)
	return c
}

// CanonicalPatternKey returns the canonical form of the pattern h as an
// opaque comparable string: isomorphic patterns map to equal keys, and
// equal keys always denote isomorphic patterns (with the same budget
// caveat as CanonicalPattern — equal keys remain sound regardless).
// This is the key the Index's compiled-pattern cache uses internally.
func CanonicalPatternKey(h *Graph) string {
	return match.CanonicalKey(h)
}

// VerifyOccurrence checks that occ is an injective map from h's vertices
// to g's vertices realizing every edge of h.
func VerifyOccurrence(g, h *Graph, occ Occurrence) bool {
	return core.VerifyOccurrence(g, h, occ)
}

// VerifySeparating additionally checks that removing occ's image
// disconnects two vertices of s.
func VerifySeparating(g, h *Graph, s []bool, occ Occurrence) bool {
	return core.VerifySeparating(g, h, s, occ)
}

// IsPlanar reports whether g admits a planar embedding (decided exactly
// by the Demoucron-Malgrange-Pertuiset algorithm).
func IsPlanar(g *Graph) bool { return planarity.IsPlanar(g) }

// EmbedPlanar returns a copy of g carrying a combinatorial planar
// embedding (rotation system), or ErrNotPlanar. Generators in this
// package already produce embedded graphs; use this for graphs built
// from raw edge lists.
func EmbedPlanar(g *Graph) (*Graph, error) { return planarity.Embed(g) }

// ErrNotPlanar reports that a graph has no planar embedding.
var ErrNotPlanar = planarity.ErrNotPlanar

// ConnectivityResult reports a vertex connectivity decision.
type ConnectivityResult = conn.Result

// VertexConnectivity decides the vertex connectivity of the planar graph
// g in O(n log n) work and O(log² n) depth (Lemma 5.2). Graphs without
// an embedding are embedded first (EmbedPlanar); non-planar inputs
// return ErrNotPlanar. Reported cuts always verify; the connectivity
// value holds w.h.p.
func VertexConnectivity(g *Graph, opt Options) (ConnectivityResult, error) {
	return conn.VertexConnectivity(g, conn.Options{
		Seed:    opt.Seed,
		MaxRuns: opt.MaxRuns,
		Tracker: opt.Tracker,
	})
}

// VerifyCut checks that removing the given vertices disconnects g.
func VerifyCut(g *Graph, cut []int32) bool {
	return conn.VerifyCut(g, cut)
}

// ErrPatternTooLarge is returned when the pattern exceeds the engine
// capacity (MaxPatternSize vertices).
var ErrPatternTooLarge = core.ErrPatternTooLarge

// ErrDisconnectedPattern is returned by operations that require a
// connected pattern (listing, counting, separating search).
var ErrDisconnectedPattern = core.ErrDisconnectedPattern

// MaxPatternSize is the largest supported pattern (the DP packs pattern
// vertices into 16-bit masks).
const MaxPatternSize = 16
