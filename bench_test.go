// Benchmarks regenerating the paper's evaluation: one benchmark per table
// and figure (plus the Section 4 extensions and the DESIGN.md ablations).
// Each benchmark exercises the code path behind the corresponding
// experiment; the cmd/paperbench binary prints the full paper-style
// sweeps, while these report ns/op plus the relevant work/depth counters
// as custom metrics.
//
//	go test -bench=. -benchmem            # everything
//	go test -bench=Table1                 # one artifact
//	go run ./cmd/paperbench -all          # full paper-style tables
package planarsi_test

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync/atomic"
	"testing"
	"time"

	"planarsi"
	"planarsi/internal/colorcode"
	"planarsi/internal/conn"
	"planarsi/internal/core"
	"planarsi/internal/cover"
	"planarsi/internal/estc"
	"planarsi/internal/flow"
	"planarsi/internal/graph"
	"planarsi/internal/match"
	"planarsi/internal/naive"
	"planarsi/internal/pmdag"
	"planarsi/internal/serve"
	"planarsi/internal/treedecomp"
	"planarsi/internal/wd"
)

// ---- Table 1: deciding subgraph isomorphism, ours vs baselines ----

func BenchmarkTable1DecideOurs(b *testing.B) {
	// The five sizes match the BENCH_*.json perf-trajectory snapshots
	// (ns/op, B/op, allocs/op, work/op at n = 2^10 .. 2^14).
	for _, n := range []int{1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewPCG(1, uint64(n)))
			g := graph.RandomPlanar(n, 0.7, rng)
			h := graph.Cycle(4)
			tr := wd.NewTracker()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				found, err := planarsi.Decide(g, h, planarsi.Options{Seed: uint64(i), Tracker: tr})
				if err != nil || !found {
					b.Fatalf("decide: %v %v", found, err)
				}
			}
			b.ReportMetric(float64(tr.Work())/float64(b.N), "work/op")
		})
	}
}

func BenchmarkTable1DecideNaive(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 12, 1 << 14} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewPCG(1, uint64(n)))
			g := graph.RandomPlanar(n, 0.7, rng)
			h := graph.Cycle(4)
			var work int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(naive.Search(g, h, naive.Options{Limit: 1, CountWork: &work})) == 0 {
					b.Fatal("naive missed the pattern")
				}
			}
			b.ReportMetric(float64(work)/float64(b.N), "work/op")
		})
	}
}

func BenchmarkTable1ColorCoding(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 12} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewPCG(1, uint64(n)))
			g := graph.RandomPlanar(n, 0.7, rng)
			h := graph.Path(4)
			var work int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				found, err := colorcode.Decide(g, h, colorcode.Options{CountWork: &work},
					rand.New(rand.NewPCG(uint64(i), 7)), nil)
				if err != nil || !found {
					b.Fatalf("colorcode: %v %v", found, err)
				}
			}
			b.ReportMetric(float64(work)/float64(b.N), "work/op")
		})
	}
}

// ---- Figure 1: band tree decompositions ----

func BenchmarkFig1BandDecomposition(b *testing.B) {
	rng := rand.New(rand.NewPCG(2, 3))
	g := graph.Grid(40, 40)
	cov := cover.Build(g, cover.Params{K: 4, D: 2}, rng, nil)
	b.ResetTimer()
	maxWidth := 0
	for i := 0; i < b.N; i++ {
		for _, band := range cov.Bands {
			td := treedecomp.Build(band.G, treedecomp.MinDegree)
			if w := td.Width(); w > maxWidth {
				maxWidth = w
			}
		}
	}
	b.ReportMetric(float64(maxWidth), "max-width")
}

// ---- Figure 2: exponential start time clustering ----

func BenchmarkFig2Clustering(b *testing.B) {
	for _, beta := range []float64{2, 8, 16} {
		b.Run(fmt.Sprintf("beta=%.0f", beta), func(b *testing.B) {
			g := graph.Grid(64, 64)
			rng := rand.New(rand.NewPCG(3, uint64(beta)))
			tr := wd.NewTracker()
			cut := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cl := estc.Cluster(g, beta, rng, tr)
				cut += cl.CrossingEdges(g)
			}
			b.ReportMetric(float64(cut)/float64(b.N*g.M()), "cut-frac")
			b.ReportMetric(float64(tr.PhaseRounds("estc"))/float64(b.N), "rounds/op")
		})
	}
}

// ---- Figure 3: parallel treewidth k-d cover ----

func BenchmarkFig3Cover(b *testing.B) {
	for _, d := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			g := graph.Grid(48, 48)
			rng := rand.New(rand.NewPCG(4, uint64(d)))
			size := 0
			rounds := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cov := cover.Build(g, cover.Params{K: 4, D: d}, rng, nil)
				size += cov.TotalSize()
				rounds += cov.BFSRounds
			}
			b.ReportMetric(float64(size)/float64(b.N*g.N()), "size/n")
			b.ReportMetric(float64(rounds)/float64(b.N), "bfs-rounds/op")
		})
	}
}

// ---- Figure 4: bounded-treewidth DP ----

func BenchmarkFig4DP(b *testing.B) {
	for _, k := range []int{3, 4, 5} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			rng := rand.New(rand.NewPCG(5, uint64(k)))
			g := graph.RandomPlanar(400, 0.5, rng)
			nd := treedecomp.MakeNice(treedecomp.Build(g, treedecomp.MinDegree))
			h := graph.Path(k)
			b.ResetTimer()
			var states int64
			for i := 0; i < b.N; i++ {
				eng := match.Run(&match.Problem{G: g, H: h, ND: nd}, nil)
				states += eng.StatesGenerated()
			}
			b.ReportMetric(float64(states)/float64(b.N), "states/op")
		})
	}
}

// ---- Figure 5: path-DAG engine with shortcuts ----

func BenchmarkFig5PathDAG(b *testing.B) {
	for _, n := range []int{512, 2048} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := graph.Path(n)
			h := graph.Path(4)
			nd := treedecomp.MakeNice(treedecomp.Build(g, treedecomp.MinDegree))
			p := &match.Problem{G: g, H: h, ND: nd}
			b.ResetTimer()
			hops := 0
			for i := 0; i < b.N; i++ {
				eng, stats := pmdag.Run(p, nil)
				if !eng.Found() {
					b.Fatal("P4 not found")
				}
				hops = stats.MaxHops
			}
			b.ReportMetric(float64(hops), "bfs-hops")
		})
	}
}

// ---- Figure 6: planar vertex connectivity ----

func BenchmarkFig6Connectivity(b *testing.B) {
	families := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"cycle", graph.Cycle(200), 2},
		{"wheel", graph.Wheel(40), 3},
		{"bipyramid", graph.Bipyramid(24), 4},
		{"icosahedron", graph.Icosahedron(), 5},
	}
	for _, fam := range families {
		b.Run(fam.name, func(b *testing.B) {
			tr := wd.NewTracker()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := conn.VertexConnectivity(fam.g, conn.Options{Seed: uint64(i), MaxRuns: 8, Tracker: tr})
				if err != nil || res.Connectivity != fam.want {
					b.Fatalf("connectivity %d, want %d (%v)", res.Connectivity, fam.want, err)
				}
			}
			b.ReportMetric(float64(tr.Work())/float64(b.N), "work/op")
		})
	}
}

func BenchmarkFig6FlowOracle(b *testing.B) {
	g := graph.Bipyramid(24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if flow.VertexConnectivity(g) != 4 {
			b.Fatal("oracle disagrees")
		}
	}
}

// ---- Figure 7: separating subgraph isomorphism ----

func BenchmarkFig7Separating(b *testing.B) {
	rim := 8
	bld := graph.NewBuilder(rim + 2)
	for i := 0; i < rim; i++ {
		bld.AddEdge(int32(i), int32((i+1)%rim))
		bld.AddEdge(int32(i), int32(rim))
		bld.AddEdge(int32(i), int32(rim+1))
	}
	g := bld.Build()
	s := make([]bool, g.N())
	s[rim], s[rim+1] = true, true
	h := graph.Cycle(rim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		occ, err := planarsi.DecideSeparating(g, h, s, planarsi.Options{Seed: uint64(i)})
		if err != nil || occ == nil {
			b.Fatalf("separating rim not found: %v", err)
		}
	}
}

// ---- Theorem 4.2: listing all occurrences ----

func BenchmarkListAll(b *testing.B) {
	g := graph.Grid(8, 8)
	h := graph.Cycle(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		occs, err := planarsi.ListOccurrences(g, h, planarsi.Options{Seed: uint64(i)})
		if err != nil || len(occs) != 7*7*8 {
			b.Fatalf("listed %d, want %d (%v)", len(occs), 7*7*8, err)
		}
	}
}

// ---- Lemma 4.1: disconnected patterns ----

func BenchmarkDisconnected(b *testing.B) {
	rng := rand.New(rand.NewPCG(6, 7))
	g := graph.RandomPlanar(60, 0.7, rng)
	h := graph.DisjointUnion(graph.Path(2), graph.Path(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		found, err := planarsi.Decide(g, h, planarsi.Options{Seed: uint64(i)})
		if err != nil || !found {
			b.Fatalf("disconnected decide: %v %v", found, err)
		}
	}
}

// ---- Ablations (DESIGN.md) ----

func BenchmarkAblationEngineSequential(b *testing.B) {
	g := graph.Path(1024)
	h := graph.Path(4)
	nd := treedecomp.MakeNice(treedecomp.Build(g, treedecomp.MinDegree))
	p := &match.Problem{G: g, H: h, ND: nd}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !match.Run(p, nil).Found() {
			b.Fatal("missed")
		}
	}
}

func BenchmarkAblationEnginePathDAG(b *testing.B) {
	g := graph.Path(1024)
	h := graph.Path(4)
	nd := treedecomp.MakeNice(treedecomp.Build(g, treedecomp.MinDegree))
	p := &match.Problem{G: g, H: h, ND: nd}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, _ := pmdag.Run(p, nil)
		if !eng.Found() {
			b.Fatal("missed")
		}
	}
}

func BenchmarkAblationBeta(b *testing.B) {
	for _, beta := range []float64{2, 8, 32} {
		b.Run(fmt.Sprintf("beta=%.0f", beta), func(b *testing.B) {
			g := graph.Grid(32, 32)
			rng := rand.New(rand.NewPCG(8, uint64(beta)))
			b.ResetTimer()
			size := 0
			for i := 0; i < b.N; i++ {
				cov := cover.Build(g, cover.Params{K: 4, D: 2, Beta: beta}, rng, nil)
				size += cov.TotalSize()
			}
			b.ReportMetric(float64(size)/float64(b.N*g.N()), "size/n")
		})
	}
}

func BenchmarkAblationShortcutPaper(b *testing.B) {
	benchShortcut(b, pmdag.Config{})
}

func BenchmarkAblationShortcutDense(b *testing.B) {
	benchShortcut(b, pmdag.Config{ShortcutSpacing: 1})
}

func benchShortcut(b *testing.B, cfg pmdag.Config) {
	g := graph.Path(2048)
	h := graph.Path(4)
	nd := treedecomp.MakeNice(treedecomp.Build(g, treedecomp.MinDegree))
	p := &match.Problem{G: g, H: h, ND: nd}
	b.ResetTimer()
	var edges int64
	for i := 0; i < b.N; i++ {
		eng, stats := pmdag.RunConfig(p, cfg, nil)
		if !eng.Found() {
			b.Fatal("missed")
		}
		edges = stats.ShortcutEdges
	}
	b.ReportMetric(float64(edges), "shortcut-edges")
}

func BenchmarkAblationTDMinDegree(b *testing.B) { benchTD(b, treedecomp.MinDegree) }
func BenchmarkAblationTDMinFill(b *testing.B)   { benchTD(b, treedecomp.MinFill) }

// Depth reduction the paper avoids (Section 3.3 / Ablation A5): DP over
// the Bodlaender-Hagerup-balanced decomposition vs the path-DAG engine.
func BenchmarkAblationBalancedDP(b *testing.B) {
	g := graph.Path(1024)
	h := graph.Path(4)
	bal := treedecomp.Balance(treedecomp.Build(g, treedecomp.MinDegree))
	nd := treedecomp.MakeNice(bal)
	p := &match.Problem{G: g, H: h, ND: nd}
	b.ResetTimer()
	var states int64
	for i := 0; i < b.N; i++ {
		eng := match.Run(p, nil)
		if !eng.Found() {
			b.Fatal("missed")
		}
		states = eng.StatesGenerated()
	}
	b.ReportMetric(float64(states), "states")
}

// ---- Theorem 4.4: bounded-genus targets (Section 4.3) ----

func BenchmarkGenusTorusDecide(b *testing.B) {
	g := graph.TorusGrid(20, 20)
	h := graph.Cycle(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		found, err := planarsi.Decide(g, h, planarsi.Options{Seed: uint64(i)})
		if err != nil || !found {
			b.Fatalf("torus decide: %v %v", found, err)
		}
	}
}

// ---- Index: shared-preprocessing batch queries ----

// indexBenchBatch returns the 8-pattern motif batch the Index benchmarks
// scan: the four connected 4-vertex diameter-2 graphs, three 5-vertex
// diameter-2 graphs, and P3. Patterns of one shape (k, d) share their
// covers and decompositions outright in the batched path, and each size
// class shares its per-run clusterings.
func indexBenchBatch() []*graph.Graph {
	small := func(edges ...[2]int32) *graph.Graph {
		n := int32(0)
		for _, e := range edges {
			n = max(n, max(e[0], e[1])+1)
		}
		bld := graph.NewBuilder(int(n))
		for _, e := range edges {
			bld.AddEdge(e[0], e[1])
		}
		return bld.Build()
	}
	paw := small([2]int32{0, 1}, [2]int32{1, 2}, [2]int32{2, 0}, [2]int32{2, 3})
	diamond := small([2]int32{0, 1}, [2]int32{1, 2}, [2]int32{2, 0}, [2]int32{1, 3}, [2]int32{2, 3})
	house := small([2]int32{0, 1}, [2]int32{1, 2}, [2]int32{2, 3}, [2]int32{3, 0}, [2]int32{4, 0}, [2]int32{4, 1})
	cricket := small([2]int32{0, 1}, [2]int32{1, 2}, [2]int32{2, 0}, [2]int32{0, 3}, [2]int32{0, 4})
	return []*graph.Graph{
		graph.Cycle(4), graph.Star(4), paw, diamond, // shape (k=4, d=2)
		graph.Cycle(5), house, cricket, graph.Path(3), // (5,2) ×3, (3,2)
	}
}

// BenchmarkIndexScan compares answering an 8-pattern batch through a
// shared Index (build + Scan, preprocessing paid once) against 8
// independent Decide calls that each rebuild the pipeline, plus the
// steady-state cost of scanning through an already-warm Index. Both
// paths see the same seeds and run budgets and return identical answers.
func BenchmarkIndexScan(b *testing.B) {
	rng := rand.New(rand.NewPCG(12, 34))
	g := graph.RandomPlanar(1<<11, 0.7, rng)
	patterns := indexBenchBatch()
	opt := planarsi.Options{Seed: 1, MaxRuns: 8}
	check := func(b *testing.B, res []planarsi.ScanResult) {
		for i, r := range res {
			if r.Err != nil {
				b.Fatalf("pattern %d: %v", i, r.Err)
			}
		}
	}
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix := planarsi.NewIndex(g, opt)
			check(b, ix.Scan(context.Background(), patterns))
		}
	})
	b.Run("independent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j, h := range patterns {
				if _, err := planarsi.Decide(g, h, opt); err != nil {
					b.Fatalf("pattern %d: %v", j, err)
				}
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		ix := planarsi.NewIndex(g, opt)
		check(b, ix.Scan(context.Background(), patterns)) // populate the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			check(b, ix.Scan(context.Background(), patterns))
		}
	})
}

// BenchmarkServeLoad is the serving-layer load benchmark: concurrent
// clients firing repeated (warm) pattern queries against one resident
// host graph. The coalesced path is the planarsid architecture — a
// registry-owned shared Index behind the micro-batching scheduler, so
// requests landing in one window share a single Scan — while the
// perRequest path is what a stateless server does: build an Index (and
// with it all target-side preprocessing) per request. Both paths assert
// their answers against the direct API.
func BenchmarkServeLoad(b *testing.B) {
	rng := rand.New(rand.NewPCG(12, 34))
	g := graph.RandomPlanar(1<<11, 0.7, rng)
	patterns := indexBenchBatch()
	opt := planarsi.Options{Seed: 1, MaxRuns: 8}
	want := make([]bool, len(patterns))
	for i, h := range patterns {
		var err error
		if want[i], err = planarsi.Decide(g, h, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("coalesced", func(b *testing.B) {
		reg := serve.NewRegistry(serve.RegistryOptions{Pipeline: core.Options{Seed: 1, MaxRuns: 8}})
		e, err := reg.Register("g", g, true)
		if err != nil {
			b.Fatal(err)
		}
		sched := serve.NewScheduler(serve.SchedulerOptions{Window: 500 * time.Microsecond})
		var next atomic.Int64
		b.SetParallelism(8) // 8 concurrent clients per core: load to coalesce
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := int(next.Add(1)-1) % len(patterns)
				res, err := sched.Submit(context.Background(), e, serve.KindDecide, patterns[i])
				if err != nil || res.Err != nil {
					b.Errorf("submit: %v / %v", err, res.Err)
					return
				}
				if res.Found != want[i] {
					b.Errorf("pattern %d: got %v, want %v", i, res.Found, want[i])
					return
				}
			}
		})
		st := sched.Stats()
		if st.Batches > 0 {
			b.ReportMetric(float64(st.Requests)/float64(st.Batches), "req/batch")
		}
	})
	b.Run("perRequest", func(b *testing.B) {
		var next atomic.Int64
		b.SetParallelism(8)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := int(next.Add(1)-1) % len(patterns)
				ix := planarsi.NewIndex(g, opt)
				found, err := ix.Decide(patterns[i])
				if err != nil {
					b.Errorf("decide: %v", err)
					return
				}
				if found != want[i] {
					b.Errorf("pattern %d: got %v, want %v", i, found, want[i])
					return
				}
			}
		})
	})
}

func benchTD(b *testing.B, h treedecomp.Heuristic) {
	rng := rand.New(rand.NewPCG(9, 10))
	g := graph.Apollonian(300, rng)
	cov := cover.Build(g, cover.Params{K: 4, D: 2}, rng, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, band := range cov.Bands {
			treedecomp.Build(band.G, h)
		}
	}
}

// ---- Multi-pattern scan: shared sweeps vs per-pattern queries ----

// benchPermuted relabels h under a fixed scramble — an isomorphic
// pattern that exercises the scan's canonical dedupe.
func benchPermuted(h *planarsi.Graph, seed uint64) *planarsi.Graph {
	rng := rand.New(rand.NewPCG(seed, 99))
	perm := rng.Perm(h.N())
	bld := planarsi.NewBuilder(h.N())
	for _, e := range h.Edges() {
		bld.AddEdge(int32(perm[e[0]]), int32(perm[e[1]]))
	}
	return bld.Build()
}

// BenchmarkScanMultiPattern measures the batching leverage of Scan on a
// warm index at n = 2^12: "shared" batches draw relabeled (k=4, d=2)
// motifs that dedupe and share one group sweep, "mixed" batches spread
// across shapes so most members dispatch separately. The solo variants
// answer the same patterns one Decide at a time — the baseline the
// batch variants are compared against (answers are asserted identical
// in both).
func BenchmarkScanMultiPattern(b *testing.B) {
	rng := rand.New(rand.NewPCG(9, 12))
	g := graph.RandomPlanar(1<<12, 0.7, rng)
	opt := planarsi.Options{Seed: 21}

	paw := planarsi.NewBuilder(4) // triangle with a pendant: k=4, d=2
	paw.AddEdge(0, 1)
	paw.AddEdge(1, 2)
	paw.AddEdge(0, 2)
	paw.AddEdge(2, 3)
	diamond := planarsi.NewBuilder(4) // K4 minus an edge: k=4, d=2
	diamond.AddEdge(0, 1)
	diamond.AddEdge(0, 2)
	diamond.AddEdge(1, 2)
	diamond.AddEdge(1, 3)
	diamond.AddEdge(2, 3)
	sharedPool := []*planarsi.Graph{graph.Cycle(4), diamond.Build(), paw.Build(), graph.Star(4)}
	mixedPool := []*planarsi.Graph{
		graph.Cycle(4), graph.Cycle(6), graph.Path(4), graph.Path(6),
		graph.Star(5), graph.Cycle(5), graph.Path(5), graph.Star(6),
	}

	for _, tc := range []struct {
		name string
		pool []*planarsi.Graph
	}{{"shared", sharedPool}, {"mixed", mixedPool}} {
		for _, np := range []int{1, 4, 8, 16} {
			patterns := make([]*planarsi.Graph, np)
			for i := range patterns {
				patterns[i] = benchPermuted(tc.pool[i%len(tc.pool)], uint64(i))
			}
			ix := planarsi.NewIndex(g, opt)
			want := make([]bool, np)
			for i, h := range patterns { // warm covers; record expected answers
				found, err := ix.Decide(h)
				if err != nil {
					b.Fatal(err)
				}
				want[i] = found
			}
			b.Run(fmt.Sprintf("%s/np=%d/batch", tc.name, np), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for j, r := range ix.Scan(context.Background(), patterns) {
						if r.Err != nil || r.Found != want[j] {
							b.Fatalf("member %d: %+v, want found=%v", j, r, want[j])
						}
					}
				}
				b.ReportMetric(float64(np)*float64(b.N)/b.Elapsed().Seconds(), "patterns/s")
			})
			b.Run(fmt.Sprintf("%s/np=%d/solo", tc.name, np), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for j, h := range patterns {
						found, err := ix.Decide(h)
						if err != nil || found != want[j] {
							b.Fatalf("member %d: %v %v, want %v", j, found, err, want[j])
						}
					}
				}
				b.ReportMetric(float64(np)*float64(b.N)/b.Elapsed().Seconds(), "patterns/s")
			})
		}
	}
}
