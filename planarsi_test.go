package planarsi_test

import (
	"math/rand/v2"
	"testing"

	"planarsi"
)

func TestPublicDecide(t *testing.T) {
	g := planarsi.Grid(10, 10)
	h := planarsi.Cycle(4)
	found, err := planarsi.Decide(g, h, planarsi.Options{Seed: 1})
	if err != nil || !found {
		t.Fatalf("C4 in grid: %v, %v", found, err)
	}
	tri := planarsi.Cycle(3)
	found, err = planarsi.Decide(g, tri, planarsi.Options{Seed: 1})
	if err != nil || found {
		t.Fatalf("triangle in bipartite grid: %v, %v", found, err)
	}
}

func TestPublicFindAndVerify(t *testing.T) {
	g := planarsi.Wheel(12)
	h := planarsi.Cycle(3) // hub + two adjacent rim vertices
	occ, err := planarsi.FindOccurrence(g, h, planarsi.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if occ == nil {
		t.Fatal("triangle in wheel not found")
	}
	if !planarsi.VerifyOccurrence(g, h, occ) {
		t.Fatalf("occurrence does not verify: %v", occ)
	}
}

func TestPublicListAndCount(t *testing.T) {
	g := planarsi.Grid(3, 3)
	h := planarsi.Cycle(4)
	occs, err := planarsi.ListOccurrences(g, h, planarsi.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// 4 unit squares x 8 automorphic maps.
	if len(occs) != 32 {
		t.Fatalf("listed %d occurrences, want 32", len(occs))
	}
	count, err := planarsi.CountOccurrences(g, h, planarsi.Options{Seed: 3})
	if err != nil || count != 32 {
		t.Fatalf("count = %d, %v; want 32", count, err)
	}
}

func TestPublicVertexConnectivity(t *testing.T) {
	cases := []struct {
		g    *planarsi.Graph
		want int
	}{
		{planarsi.Path(8), 1},
		{planarsi.Cycle(9), 2},
		{planarsi.Wheel(9), 3},
		{planarsi.Bipyramid(5), 4},
		{planarsi.Icosahedron(), 5},
	}
	for i, tc := range cases {
		res, err := planarsi.VertexConnectivity(tc.g, planarsi.Options{Seed: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Connectivity != tc.want {
			t.Fatalf("case %d: connectivity %d, want %d", i, res.Connectivity, tc.want)
		}
		if res.Cut != nil && !planarsi.VerifyCut(tc.g, res.Cut) {
			t.Fatalf("case %d: cut does not verify", i)
		}
	}
}

func TestPublicSeparatingSearch(t *testing.T) {
	// Double wheel: rim cycle separates the two hubs.
	rim := 6
	b := planarsi.NewBuilder(rim + 2)
	for i := 0; i < rim; i++ {
		b.AddEdge(int32(i), int32((i+1)%rim))
		b.AddEdge(int32(i), int32(rim))
		b.AddEdge(int32(i), int32(rim+1))
	}
	g := b.Build()
	s := make([]bool, g.N())
	s[rim], s[rim+1] = true, true
	occ, err := planarsi.DecideSeparating(g, planarsi.Cycle(rim), s, planarsi.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if occ == nil || !planarsi.VerifySeparating(g, planarsi.Cycle(rim), s, occ) {
		t.Fatalf("separating rim not found/verified: %v", occ)
	}
}

func TestPublicDisconnectedPattern(t *testing.T) {
	g := planarsi.DisjointUnion(planarsi.Cycle(3), planarsi.Cycle(3))
	h := planarsi.DisjointUnion(planarsi.Cycle(3), planarsi.Cycle(3))
	found, err := planarsi.Decide(g, h, planarsi.Options{Seed: 5})
	if err != nil || !found {
		t.Fatalf("two triangles: %v, %v", found, err)
	}
	if _, err := planarsi.ListOccurrences(g, h, planarsi.Options{}); err != planarsi.ErrDisconnectedPattern {
		t.Fatalf("List on disconnected pattern: err = %v", err)
	}
}

func TestPublicErrors(t *testing.T) {
	g := planarsi.Grid(5, 5)
	if _, err := planarsi.Decide(g, planarsi.Path(planarsi.MaxPatternSize+1), planarsi.Options{}); err == nil {
		t.Fatal("expected ErrPatternTooLarge")
	}
}

func TestPublicTrackerAndStats(t *testing.T) {
	tr := planarsi.NewTracker()
	var st planarsi.Stats
	g := planarsi.Grid(12, 12)
	found, err := planarsi.Decide(g, planarsi.Cycle(4), planarsi.Options{Seed: 6, Tracker: tr, Stats: &st})
	if err != nil || !found {
		t.Fatalf("decide: %v, %v", found, err)
	}
	if tr.Work() == 0 || tr.Rounds() == 0 {
		t.Fatalf("tracker empty: %v", tr)
	}
	if st.Runs == 0 || st.Bands == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}

func TestPublicGenerators(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	embedded := []*planarsi.Graph{
		planarsi.Path(5), planarsi.Cycle(5), planarsi.Star(5), planarsi.Wheel(6),
		planarsi.Grid(4, 4), planarsi.GridWithDiagonals(3, 3), planarsi.Bipyramid(5),
		planarsi.Tetrahedron(), planarsi.Cube(), planarsi.Octahedron(),
		planarsi.Dodecahedron(), planarsi.Icosahedron(),
		planarsi.Apollonian(25, rng), planarsi.RandomPlanar(30, 0.5, rng),
	}
	for i, g := range embedded {
		if err := planarsi.ValidateEmbedding(g); err != nil {
			t.Fatalf("generator %d: %v", i, err)
		}
	}
	if planarsi.Diameter(planarsi.Path(9)) != 8 {
		t.Fatal("diameter of P9 must be 8")
	}
	if !planarsi.IsConnected(planarsi.Cycle(4)) {
		t.Fatal("cycle must be connected")
	}
}

func TestPublicPlanarity(t *testing.T) {
	if !planarsi.IsPlanar(planarsi.Grid(5, 5)) {
		t.Fatal("grid must be planar")
	}
	if planarsi.IsPlanar(planarsi.Complete(5)) {
		t.Fatal("K5 must not be planar")
	}
	// Raw edge-list graph: embed, then run connectivity on it directly
	// (VertexConnectivity embeds automatically).
	raw := planarsi.FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	emb, err := planarsi.EmbedPlanar(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := planarsi.ValidateEmbedding(emb); err != nil {
		t.Fatal(err)
	}
	res, err := planarsi.VertexConnectivity(raw, planarsi.Options{Seed: 3})
	if err != nil || res.Connectivity != 2 {
		t.Fatalf("raw C4 connectivity = %d, %v; want 2", res.Connectivity, err)
	}
	if _, err := planarsi.VertexConnectivity(planarsi.TorusGrid(4, 4), planarsi.Options{}); err == nil {
		t.Fatal("connectivity of a non-planar graph must fail")
	}
}
