package match

import (
	"math/bits"
	"slices"
	"sync"
)

// This file is the flat state-set substrate the two DP engines run on.
// The dynamic program only ever *inserts* states and *iterates* sets (a
// node's set is written once, bottom-up, then read by its parent and by
// top-down reconstruction), so the substrate drops everything a generic
// map pays for that the DP does not need: no deletion, no tombstones, no
// per-entry heap boxes, no rehash-on-iterate. A StateSet is a dense
// insertion-ordered []State plus a power-of-two open-addressing table of
// uint32 slot references used only for duplicate detection; iteration
// walks the dense slice and is both cache-friendly and deterministic.
// Sets come from a per-run arena (see arena below) so a DP over millions
// of nodes recycles a bounded pool of tables instead of allocating one
// map per node.

// StateSet is an insert-only set of States: a dense insertion-ordered
// slice plus an open-addressing index for membership. The zero value and
// the nil pointer are both valid empty sets for reading (Len, Contains,
// States); Add requires a non-nil receiver.
type StateSet struct {
	states []State
	// table holds 1-based indices into states (0 = empty slot), sized a
	// power of two; linear probing, no tombstones (insert-only).
	table []uint32
	mask  uint64
}

// NewStateSet returns an empty set pre-sized for about hint states.
func NewStateSet(hint int) *StateSet {
	s := &StateSet{}
	s.Reserve(hint)
	return s
}

// Len returns the number of states in the set.
func (s *StateSet) Len() int {
	if s == nil {
		return 0
	}
	return len(s.states)
}

// States returns the dense slice of states in insertion order. The slice
// aliases the set's storage: callers must not modify it and must not use
// it after the set is recycled.
func (s *StateSet) States() []State {
	if s == nil {
		return nil
	}
	return s.states
}

// Reset empties the set, keeping both the dense slice's and the table's
// capacity for reuse.
func (s *StateSet) Reset() {
	s.states = s.states[:0]
	clear(s.table) // memclr: 0 means empty, so no -1 refill pass
}

// Reserve grows the table so about hint states fit without rehashing.
func (s *StateSet) Reserve(hint int) {
	need := hint + hint/2 // keep load factor under 2/3
	if need < 8 {
		need = 8
	}
	if len(s.table) >= need {
		return
	}
	size := uint64(1) << bits.Len64(uint64(need-1))
	s.rehash(int(size))
	if cap(s.states) < hint {
		s.states = slices.Grow(s.states, hint-len(s.states))
	}
}

// rehash replaces the table with one of the given power-of-two size and
// reinserts the references of every held state.
func (s *StateSet) rehash(size int) {
	if cap(s.table) >= size {
		s.table = s.table[:size]
		clear(s.table)
	} else {
		s.table = make([]uint32, size)
	}
	s.mask = uint64(size - 1)
	for idx := range s.states {
		i := hashState(&s.states[idx]) & s.mask
		for s.table[i] != 0 {
			i = (i + 1) & s.mask
		}
		s.table[i] = uint32(idx) + 1
	}
}

// Add inserts st and reports whether it was not already present.
func (s *StateSet) Add(st State) bool {
	if len(s.states)*3 >= len(s.table)*2 {
		s.Reserve(2*len(s.states) + 8)
	}
	i := hashState(&st) & s.mask
	for {
		ref := s.table[i]
		if ref == 0 {
			s.table[i] = uint32(len(s.states)) + 1
			s.states = append(s.states, st)
			return true
		}
		if s.states[ref-1] == st {
			return false
		}
		i = (i + 1) & s.mask
	}
}

// IndexOf returns st's insertion index in States(), or -1 when absent.
// It lets a StateSet double as the dense state-numbering the path-DAG
// engine needs (replacing a separate map[State]int32 per level).
func (s *StateSet) IndexOf(st State) int {
	if s == nil || len(s.table) == 0 {
		return -1
	}
	i := hashState(&st) & s.mask
	for {
		ref := s.table[i]
		if ref == 0 {
			return -1
		}
		if s.states[ref-1] == st {
			return int(ref) - 1
		}
		i = (i + 1) & s.mask
	}
}

// Contains reports whether st is in the set.
func (s *StateSet) Contains(st State) bool {
	if s == nil || len(s.table) == 0 {
		return false
	}
	i := hashState(&st) & s.mask
	for {
		ref := s.table[i]
		if ref == 0 {
			return false
		}
		if s.states[ref-1] == st {
			return true
		}
		i = (i + 1) & s.mask
	}
}

// packPhi packs the 16 slot bytes of a Phi array into two little-endian
// words; together with C/In/Out/IX/OX they canonically encode a state, so
// hashing and signature ordering work on machine words instead of struct
// fields.
func packPhi(phi *[MaxK]int8) (uint64, uint64) {
	var w0, w1 uint64
	for i := 0; i < 8; i++ {
		w0 |= uint64(uint8(phi[i])) << (8 * i)
		w1 |= uint64(uint8(phi[i+8])) << (8 * i)
	}
	return w0, w1
}

// wymix is the wyhash/wyrand folding primitive: full 64×64→128 multiply,
// xor of the halves. Two multiplies per word pair give plenty of
// avalanche for a power-of-two table with linear probing.
func wymix(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return hi ^ lo
}

const (
	wyp0 = 0xa0761d6478bd642f
	wyp1 = 0xe7037ed1a0b428db
	wyp2 = 0x8ebc6af09c88c6e3
	wyp3 = 0x589965cc75374cc3
)

// hashState hashes the canonical 4-word packing of a state. It is a plain
// function of the state's bytes (no per-process seed), so table layouts —
// and therefore every downstream iteration order — are reproducible.
func hashState(s *State) uint64 {
	w0, w1 := packPhi(&s.Phi)
	w2 := uint64(s.In) | uint64(s.Out)<<32
	w3 := uint64(s.C)
	if s.IX {
		w3 |= 1 << 16
	}
	if s.OX {
		w3 |= 1 << 17
	}
	return wymix(w0^wyp0, wymix(w1^wyp1, wymix(w2^wyp2, w3^wyp3)))
}

// arena recycles StateSets within one engine. get/put are mutex-guarded:
// the sequential engine calls them uncontended once per node, and the
// path-DAG engine calls them once per path from parallel workers — never
// from a per-state hot loop.
type arena struct {
	mu   sync.Mutex
	free []*StateSet
}

// get returns an empty set sized for about hint states, reusing a
// recycled one when available.
func (a *arena) get(hint int) *StateSet {
	a.mu.Lock()
	var s *StateSet
	if n := len(a.free); n > 0 {
		s = a.free[n-1]
		a.free = a.free[:n-1]
	}
	a.mu.Unlock()
	if s == nil {
		return NewStateSet(hint)
	}
	s.Reserve(hint)
	return s
}

// put recycles a set. The caller must be done with every slice previously
// obtained from it via States().
func (a *arena) put(s *StateSet) {
	if s == nil {
		return
	}
	s.Reset()
	a.mu.Lock()
	a.free = append(a.free, s)
	a.mu.Unlock()
}

// sigKey is a join signature (Phi, In, Out) packed into three comparable
// words; equal keys correspond exactly to equal JoinSignatures.
type sigKey struct {
	w0, w1, w2 uint64
}

func (s *State) sigKeyOf() sigKey {
	w0, w1 := packPhi(&s.Phi)
	return sigKey{w0, w1, uint64(s.In) | uint64(s.Out)<<32}
}

func cmpSigKey(a, b sigKey) int {
	switch {
	case a.w0 != b.w0:
		if a.w0 < b.w0 {
			return -1
		}
		return 1
	case a.w1 != b.w1:
		if a.w1 < b.w1 {
			return -1
		}
		return 1
	case a.w2 != b.w2:
		if a.w2 < b.w2 {
			return -1
		}
		return 1
	}
	return 0
}

type sigEntry struct {
	key sigKey
	st  State
}

// JoinIndex answers "which states of this set share a given join
// signature": the sort-by-signature + bucket-scan replacement for the
// map[JoinSignature][]State both engines used to rebuild per join. Build
// reuses the entry slice across calls, so one JoinIndex per run (or per
// path worker) makes signature grouping allocation-free in steady state.
// A JoinIndex must not be shared between concurrent goroutines.
type JoinIndex struct {
	entries []sigEntry
}

// Build (re)indexes the given states, sorted by signature.
func (ji *JoinIndex) Build(states []State) {
	ji.entries = ji.entries[:0]
	ji.entries = slices.Grow(ji.entries, len(states))
	for i := range states {
		ji.entries = append(ji.entries, sigEntry{states[i].sigKeyOf(), states[i]})
	}
	slices.SortFunc(ji.entries, func(a, b sigEntry) int { return cmpSigKey(a.key, b.key) })
}

// Bucket returns the half-open entry range [lo, hi) of states sharing s's
// join signature; access them with At.
func (ji *JoinIndex) Bucket(s *State) (int, int) {
	key := s.sigKeyOf()
	lo, found := slices.BinarySearchFunc(ji.entries, key,
		func(e sigEntry, k sigKey) int { return cmpSigKey(e.key, k) })
	if !found {
		return lo, lo
	}
	hi := lo + 1
	for hi < len(ji.entries) && ji.entries[hi].key == key {
		hi++
	}
	return lo, hi
}

// At returns the state of entry t. The pointer is valid until the next
// Build.
func (ji *JoinIndex) At(t int) *State {
	return &ji.entries[t].st
}
