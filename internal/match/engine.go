package match

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"planarsi/internal/graph"
	"planarsi/internal/obs"
	"planarsi/internal/par"
	"planarsi/internal/treedecomp"
	"planarsi/internal/wd"
)

// Problem is one bounded-treewidth subgraph isomorphism instance: find the
// pattern H inside the target G, guided by the nice decomposition ND of G.
type Problem struct {
	G  *graph.Graph
	H  *graph.Graph
	ND *treedecomp.Nice

	// Separating switches on the Section 5.2.2 extension.
	Separating bool
	// Allowed restricts the vertices of G that may be images of pattern
	// vertices (nil = all). Separating covers mark merged minor vertices
	// as not allowed.
	Allowed []bool
	// S is the vertex set to separate (separating mode only).
	S []bool
	// DecideOnly lets the engines recycle the state set of every child
	// node back to the run arena as soon as its parent has consumed it,
	// bounding peak memory by the active frontier instead of the whole
	// tree. Only the root set survives: Found works, Enumerate panics.
	DecideOnly bool
	// Cancel, when non-nil, lets the engines abandon the DP mid-flight:
	// they poll it at node (sequential engine) and path (pmdag)
	// boundaries and return early with a partial Result once it fires.
	// Callers that observe Cancel fired must discard the Result — only
	// completeness of the run, never the content of completed node sets,
	// is affected, so an uncancelled rerun produces identical answers.
	Cancel *par.Canceller
	// Trace, when non-nil, receives one event when the engine observes
	// Cancel fired at a checkpoint — the span that makes mid-band
	// cancellation visible in a query's trace timeline. Never touched on
	// the per-state hot path.
	Trace *obs.Recorder
	// Cost, when non-nil, accumulates the run's DP cost counters.
	// Engines batch deltas into locals and flush them at the same
	// program points as AddStatesGenerated (once per node here, once
	// per path in pmdag), flushing the same emission local to both, so
	// Cost.Emissions always equals StatesGenerated exactly and the
	// disabled path stays one nil check per flush site.
	Cost *obs.CostCounter
}

func (p *Problem) allowed(v int32) bool {
	return p.Allowed == nil || p.Allowed[v]
}

// Result carries the per-node valid state sets of a DP run. It doubles as
// the transition engine: the *Successors methods are shared between the
// sequential bottom-up run (Section 3.2) and the path-DAG parallel engine
// of Section 3.3 (package pmdag), so both compute identical semantics.
type Result struct {
	p *Problem
	// Sets[i] holds the valid states of nice node i (nil when the node
	// has not been solved, or when its set was recycled in DecideOnly
	// mode after its parent consumed it).
	Sets []*StateSet
	pi   patternInfo
	// nodeSlot caches, per nice node, the slot of the introduced vertex
	// in its own bag (introduce nodes) or of the forgotten vertex in the
	// child's bag (forget nodes); -1 elsewhere. introAdj caches, per
	// introduce node, the bitmask of bag slots holding G-neighbors of the
	// introduced vertex. Both are per-node constants that the per-state
	// transition loops would otherwise recompute million-fold.
	nodeSlot []int32
	introAdj []uint32
	// statesGenerated counts every state emission (the work measure the
	// Lemma 3.1 experiments report). The transition methods themselves do
	// NOT touch it: callers accumulate emissions in a plain local int64
	// and flush once per node (sequential engine) or once per path
	// (pmdag) via AddStatesGenerated, so the per-emission hot path runs
	// zero atomic operations.
	statesGenerated atomic.Int64
	// arena recycles per-node StateSets within this run.
	arena arena
}

// StatesGenerated returns the number of state emissions so far.
func (r *Result) StatesGenerated() int64 { return r.statesGenerated.Load() }

// AddStatesGenerated flushes a batch of locally counted state emissions
// into the work counter. Engines call this once per node or per path, not
// per emission.
func (r *Result) AddStatesGenerated(n int64) {
	if n != 0 {
		r.statesGenerated.Add(n)
	}
}

// NewSet returns an empty StateSet from the run's arena, pre-sized for
// about hint states. Engines use it for the per-node sets they store into
// Sets.
func (r *Result) NewSet(hint int) *StateSet { return r.arena.get(hint) }

// RecycleNode returns node i's state set to the run arena and clears the
// entry. The caller must be the set's only remaining consumer; in the
// bottom-up order that is node i's parent, right after it consumed the
// set (DecideOnly mode).
func (r *Result) RecycleNode(i int32) {
	if s := r.Sets[i]; s != nil {
		r.Sets[i] = nil
		r.arena.put(s)
	}
}

// Recycle returns a scratch set obtained from NewSet to the run arena.
// The caller must hold the only reference (including States() slices).
func (r *Result) Recycle(s *StateSet) { r.arena.put(s) }

// nodeMeta is the pattern-independent per-node metadata of a (target,
// decomposition) pair: the introduced/forgotten vertex's slot and the
// introduce-node neighbor masks. It depends on G and ND only, so a
// multi-pattern sweep computes it once and shares it (read-only) across
// every pattern's engine.
type nodeMeta struct {
	nodeSlot []int32
	introAdj []uint32
}

// buildNodeMeta computes the shared per-node metadata for (g, nd).
func buildNodeMeta(g *graph.Graph, nd *treedecomp.Nice) nodeMeta {
	n := nd.NumNodes()
	m := nodeMeta{nodeSlot: make([]int32, n), introAdj: make([]uint32, n)}
	for i := 0; i < n; i++ {
		m.nodeSlot[i] = -1
		switch nd.Kind[i] {
		case treedecomp.Introduce:
			v := nd.Vertex[i]
			m.nodeSlot[i] = int32(nd.Slot(int32(i), v))
			var mask uint32
			for _, w := range g.Neighbors(v) {
				if ws := nd.Slot(int32(i), w); ws >= 0 {
					mask |= 1 << uint(ws)
				}
			}
			m.introAdj[i] = mask
		case treedecomp.Forget:
			m.nodeSlot[i] = int32(nd.Slot(nd.Left[i], nd.Vertex[i]))
		}
	}
	return m
}

// newEngineMeta builds one pattern's engine on top of shared node
// metadata.
func newEngineMeta(p *Problem, m nodeMeta) *Result {
	r := &Result{p: p, pi: newPatternInfo(p.H)}
	r.Sets = make([]*StateSet, p.ND.NumNodes())
	r.nodeSlot = m.nodeSlot
	r.introAdj = m.introAdj
	return r
}

// NewEngine prepares a Result shell usable as a transition engine without
// running the bottom-up DP (pmdag drives the transitions itself).
func NewEngine(p *Problem) *Result {
	if p.ND.Width+1 > MaxBag {
		panic(fmt.Sprintf("match: bag size %d exceeds %d", p.ND.Width+1, MaxBag))
	}
	return newEngineMeta(p, buildNodeMeta(p.G, p.ND))
}

// NewEngines prepares one engine per problem of a multi-pattern sweep.
// All problems must share the same target graph and nice decomposition
// (their H, Cancel, Cost and flags may differ); the pattern-independent
// per-node metadata is computed once and shared read-only.
func NewEngines(ps []*Problem) []*Result {
	if len(ps) == 0 {
		return nil
	}
	p0 := ps[0]
	if p0.ND.Width+1 > MaxBag {
		panic(fmt.Sprintf("match: bag size %d exceeds %d", p0.ND.Width+1, MaxBag))
	}
	for _, p := range ps[1:] {
		if p.G != p0.G || p.ND != p0.ND {
			panic("match: NewEngines requires problems sharing one target and decomposition")
		}
	}
	m := buildNodeMeta(p0.G, p0.ND)
	rs := make([]*Result, len(ps))
	for i, p := range ps {
		rs[i] = newEngineMeta(p, m)
	}
	return rs
}

// Problem returns the instance this engine was built for.
func (r *Result) Problem() *Problem { return r.p }

// K returns the pattern size.
func (r *Result) K() int { return r.pi.k }

// AllMatchedMask returns the C mask meaning every pattern vertex matched.
func (r *Result) AllMatchedMask() uint16 { return r.pi.allMatched() }

// Found reports whether the root certifies an occurrence: every pattern
// vertex matched, and in separating mode S seen on both sides.
func (r *Result) Found() bool {
	root := r.p.ND.Root
	want := r.pi.allMatched()
	// A cancelled run may never have solved the root; States() on the nil
	// set is empty, so a partial result reports not-found rather than
	// crashing (callers that saw Cancel fire discard the answer anyway).
	for _, s := range r.Sets[root].States() {
		if s.C == want && (!r.p.Separating || (s.IX && s.OX)) {
			return true
		}
	}
	return false
}

// Run executes the sequential bottom-up DP (Section 3.2) and returns the
// per-node valid state sets.
func Run(p *Problem, tr *wd.Tracker) *Result {
	r := NewEngine(p)
	runSequential([]*Result{r}, tr)
	return r
}

// RunMulti executes the sequential bottom-up DP for several patterns in
// one pass over the shared decomposition: the node traversal is walked
// once, and each still-active pattern performs its own
// introduce/forget/join at every node. Per-pattern state sets, emission
// counts and cost flushes are byte-identical to len(ps) separate Run
// calls — only the tree walk (and the NewEngines node metadata) is
// shared. A pattern whose Cancel fires drops out of the sweep at its
// next node checkpoint with a partial Result, exactly as a solo Run
// would, without stopping its batch-mates.
func RunMulti(ps []*Problem, tr *wd.Tracker) []*Result {
	rs := NewEngines(ps)
	runSequential(rs, tr)
	return rs
}

// runSequential drives the bottom-up node loop for one or more engines
// sharing a decomposition.
func runSequential(rs []*Result, tr *wd.Tracker) {
	if len(rs) == 0 {
		return
	}
	nd := rs[0].p.ND
	jis := make([]JoinIndex, len(rs))
	alive := make([]bool, len(rs))
	remaining := len(rs)
	for x := range alive {
		alive[x] = true
	}
	for _, i := range nd.Order {
		if remaining == 0 {
			break
		}
		for x, r := range rs {
			if !alive[x] {
				continue
			}
			if r.p.Cancel.Cancelled() {
				// Partial: the caller observed Cancel and discards this
				// pattern's Result. The single event marks where in the
				// bottom-up order the pattern's run was abandoned.
				r.p.Trace.Event("dp.cancel", -1, -1, "sequential engine abandoned at node checkpoint")
				alive[x] = false
				remaining--
				continue
			}
			r.runNode(i, &jis[x], tr)
		}
	}
	// A cancelled solo Run returns before its round flush; completed
	// patterns flush the same per-run round count a solo Run would.
	for x := range rs {
		if alive[x] {
			tr.AddPhaseRounds("dp", int64(nd.NumNodes()))
		}
	}
}

// runNode executes one pattern's bottom-up step at nice node i.
func (r *Result) runNode(i int32, ji *JoinIndex, tr *wd.Tracker) {
	p := r.p
	nd := p.ND
	var set *StateSet
	// emitted batches this node's state emissions; one flush per node
	// keeps atomics out of the per-emission path.
	var emitted int64
	switch nd.Kind[i] {
	case treedecomp.Leaf:
		set = r.arena.get(1)
		set.Add(emptyState())
	case treedecomp.Introduce:
		child := r.Sets[nd.Left[i]]
		set = r.arena.get(child.Len())
		for _, cs := range child.States() {
			r.IntroduceSuccessors(i, cs, func(s State, _ bool) {
				set.Add(s)
				emitted++
			})
		}
	case treedecomp.Forget:
		child := r.Sets[nd.Left[i]]
		set = r.arena.get(child.Len())
		for _, cs := range child.States() {
			emitted++
			if s, ok := r.ForgetSuccessor(i, cs); ok {
				set.Add(s)
			}
		}
	case treedecomp.Join:
		set = r.joinStep(r.Sets[nd.Left[i]], r.Sets[nd.Right[i]], ji, &emitted)
	}
	r.Sets[i] = set
	r.AddStatesGenerated(emitted)
	if p.Cost != nil {
		// Children are still resident here (DecideOnly recycles
		// below), so their lengths price the states read.
		var read int64
		if l := nd.Left[i]; l >= 0 {
			read += int64(r.Sets[l].Len())
		}
		if rt := nd.Right[i]; rt >= 0 {
			read += int64(r.Sets[rt].Len())
		}
		c := obs.Cost{
			Nodes:     1,
			States:    int64(set.Len()),
			Emissions: emitted,
			Bytes:     (read + int64(set.Len())) * StateBytes,
		}
		if nd.Kind[i] == treedecomp.Join {
			c.Joins = emitted
		}
		p.Cost.Add(c)
	}
	tr.AddPhaseWork("dp", int64(set.Len()))
	if p.DecideOnly {
		if l := nd.Left[i]; l >= 0 {
			r.RecycleNode(l)
		}
		if rt := nd.Right[i]; rt >= 0 {
			r.RecycleNode(rt)
		}
	}
}

// IntroduceSuccessors enumerates the parent states that child state cs of
// introduce node i transitions to, calling emit(state, newMatch) for each.
// newMatch is true exactly when the transition maps a new pattern vertex
// (a non-forest edge of Section 3.3.2); the skip/label transitions are the
// no-new-match extensions of Figure 5. The caller counts emissions (one
// per emit call) and flushes them via AddStatesGenerated.
func (r *Result) IntroduceSuccessors(i int32, cs State, emit func(State, bool)) {
	p, pi := r.p, &r.pi
	nd := p.ND
	v := nd.Vertex[i]
	slot := int(r.nodeSlot[i])
	adjMask := r.introAdj[i]
	// The mapped-vertex mask is invariant under slot remapping, so it is
	// computed in the same pass that shifts the slots instead of by a
	// second k-iteration MMask scan per state.
	base, mmask := remapIntroduceM(cs, slot, pi.k)
	// Option (a): leave v unmatched by the pattern.
	if !p.Separating {
		emit(base, false)
	} else {
		// Label v inside or outside, respecting G-edges to other
		// unmapped bag vertices. Label masks only carry bits on unmapped
		// slots (a vertex is mapped only at its own introduce, before any
		// label), so intersecting them with the neighbor mask suffices.
		forcedIn := base.In&adjMask != 0
		forcedOut := base.Out&adjMask != 0
		if !(forcedIn && forcedOut) {
			if !forcedOut {
				s := base
				s.In |= 1 << uint(slot)
				if p.S != nil && p.S[v] {
					s.IX = true
				}
				emit(s, false)
			}
			if !forcedIn {
				s := base
				s.Out |= 1 << uint(slot)
				if p.S != nil && p.S[v] {
					s.OX = true
				}
				emit(s, false)
			}
		}
	}
	// Option (b): map some unmatched pattern vertex u onto v.
	if !p.allowed(v) {
		return
	}
	for u := 0; u < pi.k; u++ {
		if base.Phi[u] >= 0 || base.C&(1<<u) != 0 {
			continue
		}
		// No H-neighbor of u may be matched-in-a-child.
		if pi.adj[u]&base.C != 0 {
			continue
		}
		// Every H-neighbor already in M must map to a G-neighbor of v.
		ok := true
		for nb := pi.adj[u] & mmask; nb != 0; nb &= nb - 1 {
			w := bits.TrailingZeros16(nb)
			if adjMask>>uint(base.Phi[w])&1 == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		s := base
		s.Phi[u] = int8(slot)
		emit(s, true)
	}
}

// ForgetSuccessor computes the unique parent state of child state cs at
// forget node i, or ok=false when the transition is invalid (a mapped
// vertex leaves the bag while an H-neighbor is still unmatched). Forget
// transitions never match a new vertex: they are always forest edges.
// Like all transitions it does not count work; the caller accumulates one
// emission per call.
func (r *Result) ForgetSuccessor(i int32, cs State) (State, bool) {
	pi := &r.pi
	slot := int(r.nodeSlot[i]) // slot of v in the child's bag
	// One pass finds the pattern vertex mapped to the forgotten slot (if
	// any) and builds the mapped mask the validity check needs.
	mapped := -1
	var mmask uint16
	for u := 0; u < pi.k; u++ {
		if cs.Phi[u] >= 0 {
			mmask |= 1 << u
			if cs.Phi[u] == int8(slot) {
				mapped = u
			}
		}
	}
	if mapped >= 0 {
		// u's image leaves the bags: all H-neighbors must already be
		// matched (in M or C), else an edge could never realize.
		if pi.adj[mapped]&^(mmask|cs.C) != 0 {
			return State{}, false
		}
		s := remapForget(cs, slot)
		s.Phi[mapped] = -1
		s.C |= 1 << uint(mapped)
		return s, true
	}
	return remapForget(cs, slot), true
}

// JoinSignature is the shared-bag part of a state two join children must
// agree on.
type JoinSignature struct {
	Phi     [MaxK]int8
	In, Out uint32
}

// Signature extracts the join signature of a state.
func (s *State) Signature() JoinSignature {
	return JoinSignature{Phi: s.Phi, In: s.In, Out: s.Out}
}

// JoinCombine merges compatible sibling states at a join: equal signatures
// (caller's responsibility), disjoint C sets, and no H-edge between the C
// sets. The second return is false when incompatible. The caller counts
// one emission per call.
func (r *Result) JoinCombine(ls, rs State) (State, bool) {
	return combineJoin(&r.pi, ls, rs)
}

// joinBlock returns the word-parallel join compatibility mask of a C
// set: c itself plus the union of its members' H-neighborhoods. A right
// state rs (same signature) is join-compatible with a left state of C
// set c exactly when joinBlock(c) & rs.C == 0 — the two C sets are
// disjoint AND no H-edge connects them — so the per-state subset probe
// of combineJoin (a loop over c's bits) collapses to one AND over the
// packed C word, computed once per left state and amortized over its
// whole signature bucket.
func (pi *patternInfo) joinBlock(c uint16) uint16 {
	b := c
	for cl := c; cl != 0; cl &= cl - 1 {
		b |= pi.adj[bits.TrailingZeros16(cl)]
	}
	return b
}

// JoinBlockMask exposes joinBlock for the path-DAG engine: the blocked-C
// mask of a left state's C set, valid for any join partner with equal
// signature.
func (r *Result) JoinBlockMask(c uint16) uint16 { return r.pi.joinBlock(c) }

// JoinCombineBlocked is JoinCombine with the left state's block mask
// precomputed via JoinBlockMask; it performs the whole compatibility
// check in one word operation.
func (r *Result) JoinCombineBlocked(ls State, block uint16, rs *State) (State, bool) {
	if block&rs.C != 0 {
		return State{}, false
	}
	s := ls
	s.C |= rs.C
	s.IX = ls.IX || rs.IX
	s.OX = ls.OX || rs.OX
	return s, true
}

// joinStep combines the states of a join node's two children: the right
// side is sorted by join signature into the reused JoinIndex, and every
// left state scans its signature bucket. emitted accumulates one count
// per attempted combination — the counting the path-DAG engine always
// used; the old sequential joinStep counted successes only, and the two
// measures are harmonized on attempts (the work actually performed) so
// the engines' Lemma 3.1 counters are comparable. The per-pair
// compatibility test is the word-parallel joinBlock probe, accepting and
// emitting exactly the states combineJoin would in the same order.
func (r *Result) joinStep(left, right *StateSet, ji *JoinIndex, emitted *int64) *StateSet {
	pi := &r.pi
	ji.Build(right.States())
	out := r.arena.get(left.Len())
	for _, ls := range left.States() {
		lo, hi := ji.Bucket(&ls)
		if lo == hi {
			continue
		}
		block := pi.joinBlock(ls.C)
		for t := lo; t < hi; t++ {
			*emitted++
			rs := ji.At(t)
			if block&rs.C != 0 {
				continue
			}
			s := ls
			s.C |= rs.C
			s.IX = ls.IX || rs.IX
			s.OX = ls.OX || rs.OX
			out.Add(s)
		}
	}
	return out
}

// combineJoin merges compatible left/right states at a join (equal Phi and
// labels are the caller's responsibility). It is the bit-by-bit reference
// the word-parallel joinBlock path must agree with (the equivalence tests
// check this); JoinCombine keeps it as the public single-pair entry.
func combineJoin(pi *patternInfo, ls, rs State) (State, bool) {
	if ls.C&rs.C != 0 {
		return State{}, false // a pattern vertex matched in both subtrees
	}
	// No H-edge may connect the two forgotten regions.
	for cl := ls.C; cl != 0; cl &= cl - 1 {
		u := bits.TrailingZeros16(cl)
		if pi.adj[u]&rs.C != 0 {
			return State{}, false
		}
	}
	s := ls
	s.C |= rs.C
	s.IX = ls.IX || rs.IX
	s.OX = ls.OX || rs.OX
	return s, true
}

// remapIntroduce shifts slot indices for a bag that gained a vertex at
// position slot.
func remapIntroduce(s State, slot int) State {
	for u := range s.Phi {
		if s.Phi[u] >= int8(slot) {
			s.Phi[u]++
		}
	}
	s.In = shiftMaskUp(s.In, slot)
	s.Out = shiftMaskUp(s.Out, slot)
	return s
}

// remapIntroduceM is remapIntroduce fused with the mapped-vertex mask:
// one pass over the k live Phi entries both shifts the slots and collects
// MMask (which remapping does not change). Entries at u >= k are always
// -1 in engine states, so the shorter loop is equivalent.
func remapIntroduceM(s State, slot int, k int) (State, uint16) {
	var m uint16
	for u := 0; u < k; u++ {
		if s.Phi[u] >= 0 {
			m |= 1 << u
			if s.Phi[u] >= int8(slot) {
				s.Phi[u]++
			}
		}
	}
	s.In = shiftMaskUp(s.In, slot)
	s.Out = shiftMaskUp(s.Out, slot)
	return s, m
}

// remapForget shifts slot indices for a bag that lost the vertex at
// position slot (no pattern vertex maps there; labels at the slot drop).
func remapForget(s State, slot int) State {
	for u := range s.Phi {
		if s.Phi[u] > int8(slot) {
			s.Phi[u]--
		}
	}
	s.In = shiftMaskDown(s.In, slot)
	s.Out = shiftMaskDown(s.Out, slot)
	return s
}

// shiftMaskUp inserts a zero bit at position slot. The caller guarantees
// bit 31 is clear: a child bag has at most MaxBag-1 slots before an
// introduce grows it to MaxBag, so label masks never occupy the top bit
// prior to insertion.
func shiftMaskUp(m uint32, slot int) uint32 {
	low := m & ((1 << uint(slot)) - 1)
	high := m &^ ((1 << uint(slot)) - 1)
	return low | high<<1
}

// shiftMaskDown removes the bit at position slot.
func shiftMaskDown(m uint32, slot int) uint32 {
	low := m & ((1 << uint(slot)) - 1)
	high := m >> uint(slot+1)
	return low | high<<uint(slot)
}

// Universe enumerates every locally valid plain-mode state of node i: all
// injective partial maps of pattern vertices onto bag slots realizing the
// H-edges inside the bag and respecting Allowed, combined with every C
// set that has no H-edge into the implicit U set. This is the vertex set
// of the Section 3.3.2 graph of partial matches ("for every other node X
// in P, there is a vertex for every partial match of that node X"); the
// count is bounded by (τ+3)^k.
func (r *Result) Universe(i int32) []State {
	if r.p.Separating {
		panic("match: Universe supports plain mode only (pmdag engine)")
	}
	pi := &r.pi
	nd := r.p.ND
	bag := nd.Bag[i]
	// Per-slot adjacency and allowed masks, computed once per node: the
	// DFS below would otherwise pay a HasEdge scan per candidate.
	bagAdj := make([]uint32, len(bag))
	var allowedMask uint32
	for slot, v := range bag {
		if r.p.allowed(v) {
			allowedMask |= 1 << uint(slot)
		}
		for _, w := range r.p.G.Neighbors(v) {
			if ws := nd.Slot(i, w); ws >= 0 {
				bagAdj[slot] |= 1 << uint(ws)
			}
		}
	}
	var out []State
	var phis []State
	// Enumerate injective maps by DFS over pattern vertices, threading the
	// mapped mask through the recursion instead of recomputing it per call.
	var rec func(u int, s State, usedSlots uint32, mmask uint16)
	rec = func(u int, s State, usedSlots uint32, mmask uint16) {
		if u == pi.k {
			phis = append(phis, s)
			return
		}
		rec(u+1, s, usedSlots, mmask) // leave u unmapped for now
		for slot := 0; slot < len(bag); slot++ {
			if usedSlots&(1<<uint(slot)) != 0 || allowedMask>>uint(slot)&1 == 0 {
				continue
			}
			ok := true
			for nb := pi.adj[u] & mmask; nb != 0; nb &= nb - 1 {
				w := bits.TrailingZeros16(nb)
				if bagAdj[slot]>>uint(s.Phi[w])&1 == 0 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			s2 := s
			s2.Phi[u] = int8(slot)
			rec(u+1, s2, usedSlots|1<<uint(slot), mmask|1<<u)
		}
	}
	rec(0, emptyState(), 0, 0)
	// Attach every C subset of the unmapped vertices with no edge to U.
	for _, s := range phis {
		m := s.MMask(pi.k)
		free := uint16((1<<pi.k)-1) &^ m
		for c := free; ; c = (c - 1) & free {
			uSet := free &^ c
			ok := true
			for cc := c; cc != 0; cc &= cc - 1 {
				u := bits.TrailingZeros16(cc)
				if pi.adj[u]&uSet != 0 {
					ok = false
					break
				}
			}
			if ok {
				s2 := s
				s2.C = c
				out = append(out, s2)
			}
			if c == 0 {
				break
			}
		}
	}
	return out
}
