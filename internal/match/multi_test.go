package match

import (
	"math/rand/v2"
	"slices"
	"testing"

	"planarsi/internal/graph"
	"planarsi/internal/obs"
	"planarsi/internal/par"
	"planarsi/internal/treedecomp"
)

// sameSets checks two results hold byte-identical per-node state sets,
// including insertion order — the multi-sweep contract is exact
// equality with the solo run, not set equality.
func sameSets(t *testing.T, label string, multi, solo *Result) {
	t.Helper()
	if len(multi.Sets) != len(solo.Sets) {
		t.Fatalf("%s: %d nodes vs %d", label, len(multi.Sets), len(solo.Sets))
	}
	for i := range multi.Sets {
		m, s := multi.Sets[i], solo.Sets[i]
		if (m == nil) != (s == nil) {
			t.Fatalf("%s: node %d nil mismatch", label, i)
		}
		if m == nil {
			continue
		}
		if !slices.Equal(m.States(), s.States()) {
			t.Fatalf("%s: node %d states differ (order-sensitive compare)", label, i)
		}
	}
}

// TestRunMultiMatchesSoloRuns: a multi-pattern sweep must produce, for
// every pattern, byte-identical state sets (insertion order included),
// equal emission counters and equal cost totals to a solo Run of the
// same problem — across plain, separating and DecideOnly instances
// sharing one decomposition.
func TestRunMultiMatchesSoloRuns(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 2026))
	for trial := 0; trial < 40; trial++ {
		n := 8 + rng.IntN(20)
		g := graph.RandomPlanar(n, rng.Float64(), rng)
		nd := treedecomp.MakeNice(treedecomp.Build(g, treedecomp.MinDegree))
		np := 2 + rng.IntN(4)
		multiPs := make([]*Problem, np)
		soloPs := make([]*Problem, np)
		multiCost := make([]*obs.CostCounter, np)
		soloCost := make([]*obs.CostCounter, np)
		for x := 0; x < np; x++ {
			h := randomPattern(2+rng.IntN(4), rng.IntN(3), rng)
			base := Problem{G: g, H: h, ND: nd}
			switch x % 3 {
			case 1:
				base.Separating = true
				base.S = randomSeparatingMask(n, rng)
			case 2:
				base.DecideOnly = true
			}
			multiCost[x] = &obs.CostCounter{}
			soloCost[x] = &obs.CostCounter{}
			mp, sp := base, base
			mp.Cost = multiCost[x]
			sp.Cost = soloCost[x]
			multiPs[x] = &mp
			soloPs[x] = &sp
		}
		multi := RunMulti(multiPs, nil)
		for x := 0; x < np; x++ {
			solo := Run(soloPs[x], nil)
			sameSets(t, "trial", multi[x], solo)
			if multi[x].Found() != solo.Found() {
				t.Fatalf("trial %d pattern %d: decisions differ", trial, x)
			}
			if multi[x].StatesGenerated() != solo.StatesGenerated() {
				t.Fatalf("trial %d pattern %d: StatesGenerated %d vs %d",
					trial, x, multi[x].StatesGenerated(), solo.StatesGenerated())
			}
			if mc, sc := multiCost[x].Snapshot(), soloCost[x].Snapshot(); mc != sc {
				t.Fatalf("trial %d pattern %d: cost %+v vs %+v", trial, x, mc, sc)
			}
		}
	}
}

// TestRunMultiPerPatternCancellation: a pattern whose token fired before
// the sweep drops out without touching its batch-mates — they still
// produce byte-identical sets to their solo runs, and the cancelled
// pattern's partial result never reports found.
func TestRunMultiPerPatternCancellation(t *testing.T) {
	g := graph.Grid(6, 6)
	nd := treedecomp.MakeNice(treedecomp.Build(g, treedecomp.MinDegree))
	cancelled := par.NewCanceller()
	cancelled.Cancel()
	ps := []*Problem{
		{G: g, H: graph.Cycle(4), ND: nd},
		{G: g, H: graph.Cycle(4), ND: nd, Cancel: cancelled},
		{G: g, H: graph.Path(4), ND: nd},
	}
	rs := RunMulti(ps, nil)
	for _, x := range []int{0, 2} {
		solo := Run(&Problem{G: g, H: ps[x].H, ND: nd}, nil)
		sameSets(t, "survivor", rs[x], solo)
		if !rs[x].Found() {
			t.Fatalf("pattern %d: want found in the grid", x)
		}
	}
	if rs[1].Found() {
		t.Fatal("cancelled pattern reported found from a partial run")
	}
	if rs[1].Sets[nd.Root] != nil {
		t.Fatal("cancelled pattern solved the root despite a pre-fired token")
	}
}
