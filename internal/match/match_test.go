package match

import (
	"math/rand/v2"
	"sort"
	"testing"

	"planarsi/internal/graph"
	"planarsi/internal/naive"
	"planarsi/internal/treedecomp"
)

// runDP builds a nice decomposition of g and runs the DP for pattern h.
func runDP(g, h *graph.Graph) *Result {
	nd := treedecomp.MakeNice(treedecomp.Build(g, treedecomp.MinDegree))
	return Run(&Problem{G: g, H: h, ND: nd}, nil)
}

func randomPattern(k int, extra int, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(k)
	for v := 1; v < k; v++ {
		b.AddEdge(int32(v), int32(rng.IntN(v)))
	}
	for e := 0; e < extra; e++ {
		u := rng.Int32N(int32(k))
		v := rng.Int32N(int32(k))
		if u != v && !b.HasEdge(u, v) {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

func sortedKeys(ms [][]int32) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = Assignment(m).key()
	}
	sort.Strings(out)
	return out
}

func TestDecideAgainstNaiveOnFixedCases(t *testing.T) {
	cases := []struct {
		name string
		g, h *graph.Graph
		want bool
	}{
		{"triangle-in-k4", graph.Complete(4), graph.Cycle(3), true},
		{"c4-in-grid", graph.Grid(3, 3), graph.Cycle(4), true},
		{"c3-in-grid", graph.Grid(3, 3), graph.Cycle(3), false},
		{"c5-in-grid", graph.Grid(4, 4), graph.Cycle(5), false},
		{"c6-in-grid", graph.Grid(4, 4), graph.Cycle(6), true},
		{"path5-in-cycle5", graph.Cycle(5), graph.Path(5), true},
		{"c5-in-path", graph.Path(8), graph.Cycle(5), false},
		{"star4-in-grid", graph.Grid(3, 3), graph.Star(5), true},
		{"star6-in-grid", graph.Grid(3, 3), graph.Star(7), false},
		{"k4-in-apollonian", graph.Apollonian(12, rand.New(rand.NewPCG(1, 1))), graph.Complete(4), true},
	}
	for _, c := range cases {
		got := runDP(c.g, c.h).Found()
		if got != c.want {
			t.Errorf("%s: DP=%v want %v", c.name, got, c.want)
		}
		if n := naive.Decide(c.g, c.h); n != c.want {
			t.Errorf("%s: naive=%v want %v (test case wrong?)", c.name, n, c.want)
		}
	}
}

// The central cross-validation: on many random targets and patterns, the
// DP must agree with the naive backtracking matcher on the decision.
func TestDecideAgainstNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 3))
	for trial := 0; trial < 150; trial++ {
		n := 6 + rng.IntN(25)
		g := graph.RandomPlanar(n, rng.Float64(), rng)
		k := 2 + rng.IntN(4)
		h := randomPattern(k, rng.IntN(3), rng)
		want := naive.Decide(g, h)
		got := runDP(g, h).Found()
		if got != want {
			t.Fatalf("trial %d: DP=%v naive=%v (n=%d k=%d)", trial, got, want, n, k)
		}
	}
}

// Disconnected patterns exercise the DP without the clustering layer (the
// DP itself is indifferent to pattern connectivity).
func TestDecideDisconnectedPatterns(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 5))
	for trial := 0; trial < 60; trial++ {
		n := 6 + rng.IntN(20)
		g := graph.RandomPlanar(n, rng.Float64(), rng)
		h := graph.DisjointUnion(randomPattern(2, 1, rng), randomPattern(1+rng.IntN(2), 0, rng))
		want := naive.Decide(g, h)
		got := runDP(g, h).Found()
		if got != want {
			t.Fatalf("trial %d: DP=%v naive=%v", trial, got, want)
		}
	}
}

// Enumerate must produce exactly the same set of mappings as the naive
// matcher (each subgraph isomorphism once).
func TestEnumerateMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 7))
	for trial := 0; trial < 80; trial++ {
		n := 5 + rng.IntN(14)
		g := graph.RandomPlanar(n, rng.Float64(), rng)
		k := 2 + rng.IntN(3)
		h := randomPattern(k, rng.IntN(2), rng)
		want := naive.Search(g, h, naive.Options{})
		res := runDP(g, h)
		got := res.Enumerate(0)
		wk := sortedKeys(want)
		gk := sortedKeys(asSlices(got))
		if len(wk) != len(gk) {
			t.Fatalf("trial %d: %d vs %d occurrences (n=%d k=%d)", trial, len(gk), len(wk), n, k)
		}
		for i := range wk {
			if wk[i] != gk[i] {
				t.Fatalf("trial %d: mapping sets differ", trial)
			}
		}
	}
}

func asSlices(as []Assignment) [][]int32 {
	out := make([][]int32, len(as))
	for i, a := range as {
		out[i] = []int32(a)
	}
	return out
}

func TestEnumerateLimit(t *testing.T) {
	g := graph.Grid(4, 4)
	h := graph.Path(3)
	res := runDP(g, h)
	lim := res.Enumerate(5)
	if len(lim) < 5 {
		t.Fatalf("limit enumeration returned %d < 5", len(lim))
	}
	all := res.Enumerate(0)
	if len(all) <= 5 {
		t.Fatalf("expected many path-3 occurrences, got %d", len(all))
	}
}

func TestAllowedRestriction(t *testing.T) {
	// A triangle exists in K4 but not if one of its vertices is banned
	// from... K4 minus one allowed vertex still has a triangle; ban two.
	g := graph.Complete(4)
	h := graph.Cycle(3)
	nd := treedecomp.MakeNice(treedecomp.Build(g, treedecomp.MinDegree))
	allowed := []bool{true, true, true, true}
	res := Run(&Problem{G: g, H: h, ND: nd, Allowed: allowed}, nil)
	if !res.Found() {
		t.Fatal("triangle should be found with all vertices allowed")
	}
	allowed = []bool{true, true, false, false}
	res = Run(&Problem{G: g, H: h, ND: nd, Allowed: allowed}, nil)
	if res.Found() {
		t.Fatal("triangle needs 3 allowed vertices; only 2 available")
	}
}

// bruteForceSeparating checks S-separating subgraph isomorphism by
// enumerating all occurrences naively and testing the separation property
// of each (used as the oracle for the Section 5.2.2 extension).
func bruteForceSeparating(g, h *graph.Graph, s []bool, allowed []bool) bool {
	occs := naive.Search(g, h, naive.Options{})
	n := g.N()
	for _, occ := range occs {
		ok := true
		inOcc := make([]bool, n)
		for _, v := range occ {
			if allowed != nil && !allowed[v] {
				ok = false
				break
			}
			inOcc[v] = true
		}
		if !ok {
			continue
		}
		var rest []int32
		for v := int32(0); v < int32(n); v++ {
			if !inOcc[v] {
				rest = append(rest, v)
			}
		}
		sub, orig := graph.Induce(g, rest)
		comp, _ := graph.Components(sub)
		// Two S-vertices in different components?
		first := int32(-1)
		for i, ov := range orig {
			if s[ov] {
				if first < 0 {
					first = comp[i]
				} else if comp[i] != first {
					return true
				}
			}
		}
	}
	return false
}

func TestSeparatingAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 9))
	for trial := 0; trial < 100; trial++ {
		n := 6 + rng.IntN(14)
		g := graph.RandomPlanar(n, 0.3+0.7*rng.Float64(), rng)
		var h *graph.Graph
		switch rng.IntN(3) {
		case 0:
			h = graph.Cycle(4)
		case 1:
			h = graph.Cycle(3)
		default:
			h = graph.Path(2 + rng.IntN(2))
		}
		if h.N() > n {
			continue
		}
		s := make([]bool, n)
		for v := range s {
			s[v] = rng.Float64() < 0.5
		}
		want := bruteForceSeparating(g, h, s, nil)
		nd := treedecomp.MakeNice(treedecomp.Build(g, treedecomp.MinDegree))
		res := Run(&Problem{G: g, H: h, ND: nd, Separating: true, S: s}, nil)
		if res.Found() != want {
			t.Fatalf("trial %d: separating DP=%v brute=%v (n=%d k=%d)", trial, res.Found(), want, n, h.N())
		}
	}
}

func TestSeparatingWithAllowed(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 11))
	for trial := 0; trial < 60; trial++ {
		n := 6 + rng.IntN(12)
		g := graph.RandomPlanar(n, 0.5, rng)
		h := graph.Cycle(3 + rng.IntN(2))
		s := make([]bool, n)
		allowed := make([]bool, n)
		for v := range s {
			s[v] = rng.Float64() < 0.6
			allowed[v] = rng.Float64() < 0.8
		}
		want := bruteForceSeparating(g, h, s, allowed)
		nd := treedecomp.MakeNice(treedecomp.Build(g, treedecomp.MinDegree))
		res := Run(&Problem{G: g, H: h, ND: nd, Separating: true, S: s, Allowed: allowed}, nil)
		if res.Found() != want {
			t.Fatalf("trial %d: separating DP=%v brute=%v", trial, res.Found(), want)
		}
	}
}

// A wheel's hub-removal example: removing the hub plus two opposite rim
// vertices separates the rim. Sanity-check a concrete separating triangle.
func TestSeparatingConcrete(t *testing.T) {
	// Path 0-1-2-3-4 with S={0,4}: removing {2} (pattern = single vertex)
	// separates the endpoints.
	g := graph.Path(5)
	h := graph.Path(1)
	s := []bool{true, false, false, false, true}
	nd := treedecomp.MakeNice(treedecomp.Build(g, treedecomp.MinDegree))
	res := Run(&Problem{G: g, H: h, ND: nd, Separating: true, S: s}, nil)
	if !res.Found() {
		t.Fatal("single-vertex pattern should separate path endpoints")
	}
	// S = {0,1}: adjacent endpoints cannot be separated by one vertex
	// removal... removing any single vertex other than them leaves 0-1
	// connected; removing 0 or 1 is allowed but then that S vertex is
	// gone. Separation requires two S vertices in different components.
	s = []bool{true, true, false, false, false}
	res = Run(&Problem{G: g, H: h, ND: nd, Separating: true, S: s}, nil)
	if res.Found() {
		t.Fatal("adjacent S pair should not be separable by removing one non-S vertex")
	}
}

func TestStatesGeneratedCounted(t *testing.T) {
	g := graph.Grid(4, 4)
	h := graph.Cycle(4)
	res := runDP(g, h)
	if res.StatesGenerated() == 0 {
		t.Fatal("expected state generation work to be counted")
	}
}

func TestSingleVertexPattern(t *testing.T) {
	g := graph.Path(3)
	h := graph.Path(1)
	if !runDP(g, h).Found() {
		t.Fatal("K1 occurs in any nonempty graph")
	}
	occ := runDP(g, h).Enumerate(0)
	if len(occ) != 3 {
		t.Fatalf("K1 should have 3 occurrences in P3, got %d", len(occ))
	}
}

func TestPatternLargerThanTarget(t *testing.T) {
	g := graph.Path(3)
	h := graph.Path(5)
	if runDP(g, h).Found() {
		t.Fatal("P5 cannot occur in P3")
	}
}
