package match

import (
	"math/rand/v2"
	"slices"
	"testing"

	"planarsi/internal/graph"
	"planarsi/internal/treedecomp"
)

// referenceRun is the pre-StateSet engine kept as an oracle: the same
// bottom-up DP over the same transition methods, but storing every node's
// valid states in a plain map. The flat-substrate Run must reproduce its
// sets exactly, node by node.
func referenceRun(p *Problem) []map[State]struct{} {
	r := NewEngine(p)
	nd := p.ND
	sets := make([]map[State]struct{}, nd.NumNodes())
	for _, i := range nd.Order {
		var set map[State]struct{}
		switch nd.Kind[i] {
		case treedecomp.Leaf:
			set = map[State]struct{}{emptyState(): {}}
		case treedecomp.Introduce:
			set = make(map[State]struct{})
			for cs := range sets[nd.Left[i]] {
				r.IntroduceSuccessors(i, cs, func(s State, _ bool) {
					set[s] = struct{}{}
				})
			}
		case treedecomp.Forget:
			set = make(map[State]struct{})
			for cs := range sets[nd.Left[i]] {
				if s, ok := r.ForgetSuccessor(i, cs); ok {
					set[s] = struct{}{}
				}
			}
		case treedecomp.Join:
			group := make(map[JoinSignature][]State)
			for rs := range sets[nd.Right[i]] {
				group[rs.Signature()] = append(group[rs.Signature()], rs)
			}
			set = make(map[State]struct{})
			for ls := range sets[nd.Left[i]] {
				for _, rs := range group[ls.Signature()] {
					if s, ok := r.JoinCombine(ls, rs); ok {
						set[s] = struct{}{}
					}
				}
			}
		}
		sets[i] = set
	}
	return sets
}

// cmpState orders states by their byte content, giving both
// representations a canonical form to compare byte-for-byte.
func cmpState(a, b State) int {
	for u := range a.Phi {
		if a.Phi[u] != b.Phi[u] {
			return int(a.Phi[u]) - int(b.Phi[u])
		}
	}
	switch {
	case a.C != b.C:
		return int(a.C) - int(b.C)
	case a.In != b.In:
		if a.In < b.In {
			return -1
		}
		return 1
	case a.Out != b.Out:
		if a.Out < b.Out {
			return -1
		}
		return 1
	}
	bit := func(x bool) int {
		if x {
			return 1
		}
		return 0
	}
	if d := bit(a.IX) - bit(b.IX); d != 0 {
		return d
	}
	return bit(a.OX) - bit(b.OX)
}

func canonStates(states []State) []State {
	out := slices.Clone(states)
	slices.SortFunc(out, cmpState)
	return out
}

func canonMap(set map[State]struct{}) []State {
	out := make([]State, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	slices.SortFunc(out, cmpState)
	return out
}

// randomSeparatingMask marks each vertex a terminal with probability 1/2.
func randomSeparatingMask(n int, rng *rand.Rand) []bool {
	s := make([]bool, n)
	for v := range s {
		s[v] = rng.IntN(2) == 0
	}
	return s
}

// TestRunEquivalentToMapReference is the quick-check-style equivalence
// lock for the flat substrate: on seeded random planar targets and random
// patterns, in plain and separating mode, the StateSet-backed Run must
// produce byte-identical state sets to the map-based reference at every
// node — and the DecideOnly variant the same root set.
func TestRunEquivalentToMapReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 2024))
	for trial := 0; trial < 120; trial++ {
		n := 6 + rng.IntN(22)
		g := graph.RandomPlanar(n, rng.Float64(), rng)
		h := randomPattern(2+rng.IntN(4), rng.IntN(3), rng)
		nd := treedecomp.MakeNice(treedecomp.Build(g, treedecomp.MinDegree))
		separating := trial%2 == 1
		p := &Problem{G: g, H: h, ND: nd}
		if separating {
			p.Separating = true
			p.S = randomSeparatingMask(n, rng)
		}
		want := referenceRun(p)
		got := Run(p, nil)
		for i := range want {
			ws := canonMap(want[i])
			gs := canonStates(got.Sets[i].States())
			if !slices.Equal(ws, gs) {
				t.Fatalf("trial %d (separating=%v): node %d: %d reference states vs %d flat states",
					trial, separating, i, len(ws), len(gs))
			}
		}
		// DecideOnly keeps only the root set, byte-identical to the full
		// run's, and agrees on the decision.
		pd := *p
		pd.DecideOnly = true
		droot := Run(&pd, nil)
		if !slices.Equal(canonMap(want[nd.Root]), canonStates(droot.Sets[nd.Root].States())) {
			t.Fatalf("trial %d: DecideOnly root set differs", trial)
		}
		if droot.Found() != got.Found() {
			t.Fatalf("trial %d: DecideOnly decision differs", trial)
		}
		for i := range droot.Sets {
			if int32(i) != nd.Root && droot.Sets[i] != nil {
				t.Fatalf("trial %d: DecideOnly retained the set of non-root node %d", trial, i)
			}
		}
	}
}

// The batched per-node flushes must add up to the same total a
// per-emission counter produces: the reference recomputes the count
// transition by transition (introduce: per emission; forget: per call;
// join: per attempted combination — the harmonized measure both engines
// now share; the pre-StateSet sequential joinStep counted successes
// only).
func TestStatesGeneratedMatchesReferenceCount(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 81))
	for trial := 0; trial < 30; trial++ {
		g := graph.RandomPlanar(8+rng.IntN(18), rng.Float64(), rng)
		h := randomPattern(2+rng.IntN(3), rng.IntN(2), rng)
		nd := treedecomp.MakeNice(treedecomp.Build(g, treedecomp.MinDegree))
		p := &Problem{G: g, H: h, ND: nd}

		// Count emissions transition by transition over the reference
		// map DP.
		r := NewEngine(p)
		var count int64
		sets := make([]map[State]struct{}, nd.NumNodes())
		for _, i := range nd.Order {
			set := make(map[State]struct{})
			switch nd.Kind[i] {
			case treedecomp.Leaf:
				set[emptyState()] = struct{}{}
			case treedecomp.Introduce:
				for cs := range sets[nd.Left[i]] {
					r.IntroduceSuccessors(i, cs, func(s State, _ bool) {
						count++
						set[s] = struct{}{}
					})
				}
			case treedecomp.Forget:
				for cs := range sets[nd.Left[i]] {
					count++
					if s, ok := r.ForgetSuccessor(i, cs); ok {
						set[s] = struct{}{}
					}
				}
			case treedecomp.Join:
				group := make(map[JoinSignature][]State)
				for rs := range sets[nd.Right[i]] {
					group[rs.Signature()] = append(group[rs.Signature()], rs)
				}
				for ls := range sets[nd.Left[i]] {
					for _, rs := range group[ls.Signature()] {
						count++
						if s, ok := r.JoinCombine(ls, rs); ok {
							set[s] = struct{}{}
						}
					}
				}
			}
			sets[i] = set
		}

		if got := Run(p, nil).StatesGenerated(); got != count {
			t.Fatalf("trial %d: StatesGenerated=%d, reference count=%d", trial, got, count)
		}
	}
}
