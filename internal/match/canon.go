package match

import (
	"fmt"
	"math/bits"
	"slices"

	"planarsi/internal/graph"
)

// Pattern canonicalization: isomorphic patterns map to one canonical
// labeled form, so a compiled-pattern cache can key on the form and a
// batched scan can dedupe isomorphic members before dispatching DP
// sweeps. The algorithm is the classic individualize-and-refine scheme
// sized for k <= MaxK: iterated degree (1-WL color) refinement narrows
// the candidate orderings, backtracking individualizes one vertex of the
// first non-singleton color class at a time, and among the discrete
// colorings reached the lexicographically minimal adjacency encoding
// wins. Refinement, class selection and branching are all
// isomorphism-invariant, so isomorphic inputs explore isomorphic search
// trees and pick identical minimal encodings.
//
// A node budget bounds pathological backtracking (refinement-resistant
// inputs like complete graphs at k = 16): on exhaustion the identity
// labeling is encoded instead. That fallback is still sound for every
// consumer here — equal encodings are equal labeled graphs, hence
// isomorphic — it only forfeits dedupe hits between distinct labelings
// of such patterns.

// canonBudget caps the number of refinement passes one canonicalization
// may spend before falling back to the identity labeling.
const canonBudget = 4096

// canonAdj extracts the adjacency bitmasks of h (k <= MaxK assumed).
func canonAdj(h *graph.Graph) []uint16 {
	k := h.N()
	adj := make([]uint16, k)
	for u := int32(0); u < int32(k); u++ {
		for _, w := range h.Neighbors(u) {
			adj[u] |= 1 << uint(w)
		}
	}
	return adj
}

// canonSearch carries the individualize-and-refine state.
type canonSearch struct {
	k       int
	adj     []uint16
	budget  int
	haveBst bool
	best    [MaxK]uint16
	bestPos [MaxK]int8 // bestPos[orig vertex] = canonical position
}

// refine runs iterated color refinement until the partition is stable,
// returning false when the node budget ran out. colors is recolored in
// place with invariant color values 0..c-1 ordered by signature.
func (cs *canonSearch) refine(colors []int32) bool {
	k := cs.k
	type sig struct {
		old int32
		nbr [MaxK]int32 // sorted neighbor colors, padded with -1
		deg int
		v   int32
	}
	sigs := make([]sig, k)
	for {
		if cs.budget <= 0 {
			return false
		}
		cs.budget--
		for v := 0; v < k; v++ {
			s := sig{old: colors[v], v: int32(v)}
			for i := range s.nbr {
				s.nbr[i] = -1
			}
			for nb := cs.adj[v]; nb != 0; nb &= nb - 1 {
				s.nbr[s.deg] = colors[bits.TrailingZeros16(nb)]
				s.deg++
			}
			slices.Sort(s.nbr[:s.deg])
			sigs[v] = s
		}
		slices.SortFunc(sigs, func(a, b sig) int {
			if a.old != b.old {
				return int(a.old - b.old)
			}
			if a.deg != b.deg {
				return a.deg - b.deg
			}
			for i := 0; i < a.deg; i++ {
				if a.nbr[i] != b.nbr[i] {
					return int(a.nbr[i] - b.nbr[i])
				}
			}
			return 0
		})
		changed := false
		color := int32(0)
		for i, s := range sigs {
			if i > 0 {
				prev := sigs[i-1]
				same := prev.old == s.old && prev.deg == s.deg
				for j := 0; same && j < s.deg; j++ {
					same = prev.nbr[j] == s.nbr[j]
				}
				if !same {
					color++
				}
			}
			if colors[s.v] != color {
				changed = true
			}
			colors[s.v] = color
		}
		if !changed {
			return true
		}
	}
}

// leaf records a discrete coloring's adjacency encoding, keeping the
// lexicographically smallest seen so far.
func (cs *canonSearch) leaf(colors []int32) {
	var pos [MaxK]int8
	for v := 0; v < cs.k; v++ {
		pos[v] = int8(colors[v])
	}
	var rows [MaxK]uint16
	for v := 0; v < cs.k; v++ {
		var row uint16
		for nb := cs.adj[v]; nb != 0; nb &= nb - 1 {
			row |= 1 << uint(pos[bits.TrailingZeros16(nb)])
		}
		rows[pos[v]] = row
	}
	if cs.haveBst {
		for i := 0; i < cs.k; i++ {
			if rows[i] != cs.best[i] {
				if rows[i] < cs.best[i] {
					cs.best, cs.bestPos = rows, pos
				}
				return
			}
		}
		return
	}
	cs.haveBst = true
	cs.best, cs.bestPos = rows, pos
}

// search recursively individualizes the first non-singleton color class.
// colors must already be refined. Returns false on budget exhaustion.
func (cs *canonSearch) search(colors []int32) bool {
	k := cs.k
	// Find the smallest color value held by more than one vertex.
	var count [MaxK]int8
	for _, c := range colors {
		count[c]++
	}
	target := int32(-1)
	for c := 0; c < k; c++ {
		if count[c] > 1 {
			target = int32(c)
			break
		}
	}
	if target < 0 {
		cs.leaf(colors)
		return true
	}
	child := make([]int32, k)
	var branched []int
	for v := 0; v < k; v++ {
		if colors[v] != target {
			continue
		}
		// Orbit pruning: if swapping v with an already-branched class
		// member is an automorphism, v's subtree is the automorphic image
		// of that member's — same leaf encodings, so exploring it again
		// cannot improve the minimum. This collapses the search on
		// refinement-resistant symmetric patterns (stars, cliques) from
		// factorial to linear.
		skip := false
		for _, u := range branched {
			if cs.swapAutomorphism(u, v) {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		branched = append(branched, v)
		for u := 0; u < k; u++ {
			switch {
			case u == v:
				child[u] = target
			case colors[u] >= target:
				child[u] = colors[u] + 1
			default:
				child[u] = colors[u]
			}
		}
		// Individualizing v split its class; colors[u] == target && u != v
		// all moved to target+1 together, so re-split them by refinement.
		if !cs.refine(child) || !cs.search(child) {
			return false
		}
	}
	return true
}

// swapAutomorphism reports whether the transposition (u v) is a graph
// automorphism: adj[u] and adj[v] map onto each other under the swap,
// and every other vertex is adjacent to both of u, v or to neither.
// Callers only ask about same-color vertices, so a true answer means
// the swap also preserves any refinement-stable coloring.
func (cs *canonSearch) swapAutomorphism(u, v int) bool {
	if swapBits(cs.adj[u], u, v) != cs.adj[v] {
		return false
	}
	for w := 0; w < cs.k; w++ {
		if w == u || w == v {
			continue
		}
		if (cs.adj[w]>>uint(u))&1 != (cs.adj[w]>>uint(v))&1 {
			return false
		}
	}
	return true
}

// swapBits exchanges bits u and v of the mask.
func swapBits(m uint16, u, v int) uint16 {
	bu := (m >> uint(u)) & 1
	bv := (m >> uint(v)) & 1
	if bu != bv {
		m ^= 1<<uint(u) | 1<<uint(v)
	}
	return m
}

// canonicalPositions returns pos with pos[v] = v's canonical position,
// and ok = false when the budget forced the identity fallback.
func canonicalPositions(h *graph.Graph) ([MaxK]int8, bool) {
	k := h.N()
	cs := &canonSearch{k: k, adj: canonAdj(h), budget: canonBudget}
	colors := make([]int32, k)
	if cs.refine(colors) && cs.search(colors) && cs.haveBst {
		return cs.bestPos, true
	}
	var ident [MaxK]int8
	for v := 0; v < k; v++ {
		ident[v] = int8(v)
	}
	return ident, false
}

// CanonicalKey returns the canonical form of the pattern h as an opaque
// comparable string: isomorphic patterns (with k <= MaxK vertices) map
// to equal keys, and equal keys always denote isomorphic patterns. For
// rare refinement-resistant patterns the search budget may force a
// labeling-exact key — still sound for dedup and cache keying, merely
// missing cross-labeling hits.
func CanonicalKey(h *graph.Graph) string {
	k := h.N()
	if k > MaxK {
		panic(fmt.Sprintf("match: pattern has %d vertices, max %d", k, MaxK))
	}
	pos, _ := canonicalPositions(h)
	adj := canonAdj(h)
	var rows [MaxK]uint16
	for v := 0; v < k; v++ {
		var row uint16
		for nb := adj[v]; nb != 0; nb &= nb - 1 {
			row |= 1 << uint(pos[bits.TrailingZeros16(nb)])
		}
		rows[pos[v]] = row
	}
	b := make([]byte, 1+2*k)
	b[0] = byte(k)
	for i := 0; i < k; i++ {
		b[1+2*i] = byte(rows[i])
		b[2+2*i] = byte(rows[i] >> 8)
	}
	return string(b)
}

// Canonicalize returns a canonically relabeled copy of the pattern h
// together with the relabeling: perm[v] is the canonical position of
// h's vertex v. Isomorphic patterns yield identical copies (adjacency
// equality), up to the CanonicalKey budget caveat.
func Canonicalize(h *graph.Graph) (*graph.Graph, []int32) {
	k := h.N()
	if k > MaxK {
		panic(fmt.Sprintf("match: pattern has %d vertices, max %d", k, MaxK))
	}
	pos, _ := canonicalPositions(h)
	perm := make([]int32, k)
	for v := 0; v < k; v++ {
		perm[v] = int32(pos[v])
	}
	b := graph.NewBuilder(k)
	for _, e := range h.Edges() {
		b.AddEdge(perm[e[0]], perm[e[1]])
	}
	return b.Build(), perm
}
