// Package match implements the partial-match machinery of Section 3 of
// the paper: the states (φ, C, U) of the bounded-treewidth subgraph
// isomorphism dynamic program, the bottom-up sequential engine
// (Eppstein's algorithm in the simplified form of Section 3.2, phrased
// over a nice tree decomposition), the extended separating states
// (I, O, ix, ox) of Section 5.2.2, and the top-down reconstruction of
// occurrences from valid states (Section 4.2.1).
//
// A partial match at a decomposition node with bag B is (φ, C): φ maps a
// subset M of pattern vertices injectively onto bag slots, and C marks the
// pattern vertices "matched in a child", i.e. matched to target vertices
// that were forgotten strictly below. The remaining pattern vertices are
// unmatched (the paper's U is implicit). The number of states per node is
// at most (τ+3)^k, the base of the paper's work bound.
//
// Mapping decisions happen exactly at introduce nodes, C-transitions at
// forget nodes, and C-merging at join nodes; the transition rules below
// enforce the paper's consistency and compatibility conditions:
//
//   - introduce-map u→v: v allowed, no H-neighbor of u in C (such an edge
//     could never be realized: the neighbor's image was forgotten and
//     shares no future bag with v), and every H-neighbor in M maps to a
//     G-neighbor of v (edge realization);
//   - forget of v with φ(u)=v: every H-neighbor of u must be in M ∪ C,
//     otherwise the edge to a still-unmatched neighbor could never be
//     realized once v leaves the bag;
//   - join: equal φ on the shared bag, disjoint C sets, and no H-edge
//     between the two C sets (images live in disjoint forgotten regions).
//
// In separating mode (Section 5.2.2) every bag vertex not mapped onto
// carries an inside/outside label; G-edges between two unmapped bag
// vertices force equal labels, labels agree across joins, and the booleans
// ix/ox remember whether some vertex of S was labeled inside/outside. A
// valid root state must have both, certifying that the occurrence
// separates S.
package match

import (
	"fmt"
	"unsafe"

	"planarsi/internal/graph"
)

// MaxK caps the pattern size; states embed a fixed-size slot array so they
// can serve as map keys.
const MaxK = 16

// MaxBag caps bag sizes (slot label masks are uint32).
const MaxBag = 32

// State is a partial match. Phi[u] is the bag slot pattern vertex u maps
// to (-1 when unmatched or in C); C is the matched-in-a-child bitmask.
// In/Out are bag-slot masks carrying the separating labels, and IX/OX the
// "S seen inside/outside" booleans; all four stay zero in plain mode.
type State struct {
	Phi     [MaxK]int8
	C       uint16
	In, Out uint32
	IX, OX  bool
}

// StateBytes is the in-memory size of one State, the unit the cost
// accounting uses to price states read and written (an estimate of
// bytes touched, not allocator truth).
const StateBytes = int64(unsafe.Sizeof(State{}))

// emptyState returns the all-unmatched state.
func emptyState() State {
	var s State
	for i := range s.Phi {
		s.Phi[i] = -1
	}
	return s
}

// EmptyState returns the trivial all-unmatched partial match (the state of
// every leaf node; always valid).
func EmptyState() State { return emptyState() }

// MMask returns the bitmask of mapped pattern vertices.
func (s *State) MMask(k int) uint16 {
	var m uint16
	for u := 0; u < k; u++ {
		if s.Phi[u] >= 0 {
			m |= 1 << u
		}
	}
	return m
}

// OccupiedSlots returns the bitmask of bag slots that are images of
// mapped pattern vertices.
func (s *State) OccupiedSlots(k int) uint32 {
	var m uint32
	for u := 0; u < k; u++ {
		if s.Phi[u] >= 0 {
			m |= 1 << uint(s.Phi[u])
		}
	}
	return m
}

// String renders a state compactly for debugging.
func (s State) String() string {
	return fmt.Sprintf("state{phi=%v C=%b in=%b out=%b ix=%v ox=%v}", s.Phi[:4], s.C, s.In, s.Out, s.IX, s.OX)
}

// patternInfo precomputes adjacency bitmasks of the pattern graph.
type patternInfo struct {
	k   int
	adj []uint16 // adj[u] = bitmask of H-neighbors of u
}

func newPatternInfo(h *graph.Graph) patternInfo {
	k := h.N()
	if k > MaxK {
		panic(fmt.Sprintf("match: pattern has %d vertices, max %d", k, MaxK))
	}
	adj := make([]uint16, k)
	for u := int32(0); u < int32(k); u++ {
		for _, w := range h.Neighbors(u) {
			adj[u] |= 1 << uint(w)
		}
	}
	return patternInfo{k: k, adj: adj}
}

// allMatched returns the C mask meaning "every pattern vertex matched".
func (p *patternInfo) allMatched() uint16 {
	return uint16((1 << p.k) - 1)
}
