package match

import (
	"math/bits"

	"planarsi/internal/treedecomp"
)

// Assignment maps pattern vertices to target vertices (length k).
type Assignment []int32

// key renders an assignment as a comparable string for deduplication (the
// paper removes duplicate occurrences "by hashing").
func (a Assignment) key() string {
	b := make([]byte, 0, len(a)*4)
	for _, v := range a {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// Enumerate reconstructs occurrences top-down from the valid state sets
// (Section 4.2.1): starting from every accepting root state it walks the
// decomposition downwards, inverting each transition; introduce-map edges
// contribute one pattern-vertex assignment each (the paper's "only k edges
// introduce a new vertex"). At most limit occurrences are returned
// (limit <= 0 means no bound). Each subgraph isomorphism is produced
// exactly once because, for a fixed assignment, the DP trajectory through
// the states is unique.
func (r *Result) Enumerate(limit int) []Assignment {
	if r.p.DecideOnly {
		panic("match: Enumerate needs the full per-node state sets; the run was DecideOnly")
	}
	pi := &r.pi
	nd := r.p.ND
	want := pi.allMatched()
	var out []Assignment
	budget := limit
	for _, s := range r.Sets[nd.Root].States() {
		if s.C != want || (r.p.Separating && !(s.IX && s.OX)) {
			continue
		}
		partials := r.enumerateAt(nd.Root, s, budget)
		out = append(out, partials...)
		if limit > 0 {
			budget = limit - len(out)
			if budget <= 0 {
				break
			}
		}
	}
	return out
}

// enumerateAt returns every assignment realizable by the subtree under
// node `i` ending in state s. Assignments are partial (unassigned = -1)
// and cover exactly the pattern vertices in M(s) ∪ C(s).
func (r *Result) enumerateAt(i int32, s State, budget int) []Assignment {
	pi := &r.pi
	p := r.p
	nd := p.ND
	blank := func() Assignment {
		a := make(Assignment, pi.k)
		for u := range a {
			a[u] = -1
		}
		return a
	}
	switch nd.Kind[i] {
	case treedecomp.Leaf:
		return []Assignment{blank()}

	case treedecomp.Introduce:
		v := nd.Vertex[i]
		slot := nd.Slot(i, v)
		child := nd.Left[i]
		var out []Assignment
		// Case (b)⁻¹: some pattern vertex u maps to v's slot; the child
		// state is s without that mapping.
		for u := 0; u < pi.k; u++ {
			if s.Phi[u] == int8(slot) {
				cs := s
				cs.Phi[u] = -1
				cs = unmapIntroduce(cs, slot)
				if r.Sets[child].Contains(cs) {
					for _, a := range r.enumerateAt(child, cs, budget) {
						a[u] = v
						out = append(out, a)
						if budget > 0 && len(out) >= budget {
							return out
						}
					}
				}
			}
		}
		// Case (a)⁻¹: v unmatched (possibly labeled); drop its slot.
		if s.OccupiedSlots(pi.k)&(1<<uint(slot)) == 0 {
			cs := s
			if p.Separating {
				// The forward rule is parent.IX = child.IX || bumpIn where
				// bumpIn means v ∈ S labeled inside at this introduce (and
				// symmetrically for OX). Only invert flag pairs consistent
				// with it: allowing child.IX=false without the bump would
				// splice the φ of one lineage onto the separation flags of
				// another and fabricate non-separating witnesses.
				vInS := p.S != nil && p.S[v]
				bumpIn := vInS && s.In&(1<<uint(slot)) != 0
				bumpOut := vInS && s.Out&(1<<uint(slot)) != 0
				cs.In &^= 1 << uint(slot)
				cs.Out &^= 1 << uint(slot)
				for _, ix := range childFlagChoices(s.IX, bumpIn) {
					for _, ox := range childFlagChoices(s.OX, bumpOut) {
						c2 := cs
						c2.IX, c2.OX = ix, ox
						c2 = unmapIntroduce(c2, slot)
						if r.Sets[child].Contains(c2) {
							out = append(out, r.enumerateAt(child, c2, budgetLeft(budget, len(out)))...)
							if budget > 0 && len(out) >= budget {
								return out
							}
						}
					}
				}
			} else {
				cs = unmapIntroduce(cs, slot)
				if r.Sets[child].Contains(cs) {
					out = append(out, r.enumerateAt(child, cs, budgetLeft(budget, len(out)))...)
				}
			}
		}
		return out

	case treedecomp.Forget:
		v := nd.Vertex[i]
		child := nd.Left[i]
		slot := nd.Slot(child, v)
		var out []Assignment
		// Case: some u ∈ C(s) was mapped to v in the child.
		for c := s.C; c != 0; c &= c - 1 {
			u := bits.TrailingZeros16(c)
			cs := remapIntroduce(s, slot) // reinsert the slot
			cs.C &^= 1 << uint(u)
			cs.Phi[u] = int8(slot)
			if r.Sets[child].Contains(cs) {
				for _, a := range r.enumerateAt(child, cs, budgetLeft(budget, len(out))) {
					out = append(out, a)
					if budget > 0 && len(out) >= budget {
						return out
					}
				}
			}
		}
		// Case: v was unmatched in the child (labels either way).
		base := remapIntroduce(s, slot)
		if p.Separating {
			for _, side := range []uint32{1, 2} {
				cs := base
				if side == 1 {
					cs.In |= 1 << uint(slot)
				} else {
					cs.Out |= 1 << uint(slot)
				}
				if r.Sets[child].Contains(cs) {
					out = append(out, r.enumerateAt(child, cs, budgetLeft(budget, len(out)))...)
					if budget > 0 && len(out) >= budget {
						return out
					}
				}
			}
		} else {
			if r.Sets[child].Contains(base) {
				out = append(out, r.enumerateAt(child, base, budgetLeft(budget, len(out)))...)
			}
		}
		return out

	case treedecomp.Join:
		l, rgt := nd.Left[i], nd.Right[i]
		var out []Assignment
		// Enumerate left states with C_l ⊆ C(s) and matching signature;
		// the right state is then forced up to its C and flags.
		for _, ls := range r.Sets[l].States() {
			if ls.Phi != s.Phi || ls.In != s.In || ls.Out != s.Out {
				continue
			}
			if ls.C&^s.C != 0 {
				continue
			}
			crNeeded := s.C &^ ls.C
			for _, ixr := range flagChoices(s.IX) {
				for _, oxr := range flagChoices(s.OX) {
					rs := ls
					rs.C = crNeeded
					rs.IX, rs.OX = ixr, oxr
					if !r.Sets[rgt].Contains(rs) {
						continue
					}
					comb, ok := combineJoin(pi, ls, rs)
					if !ok || comb != s {
						continue
					}
					la := r.enumerateAt(l, ls, budgetLeft(budget, len(out)))
					if len(la) == 0 {
						continue
					}
					ra := r.enumerateAt(rgt, rs, 0)
					for _, a1 := range la {
						for _, a2 := range ra {
							merged := make(Assignment, pi.k)
							copy(merged, a1)
							for u, tv := range a2 {
								if tv >= 0 {
									merged[u] = tv
								}
							}
							out = append(out, merged)
							if budget > 0 && len(out) >= budget {
								return out
							}
						}
					}
				}
			}
		}
		return out
	}
	return nil
}

// unmapIntroduce undoes remapIntroduce: removes the (unoccupied,
// unlabeled) slot and shifts higher slots down.
func unmapIntroduce(s State, slot int) State {
	return remapForget(s, slot)
}

// flagChoices lists the child-flag values consistent with a parent flag:
// a true parent flag may come from either child value, a false one only
// from false. Used at joins, where the comb != s check independently
// validates the pairing.
func flagChoices(parent bool) []bool {
	if parent {
		return []bool{false, true}
	}
	return []bool{false}
}

// childFlagChoices lists the child-flag values consistent with the
// forward rule parent = child || bump at an introduce node:
//
//	parent=false: impossible when bump holds; otherwise child=false.
//	parent=true:  child=true always works; child=false only with bump.
func childFlagChoices(parent, bump bool) []bool {
	if !parent {
		if bump {
			return nil
		}
		return []bool{false}
	}
	if bump {
		return []bool{false, true}
	}
	return []bool{true}
}

func budgetLeft(budget, used int) int {
	if budget <= 0 {
		return 0
	}
	left := budget - used
	if left < 1 {
		return 1
	}
	return left
}
