package match

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"planarsi/internal/graph"
	"planarsi/internal/treedecomp"
)

// randomNiceInstance builds a small random planar target, a random small
// pattern, and a nice decomposition of the target.
func randomNiceInstance(rng *rand.Rand) (*graph.Graph, *graph.Graph, *treedecomp.Nice) {
	g := graph.RandomPlanar(8+rng.IntN(20), rng.Float64(), rng)
	h := randomPattern(2+rng.IntN(3), rng.IntN(2), rng)
	nd := treedecomp.MakeNice(treedecomp.Build(g, treedecomp.MinDegree))
	return g, h, nd
}

// Property: inserting a slot and removing it again is the identity on
// states (remapIntroduce and remapForget are inverses when the slot is
// unoccupied and unlabeled).
func TestRemapRoundTripQuick(t *testing.T) {
	f := func(phiRaw [MaxK]uint8, c uint16, in, out uint32, slotRaw uint8) bool {
		s := emptyState()
		for u := range s.Phi {
			// Map into plausible slot range [-1, 20).
			s.Phi[u] = int8(int(phiRaw[u])%21 - 1)
		}
		s.C = c
		s.In = in & 0xFFFFF
		s.Out = out & 0xFFFFF
		slot := int(slotRaw % 20)
		up := remapIntroduce(s, slot)
		// The new slot is unoccupied and unlabeled by construction of
		// remapIntroduce; removing it must restore the original.
		down := remapForget(up, slot)
		return down == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: shiftMaskUp inserts a zero bit, shiftMaskDown removes it.
// The precondition (documented on shiftMaskUp) is that bit 31 is clear:
// child bags have at most MaxBag-1 slots before an introduce.
func TestShiftMaskQuick(t *testing.T) {
	f := func(m uint32, slotRaw uint8) bool {
		m &= 0x7FFFFFFF // bags hold at most MaxBag-1 slots pre-introduce
		slot := int(slotRaw % 31)
		up := shiftMaskUp(m, slot)
		if up&(1<<uint(slot)) != 0 {
			return false // inserted bit must be zero
		}
		return shiftMaskDown(up, slot) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: a state's occupied-slot mask has exactly one bit per mapped
// pattern vertex and MMask has exactly one bit per non-negative Phi.
func TestMaskConsistencyQuick(t *testing.T) {
	f := func(phiRaw [MaxK]uint8) bool {
		s := emptyState()
		used := make(map[int8]bool)
		for u := 0; u < MaxK; u++ {
			v := int8(int(phiRaw[u])%21 - 1)
			// Keep the map injective on slots, as real states are.
			if v >= 0 && used[v] {
				v = -1
			}
			if v >= 0 {
				used[v] = true
			}
			s.Phi[u] = v
		}
		mapped := 0
		for u := 0; u < MaxK; u++ {
			if s.Phi[u] >= 0 {
				mapped++
			}
		}
		m := s.MMask(MaxK)
		o := s.OccupiedSlots(MaxK)
		return popcount16(m) == mapped && popcount32(o) == mapped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func popcount16(m uint16) int {
	c := 0
	for ; m != 0; m &= m - 1 {
		c++
	}
	return c
}

func popcount32(m uint32) int {
	c := 0
	for ; m != 0; m &= m - 1 {
		c++
	}
	return c
}

// Property: combineJoin is symmetric in IX/OX and rejects exactly the
// overlapping-C pairs for edgeless patterns.
func TestCombineJoinQuick(t *testing.T) {
	pi := patternInfo{k: 8, adj: make([]uint16, 8)} // edgeless pattern
	f := func(cl, cr uint16, ixl, oxl, ixr, oxr bool) bool {
		cl &= 0xFF
		cr &= 0xFF
		ls := emptyState()
		rs := emptyState()
		ls.C, rs.C = cl, cr
		ls.IX, ls.OX = ixl, oxl
		rs.IX, rs.OX = ixr, oxr
		got, ok := combineJoin(&pi, ls, rs)
		if (cl&cr == 0) != ok {
			return false
		}
		if !ok {
			return true
		}
		return got.C == cl|cr && got.IX == (ixl || ixr) && got.OX == (oxl || oxr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// Property: every state Universe returns is locally valid — injective
// map realizing pattern edges inside the bag, C disjoint from M with no
// H-edge from C to the implicit U.
func TestUniverseLocalValidityQuick(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 9))
	for trial := 0; trial < 30; trial++ {
		g, h, nd := randomNiceInstance(rng)
		eng := NewEngine(&Problem{G: g, H: h, ND: nd})
		node := int32(rng.IntN(nd.NumNodes()))
		bag := nd.Bag[node]
		for _, s := range eng.Universe(node) {
			m := s.MMask(eng.pi.k)
			if m&s.C != 0 {
				t.Fatalf("C overlaps M in %v", s)
			}
			// Injectivity on slots.
			seen := map[int8]bool{}
			for u := 0; u < eng.pi.k; u++ {
				if s.Phi[u] < 0 {
					continue
				}
				if seen[s.Phi[u]] {
					t.Fatalf("slot reused in %v", s)
				}
				seen[s.Phi[u]] = true
				// Edges among mapped vertices realized.
				for nb := eng.pi.adj[u] & m; nb != 0; nb &= nb - 1 {
					w := trailingZeros16(nb)
					if !g.HasEdge(bag[s.Phi[u]], bag[s.Phi[w]]) {
						t.Fatalf("unrealized edge in %v", s)
					}
				}
			}
			// No H-edge from C into U.
			free := uint16((1<<eng.pi.k)-1) &^ m
			uSet := free &^ s.C
			for c := s.C; c != 0; c &= c - 1 {
				u := trailingZeros16(c)
				if eng.pi.adj[u]&uSet != 0 {
					t.Fatalf("edge from C to U in %v", s)
				}
			}
		}
	}
}

func trailingZeros16(m uint16) int {
	c := 0
	for m&1 == 0 {
		m >>= 1
		c++
	}
	return c
}
