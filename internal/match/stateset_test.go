package match

import (
	"math/rand/v2"
	"testing"
)

// mapStateSet is the old map-based representation, kept in the tests as
// the reference implementation the flat StateSet is validated (and
// benchmarked) against.
type mapStateSet map[State]struct{}

// randomState draws an arbitrary (not necessarily DP-reachable) state:
// set semantics must hold for any key the struct can represent.
func randomState(rng *rand.Rand) State {
	var s State
	for u := range s.Phi {
		s.Phi[u] = int8(rng.IntN(21) - 1)
	}
	s.C = uint16(rng.Uint32())
	s.In = rng.Uint32() & 0xFFFFF
	s.Out = rng.Uint32() & 0xFFFFF
	s.IX = rng.IntN(2) == 0
	s.OX = rng.IntN(2) == 0
	return s
}

// dpLikeState draws a state shaped like the DP's: an injective partial
// map of k=6 pattern vertices into 8 slots. Many draws collide, which is
// what the duplicate-detection path sees in a real run.
func dpLikeState(rng *rand.Rand) State {
	s := emptyState()
	var used uint32
	for u := 0; u < 6; u++ {
		switch rng.IntN(3) {
		case 0:
			slot := rng.IntN(8)
			if used&(1<<slot) == 0 {
				used |= 1 << slot
				s.Phi[u] = int8(slot)
			}
		case 1:
			s.C |= 1 << u
		}
	}
	return s
}

func TestStateSetAgainstMapReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(20, 26))
	for trial := 0; trial < 50; trial++ {
		set := NewStateSet(rng.IntN(4))
		ref := make(mapStateSet)
		n := 1 + rng.IntN(600)
		for i := 0; i < n; i++ {
			var s State
			if rng.IntN(2) == 0 {
				s = dpLikeState(rng)
			} else {
				s = randomState(rng)
			}
			_, dup := ref[s]
			if added := set.Add(s); added == dup {
				t.Fatalf("trial %d: Add returned %v but dup=%v", trial, added, dup)
			}
			ref[s] = struct{}{}
		}
		if set.Len() != len(ref) {
			t.Fatalf("trial %d: Len %d, reference %d", trial, set.Len(), len(ref))
		}
		for s := range ref {
			if !set.Contains(s) {
				t.Fatalf("trial %d: missing state %v", trial, s)
			}
		}
		for idx, s := range set.States() {
			if _, ok := ref[s]; !ok {
				t.Fatalf("trial %d: extra state %v", trial, s)
			}
			if got := set.IndexOf(s); got != idx {
				t.Fatalf("trial %d: IndexOf=%d want %d", trial, got, idx)
			}
		}
		// Absent probes.
		for i := 0; i < 100; i++ {
			s := randomState(rng)
			if _, ok := ref[s]; ok {
				continue
			}
			if set.Contains(s) || set.IndexOf(s) != -1 {
				t.Fatalf("trial %d: phantom membership", trial)
			}
		}
	}
}

func TestStateSetInsertionOrderDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 33))
	states := make([]State, 300)
	for i := range states {
		states[i] = randomState(rng)
	}
	a, b := NewStateSet(0), NewStateSet(64)
	for _, s := range states {
		a.Add(s)
		b.Add(s)
	}
	as, bs := a.States(), b.States()
	if len(as) != len(bs) {
		t.Fatalf("lengths differ: %d vs %d", len(as), len(bs))
	}
	for i := range as {
		if as[i] != bs[i] {
			t.Fatalf("insertion order differs at %d despite equal input", i)
		}
	}
}

func TestStateSetResetReuse(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 44))
	set := NewStateSet(4)
	for round := 0; round < 5; round++ {
		ref := make(mapStateSet)
		for i := 0; i < 200+100*round; i++ {
			s := dpLikeState(rng)
			set.Add(s)
			ref[s] = struct{}{}
		}
		if set.Len() != len(ref) {
			t.Fatalf("round %d: Len %d want %d", round, set.Len(), len(ref))
		}
		set.Reset()
		if set.Len() != 0 {
			t.Fatal("Reset left states behind")
		}
		for s := range ref {
			if set.Contains(s) {
				t.Fatal("Reset left table entries behind")
			}
		}
	}
}

func TestStateSetNilSafety(t *testing.T) {
	var s *StateSet
	if s.Len() != 0 || s.States() != nil || s.Contains(emptyState()) || s.IndexOf(emptyState()) != -1 {
		t.Fatal("nil StateSet must read as empty")
	}
}

func TestArenaRecyclesSets(t *testing.T) {
	var a arena
	s1 := a.get(16)
	s1.Add(emptyState())
	a.put(s1)
	s2 := a.get(8)
	if s2 != s1 {
		t.Fatal("arena should hand back the recycled set")
	}
	if s2.Len() != 0 || s2.Contains(emptyState()) {
		t.Fatal("recycled set must come back empty")
	}
}

func TestJoinIndexAgainstMapGrouping(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 66))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.IntN(400)
		states := make([]State, n)
		for i := range states {
			states[i] = dpLikeState(rng)
		}
		group := make(map[JoinSignature][]State)
		for _, s := range states {
			group[s.Signature()] = append(group[s.Signature()], s)
		}
		var ji JoinIndex
		ji.Build(states)
		// Every probe state (present or not) must see exactly its
		// signature bucket.
		for i := 0; i < 50; i++ {
			probe := dpLikeState(rng)
			want := group[probe.Signature()]
			lo, hi := ji.Bucket(&probe)
			if hi-lo != len(want) {
				t.Fatalf("trial %d: bucket size %d want %d", trial, hi-lo, len(want))
			}
			for u := lo; u < hi; u++ {
				if ji.At(u).Signature() != probe.Signature() {
					t.Fatalf("trial %d: bucket contains foreign signature", trial)
				}
			}
		}
	}
}

// ---- Micro-benchmarks: flat StateSet vs the old map path ----

func benchCorpus(n int) []State {
	rng := rand.New(rand.NewPCG(7, 77))
	out := make([]State, n)
	for i := range out {
		out[i] = dpLikeState(rng)
	}
	return out
}

func BenchmarkStateSetInsert(b *testing.B) {
	corpus := benchCorpus(4096)
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		set := NewStateSet(0)
		for i := 0; i < b.N; i++ {
			set.Reset()
			for _, s := range corpus {
				set.Add(s)
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			set := make(mapStateSet)
			for _, s := range corpus {
				set[s] = struct{}{}
			}
		}
	})
}

func BenchmarkStateSetIterate(b *testing.B) {
	corpus := benchCorpus(4096)
	flat := NewStateSet(len(corpus))
	ref := make(mapStateSet)
	for _, s := range corpus {
		flat.Add(s)
		ref[s] = struct{}{}
	}
	b.Run("flat", func(b *testing.B) {
		var acc uint16
		for i := 0; i < b.N; i++ {
			for _, s := range flat.States() {
				acc ^= s.C
			}
		}
		_ = acc
	})
	b.Run("map", func(b *testing.B) {
		var acc uint16
		for i := 0; i < b.N; i++ {
			for s := range ref {
				acc ^= s.C
			}
		}
		_ = acc
	})
}

// BenchmarkStateSetJoin compares a whole signature-grouped join step:
// sort-by-signature + bucket scan (JoinIndex) vs rebuilding the old
// map[JoinSignature][]State per join.
func BenchmarkStateSetJoin(b *testing.B) {
	pi := patternInfo{k: 6, adj: make([]uint16, 6)}
	left := benchCorpus(2048)
	right := benchCorpus(2048)
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		var ji JoinIndex
		out := NewStateSet(len(left))
		for i := 0; i < b.N; i++ {
			ji.Build(right)
			out.Reset()
			for _, ls := range left {
				lo, hi := ji.Bucket(&ls)
				for t := lo; t < hi; t++ {
					if s, ok := combineJoin(&pi, ls, *ji.At(t)); ok {
						out.Add(s)
					}
				}
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			group := make(map[JoinSignature][]State, len(right))
			for _, rs := range right {
				group[rs.Signature()] = append(group[rs.Signature()], rs)
			}
			out := make(mapStateSet)
			for _, ls := range left {
				for _, rs := range group[ls.Signature()] {
					if s, ok := combineJoin(&pi, ls, rs); ok {
						out[s] = struct{}{}
					}
				}
			}
		}
	})
}
