package match

import (
	"math/rand/v2"
	"slices"
	"testing"

	"planarsi/internal/graph"
)

// permuted returns a copy of h with vertices relabeled by a random
// permutation — an isomorphic pattern with scrambled labels.
func permuted(h *graph.Graph, rng *rand.Rand) *graph.Graph {
	k := h.N()
	perm := rng.Perm(k)
	b := graph.NewBuilder(k)
	for _, e := range h.Edges() {
		b.AddEdge(int32(perm[e[0]]), int32(perm[e[1]]))
	}
	return b.Build()
}

// edgeSet renders a graph's edge set in a comparable normal form.
func edgeSet(h *graph.Graph) [][2]int32 {
	es := slices.Clone(h.Edges())
	for i, e := range es {
		if e[0] > e[1] {
			es[i] = [2]int32{e[1], e[0]}
		}
	}
	slices.SortFunc(es, func(a, b [2]int32) int {
		if a[0] != b[0] {
			return int(a[0] - b[0])
		}
		return int(a[1] - b[1])
	})
	return es
}

// TestCanonicalKeyIsomorphismInvariant: every random relabeling of a
// pattern must map to the same key, and Canonicalize must produce the
// same labeled graph for all of them.
func TestCanonicalKeyIsomorphismInvariant(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 2026))
	bases := []*graph.Graph{
		graph.Cycle(3), graph.Cycle(4), graph.Cycle(7),
		graph.Path(2), graph.Path(5), graph.Path(9),
		graph.Star(4), graph.Star(8),
		graph.Complete(4), graph.Complete(5),
		graph.Grid(2, 3),
	}
	for trial := 0; trial < 40; trial++ {
		bases = append(bases, randomPattern(2+rng.IntN(10), rng.IntN(5), rng))
	}
	for bi, h := range bases {
		key := CanonicalKey(h)
		ch, perm := Canonicalize(h)
		if len(perm) != h.N() {
			t.Fatalf("base %d: perm has %d entries, want %d", bi, len(perm), h.N())
		}
		// The canonical copy is a relabeling of h: same size, and its own
		// key equals h's.
		if ch.N() != h.N() || ch.M() != h.M() || CanonicalKey(ch) != key {
			t.Fatalf("base %d: canonical copy is not key-stable", bi)
		}
		want := edgeSet(ch)
		for r := 0; r < 6; r++ {
			p := permuted(h, rng)
			if got := CanonicalKey(p); got != key {
				t.Fatalf("base %d relabeling %d: key %q != %q", bi, r, got, key)
			}
			cp, _ := Canonicalize(p)
			if !slices.Equal(edgeSet(cp), want) {
				t.Fatalf("base %d relabeling %d: canonical copies differ", bi, r)
			}
		}
	}
}

// TestCanonicalKeyDistinguishesNonIsomorphic: same-size, pairwise
// non-isomorphic patterns must all get distinct keys (equal keys always
// denote isomorphic patterns — the soundness direction dedupe relies
// on).
func TestCanonicalKeyDistinguishesNonIsomorphic(t *testing.T) {
	diamond := graph.NewBuilder(4)
	diamond.AddEdge(0, 1)
	diamond.AddEdge(0, 2)
	diamond.AddEdge(1, 2)
	diamond.AddEdge(1, 3)
	diamond.AddEdge(2, 3)
	paw := graph.NewBuilder(4) // triangle with a pendant
	paw.AddEdge(0, 1)
	paw.AddEdge(1, 2)
	paw.AddEdge(0, 2)
	paw.AddEdge(2, 3)
	spider := graph.NewBuilder(6) // two trees of 6, non-isomorphic to Path/Star
	spider.AddEdge(0, 1)
	spider.AddEdge(1, 2)
	spider.AddEdge(1, 3)
	spider.AddEdge(3, 4)
	spider.AddEdge(3, 5)

	families := [][]*graph.Graph{
		{graph.Cycle(4), graph.Path(4), graph.Star(4), graph.Complete(4), diamond.Build(), paw.Build()},
		{graph.Cycle(5), graph.Path(5), graph.Star(5)},
		{graph.Cycle(6), graph.Path(6), graph.Star(6), graph.Grid(2, 3), spider.Build()},
	}
	for fi, hs := range families {
		seen := make(map[string]int)
		for i, h := range hs {
			key := CanonicalKey(h)
			if j, dup := seen[key]; dup {
				t.Fatalf("family %d: members %d and %d share key %q", fi, j, i, key)
			}
			seen[key] = i
		}
	}
}

// TestCanonicalKeyBudgetFallbackIsSound: refinement-resistant patterns
// (complete graphs keep every vertex equivalent) may exhaust the search
// budget, but the key must remain self-consistent — equal inputs equal
// keys, and the key still embeds the right size.
func TestCanonicalKeyBudgetFallbackIsSound(t *testing.T) {
	h := graph.Complete(16)
	k1, k2 := CanonicalKey(h), CanonicalKey(h)
	if k1 != k2 {
		t.Fatal("CanonicalKey is not deterministic")
	}
	if int(k1[0]) != 16 {
		t.Fatalf("key size byte = %d, want 16", k1[0])
	}
	// Complete graphs are label-symmetric, so even the identity fallback
	// gives relabelings the same key.
	rng := rand.New(rand.NewPCG(3, 3))
	if CanonicalKey(permuted(h, rng)) != k1 {
		t.Fatal("relabeled complete graph got a different key")
	}
}
