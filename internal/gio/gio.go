// Package gio reads and writes the edge-list graph format the command
// line tools use.
//
// An edge-list file holds one edge per line as two integer vertex ids
// separated by whitespace. Blank lines and lines starting with '#' are
// ignored. The vertex count is max id + 1 unless a "n <count>" header
// line raises it (isolated trailing vertices). A coordinates file holds
// "v x y" lines assigning planar coordinates, from which an embedding
// (rotation system) is derived; it must cover every vertex.
package gio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"planarsi/internal/graph"
)

// ReadEdgeList parses an edge list from r.
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	edges, n, err := scanEdges(r)
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(n)
	for _, e := range edges {
		if b.HasEdge(e[0], e[1]) {
			continue // tolerate duplicate lines
		}
		b.AddEdge(e[0], e[1])
	}
	return b.Build(), nil
}

// ReadEmbedded parses an edge list and a coordinates file and returns the
// embedded graph.
func ReadEmbedded(edgeR, coordR io.Reader) (*graph.Graph, error) {
	edges, n, err := scanEdges(edgeR)
	if err != nil {
		return nil, err
	}
	x := make([]float64, n)
	y := make([]float64, n)
	seen := make([]bool, n)
	sc := bufio.NewScanner(coordR)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(strings.TrimSpace(sc.Text()))
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("gio: coords line %d: want 'v x y'", line)
		}
		v, err := strconv.Atoi(fields[0])
		if err != nil || v < 0 || v >= n {
			return nil, fmt.Errorf("gio: coords line %d: bad vertex %q", line, fields[0])
		}
		if x[v], err = strconv.ParseFloat(fields[1], 64); err != nil {
			return nil, fmt.Errorf("gio: coords line %d: bad x", line)
		}
		if y[v], err = strconv.ParseFloat(fields[2], 64); err != nil {
			return nil, fmt.Errorf("gio: coords line %d: bad y", line)
		}
		seen[v] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for v, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("gio: vertex %d has no coordinates", v)
		}
	}
	b := graph.NewBuilder(n)
	for _, e := range edges {
		if b.HasEdge(e[0], e[1]) {
			continue
		}
		b.AddEdge(e[0], e[1])
	}
	return b.BuildEmbedded(x, y), nil
}

func scanEdges(r io.Reader) ([][2]int32, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges [][2]int32
	n := 0
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(strings.TrimSpace(sc.Text()))
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if fields[0] == "n" && len(fields) == 2 {
			declared, err := strconv.Atoi(fields[1])
			if err != nil || declared < 0 {
				return nil, 0, fmt.Errorf("gio: line %d: bad vertex count", line)
			}
			if declared > n {
				n = declared
			}
			continue
		}
		if len(fields) != 2 {
			return nil, 0, fmt.Errorf("gio: line %d: want 'u v'", line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil || u < 0 {
			return nil, 0, fmt.Errorf("gio: line %d: bad vertex %q", line, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil || v < 0 {
			return nil, 0, fmt.Errorf("gio: line %d: bad vertex %q", line, fields[1])
		}
		if u == v {
			return nil, 0, fmt.Errorf("gio: line %d: self-loop at %d", line, u)
		}
		edges = append(edges, [2]int32{int32(u), int32(v)})
		if u+1 > n {
			n = u + 1
		}
		if v+1 > n {
			n = v + 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return edges, n, nil
}

// ReadEdgeListFile reads an edge-list file by path.
func ReadEdgeListFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// ReadEmbeddedFile reads an edge-list file plus a coordinates file.
func ReadEmbeddedFile(edgePath, coordPath string) (*graph.Graph, error) {
	ef, err := os.Open(edgePath)
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	cf, err := os.Open(coordPath)
	if err != nil {
		return nil, err
	}
	defer cf.Close()
	return ReadEmbedded(ef, cf)
}

// WriteEdgeList writes g in the edge-list format.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	if _, err := fmt.Fprintf(w, "n %d\n", g.N()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(w, "%d %d\n", e[0], e[1]); err != nil {
			return err
		}
	}
	return nil
}
