// Package gio reads and writes the edge-list graph format the command
// line tools use.
//
// An edge-list file holds one edge per line as two integer vertex ids
// separated by whitespace. Blank lines and lines starting with '#' are
// ignored. The vertex count is max id + 1 unless a "n <count>" header
// line raises it (isolated trailing vertices). A coordinates file holds
// "v x y" lines assigning planar coordinates, from which an embedding
// (rotation system) is derived; it must cover every vertex.
package gio

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"planarsi/internal/graph"
)

// ReadEdgeList parses an edge list from r.
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	return ReadEdgeListLimit(r, 0)
}

// ReadEdgeListLimit parses an edge list from r, rejecting inputs that
// declare or imply more than maxVertices vertices (0 means no limit).
// Network-facing callers (the planarsid daemon) use the limit so a short
// hostile input — e.g. a huge "n <count>" header — cannot force a huge
// allocation.
func ReadEdgeListLimit(r io.Reader, maxVertices int) (*graph.Graph, error) {
	edges, n, err := scanEdges(r, maxVertices)
	if err != nil {
		return nil, err
	}
	return buildDeduped(n, edges).Build(), nil
}

// buildDeduped fills a builder from edges, tolerating duplicate lines.
// Deduplication uses a set rather than Builder.HasEdge's adjacency scan:
// the parser is network-facing (planarsid graph registration), where a
// dense body would otherwise cost sum-of-degrees time.
func buildDeduped(n int, edges [][2]int32) *graph.Builder {
	b := graph.NewBuilder(n)
	seen := make(map[[2]int32]struct{}, len(edges))
	for _, e := range edges {
		k := e
		if k[0] > k[1] {
			k[0], k[1] = k[1], k[0]
		}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		b.AddEdge(e[0], e[1])
	}
	return b
}

// ReadEmbedded parses an edge list and a coordinates file and returns the
// embedded graph.
func ReadEmbedded(edgeR, coordR io.Reader) (*graph.Graph, error) {
	edges, n, err := scanEdges(edgeR, 0)
	if err != nil {
		return nil, err
	}
	x := make([]float64, n)
	y := make([]float64, n)
	seen := make([]bool, n)
	sc := bufio.NewScanner(coordR)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(strings.TrimSpace(sc.Text()))
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("gio: coords line %d: want 'v x y'", line)
		}
		v, err := strconv.Atoi(fields[0])
		if err != nil || v < 0 || v >= n {
			return nil, fmt.Errorf("gio: coords line %d: bad vertex %q", line, fields[0])
		}
		if x[v], err = strconv.ParseFloat(fields[1], 64); err != nil {
			return nil, fmt.Errorf("gio: coords line %d: bad x", line)
		}
		if y[v], err = strconv.ParseFloat(fields[2], 64); err != nil {
			return nil, fmt.Errorf("gio: coords line %d: bad y", line)
		}
		seen[v] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for v, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("gio: vertex %d has no coordinates", v)
		}
	}
	return buildDeduped(n, edges).BuildEmbedded(x, y), nil
}

// maxVertexID bounds vertex ids so that id+1 still fits an int32: ids are
// stored as int32 throughout the repository, and without the bound a
// 64-bit id like 2^31 would silently wrap negative in the conversion.
const maxVertexID = math.MaxInt32 - 1

func scanEdges(r io.Reader, maxVertices int) ([][2]int32, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges [][2]int32
	n := 0
	line := 0
	limit := maxVertexID + 1
	if maxVertices > 0 && maxVertices < limit {
		limit = maxVertices
	}
	for sc.Scan() {
		line++
		fields := strings.Fields(strings.TrimSpace(sc.Text()))
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if fields[0] == "n" && len(fields) == 2 {
			declared, err := strconv.Atoi(fields[1])
			if err != nil || declared < 0 {
				return nil, 0, fmt.Errorf("gio: line %d: bad vertex count", line)
			}
			if declared > limit {
				return nil, 0, fmt.Errorf("gio: line %d: vertex count %d exceeds limit %d", line, declared, limit)
			}
			if declared > n {
				n = declared
			}
			continue
		}
		if len(fields) != 2 {
			return nil, 0, fmt.Errorf("gio: line %d: want 'u v'", line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil || u < 0 || u > maxVertexID {
			return nil, 0, fmt.Errorf("gio: line %d: bad vertex %q", line, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil || v < 0 || v > maxVertexID {
			return nil, 0, fmt.Errorf("gio: line %d: bad vertex %q", line, fields[1])
		}
		if u == v {
			return nil, 0, fmt.Errorf("gio: line %d: self-loop at %d", line, u)
		}
		if u >= limit || v >= limit {
			return nil, 0, fmt.Errorf("gio: line %d: vertex id %d exceeds limit %d", line, max(u, v), limit)
		}
		edges = append(edges, [2]int32{int32(u), int32(v)})
		if u+1 > n {
			n = u + 1
		}
		if v+1 > n {
			n = v + 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return edges, n, nil
}

// ReadEdgeListFile reads an edge-list file by path; the path "-" reads
// standard input.
func ReadEdgeListFile(path string) (*graph.Graph, error) {
	if path == "-" {
		return ReadEdgeList(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// ReadEmbeddedFile reads an edge-list file plus a coordinates file. One of
// the two paths (not both) may be "-" for standard input.
func ReadEmbeddedFile(edgePath, coordPath string) (*graph.Graph, error) {
	if edgePath == "-" && coordPath == "-" {
		return nil, fmt.Errorf("gio: only one input may be stdin")
	}
	ef := io.Reader(os.Stdin)
	if edgePath != "-" {
		f, err := os.Open(edgePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		ef = f
	}
	cf := io.Reader(os.Stdin)
	if coordPath != "-" {
		f, err := os.Open(coordPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		cf = f
	}
	return ReadEmbedded(ef, cf)
}

// WriteEdgeList writes g in the edge-list format.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	if _, err := fmt.Fprintf(w, "n %d\n", g.N()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(w, "%d %d\n", e[0], e[1]); err != nil {
			return err
		}
	}
	return nil
}
