package gio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList fuzzes the edge-list parser, which the planarsid
// daemon exposes to the network (graph registration bodies). The parser
// must never panic, must reject anything that would overflow the int32
// vertex ids or blow past the vertex limit, and on success must produce a
// simple graph that round-trips through WriteEdgeList.
func FuzzReadEdgeList(f *testing.F) {
	for _, seed := range []string{
		"0 1\n1 2\n2 0\n",
		"# comment\n\nn 5\n0 1\n",
		"n -1\n",
		"n 99999999999999999999\n",
		"n 2147483647\n",
		"n\n",
		"n 5 7\n",
		"0 1 2\n",
		"a b\n",
		"1 1\n",
		"-3 4\n",
		"2147483648 0\n",
		"2147483646 0\n",
		"0 99999999999999999999\n",
		"n 10\n0 1\n0 1\n1 0\n",
		"0 1\r\n1 2\r\n",
		"\x00\x01",
		"0 1\n",
	} {
		f.Add([]byte(seed))
	}
	const limit = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeListLimit(bytes.NewReader(data), limit)
		if err != nil {
			if g != nil {
				t.Fatalf("non-nil graph alongside error %v", err)
			}
			return
		}
		n := g.N()
		if n > limit {
			t.Fatalf("graph has %d vertices, limit %d", n, limit)
		}
		seen := make(map[[2]int32]bool)
		for _, e := range g.Edges() {
			if e[0] == e[1] {
				t.Fatalf("self-loop at %d", e[0])
			}
			if e[0] < 0 || e[1] < 0 || int(e[0]) >= n || int(e[1]) >= n {
				t.Fatalf("edge %v out of range [0, %d)", e, n)
			}
			if seen[e] {
				t.Fatalf("parallel edge %v", e)
			}
			seen[e] = true
		}
		// Round trip: writing and re-reading must reproduce the graph.
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write: %v", err)
		}
		g2, err := ReadEdgeListLimit(strings.NewReader(buf.String()), limit)
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		if g2.N() != n || g2.M() != g.M() {
			t.Fatalf("round trip changed shape: n %d->%d, m %d->%d", n, g2.N(), g.M(), g2.M())
		}
		for _, e := range g2.Edges() {
			if !seen[e] {
				t.Fatalf("round trip invented edge %v", e)
			}
		}
	})
}
