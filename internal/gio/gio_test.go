package gio

import (
	"bytes"
	"strings"
	"testing"

	"planarsi/internal/graph"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := "# a triangle\n0 1\n1 2\n2 0\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("got n=%d m=%d, want 3/3", g.N(), g.M())
	}
}

func TestReadEdgeListHeaderRaisesN(t *testing.T) {
	in := "n 5\n0 1\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 || g.M() != 1 {
		t.Fatalf("got n=%d m=%d, want 5/1", g.N(), g.M())
	}
}

func TestReadEdgeListToleratesDuplicates(t *testing.T) {
	in := "0 1\n1 0\n0 1\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("duplicate edges not merged: m=%d", g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",     // one field
		"0 1 2\n", // three fields
		"a b\n",   // not numbers
		"-1 2\n",  // negative
		"3 3\n",   // self loop
		"n x\n",   // bad header
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := graph.Grid(4, 5)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("roundtrip changed size: %d/%d vs %d/%d", back.N(), back.M(), g.N(), g.M())
	}
	for _, e := range g.Edges() {
		if !back.HasEdge(e[0], e[1]) {
			t.Fatalf("edge %v lost in roundtrip", e)
		}
	}
}

func TestReadEmbedded(t *testing.T) {
	edges := "0 1\n1 2\n2 0\n"
	coords := "0 0 0\n1 1 0\n2 0.5 1\n"
	g, err := ReadEmbedded(strings.NewReader(edges), strings.NewReader(coords))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Embedded() {
		t.Fatal("graph should carry an embedding")
	}
	if err := graph.ValidateEmbedding(g); err != nil {
		t.Fatal(err)
	}
}

func TestReadEmbeddedMissingCoords(t *testing.T) {
	edges := "0 1\n1 2\n"
	coords := "0 0 0\n1 1 0\n" // vertex 2 missing
	if _, err := ReadEmbedded(strings.NewReader(edges), strings.NewReader(coords)); err == nil {
		t.Fatal("expected error for missing coordinates")
	}
}

func TestReadEmbeddedBadCoordLines(t *testing.T) {
	edges := "0 1\n"
	for _, coords := range []string{"0 x 0\n1 0 0\n", "0 0\n1 0 0\n", "9 0 0\n"} {
		if _, err := ReadEmbedded(strings.NewReader(edges), strings.NewReader(coords)); err == nil {
			t.Errorf("coords %q: expected error", coords)
		}
	}
}
