package serve

import (
	"encoding/json"
	"errors"
	"net/http"

	"planarsi/internal/graph"
	"planarsi/internal/index"
)

// EditRequest is the JSON body of POST /graphs/{name}/edges: one atomic
// batch of edge insertions and deletions against a registered host
// graph. Edges decode strictly (see Edge).
type EditRequest struct {
	Add    []Edge `json:"add,omitempty"`
	Remove []Edge `json:"remove,omitempty"`
	// RequirePlanar rejects the batch (422) if the edited graph would
	// lose planarity.
	RequirePlanar bool `json:"requirePlanar,omitempty"`
	// IfEpoch makes the batch conditional on the graph still being at
	// that edit epoch (409 otherwise) — optimistic concurrency for
	// multiple writers.
	IfEpoch *uint64 `json:"ifEpoch,omitempty"`
}

// EditResponse is the JSON body of a successful edit batch: the new
// epoch plus the per-class migration work (see index.EditResult).
type EditResponse struct {
	Graph string `json:"graph"`
	index.EditResult
}

// editStatus maps an ApplyEdits error to its HTTP status.
func editStatus(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, index.ErrEpochConflict):
		// A concurrent editor won the race the IfEpoch condition guarded.
		return http.StatusConflict
	case errors.Is(err, graph.ErrEdit), errors.Is(err, index.ErrNonPlanarEdit):
		// The batch was well-formed JSON but unapplicable to this graph.
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

// handleApplyEdits serves POST /graphs/{name}/edges: it applies one edit
// batch through the registry, advancing the graph's edit epoch. Queries
// already in flight drain against the pre-edit generation; queries
// admitted after the response see the edited graph.
func (s *Server) handleApplyEdits(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	r.Body = http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	var req EditRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	batch := index.EditBatch{
		Add:           edgePairs(req.Add),
		Remove:        edgePairs(req.Remove),
		RequirePlanar: req.RequirePlanar,
		IfEpoch:       req.IfEpoch,
	}
	res, err := s.reg.ApplyEdits(name, batch)
	if err != nil {
		httpError(w, editStatus(err), "%v", err)
		return
	}
	// The graph changed shape, so the per-(graph, kind) breakers' failure
	// history no longer describes it: start the circuits fresh.
	s.dropBreakers(name)
	writeJSON(w, http.StatusOK, EditResponse{Graph: name, EditResult: res})
}

// edgePairs converts wire edges to the index's batch form.
func edgePairs(es []Edge) [][2]int32 {
	if len(es) == 0 {
		return nil
	}
	out := make([][2]int32, len(es))
	for i, e := range es {
		out[i] = [2]int32(e)
	}
	return out
}
