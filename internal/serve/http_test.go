package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"planarsi/internal/conn"
	"planarsi/internal/core"
	"planarsi/internal/graph"
	"planarsi/internal/serve"
)

var httpOpt = core.Options{Seed: 7, MaxRuns: 4}

func newTestServer(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.New(serve.Options{
		Pipeline:  httpOpt,
		Scheduler: serve.SchedulerOptions{Window: time.Millisecond},
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func graphWire(g *graph.Graph) serve.GraphJSON {
	return serve.WireGraph(g)
}

// TestHTTPBatchedEqualsDirect is the serving-layer acceptance test: the
// bytes served by /decide and /count for a burst of concurrent, coalesced
// queries are identical to the bytes produced by marshaling the direct
// planarsi API's answers (same Options) through the same wire struct.
func TestHTTPBatchedEqualsDirect(t *testing.T) {
	s, ts := newTestServer(t)
	g := graph.Grid(6, 6)
	if _, err := s.Registry().Register("grid", g, false); err != nil {
		t.Fatal(err)
	}
	patterns := []*graph.Graph{
		graph.Cycle(4), graph.Cycle(3), graph.Path(4), graph.Star(4),
		graph.Cycle(6), graph.Path(5), graph.Star(5), graph.Cycle(5),
	}

	type answer struct{ decide, count []byte }
	got := make([]answer, len(patterns))
	var wg sync.WaitGroup
	for i, h := range patterns {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := map[string]any{"graph": "grid", "pattern": graphWire(h)}
			resp, body := postJSON(t, ts.URL+"/decide", req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("decide %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			got[i].decide = body
			resp, body = postJSON(t, ts.URL+"/count", req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("count %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			got[i].count = body
		}()
	}
	wg.Wait()

	for i, h := range patterns {
		found, err := core.Decide(g, h, httpOpt)
		if err != nil {
			t.Fatal(err)
		}
		count, err := core.Count(g, h, httpOpt)
		if err != nil {
			t.Fatal(err)
		}
		wantDecide, _ := json.Marshal(serve.QueryResponse{Graph: "grid", Found: found})
		wantCount, _ := json.Marshal(serve.QueryResponse{Graph: "grid", Found: count > 0, Count: &count})
		if !bytes.Equal(bytes.TrimSpace(got[i].decide), wantDecide) {
			t.Errorf("pattern %d decide: got %s, want %s", i, got[i].decide, wantDecide)
		}
		if !bytes.Equal(bytes.TrimSpace(got[i].count), wantCount) {
			t.Errorf("pattern %d count: got %s, want %s", i, got[i].count, wantCount)
		}
	}

	st := s.Stats()
	if st.Scheduler.Requests != uint64(2*len(patterns)) {
		t.Errorf("scheduler saw %d requests, want %d", st.Scheduler.Requests, 2*len(patterns))
	}
	if st.Endpoints["decide"].Count != uint64(len(patterns)) {
		t.Errorf("decide endpoint count = %d, want %d", st.Endpoints["decide"].Count, len(patterns))
	}
}

// TestHTTPGraphLifecycle drives registration (both wire formats), listing,
// duplicate and in-flight conflicts, and removal.
func TestHTTPGraphLifecycle(t *testing.T) {
	_, ts := newTestServer(t)

	// Register via edge-list text.
	edgeList := "n 4\n0 1\n1 2\n2 3\n3 0\n"
	resp, err := http.Post(ts.URL+"/graphs/square", "text/plain", strings.NewReader(edgeList))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register text: status %d: %s", resp.StatusCode, body)
	}
	var reg serve.RegisterResponse
	if err := json.Unmarshal(body, &reg); err != nil {
		t.Fatal(err)
	}
	if reg.N != 4 || reg.M != 4 {
		t.Fatalf("registered n=%d m=%d, want 4/4", reg.N, reg.M)
	}

	// Register via JSON.
	resp, body = postJSON(t, ts.URL+"/graphs/tri", serve.GraphJSON{Edges: []serve.Edge{{0, 1}, {1, 2}, {2, 0}}})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register json: status %d: %s", resp.StatusCode, body)
	}

	// Duplicate name conflicts.
	resp, _ = postJSON(t, ts.URL+"/graphs/tri", serve.GraphJSON{Edges: []serve.Edge{{0, 1}}})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate register: status %d, want 409", resp.StatusCode)
	}

	// Malformed edge arrays are rejected, not silently truncated.
	resp, _ = postJSON(t, ts.URL+"/decide", map[string]any{
		"graph": "tri", "pattern": map[string]any{"edges": [][]int32{{0, 1, 7}}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("3-element edge: status %d, want 400", resp.StatusCode)
	}

	// Malformed graphs are rejected up front.
	for _, bad := range []string{"1 1\n", "0 x\n", "n 99999999999999\n"} {
		resp, err := http.Post(ts.URL+"/graphs/bad", "text/plain", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("register %q: status %d, want 400", bad, resp.StatusCode)
		}
	}

	// Listing sees both graphs.
	resp, err = http.Get(ts.URL + "/graphs")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var list serve.RegistryStats
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Graphs) != 2 {
		t.Fatalf("listed %d graphs, want 2: %s", len(list.Graphs), body)
	}

	// A query against the registered graph works end to end.
	resp, body = postJSON(t, ts.URL+"/decide", map[string]any{
		"graph": "square", "pattern": graphWire(graph.Path(3)),
	})
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"found":true`) {
		t.Fatalf("decide on registered graph: status %d: %s", resp.StatusCode, body)
	}

	// Remove, then the graph 404s.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/graphs/tri", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d, want 204", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/decide", map[string]any{
		"graph": "tri", "pattern": graphWire(graph.Path(2)),
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("decide on removed graph: status %d, want 404", resp.StatusCode)
	}
}

// TestHTTPFindSeparatingConnectivity covers the witness-producing
// endpoints: /find occurrences verify, /separating returns a separating
// witness, /connectivity matches the known grid connectivity.
func TestHTTPFindSeparatingConnectivity(t *testing.T) {
	s, ts := newTestServer(t)
	g := graph.Grid(5, 5)
	if _, err := s.Registry().Register("grid", g, false); err != nil {
		t.Fatal(err)
	}

	h := graph.Cycle(4)
	resp, body := postJSON(t, ts.URL+"/find", map[string]any{"graph": "grid", "pattern": graphWire(h)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("find: status %d: %s", resp.StatusCode, body)
	}
	var qr serve.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Found || !core.VerifyOccurrence(g, h, qr.Occurrence) {
		t.Fatalf("find returned unverifiable occurrence: %s", body)
	}

	// The distance-1 ring around the center of a 5x5 grid is a C8 whose
	// removal separates the center (12) from the corner (0).
	ring := graph.Cycle(8)
	resp, body = postJSON(t, ts.URL+"/separating", map[string]any{
		"graph": "grid", "pattern": graphWire(ring), "terminals": []int32{12, 0},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("separating: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	mask := make([]bool, g.N())
	mask[12], mask[0] = true, true
	if !qr.Found || !core.VerifySeparating(g, ring, mask, qr.Occurrence) {
		t.Fatalf("separating returned unverifiable witness: %s", body)
	}

	// Terminal validation.
	resp, _ = postJSON(t, ts.URL+"/separating", map[string]any{
		"graph": "grid", "pattern": graphWire(ring), "terminals": []int32{0, 99},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range terminal: status %d, want 400", resp.StatusCode)
	}

	resp, body = postJSON(t, ts.URL+"/connectivity", map[string]any{"graph": "grid"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("connectivity: status %d: %s", resp.StatusCode, body)
	}
	var cr serve.ConnectivityResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Connectivity != 2 {
		t.Fatalf("grid connectivity = %d, want 2: %s", cr.Connectivity, body)
	}
	if cr.Cut != nil && !conn.VerifyCut(g, cr.Cut) {
		t.Fatalf("reported cut does not verify: %s", body)
	}
}

// TestHTTPHealthAndStats checks the operational endpoints.
func TestHTTPHealthAndStats(t *testing.T) {
	s, ts := newTestServer(t)
	if _, err := s.Registry().Register("grid", graph.Grid(4, 4), true); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: status %d body %q", resp.StatusCode, body)
	}

	if _, body = postJSON(t, ts.URL+"/decide", map[string]any{
		"graph": "grid", "pattern": graphWire(graph.Cycle(4)),
	}); len(body) == 0 {
		t.Fatal("empty decide response")
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var st serve.ServerStats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("stats unmarshal: %v: %s", err, body)
	}
	if len(st.Registry.Graphs) != 1 || st.Registry.Graphs[0].Index.Queries == 0 {
		t.Fatalf("stats missing registry accounting: %s", body)
	}
	if st.Endpoints["decide"].Count != 1 || st.Endpoints["healthz"].Count != 1 {
		t.Fatalf("stats missing endpoint counters: %s", body)
	}
	if st.Registry.Graphs[0].MemBytes == 0 {
		t.Fatalf("stats missing memory accounting: %s", body)
	}
}

func ExampleGraphJSON() {
	wire := serve.GraphJSON{Edges: []serve.Edge{{0, 1}, {1, 2}, {2, 0}}}
	g, _ := wire.Build(16)
	fmt.Println(g.N(), g.M())
	// Output: 3 3
}
