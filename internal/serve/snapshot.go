package serve

// Snapshot-directory management for the daemon: SaveSnapshots writes
// one snapshot file per registered graph into Options.SnapshotDir
// (atomically, via temp file + rename), RestoreSnapshots registers
// every *.snap found there at boot, and POST /snapshot triggers an
// on-demand checkpoint. Together with planarsid's graceful-shutdown
// save, this converts daemon restarts into warm boots: pinned graphs
// come back with their preprocessing caches already populated.

import (
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"slices"
	"sort"

	"planarsi/internal/fault"
)

// ErrNoSnapshotDir reports a snapshot operation on a server configured
// without a snapshot directory.
var ErrNoSnapshotDir = errors.New("serve: no snapshot directory configured")

// SnapshotInfo describes one snapshot file written or restored.
type SnapshotInfo struct {
	// Name is the graph's registry name.
	Name string `json:"name"`
	// File is the snapshot's path on disk.
	File string `json:"file"`
	// FileBytes is the size of the snapshot file.
	FileBytes int64 `json:"fileBytes"`
	// N and M describe the snapshotted host graph.
	N int `json:"n"`
	M int `json:"m"`
	// Clusterings and Covers count the cached artifacts carried by the
	// snapshot (covers = plain + separating).
	Clusterings int `json:"clusterings"`
	Covers      int `json:"covers"`
}

// snapshotFile maps a registry name to its file inside dir. Names pass
// through url.PathEscape so arbitrary registry names (including ones
// with separators) produce exactly one flat, collision-free file each;
// the rare escaped name that still matches a path special-case is
// refused.
func snapshotFile(dir, name string) (string, error) {
	esc := url.PathEscape(name)
	if esc == "" || esc == "." || esc == ".." {
		return "", fmt.Errorf("serve: graph name %q cannot name a snapshot file", name)
	}
	return filepath.Join(dir, esc+".snap"), nil
}

// SaveSnapshots checkpoints every registered graph to the snapshot
// directory, one file per graph, each written to a temp file and
// renamed into place so a crash mid-save never corrupts a previous
// snapshot. The directory is reconciled against the registry: *.snap
// files whose graph is no longer registered (removed via the API, or
// dropped by stage-2 eviction) are pruned, so a later warm boot cannot
// resurrect a graph the daemon let go. Per-graph failures don't abort
// the sweep; they are joined into the returned error alongside the
// successfully written files.
func (s *Server) SaveSnapshots() ([]SnapshotInfo, error) {
	dir := s.opt.SnapshotDir
	if dir == "" {
		return nil, ErrNoSnapshotDir
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	names := s.reg.Names()
	sort.Strings(names)
	var infos []SnapshotInfo
	var errs []error
	// current maps every *registered* graph's file name, whether or not
	// its save succeeded — a transient save failure must not get the
	// previous good snapshot pruned.
	current := make(map[string]bool, len(names))
	for _, name := range names {
		if path, err := snapshotFile(dir, name); err == nil {
			current[filepath.Base(path)] = true
		}
		info, err := s.saveOne(dir, name)
		if err != nil {
			errs = append(errs, fmt.Errorf("snapshot %q: %w", name, err))
			continue
		}
		infos = append(infos, info)
	}
	if stale, err := filepath.Glob(filepath.Join(dir, "*.snap")); err == nil {
		for _, path := range stale {
			if !current[filepath.Base(path)] {
				if err := os.Remove(path); err != nil {
					errs = append(errs, fmt.Errorf("prune %s: %w", path, err))
				}
			}
		}
	}
	return infos, errors.Join(errs...)
}

// removeSnapshotFile deletes a graph's snapshot file, if persistence is
// configured — called when a graph is explicitly removed, so the next
// boot does not resurrect it. Best-effort: a missing file is fine, and
// the reconciliation sweep in SaveSnapshots backstops other failures.
func (s *Server) removeSnapshotFile(name string) {
	if s.opt.SnapshotDir == "" {
		return
	}
	if path, err := snapshotFile(s.opt.SnapshotDir, name); err == nil {
		_ = os.Remove(path)
	}
}

func (s *Server) saveOne(dir, name string) (SnapshotInfo, error) {
	if err := fault.Err(fault.SnapshotWrite); err != nil {
		return SnapshotInfo{}, err
	}
	path, err := snapshotFile(dir, name)
	if err != nil {
		return SnapshotInfo{}, err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-snap-*")
	if err != nil {
		return SnapshotInfo{}, err
	}
	defer os.Remove(tmp.Name())
	if err := s.reg.WriteSnapshot(tmp, name); err != nil {
		tmp.Close()
		return SnapshotInfo{}, err
	}
	// The rename-into-place pattern only survives crashes if the data is
	// on disk before the rename and the directory entry after it: fsync
	// the temp file, rename, then fsync the directory. Without the first
	// a power loss can leave a complete-looking file of zeros under the
	// final name; without the second the rename itself may not be
	// durable.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return SnapshotInfo{}, err
	}
	if err := tmp.Close(); err != nil {
		return SnapshotInfo{}, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return SnapshotInfo{}, err
	}
	if err := syncDir(dir); err != nil {
		return SnapshotInfo{}, err
	}
	return s.snapshotInfo(name, path)
}

// syncDir fsyncs a directory, making a just-renamed file's directory
// entry durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func (s *Server) snapshotInfo(name, path string) (SnapshotInfo, error) {
	info := SnapshotInfo{Name: name, File: path}
	if fi, err := os.Stat(path); err == nil {
		info.FileBytes = fi.Size()
	}
	e := s.reg.Acquire(name)
	if e == nil {
		return info, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	defer s.reg.Release(e)
	info.N = e.Graph().N()
	info.M = e.Graph().M()
	st := e.Index().Stats()
	info.Clusterings = st.Clusterings
	info.Covers = st.PlainCovers + st.SeparatingCovers
	return info, nil
}

// RestoreSnapshots registers every *.snap file in the snapshot
// directory, returning one SnapshotInfo per restored graph. A missing
// directory is a cold boot, not an error. Corrupt or incompatible files
// are skipped (joined into the returned error) rather than failing the
// boot: a damaged snapshot must never take the daemon down, it only
// costs that graph its warm start.
func (s *Server) RestoreSnapshots() ([]SnapshotInfo, error) {
	dir := s.opt.SnapshotDir
	if dir == "" {
		return nil, ErrNoSnapshotDir
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.snap"))
	if err != nil {
		return nil, err
	}
	slices.Sort(paths)
	var infos []SnapshotInfo
	var errs []error
	for _, path := range paths {
		e, err := s.restoreOne(path)
		if err != nil {
			errs = append(errs, fmt.Errorf("restore %s: %w", path, err))
			continue
		}
		info, err := s.snapshotInfo(e.Name(), path)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		infos = append(infos, info)
	}
	return infos, errors.Join(errs...)
}

func (s *Server) restoreOne(path string) (*Entry, error) {
	if err := fault.Err(fault.SnapshotRead); err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return s.reg.RestoreSnapshot(f, s.opt.MaxGraphVertices)
}

// SnapshotResponse is the JSON body of POST /snapshot. On partial
// failure Graphs still lists the files that were written and Error
// carries the joined per-graph failures, so an orchestrator can tell a
// degraded checkpoint from a wholly failed one.
type SnapshotResponse struct {
	Dir    string         `json:"dir"`
	Graphs []SnapshotInfo `json:"graphs"`
	Error  string         `json:"error,omitempty"`
}

// handleSnapshot serves POST /snapshot: an on-demand checkpoint of
// every registered graph. Registered only when a snapshot directory is
// configured.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	infos, err := s.SaveSnapshots()
	resp := SnapshotResponse{Dir: s.opt.SnapshotDir, Graphs: infos}
	status := http.StatusOK
	if err != nil {
		resp.Error = err.Error()
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, resp)
}
