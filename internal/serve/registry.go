// Package serve is the long-lived serving layer on top of the batch-query
// engine: a multi-graph registry of planarsi Indexes, a micro-batching
// query scheduler that coalesces concurrent requests into shared
// Index.Scan batches, and the HTTP handlers behind the planarsid daemon.
//
// The paper's pipeline amortizes target-side preprocessing (ESTC
// clusterings, k-d covers, nice band decompositions) across queries; the
// Index memoizes those artifacts in-process. This package turns that
// in-process cache into a service: graphs live in a ref-counted registry
// whose cached artifacts are evicted LRU-first under a memory budget
// (driven by Index.Stats accounting), and concurrent requests against the
// same host graph are coalesced over a small time window so the shared
// preprocessing is paid once per window instead of once per request.
package serve

import (
	"errors"
	"fmt"
	"io"
	"slices"
	"strings"
	"sync"

	"planarsi/internal/conn"
	"planarsi/internal/core"
	"planarsi/internal/graph"
	"planarsi/internal/index"
	"planarsi/internal/snap"
)

// RegistryOptions configures a Registry.
type RegistryOptions struct {
	// Pipeline is the planarsi option set shared by every Index the
	// registry owns. Fixing it registry-wide keeps batched answers
	// byte-identical to the direct API with the same options.
	Pipeline core.Options
	// MaxBytes is the memory budget enforced by Maintain over the sum of
	// every entry's graph bytes plus cached-artifact bytes (Index.Stats).
	// 0 disables eviction.
	MaxBytes int64
	// OnRemove, when non-nil, is called (outside the registry lock) for
	// every entry that leaves the registry, whether evicted or removed
	// explicitly. The scheduler uses it to drop the entry's batch groups.
	OnRemove func(*Entry)
}

// Registry is a named collection of host graphs, each owning one
// planarsi Index. Entries are ref-counted: Acquire pins an entry for the
// duration of a request and Release unpins it, and only unpinned,
// unreferenced entries are eligible for eviction. All methods are safe
// for concurrent use.
type Registry struct {
	opt RegistryOptions

	mu      sync.Mutex
	entries map[string]*Entry
	clock   int64 // LRU timestamp source, bumped on every Acquire

	resets    uint64 // cache sheds (stage-1 eviction)
	evictions uint64 // entry removals (stage-2 eviction)
}

// Entry is one registered host graph with its Index. Obtain entries with
// Acquire (and Release them) or Register.
type Entry struct {
	name string
	ix   *index.Index
	// opt is the owning registry's pipeline option set (fixed for the
	// entry's lifetime, like the Index's).
	opt core.Options

	// pinned entries (daemon-preloaded graphs) are never removed from
	// the registry by eviction; their cached artifacts can still be shed.
	pinned bool

	// refs and lastUsed are guarded by the owning registry's mu.
	refs     int
	lastUsed int64

	// The vertex-connectivity cache, keyed by the Index's edit epoch:
	// within one epoch the graph and the pipeline options are fixed, so
	// the (seeded, deterministic) answer never changes; an ApplyEdits
	// invalidates it by advancing the epoch.
	connMu    sync.Mutex
	connOK    bool
	connEpoch uint64
	connRes   conn.Result
	connErr   error
}

// Name returns the entry's registry name.
func (e *Entry) Name() string { return e.name }

// Pinned reports whether the entry is exempt from stage-2 eviction
// (daemon-preloaded and snapshot-restored-as-pinned graphs).
func (e *Entry) Pinned() bool { return e.pinned }

// Graph returns the entry's host graph at its current edit epoch.
func (e *Entry) Graph() *graph.Graph { return e.ix.Graph() }

// Index returns the entry's shared-preprocessing Index.
func (e *Entry) Index() *index.Index { return e.ix }

// Connectivity returns the host graph's vertex connectivity under the
// registry's pipeline options, computed at most once per edit epoch (it
// needs the planar embedding, which the Index also caches; within an
// epoch the graph and the options are fixed, so the seeded answer never
// changes, and an ApplyEdits invalidates the cache by advancing the
// epoch).
func (e *Entry) Connectivity() (conn.Result, error) {
	e.connMu.Lock()
	defer e.connMu.Unlock()
	epoch := e.ix.Epoch()
	if e.connOK && e.connEpoch == epoch {
		return e.connRes, e.connErr
	}
	res, err := e.computeConnectivity()
	// Cache only if no edit landed during the computation; the answer is
	// still returned (it is consistent with whichever generation the
	// embedding call pinned), and the next caller recomputes against the
	// settled epoch.
	if e.ix.Epoch() == epoch {
		e.connRes, e.connErr, e.connEpoch, e.connOK = res, err, epoch, true
	} else {
		e.connOK = false
	}
	return res, err
}

// computeConnectivity runs one vertex-connectivity computation,
// converting a panic into an error instead of poisoning the entry (the
// computation is deterministic, so a panic would repeat anyway).
func (e *Entry) computeConnectivity() (res conn.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("serve: connectivity computation panicked: %v", v)
		}
	}()
	g, err := e.ix.Embedded()
	if err != nil {
		return conn.Result{}, err
	}
	return conn.VertexConnectivity(g, conn.Options{
		Seed:    e.opt.Seed,
		MaxRuns: e.opt.MaxRuns,
	})
}

// NewRegistry returns an empty registry.
func NewRegistry(opt RegistryOptions) *Registry {
	return &Registry{opt: opt, entries: make(map[string]*Entry)}
}

// Register adds a named host graph, building its (lazy) Index, and
// returns the new entry. It fails if the name is taken. When pinned, the
// entry is exempt from stage-2 eviction (its artifact cache can still be
// shed under memory pressure).
func (r *Registry) Register(name string, g *graph.Graph, pinned bool) (*Entry, error) {
	e := &Entry{
		name:   name,
		ix:     index.New(g, r.opt.Pipeline),
		opt:    r.opt.Pipeline,
		pinned: pinned,
	}
	if err := r.insert(e); err != nil {
		return nil, err
	}
	r.Maintain()
	return e, nil
}

// insert adds a fully built entry under the registry lock.
func (r *Registry) insert(e *Entry) error {
	if e.name == "" {
		return fmt.Errorf("serve: empty graph name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, taken := r.entries[e.name]; taken {
		return fmt.Errorf("serve: graph %q already registered", e.name)
	}
	r.clock++
	e.lastUsed = r.clock
	r.entries[e.name] = e
	return nil
}

// WriteSnapshot serializes the named entry — its host graph, pinned
// mark, and every completed cached artifact of its Index — to w in the
// internal/snap format. The entry is pinned by Acquire for the duration
// of the write, so eviction cannot drop it mid-save; artifacts are
// immutable, so concurrent queries are fine (an eviction-shed cache or
// a save racing query-driven builds simply snapshots fewer artifacts —
// partial snapshots restore to a smaller, still-correct warm cache).
func (r *Registry) WriteSnapshot(w io.Writer, name string) error {
	e := r.Acquire(name)
	if e == nil {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	defer r.Release(e)
	s := e.ix.Snapshot()
	s.Name = e.name
	s.Pinned = e.pinned
	return snap.Write(w, s)
}

// RestoreSnapshot reads one entry snapshot (written by WriteSnapshot)
// and registers it under its recorded name and pinned mark, with the
// restored artifact cache already warm. maxVertices, when positive,
// bounds the accepted graph size (the network-facing daemon's cap).
// Snapshots built under pipeline options different from the registry's
// are refused: registry answers must stay byte-identical to the direct
// API with the registry's own options.
func (r *Registry) RestoreSnapshot(rd io.Reader, maxVertices int) (*Entry, error) {
	s, err := snap.Read(rd)
	if err != nil {
		return nil, err
	}
	if !s.Options.SameConfig(r.opt.Pipeline) {
		return nil, fmt.Errorf("serve: snapshot %q was built under different pipeline options (seed/engine/runs/heuristic/beta must match the registry's)", s.Name)
	}
	if maxVertices > 0 && s.Graph.N() > maxVertices {
		return nil, fmt.Errorf("serve: snapshot %q holds %d vertices, over the %d limit", s.Name, s.Graph.N(), maxVertices)
	}
	// Rebuild the Index under the registry's own option set — SameConfig
	// proved the value fields equal, and this reattaches the pipeline's
	// per-call hooks (Tracker, Stats), which are never serialized, so
	// restored entries behave exactly like Register-created ones.
	s.Options = r.opt.Pipeline
	ix, err := index.FromSnapshot(s)
	if err != nil {
		return nil, err
	}
	e := &Entry{
		name:   s.Name,
		ix:     ix,
		opt:    r.opt.Pipeline,
		pinned: s.Pinned,
	}
	if err := r.insert(e); err != nil {
		return nil, err
	}
	r.Maintain()
	return e, nil
}

// ApplyEdits applies one batch of edge edits to the named entry's Index,
// advancing its edit epoch (see index.ApplyEdits for the migration and
// consistency contract: in-flight queries drain against the pre-edit
// generation; later queries see the edited graph with unaffected
// artifacts retained). Failures wrap ErrNotFound for unknown names and
// otherwise pass through the Index's error classes (graph.ErrEdit,
// index.ErrEpochConflict, index.ErrNonPlanarEdit). The edited artifact
// tables are re-measured against the memory budget before returning.
func (r *Registry) ApplyEdits(name string, b index.EditBatch) (index.EditResult, error) {
	e := r.Acquire(name)
	if e == nil {
		return index.EditResult{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	res, err := e.ix.ApplyEdits(b)
	r.Release(e)
	if err == nil {
		r.Maintain()
	}
	return res, err
}

// Acquire pins the named entry for the duration of a request (bumping its
// LRU timestamp) and returns it; the caller must Release it. Unknown
// names return nil.
func (r *Registry) Acquire(name string) *Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entries[name]
	if e == nil {
		return nil
	}
	e.refs++
	r.clock++
	e.lastUsed = r.clock
	return e
}

// Release unpins an entry obtained from Acquire.
func (r *Registry) Release(e *Entry) {
	r.mu.Lock()
	e.refs--
	r.mu.Unlock()
}

// ErrNotFound reports an operation on a graph name that is not
// registered.
var ErrNotFound = errors.New("serve: graph not registered")

// ErrInUse reports a removal refused because requests still hold the
// entry.
var ErrInUse = errors.New("serve: graph is in use")

// Remove deletes the named entry, refusing while requests still hold it.
// Failures wrap ErrNotFound or ErrInUse (decided atomically under the
// registry lock).
func (r *Registry) Remove(name string) error {
	r.mu.Lock()
	e := r.entries[name]
	if e == nil {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if e.refs > 0 {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrInUse, name)
	}
	delete(r.entries, name)
	r.mu.Unlock()
	if r.opt.OnRemove != nil {
		r.opt.OnRemove(e)
	}
	return nil
}

// Names returns the registered graph names (unordered).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	return names
}

// Maintain enforces the memory budget. Eviction is LRU and two-staged:
// stage 1 sheds cached artifacts (Index.Reset — the graph stays
// registered and the next query simply rebuilds its covers), preferring
// idle entries but falling back to in-use ones, which is safe because
// in-flight queries keep the immutable artifacts they already hold;
// stage 2, reached only once no cache is left to shed, removes the
// least-recently-used idle unpinned entry outright (entries held by
// requests are never removed). The scheduler calls Maintain once per
// executed batch, so each entry's Index.Stats is snapshotted once per
// call and the eviction loop works off running totals instead of
// re-walking every cache per iteration; artifacts finished by concurrent
// queries after the snapshot are picked up by the next Maintain.
func (r *Registry) Maintain() {
	if r.opt.MaxBytes <= 0 {
		return
	}
	r.mu.Lock()
	// Snapshot usage once. Index.Stats takes each Index's own lock, which
	// is never held while acquiring r.mu, so the order is acyclic.
	cached := make(map[*Entry]int64, len(r.entries))
	graphB := make(map[*Entry]int64, len(r.entries))
	var usage, totalCached int64
	for _, e := range r.entries {
		st := e.ix.Stats()
		cached[e] = st.MemBytes
		graphB[e] = st.GraphBytes
		usage += st.GraphBytes + st.MemBytes
		totalCached += st.MemBytes
	}
	var removed []*Entry
loop:
	for usage > r.opt.MaxBytes {
		// Shedding caches only helps if the irreducible bytes (graphs +
		// embeddings) fit the budget; otherwise every batch would rebuild
		// what the previous Maintain shed — permanent thrash that never
		// reaches the budget. When they do not fit, skip straight to
		// dropping idle unpinned entries (which does shrink the
		// irreducible bytes), and give up if only pinned or busy entries
		// remain.
		canReach := usage-totalCached <= r.opt.MaxBytes
		var shedIdle, shedBusy, drop *Entry
		for _, e := range r.entries {
			if canReach && cached[e] > 0 {
				if e.refs == 0 {
					if shedIdle == nil || e.lastUsed < shedIdle.lastUsed {
						shedIdle = e
					}
				} else if shedBusy == nil || e.lastUsed < shedBusy.lastUsed {
					shedBusy = e
				}
				continue
			}
			if e.refs == 0 && !e.pinned {
				if drop == nil || e.lastUsed < drop.lastUsed {
					drop = e
				}
			}
		}
		shed := shedIdle
		if shed == nil {
			shed = shedBusy
		}
		switch {
		case shed != nil:
			shed.ix.Reset()
			usage -= cached[shed]
			totalCached -= cached[shed]
			cached[shed] = 0
			r.resets++
		case drop != nil:
			delete(r.entries, drop.name)
			usage -= graphB[drop] + cached[drop]
			totalCached -= cached[drop]
			r.evictions++
			removed = append(removed, drop)
		default:
			// Everything left is busy, or pinned and already minimal.
			break loop
		}
	}
	r.mu.Unlock()
	if r.opt.OnRemove != nil {
		for _, e := range removed {
			r.opt.OnRemove(e)
		}
	}
}

// GraphInfo describes one registered graph for stats reporting.
type GraphInfo struct {
	Name     string      `json:"name"`
	N        int         `json:"n"`
	M        int         `json:"m"`
	Pinned   bool        `json:"pinned"`
	InUse    int         `json:"inUse"`
	Index    index.Stats `json:"index"`
	MemBytes int64       `json:"memBytes"` // graph + cached artifacts
	// Memo is the Index's per-artifact-class cache-traffic breakdown
	// (hits, misses, build time), the same data /metrics exposes as the
	// planarsi_index_memo_* families.
	Memo []index.MemoStats `json:"memo,omitempty"`
	// Invalidations is the Index's per-class mutation tally (artifacts
	// invalidated vs retained across ApplyEdits migrations), the data
	// behind planarsi_index_invalidations_total /
	// planarsi_index_retained_total. The graph's edit epoch itself is
	// Index.Epoch.
	Invalidations []index.InvalidationStats `json:"invalidations,omitempty"`
}

// RegistryStats is a point-in-time snapshot of the registry.
type RegistryStats struct {
	Graphs      []GraphInfo `json:"graphs"`
	Bytes       int64       `json:"bytes"`
	MaxBytes    int64       `json:"maxBytes"`
	CacheResets uint64      `json:"cacheResets"`
	Evictions   uint64      `json:"evictions"`
}

// Stats returns a snapshot of every entry plus the eviction counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RegistryStats{
		MaxBytes:    r.opt.MaxBytes,
		CacheResets: r.resets,
		Evictions:   r.evictions,
	}
	for _, e := range r.entries {
		ixst := e.ix.Stats()
		g := e.ix.Graph()
		info := GraphInfo{
			Name:          e.name,
			N:             g.N(),
			M:             g.M(),
			Pinned:        e.pinned,
			InUse:         e.refs,
			Index:         ixst,
			MemBytes:      ixst.GraphBytes + ixst.MemBytes,
			Memo:          e.ix.MemoStats(),
			Invalidations: e.ix.InvalidationStats(),
		}
		st.Graphs = append(st.Graphs, info)
		st.Bytes += info.MemBytes
	}
	slices.SortFunc(st.Graphs, func(a, b GraphInfo) int {
		return strings.Compare(a.Name, b.Name)
	})
	return st
}
