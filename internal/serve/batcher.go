package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"planarsi/internal/fault"
	"planarsi/internal/graph"
	"planarsi/internal/index"
	"planarsi/internal/obs"
	"planarsi/internal/par"
)

// ErrOverloaded is returned (and mapped to HTTP 503) when admission
// control rejects a request because too many are already waiting.
var ErrOverloaded = errors.New("serve: too many queued requests")

// BatchKind selects which batched Index entry point a request coalesces
// into.
type BatchKind uint8

const (
	// KindDecide coalesces into Index.Scan.
	KindDecide BatchKind = iota
	// KindCount coalesces into Index.ScanCount.
	KindCount
)

// DefaultWindow is the micro-batching window a zero SchedulerOptions
// gets (see the Window convention below).
const DefaultWindow = 2 * time.Millisecond

// WindowDisabled is the sentinel that turns coalescing off: every
// request dispatches immediately as a batch of one.
const WindowDisabled time.Duration = -1

// WindowFromFlag maps the user-facing flag convention onto the
// SchedulerOptions sentinel convention. Flags (and humans) say "0
// disables coalescing", but SchedulerOptions must keep 0 meaning "use
// DefaultWindow" so its zero value stays usable — so the daemon's
// -window value passes through here: 0 becomes WindowDisabled,
// everything else is passed through unchanged.
func WindowFromFlag(d time.Duration) time.Duration {
	if d == 0 {
		return WindowDisabled
	}
	return d
}

// SchedulerOptions configures the micro-batching scheduler.
type SchedulerOptions struct {
	// Window is how long the first request of a batch waits for company
	// before the batch is dispatched. Longer windows coalesce more
	// (better throughput under load) at the cost of idle latency.
	//
	// Convention (the single source of truth — flag parsing maps onto
	// it via WindowFromFlag): a positive Window coalesces with that
	// window (as a cap, when AdaptiveWindow is set); 0 means "use
	// DefaultWindow" so the zero value stays usable; any negative value
	// (canonically WindowDisabled) disables coalescing, dispatching
	// every request immediately as a batch of one.
	Window time.Duration
	// AdaptiveWindow, when set, treats Window as a cap and adapts the
	// effective window to the observed arrival rate: it shrinks toward
	// 0 when arrivals are sparse (waiting would buy no company, only
	// latency) and grows toward Window as the arrival rate rises. See
	// Scheduler.effectiveWindow for the rule.
	AdaptiveWindow bool
	// MaxBatch dispatches a batch early once it holds this many
	// requests. Default 64.
	MaxBatch int
	// MaxInFlight bounds concurrently executing batches (each batch
	// already fans out internally via internal/par); admission control
	// on top of the fork-join runtime. Default par.Parallelism().
	MaxInFlight int
	// MaxQueued bounds requests waiting anywhere in the scheduler;
	// beyond it, Submit fails fast with ErrOverloaded. Default 4096.
	MaxQueued int
	// AfterBatch, when non-nil, runs after every executed batch and
	// Direct operation (outside the in-flight semaphore). The Server
	// points it at Registry.Maintain, so the memory budget is enforced
	// once per batch instead of once per request.
	AfterBatch func()
}

func (o SchedulerOptions) withDefaults() SchedulerOptions {
	if o.Window == 0 {
		o.Window = DefaultWindow
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = par.Parallelism()
	}
	if o.MaxQueued <= 0 {
		o.MaxQueued = 4096
	}
	return o
}

// Scheduler coalesces concurrent queries against the same host graph
// into single Index.Scan / Index.ScanCount batches. Requests arriving
// within a small window share one batch, so the target-side shared
// preprocessing (and the per-batch fork-join) is paid once per window
// instead of once per request; per-request answers are exactly what the
// direct Index call would return, because Scan itself guarantees
// positional answers identical to one-at-a-time queries.
type Scheduler struct {
	opt SchedulerOptions
	sem chan struct{} // in-flight batch slots

	mu     sync.Mutex
	groups map[groupKey]*group

	queued    atomic.Int64
	batches   atomic.Uint64
	requests  atomic.Uint64
	rejected  atomic.Uint64
	retries   atomic.Uint64 // members re-run as singletons after a panic
	maxBatch  atomic.Int64  // largest batch dispatched so far
	inFlight  atomic.Int64
	waitNanos atomic.Int64 // total time requests spent waiting for their batch

	// Scheduler shape distributions, exposed on /metrics: how big the
	// batches actually are, how long requests sit waiting for them, and
	// how deep the queue runs at admission.
	batchSizes *obs.Histogram
	waits      *obs.Histogram
	depths     *obs.Histogram

	// Arrival-rate tracking for the adaptive window: lastArrival is the
	// previous Submit's UnixNano, ewmaIANs an exponentially weighted
	// moving average (alpha 1/8) of inter-arrival times in nanoseconds.
	lastArrival atomic.Int64
	ewmaIANs    atomic.Int64
}

// groupKey identifies one coalescing bucket: requests batch only with
// requests for the same registry entry and the same kind. Keying on the
// entry pointer (not the name) means a re-registered graph can never
// share a batch with its predecessor's requests.
type groupKey struct {
	e    *Entry
	kind BatchKind
}

// group accumulates the pending batch for one key. The first request of
// a batch arms the flush timer; MaxBatch dispatches early.
type group struct {
	s   *Scheduler
	key groupKey

	mu      sync.Mutex
	pending []request
	timer   *time.Timer
}

type request struct {
	ctx      context.Context
	h        *graph.Graph
	enqueued time.Time
	done     chan index.ScanResult
}

// NewScheduler returns a scheduler with the given options (zero fields
// take defaults).
func NewScheduler(opt SchedulerOptions) *Scheduler {
	opt = opt.withDefaults()
	return &Scheduler{
		opt:        opt,
		sem:        make(chan struct{}, opt.MaxInFlight),
		groups:     make(map[groupKey]*group),
		batchSizes: obs.NewHistogram(obs.SizeBuckets(opt.MaxBatch)),
		waits:      obs.NewLatencyHistogram(),
		depths:     obs.NewHistogram(obs.SizeBuckets(opt.MaxQueued)),
	}
}

// observeArrival feeds one Submit arrival into the EWMA inter-arrival
// estimate the adaptive window reads. Lock-free: a racing pair of
// arrivals may each fold in a slightly stale gap, which only perturbs
// the estimate by less than the noise the EWMA exists to smooth.
func (s *Scheduler) observeArrival(now time.Time) {
	ns := now.UnixNano()
	prev := s.lastArrival.Swap(ns)
	if prev == 0 || ns <= prev {
		return
	}
	ia := ns - prev
	for {
		old := s.ewmaIANs.Load()
		next := ia
		if old != 0 {
			next = old + (ia-old)/8
		}
		if s.ewmaIANs.CompareAndSwap(old, next) {
			return
		}
	}
}

// effectiveWindow is the window the next batch timer is armed with.
// With AdaptiveWindow off it is simply opt.Window (0 when coalescing is
// disabled). With it on, opt.Window acts as a cap W and the effective
// window is W²/(W + ia) for the EWMA inter-arrival ia: when arrivals
// are sparse (ia >> W) the window collapses toward 0 — waiting would
// buy no batch-mates, only latency — and as the arrival rate rises
// (ia → 0) it climbs smoothly back to the full cap. The float math
// sidesteps int64 overflow for huge idle gaps.
func (s *Scheduler) effectiveWindow() time.Duration {
	w := s.opt.Window
	if w < 0 {
		return 0
	}
	if !s.opt.AdaptiveWindow {
		return w
	}
	ia := s.ewmaIANs.Load()
	if ia <= 0 {
		return w
	}
	cap := float64(w)
	return time.Duration(cap * cap / (cap + float64(ia)))
}

func (s *Scheduler) group(key groupKey) *group {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.groups[key]
	if g == nil {
		g = &group{s: s, key: key}
		s.groups[key] = g
	}
	return g
}

// Forget drops the coalescing state of a removed registry entry. Pending
// requests of the entry (impossible while callers hold an Acquire ref,
// which removal refuses) would still be flushed by their armed timer.
func (s *Scheduler) Forget(e *Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.groups, groupKey{e, KindDecide})
	delete(s.groups, groupKey{e, KindCount})
}

// admit reserves a queue slot, failing fast when the scheduler is full.
func (s *Scheduler) admit() error {
	depth := s.queued.Add(1)
	if depth > int64(s.opt.MaxQueued) {
		s.queued.Add(-1)
		s.rejected.Add(1)
		return ErrOverloaded
	}
	s.depths.Observe(float64(depth))
	return nil
}

// Submit coalesces one decide/count query for entry e into the entry's
// current batch and blocks until the batch executes, returning this
// pattern's positional result. The answer is identical to calling the
// corresponding Index method directly.
//
// ctx is the request's own context: an already-done context is rejected
// at admission, a context that dies while the request waits for (or
// rides in) its batch makes Submit return the context's error
// immediately, and once every member of a batch is gone the batch's
// in-flight dynamic programs are cancelled mid-band.
func (s *Scheduler) Submit(ctx context.Context, e *Entry, kind BatchKind, h *graph.Graph) (index.ScanResult, error) {
	if err := ctx.Err(); err != nil {
		return index.ScanResult{}, err
	}
	if err := s.admit(); err != nil {
		return index.ScanResult{}, err
	}
	// The admission slot is released by dispatch once the batch holding
	// this request has executed — NOT when Submit returns: a client that
	// disconnects mid-wait leaves its request riding the batch, and
	// releasing early would let a connect-and-cancel flood bypass the
	// MaxQueued bound while dead work piles up behind the in-flight
	// semaphore.
	rq := request{ctx: ctx, h: h, enqueued: time.Now(), done: make(chan index.ScanResult, 1)}
	s.observeArrival(rq.enqueued)
	if s.opt.Window < 0 || obs.FromContext(ctx) != nil {
		// Dispatch a singleton batch: either coalescing is disabled, or
		// the request carries a ?trace=1 span recorder — a traced request
		// must ride alone so that its own context (the recorder's
		// carrier) is the batch context the Scan runs under, rather than
		// a merged context that would blend its spans with batch-mates'.
		// Still async, so a context that dies while the batch waits for
		// an in-flight slot unblocks Submit immediately (the dead query
		// itself is cancelled through the batch context once dispatched).
		go s.dispatch(e, kind, []request{rq})
		select {
		case res := <-rq.done:
			return res, nil
		case <-ctx.Done():
			return index.ScanResult{}, ctx.Err()
		}
	}

	g := s.group(groupKey{e, kind})
	g.mu.Lock()
	g.pending = append(g.pending, rq)
	if len(g.pending) >= s.opt.MaxBatch {
		batch := g.takeLocked()
		g.mu.Unlock()
		go s.dispatch(e, kind, batch)
	} else {
		if len(g.pending) == 1 {
			g.timer = time.AfterFunc(s.effectiveWindow(), g.flush)
		}
		g.mu.Unlock()
	}
	select {
	case res := <-rq.done:
		return res, nil
	case <-ctx.Done():
		// The client is gone; the batch still computes (other members may
		// be live — the batch context fires only when all are gone) and
		// delivery into the buffered done channel cannot block.
		return index.ScanResult{}, ctx.Err()
	}
}

// takeLocked claims the pending batch and disarms the timer; the caller
// holds g.mu.
func (g *group) takeLocked() []request {
	batch := g.pending
	g.pending = nil
	if g.timer != nil {
		g.timer.Stop()
		g.timer = nil
	}
	return batch
}

// flush is the window-timer callback: dispatch whatever has accumulated.
func (g *group) flush() {
	if fault.Fire(fault.BatchTimerDrop) {
		// Injected timer loss: this firing does no work, simulating a
		// window timer that died. The re-arm keeps the pending requests
		// from hanging until their contexts expire — the recovery
		// behavior the chaos harness asserts on.
		g.mu.Lock()
		if len(g.pending) > 0 {
			g.timer = time.AfterFunc(g.s.effectiveWindow()+time.Millisecond, g.flush)
		}
		g.mu.Unlock()
		return
	}
	g.mu.Lock()
	batch := g.takeLocked()
	g.mu.Unlock()
	if len(batch) > 0 {
		g.s.dispatch(g.key.e, g.key.kind, batch)
	}
}

// dispatch executes a batch, delivers each request's answer, and
// releases the batch's admission slots. It must not panic whatever the
// engine does: its callers include the window-timer goroutine, and a
// panic there kills the process with no handler-level recover in the
// way. Index.Scan already isolates per-member panics; the Guard here
// backstops faults outside the members' own bodies (batch bookkeeping,
// the Maintain hook), turning them into per-member errors.
func (s *Scheduler) dispatch(e *Entry, kind BatchKind, batch []request) {
	var res []index.ScanResult
	err := index.Guard(func() error {
		res = s.run(e, kind, batch)
		s.retrySingletons(e, kind, batch, res)
		return nil
	})
	for i := range batch {
		if err != nil {
			batch[i].done <- index.ScanResult{Err: err}
		} else {
			batch[i].done <- res[i]
		}
	}
	s.queued.Add(-int64(len(batch)))
}

// retrySingletons re-runs batch members whose answer was lost to a
// panic, each as a batch of one. A panic is often specific to the
// batch's execution (a fault mid-build of a shared artifact that a
// sibling's panic de-poisoned, a transient injected fault), so one
// isolated retry converts "unlucky batch-mate" into a correct answer;
// a deterministic crasher simply panics again and keeps its error.
// Members whose client is already gone are not retried. Singleton
// batches are excluded: with nobody else in the batch the first run
// was already isolated, and retrying would double-charge deterministic
// faults (which the chaos harness counts on for reproducibility).
func (s *Scheduler) retrySingletons(e *Entry, kind BatchKind, batch []request, res []index.ScanResult) {
	if len(batch) < 2 {
		return
	}
	for i := range res {
		if res[i].Err == nil || !errors.Is(res[i].Err, index.ErrQueryPanic) {
			continue
		}
		if batch[i].ctx != nil && batch[i].ctx.Err() != nil {
			continue
		}
		s.retries.Add(1)
		if r2 := s.run(e, kind, batch[i:i+1]); len(r2) == 1 {
			res[i] = r2[0]
		}
	}
}

// batchContext derives the context one batched Scan runs under: done
// exactly when every member request's context is done, so one impatient
// client cannot cancel a batch that still has live members, while a
// fully abandoned batch stops burning cores mid-band. The returned
// cancel releases the watcher goroutines and must be called when the
// batch finishes.
func batchContext(batch []request) (context.Context, context.CancelFunc) {
	for _, rq := range batch {
		if rq.ctx == nil || rq.ctx.Done() == nil {
			// At least one member can never be abandoned: the batch
			// cannot be cancelled, so spawn no watchers at all.
			return context.Background(), func() {}
		}
	}
	if len(batch) == 1 {
		return batch[0].ctx, func() {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var live atomic.Int32
	live.Store(int32(len(batch)))
	stops := make([]func() bool, len(batch))
	for i, rq := range batch {
		stops[i] = context.AfterFunc(rq.ctx, func() {
			if live.Add(-1) == 0 {
				cancel()
			}
		})
	}
	return ctx, func() {
		cancel()
		for _, stop := range stops {
			stop()
		}
	}
}

// run executes one batch under the in-flight semaphore and records stats.
func (s *Scheduler) run(e *Entry, kind BatchKind, batch []request) []index.ScanResult {
	if s.opt.AfterBatch != nil {
		defer s.opt.AfterBatch()
	}
	s.sem <- struct{}{}
	s.inFlight.Add(1)
	defer func() {
		s.inFlight.Add(-1)
		<-s.sem
	}()

	start := time.Now()
	for _, rq := range batch {
		wait := start.Sub(rq.enqueued)
		s.waitNanos.Add(wait.Nanoseconds())
		s.waits.ObserveDuration(wait)
	}
	s.batchSizes.Observe(float64(len(batch)))
	patterns := make([]*graph.Graph, len(batch))
	for i, rq := range batch {
		patterns[i] = rq.h
	}
	ctx, cancel := batchContext(batch)
	defer cancel()
	var res []index.ScanResult
	if kind == KindDecide {
		res = e.Index().Scan(ctx, patterns)
	} else {
		res = e.Index().ScanCount(ctx, patterns)
	}
	s.batches.Add(1)
	s.requests.Add(uint64(len(batch)))
	for {
		prev := s.maxBatch.Load()
		if int64(len(batch)) <= prev || s.maxBatch.CompareAndSwap(prev, int64(len(batch))) {
			break
		}
	}
	return res
}

// Direct runs a non-batchable operation (find, list, separating) under
// the same admission control and in-flight bound as the batches. An
// already-done ctx is rejected at admission, and a ctx that dies while
// the operation waits for an in-flight slot abandons the wait (the
// operation itself is then never started).
func (s *Scheduler) Direct(ctx context.Context, f func()) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := s.admit(); err != nil {
		return err
	}
	defer s.queued.Add(-1)
	if s.opt.AfterBatch != nil {
		defer s.opt.AfterBatch()
	}
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.inFlight.Add(1)
	defer func() {
		s.inFlight.Add(-1)
		<-s.sem
	}()
	f()
	return nil
}

// SchedulerStats is a point-in-time snapshot of the scheduler.
type SchedulerStats struct {
	// Batches and Requests give the coalescing ratio: Requests/Batches
	// is the average number of queries that shared one Scan.
	Batches  uint64 `json:"batches"`
	Requests uint64 `json:"requests"`
	Rejected uint64 `json:"rejected"`
	// Retries counts batch members re-run as singletons after their
	// first answer was lost to a panic.
	Retries  uint64 `json:"retries"`
	MaxBatch int64  `json:"maxBatch"`
	InFlight int64  `json:"inFlight"`
	Queued   int64  `json:"queued"`
	// AvgWaitMicros is the mean time a request spent waiting for its
	// batch to dispatch (the coalescing latency cost).
	AvgWaitMicros float64 `json:"avgWaitMicros"`
	// WindowMicros is the effective window the next batch timer would
	// be armed with right now — equal to the configured window unless
	// AdaptiveWindow has shrunk it toward 0 under sparse arrivals.
	WindowMicros float64 `json:"windowMicros"`
}

// Stats returns a snapshot of the scheduler counters.
func (s *Scheduler) Stats() SchedulerStats {
	st := SchedulerStats{
		Batches:  s.batches.Load(),
		Requests: s.requests.Load(),
		Rejected: s.rejected.Load(),
		Retries:  s.retries.Load(),
		MaxBatch: s.maxBatch.Load(),
		InFlight: s.inFlight.Load(),
		Queued:   s.queued.Load(),
	}
	if st.Requests > 0 {
		st.AvgWaitMicros = float64(s.waitNanos.Load()) / float64(st.Requests) / 1e3
	}
	st.WindowMicros = float64(s.effectiveWindow()) / 1e3
	return st
}
