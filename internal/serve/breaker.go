package serve

// Per-(graph, kind) circuit breakers. A query panic is evidence that
// something about this particular graph's cached artifacts or this
// query shape trips a bug deterministically; hammering the same
// (graph, kind) pair with more traffic repeats the crash-and-recover
// cycle at full request rate for no benefit. The breaker converts a
// burst of incident-class failures into fast 503s with a Retry-After,
// then feels its way back with single half-open probes.
//
// Only incident-class failures (query panics, see recordOutcome) count
// toward the trip threshold: client cancellations, deadline expiries,
// overload rejections and pattern-validation errors say nothing about
// the graph being broken and must never open the circuit.

import (
	"sync"
	"time"
)

// BreakerOptions configures the per-(graph, kind) circuit breakers.
type BreakerOptions struct {
	// Threshold is how many consecutive incident-class failures open
	// the breaker. 0 disables breakers entirely.
	Threshold int
	// Cooldown is how long an open breaker rejects before admitting a
	// single half-open probe. Default 5s.
	Cooldown time.Duration
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.Cooldown <= 0 {
		o.Cooldown = 5 * time.Second
	}
	return o
}

// Breaker states. The numeric values are exported on /metrics as the
// planarsi_breaker_state gauge, so they are part of the wire contract.
const (
	breakerClosed   = 0
	breakerOpen     = 1
	breakerHalfOpen = 2
)

func breakerStateName(state int) string {
	switch state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breakerOutcome classifies one finished query for Record.
type breakerOutcome uint8

const (
	// outcomeSuccess: the query completed; from half-open this closes
	// the circuit.
	outcomeSuccess breakerOutcome = iota
	// outcomeIncident: the query panicked (server-side fault); counts
	// toward the trip threshold and re-opens a half-open circuit.
	outcomeIncident
	// outcomeNeutral: the query failed for reasons that say nothing
	// about the graph (client gone, deadline, validation, overload).
	// Neutral outcomes release a half-open probe slot without moving
	// the state.
	outcomeNeutral
)

// breaker is one (graph, kind) circuit. All fields are guarded by mu;
// the critical sections are a handful of comparisons, so one mutex per
// circuit never contends measurably against query latency.
type breaker struct {
	opt BreakerOptions

	mu      sync.Mutex
	state   int
	fails   int       // consecutive incident-class failures while closed
	until   time.Time // open until (cooldown end)
	probing bool      // half-open: the single probe slot is taken

	opens    uint64 // times the circuit opened (incl. half-open re-opens)
	rejected uint64 // requests turned away while open / probe pending
}

// Allow decides whether a request may proceed. ok=false means the
// circuit is rejecting; retryAfter is the client hint for when to come
// back. An open circuit whose cooldown has elapsed transitions to
// half-open and admits exactly one probe; further requests are rejected
// until the probe reports through Record.
func (b *breaker) Allow(now time.Time) (retryAfter time.Duration, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return 0, true
	case breakerOpen:
		if now.Before(b.until) {
			b.rejected++
			return b.until.Sub(now), false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return 0, true
	default: // half-open
		if b.probing {
			b.rejected++
			return b.opt.Cooldown, false
		}
		b.probing = true
		return 0, true
	}
}

// Record feeds one finished query's outcome back into the circuit.
func (b *breaker) Record(oc breakerOutcome, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch oc {
	case outcomeNeutral:
		// Frees the probe slot so the next arrival becomes the probe;
		// a neutral result proves nothing either way.
		b.probing = false
	case outcomeSuccess:
		b.fails = 0
		b.probing = false
		b.state = breakerClosed
	case outcomeIncident:
		b.probing = false
		switch b.state {
		case breakerHalfOpen:
			// The probe crashed too: back to open for another cooldown.
			b.trip(now)
		case breakerClosed:
			b.fails++
			if b.fails >= b.opt.Threshold {
				b.trip(now)
			}
		}
		// Incidents reported while already open (a request admitted
		// before the trip, finishing after) change nothing: the
		// cooldown clock is already running.
	}
}

// trip opens the circuit; the caller holds b.mu.
func (b *breaker) trip(now time.Time) {
	b.state = breakerOpen
	b.until = now.Add(b.opt.Cooldown)
	b.fails = 0
	b.opens++
}

// snapshot returns the circuit's current state for stats/metrics.
func (b *breaker) snapshot() (state, fails int, opens, rejected uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.fails, b.opens, b.rejected
}

// breakerKey identifies one circuit: requests share a breaker exactly
// when they share a host graph and a query kind. Keying on the name
// (not the entry pointer) keeps a graph's incident history across
// eviction-and-re-register cycles within the retention window of the
// map (cleared on explicit removal).
type breakerKey struct {
	graph string
	kind  string
}

// breaker returns the circuit for (graph, kind), creating it on first
// use. Nil when breakers are disabled.
func (s *Server) breaker(graph, kind string) *breaker {
	if s.opt.Breaker.Threshold <= 0 {
		return nil
	}
	key := breakerKey{graph, kind}
	s.brMu.Lock()
	defer s.brMu.Unlock()
	b := s.breakers[key]
	if b == nil {
		b = &breaker{opt: s.opt.Breaker}
		s.breakers[key] = b
	}
	return b
}

// dropBreakers forgets every circuit of a removed graph, so a future
// graph registered under the same name starts with a clean slate.
func (s *Server) dropBreakers(graph string) {
	s.brMu.Lock()
	defer s.brMu.Unlock()
	for key := range s.breakers {
		if key.graph == graph {
			delete(s.breakers, key)
		}
	}
}

// BreakerInfo is one circuit's snapshot in /stats.
type BreakerInfo struct {
	Graph string `json:"graph"`
	Kind  string `json:"kind"`
	// State is "closed", "open" or "half-open".
	State string `json:"state"`
	// Fails is the consecutive incident count while closed.
	Fails    int    `json:"consecutiveFails"`
	Opens    uint64 `json:"opens"`
	Rejected uint64 `json:"rejected"`
}
