package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"planarsi/internal/obs"
	"planarsi/internal/par"
)

// endpointMetrics accumulates one endpoint's traffic in a fixed-bucket
// latency histogram plus outcome counters. The hot path adds no locks
// to request handling: a histogram observation is two atomic adds and a
// CAS, and the outcome counters are plain atomics.
//
// Outcomes are three-way. "Canceled" covers requests that died because
// the *client* went away or outlived its deadline (HTTP 499 and 504) —
// lumping those into the error rate made every impatient client look
// like a server failure, so they are counted (and exposed) separately
// from genuine errors (every other status >= 400).
type endpointMetrics struct {
	hist     *obs.Histogram // handler latency, seconds
	errors   atomic.Uint64
	canceled atomic.Uint64
	maxNs    atomic.Int64
}

func newEndpointMetrics() *endpointMetrics {
	return &endpointMetrics{hist: obs.NewLatencyHistogram()}
}

func (m *endpointMetrics) observe(d time.Duration, status int) {
	m.hist.ObserveDuration(d)
	switch {
	case status == StatusClientClosedRequest || status == http.StatusGatewayTimeout:
		m.canceled.Add(1)
	case status >= 400:
		m.errors.Add(1)
	}
	ns := d.Nanoseconds()
	for {
		prev := m.maxNs.Load()
		if ns <= prev || m.maxNs.CompareAndSwap(prev, ns) {
			return
		}
	}
}

// EndpointStats is one endpoint's snapshot in /stats, derived from the
// same histogram /metrics exposes (one source of truth for both views).
type EndpointStats struct {
	Count uint64 `json:"count"`
	// Errors counts statuses >= 400 excluding client cancellations;
	// Canceled counts 499s (client gone) and 504s (deadline expired).
	Errors   uint64 `json:"errors"`
	Canceled uint64 `json:"canceled"`
	// AvgMillis and MaxMillis summarize handler latency, including any
	// time spent waiting in the micro-batching window. P50/P95/P99 are
	// histogram-interpolated percentiles of the same distribution.
	AvgMillis float64 `json:"avgMillis"`
	MaxMillis float64 `json:"maxMillis"`
	P50Millis float64 `json:"p50Millis"`
	P95Millis float64 `json:"p95Millis"`
	P99Millis float64 `json:"p99Millis"`
}

func (m *endpointMetrics) snapshot() EndpointStats {
	h := m.hist.Snapshot()
	return EndpointStats{
		Count:     h.Count,
		Errors:    m.errors.Load(),
		Canceled:  m.canceled.Load(),
		AvgMillis: h.Mean() * 1e3,
		MaxMillis: float64(m.maxNs.Load()) / 1e6,
		P50Millis: h.Quantile(0.50) * 1e3,
		P95Millis: h.Quantile(0.95) * 1e3,
		P99Millis: h.Quantile(0.99) * 1e3,
	}
}

// statusRecorder captures the response status for the outcome counters
// while keeping the underlying ResponseWriter's optional interfaces
// reachable: Unwrap feeds http.NewResponseController, and the explicit
// Flush/ReadFrom pass-throughs keep streaming responses and sendfile
// working for handlers that type-assert the writer directly.
type statusRecorder struct {
	http.ResponseWriter
	status int
	// wroteHeader records whether anything reached the wire, so the
	// panic backstop in instrument knows whether it can still write a
	// structured 500 or must abandon the (already started) response.
	wroteHeader bool
}

func (w *statusRecorder) WriteHeader(status int) {
	w.status = status
	w.wroteHeader = true
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusRecorder) Write(p []byte) (int, error) {
	w.wroteHeader = true // implicit 200 on first write
	return w.ResponseWriter.Write(p)
}

// Unwrap exposes the wrapped writer to http.NewResponseController,
// which walks Unwrap chains to find Flusher/Hijacker/deadline support.
func (w *statusRecorder) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Flush forwards to the underlying writer when it can flush (a no-op
// otherwise, matching ResponseController's ErrNotSupported semantics
// for callers that only best-effort flush).
func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ReadFrom preserves the sendfile fast path: io.Copy into the wrapper
// finds this method and lands on the underlying writer's ReadFrom when
// it has one, instead of degrading to the generic buffer loop.
func (w *statusRecorder) ReadFrom(r io.Reader) (int64, error) {
	w.wroteHeader = true
	if rf, ok := w.ResponseWriter.(io.ReaderFrom); ok {
		return rf.ReadFrom(r)
	}
	return io.Copy(io.Writer(w.ResponseWriter), r)
}

// traced reports whether the request opted into span recording and, if
// so, returns it with a fresh recorder and cost counter attached to its
// context (the Index picks both up at the query boundary). The check is
// a cheap substring probe before the URL query is parsed, so untraced
// requests never allocate the parsed form here.
func (s *Server) traced(r *http.Request) (*http.Request, *obs.Recorder, *obs.CostCounter) {
	if !strings.Contains(r.URL.RawQuery, "trace") || r.URL.Query().Get("trace") != "1" {
		return r, nil, nil
	}
	rec := obs.NewRecorder(s.opt.TraceSpanLimit)
	cost := new(obs.CostCounter)
	ctx := obs.WithCost(obs.WithRecorder(r.Context(), rec), cost)
	return r.WithContext(ctx), rec, cost
}

// correlate mints the request's id, parses any inbound traceparent, and
// attaches the reqInfo to the context; the response headers carry the
// id back (X-Request-Id always, traceparent when the client sent one —
// with our id as the parent-id, the downstream-span propagation shape).
func correlate(w http.ResponseWriter, r *http.Request) (*http.Request, *reqInfo) {
	ri := &reqInfo{id: newRequestID()}
	if tp := r.Header.Get("traceparent"); tp != "" {
		ri.traceID, ri.flags, _ = parseTraceparent(tp)
	}
	w.Header().Set("X-Request-Id", ri.id)
	if ri.traceID != "" {
		w.Header().Set("traceparent", "00-"+ri.traceID+"-"+ri.id+"-"+ri.flags)
	}
	return r.WithContext(withReqInfo(r.Context(), ri)), ri
}

// instrument wraps a handler with the named endpoint's histogram and
// counters, request-id/traceparent correlation, the ?trace=1 span
// recorder and cost counter, the slow-query log, the JSONL trace sink,
// and, when Options.RequestTimeout is set, the per-request deadline
// (the cancellation token every query derives from r.Context()).
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	m := newEndpointMetrics()
	s.metrics[name] = m
	return func(w http.ResponseWriter, r *http.Request) {
		if s.opt.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.opt.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		r, ri := correlate(w, r)
		r, trace, cost := s.traced(r)
		if trace != nil {
			ri.poolBase = par.ReadPoolStats()
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		func() {
			// Last-resort panic boundary: the query paths have their own
			// guards, so anything arriving here is a handler bug — still
			// answer it as a structured 500 (when the response has not
			// started) instead of letting net/http tear the connection
			// down mid-metrics.
			defer func() {
				if v := recover(); v != nil {
					id := s.incidentFromPanic(name, ri.id, v)
					rec.status = http.StatusInternalServerError
					if !rec.wroteHeader {
						writeJSON(rec, http.StatusInternalServerError,
							errorResponse{Error: "internal error", Incident: id})
					}
				}
			}()
			h(rec, r)
		}()
		d := time.Since(start)
		m.observe(d, rec.status)
		if trace != nil {
			if dropped := trace.Dropped(); dropped > 0 {
				s.traceDropped.Add(uint64(dropped))
			}
		}
		if s.opt.TraceLog != nil {
			s.writeTraceLog(name, ri, rec.status, d, trace, cost)
		}
		if s.opt.SlowQuery > 0 && d >= s.opt.SlowQuery {
			s.logSlow(name, ri.id, d, rec.status, trace, cost)
		}
	}
}

// traceLogRecord is one -trace-log JSONL line. Every instrumented
// request writes one; spans and cost are present only for ?trace=1
// requests (untraced requests never pay for span recording).
type traceLogRecord struct {
	Time      string     `json:"time"`
	RequestID string     `json:"requestId"`
	TraceID   string     `json:"traceId,omitempty"`
	Endpoint  string     `json:"endpoint"`
	Status    int        `json:"status"`
	DurMicros float64    `json:"durMicros"`
	Cost      *obs.Cost  `json:"cost,omitempty"`
	Spans     []obs.Span `json:"spans,omitempty"`
	Dropped   int        `json:"dropped,omitempty"`
}

// writeTraceLog appends one request's record to Options.TraceLog.
// Marshaling happens outside the lock; only the single Write is
// serialized, so each JSONL line lands intact under concurrency.
func (s *Server) writeTraceLog(endpoint string, ri *reqInfo, status int, d time.Duration, trace *obs.Recorder, cost *obs.CostCounter) {
	rec := traceLogRecord{
		Time:      time.Now().UTC().Format(time.RFC3339Nano),
		RequestID: ri.id,
		TraceID:   ri.traceID,
		Endpoint:  endpoint,
		Status:    status,
		DurMicros: float64(d.Nanoseconds()) / 1e3,
	}
	if trace != nil {
		rec.Spans, rec.Dropped = trace.Snapshot()
		if c := cost.Snapshot(); !c.IsZero() {
			rec.Cost = &c
		}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	line = append(line, '\n')
	s.traceLogMu.Lock()
	_, _ = s.opt.TraceLog.Write(line)
	s.traceLogMu.Unlock()
}

// logSlow reports one request that exceeded Options.SlowQuery. When the
// request was traced, the log line carries its slowest band spans and
// cost totals — the band timeline that explains where the tail latency
// went. A set SlowLogf gets the flat format; otherwise the record goes
// through the structured logger.
func (s *Server) logSlow(endpoint, reqID string, d time.Duration, status int, trace *obs.Recorder, cost *obs.CostCounter) {
	detail := ""
	var spans []obs.Span
	if trace != nil {
		if spans, _ = trace.Snapshot(); len(spans) > 0 {
			detail = " slowest bands: " + slowestBands(spans, 3)
		}
	}
	c := cost.Snapshot()
	if logf := s.opt.SlowLogf; logf != nil {
		costDetail := ""
		if !c.IsZero() {
			costDetail = fmt.Sprintf(" cost={nodes=%d states=%d joins=%d emissions=%d bytes=%d}",
				c.Nodes, c.States, c.Joins, c.Emissions, c.Bytes)
		}
		logf("serve: slow query: req=%s endpoint=%s status=%d dur=%s%s%s",
			reqID, endpoint, status, d, costDetail, detail)
		return
	}
	attrs := []any{
		"requestId", reqID,
		"endpoint", endpoint,
		"status", status,
		"dur", d,
	}
	if !c.IsZero() {
		attrs = append(attrs, "costEmissions", c.Emissions, "costJoins", c.Joins,
			"costStates", c.States, "costBytes", c.Bytes)
	}
	if len(spans) > 0 {
		attrs = append(attrs, "slowestBands", slowestBands(spans, 3))
	}
	s.logger.Warn("serve: slow query", attrs...)
}

// slowestBands renders the top-k longest band spans as
// "run/band=dur(note)" entries.
func slowestBands(spans []obs.Span, k int) string {
	bands := spans[:0:0]
	for _, sp := range spans {
		if sp.Name == "band" {
			bands = append(bands, sp)
		}
	}
	sort.Slice(bands, func(i, j int) bool { return bands[i].DurMicros > bands[j].DurMicros })
	if len(bands) > k {
		bands = bands[:k]
	}
	var b strings.Builder
	for i, sp := range bands {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d/%d=%.0fµs(%s)", sp.Run, sp.Band, sp.DurMicros, sp.Note)
	}
	return b.String()
}
