package serve

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"
)

// endpointMetrics accumulates one endpoint's latency/throughput counters
// with plain atomics (the hot path adds no locks to request handling).
type endpointMetrics struct {
	count   atomic.Uint64
	errors  atomic.Uint64
	totalNs atomic.Int64
	maxNs   atomic.Int64
}

func (m *endpointMetrics) observe(d time.Duration, failed bool) {
	m.count.Add(1)
	if failed {
		m.errors.Add(1)
	}
	ns := d.Nanoseconds()
	m.totalNs.Add(ns)
	for {
		prev := m.maxNs.Load()
		if ns <= prev || m.maxNs.CompareAndSwap(prev, ns) {
			return
		}
	}
}

// EndpointStats is one endpoint's snapshot in /stats.
type EndpointStats struct {
	Count  uint64 `json:"count"`
	Errors uint64 `json:"errors"`
	// AvgMillis and MaxMillis summarize handler latency, including any
	// time spent waiting in the micro-batching window.
	AvgMillis float64 `json:"avgMillis"`
	MaxMillis float64 `json:"maxMillis"`
}

func (m *endpointMetrics) snapshot() EndpointStats {
	st := EndpointStats{Count: m.count.Load(), Errors: m.errors.Load()}
	if st.Count > 0 {
		st.AvgMillis = float64(m.totalNs.Load()) / float64(st.Count) / 1e6
	}
	st.MaxMillis = float64(m.maxNs.Load()) / 1e6
	return st
}

// statusRecorder captures the response status so errors (>= 400) can be
// counted per endpoint.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// instrument wraps a handler with the named endpoint's counters and,
// when Options.RequestTimeout is set, the per-request deadline (the
// cancellation token every query derives from r.Context()).
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	m := &endpointMetrics{}
	s.metrics[name] = m
	return func(w http.ResponseWriter, r *http.Request) {
		if s.opt.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.opt.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(rec, r)
		m.observe(time.Since(start), rec.status >= 400)
	}
}
