package serve

// Prometheus text exposition (format version 0.0.4), hand-rolled on the
// standard library: the container bakes no client_golang, and the whole
// surface needed here is histograms, counters and gauges over a fixed,
// startup-time metric set. Families and label values are emitted in
// sorted order so the output is deterministic (the golden test relies
// on it) and diff-friendly for scrape debugging.

import (
	"bytes"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"time"

	"planarsi/internal/obs"
	"planarsi/internal/par"
)

// handleMetrics serves GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b bytes.Buffer
	s.writeMetrics(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(b.Bytes())
}

// writeMetrics renders every metric family. The metrics map is written
// only during routes() (startup), so iterating it here without a lock
// is safe; the histograms and counters themselves are atomic.
func (s *Server) writeMetrics(b *bytes.Buffer) {
	names := make([]string, 0, len(s.metrics))
	for name := range s.metrics {
		names = append(names, name)
	}
	sort.Strings(names)

	writeHeader(b, "planarsi_http_request_duration_seconds",
		"Handler latency per endpoint, including micro-batch window waits.", "histogram")
	for _, name := range names {
		writeHistogram(b, "planarsi_http_request_duration_seconds",
			`endpoint="`+name+`"`, s.metrics[name].hist.Snapshot())
	}

	writeHeader(b, "planarsi_http_requests_total",
		"Requests per endpoint by outcome: ok, error (status >= 400), or canceled (client gone: 499/504).", "counter")
	for _, name := range names {
		m := s.metrics[name]
		total := m.hist.Count()
		errors := m.errors.Load()
		canceled := m.canceled.Load()
		writeSample(b, "planarsi_http_requests_total", `endpoint="`+name+`",result="ok"`, float64(total-errors-canceled))
		writeSample(b, "planarsi_http_requests_total", `endpoint="`+name+`",result="error"`, float64(errors))
		writeSample(b, "planarsi_http_requests_total", `endpoint="`+name+`",result="canceled"`, float64(canceled))
	}

	sst := s.sched.Stats()
	writeHeader(b, "planarsi_sched_batch_size",
		"Requests per dispatched micro-batch.", "histogram")
	writeHistogram(b, "planarsi_sched_batch_size", "", s.sched.batchSizes.Snapshot())
	writeHeader(b, "planarsi_sched_window_wait_seconds",
		"Time requests spent waiting for their batch to dispatch.", "histogram")
	writeHistogram(b, "planarsi_sched_window_wait_seconds", "", s.sched.waits.Snapshot())
	writeHeader(b, "planarsi_sched_queue_depth",
		"Scheduler queue depth observed at each admission.", "histogram")
	writeHistogram(b, "planarsi_sched_queue_depth", "", s.sched.depths.Snapshot())

	writeCounter(b, "planarsi_sched_batches_total", "Dispatched micro-batches.", float64(sst.Batches))
	writeCounter(b, "planarsi_sched_requests_total", "Requests executed through the scheduler.", float64(sst.Requests))
	writeCounter(b, "planarsi_sched_rejected_total", "Requests rejected at admission (queue full).", float64(sst.Rejected))
	writeCounter(b, "planarsi_sched_retries_total", "Batch members re-run as singletons after a panic-isolated failure.", float64(sst.Retries))
	writeGauge(b, "planarsi_sched_inflight", "Batches executing right now.", float64(sst.InFlight))
	writeGauge(b, "planarsi_sched_queued", "Requests waiting anywhere in the scheduler.", float64(sst.Queued))
	writeGauge(b, "planarsi_sched_window_seconds",
		"Effective micro-batch window the next batch timer is armed with (adapts to arrival rate when enabled).",
		s.sched.effectiveWindow().Seconds())

	rst := s.reg.Stats()
	writeGauge(b, "planarsi_registry_graphs", "Registered host graphs.", float64(len(rst.Graphs)))
	writeGauge(b, "planarsi_registry_bytes", "Bytes held by graphs plus cached artifacts.", float64(rst.Bytes))
	writeGauge(b, "planarsi_registry_max_bytes", "Registry memory budget (0 = unlimited).", float64(rst.MaxBytes))
	writeCounter(b, "planarsi_registry_cache_resets_total", "Stage-1 evictions: Index caches shed under memory pressure.", float64(rst.CacheResets))
	writeCounter(b, "planarsi_registry_evictions_total", "Stage-2 evictions: unpinned graphs dropped under memory pressure.", float64(rst.Evictions))

	res := s.resilienceStats()
	writeCounter(b, "planarsi_incidents_total", "Query panics answered with a 500 + incident id.", float64(res.Incidents))
	writeCounter(b, "planarsi_shed_total", "Requests shed at admission: remaining deadline below the endpoint's typical latency.", float64(res.Shed))
	// Breakers come back from resilienceStats sorted by (graph, kind),
	// preserving the deterministic-exposition contract.
	writeHeader(b, "planarsi_breaker_state",
		"Circuit breaker state per (graph, kind): 0 closed, 1 open, 2 half-open.", "gauge")
	for _, bi := range res.Breakers {
		labels := `graph="` + bi.Graph + `",kind="` + bi.Kind + `"`
		writeSample(b, "planarsi_breaker_state", labels, float64(breakerStateValue(bi.State)))
	}
	writeHeader(b, "planarsi_breaker_opens_total",
		"Times each circuit opened (including half-open re-opens).", "counter")
	for _, bi := range res.Breakers {
		labels := `graph="` + bi.Graph + `",kind="` + bi.Kind + `"`
		writeSample(b, "planarsi_breaker_opens_total", labels, float64(bi.Opens))
	}
	writeHeader(b, "planarsi_breaker_rejected_total",
		"Requests rejected by an open circuit.", "counter")
	for _, bi := range res.Breakers {
		labels := `graph="` + bi.Graph + `",kind="` + bi.Kind + `"`
		writeSample(b, "planarsi_breaker_rejected_total", labels, float64(bi.Rejected))
	}

	writeCounter(b, "planarsi_trace_dropped_total",
		"Spans dropped at per-request recorder caps; nonzero means some ?trace=1 timelines were truncated.",
		float64(s.traceDropped.Load()))

	pst := par.ReadPoolStats()
	writeCounter(b, "planarsi_pool_steals_total", "Successful work-steals across every fork-join pool this process ran.", float64(pst.Steals))
	writeCounter(b, "planarsi_pool_parks_total", "Worker park events: a worker found no work anywhere and blocked.", float64(pst.Parks))
	writeCounter(b, "planarsi_pool_resizes_total", "Shared-pool replacements after parallelism changes.", float64(pst.Resizes))
	writeGauge(b, "planarsi_pool_workers", "Live shared-pool worker count (0 when no pool is installed).", float64(pst.Workers))
	writeGauge(b, "planarsi_pool_active_workers", "Workers not currently parked waiting for work.", float64(pst.Workers-pst.Parked))

	// Query traffic per graph: queries counts logical patterns answered,
	// sweeps counts physical DP dispatches — a batched scan that groups
	// isomorphic or shape-equal patterns into one shared sweep answers
	// many queries per sweep, so queries/sweeps measures batching
	// leverage. rst.Graphs comes back sorted by name.
	writeHeader(b, "planarsi_index_queries_total",
		"Queries answered per graph over the Index's lifetime (each pattern of a batched scan counts once).", "counter")
	for _, gi := range rst.Graphs {
		writeSample(b, "planarsi_index_queries_total", `graph="`+gi.Name+`"`, float64(gi.Index.Queries))
	}
	writeHeader(b, "planarsi_index_sweeps_total",
		"Physical DP sweeps dispatched per graph; batched scans answer multiple queries per sweep.", "counter")
	for _, gi := range rst.Graphs {
		writeSample(b, "planarsi_index_sweeps_total", `graph="`+gi.Name+`"`, float64(gi.Index.Sweeps))
	}

	// Memo-cache traffic per (graph, artifact class). rst.Graphs comes
	// back sorted by name and each Memo slice is in fixed class order,
	// keeping the exposition deterministic.
	writeHeader(b, "planarsi_index_memo_hits_total",
		"Memo-cache accesses that found a fully built artifact, per graph and artifact class.", "counter")
	for _, gi := range rst.Graphs {
		for _, ms := range gi.Memo {
			writeSample(b, "planarsi_index_memo_hits_total", memoLabels(gi.Name, ms.Class), float64(ms.Hits))
		}
	}
	writeHeader(b, "planarsi_index_memo_misses_total",
		"Memo-cache accesses that had to build (or rebuild) an artifact, per graph and artifact class.", "counter")
	for _, gi := range rst.Graphs {
		for _, ms := range gi.Memo {
			writeSample(b, "planarsi_index_memo_misses_total", memoLabels(gi.Name, ms.Class), float64(ms.Misses))
		}
	}
	writeHeader(b, "planarsi_index_memo_build_seconds_total",
		"Wall time spent building artifacts, per graph and artifact class (classes overlap: cover builds include nested clustering builds).", "counter")
	for _, gi := range rst.Graphs {
		for _, ms := range gi.Memo {
			writeSample(b, "planarsi_index_memo_build_seconds_total", memoLabels(gi.Name, ms.Class), ms.BuildSeconds)
		}
	}
	writeHeader(b, "planarsi_index_memo_bytes",
		"Bytes held by fully built resident artifacts, per graph and artifact class.", "gauge")
	for _, gi := range rst.Graphs {
		for _, ms := range gi.Memo {
			writeSample(b, "planarsi_index_memo_bytes", memoLabels(gi.Name, ms.Class), float64(ms.Bytes))
		}
	}
	writeHeader(b, "planarsi_index_memo_entries",
		"Fully built resident artifacts, per graph and artifact class.", "gauge")
	for _, gi := range rst.Graphs {
		for _, ms := range gi.Memo {
			writeSample(b, "planarsi_index_memo_entries", memoLabels(gi.Name, ms.Class), float64(ms.Entries))
		}
	}

	// Live-graph mutation per graph: the edit epoch plus the per-class
	// invalidated/retained tallies of ApplyEdits migrations. A healthy
	// incremental workload keeps invalidations well below retained —
	// the mutation-smoke CI lane asserts exactly that.
	writeHeader(b, "planarsi_index_epoch",
		"Edit epoch per graph: edit batches applied over the Index's lifetime (0 = never mutated).", "gauge")
	for _, gi := range rst.Graphs {
		writeSample(b, "planarsi_index_epoch", `graph="`+gi.Name+`"`, float64(gi.Index.Epoch))
	}
	writeHeader(b, "planarsi_index_invalidations_total",
		"Artifacts invalidated (rebuilt) by edit migrations, per graph and artifact class.", "counter")
	for _, gi := range rst.Graphs {
		for _, st := range gi.Invalidations {
			writeSample(b, "planarsi_index_invalidations_total", memoLabels(gi.Name, st.Class), float64(st.Invalidated))
		}
	}
	writeHeader(b, "planarsi_index_retained_total",
		"Artifacts retained verbatim across edit migrations, per graph and artifact class.", "counter")
	for _, gi := range rst.Graphs {
		for _, st := range gi.Invalidations {
			writeSample(b, "planarsi_index_retained_total", memoLabels(gi.Name, st.Class), float64(st.Retained))
		}
	}

	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	writeGauge(b, "planarsi_go_goroutines", "Live goroutines.", float64(runtime.NumGoroutine()))
	writeGauge(b, "planarsi_go_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(mem.HeapAlloc))
	writeGauge(b, "planarsi_go_heap_sys_bytes", "Bytes of heap memory obtained from the OS.", float64(mem.HeapSys))
	writeGauge(b, "planarsi_go_heap_objects", "Live heap objects.", float64(mem.HeapObjects))
	writeGauge(b, "planarsi_go_next_gc_bytes", "Heap size target of the next GC cycle.", float64(mem.NextGC))
	writeCounter(b, "planarsi_go_gcs_total", "Completed GC cycles.", float64(mem.NumGC))
	writeCounter(b, "planarsi_go_gc_pause_seconds_total", "Total stop-the-world GC pause time.", float64(mem.PauseTotalNs)/1e9)

	writeGauge(b, "planarsi_uptime_seconds", "Seconds since the server started.", time.Since(s.start).Seconds())
}

// memoLabels renders the {graph, class} label set of the memo families.
func memoLabels(graph, class string) string {
	return `class="` + class + `",graph="` + graph + `"`
}

// breakerStateValue maps BreakerInfo's state name back to the numeric
// gauge value (the state constants in breaker.go).
func breakerStateValue(state string) int {
	switch state {
	case "open":
		return breakerOpen
	case "half-open":
		return breakerHalfOpen
	default:
		return breakerClosed
	}
}

func writeHeader(b *bytes.Buffer, name, help, typ string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// writeHistogram renders one histogram series (cumulative buckets, sum,
// count) under the given label set (may be empty).
func writeHistogram(b *bytes.Buffer, name, labels string, h obs.HistSnapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(b, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatBound(bound), cum)
	}
	fmt.Fprintf(b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.Count)
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatValue(h.Sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, h.Count)
}

func writeCounter(b *bytes.Buffer, name, help string, v float64) {
	writeHeader(b, name, help, "counter")
	writeSample(b, name, "", v)
}

func writeGauge(b *bytes.Buffer, name, help string, v float64) {
	writeHeader(b, name, help, "gauge")
	writeSample(b, name, "", v)
}

func writeSample(b *bytes.Buffer, name, labels string, v float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(b, "%s%s %s\n", name, labels, formatValue(v))
}

// formatBound renders a bucket bound the way Prometheus clients do:
// shortest decimal round-trip ("0.005", not "5e-03").
func formatBound(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
