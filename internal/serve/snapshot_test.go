package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"planarsi/internal/core"
	"planarsi/internal/graph"
	"planarsi/internal/serve"
)

func registryPair(t *testing.T, opt core.Options) (*serve.Registry, *serve.Registry) {
	t.Helper()
	a := serve.NewRegistry(serve.RegistryOptions{Pipeline: opt})
	b := serve.NewRegistry(serve.RegistryOptions{Pipeline: opt})
	return a, b
}

func TestRegistrySnapshotRoundTrip(t *testing.T) {
	opt := core.Options{Seed: 9, MaxRuns: 3}
	src, dst := registryPair(t, opt)
	g := graph.Grid(4, 4)
	e, err := src.Register("grid", g, true)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache, then snapshot.
	want, err := e.Index().CountOccurrences(graph.Cycle(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf, "grid"); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}

	re, err := dst.RestoreSnapshot(bytes.NewReader(buf.Bytes()), 0)
	if err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if re.Name() != "grid" || !re.Pinned() {
		t.Fatalf("restored entry lost identity: name=%q pinned=%v", re.Name(), re.Pinned())
	}
	st := re.Index().Stats()
	if st.PlainCovers == 0 {
		t.Fatalf("restored entry has a cold cache: %+v", st)
	}
	got, err := re.Index().CountOccurrences(graph.Cycle(4))
	if err != nil || got != want {
		t.Fatalf("restored count = %d, %v; want %d", got, err, want)
	}
	// The cached shapes were served, not rebuilt.
	if after := re.Index().Stats(); after.PlainCovers != st.PlainCovers {
		t.Fatalf("restored cache grew on a snapshotted shape: %d -> %d", st.PlainCovers, after.PlainCovers)
	}
}

func TestRestoreRefusesMismatchedOptions(t *testing.T) {
	src, _ := registryPair(t, core.Options{Seed: 9})
	if _, err := src.Register("g", graph.Grid(3, 3), false); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf, "g"); err != nil {
		t.Fatal(err)
	}
	other := serve.NewRegistry(serve.RegistryOptions{Pipeline: core.Options{Seed: 10}})
	if _, err := other.RestoreSnapshot(bytes.NewReader(buf.Bytes()), 0); err == nil ||
		!strings.Contains(err.Error(), "different pipeline options") {
		t.Fatalf("mismatched options: got %v", err)
	}
	// Same name twice is refused too.
	dst := serve.NewRegistry(serve.RegistryOptions{Pipeline: core.Options{Seed: 9}})
	if _, err := dst.RestoreSnapshot(bytes.NewReader(buf.Bytes()), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.RestoreSnapshot(bytes.NewReader(buf.Bytes()), 0); err == nil {
		t.Fatal("duplicate restore unexpectedly succeeded")
	}
	// Vertex cap applies to restored graphs.
	if _, err := dst.RestoreSnapshot(bytes.NewReader(buf.Bytes()), 4); err == nil ||
		!strings.Contains(err.Error(), "over the 4 limit") {
		t.Fatalf("vertex cap: got %v", err)
	}
}

// TestServerSnapshotWarmBoot is the end-to-end warm-restart test: a
// server checkpoints via POST /snapshot, a second server boots from the
// directory, reports a warm cache before any query, and serves
// identical answers.
func TestServerSnapshotWarmBoot(t *testing.T) {
	dir := t.TempDir()
	opt := serve.Options{
		Pipeline:    core.Options{Seed: 7, MaxRuns: 3},
		Scheduler:   serve.SchedulerOptions{Window: time.Millisecond},
		SnapshotDir: dir,
	}
	s1 := serve.New(opt)
	if _, err := s1.Registry().Register("grid", graph.Grid(4, 4), true); err != nil {
		t.Fatal(err)
	}
	e := s1.Registry().Acquire("grid")
	want, err := e.Index().CountOccurrences(graph.Cycle(4))
	s1.Registry().Release(e)
	if err != nil {
		t.Fatal(err)
	}

	// Checkpoint over HTTP.
	ts := newSnapshotTestServer(t, s1)
	resp, body := postJSON(t, ts.URL+"/snapshot", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /snapshot: %d %s", resp.StatusCode, body)
	}
	var sr serve.SnapshotResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Graphs) != 1 || sr.Graphs[0].Name != "grid" || sr.Graphs[0].Covers == 0 {
		t.Fatalf("snapshot response: %+v", sr)
	}
	if _, err := os.Stat(filepath.Join(dir, "grid.snap")); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}

	// Second server, same directory: warm boot.
	s2 := serve.New(opt)
	infos, err := s2.RestoreSnapshots()
	if err != nil {
		t.Fatalf("RestoreSnapshots: %v", err)
	}
	if len(infos) != 1 || infos[0].Name != "grid" || infos[0].Covers == 0 {
		t.Fatalf("restore infos: %+v", infos)
	}
	e2 := s2.Registry().Acquire("grid")
	if e2 == nil {
		t.Fatal("grid not restored")
	}
	defer s2.Registry().Release(e2)
	if st := e2.Index().Stats(); st.PlainCovers == 0 {
		t.Fatalf("warm boot has a cold cache: %+v", st)
	}
	got, err := e2.Index().CountOccurrences(graph.Cycle(4))
	if err != nil || got != want {
		t.Fatalf("warm count = %d, %v; want %d", got, err, want)
	}
}

// TestSnapshotEndpointDisabledWithoutDir: no SnapshotDir, no endpoint.
func TestSnapshotEndpointDisabledWithoutDir(t *testing.T) {
	s, ts := newTestServer(t)
	_ = s
	resp, _ := postJSON(t, ts.URL+"/snapshot", struct{}{})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("expected 404 without a snapshot dir, got %d", resp.StatusCode)
	}
}

// TestRestoreSkipsCorruptFiles: one damaged file must not take down the
// boot; intact snapshots still restore.
func TestRestoreSkipsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	opt := serve.Options{Pipeline: core.Options{Seed: 7}, SnapshotDir: dir}
	s1 := serve.New(opt)
	if _, err := s1.Registry().Register("ok", graph.Grid(3, 3), true); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.SaveSnapshots(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.snap"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := serve.New(opt)
	infos, err := s2.RestoreSnapshots()
	if err == nil || !strings.Contains(err.Error(), "bad.snap") {
		t.Fatalf("corrupt file not reported: %v", err)
	}
	if len(infos) != 1 || infos[0].Name != "ok" {
		t.Fatalf("intact snapshot not restored: %+v", infos)
	}
}

// TestRemovedGraphsStayGone: an explicitly deleted graph must not
// resurrect from its stale snapshot file on the next boot — DELETE
// removes the file, and the checkpoint sweep prunes files for graphs no
// longer registered.
func TestRemovedGraphsStayGone(t *testing.T) {
	dir := t.TempDir()
	opt := serve.Options{
		Pipeline:    core.Options{Seed: 7},
		Scheduler:   serve.SchedulerOptions{Window: time.Millisecond},
		SnapshotDir: dir,
	}
	s1 := serve.New(opt)
	for _, name := range []string{"keep", "drop", "orphan"} {
		if _, err := s1.Registry().Register(name, graph.Grid(3, 3), false); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s1.SaveSnapshots(); err != nil {
		t.Fatal(err)
	}

	// DELETE /graphs/drop removes the registry entry and its file.
	ts := newSnapshotTestServer(t, s1)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/graphs/drop", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	if _, err := os.Stat(filepath.Join(dir, "drop.snap")); !os.IsNotExist(err) {
		t.Fatalf("drop.snap survived DELETE: %v", err)
	}

	// Unregistering outside the handler (stage-2 eviction's effect) is
	// reconciled by the next checkpoint sweep.
	if err := s1.Registry().Remove("orphan"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.SaveSnapshots(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "orphan.snap")); !os.IsNotExist(err) {
		t.Fatalf("orphan.snap survived the checkpoint sweep: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "keep.snap")); err != nil {
		t.Fatalf("keep.snap should remain: %v", err)
	}

	// A warm boot sees only the surviving graph.
	s2 := serve.New(opt)
	infos, err := s2.RestoreSnapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "keep" {
		t.Fatalf("restored %+v, want only keep", infos)
	}
}

func newSnapshotTestServer(t *testing.T, s *serve.Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}
