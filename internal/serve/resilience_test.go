package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"planarsi/internal/core"
	"planarsi/internal/fault"
	"planarsi/internal/graph"
	"planarsi/internal/index"
)

// TestBreakerStateMachine walks one circuit through every transition:
// closed → (threshold incidents) → open → (cooldown) → half-open probe
// → (incident) → open again → (cooldown) → probe → (success) → closed.
func TestBreakerStateMachine(t *testing.T) {
	b := &breaker{opt: BreakerOptions{Threshold: 2, Cooldown: time.Minute}}
	now := time.Unix(1000, 0)

	if _, ok := b.Allow(now); !ok {
		t.Fatal("closed breaker rejected")
	}
	b.Record(outcomeIncident, now)
	if _, ok := b.Allow(now); !ok {
		t.Fatal("one incident below threshold opened the circuit")
	}
	// Neutral outcomes (client cancellations etc.) must not trip it.
	b.Record(outcomeNeutral, now)
	b.Record(outcomeIncident, now)
	if retry, ok := b.Allow(now); ok {
		t.Fatal("threshold incidents did not open the circuit")
	} else if retry <= 0 || retry > time.Minute {
		t.Fatalf("retryAfter = %v", retry)
	}

	// Cooldown elapsed: exactly one probe is admitted.
	now = now.Add(time.Minute + time.Second)
	if _, ok := b.Allow(now); !ok {
		t.Fatal("no half-open probe after cooldown")
	}
	if _, ok := b.Allow(now); ok {
		t.Fatal("second request admitted while the probe is in flight")
	}
	// The probe crashes: straight back to open for another cooldown.
	b.Record(outcomeIncident, now)
	if _, ok := b.Allow(now); ok {
		t.Fatal("failed probe did not re-open the circuit")
	}
	now = now.Add(time.Minute + time.Second)
	if _, ok := b.Allow(now); !ok {
		t.Fatal("no probe after the second cooldown")
	}
	// A neutral probe result frees the slot for the next arrival.
	b.Record(outcomeNeutral, now)
	if _, ok := b.Allow(now); !ok {
		t.Fatal("neutral probe outcome did not release the probe slot")
	}
	b.Record(outcomeSuccess, now)
	state, _, opens, rejected := b.snapshot()
	if state != breakerClosed {
		t.Fatalf("state after successful probe = %s", breakerStateName(state))
	}
	if opens != 2 || rejected != 3 {
		t.Fatalf("opens = %d rejected = %d, want 2 and 3", opens, rejected)
	}
}

// TestBatchMemberSingletonRetry drives dispatch directly with a batch
// whose first member draws an injected panic: the member must be
// re-run as a singleton and every answer in the batch must come back
// correct.
func TestBatchMemberSingletonRetry(t *testing.T) {
	defer fault.Disable()
	reg := NewRegistry(RegistryOptions{Pipeline: core.Options{Seed: 1, MaxRuns: 2}})
	e, err := reg.Register("grid", graph.Grid(4, 4), false)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(SchedulerOptions{Window: WindowDisabled})

	batch := make([]request, 4)
	for i := range batch {
		batch[i] = request{
			ctx:      context.Background(),
			h:        graph.Cycle(4),
			enqueued: time.Now(),
			done:     make(chan index.ScanResult, 1),
		}
	}
	sched.queued.Add(int64(len(batch)))
	if err := fault.Enable("query.panic=first:1", 1); err != nil {
		t.Fatal(err)
	}
	sched.dispatch(e, KindDecide, batch)
	fault.Disable()

	for i := range batch {
		res := <-batch[i].done
		if res.Err != nil || !res.Found {
			t.Fatalf("member %d after retry: %+v", i, res)
		}
	}
	if got := sched.retries.Load(); got != 1 {
		t.Fatalf("retries = %d, want 1", got)
	}
}

// TestDispatchSurvivesBatchLevelPanic: a panic outside the members'
// own guarded bodies (here: the AfterBatch hook) must reach every
// member as an error, not kill the dispatching goroutine — the window
// timer fires on a bare goroutine with no recover above dispatch.
func TestDispatchSurvivesBatchLevelPanic(t *testing.T) {
	reg := NewRegistry(RegistryOptions{Pipeline: core.Options{Seed: 1, MaxRuns: 2}})
	e, err := reg.Register("grid", graph.Grid(4, 4), false)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(SchedulerOptions{
		Window:     WindowDisabled,
		AfterBatch: func() { panic("maintain blew up") },
	})
	rq := request{ctx: context.Background(), h: graph.Cycle(4), enqueued: time.Now(), done: make(chan index.ScanResult, 1)}
	sched.queued.Add(1)
	sched.dispatch(e, KindDecide, []request{rq})
	res := <-rq.done
	if !errors.Is(res.Err, index.ErrQueryPanic) {
		t.Fatalf("member got %v, want ErrQueryPanic", res.Err)
	}
	if sched.queued.Load() != 0 {
		t.Fatalf("queued = %d after panicked dispatch", sched.queued.Load())
	}
}

func decideBody(t *testing.T, graphName string, h *graph.Graph) *bytes.Reader {
	t.Helper()
	raw, err := json.Marshal(map[string]any{"graph": graphName, "pattern": WireGraph(h)})
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(raw)
}

// TestBreakerHTTPEndToEnd exercises the full loop over HTTP: injected
// query panics return 500s with incident ids, the threshold opens the
// circuit (503 + Retry-After), the cooldown admits a probe, and the
// successful probe closes the circuit again.
func TestBreakerHTTPEndToEnd(t *testing.T) {
	defer fault.Disable()
	var logged bytes.Buffer
	var logMu sync.Mutex
	s := New(Options{
		Pipeline:  core.Options{Seed: 1, MaxRuns: 2},
		Scheduler: SchedulerOptions{Window: WindowDisabled},
		Breaker:   BreakerOptions{Threshold: 2, Cooldown: 100 * time.Millisecond},
		IncidentLogf: func(format string, args ...any) {
			logMu.Lock()
			fmt.Fprintf(&logged, format+"\n", args...)
			logMu.Unlock()
		},
	})
	if _, err := s.Registry().Register("grid", graph.Grid(4, 4), false); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func() (*http.Response, errorResponse) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/decide", "application/json", decideBody(t, "grid", graph.Cycle(4)))
		if err != nil {
			t.Fatal(err)
		}
		var body errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		return resp, body
	}

	if err := fault.Enable("query.panic=first:2", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		resp, body := post()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("faulted query %d: status %d", i, resp.StatusCode)
		}
		if body.Incident == "" {
			t.Fatalf("faulted query %d: no incident id in %+v", i, body)
		}
	}
	logMu.Lock()
	if !bytes.Contains(logged.Bytes(), []byte("query panic")) {
		t.Fatalf("incident log missing panic detail:\n%s", logged.String())
	}
	logMu.Unlock()

	// Circuit open: fast 503 with a Retry-After hint.
	resp, _ := post()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open circuit answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("open-circuit 503 without Retry-After")
	}

	// Cooldown elapses; the injected faults are spent, so the half-open
	// probe succeeds and closes the circuit.
	time.Sleep(150 * time.Millisecond)
	resp, _ = post()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe after cooldown answered %d, want 200", resp.StatusCode)
	}
	resp, _ = post()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("closed circuit answered %d, want 200", resp.StatusCode)
	}

	st := s.Stats()
	if st.Resilience.Incidents != 2 {
		t.Fatalf("incidents = %d, want 2", st.Resilience.Incidents)
	}
	if len(st.Resilience.Breakers) != 1 {
		t.Fatalf("breakers = %+v, want one", st.Resilience.Breakers)
	}
	bi := st.Resilience.Breakers[0]
	if bi.Graph != "grid" || bi.Kind != "decide" || bi.State != "closed" || bi.Opens != 1 {
		t.Fatalf("breaker snapshot = %+v", bi)
	}
}

// TestDeadlineShedding: once an endpoint has latency history, a request
// whose remaining deadline is below the median is rejected up front
// with a 503 instead of burning a core on an answer nobody will read.
func TestDeadlineShedding(t *testing.T) {
	s := New(Options{
		Pipeline:       core.Options{Seed: 1, MaxRuns: 2},
		Scheduler:      SchedulerOptions{Window: WindowDisabled},
		RequestTimeout: 5 * time.Millisecond,
	})
	if _, err := s.Registry().Register("grid", graph.Grid(4, 4), false); err != nil {
		t.Fatal(err)
	}
	// Teach the decide endpoint that its median latency is ~100ms.
	for i := 0; i < shedMinSamples; i++ {
		s.metrics["decide"].hist.ObserveDuration(100 * time.Millisecond)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/decide", "application/json", decideBody(t, "grid", graph.Cycle(4)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("doomed request answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed 503 without Retry-After")
	}
	if got := s.resilienceStats().Shed; got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
}

// TestShedNeedsHistoryAndDeadline: no deadline or no latency history
// means no shedding.
func TestShedNeedsHistoryAndDeadline(t *testing.T) {
	s := New(Options{Pipeline: core.Options{Seed: 1, MaxRuns: 2}})
	r := httptest.NewRequest(http.MethodPost, "/decide", nil)
	if err := s.shedDoomed(r, "decide"); err != nil {
		t.Fatalf("no deadline: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := s.shedDoomed(r.WithContext(ctx), "decide"); err != nil {
		t.Fatalf("no history: %v", err)
	}
	for i := 0; i < shedMinSamples; i++ {
		s.metrics["decide"].hist.ObserveDuration(100 * time.Millisecond)
	}
	if err := s.shedDoomed(r.WithContext(ctx), "decide"); !errors.Is(err, ErrShed) {
		t.Fatalf("doomed request not shed: %v", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	if err := s.shedDoomed(r.WithContext(ctx2), "decide"); err != nil {
		t.Fatalf("roomy deadline shed: %v", err)
	}
}

// TestRetryAfterOnQueryErrors pins the Retry-After contract: every
// 503-class error carries the header, with the breaker's own cooldown
// remainder winning over the generic window-based hint.
func TestRetryAfterOnQueryErrors(t *testing.T) {
	s := New(Options{Pipeline: core.Options{Seed: 1}})
	rec := httptest.NewRecorder()
	s.writeQueryError(rec, httptest.NewRequest("POST", "/decide", nil), "g", ErrOverloaded)
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("overloaded: code %d Retry-After %q", rec.Code, rec.Header().Get("Retry-After"))
	}
	rec = httptest.NewRecorder()
	s.writeQueryError(rec, httptest.NewRequest("POST", "/decide", nil), "g", &BreakerOpenError{Graph: "g", Kind: "decide", RetryAfter: 2400 * time.Millisecond})
	if got := rec.Header().Get("Retry-After"); got != "3" {
		t.Fatalf("breaker Retry-After = %q, want ceil(2.4s) = 3", got)
	}
	rec = httptest.NewRecorder()
	s.writeQueryError(rec, httptest.NewRequest("POST", "/decide", nil), "g", fmt.Errorf("%w: nope", ErrShed))
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("shed: code %d Retry-After %q", rec.Code, rec.Header().Get("Retry-After"))
	}
}

// TestOversizedPatternRejectedAtBoundary: a pattern over match.MaxK is
// a 400 at decode time on every query endpoint — it must never reach
// the scheduler.
func TestOversizedPatternRejectedAtBoundary(t *testing.T) {
	s := New(Options{Pipeline: core.Options{Seed: 1, MaxRuns: 2}})
	if _, err := s.Registry().Register("grid", graph.Grid(4, 4), false); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	big := graph.Path(17) // match.MaxK is 16
	for _, ep := range []string{"/decide", "/count", "/find", "/separating"} {
		resp, err := http.Post(ts.URL+ep, "application/json", decideBody(t, "grid", big))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s with 17-vertex pattern: status %d, want 400", ep, resp.StatusCode)
		}
	}
	if got := s.sched.Stats().Requests; got != 0 {
		t.Fatalf("oversized patterns reached the scheduler: %d requests", got)
	}
}

// TestRegistryChurnUnderEviction races Acquire/Release/query churn
// against eviction sweeps and re-registration on a tiny budget; run
// under -race this is the registry's eviction-vs-churn regression.
func TestRegistryChurnUnderEviction(t *testing.T) {
	reg := NewRegistry(RegistryOptions{
		Pipeline: core.Options{Seed: 1, MaxRuns: 1},
		MaxBytes: 8 << 10, // far below the working set: constant eviction
	})
	names := []string{"g0", "g1", "g2", "g3"}
	for _, name := range names {
		if _, err := reg.Register(name, graph.Grid(3, 3), false); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 120; i++ {
				name := names[(w+i)%len(names)]
				e := reg.Acquire(name)
				if e == nil {
					// Evicted under us: re-register (racing registrars
					// may collide; losing the race is fine).
					_, _ = reg.Register(name, graph.Grid(3, 3), false)
					continue
				}
				if i%10 == 0 {
					if _, err := e.ix.Decide(graph.Cycle(4)); err != nil {
						t.Errorf("decide %s: %v", name, err)
					}
				}
				reg.Release(e)
				if i%7 == 0 {
					reg.Maintain()
				}
			}
		}(w)
	}
	wg.Wait()
	// The registry must still serve queries after the churn.
	for _, name := range names {
		e := reg.Acquire(name)
		if e == nil {
			continue
		}
		if found, err := e.ix.Decide(graph.Cycle(4)); err != nil || !found {
			t.Fatalf("post-churn decide %s: found=%v err=%v", name, found, err)
		}
		reg.Release(e)
	}
}

// TestSnapshotFaultInjection: injected snapshot I/O errors surface as
// save/restore failures without aborting the daemon, and the next
// fault-free attempt succeeds.
func TestSnapshotFaultInjection(t *testing.T) {
	defer fault.Disable()
	dir := t.TempDir()
	s := New(Options{Pipeline: core.Options{Seed: 1, MaxRuns: 2}, SnapshotDir: dir})
	if _, err := s.Registry().Register("grid", graph.Grid(4, 4), false); err != nil {
		t.Fatal(err)
	}

	if err := fault.Enable("snapshot.write=first:1", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SaveSnapshots(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("faulted save: err = %v, want ErrInjected", err)
	}
	fault.Disable()
	infos, err := s.SaveSnapshots()
	if err != nil || len(infos) != 1 {
		t.Fatalf("clean save: %v %+v", err, infos)
	}
	path := filepath.Join(dir, "grid.snap")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}

	// A faulted restore skips the file but boots; a clean one restores.
	s2 := New(Options{Pipeline: core.Options{Seed: 1, MaxRuns: 2}, SnapshotDir: dir})
	if err := fault.Enable("snapshot.read=first:1", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.RestoreSnapshots(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("faulted restore: err = %v, want ErrInjected", err)
	}
	fault.Disable()
	if got := len(s2.Registry().Names()); got != 0 {
		t.Fatalf("faulted restore registered %d graphs", got)
	}
	if infos, err := s2.RestoreSnapshots(); err != nil || len(infos) != 1 {
		t.Fatalf("clean restore: %v %+v", err, infos)
	}
}

// TestBreakerDroppedWithGraph: removing a graph clears its circuits, so
// a future graph under the same name starts closed.
func TestBreakerDroppedWithGraph(t *testing.T) {
	s := New(Options{
		Pipeline: core.Options{Seed: 1, MaxRuns: 2},
		Breaker:  BreakerOptions{Threshold: 1, Cooldown: time.Minute},
	})
	if _, err := s.Registry().Register("grid", graph.Grid(4, 4), false); err != nil {
		t.Fatal(err)
	}
	br := s.breaker("grid", "decide")
	br.Record(outcomeIncident, time.Now())
	if _, ok := br.Allow(time.Now()); ok {
		t.Fatal("breaker not open")
	}
	if err := s.Registry().Remove("grid"); err != nil {
		t.Fatal(err)
	}
	if len(s.resilienceStats().Breakers) != 0 {
		t.Fatal("breakers survived graph removal")
	}
}
