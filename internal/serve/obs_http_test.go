package serve_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"planarsi/internal/graph"
	"planarsi/internal/serve"
)

func getBody(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestMetricsExposition is the Prometheus text-format structural test:
// after real traffic, /metrics must serve the 0.0.4 exposition with
// every expected family present, HELP/TYPE headers preceding samples,
// cumulative non-decreasing buckets, and a +Inf bucket equal to the
// series count.
func TestMetricsExposition(t *testing.T) {
	s, ts := newTestServer(t)
	if _, err := s.Registry().Register("grid", graph.Grid(5, 5), false); err != nil {
		t.Fatal(err)
	}
	req := map[string]any{"graph": "grid", "pattern": graphWire(graph.Cycle(4))}
	if resp, body := postJSON(t, ts.URL+"/decide", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("decide: %d: %s", resp.StatusCode, body)
	}
	// One 404 so the error counter is nonzero.
	if resp, _ := postJSON(t, ts.URL+"/decide", map[string]any{"graph": "nope", "pattern": graphWire(graph.Cycle(4))}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("decide on unknown graph: %d, want 404", resp.StatusCode)
	}

	resp, body := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want text/plain; version=0.0.4 prefix", ct)
	}

	for _, family := range []string{
		"planarsi_http_request_duration_seconds",
		"planarsi_http_requests_total",
		"planarsi_sched_batch_size",
		"planarsi_sched_window_wait_seconds",
		"planarsi_sched_queue_depth",
		"planarsi_sched_batches_total",
		"planarsi_sched_window_seconds",
		"planarsi_registry_graphs",
		"planarsi_uptime_seconds",
	} {
		if !strings.Contains(body, "# HELP "+family+" ") {
			t.Errorf("missing HELP for %s", family)
		}
		if !strings.Contains(body, "# TYPE "+family+" ") {
			t.Errorf("missing TYPE for %s", family)
		}
	}

	// The decide endpoint served one ok and one error request.
	assertSample(t, body, `planarsi_http_requests_total{endpoint="decide",result="ok"}`, 1)
	assertSample(t, body, `planarsi_http_requests_total{endpoint="decide",result="error"}`, 1)
	assertSample(t, body, `planarsi_http_requests_total{endpoint="decide",result="canceled"}`, 0)
	assertSample(t, body, "planarsi_registry_graphs", 1)

	// Structural histogram checks on the decide latency series.
	checkHistogramSeries(t, body, "planarsi_http_request_duration_seconds", `endpoint="decide"`)
	checkHistogramSeries(t, body, "planarsi_sched_batch_size", "")

	// Every sample line must parse: name{labels} value.
	sample := regexp.MustCompile(`^[a-z_]+(\{[^}]*\})? (NaN|[-+0-9.eE]+|\+Inf)$`)
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sample.MatchString(line) {
			t.Errorf("malformed sample line: %q", line)
		}
	}
}

// assertSample finds the exact series line and checks its value.
func assertSample(t *testing.T, body, series string, want float64) {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			got, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Errorf("series %s: bad value %q", series, rest)
			} else if got != want {
				t.Errorf("series %s = %v, want %v", series, got, want)
			}
			return
		}
	}
	t.Errorf("series %s not found", series)
}

// checkHistogramSeries verifies one histogram's bucket structure:
// cumulative counts never decrease, and the +Inf bucket equals _count.
func checkHistogramSeries(t *testing.T, body, name, labels string) {
	t.Helper()
	prefix := name + "_bucket{"
	if labels != "" {
		prefix += labels + ","
	}
	var prev float64 = -1
	var inf, count float64 = -1, -1
	countSeries := name + "_count"
	if labels != "" {
		countSeries += "{" + labels + "}"
	}
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, countSeries+" "); ok {
			count, _ = strconv.ParseFloat(rest, 64)
			continue
		}
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		_, valPart, ok := strings.Cut(line, "} ")
		if !ok {
			t.Errorf("malformed bucket line %q", line)
			continue
		}
		v, err := strconv.ParseFloat(valPart, 64)
		if err != nil {
			t.Errorf("bucket line %q: bad count", line)
			continue
		}
		if v < prev {
			t.Errorf("bucket counts not cumulative at %q: %v after %v", line, v, prev)
		}
		prev = v
		if strings.Contains(line, `le="+Inf"`) {
			inf = v
		}
	}
	if inf < 0 {
		t.Fatalf("%s{%s}: no +Inf bucket", name, labels)
	}
	if count < 0 {
		t.Fatalf("%s: no _count series", countSeries)
	}
	if inf != count {
		t.Errorf("%s{%s}: +Inf bucket %v != count %v", name, labels, inf, count)
	}
	if count == 0 {
		t.Errorf("%s{%s}: histogram empty; test traffic not recorded", name, labels)
	}
}

// TestStatsPercentilesAndOutcomes checks the /stats side of the shared
// histograms: percentile fields are populated and the canceled counter
// is split from errors — a deadline-expired request lands in canceled,
// an unknown-graph request in errors.
func TestStatsPercentilesAndOutcomes(t *testing.T) {
	s := serve.New(serve.Options{
		Pipeline:       httpOpt,
		Scheduler:      serve.SchedulerOptions{Window: time.Millisecond},
		RequestTimeout: time.Nanosecond, // every query dies at admission: canceled
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if _, err := s.Registry().Register("grid", graph.Grid(4, 4), false); err != nil {
		t.Fatal(err)
	}

	req := map[string]any{"graph": "grid", "pattern": graphWire(graph.Cycle(4))}
	resp, _ := postJSON(t, ts.URL+"/decide", req)
	if resp.StatusCode != http.StatusGatewayTimeout && resp.StatusCode != serve.StatusClientClosedRequest {
		t.Fatalf("deadline-expired decide: %d, want 504 or 499", resp.StatusCode)
	}

	st := s.Stats()
	decide := st.Endpoints["decide"]
	if decide.Canceled != 1 {
		t.Errorf("decide.canceled = %d, want 1", decide.Canceled)
	}
	if decide.Errors != 0 {
		t.Errorf("decide.errors = %d, want 0 (cancellations must not pollute the error rate)", decide.Errors)
	}

	// A genuinely failing server: unknown graph on a fresh instance.
	s2, ts2 := newTestServer(t)
	resp, _ = postJSON(t, ts2.URL+"/decide", map[string]any{"graph": "nope", "pattern": graphWire(graph.Cycle(3))})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph: %d, want 404", resp.StatusCode)
	}
	if _, err := s2.Registry().Register("grid", graph.Grid(4, 4), false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if resp, body := postJSON(t, ts2.URL+"/decide", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("decide: %d: %s", resp.StatusCode, body)
		}
	}
	st2 := s2.Stats()
	decide2 := st2.Endpoints["decide"]
	if decide2.Errors != 1 || decide2.Canceled != 0 {
		t.Errorf("decide errors/canceled = %d/%d, want 1/0", decide2.Errors, decide2.Canceled)
	}
	if decide2.Count != 4 {
		t.Errorf("decide.count = %d, want 4", decide2.Count)
	}
	if decide2.P50Millis <= 0 || decide2.P95Millis < decide2.P50Millis || decide2.P99Millis < decide2.P95Millis {
		t.Errorf("percentiles not monotone positive: p50=%v p95=%v p99=%v",
			decide2.P50Millis, decide2.P95Millis, decide2.P99Millis)
	}
}

// TestTraceEndToEnd drives ?trace=1 through the full HTTP stack: the
// response must carry a span timeline with at least one band span, a
// plain request must carry none, and the traced answer must match the
// untraced one.
func TestTraceEndToEnd(t *testing.T) {
	s, ts := newTestServer(t)
	if _, err := s.Registry().Register("grid", graph.Grid(5, 5), false); err != nil {
		t.Fatal(err)
	}
	req := map[string]any{"graph": "grid", "pattern": graphWire(graph.Cycle(4))}

	type tracedResponse struct {
		Found bool `json:"found"`
		Trace *struct {
			Spans []struct {
				Name string  `json:"name"`
				Band int     `json:"band"`
				Dur  float64 `json:"durMicros"`
			} `json:"spans"`
			Dropped int `json:"dropped"`
		} `json:"trace"`
	}

	resp, body := postJSON(t, ts.URL+"/decide?trace=1", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced decide: %d: %s", resp.StatusCode, body)
	}
	var traced tracedResponse
	if err := json.Unmarshal(body, &traced); err != nil {
		t.Fatal(err)
	}
	if traced.Trace == nil {
		t.Fatal("?trace=1 response has no trace field")
	}
	var bands int
	for _, sp := range traced.Trace.Spans {
		if sp.Name == "band" {
			bands++
		}
	}
	if bands == 0 {
		t.Fatalf("traced decide recorded no band spans: %s", body)
	}

	resp, body = postJSON(t, ts.URL+"/decide", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain decide: %d: %s", resp.StatusCode, body)
	}
	var plain tracedResponse
	if err := json.Unmarshal(body, &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Error("untraced response carries a trace field")
	}
	if plain.Found != traced.Found {
		t.Errorf("traced found=%v, untraced found=%v; tracing changed the answer", traced.Found, plain.Found)
	}

	// /find goes through the Direct path; tracing must work there too.
	resp, body = postJSON(t, ts.URL+"/find?trace=1", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced find: %d: %s", resp.StatusCode, body)
	}
	var found tracedResponse
	if err := json.Unmarshal(body, &found); err != nil {
		t.Fatal(err)
	}
	if found.Trace == nil || len(found.Trace.Spans) == 0 {
		t.Fatalf("traced find returned no spans: %s", body)
	}
}

// TestSlowQueryLog checks the -slow-query hook: with a zero-distance
// threshold every request logs, and a traced slow request's line names
// its slowest bands.
func TestSlowQueryLog(t *testing.T) {
	// The log fires after the handler has already written the response,
	// so the client can return before it runs: deliver lines through a
	// buffered channel and wait for one.
	logged := make(chan string, 4)
	s := serve.New(serve.Options{
		Pipeline:  httpOpt,
		Scheduler: serve.SchedulerOptions{Window: time.Millisecond},
		SlowQuery: time.Nanosecond,
		SlowLogf: func(format string, args ...any) {
			select {
			case logged <- fmt.Sprintf(format, args...):
			default:
			}
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if _, err := s.Registry().Register("grid", graph.Grid(4, 4), false); err != nil {
		t.Fatal(err)
	}
	req := map[string]any{"graph": "grid", "pattern": graphWire(graph.Cycle(4))}
	if resp, body := postJSON(t, ts.URL+"/decide?trace=1", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("decide: %d: %s", resp.StatusCode, body)
	}
	var line string
	select {
	case line = <-logged:
	case <-time.After(5 * time.Second):
		t.Fatal("no slow-query log line")
	}
	if !strings.Contains(line, "endpoint=decide") {
		t.Errorf("slow log line %q lacks the endpoint", line)
	}
	if !strings.Contains(line, "slowest bands:") {
		t.Errorf("traced slow log line %q lacks band detail", line)
	}
}
