package serve

// W3C Trace Context (traceparent) propagation and per-request ids.
//
// Every request gets a request id minted here; it is echoed in the
// X-Request-Id response header, stamped on slow-query and incident log
// lines, written to the -trace-log JSONL sink, and returned inside
// ?trace=1 payloads — one handle that correlates a client-observed
// response with everything the server recorded about producing it.
//
// When the client sends a traceparent header (version 00), the request
// joins the caller's distributed trace: the inbound trace-id is kept
// and the response carries a traceparent whose parent-id field is this
// server's request id, exactly the propagation a downstream span would
// perform. Malformed headers are ignored (the spec says restart the
// trace), leaving only the request id.

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"planarsi/internal/par"
)

// reqSeq and reqBoot mint request ids without per-request syscalls: a
// process-wide counter XORed with a boot-time random word. Uniqueness
// within a process comes from the counter; the random word keeps ids
// from colliding across restarts (and from being guessable).
var (
	reqSeq  atomic.Uint64
	reqBoot = func() uint64 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Degraded but functional: ids stay unique per process.
			return 0x9e3779b97f4a7c15
		}
		return binary.LittleEndian.Uint64(b[:])
	}()
)

// newRequestID returns a fresh 16-hex-digit request id, valid as a W3C
// parent-id (span-id) field.
func newRequestID() string {
	return fmt.Sprintf("%016x", reqBoot^reqSeq.Add(1))
}

// reqInfo is the per-request correlation state instrument attaches to
// every request's context.
type reqInfo struct {
	// id is this server's request id (also the outbound span-id).
	id string
	// traceID and flags are the inbound traceparent's fields, empty when
	// the request carried none (or a malformed one).
	traceID string
	flags   string
	// poolBase is the work-stealing pool snapshot taken at admission for
	// traced requests, so the response can report steal/park deltas over
	// the request window. Pool counters are process-global, so the delta
	// is attribution by time window, not by ownership — concurrent
	// queries' pool events blend. Zero for untraced requests.
	poolBase par.PoolStats
}

type reqInfoKey struct{}

func withReqInfo(ctx context.Context, ri *reqInfo) context.Context {
	return context.WithValue(ctx, reqInfoKey{}, ri)
}

// reqInfoFrom returns the request's correlation state, nil when the
// request did not pass through instrument (e.g. /metrics).
func reqInfoFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// parseTraceparent parses a W3C traceparent header value
// (version 00: "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>").
// It returns the trace-id and flags on success; anything malformed —
// wrong shape, non-hex digits, all-zero trace-id or parent-id, or the
// reserved version ff — reports ok=false and the trace restarts here.
func parseTraceparent(v string) (traceID, flags string, ok bool) {
	if len(v) != 55 || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return "", "", false
	}
	version, trace, parent, flag := v[0:2], v[3:35], v[36:52], v[53:55]
	if !isHexLower(version) || !isHexLower(trace) || !isHexLower(parent) || !isHexLower(flag) {
		return "", "", false
	}
	if version == "ff" || allZero(trace) || allZero(parent) {
		return "", "", false
	}
	return trace, flag, true
}

// isHexLower reports whether s is entirely lowercase hex digits (the
// spec forbids uppercase in traceparent).
func isHexLower(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
