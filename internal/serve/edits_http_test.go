package serve_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"planarsi/internal/core"
	"planarsi/internal/graph"
	"planarsi/internal/serve"
)

// TestHTTPApplyEdits drives the mutation endpoint end to end: a batch of
// edits answers 200 with the new epoch and the per-class migration work,
// post-edit queries answer against the edited graph exactly like the
// direct API on a fresh build, and the error statuses come back as
// documented (404 unknown graph, 409 epoch conflict, 422 invalid or
// planarity-violating batch, 400 malformed body).
func TestHTTPApplyEdits(t *testing.T) {
	s, ts := newTestServer(t)
	g := graph.Grid(4, 4)
	base := graph.FromEdges(g.N(), g.Edges())
	if _, err := s.Registry().Register("grid", base, false); err != nil {
		t.Fatal(err)
	}

	// Unknown graph: 404.
	resp, body := postJSON(t, ts.URL+"/graphs/nope/edges", serve.EditRequest{Add: []serve.Edge{{0, 5}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown graph: status %d: %s", resp.StatusCode, body)
	}

	// Invalid batch (edge already present): 422, epoch unchanged.
	resp, body = postJSON(t, ts.URL+"/graphs/grid/edges", serve.EditRequest{Add: []serve.Edge{{0, 1}}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("duplicate add: status %d: %s", resp.StatusCode, body)
	}

	// Malformed edge (three ids): 400 via the strict Edge decoder.
	resp, body = postJSON(t, ts.URL+"/graphs/grid/edges", map[string]any{"add": [][]int{{0, 5, 9}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed edge: status %d: %s", resp.StatusCode, body)
	}

	// Stale epoch condition: 409.
	one := uint64(1)
	resp, body = postJSON(t, ts.URL+"/graphs/grid/edges", serve.EditRequest{Add: []serve.Edge{{0, 5}}, IfEpoch: &one})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale ifEpoch: status %d: %s", resp.StatusCode, body)
	}

	// A valid conditional batch applies: diagonal in, one grid edge out.
	zero := uint64(0)
	resp, body = postJSON(t, ts.URL+"/graphs/grid/edges", serve.EditRequest{
		Add:     []serve.Edge{{0, 5}},
		Remove:  []serve.Edge{{0, 1}},
		IfEpoch: &zero,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edit batch: status %d: %s", resp.StatusCode, body)
	}
	var er serve.EditResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Graph != "grid" || er.Epoch != 1 || er.Added != 1 || er.Removed != 1 {
		t.Fatalf("edit response = %+v, want grid epoch 1, 1 added, 1 removed", er)
	}

	// Post-edit answers equal the direct API on the edited graph.
	g2, err := base.WithEdits([][2]int32{{0, 5}}, [][2]int32{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []*graph.Graph{graph.Cycle(3), graph.Cycle(4)} {
		req := map[string]any{"graph": "grid", "pattern": graphWire(h)}
		resp, body := postJSON(t, ts.URL+"/count", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-edit count: status %d: %s", resp.StatusCode, body)
		}
		var qr serve.QueryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		want, err := core.Count(g2, h, httpOpt)
		if err != nil {
			t.Fatal(err)
		}
		if qr.Count == nil || *qr.Count != want {
			t.Fatalf("post-edit count = %+v, want %d", qr.Count, want)
		}
	}

	// The planarity gate: adding enough diagonals to lose planarity is
	// refused with 422 when the batch asks for the check.
	resp, body = postJSON(t, ts.URL+"/graphs/grid/edges", serve.EditRequest{
		Add:           []serve.Edge{{0, 1}, {1, 4}, {2, 5}, {1, 6}, {2, 7}, {0, 6}, {3, 5}},
		RequirePlanar: true,
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("non-planar batch: status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "non-planar") {
		t.Fatalf("non-planar rejection body: %s", body)
	}

	// /stats and /metrics surface the mutation: epoch gauge at 1 and a
	// nonzero retained tally for at least one class.
	resp, body = postJSON(t, ts.URL+"/decide", map[string]any{"graph": "grid", "pattern": graphWire(graph.Cycle(4))})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm decide: status %d: %s", resp.StatusCode, body)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(raw)
	if !strings.Contains(metrics, `planarsi_index_epoch{graph="grid"} 1`) {
		t.Fatalf("metrics missing epoch gauge:\n%s", grepLines(metrics, "planarsi_index_epoch"))
	}
	for _, fam := range []string{"planarsi_index_invalidations_total", "planarsi_index_retained_total"} {
		if !strings.Contains(metrics, fam+`{class="band",graph="grid"}`) {
			t.Fatalf("metrics missing %s band series:\n%s", fam, grepLines(metrics, fam))
		}
	}

	st := s.Stats()
	for _, gi := range st.Registry.Graphs {
		if gi.Name != "grid" {
			continue
		}
		if gi.Index.Epoch != 1 {
			t.Fatalf("stats epoch = %d, want 1", gi.Index.Epoch)
		}
		if len(gi.Invalidations) == 0 {
			t.Fatal("stats missing invalidation tallies")
		}
		if gi.M != g2.M() {
			t.Fatalf("stats edge count = %d, want post-edit %d", gi.M, g2.M())
		}
	}
}

// TestHTTPEditsInvalidateConnectivity checks the epoch-keyed
// connectivity cache: removing a cut edge changes the served
// connectivity without re-registering the graph.
func TestHTTPEditsInvalidateConnectivity(t *testing.T) {
	s, ts := newTestServer(t)
	// Two triangles joined by a bridge: connectivity 1.
	g := graph.FromEdges(6, [][2]int32{
		{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3},
	})
	if _, err := s.Registry().Register("bridged", g, false); err != nil {
		t.Fatal(err)
	}
	conn1 := getConnectivity(t, ts, "bridged")
	if conn1 != 1 {
		t.Fatalf("pre-edit connectivity = %d, want 1 (bridge)", conn1)
	}
	// Drop the bridge: the graph disconnects, connectivity 0.
	resp, body := postJSON(t, ts.URL+"/graphs/bridged/edges", serve.EditRequest{Remove: []serve.Edge{{2, 3}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edit: status %d: %s", resp.StatusCode, body)
	}
	if conn0 := getConnectivity(t, ts, "bridged"); conn0 != 0 {
		t.Fatalf("post-edit connectivity = %d, want 0 (disconnected)", conn0)
	}
}

func getConnectivity(t *testing.T, ts *httptest.Server, name string) int {
	t.Helper()
	resp, body := postJSON(t, ts.URL+"/connectivity", map[string]any{"graph": name})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("connectivity: status %d: %s", resp.StatusCode, body)
	}
	var cr serve.ConnectivityResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	return cr.Connectivity
}

// grepLines returns the lines of s containing sub, for failure messages.
func grepLines(s, sub string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, sub) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
