package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"planarsi/internal/graph"
)

// TestWindowFromFlag pins the flag-to-option mapping: flag 0 means "no
// coalescing" and must land on WindowDisabled, not on the option
// zero-value (which means DefaultWindow). This was a real mismatch: the
// daemon documented "-window 0 disables coalescing" while a zero Window
// silently took the 2ms default.
func TestWindowFromFlag(t *testing.T) {
	if got := WindowFromFlag(0); got != WindowDisabled {
		t.Errorf("WindowFromFlag(0) = %v, want WindowDisabled", got)
	}
	if got := WindowFromFlag(5 * time.Millisecond); got != 5*time.Millisecond {
		t.Errorf("WindowFromFlag(5ms) = %v, want 5ms", got)
	}
	if got := WindowFromFlag(WindowDisabled); got != WindowDisabled {
		t.Errorf("WindowFromFlag(WindowDisabled) = %v, want WindowDisabled", got)
	}
	if got := (SchedulerOptions{}).withDefaults().Window; got != DefaultWindow {
		t.Errorf("zero SchedulerOptions window = %v, want DefaultWindow", got)
	}
}

// TestWindowDisabledDispatchesSingletons is the -window 0 regression
// test: with coalescing disabled, a concurrent burst must produce one
// batch per request (MaxBatch stat of exactly 1), never a coalesced
// batch.
func TestWindowDisabledDispatchesSingletons(t *testing.T) {
	g := graph.Grid(5, 5)
	reg := NewRegistry(RegistryOptions{Pipeline: testOpt})
	e, err := reg.Register("g", g, false)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(SchedulerOptions{Window: WindowFromFlag(0)})

	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sched.Submit(context.Background(), e, KindDecide, graph.Cycle(4)); err != nil {
				t.Errorf("submit: %v", err)
			}
		}()
	}
	wg.Wait()

	st := sched.Stats()
	if st.Requests != n {
		t.Fatalf("requests = %d, want %d", st.Requests, n)
	}
	if st.Batches != n {
		t.Errorf("batches = %d, want %d (every request its own batch)", st.Batches, n)
	}
	if st.MaxBatch != 1 {
		t.Errorf("maxBatch = %d, want 1", st.MaxBatch)
	}
}

// TestAdaptiveWindowShrinksWhenIdle feeds the arrival estimator a
// sparse arrival pattern and checks the effective window collapses far
// below the cap: an idle service should not tax its rare requests with
// the full coalescing wait.
func TestAdaptiveWindowShrinksWhenIdle(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Window: 2 * time.Millisecond, AdaptiveWindow: true})
	base := time.Unix(1000, 0)
	s.observeArrival(base)
	s.observeArrival(base.Add(time.Second)) // one request per second: idle

	got := s.effectiveWindow()
	if got >= s.opt.Window/100 {
		t.Errorf("effective window = %v under 1s inter-arrivals, want < %v", got, s.opt.Window/100)
	}
}

// TestAdaptiveWindowHonorsCapUnderBurst feeds a dense arrival stream
// and checks the effective window climbs back toward — but never past —
// the configured cap.
func TestAdaptiveWindowHonorsCapUnderBurst(t *testing.T) {
	cap := 2 * time.Millisecond
	s := NewScheduler(SchedulerOptions{Window: cap, AdaptiveWindow: true})
	at := time.Unix(1000, 0)
	for i := 0; i < 200; i++ { // 100k req/s: the EWMA converges to 10µs
		s.observeArrival(at)
		at = at.Add(10 * time.Microsecond)
	}

	got := s.effectiveWindow()
	if got > cap {
		t.Errorf("effective window = %v exceeds the cap %v", got, cap)
	}
	if got < cap/2 {
		t.Errorf("effective window = %v under a 10µs-inter-arrival burst, want >= %v", got, cap/2)
	}
}

// TestEffectiveWindowNonAdaptive pins the non-adaptive behaviors: a
// fixed window passes through untouched, and a disabled window reads
// as 0.
func TestEffectiveWindowNonAdaptive(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Window: 3 * time.Millisecond})
	s.observeArrival(time.Unix(1000, 0))
	s.observeArrival(time.Unix(2000, 0))
	if got := s.effectiveWindow(); got != 3*time.Millisecond {
		t.Errorf("non-adaptive effective window = %v, want 3ms", got)
	}
	s = NewScheduler(SchedulerOptions{Window: WindowDisabled, AdaptiveWindow: true})
	if got := s.effectiveWindow(); got != 0 {
		t.Errorf("disabled effective window = %v, want 0", got)
	}
}

// flushCountingWriter counts Flush calls through the http.Flusher
// interface.
type flushCountingWriter struct {
	*httptest.ResponseRecorder
	flushes int
}

func (w *flushCountingWriter) Flush() { w.flushes++ }

// readFromWriter records whether the sendfile fast path (io.ReaderFrom)
// was taken.
type readFromWriter struct {
	*httptest.ResponseRecorder
	readFroms int
}

func (w *readFromWriter) ReadFrom(r io.Reader) (int64, error) {
	w.readFroms++
	return io.Copy(w.ResponseRecorder, r)
}

// TestStatusRecorderKeepsOptionalInterfaces is the interface-loss
// regression test: wrapping a ResponseWriter in the metrics recorder
// must not sever Flusher, ReaderFrom, or http.NewResponseController
// reachability.
func TestStatusRecorderKeepsOptionalInterfaces(t *testing.T) {
	fw := &flushCountingWriter{ResponseRecorder: httptest.NewRecorder()}
	rec := &statusRecorder{ResponseWriter: fw, status: http.StatusOK}

	// Direct type assertion, the way streaming handlers flush.
	f, ok := http.ResponseWriter(rec).(http.Flusher)
	if !ok {
		t.Fatal("statusRecorder lost http.Flusher")
	}
	f.Flush()
	if fw.flushes != 1 {
		t.Fatalf("flushes = %d, want 1", fw.flushes)
	}

	// Through http.NewResponseController, which walks Unwrap.
	if err := http.NewResponseController(rec).Flush(); err != nil {
		t.Fatalf("ResponseController.Flush: %v", err)
	}
	if fw.flushes != 2 {
		t.Fatalf("flushes = %d, want 2", fw.flushes)
	}

	// io.Copy into the wrapper must land on the underlying ReadFrom.
	// (The source is wrapped to hide strings.Reader's WriterTo, which
	// io.Copy would otherwise prefer over the destination's ReadFrom.)
	rw := &readFromWriter{ResponseRecorder: httptest.NewRecorder()}
	rec = &statusRecorder{ResponseWriter: rw, status: http.StatusOK}
	if _, err := io.Copy(rec, struct{ io.Reader }{strings.NewReader("payload")}); err != nil {
		t.Fatal(err)
	}
	if rw.readFroms != 1 {
		t.Fatalf("ReadFrom calls = %d, want 1 (sendfile path severed)", rw.readFroms)
	}
	if got := rw.Body.String(); got != "payload" {
		t.Fatalf("body = %q, want %q", got, "payload")
	}

	// The fallback still writes correctly when the underlying writer has
	// no ReadFrom.
	plain := httptest.NewRecorder()
	rec = &statusRecorder{ResponseWriter: plain, status: http.StatusOK}
	if _, err := io.Copy(rec, struct{ io.Reader }{strings.NewReader("fallback")}); err != nil {
		t.Fatal(err)
	}
	if got := plain.Body.String(); got != "fallback" {
		t.Fatalf("body = %q, want %q", got, "fallback")
	}
}
