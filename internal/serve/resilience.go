package serve

// Query-path resilience: admission checks (circuit breakers and
// deadline-aware shedding), incident reporting for query panics, and
// the error writer that turns resilience failures into well-formed
// HTTP answers (503 + Retry-After, 500 + incident id).

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"planarsi/internal/index"
)

// ErrShed reports a request rejected at admission because its
// remaining deadline was below the endpoint's observed typical latency:
// admitting it would burn cores on an answer nobody can receive.
var ErrShed = errors.New("serve: shed: remaining deadline below typical latency")

// ErrBreakerOpen reports a request rejected by an open circuit
// breaker. Concrete errors are *BreakerOpenError.
var ErrBreakerOpen = errors.New("serve: circuit breaker open")

// BreakerOpenError is the concrete rejection of an open circuit; it
// wraps ErrBreakerOpen and carries the Retry-After hint.
type BreakerOpenError struct {
	Graph      string
	Kind       string
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("serve: circuit breaker open for graph %q kind %q (retry in %s)",
		e.Graph, e.Kind, e.RetryAfter.Round(time.Millisecond))
}

func (e *BreakerOpenError) Unwrap() error { return ErrBreakerOpen }

// shedMinSamples is how much latency history an endpoint needs before
// deadline-aware shedding activates: with fewer observations the p50 is
// noise and a cold server would shed real traffic.
const shedMinSamples = 64

// admitQuery runs the resilience admission checks for one decoded
// query: the (graph, kind) circuit breaker first, then deadline-aware
// shedding. On success it returns the breaker (nil when disabled) so
// the caller can Record the query's outcome; on failure the returned
// error maps to 503 through writeQueryError.
func (s *Server) admitQuery(r *http.Request, graph, kind string) (*breaker, error) {
	br := s.breaker(graph, kind)
	if br != nil {
		if retry, ok := br.Allow(time.Now()); !ok {
			return nil, &BreakerOpenError{Graph: graph, Kind: kind, RetryAfter: retry}
		}
	}
	if err := s.shedDoomed(r, kind); err != nil {
		if br != nil {
			// The admission above may have claimed the half-open probe
			// slot; give it back — a shed request proves nothing.
			br.Record(outcomeNeutral, time.Now())
		}
		s.shed.Add(1)
		return nil, err
	}
	return br, nil
}

// shedDoomed rejects a request whose remaining context deadline is
// below the endpoint's observed median latency. The median comes from
// the same per-endpoint histogram /metrics exposes; endpoints with too
// little history never shed.
func (s *Server) shedDoomed(r *http.Request, endpoint string) error {
	deadline, ok := r.Context().Deadline()
	if !ok {
		return nil
	}
	m := s.metrics[endpoint]
	if m == nil {
		return nil
	}
	h := m.hist.Snapshot()
	if h.Count < shedMinSamples {
		return nil
	}
	p50 := time.Duration(h.Quantile(0.50) * float64(time.Second))
	if remaining := time.Until(deadline); remaining < p50 {
		return fmt.Errorf("%w: %s remaining, typical %s query takes %s",
			ErrShed, remaining.Round(time.Millisecond), endpoint, p50.Round(time.Millisecond))
	}
	return nil
}

// recordOutcome feeds one finished query back into its breaker (a nil
// breaker means breakers are disabled). Only query panics count as
// incidents; everything a client can cause — cancellation, deadline,
// overload, validation — is neutral and can never open a circuit.
func recordOutcome(br *breaker, err error) {
	if br == nil {
		return
	}
	switch {
	case err == nil:
		br.Record(outcomeSuccess, time.Now())
	case errors.Is(err, index.ErrQueryPanic):
		br.Record(outcomeIncident, time.Now())
	default:
		br.Record(outcomeNeutral, time.Now())
	}
}

// incident assigns a fresh incident id to a server-side fault, bumps
// the incident counter, and logs the full detail — including the
// panicking goroutine's stack when the error carries one — correlated
// with the request id that triggered it. The HTTP response gets only
// the incident id: stacks are for operators, not clients. A set
// IncidentLogf gets the flat format; otherwise the record goes through
// the structured logger.
func (s *Server) incident(where, reqID string, err error) string {
	id := fmt.Sprintf("inc-%06d", s.incidentSeq.Add(1))
	s.incidents.Add(1)
	var qp *index.QueryPanicError
	isPanic := errors.As(err, &qp)
	if logf := s.opt.IncidentLogf; logf != nil {
		if isPanic {
			logf("serve: incident %s: req=%s %s: query panic: %v\n%s", id, reqID, where, qp.Value, qp.Stack)
		} else {
			logf("serve: incident %s: req=%s %s: %v", id, reqID, where, err)
		}
		return id
	}
	attrs := []any{"incident", id, "requestId", reqID, "where", where}
	if isPanic {
		attrs = append(attrs, "panic", fmt.Sprint(qp.Value), "stack", string(qp.Stack))
	} else {
		attrs = append(attrs, "err", err)
	}
	s.logger.Error("serve: incident", attrs...)
	return id
}

// incidentFromPanic is the instrument-level backstop for a panic that
// escaped every query-path guard (a handler bug, not an engine fault).
func (s *Server) incidentFromPanic(endpoint, reqID string, v any) string {
	return s.incident("endpoint "+endpoint, reqID, index.Guard(func() error { panic(v) }))
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up, at least 1 (the header has no sub-second form).
func retryAfterSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// retryAfter picks the Retry-After hint for one 503-class error: an
// open breaker knows its cooldown remainder; overload and shedding
// clear on the scale of the batching window.
func (s *Server) retryAfter(err error) string {
	var bo *BreakerOpenError
	if errors.As(err, &bo) {
		return retryAfterSeconds(bo.RetryAfter)
	}
	return retryAfterSeconds(s.sched.effectiveWindow())
}

// writeQueryError renders a query-path failure: 503s carry Retry-After,
// 500s (query panics) carry an incident id and log the stack (tagged
// with the failing request's id), and everything else flows through the
// plain status mapping.
func (s *Server) writeQueryError(w http.ResponseWriter, r *http.Request, graph string, err error) {
	status := queryStatus(err)
	switch status {
	case http.StatusServiceUnavailable:
		w.Header().Set("Retry-After", s.retryAfter(err))
	case http.StatusInternalServerError:
		reqID := ""
		if ri := reqInfoFrom(r.Context()); ri != nil {
			reqID = ri.id
		}
		id := s.incident("graph "+graph, reqID, err)
		writeJSON(w, status, errorResponse{
			Error:    fmt.Sprintf("%s: internal error (query panicked)", graph),
			Incident: id,
		})
		return
	}
	httpError(w, status, "%s: %v", graph, err)
}
