package serve

import (
	"io"
	"log/slog"
	"net/http"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"planarsi/internal/core"
)

// Options configures a Server.
type Options struct {
	// Pipeline is the planarsi option set every query runs with. Answers
	// are byte-identical to the direct API with the same options.
	Pipeline core.Options
	// MaxBytes is the registry's memory budget (see RegistryOptions).
	MaxBytes int64
	// Scheduler configures the micro-batching window and admission
	// control.
	Scheduler SchedulerOptions
	// MaxGraphVertices caps registered host graphs and query patterns
	// (the daemon is network-facing). Default 1 << 21.
	MaxGraphVertices int
	// MaxBodyBytes caps request bodies. Default 32 MiB.
	MaxBodyBytes int64
	// RequestTimeout, when positive, bounds every request's context with
	// a deadline: queries still running when it expires are cancelled
	// mid-band and answered with 504. 0 disables the bound.
	RequestTimeout time.Duration
	// SnapshotDir, when set, enables persistence: RestoreSnapshots warm
	// boots from the directory's *.snap files, SaveSnapshots checkpoints
	// every registered graph there, and POST /snapshot is exposed for
	// on-demand checkpointing.
	SnapshotDir string
	// SlowQuery, when positive, logs every request whose handler latency
	// reaches the threshold; when the request was traced (?trace=1) the
	// log line includes its slowest band spans and DP cost totals. 0
	// disables the log.
	SlowQuery time.Duration
	// SlowLogf receives slow-query log lines; nil means structured
	// logging through Logger.
	SlowLogf func(format string, args ...any)
	// Breaker configures the per-(graph, kind) circuit breakers; a zero
	// Threshold disables them.
	Breaker BreakerOptions
	// IncidentLogf receives incident log lines (query panics with their
	// stacks); nil means structured logging through Logger.
	IncidentLogf func(format string, args ...any)
	// Logger receives the server's structured log records (slow queries,
	// incidents); nil means slog.Default(). The SlowLogf/IncidentLogf
	// hooks, when set, override it for their respective records.
	Logger *slog.Logger
	// TraceLog, when non-nil, receives one JSON line per instrumented
	// request: request id, trace id, endpoint, status, duration — plus
	// the full span timeline and cost breakdown for ?trace=1 requests.
	// Writes are serialized; planarsiload -trace-summary reads the format
	// back. The caller owns the writer's lifetime (planarsid closes its
	// -trace-log file on shutdown).
	TraceLog io.Writer
	// TraceSpanLimit bounds the spans kept per ?trace=1 request; past it
	// spans are dropped (counted in the response's dropped field and the
	// planarsi_trace_dropped_total metric). <= 0 means
	// obs.DefaultSpanLimit.
	TraceSpanLimit int
}

func (o Options) withDefaults() Options {
	if o.MaxGraphVertices <= 0 {
		o.MaxGraphVertices = 1 << 21
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	o.Breaker = o.Breaker.withDefaults()
	return o
}

// Server glues the three serving-layer parts together: the graph
// registry, the micro-batching scheduler, and the HTTP endpoint handlers
// with their per-endpoint metrics. Build one with New, expose it with
// Handler, and preload graphs through Registry.
type Server struct {
	opt     Options
	reg     *Registry
	sched   *Scheduler
	metrics map[string]*endpointMetrics
	mux     *http.ServeMux
	start   time.Time
	logger  *slog.Logger

	// Trace export state: total spans dropped at recorder caps (the
	// planarsi_trace_dropped_total counter) and the lock serializing
	// JSONL writes to Options.TraceLog.
	traceDropped atomic.Uint64
	traceLogMu   sync.Mutex

	// Resilience state: the per-(graph, kind) circuit breakers plus the
	// incident and shed counters (see breaker.go and resilience.go).
	brMu        sync.Mutex
	breakers    map[breakerKey]*breaker
	incidentSeq atomic.Uint64
	incidents   atomic.Uint64
	shed        atomic.Uint64
}

// New builds a Server (no listening socket; pair Handler with an
// http.Server, as cmd/planarsid does).
func New(opt Options) *Server {
	opt = opt.withDefaults()
	s := &Server{
		opt:      opt,
		metrics:  make(map[string]*endpointMetrics),
		breakers: make(map[breakerKey]*breaker),
		start:    time.Now(),
		logger:   opt.Logger,
	}
	if s.logger == nil {
		s.logger = slog.Default()
	}
	// Queries grow Index caches; enforcing the budget once per executed
	// batch (not once per request) keeps Maintain's registry sweep off
	// the per-request hot path.
	opt.Scheduler.AfterBatch = func() { s.reg.Maintain() }
	s.sched = NewScheduler(opt.Scheduler)
	s.reg = NewRegistry(RegistryOptions{
		Pipeline: opt.Pipeline,
		MaxBytes: opt.MaxBytes,
		OnRemove: func(e *Entry) {
			s.sched.Forget(e)
			s.dropBreakers(e.Name())
		},
	})
	s.routes()
	return s
}

// Registry returns the server's graph registry (for preloading).
func (s *Server) Registry() *Registry { return s.reg }

// Scheduler returns the server's micro-batching scheduler.
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Handler returns the HTTP handler serving every endpoint.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /stats", s.instrument("stats", s.handleStats))
	// /metrics is deliberately uninstrumented: scrapes every few seconds
	// would dominate the low-traffic endpoints' histograms, and the
	// exposition must not grow a family for its own scrape traffic.
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /graphs", s.instrument("graphs.list", s.handleListGraphs))
	mux.HandleFunc("POST /graphs/{name}", s.instrument("graphs.register", s.handleRegisterGraph))
	mux.HandleFunc("POST /graphs/{name}/edges", s.instrument("edges.apply", s.handleApplyEdits))
	mux.HandleFunc("DELETE /graphs/{name}", s.instrument("graphs.remove", s.handleRemoveGraph))
	mux.HandleFunc("POST /decide", s.instrument("decide", s.handleBatched(KindDecide)))
	mux.HandleFunc("POST /count", s.instrument("count", s.handleBatched(KindCount)))
	mux.HandleFunc("POST /find", s.instrument("find", s.handleFind))
	mux.HandleFunc("POST /separating", s.instrument("separating", s.handleSeparating))
	mux.HandleFunc("POST /connectivity", s.instrument("connectivity", s.handleConnectivity))
	if s.opt.SnapshotDir != "" {
		mux.HandleFunc("POST /snapshot", s.instrument("snapshot", s.handleSnapshot))
	}
	s.mux = mux
}

// ServerStats is the /stats payload.
type ServerStats struct {
	UptimeSeconds float64                  `json:"uptimeSeconds"`
	Registry      RegistryStats            `json:"registry"`
	Scheduler     SchedulerStats           `json:"scheduler"`
	Endpoints     map[string]EndpointStats `json:"endpoints"`
	Resilience    ResilienceStats          `json:"resilience"`
}

// ResilienceStats is the /stats resilience section: incident and shed
// totals plus one entry per live circuit breaker.
type ResilienceStats struct {
	// Incidents counts query panics answered with a 500 + incident id.
	Incidents uint64 `json:"incidents"`
	// Shed counts requests rejected because their remaining deadline
	// was below the endpoint's typical latency.
	Shed     uint64        `json:"shed"`
	Breakers []BreakerInfo `json:"breakers,omitempty"`
}

// resilienceStats snapshots the breaker map and resilience counters.
func (s *Server) resilienceStats() ResilienceStats {
	st := ResilienceStats{
		Incidents: s.incidents.Load(),
		Shed:      s.shed.Load(),
	}
	s.brMu.Lock()
	keys := make([]breakerKey, 0, len(s.breakers))
	for key := range s.breakers {
		keys = append(keys, key)
	}
	brs := make([]*breaker, len(keys))
	for i, key := range keys {
		brs[i] = s.breakers[key]
	}
	s.brMu.Unlock()
	for i, key := range keys {
		state, fails, opens, rejected := brs[i].snapshot()
		st.Breakers = append(st.Breakers, BreakerInfo{
			Graph:    key.graph,
			Kind:     key.kind,
			State:    breakerStateName(state),
			Fails:    fails,
			Opens:    opens,
			Rejected: rejected,
		})
	}
	slices.SortFunc(st.Breakers, func(a, b BreakerInfo) int {
		if c := strings.Compare(a.Graph, b.Graph); c != 0 {
			return c
		}
		return strings.Compare(a.Kind, b.Kind)
	})
	return st
}

// Stats returns a snapshot across all parts.
func (s *Server) Stats() ServerStats {
	st := ServerStats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Registry:      s.reg.Stats(),
		Scheduler:     s.sched.Stats(),
		Endpoints:     make(map[string]EndpointStats, len(s.metrics)),
		Resilience:    s.resilienceStats(),
	}
	for name, m := range s.metrics {
		st.Endpoints[name] = m.snapshot()
	}
	return st
}
