package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"

	"planarsi/internal/core"
	"planarsi/internal/gio"
	"planarsi/internal/graph"
	"planarsi/internal/index"
	"planarsi/internal/match"
	"planarsi/internal/obs"
	"planarsi/internal/par"
)

// StatusClientClosedRequest is the (nginx-conventional) status reported
// when the client's request context is already cancelled: there is
// nobody left to answer, so no work is admitted. There is no official
// status code for this; 499 is the de-facto standard.
const StatusClientClosedRequest = 499

// Edge is one wire edge. It decodes strictly: a JSON array that does not
// hold exactly two vertex ids is rejected (encoding/json would otherwise
// silently truncate longer arrays into a plain [2]int32, answering
// against a graph the client did not send).
type Edge [2]int32

// UnmarshalJSON implements the strict decoding described on Edge.
func (e *Edge) UnmarshalJSON(b []byte) error {
	var xs []int32
	if err := json.Unmarshal(b, &xs); err != nil {
		return err
	}
	if len(xs) != 2 {
		return fmt.Errorf("edge wants exactly 2 vertex ids, got %d", len(xs))
	}
	e[0], e[1] = xs[0], xs[1]
	return nil
}

// GraphJSON is the JSON wire form of a graph: a vertex count (optional —
// it is raised to max id + 1) plus an edge list.
type GraphJSON struct {
	N     int    `json:"n"`
	Edges []Edge `json:"edges"`
}

// WireGraph renders a graph in the JSON wire form.
func WireGraph(g *graph.Graph) GraphJSON {
	edges := g.Edges()
	wire := GraphJSON{N: g.N(), Edges: make([]Edge, len(edges))}
	for i, e := range edges {
		wire.Edges[i] = Edge(e)
	}
	return wire
}

// Build validates the wire graph and constructs it (duplicate edges are
// tolerated, mirroring the edge-list parser; deduplication is a set
// lookup per edge, so hostile dense bodies stay linear).
func (j *GraphJSON) Build(maxVertices int) (*graph.Graph, error) {
	if j == nil {
		return nil, errors.New("missing graph")
	}
	if j.N < 0 {
		return nil, fmt.Errorf("negative vertex count %d", j.N)
	}
	n := j.N
	for _, e := range j.Edges {
		if e[0] < 0 || e[1] < 0 {
			return nil, fmt.Errorf("negative vertex id in edge %v", e)
		}
		if e[0] == e[1] {
			return nil, fmt.Errorf("self-loop at %d", e[0])
		}
		n = max(n, int(e[0])+1, int(e[1])+1)
	}
	if n > maxVertices {
		return nil, fmt.Errorf("%d vertices exceeds limit %d", n, maxVertices)
	}
	b := graph.NewBuilder(n)
	seen := make(map[Edge]struct{}, len(j.Edges))
	for _, e := range j.Edges {
		k := e
		if k[0] > k[1] {
			k[0], k[1] = k[1], k[0]
		}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		b.AddEdge(e[0], e[1])
	}
	return b.Build(), nil
}

// QueryRequest is the JSON body of the query endpoints.
type QueryRequest struct {
	// Graph names a registered host graph.
	Graph string `json:"graph"`
	// Pattern is the pattern to search for (decide, find, count,
	// separating).
	Pattern *GraphJSON `json:"pattern,omitempty"`
	// Terminals lists the terminal vertex set of /separating.
	Terminals []int32 `json:"terminals,omitempty"`
}

// QueryResponse is the JSON body of the query endpoints' answers. Fields
// not meaningful for an endpoint are omitted.
type QueryResponse struct {
	Graph string `json:"graph"`
	Found bool   `json:"found"`
	// Count is the occurrence count (/count only).
	Count *int `json:"count,omitempty"`
	// Occurrence maps pattern vertex u to target vertex Occurrence[u]
	// (/find and /separating, when found).
	Occurrence core.Occurrence `json:"occurrence,omitempty"`
	// Trace carries the query's band timeline when it was requested with
	// ?trace=1; absent otherwise.
	Trace *TraceJSON `json:"trace,omitempty"`
}

// TraceJSON is the wire form of a ?trace=1 span timeline.
type TraceJSON struct {
	// RequestID is this server's id for the request (also in the
	// X-Request-Id response header and every correlated log line);
	// TraceID is the inbound W3C traceparent's trace-id, when one came.
	RequestID string     `json:"requestId,omitempty"`
	TraceID   string     `json:"traceId,omitempty"`
	Spans     []obs.Span `json:"spans"`
	// Dropped counts spans lost to the recorder's bound; Truncated
	// mirrors Dropped > 0: the timeline is a prefix of the query's real
	// span stream.
	Dropped   int  `json:"dropped,omitempty"`
	Truncated bool `json:"truncated,omitempty"`
	// Cost is the query's DP cost total — the exact sum of the band
	// spans' cost breakdowns (prepare spans' bytes are cache residency,
	// not DP work, and are excluded).
	Cost *obs.Cost `json:"cost,omitempty"`
	// PoolSteals and PoolParks are the work-stealing pool's event deltas
	// over the request window. The pool is process-global, so concurrent
	// queries' events blend into each other's deltas: attribution is by
	// time window, not ownership.
	PoolSteals int64 `json:"poolSteals,omitempty"`
	PoolParks  int64 `json:"poolParks,omitempty"`
}

// traceJSON extracts the request's recorded spans, when it carried a
// ?trace=1 recorder (attached by instrument via traced). Nil otherwise,
// so untraced responses omit the field entirely.
func traceJSON(r *http.Request) *TraceJSON {
	rec := obs.FromContext(r.Context())
	if rec == nil {
		return nil
	}
	spans, dropped := rec.Snapshot()
	tj := &TraceJSON{Spans: spans, Dropped: dropped, Truncated: dropped > 0}
	if c := obs.CostFromContext(r.Context()).Snapshot(); !c.IsZero() {
		tj.Cost = &c
	}
	if ri := reqInfoFrom(r.Context()); ri != nil {
		tj.RequestID = ri.id
		tj.TraceID = ri.traceID
		now := par.ReadPoolStats()
		tj.PoolSteals = now.Steals - ri.poolBase.Steals
		tj.PoolParks = now.Parks - ri.poolBase.Parks
	}
	return tj
}

// ConnectivityResponse is the JSON body of /connectivity answers.
type ConnectivityResponse struct {
	Graph        string  `json:"graph"`
	Connectivity int     `json:"connectivity"`
	Cut          []int32 `json:"cut,omitempty"`
}

// RegisterResponse is the JSON body of a successful graph registration.
type RegisterResponse struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	M    int    `json:"m"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Incident is set on 500s caused by a server-side panic: an opaque
	// id clients can quote so an operator can find the logged stack.
	Incident string `json:"incident,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// queryStatus maps a query-path error to its HTTP status.
func queryStatus(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrBreakerOpen), errors.Is(err, ErrShed):
		return http.StatusServiceUnavailable
	case errors.Is(err, index.ErrQueryPanic):
		// A server-side fault, not a property of the request.
		return http.StatusInternalServerError
	case errors.Is(err, context.Canceled):
		// The client disconnected; the in-flight work was cancelled.
		return StatusClientClosedRequest
	case errors.Is(err, context.DeadlineExceeded):
		// The per-request deadline expired before the query finished.
		return http.StatusGatewayTimeout
	default:
		// Pattern-level rejections (oversized, disconnected, non-planar):
		// the request was well-formed but unprocessable.
		return http.StatusUnprocessableEntity
	}
}

// decodeQuery parses a query body and acquires its host graph; on success
// the caller owns the returned release func.
func (s *Server) decodeQuery(w http.ResponseWriter, r *http.Request, needPattern bool) (*QueryRequest, *Entry, *graph.Graph, func(), bool) {
	// Fail fast for clients that are already gone: decoding bodies and
	// queueing work for a dead connection only steals cores from live
	// requests.
	if err := r.Context().Err(); err != nil {
		httpError(w, queryStatus(err), "request context done at admission: %v", err)
		return nil, nil, nil, nil, false
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return nil, nil, nil, nil, false
	}
	var h *graph.Graph
	if needPattern {
		var err error
		if h, err = req.Pattern.Build(s.opt.MaxGraphVertices); err != nil {
			httpError(w, http.StatusBadRequest, "bad pattern: %v", err)
			return nil, nil, nil, nil, false
		}
		// The DP engine's bitset state is sized for match.MaxK pattern
		// vertices; reject anything larger at the boundary with a 400
		// instead of letting it anywhere near the query path.
		if h.N() > match.MaxK {
			httpError(w, http.StatusBadRequest,
				"pattern has %d vertices, over the engine limit of %d", h.N(), match.MaxK)
			return nil, nil, nil, nil, false
		}
	}
	e := s.reg.Acquire(req.Graph)
	if e == nil {
		httpError(w, http.StatusNotFound, "graph %q not registered", req.Graph)
		return nil, nil, nil, nil, false
	}
	release := func() { s.reg.Release(e) }
	return &req, e, h, release, true
}

// handleBatched serves /decide and /count: the query joins the entry's
// current micro-batch and the batch runs as one Index.Scan / ScanCount.
func (s *Server) handleBatched(kind BatchKind) http.HandlerFunc {
	kindName := "decide"
	if kind == KindCount {
		kindName = "count"
	}
	return func(w http.ResponseWriter, r *http.Request) {
		req, e, h, release, ok := s.decodeQuery(w, r, true)
		if !ok {
			return
		}
		defer release()
		br, err := s.admitQuery(r, req.Graph, kindName)
		if err != nil {
			s.writeQueryError(w, r, req.Graph, err)
			return
		}
		res, err := s.sched.Submit(r.Context(), e, kind, h)
		if err == nil {
			err = res.Err
		}
		recordOutcome(br, err)
		if err != nil {
			s.writeQueryError(w, r, req.Graph, err)
			return
		}
		out := QueryResponse{Graph: req.Graph, Found: res.Found, Trace: traceJSON(r)}
		if kind == KindCount {
			out.Count = &res.Count
		}
		writeJSON(w, http.StatusOK, out)
	}
}

func (s *Server) handleFind(w http.ResponseWriter, r *http.Request) {
	req, e, h, release, ok := s.decodeQuery(w, r, true)
	if !ok {
		return
	}
	defer release()
	br, err := s.admitQuery(r, req.Graph, "find")
	if err != nil {
		s.writeQueryError(w, r, req.Graph, err)
		return
	}
	var occ core.Occurrence
	if derr := s.sched.Direct(r.Context(), func() {
		// Guard converts an engine panic (carried to this goroutine by
		// the fork-join pool) into a structured 500, keeping the
		// daemon up.
		err = index.Guard(func() error {
			var ferr error
			occ, ferr = e.Index().FindOccurrenceCtx(r.Context(), h)
			return ferr
		})
	}); derr != nil {
		err = derr
	}
	recordOutcome(br, err)
	if err != nil {
		s.writeQueryError(w, r, req.Graph, err)
		return
	}
	writeJSON(w, http.StatusOK, QueryResponse{Graph: req.Graph, Found: occ != nil, Occurrence: occ, Trace: traceJSON(r)})
}

func (s *Server) handleSeparating(w http.ResponseWriter, r *http.Request) {
	req, e, h, release, ok := s.decodeQuery(w, r, true)
	if !ok {
		return
	}
	defer release()
	n := e.Graph().N()
	if len(req.Terminals) < 2 {
		httpError(w, http.StatusBadRequest, "separating needs at least two terminals")
		return
	}
	mask := make([]bool, n)
	for _, v := range req.Terminals {
		if v < 0 || int(v) >= n {
			httpError(w, http.StatusBadRequest, "terminal %d out of range [0, %d)", v, n)
			return
		}
		mask[v] = true
	}
	br, err := s.admitQuery(r, req.Graph, "separating")
	if err != nil {
		s.writeQueryError(w, r, req.Graph, err)
		return
	}
	var occ core.Occurrence
	if derr := s.sched.Direct(r.Context(), func() {
		err = index.Guard(func() error {
			var ferr error
			occ, ferr = e.Index().DecideSeparatingCtx(r.Context(), h, mask)
			return ferr
		})
	}); derr != nil {
		err = derr
	}
	recordOutcome(br, err)
	if err != nil {
		s.writeQueryError(w, r, req.Graph, err)
		return
	}
	writeJSON(w, http.StatusOK, QueryResponse{Graph: req.Graph, Found: occ != nil, Occurrence: occ, Trace: traceJSON(r)})
}

func (s *Server) handleConnectivity(w http.ResponseWriter, r *http.Request) {
	req, e, _, release, ok := s.decodeQuery(w, r, false)
	if !ok {
		return
	}
	defer release()
	br, err := s.admitQuery(r, req.Graph, "connectivity")
	if err != nil {
		s.writeQueryError(w, r, req.Graph, err)
		return
	}
	var res ConnectivityResponse
	if derr := s.sched.Direct(r.Context(), func() {
		err = index.Guard(func() error {
			cr, cerr := e.Connectivity()
			res = ConnectivityResponse{Graph: req.Graph, Connectivity: cr.Connectivity, Cut: cr.Cut}
			return cerr
		})
	}); derr != nil {
		err = derr
	}
	recordOutcome(br, err)
	if err != nil {
		s.writeQueryError(w, r, req.Graph, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleRegisterGraph registers the named graph from the request body:
// JSON (GraphJSON) when the content type is application/json, otherwise
// the edge-list text format.
func (s *Server) handleRegisterGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	r.Body = http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	var g *graph.Graph
	var err error
	if ct == "application/json" {
		var spec GraphJSON
		if err = json.NewDecoder(r.Body).Decode(&spec); err == nil {
			g, err = spec.Build(s.opt.MaxGraphVertices)
		}
	} else {
		g, err = gio.ReadEdgeListLimit(r.Body, s.opt.MaxGraphVertices)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad graph: %v", err)
		return
	}
	if _, err := s.reg.Register(name, g, false); err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, RegisterResponse{Name: name, N: g.N(), M: g.M()})
}

func (s *Server) handleRemoveGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.reg.Remove(name); err != nil {
		status := http.StatusNotFound
		if errors.Is(err, ErrInUse) {
			status = http.StatusConflict
		}
		httpError(w, status, "%v", err)
		return
	}
	// An explicitly removed graph must stay gone across restarts: drop
	// its snapshot file too.
	s.removeSnapshotFile(name)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Stats())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}
