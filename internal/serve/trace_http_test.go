package serve_test

// Correlation and cost-attribution tests for the trace-export surface:
// W3C traceparent propagation, X-Request-Id issuance, per-request ids
// staying distinct through batch coalescing, ?trace=1 cost payloads,
// span truncation accounting, and the -trace-log JSONL sink.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"planarsi/internal/core"
	"planarsi/internal/graph"
	"planarsi/internal/serve"
)

var spanIDRe = regexp.MustCompile(`^[0-9a-f]{16}$`)

func postJSONHeaders(t *testing.T, url string, hdr map[string]string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func decodeQueryResponse(t *testing.T, body []byte) serve.QueryResponse {
	t.Helper()
	var qr serve.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	return qr
}

// TestTraceparentPropagation: a request arriving with a W3C traceparent
// joins that trace — the response echoes the inbound trace-id with this
// server's request id as the parent-id — and the same ids come back in
// the ?trace=1 payload and the X-Request-Id header, one handle across
// all three surfaces.
func TestTraceparentPropagation(t *testing.T) {
	s, ts := newTestServer(t)
	if _, err := s.Registry().Register("grid", graph.Grid(5, 5), false); err != nil {
		t.Fatal(err)
	}
	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	inbound := "00-" + traceID + "-00f067aa0ba902b7-01"
	req := map[string]any{"graph": "grid", "pattern": graphWire(graph.Cycle(4))}
	resp, body := postJSONHeaders(t, ts.URL+"/decide?trace=1", map[string]string{"traceparent": inbound}, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decide: %d: %s", resp.StatusCode, body)
	}

	reqID := resp.Header.Get("X-Request-Id")
	if !spanIDRe.MatchString(reqID) {
		t.Fatalf("X-Request-Id = %q, want 16 hex digits", reqID)
	}
	echo := resp.Header.Get("traceparent")
	want := "00-" + traceID + "-" + reqID + "-01"
	if echo != want {
		t.Fatalf("traceparent echo = %q, want %q", echo, want)
	}
	if strings.Contains(echo, "00f067aa0ba902b7") {
		t.Fatal("response reused the inbound parent-id instead of its own span id")
	}

	qr := decodeQueryResponse(t, body)
	if qr.Trace == nil {
		t.Fatal("?trace=1 response has no trace")
	}
	if qr.Trace.RequestID != reqID {
		t.Fatalf("trace.requestId = %q, header = %q", qr.Trace.RequestID, reqID)
	}
	if qr.Trace.TraceID != traceID {
		t.Fatalf("trace.traceId = %q, want %q", qr.Trace.TraceID, traceID)
	}
	if qr.Trace.Cost == nil || qr.Trace.Cost.Emissions == 0 {
		t.Fatalf("traced decide carries no cost: %+v", qr.Trace.Cost)
	}

	// A malformed traceparent restarts the trace: no echo, but the
	// request id is still issued.
	resp, _ = postJSONHeaders(t, ts.URL+"/decide", map[string]string{"traceparent": "00-zzzz-bad-01"}, req)
	if resp.Header.Get("traceparent") != "" {
		t.Fatalf("malformed traceparent echoed: %q", resp.Header.Get("traceparent"))
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("malformed traceparent suppressed X-Request-Id")
	}
}

// TestRequestIDsDistinctAcrossCoalescedBatch: requests that share one
// micro-batch keep distinct request ids (correlation is per-request,
// not per-batch), and traced requests ride singleton batches so their
// span timelines never blend.
func TestRequestIDsDistinctAcrossCoalescedBatch(t *testing.T) {
	// A long window guarantees the two untraced requests coalesce.
	s := serve.New(serve.Options{
		Pipeline:  core.Options{Seed: 7, MaxRuns: 4},
		Scheduler: serve.SchedulerOptions{Window: 200 * time.Millisecond},
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	if _, err := s.Registry().Register("grid", graph.Grid(5, 5), false); err != nil {
		t.Fatal(err)
	}
	req := map[string]any{"graph": "grid", "pattern": graphWire(graph.Cycle(4))}

	ids := make([]string, 2)
	traceIDs := make([]string, 2)
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/decide", req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("decide %d: %d: %s", i, resp.StatusCode, body)
				return
			}
			ids[i] = resp.Header.Get("X-Request-Id")
		}(i)
	}
	wg.Wait()
	st := s.Stats().Scheduler
	if st.Batches != 1 || st.Requests != 2 {
		t.Fatalf("requests did not coalesce: %d batches for %d requests", st.Batches, st.Requests)
	}
	if ids[0] == "" || ids[0] == ids[1] {
		t.Fatalf("coalesced requests share or lack ids: %q, %q", ids[0], ids[1])
	}

	// Two concurrent traced requests: distinct ids, and each rides its
	// own singleton batch (batches grows by two).
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/decide?trace=1", req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("traced decide %d: %d: %s", i, resp.StatusCode, body)
				return
			}
			qr := decodeQueryResponse(t, body)
			if qr.Trace == nil {
				t.Errorf("traced decide %d: no trace", i)
				return
			}
			ids[i] = resp.Header.Get("X-Request-Id")
			traceIDs[i] = qr.Trace.RequestID
			if len(qr.Trace.Spans) == 0 {
				t.Errorf("traced decide %d: empty span timeline", i)
			}
		}(i)
	}
	wg.Wait()
	if ids[0] == "" || ids[0] == ids[1] {
		t.Fatalf("traced requests share or lack ids: %q, %q", ids[0], ids[1])
	}
	if traceIDs[0] != ids[0] || traceIDs[1] != ids[1] {
		t.Fatalf("trace payload ids %v do not match headers %v", traceIDs, ids)
	}
	if st := s.Stats().Scheduler; st.Batches != 3 {
		t.Fatalf("traced requests coalesced: %d total batches, want 3 (1 + 2 singletons)", st.Batches)
	}
}

// TestTraceTruncation: a tiny TraceSpanLimit forces span drops; the
// response marks the timeline truncated and the drop total reaches the
// planarsi_trace_dropped_total metric.
func TestTraceTruncation(t *testing.T) {
	s := serve.New(serve.Options{
		Pipeline:       core.Options{Seed: 7, MaxRuns: 4},
		Scheduler:      serve.SchedulerOptions{Window: time.Millisecond},
		TraceSpanLimit: 2,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	if _, err := s.Registry().Register("grid", graph.Grid(6, 6), false); err != nil {
		t.Fatal(err)
	}
	// A miss runs every band of every run: far more than 2 spans.
	req := map[string]any{"graph": "grid", "pattern": graphWire(graph.Cycle(3))}
	resp, body := postJSON(t, ts.URL+"/decide?trace=1", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decide: %d: %s", resp.StatusCode, body)
	}
	qr := decodeQueryResponse(t, body)
	if qr.Trace == nil {
		t.Fatal("no trace in response")
	}
	if len(qr.Trace.Spans) != 2 {
		t.Fatalf("spans = %d, want the 2-span cap", len(qr.Trace.Spans))
	}
	if !qr.Trace.Truncated || qr.Trace.Dropped == 0 {
		t.Fatalf("truncation not reported: truncated=%v dropped=%d", qr.Trace.Truncated, qr.Trace.Dropped)
	}

	_, metrics := getBody(t, ts.URL+"/metrics")
	line := sampleLine(metrics, "planarsi_trace_dropped_total")
	if line == "" {
		t.Fatal("planarsi_trace_dropped_total missing from /metrics")
	}
	if strings.HasSuffix(line, " 0") {
		t.Fatalf("planarsi_trace_dropped_total stayed zero: %q", line)
	}
}

// TestIntrospectionMetricFamilies: after real traffic, /metrics carries
// the memo-cache, pool and Go-runtime families with plausible values.
func TestIntrospectionMetricFamilies(t *testing.T) {
	s, ts := newTestServer(t)
	if _, err := s.Registry().Register("grid", graph.Grid(5, 5), false); err != nil {
		t.Fatal(err)
	}
	req := map[string]any{"graph": "grid", "pattern": graphWire(graph.Cycle(4))}
	if resp, body := postJSON(t, ts.URL+"/decide", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("decide: %d: %s", resp.StatusCode, body)
	}

	_, body := getBody(t, ts.URL+"/metrics")
	for _, family := range []string{
		"planarsi_trace_dropped_total",
		"planarsi_pool_steals_total",
		"planarsi_pool_parks_total",
		"planarsi_pool_resizes_total",
		"planarsi_pool_workers",
		"planarsi_pool_active_workers",
		"planarsi_index_memo_hits_total",
		"planarsi_index_memo_misses_total",
		"planarsi_index_memo_build_seconds_total",
		"planarsi_index_memo_bytes",
		"planarsi_index_memo_entries",
		"planarsi_go_goroutines",
		"planarsi_go_heap_alloc_bytes",
		"planarsi_go_heap_sys_bytes",
		"planarsi_go_heap_objects",
		"planarsi_go_next_gc_bytes",
		"planarsi_go_gcs_total",
		"planarsi_go_gc_pause_seconds_total",
	} {
		if !strings.Contains(body, "# HELP "+family+" ") {
			t.Errorf("missing HELP for %s", family)
		}
		if !strings.Contains(body, "# TYPE "+family+" ") {
			t.Errorf("missing TYPE for %s", family)
		}
	}

	// The cold decide built covers: per-(graph, class) misses and build
	// time are nonzero, and the artifacts are resident.
	for _, name := range []string{
		`planarsi_index_memo_misses_total{class="cover",graph="grid"}`,
		`planarsi_index_memo_build_seconds_total{class="cover",graph="grid"}`,
		`planarsi_index_memo_bytes{class="cover",graph="grid"}`,
		`planarsi_index_memo_entries{class="clustering",graph="grid"}`,
	} {
		line := sampleLine(body, name)
		if line == "" {
			t.Errorf("missing sample %s", name)
			continue
		}
		if strings.HasSuffix(line, " 0") {
			t.Errorf("%s stayed zero", name)
		}
	}
	if line := sampleLine(body, "planarsi_go_goroutines"); line == "" || strings.HasSuffix(line, " 0") {
		t.Errorf("implausible goroutine gauge: %q", line)
	}
}

// TestTraceLogJSONL: every instrumented request appends one parseable
// JSONL record; traced requests carry spans and cost, untraced ones
// stay lean, and the request ids match the response headers.
func TestTraceLogJSONL(t *testing.T) {
	var sink syncBuffer
	s := serve.New(serve.Options{
		Pipeline:  core.Options{Seed: 7, MaxRuns: 4},
		Scheduler: serve.SchedulerOptions{Window: time.Millisecond},
		TraceLog:  &sink,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	if _, err := s.Registry().Register("grid", graph.Grid(5, 5), false); err != nil {
		t.Fatal(err)
	}
	req := map[string]any{"graph": "grid", "pattern": graphWire(graph.Cycle(4))}
	respPlain, _ := postJSON(t, ts.URL+"/decide", req)
	respTraced, _ := postJSON(t, ts.URL+"/decide?trace=1", req)

	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("trace log lines = %d, want 2:\n%s", len(lines), sink.String())
	}
	type rec struct {
		RequestID string          `json:"requestId"`
		Endpoint  string          `json:"endpoint"`
		Status    int             `json:"status"`
		DurMicros float64         `json:"durMicros"`
		Cost      json.RawMessage `json:"cost"`
		Spans     json.RawMessage `json:"spans"`
	}
	var plain, traced rec
	if err := json.Unmarshal([]byte(lines[0]), &plain); err != nil {
		t.Fatalf("line 0: %v: %s", err, lines[0])
	}
	if err := json.Unmarshal([]byte(lines[1]), &traced); err != nil {
		t.Fatalf("line 1: %v: %s", err, lines[1])
	}
	if plain.RequestID != respPlain.Header.Get("X-Request-Id") {
		t.Fatalf("plain record id %q != header %q", plain.RequestID, respPlain.Header.Get("X-Request-Id"))
	}
	if traced.RequestID != respTraced.Header.Get("X-Request-Id") {
		t.Fatalf("traced record id %q != header %q", traced.RequestID, respTraced.Header.Get("X-Request-Id"))
	}
	if plain.Endpoint != "decide" || plain.Status != http.StatusOK || plain.DurMicros <= 0 {
		t.Fatalf("bad plain record: %+v", plain)
	}
	if plain.Spans != nil || plain.Cost != nil {
		t.Fatalf("untraced record carries trace payload: %s", lines[0])
	}
	if traced.Spans == nil || traced.Cost == nil {
		t.Fatalf("traced record lacks spans/cost: %s", lines[1])
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer (the server serializes
// TraceLog writes, but the test reads concurrently with Close paths).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// sampleLine returns the exposition line whose name{labels} prefix
// matches exactly, "" when absent.
func sampleLine(body, name string) string {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			return line
		}
	}
	return ""
}
