package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"planarsi/internal/core"
	"planarsi/internal/graph"
)

var testOpt = core.Options{Seed: 7, MaxRuns: 4}

// TestSchedulerCoalesces proves the micro-batching contract: requests
// arriving together are served by fewer Scan batches than requests, and
// every coalesced answer equals the direct one-shot API's answer for the
// same Options. MaxBatch = number of requests makes the dispatch point
// deterministic (the final request completes the batch; the long window
// never fires).
func TestSchedulerCoalesces(t *testing.T) {
	g := graph.Grid(6, 6)
	patterns := []*graph.Graph{
		graph.Cycle(4), graph.Cycle(3), graph.Path(4), graph.Star(4),
		graph.Cycle(4), graph.Path(3), graph.Cycle(6), graph.Path(5),
	}
	reg := NewRegistry(RegistryOptions{Pipeline: testOpt})
	e, err := reg.Register("g", g, false)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(SchedulerOptions{
		Window:   10 * time.Minute,
		MaxBatch: len(patterns),
	})

	var wg sync.WaitGroup
	results := make([]bool, len(patterns))
	for i, h := range patterns {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := sched.Submit(context.Background(), e, KindDecide, h)
			if err != nil {
				t.Errorf("pattern %d: %v", i, err)
				return
			}
			if res.Err != nil {
				t.Errorf("pattern %d: %v", i, res.Err)
				return
			}
			results[i] = res.Found
		}()
	}
	wg.Wait()

	st := sched.Stats()
	if st.Requests != uint64(len(patterns)) {
		t.Fatalf("requests = %d, want %d", st.Requests, len(patterns))
	}
	if st.Batches != 1 {
		t.Fatalf("batches = %d, want 1 (all requests coalesced)", st.Batches)
	}
	if st.MaxBatch != int64(len(patterns)) {
		t.Fatalf("maxBatch = %d, want %d", st.MaxBatch, len(patterns))
	}
	for i, h := range patterns {
		want, err := core.Decide(g, h, testOpt)
		if err != nil {
			t.Fatal(err)
		}
		if results[i] != want {
			t.Errorf("pattern %d: coalesced answer %v, direct answer %v", i, results[i], want)
		}
	}
}

// TestSchedulerWindowFlush checks that a lone request is dispatched by
// the window timer, and that counted answers match the direct API too.
func TestSchedulerWindowFlush(t *testing.T) {
	g := graph.Grid(5, 5)
	h := graph.Cycle(4)
	reg := NewRegistry(RegistryOptions{Pipeline: testOpt})
	e, err := reg.Register("g", g, false)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(SchedulerOptions{Window: time.Millisecond})
	res, err := sched.Submit(context.Background(), e, KindCount, h)
	if err != nil || res.Err != nil {
		t.Fatalf("submit: %v / %v", err, res.Err)
	}
	want, err := core.Count(g, h, testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want || res.Found != (want > 0) {
		t.Fatalf("coalesced count %d (found=%v), direct count %d", res.Count, res.Found, want)
	}
}

// TestSchedulerAdmission checks the queue bound: with one request parked
// in a long batching window and MaxQueued = 1, the next request is
// rejected with ErrOverloaded instead of piling up.
func TestSchedulerAdmission(t *testing.T) {
	g := graph.Grid(4, 4)
	h := graph.Cycle(4)
	reg := NewRegistry(RegistryOptions{Pipeline: testOpt})
	e, err := reg.Register("g", g, false)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(SchedulerOptions{Window: 300 * time.Millisecond, MaxQueued: 1})

	first := make(chan error, 1)
	go func() {
		_, err := sched.Submit(context.Background(), e, KindDecide, h)
		first <- err
	}()
	for sched.Stats().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, err := sched.Submit(context.Background(), e, KindDecide, h); err != ErrOverloaded {
		t.Fatalf("second submit: err = %v, want ErrOverloaded", err)
	}
	if err := <-first; err != nil {
		t.Fatalf("first submit: %v", err)
	}
	if got := sched.Stats().Rejected; got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
}

// TestRegistryEvictionSheds checks stage-1 eviction: when cached
// artifacts push the registry past its budget, Maintain resets
// least-recently-used Index caches while keeping every graph registered.
func TestRegistryEvictionSheds(t *testing.T) {
	g1, g2 := graph.Grid(5, 5), graph.Grid(6, 6)
	budget := g1.MemBytes() + g2.MemBytes() + 1 // graphs fit, artifacts do not
	reg := NewRegistry(RegistryOptions{Pipeline: testOpt, MaxBytes: budget})
	e1, err := reg.Register("g1", g1, false)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := reg.Register("g2", g2, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []*Entry{e1, e2} {
		if _, err := e.Index().Decide(graph.Cycle(4)); err != nil {
			t.Fatal(err)
		}
		if e.Index().Stats().MemBytes == 0 {
			t.Fatalf("%s: no cached artifacts after a query", e.Name())
		}
	}

	reg.Maintain()

	st := reg.Stats()
	if len(st.Graphs) != 2 {
		t.Fatalf("graphs after shed = %d, want 2 (shedding must not unregister)", len(st.Graphs))
	}
	if st.CacheResets == 0 {
		t.Fatalf("no cache resets recorded; stats: %+v", st)
	}
	if st.Bytes > budget {
		t.Fatalf("usage %d still over budget %d", st.Bytes, budget)
	}
	// Shed caches must refill transparently on the next query.
	if _, err := e1.Index().Decide(graph.Cycle(4)); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryEvictionRemoves checks stage-2 eviction and the LRU order:
// with a budget below the graphs themselves, idle unpinned entries are
// removed least-recently-used first (OnRemove observes the order), while
// pinned entries survive.
func TestRegistryEvictionRemoves(t *testing.T) {
	var removed []string
	reg := NewRegistry(RegistryOptions{
		Pipeline: testOpt,
		MaxBytes: 1,
		OnRemove: func(e *Entry) { removed = append(removed, e.Name()) },
	})
	// Budget 1 would evict at Register time; register with eviction
	// disabled by filling entries before any Maintain runs concurrently.
	// Register itself calls Maintain, so build the LRU shape first with a
	// large budget and then shrink it.
	reg.opt.MaxBytes = 1 << 40
	for _, name := range []string{"a", "b", "c"} {
		if _, err := reg.Register(name, graph.Grid(4, 4), false); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := reg.Register("pinned", graph.Grid(4, 4), true); err != nil {
		t.Fatal(err)
	}
	// Touch "a" so it is the most recently used unpinned entry.
	e := reg.Acquire("a")
	if e == nil {
		t.Fatal("acquire a")
	}
	reg.Release(e)

	reg.opt.MaxBytes = 1
	reg.Maintain()

	want := []string{"b", "c", "a"}
	if len(removed) != len(want) {
		t.Fatalf("removed %v, want %v", removed, want)
	}
	for i := range want {
		if removed[i] != want[i] {
			t.Fatalf("removed %v, want LRU order %v", removed, want)
		}
	}
	st := reg.Stats()
	if len(st.Graphs) != 1 || st.Graphs[0].Name != "pinned" {
		t.Fatalf("surviving graphs %+v, want only the pinned entry", st.Graphs)
	}
}

// TestRegistryInUseProtected checks that an entry held by a request is
// never removed (its cache may still be shed as a last resort — safe,
// since in-flight queries keep the immutable artifacts they hold), that
// Remove refuses it with ErrInUse, and that releasing it makes it
// evictable again.
func TestRegistryInUseProtected(t *testing.T) {
	reg := NewRegistry(RegistryOptions{Pipeline: testOpt, MaxBytes: 1 << 40})
	if _, err := reg.Register("g", graph.Grid(4, 4), false); err != nil {
		t.Fatal(err)
	}
	e := reg.Acquire("g")
	if e == nil {
		t.Fatal("acquire")
	}
	if _, err := e.Index().Decide(graph.Cycle(4)); err != nil {
		t.Fatal(err)
	}
	reg.opt.MaxBytes = 1
	reg.Maintain()
	if got := len(reg.Names()); got != 1 {
		t.Fatalf("in-use entry evicted (graphs = %d)", got)
	}
	if err := reg.Remove("g"); !errors.Is(err, ErrInUse) {
		t.Fatalf("Remove on an in-use entry: err = %v, want ErrInUse", err)
	}
	reg.Release(e)
	reg.Maintain()
	if got := len(reg.Names()); got != 0 {
		t.Fatalf("idle entry survived a below-graph-size budget (graphs = %d)", got)
	}
	if err := reg.Remove("g"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Remove on an evicted entry: err = %v, want ErrNotFound", err)
	}
}

// TestServeChurnRace exercises the whole layer concurrently — coalesced
// queries, registration, removal, eviction, stats — for the race
// detector.
func TestServeChurnRace(t *testing.T) {
	s := New(Options{
		Pipeline:  testOpt,
		MaxBytes:  64 << 10,
		Scheduler: SchedulerOptions{Window: time.Millisecond, MaxBatch: 4},
	})
	if _, err := s.Registry().Register("g", graph.Grid(5, 5), true); err != nil {
		t.Fatal(err)
	}
	patterns := []*graph.Graph{graph.Cycle(4), graph.Cycle(3), graph.Path(4)}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				e := s.Registry().Acquire("g")
				if e == nil {
					t.Error("acquire failed")
					return
				}
				if _, err := s.Scheduler().Submit(context.Background(), e, KindDecide, patterns[i%len(patterns)]); err != nil {
					t.Errorf("submit: %v", err)
				}
				s.Registry().Release(e)
				s.Registry().Maintain()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			name := "tmp"
			if _, err := s.Registry().Register(name, graph.Grid(3, 3), false); err != nil {
				continue
			}
			s.Stats()
			_ = s.Registry().Remove(name)
		}
	}()
	wg.Wait()
}
