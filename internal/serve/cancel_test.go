package serve

import (
	"context"
	"encoding/json"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"planarsi/internal/graph"
)

func cancelTestServer(t *testing.T) *Server {
	t.Helper()
	s := New(Options{Scheduler: SchedulerOptions{Window: -1}})
	rng := rand.New(rand.NewPCG(71, 73))
	g := graph.RandomPlanar(300, 0.7, rng)
	if _, err := s.Registry().Register("g", g, true); err != nil {
		t.Fatal(err)
	}
	return s
}

func patternBody(t *testing.T, h *graph.Graph) string {
	t.Helper()
	body, err := json.Marshal(QueryRequest{Graph: "g", Pattern: wirePtr(h)})
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func wirePtr(g *graph.Graph) *GraphJSON {
	w := WireGraph(g)
	return &w
}

// TestAdmissionFailFastOnDeadContext: a request whose context is already
// cancelled is refused with 499 before any decoding or queueing.
func TestAdmissionFailFastOnDeadContext(t *testing.T) {
	s := cancelTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, ep := range []string{"/decide", "/count", "/find", "/connectivity"} {
		req := httptest.NewRequest("POST", ep, strings.NewReader(patternBody(t, graph.Cycle(4)))).WithContext(ctx)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != StatusClientClosedRequest {
			t.Fatalf("%s with dead context: status %d, want %d (body %s)", ep, rec.Code, StatusClientClosedRequest, rec.Body)
		}
	}
}

// TestMidFlightDisconnect races client disconnects against running
// queries: the handler must return promptly with either a success or a
// cancellation status, and the server must keep answering correctly
// afterwards.
func TestMidFlightDisconnect(t *testing.T) {
	s := cancelTestServer(t)
	h := graph.Cycle(4)

	// Reference answer through a live request.
	ask := func(ctx context.Context) (int, QueryResponse) {
		req := httptest.NewRequest("POST", "/decide", strings.NewReader(patternBody(t, h)))
		if ctx != nil {
			req = req.WithContext(ctx)
		}
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		var out QueryResponse
		_ = json.NewDecoder(rec.Body).Decode(&out)
		return rec.Code, out
	}
	code, ref := ask(nil)
	if code != http.StatusOK {
		t.Fatalf("reference query failed with %d", code)
	}

	for _, delay := range []time.Duration{0, 100 * time.Microsecond, time.Millisecond, 10 * time.Millisecond} {
		ctx, cancel := context.WithCancel(context.Background())
		go func(d time.Duration) {
			time.Sleep(d)
			cancel()
		}(delay)
		done := make(chan struct{})
		var code int
		var out QueryResponse
		go func() {
			code, out = ask(ctx)
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("delay %v: handler hung after disconnect", delay)
		}
		switch code {
		case http.StatusOK:
			if out.Found != ref.Found {
				t.Fatalf("delay %v: found=%v want %v", delay, out.Found, ref.Found)
			}
		case StatusClientClosedRequest:
			// cancelled — fine
		default:
			t.Fatalf("delay %v: unexpected status %d", delay, code)
		}
		// The server still answers correctly after the aborted request.
		if code, out := ask(nil); code != http.StatusOK || out.Found != ref.Found {
			t.Fatalf("delay %v: post-disconnect query: status %d found %v", delay, code, out.Found)
		}
	}
}

// TestRequestTimeout: a server-side deadline shorter than the query
// cancels it with 504; a generous one leaves answers intact.
func TestRequestTimeout(t *testing.T) {
	rng := rand.New(rand.NewPCG(79, 83))
	g := graph.RandomPlanar(300, 0.7, rng)

	mk := func(timeout time.Duration) *Server {
		s := New(Options{
			Scheduler:      SchedulerOptions{Window: -1},
			RequestTimeout: timeout,
		})
		if _, err := s.Registry().Register("g", g, true); err != nil {
			t.Fatal(err)
		}
		return s
	}

	// Generous deadline: normal answer.
	s := mk(time.Minute)
	req := httptest.NewRequest("POST", "/decide", strings.NewReader(patternBody(t, graph.Cycle(4))))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("generous deadline: status %d (%s)", rec.Code, rec.Body)
	}

	// A deadline that has effectively already passed by the time the
	// query starts: the pipeline observes it at its first checkpoint.
	s = mk(time.Nanosecond)
	rec = httptest.NewRecorder()
	req = httptest.NewRequest("POST", "/decide", strings.NewReader(patternBody(t, graph.Cycle(4))))
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout && rec.Code != StatusClientClosedRequest {
		t.Fatalf("nanosecond deadline: status %d, want 504 or 499 (%s)", rec.Code, rec.Body)
	}
	if rec.Code == http.StatusGatewayTimeout && !strings.Contains(rec.Body.String(), "deadline") {
		// Sanity: the error body mentions the deadline.
		var e struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(rec.Body.Bytes(), &e)
		if e.Error == "" {
			t.Fatalf("504 with empty error body: %s", rec.Body)
		}
	}
}
