package experiments

import (
	"fmt"
	"math"

	"planarsi/internal/graph"
	"planarsi/internal/match"
	"planarsi/internal/pmdag"
	"planarsi/internal/treedecomp"
)

// AblationBalance measures the alternative the paper's Section 3.3
// explicitly avoids: rebalancing the tree decomposition to height
// O(log n) (Bodlaender-Hagerup, tripling the width) and running the
// sequential DP level-parallel on it, versus the paper's path-DAG engine
// on the original decomposition. Both reach poly-log depth; the balanced
// route pays for it with a (τ'+3)/(τ+3) ≈ 3x wider state space — the
// Ω(9^k)-work factor the paper cites as its reason to build shortcuts
// instead.
func AblationBalance(cfg Config) *Table {
	t := &Table{
		ID:     "Ablation A5",
		Title:  "depth reduction: balanced decomposition (3w+2) vs path-DAG shortcuts",
		Claim:  "balancing gives O(log n) height but up to 9^k more DP work; shortcuts avoid it",
		Header: []string{"n", "k", "route", "width", "height/hops", "lg n", "states", "vs paper"},
	}
	sizes := []int{256, 1024}
	if cfg.Quick {
		sizes = []int{128, 512}
	}
	workOK, heightOK, agree := true, true, true
	for _, n := range sizes {
		g := graph.Path(n)
		lgn := math.Log2(float64(n))
		for _, k := range []int{3, 4} {
			h := graph.Path(k)
			d := treedecomp.Build(g, treedecomp.MinDegree)

			nd := treedecomp.MakeNice(d)
			p := &match.Problem{G: g, H: h, ND: nd}
			eng, stats := pmdag.Run(p, nil)
			paperStates := eng.StatesGenerated()
			t.Row(fmt.Sprint(n), fmt.Sprint(k), "path-DAG (paper)",
				fmt.Sprint(nd.Width), fmt.Sprintf("%d hops", stats.MaxHops),
				fmt.Sprintf("%.0f", lgn), fmt.Sprint(paperStates), "1.0x")

			bal := treedecomp.Balance(d)
			bnd := treedecomp.MakeNice(bal)
			bp := &match.Problem{G: g, H: h, ND: bnd}
			beng := match.Run(bp, nil)
			balStates := beng.StatesGenerated()
			ratio := float64(balStates) / float64(paperStates)
			t.Row(fmt.Sprint(n), fmt.Sprint(k), "balanced 3w+2",
				fmt.Sprint(bnd.Width), fmt.Sprintf("%d height", bal.Height()),
				fmt.Sprintf("%.0f", lgn), fmt.Sprint(balStates), fmt.Sprintf("%.1fx", ratio))

			if eng.Found() != beng.Found() {
				agree = false
			}
			if ratio < 1.5 {
				workOK = false // the width blowup must be visible in the states
			}
			if float64(bal.Height()) > 3*lgn+6 {
				heightOK = false
			}
		}
	}
	if agree {
		t.Pass("both routes decided identically")
	} else {
		t.Fail("decisions diverged")
	}
	if heightOK {
		t.Pass("balanced height stayed within ~3·lg n (the depth win)")
	} else {
		t.Fail("balanced decomposition not logarithmic")
	}
	if workOK {
		t.Pass("balanced route paid >1.5x the states — the width-blowup work penalty the paper avoids")
	} else {
		t.Fail("width blowup did not show in the state counts")
	}
	return t
}
