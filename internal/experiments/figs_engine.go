package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"

	"planarsi/internal/graph"
	"planarsi/internal/match"
	"planarsi/internal/naive"
	"planarsi/internal/pmdag"
	"planarsi/internal/treedecomp"
)

// Fig4 regenerates the behaviour of Figure 4 and Lemma 3.1: the partial
// match DP over nice tree decompositions decides exactly (validated
// against the naive oracle), with state counts scaling like (τ+3)^k-shaped
// functions of the pattern size and near-linearly in the target size.
func Fig4(cfg Config) *Table {
	t := &Table{
		ID:     "Figure 4",
		Title:  "bounded-treewidth DP: exactness and state-count scaling",
		Claim:  "O((τ+3)^{3k+1} n) work; exact per band",
		Header: []string{"n", "k", "width τ", "states", "states/n", "agree with oracle"},
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 401))
	sizes := []int{200, 800, 3200}
	trialsPer := 8
	if cfg.Quick {
		sizes = []int{100, 400}
		trialsPer = 4
	}
	agreeAll := true
	// Scaling in n at fixed k.
	var perN []float64
	for _, n := range sizes {
		g := graph.RandomPlanar(n, 0.5, rng)
		nd := treedecomp.MakeNice(treedecomp.Build(g, treedecomp.MinDegree))
		h := graph.Cycle(4)
		p := &match.Problem{G: g, H: h, ND: nd}
		eng := match.Run(p, nil)
		agree := eng.Found() == naive.Decide(g, h)
		if !agree {
			agreeAll = false
		}
		states := eng.StatesGenerated()
		perN = append(perN, float64(states)/float64(n))
		t.Row(fmt.Sprint(n), "4", fmt.Sprint(nd.Width), fmt.Sprint(states),
			fmt.Sprintf("%.1f", float64(states)/float64(n)), fmt.Sprint(agree))
	}
	// Scaling in k at fixed n.
	gk := graph.RandomPlanar(sizes[0], 0.5, rng)
	ndk := treedecomp.MakeNice(treedecomp.Build(gk, treedecomp.MinDegree))
	var prev int64
	growthOK := true
	for _, k := range []int{3, 4, 5, 6} {
		h := graph.Path(k)
		p := &match.Problem{G: gk, H: h, ND: ndk}
		eng := match.Run(p, nil)
		agree := eng.Found() == naive.Decide(gk, h)
		if !agree {
			agreeAll = false
		}
		states := eng.StatesGenerated()
		growth := "-"
		if prev > 0 {
			growth = fmt.Sprintf("%.1fx", float64(states)/float64(prev))
			if states < prev {
				growthOK = false
			}
		}
		prev = states
		t.Row(fmt.Sprint(gk.N()), fmt.Sprint(k), fmt.Sprint(ndk.Width),
			fmt.Sprint(states), growth, fmt.Sprint(agree))
	}
	// Random-instance exactness sweep.
	for trial := 0; trial < trialsPer; trial++ {
		g := graph.RandomPlanar(30+rng.IntN(60), rng.Float64(), rng)
		h := graph.RandomTree(2+rng.IntN(4), rng)
		nd := treedecomp.MakeNice(treedecomp.Build(g, treedecomp.MinDegree))
		eng := match.Run(&match.Problem{G: g, H: h, ND: nd}, nil)
		if eng.Found() != naive.Decide(g, h) {
			agreeAll = false
		}
	}
	if agreeAll {
		t.Pass("DP agreed with the naive oracle on every instance (Lemma 3.1 exactness)")
	} else {
		t.Fail("DP disagreed with the oracle")
	}
	if spread := ratioSpread(perN); spread <= 6 {
		t.Pass("states/n spread %.1fx across the n-sweep (near-linear in n)", spread)
	} else {
		t.Fail("states/n spread %.1fx — super-linear in n", spread)
	}
	if growthOK {
		t.Pass("state counts grew monotonically with k (exponential-in-k regime)")
	} else {
		t.Fail("state counts not monotone in k")
	}
	return t
}

// Fig5 regenerates the behaviour of Figure 5 and Lemmas 3.2/3.3: the
// decomposition into layered paths has O(log n) layers, the no-new-match
// transitions form a forest (at most one outgoing per state), and the
// shortcut construction brings reachability down to O(k log V) BFS hops —
// beating the Θ(path length) a naive traversal would need.
func Fig5(cfg Config) *Table {
	t := &Table{
		ID:     "Figure 5",
		Title:  "path-DAG engine: layers, forest structure, shortcut hop counts",
		Claim:  "O(log n) layers; forest shortcuts give O(k log n) reachability depth",
		Header: []string{"n", "k", "layers", "lg n", "longest path", "DAG V", "forest E", "shortcut E", "hops", "k·lg V"},
	}
	sizes := []int{256, 1024, 4096}
	if cfg.Quick {
		sizes = []int{128, 512}
	}
	layersOK, forestOK, hopsOK, beatsChain := true, true, true, true
	for _, n := range sizes {
		// Path targets produce the long-chain decompositions the engine
		// exists for.
		g := graph.Path(n)
		h := graph.Path(4)
		nd := treedecomp.MakeNice(treedecomp.Build(g, treedecomp.MinDegree))
		p := &match.Problem{G: g, H: h, ND: nd}
		eng, stats := pmdag.Run(p, nil)
		if !eng.Found() {
			t.Fail("P4 not found in P%d", n)
		}
		lgn := math.Log2(float64(nd.NumNodes()))
		if float64(stats.Layers) > lgn+2 {
			layersOK = false
		}
		if stats.ForestEdges > stats.DAGVertices {
			forestOK = false
		}
		k := float64(h.N())
		lgV := math.Log2(float64(stats.DAGVertices) + 2)
		if float64(stats.MaxHops) > 8*(k+1)*lgV {
			hopsOK = false
		}
		if n >= 1024 && stats.MaxHops >= stats.LongestPath {
			beatsChain = false
		}
		t.Row(fmt.Sprint(n), "4", fmt.Sprint(stats.Layers), fmt.Sprintf("%.0f", lgn),
			fmt.Sprint(stats.LongestPath), fmt.Sprint(stats.DAGVertices),
			fmt.Sprint(stats.ForestEdges), fmt.Sprint(stats.ShortcutEdges),
			fmt.Sprint(stats.MaxHops), fmt.Sprintf("%.0f", k*lgV))
	}
	if layersOK {
		t.Pass("layer count stayed within lg n + 2 (Lemma 3.2)")
	} else {
		t.Fail("layer count exceeded lg n + 2")
	}
	if forestOK {
		t.Pass("no-new-match transitions form a forest: at most one per state (Figure 5)")
	} else {
		t.Fail("forest property violated")
	}
	if hopsOK {
		t.Pass("reachability BFS stayed within ~8(k+1)·lg V hops (Lemma 3.3)")
	} else {
		t.Fail("hop count exceeded the Lemma 3.3 shape")
	}
	if beatsChain {
		t.Pass("shortcut hops beat the chain length on long paths (the point of Section 3.3)")
	} else {
		t.Fail("shortcuts gave no improvement over the chain")
	}
	return t
}
