package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"planarsi/internal/conn"
	"planarsi/internal/core"
	"planarsi/internal/flow"
	"planarsi/internal/graph"
	"planarsi/internal/naive"
	"planarsi/internal/wd"
)

// Fig6 regenerates the behaviour of Figure 6 and Lemmas 5.1/5.2: planar
// vertex connectivity decided through separating cycles in the
// vertex-face incidence graph, validated against the max-flow oracle on
// families of every connectivity class 1..5, with near-linear work
// scaling in n.
func Fig6(cfg Config) *Table {
	t := &Table{
		ID:     "Figure 6",
		Title:  "planar vertex connectivity via separating cycles vs max-flow oracle",
		Claim:  "κ(G) = (shortest separating cycle in G')/2; O(n log n) work, O(log² n) depth",
		Header: []string{"family", "n", "expected κ", "ours", "flow oracle", "cut ok", "work", "work/(n·lgn)", "time"},
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 601))
	big := 600
	if cfg.Quick {
		big = 150
	}
	families := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"path", graph.Path(big), 1},
		{"cycle", graph.Cycle(big), 2},
		{"grid", graph.Grid(intSqrt(big), intSqrt(big)), 2},
		{"wheel", graph.Wheel(60), 3},
		{"dodecahedron", graph.Dodecahedron(), 3},
		{"apollonian", graph.Apollonian(big/2, rng), 3},
		{"octahedron", graph.Octahedron(), 4},
		{"bipyramid", graph.Bipyramid(40), 4},
		{"icosahedron", graph.Icosahedron(), 5},
	}
	// Run budget: 12 cover repetitions per cycle search keeps the error of
	// "no shorter cut" answers below 2^-12 while keeping the sweep fast.
	const famRuns = 12
	agreeAll, cutsOK := true, true
	for _, fam := range families {
		tr := wd.NewTracker()
		start := time.Now()
		res, err := conn.VertexConnectivity(fam.g, conn.Options{Seed: cfg.Seed, Tracker: tr, MaxRuns: famRuns})
		elapsed := time.Since(start)
		if err != nil {
			t.Fail("%s: %v", fam.name, err)
			continue
		}
		oracle := flow.VertexConnectivity(fam.g)
		if res.Connectivity != fam.want || oracle != fam.want {
			agreeAll = false
		}
		cutNote := "-"
		if res.Cut != nil {
			if conn.VerifyCut(fam.g, res.Cut) && len(res.Cut) == res.Connectivity {
				cutNote = "yes"
			} else {
				cutNote = "NO"
				cutsOK = false
			}
		}
		n := float64(fam.g.N())
		lgn := math.Log2(n + 2)
		t.Row(fam.name, fmt.Sprint(fam.g.N()), fmt.Sprint(fam.want),
			fmt.Sprint(res.Connectivity), fmt.Sprint(oracle), cutNote,
			fmt.Sprint(tr.Work()), fmt.Sprintf("%.1f", float64(tr.Work())/(n*lgn)),
			elapsed.Round(time.Millisecond).String())
	}
	// Work scaling sweep on one family (bipyramids: κ=4 exercises the full
	// C4+C6+C8 chain, with the C4 and C6 searches running their whole
	// budget before failing — the expensive path).
	var ratios []float64
	sweep := []int{48, 96, 192}
	if cfg.Quick {
		sweep = []int{32, 64}
	}
	for _, n := range sweep {
		g := graph.Bipyramid(n)
		tr := wd.NewTracker()
		start := time.Now()
		res, err := conn.VertexConnectivity(g, conn.Options{Seed: cfg.Seed, Tracker: tr, MaxRuns: famRuns})
		elapsed := time.Since(start)
		if err != nil || res.Connectivity != 4 {
			t.Fail("bipyramid(%d): κ=%d err=%v", n, res.Connectivity, err)
			continue
		}
		nn := float64(g.N())
		lgn := math.Log2(nn + 2)
		ratios = append(ratios, float64(tr.Work())/(nn*lgn))
		t.Row("bipyramid sweep", fmt.Sprint(g.N()), "4", fmt.Sprint(res.Connectivity), "-", "-",
			fmt.Sprint(tr.Work()), fmt.Sprintf("%.1f", float64(tr.Work())/(nn*lgn)),
			elapsed.Round(time.Millisecond).String())
	}
	if agreeAll {
		t.Pass("connectivity matched the expected value and the flow oracle on every family (κ = 1..5)")
	} else {
		t.Fail("connectivity mismatch")
	}
	if cutsOK {
		t.Pass("every reported cut verified (size = κ and disconnects the graph)")
	} else {
		t.Fail("an invalid cut was reported")
	}
	if spread := ratioSpread(ratios); spread <= 12 {
		t.Pass("work/(n·lg n) spread %.1fx across the bipyramid sweep (near-linear shape)", spread)
	} else {
		t.Fail("work/(n·lg n) spread %.1fx — super-linear", spread)
	}
	return t
}

// Fig7 regenerates the behaviour of Figure 7 and Lemma 5.3: the
// separating cover preserves separating occurrences (survival >= 1/2
// per run) and the separating DP agrees with a brute-force separating
// search.
func Fig7(cfg Config) *Table {
	t := &Table{
		ID:     "Figure 7",
		Title:  "separating subgraph isomorphism: cover survival and exactness",
		Claim:  "separating occurrences found w.p. >= 1/2 per run; O(2^{9k}(3k+1)^{3k+1} n log n) work",
		Header: []string{"instance", "n", "pattern", "brute force", "ours", "witness ok"},
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 701))
	trials := 20
	if cfg.Quick {
		trials = 8
	}
	agreeAll, witnessOK := true, true
	for trial := 0; trial < trials; trial++ {
		g := graph.RandomPlanar(12+rng.IntN(24), 0.4+0.6*rng.Float64(), rng)
		s := make([]bool, g.N())
		for v := range s {
			s[v] = rng.Float64() < 0.5
		}
		k := 3 + rng.IntN(2)
		h := graph.Cycle(k)
		want := false
		for _, a := range naive.Search(g, h, naive.Options{}) {
			if separates(g, s, a) {
				want = true
				break
			}
		}
		occ, err := core.DecideSeparating(g, h, s, core.Options{Seed: cfg.Seed + uint64(trial)})
		if err != nil {
			t.Fail("trial %d: %v", trial, err)
			continue
		}
		got := occ != nil
		if got != want {
			agreeAll = false
		}
		wOK := "-"
		if got {
			if core.VerifySeparating(g, h, s, occ) {
				wOK = "yes"
			} else {
				wOK = "NO"
				witnessOK = false
			}
		}
		t.Row(fmt.Sprintf("random %d", trial), fmt.Sprint(g.N()), fmt.Sprintf("C%d", k),
			fmt.Sprint(want), fmt.Sprint(got), wOK)
	}
	// Survival measurement: a planted separating rim in a double wheel.
	rim := 8
	b := graph.NewBuilder(rim + 2)
	for i := 0; i < rim; i++ {
		b.AddEdge(int32(i), int32((i+1)%rim))
		b.AddEdge(int32(i), int32(rim))
		b.AddEdge(int32(i), int32(rim+1))
	}
	dw := b.Build()
	s := make([]bool, dw.N())
	s[rim], s[rim+1] = true, true
	survTrials, survived := 30, 0
	if cfg.Quick {
		survTrials = 10
	}
	for i := 0; i < survTrials; i++ {
		occ, err := core.DecideSeparating(dw, graph.Cycle(rim), s, core.Options{
			Seed: cfg.Seed + uint64(1000+i), MaxRuns: 1})
		if err == nil && occ != nil {
			survived++
		}
	}
	surv := float64(survived) / float64(survTrials)
	t.Row("double wheel (1 run)", fmt.Sprint(dw.N()), fmt.Sprintf("C%d", rim),
		"true", fmt.Sprintf("%.2f of runs", surv), "-")
	if agreeAll {
		t.Pass("separating decision agreed with brute force on every random instance")
	} else {
		t.Fail("separating decision disagreed with brute force")
	}
	if witnessOK {
		t.Pass("every witness verified as a separating occurrence")
	} else {
		t.Fail("invalid witness")
	}
	if surv >= 0.5 {
		t.Pass("planted separating rim found in %.0f%% of single runs (>= 50%%)", surv*100)
	} else {
		t.Fail("single-run success %.0f%% below 50%%", surv*100)
	}
	return t
}

func separates(g *graph.Graph, s []bool, a []int32) bool {
	removed := make(map[int32]bool, len(a))
	for _, v := range a {
		removed[v] = true
	}
	keep := make([]int32, 0, g.N()-len(a))
	for v := int32(0); v < int32(g.N()); v++ {
		if !removed[v] {
			keep = append(keep, v)
		}
	}
	sub, orig := graph.Induce(g, keep)
	comp, _ := graph.Components(sub)
	first := int32(-1)
	for i, ov := range orig {
		if s[ov] {
			if first < 0 {
				first = comp[i]
			} else if comp[i] != first {
				return true
			}
		}
	}
	return false
}
