// Package experiments regenerates every table and figure of the paper's
// evaluation as empirical measurements: Table 1 (work/depth comparison of
// subgraph isomorphism algorithms) and the behaviour illustrated by
// Figures 1-7, plus the listing (Theorem 4.2) and disconnected-pattern
// (Lemma 4.1) extensions and the ablations DESIGN.md calls out.
//
// The paper is a theory paper; its "evaluation" consists of asymptotic
// bounds. Each experiment here measures the bound's *shape* — operation
// counts for work, synchronous round counts for depth, success
// frequencies for probabilistic claims — and reports the measured values
// next to what the paper predicts, so EXPERIMENTS.md can record
// paper-vs-measured rows. The cmd/paperbench binary prints these tables;
// the root bench_test.go exercises the same functions under testing.B.
package experiments

import (
	"fmt"
	"strings"
)

// Config scales the experiments.
type Config struct {
	// Quick shrinks the sweeps for fast runs (used by benchmarks and CI;
	// paperbench defaults to the full sweeps).
	Quick bool
	// Seed makes every experiment reproducible.
	Seed uint64
}

// Table is one regenerated paper artifact.
type Table struct {
	// ID names the paper artifact ("Table 1", "Figure 3", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Claim quotes what the paper predicts.
	Claim string
	// Header and Rows carry the measured series.
	Header []string
	Rows   [][]string
	// Notes records observations (pass/fail of shape checks).
	Notes []string
}

// Pass records a shape check that held.
func (t *Table) Pass(format string, args ...any) {
	t.Notes = append(t.Notes, "PASS: "+fmt.Sprintf(format, args...))
}

// Fail records a shape check that failed.
func (t *Table) Fail(format string, args ...any) {
	t.Notes = append(t.Notes, "FAIL: "+fmt.Sprintf(format, args...))
}

// Failed reports whether any shape check failed.
func (t *Table) Failed() bool {
	for _, n := range t.Notes {
		if strings.HasPrefix(n, "FAIL") {
			return true
		}
	}
	return false
}

// Row appends a formatted row.
func (t *Table) Row(cols ...string) {
	t.Rows = append(t.Rows, cols)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "   paper: %s\n", t.Claim)
	}
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[min(i, len(width)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "   %s\n", n)
	}
	return b.String()
}

// All runs every experiment in paper order.
func All(cfg Config) []*Table {
	return []*Table{
		Table1(cfg),
		Fig1(cfg),
		Fig2(cfg),
		Fig3(cfg),
		Fig4(cfg),
		Fig5(cfg),
		Fig6(cfg),
		Fig7(cfg),
		ListAll(cfg),
		Disconnected(cfg),
		Genus43(cfg),
		AblationEngine(cfg),
		AblationBeta(cfg),
		AblationShortcut(cfg),
		AblationTD(cfg),
		AblationBalance(cfg),
	}
}

// ByName returns the experiment runner with the given id (e.g. "table1",
// "fig3", "list", "disconnected", "ablation-beta"), or nil.
func ByName(name string) func(Config) *Table {
	switch strings.ToLower(name) {
	case "table1", "t1", "1":
		return Table1
	case "fig1", "f1":
		return Fig1
	case "fig2", "f2":
		return Fig2
	case "fig3", "f3":
		return Fig3
	case "fig4", "f4":
		return Fig4
	case "fig5", "f5":
		return Fig5
	case "fig6", "f6":
		return Fig6
	case "fig7", "f7":
		return Fig7
	case "list", "listing", "thm4.2":
		return ListAll
	case "disconnected", "lemma4.1":
		return Disconnected
	case "genus", "thm4.4", "section4.3":
		return Genus43
	case "ablation-engine":
		return AblationEngine
	case "ablation-beta":
		return AblationBeta
	case "ablation-shortcut":
		return AblationShortcut
	case "ablation-td":
		return AblationTD
	case "ablation-balance":
		return AblationBalance
	}
	return nil
}

// Names lists the experiment ids ByName accepts, in paper order.
func Names() []string {
	return []string{
		"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"list", "disconnected", "genus",
		"ablation-engine", "ablation-beta", "ablation-shortcut", "ablation-td",
		"ablation-balance",
	}
}
