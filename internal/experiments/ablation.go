package experiments

import (
	"fmt"
	"math/rand/v2"
	"time"

	"planarsi/internal/core"
	"planarsi/internal/cover"
	"planarsi/internal/graph"
	"planarsi/internal/match"
	"planarsi/internal/pmdag"
	"planarsi/internal/treedecomp"
)

// AblationEngine compares the sequential bottom-up DP (Section 3.2)
// against the path-DAG engine (Section 3.3) on long-chain targets, where
// the sequential engine's depth is the whole chain while the path-DAG
// engine's is O(k log n). Both must return identical decisions.
func AblationEngine(cfg Config) *Table {
	t := &Table{
		ID:     "Ablation A1",
		Title:  "per-band engine: sequential DP vs path-DAG",
		Claim:  "identical results; path-DAG depth O(k log n) vs chain-length",
		Header: []string{"n", "engine", "found", "depth proxy", "time"},
	}
	sizes := []int{512, 2048}
	if cfg.Quick {
		sizes = []int{256, 512}
	}
	agree := true
	for _, n := range sizes {
		g := graph.Path(n)
		h := graph.Path(4)
		nd := treedecomp.MakeNice(treedecomp.Build(g, treedecomp.MinDegree))
		p := &match.Problem{G: g, H: h, ND: nd}

		start := time.Now()
		seq := match.Run(p, nil)
		seqTime := time.Since(start)
		// The sequential engine's critical path is the full node order.
		t.Row(fmt.Sprint(n), "sequential", fmt.Sprint(seq.Found()),
			fmt.Sprintf("%d nodes", nd.NumNodes()), seqTime.Round(time.Microsecond).String())

		start = time.Now()
		parr, stats := pmdag.Run(p, nil)
		parTime := time.Since(start)
		t.Row(fmt.Sprint(n), "path-DAG", fmt.Sprint(parr.Found()),
			fmt.Sprintf("%d hops", stats.MaxHops), parTime.Round(time.Microsecond).String())

		if seq.Found() != parr.Found() {
			agree = false
		}
	}
	if agree {
		t.Pass("both engines returned identical decisions")
	} else {
		t.Fail("engines disagreed")
	}
	return t
}

// AblationBeta sweeps the clustering parameter β around the paper's 2k:
// smaller β cuts more pattern occurrences (lower survival), larger β
// grows cluster diameters (deeper BFS, bigger bands). The paper's choice
// balances the two.
func AblationBeta(cfg Config) *Table {
	t := &Table{
		ID:     "Ablation A2",
		Title:  "clustering parameter β vs survival and cover cost",
		Claim:  "β = 2k gives survival >= 1/2 at O(dn) cover size",
		Header: []string{"β", "survival", "Σ|Gi|/n", "BFS rounds"},
	}
	side := 24
	trials := 25
	if cfg.Quick {
		side, trials = 14, 10
	}
	g := graph.Grid(side, side)
	mid := int32(side/2*side + side/2)
	occ := []int32{mid, mid + 1, mid + int32(side) + 1, mid + int32(side)}
	k := 4
	var survAt2k float64
	for _, beta := range []float64{float64(k) / 2, float64(k), float64(2 * k), float64(4 * k)} {
		rng := rand.New(rand.NewPCG(cfg.Seed, uint64(beta*10)))
		survived, rounds := 0, 0
		var sizeRatio float64
		for i := 0; i < trials; i++ {
			cov := cover.Build(g, cover.Params{K: k, D: 2, Beta: beta}, rng, nil)
			if coverContains(cov, occ) {
				survived++
			}
			if cov.BFSRounds > rounds {
				rounds = cov.BFSRounds
			}
			sizeRatio = float64(cov.TotalSize()) / float64(g.N())
		}
		surv := float64(survived) / float64(trials)
		if beta == float64(2*k) {
			survAt2k = surv
		}
		t.Row(fmt.Sprintf("%.1f", beta), fmt.Sprintf("%.2f", surv),
			fmt.Sprintf("%.2f", sizeRatio), fmt.Sprint(rounds))
	}
	if survAt2k >= 0.5 {
		t.Pass("survival at β = 2k is %.2f >= 1/2 (the paper's operating point)", survAt2k)
	} else {
		t.Fail("survival at β = 2k is %.2f < 1/2", survAt2k)
	}
	return t
}

// AblationShortcut compares the paper's hub spacing (every ~log2 V forest
// vertices) against hubs-everywhere, the Θ(log n)-work-overhead variant
// the paper explicitly avoids. Hop counts are similar; the edge count —
// the work — is what separates them.
func AblationShortcut(cfg Config) *Table {
	t := &Table{
		ID:     "Ablation A3",
		Title:  "shortcut spacing: every lg V-th forest vertex vs every vertex",
		Claim:  "sparse hubs keep shortcut work linear; dense hubs pay Θ(log n) extra",
		Header: []string{"n", "spacing", "shortcut edges", "edges/V", "hops"},
	}
	sizes := []int{1024, 4096}
	if cfg.Quick {
		sizes = []int{512, 1024}
	}
	sparser := true
	for _, n := range sizes {
		g := graph.Path(n)
		h := graph.Path(4)
		nd := treedecomp.MakeNice(treedecomp.Build(g, treedecomp.MinDegree))
		p := &match.Problem{G: g, H: h, ND: nd}

		_, paper := pmdag.RunConfig(p, pmdag.Config{}, nil)
		t.Row(fmt.Sprint(n), "lg V (paper)", fmt.Sprint(paper.ShortcutEdges),
			fmt.Sprintf("%.2f", float64(paper.ShortcutEdges)/float64(paper.DAGVertices)),
			fmt.Sprint(paper.MaxHops))

		_, dense := pmdag.RunConfig(p, pmdag.Config{ShortcutSpacing: 1}, nil)
		t.Row(fmt.Sprint(n), "1 (dense)", fmt.Sprint(dense.ShortcutEdges),
			fmt.Sprintf("%.2f", float64(dense.ShortcutEdges)/float64(dense.DAGVertices)),
			fmt.Sprint(dense.MaxHops))

		if paper.ShortcutEdges >= dense.ShortcutEdges {
			sparser = false
		}
	}
	if sparser {
		t.Pass("paper spacing added strictly fewer shortcut edges than dense hubs")
	} else {
		t.Fail("paper spacing did not reduce shortcut edges")
	}
	return t
}

// AblationTD compares the min-degree and min-fill tree decomposition
// heuristics on cover bands: both must be valid; widths and build time
// differ.
func AblationTD(cfg Config) *Table {
	t := &Table{
		ID:     "Ablation A4",
		Title:  "band decomposition heuristic: min-degree vs min-fill",
		Claim:  "any valid decomposition works; width enters the work as (τ+3)^{3k+1}",
		Header: []string{"d", "heuristic", "max width", "build time", "decision"},
	}
	n := 1200
	if cfg.Quick {
		n = 400
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 1001))
	g := graph.Apollonian(n, rng)
	h := graph.Cycle(4)
	agree := true
	for _, d := range []int{2, 3} {
		cov := cover.Build(g, cover.Params{K: 4, D: d}, rng, nil)
		var decisions []bool
		for _, heur := range []struct {
			name string
			h    treedecomp.Heuristic
		}{{"min-degree", treedecomp.MinDegree}, {"min-fill", treedecomp.MinFill}} {
			maxW := 0
			start := time.Now()
			for _, b := range cov.Bands {
				td := treedecomp.Build(b.G, heur.h)
				if w := td.Width(); w > maxW {
					maxW = w
				}
			}
			buildTime := time.Since(start)
			found, err := core.Decide(g, h, core.Options{Seed: cfg.Seed, Heuristic: heur.h})
			if err != nil {
				t.Fail("%s: %v", heur.name, err)
				continue
			}
			decisions = append(decisions, found)
			t.Row(fmt.Sprint(d), heur.name, fmt.Sprint(maxW),
				buildTime.Round(time.Millisecond).String(), fmt.Sprint(found))
		}
		if len(decisions) == 2 && decisions[0] != decisions[1] {
			agree = false
		}
	}
	if agree {
		t.Pass("decisions identical under both heuristics")
	} else {
		t.Fail("heuristic changed the decision")
	}
	return t
}
