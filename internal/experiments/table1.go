package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"planarsi/internal/colorcode"
	"planarsi/internal/cover"
	"planarsi/internal/graph"
	"planarsi/internal/naive"
	"planarsi/internal/pmdag"
	"planarsi/internal/treedecomp"
	"planarsi/internal/wd"

	"planarsi/internal/match"
)

// oneRun executes a single cover-and-solve run of the paper's pipeline
// and reports its empirical work and depth.
//
// Work sums the tracked operation counts (clustering, BFS, engine) plus
// the DP's state emissions. Depth adds the *sequential* round counters:
// clustering rounds, the maximum in-cluster BFS round count, and the
// maximum path-DAG BFS hop count across bands — bands run in parallel, so
// the max (not the sum) is the critical path. Deciding w.h.p. repeats
// this run O(log n) times sequentially.
type runMeasure struct {
	found bool
	work  int64
	depth int64
	bands int
}

func oneRun(g, h *graph.Graph, seed uint64) runMeasure {
	tr := wd.NewTracker()
	rng := rand.New(rand.NewPCG(seed, 0xabcdef))
	k := h.N()
	d := graph.Diameter(h)
	cov := cover.Build(g, cover.Params{K: k, D: d}, rng, tr)
	var m runMeasure
	m.bands = len(cov.Bands)
	maxHops := 0
	for _, b := range cov.Bands {
		if b.G.N() < k {
			continue
		}
		nd := treedecomp.MakeNice(treedecomp.Build(b.G, treedecomp.MinDegree))
		if nd.Width+1 > match.MaxBag {
			continue
		}
		p := &match.Problem{G: b.G, H: h, ND: nd}
		eng, stats := pmdag.Run(p, tr)
		m.work += eng.StatesGenerated()
		if stats.MaxHops > maxHops {
			maxHops = stats.MaxHops
		}
		if eng.Found() {
			m.found = true
		}
	}
	m.work += tr.Work()
	m.depth = tr.PhaseRounds("estc") + int64(cov.BFSRounds) + int64(maxHops)
	return m
}

// Table1 regenerates the paper's Table 1 as an empirical sweep: our
// algorithm's work per run against the naive backtracking baseline and
// color coding (tree patterns only), across growing planar targets.
//
// The shape to reproduce: our work stays near-linear in n for fixed k
// (work / (n log n) flat), while the depth proxy stays poly-logarithmic.
// The baselines have no such guarantee — naive work is n^k in the worst
// case, color coding pays e^k repetitions.
func Table1(cfg Config) *Table {
	t := &Table{
		ID:     "Table 1",
		Title:  "deciding planar subgraph isomorphism: work/depth vs baselines",
		Claim:  "ours O((3k)^{3k+1} n log n) work, O(k log² n) depth; Alon et al. e^k n^Θ(√k) log n; naive n^k",
		Header: []string{"n", "pattern", "algorithm", "found", "work", "work/(n·lgn)", "depth", "k·lg²n", "time"},
	}
	sizes := []int{1 << 10, 1 << 12, 1 << 14, 1 << 16}
	if cfg.Quick {
		sizes = []int{1 << 8, 1 << 10}
	}
	c4 := graph.Cycle(4)
	p4 := graph.Path(4)
	var ourRatios []float64
	var depthOK = true
	for _, n := range sizes {
		rng := rand.New(rand.NewPCG(cfg.Seed, uint64(n)))
		g := graph.RandomPlanar(n, 0.7, rng)
		lgn := math.Log2(float64(n))
		for _, pat := range []struct {
			name string
			h    *graph.Graph
		}{{"C4", c4}, {"P4", p4}} {
			k := float64(pat.h.N())
			start := time.Now()
			m := oneRun(g, pat.h, cfg.Seed+uint64(n))
			elapsed := time.Since(start)
			ratio := float64(m.work) / (float64(n) * lgn)
			ourRatios = append(ourRatios, ratio)
			if float64(m.depth) > 2*k*lgn*lgn {
				depthOK = false
			}
			t.Row(fmt.Sprint(n), pat.name, "ours (1 run)", fmt.Sprint(m.found),
				fmt.Sprint(m.work), fmt.Sprintf("%.1f", ratio),
				fmt.Sprint(m.depth), fmt.Sprintf("%.0f", k*lgn*lgn), elapsed.Round(time.Millisecond).String())

			var nWork int64
			start = time.Now()
			nFound := len(naive.Search(g, pat.h, naive.Options{Limit: 1, CountWork: &nWork})) > 0
			elapsed = time.Since(start)
			t.Row(fmt.Sprint(n), pat.name, "naive backtracking", fmt.Sprint(nFound),
				fmt.Sprint(nWork), fmt.Sprintf("%.1f", float64(nWork)/(float64(n)*lgn)),
				"-", "-", elapsed.Round(time.Millisecond).String())

			if pat.name == "P4" {
				var ccWork int64
				start = time.Now()
				ccFound, err := colorcode.Decide(g, pat.h, colorcode.Options{CountWork: &ccWork},
					rand.New(rand.NewPCG(cfg.Seed, uint64(n)^0xcc)), nil)
				elapsed = time.Since(start)
				if err != nil {
					t.Fail("color coding: %v", err)
					continue
				}
				t.Row(fmt.Sprint(n), pat.name, "color coding (AYZ)", fmt.Sprint(ccFound),
					fmt.Sprint(ccWork), fmt.Sprintf("%.1f", float64(ccWork)/(float64(n)*lgn)),
					"-", "-", elapsed.Round(time.Millisecond).String())
			}
		}
	}
	spread := ratioSpread(ourRatios)
	if spread <= 10 {
		t.Pass("our work/(n·lg n) spread across the sweep is %.1fx (near-linear shape)", spread)
	} else {
		t.Fail("our work/(n·lg n) spread is %.1fx — super-linear growth", spread)
	}
	if depthOK {
		t.Pass("depth proxy stayed below 2·k·lg²n at every size (poly-logarithmic shape)")
	} else {
		t.Fail("depth proxy exceeded 2·k·lg²n")
	}
	return t
}

func ratioSpread(rs []float64) float64 {
	if len(rs) == 0 {
		return 1
	}
	lo, hi := rs[0], rs[0]
	for _, r := range rs[1:] {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if lo <= 0 {
		return math.Inf(1)
	}
	return hi / lo
}
