package experiments

import (
	"fmt"
	"math/rand/v2"

	"planarsi/internal/core"
	"planarsi/internal/cover"
	"planarsi/internal/graph"
	"planarsi/internal/naive"
	"planarsi/internal/treedecomp"
)

// Genus43 regenerates the Section 4.3 claim: the pipeline extends beyond
// planarity to every minor-closed family of locally bounded treewidth —
// bounded-genus graphs in particular. Nothing in the clustering, the
// cover, or the DP uses planarity; only the 3d width bound does. The
// experiment runs the identical pipeline on genus-1 tori and
// grids-with-handles, checks decisions against the oracle, and measures
// that band widths stay small (locally bounded treewidth showing up
// empirically, the property Theorem 4.4 needs).
func Genus43(cfg Config) *Table {
	t := &Table{
		ID:     "Theorem 4.4",
		Title:  "beyond planarity: bounded-genus targets (Section 4.3)",
		Claim:  "apex-minor-free families: k^O(k) n log³ n work; bands keep bounded width",
		Header: []string{"target", "n", "genus", "pattern", "oracle", "ours", "max band width"},
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 4301))
	side := 20
	trials := 6
	if cfg.Quick {
		side, trials = 12, 3
	}
	type target struct {
		name  string
		g     *graph.Graph
		genus string
	}
	targets := []target{
		{"torus grid", graph.TorusGrid(side, side), "1"},
		{"grid + 3 handles", graph.GridWithHandles(side, side, 3, rng), "<=3"},
		{"planar grid (control)", graph.Grid(side, side), "0"},
	}
	agreeAll := true
	widthOK := true
	for _, tg := range targets {
		for trial := 0; trial < trials; trial++ {
			var h *graph.Graph
			switch trial % 3 {
			case 0:
				h = graph.Cycle(4)
			case 1:
				h = graph.Path(4)
			default:
				h = graph.Star(4)
			}
			want := naive.Decide(tg.g, h)
			got, err := core.Decide(tg.g, h, core.Options{Seed: cfg.Seed + uint64(trial)})
			if err != nil {
				t.Fail("%s: %v", tg.name, err)
				continue
			}
			if got != want {
				agreeAll = false
			}
			// Band widths of one cover run: locally bounded treewidth
			// means they stay O(d) despite the graph not being planar.
			cov := cover.Build(tg.g, cover.Params{K: h.N(), D: graph.Diameter(h)}, rng, nil)
			maxW := 0
			for _, b := range cov.Bands {
				if w := treedecomp.Build(b.G, treedecomp.MinDegree).Width(); w > maxW {
					maxW = w
				}
			}
			if maxW > 14 {
				widthOK = false
			}
			t.Row(tg.name, fmt.Sprint(tg.g.N()), tg.genus, patName(h),
				fmt.Sprint(want), fmt.Sprint(got), fmt.Sprint(maxW))
		}
	}
	if agreeAll {
		t.Pass("decisions agreed with the oracle on every bounded-genus instance")
	} else {
		t.Fail("decision mismatch on a bounded-genus instance")
	}
	if widthOK {
		t.Pass("band widths stayed bounded off-planar (locally bounded treewidth, Thm 4.4's hypothesis)")
	} else {
		t.Fail("band width blew up on a bounded-genus target")
	}
	return t
}
