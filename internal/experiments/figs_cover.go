package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"

	"planarsi/internal/cover"
	"planarsi/internal/estc"
	"planarsi/internal/graph"
	"planarsi/internal/treedecomp"
	"planarsi/internal/wd"
)

// Fig1 regenerates the behaviour of Figure 1: tree decompositions of the
// cover's bands satisfy the three axioms, and their width stays O(d) on
// planar targets (the paper's bound via Baker/Eppstein is 3d; our
// min-degree heuristic must land in the same regime — DESIGN.md records
// the substitution).
func Fig1(cfg Config) *Table {
	t := &Table{
		ID:     "Figure 1",
		Title:  "tree decompositions of cover bands: validity and width",
		Claim:  "bands of a k-d cover of a planar graph have treewidth <= 3d",
		Header: []string{"target", "d", "bands", "max width", "3d", "valid"},
	}
	n := 3000
	if cfg.Quick {
		n = 600
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 101))
	targets := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", graph.Grid(intSqrt(n), intSqrt(n))},
		{"random planar", graph.RandomPlanar(n, 0.6, rng)},
		{"triangulation", graph.Apollonian(n, rng)},
	}
	allValid := true
	widthOK := true
	for _, tg := range targets {
		for _, d := range []int{1, 2, 3} {
			cov := cover.Build(tg.g, cover.Params{K: 4, D: d}, rng, nil)
			maxWidth := 0
			valid := true
			for _, b := range cov.Bands {
				td := treedecomp.Build(b.G, treedecomp.MinDegree)
				if err := treedecomp.Validate(b.G, td); err != nil {
					valid = false
				}
				if w := td.Width(); w > maxWidth {
					maxWidth = w
				}
			}
			if !valid {
				allValid = false
			}
			// The heuristic does not promise the exact 3d constant; the
			// shape check allows the paper's bound plus small slack.
			if maxWidth > 3*d+2 {
				widthOK = false
			}
			t.Row(tg.name, fmt.Sprint(d), fmt.Sprint(len(cov.Bands)),
				fmt.Sprint(maxWidth), fmt.Sprint(3*d), fmt.Sprint(valid))
		}
	}
	if allValid {
		t.Pass("every band decomposition satisfied the three axioms")
	} else {
		t.Fail("invalid decomposition produced")
	}
	if widthOK {
		t.Pass("band widths stayed within 3d+2 on every target")
	} else {
		t.Fail("band width exceeded 3d+2")
	}
	return t
}

// Fig2 regenerates the behaviour of Figure 2 and Lemma 2.3/Observation 1:
// Exponential Start Time β-Clustering cuts each edge with probability at
// most 1/β, produces clusters of diameter O(β log n), and (at β = 2k)
// keeps a fixed connected k-vertex occurrence intact with probability at
// least 1/2.
func Fig2(cfg Config) *Table {
	t := &Table{
		ID:     "Figure 2",
		Title:  "exponential start time clustering: edge-cut rate, diameter, survival",
		Claim:  "edge crossing prob <= 1/β; diameter O(β log n); occurrence survives w.p. >= 1/2 at β=2k",
		Header: []string{"β", "clusters", "cut frac", "1/β", "max diam", "β·lg n", "survival"},
	}
	side := 40
	trials := 40
	if cfg.Quick {
		side, trials = 20, 15
	}
	g := graph.Grid(side, side)
	n := g.N()
	lgn := math.Log2(float64(n))
	// Planted occurrence: the 4-cycle in the middle of the grid.
	mid := int32(side/2*side + side/2)
	occEdges := [][2]int32{
		{mid, mid + 1}, {mid + 1, mid + int32(side) + 1},
		{mid + int32(side) + 1, mid + int32(side)}, {mid + int32(side), mid},
	}
	cutOK, survOK := true, true
	for _, beta := range []float64{2, 4, 8, 16} {
		rng := rand.New(rand.NewPCG(cfg.Seed, uint64(beta*100)))
		totalCut, totalEdges := 0, 0
		clusters := 0
		maxDiam := 0
		survived := 0
		for trial := 0; trial < trials; trial++ {
			tr := wd.NewTracker()
			cl := estc.Cluster(g, beta, rng, tr)
			clusters += cl.NumClusters()
			totalCut += cl.CrossingEdges(g)
			totalEdges += g.M()
			if d := maxClusterDiameter(g, cl); d > maxDiam {
				maxDiam = d
			}
			intact := true
			for _, e := range occEdges {
				if cl.Owner[e[0]] != cl.Owner[e[1]] {
					intact = false
					break
				}
			}
			if intact {
				survived++
			}
		}
		cutFrac := float64(totalCut) / float64(totalEdges)
		surv := float64(survived) / float64(trials)
		// The union bound gives survival >= 1 - (k-1)/β; at β = 2k = 8 for
		// the planted C4 that is >= 5/8 > 1/2.
		if cutFrac > 1/beta {
			cutOK = false
		}
		if beta == 8 && surv < 0.5 {
			survOK = false
		}
		t.Row(fmt.Sprintf("%.0f", beta), fmt.Sprint(clusters/trials),
			fmt.Sprintf("%.4f", cutFrac), fmt.Sprintf("%.4f", 1/beta),
			fmt.Sprint(maxDiam), fmt.Sprintf("%.0f", beta*lgn),
			fmt.Sprintf("%.2f", surv))
	}
	if cutOK {
		t.Pass("measured edge-cut fraction stayed below 1/β at every β (Lemma 2.3)")
	} else {
		t.Fail("edge-cut fraction exceeded 1/β")
	}
	if survOK {
		t.Pass("planted C4 survived clustering w.p. >= 1/2 at β = 2k (Observation 1)")
	} else {
		t.Fail("survival below 1/2 at β = 2k")
	}
	return t
}

// maxClusterDiameter returns the largest eccentricity-from-center within
// any cluster (a diameter proxy: true diameter <= 2x this value).
func maxClusterDiameter(g *graph.Graph, cl *estc.Clustering) int {
	n := g.N()
	within := make([][]int32, cl.NumClusters())
	for v := 0; v < n; v++ {
		within[cl.Owner[v]] = append(within[cl.Owner[v]], int32(v))
	}
	maxd := 0
	for ci, members := range within {
		sub, orig := graph.Induce(g, members)
		// Find the center's local id.
		var src int32 = 0
		for li, ov := range orig {
			if ov == cl.Center[ci] {
				src = int32(li)
				break
			}
		}
		if e := graph.Eccentricity(sub, src); e > maxd {
			maxd = e
		}
	}
	return maxd
}

// Fig3 regenerates the behaviour of Figure 3 and Theorem 2.4: the
// parallel treewidth k-d cover keeps every vertex in at most d+1 bands,
// has total size O(dn), finds each occurrence with probability >= 1/2,
// and its in-cluster BFS round count stays O(k log n).
func Fig3(cfg Config) *Table {
	t := &Table{
		ID:     "Figure 3",
		Title:  "parallel treewidth k-d cover: multiplicity, size, survival, BFS rounds",
		Claim:  "multiplicity <= d+1 per vertex, total size O(dn), survival >= 1/2, BFS depth O(k log n)",
		Header: []string{"n", "d", "bands", "max mult", "d+1", "Σ|Gi|/n", "BFS rounds", "k·lg n", "survival"},
	}
	sizes := []int{1024, 4096, 16384}
	trials := 30
	if cfg.Quick {
		sizes = []int{256, 1024}
		trials = 10
	}
	k := 4
	multOK, survOK, roundsOK := true, true, true
	for _, n := range sizes {
		side := intSqrt(n)
		g := graph.Grid(side, side)
		mid := int32(side/2*side + side/2)
		occ := []int32{mid, mid + 1, mid + int32(side) + 1, mid + int32(side)}
		lgn := math.Log2(float64(g.N()))
		for _, d := range []int{2, 3} {
			rng := rand.New(rand.NewPCG(cfg.Seed, uint64(n*10+d)))
			maxMult, maxRounds := 0, 0
			var sizeRatio float64
			survived := 0
			for trial := 0; trial < trials; trial++ {
				cov := cover.Build(g, cover.Params{K: k, D: d}, rng, nil)
				mult := cov.Multiplicity(g.N())
				for _, m := range mult {
					if m > maxMult {
						maxMult = m
					}
				}
				if cov.BFSRounds > maxRounds {
					maxRounds = cov.BFSRounds
				}
				sizeRatio = float64(cov.TotalSize()) / float64(g.N())
				if coverContains(cov, occ) {
					survived++
				}
			}
			surv := float64(survived) / float64(trials)
			if maxMult > d+1 {
				multOK = false
			}
			if d >= 2 && surv < 0.5 {
				survOK = false
			}
			if float64(maxRounds) > 4*float64(k)*lgn {
				roundsOK = false
			}
			t.Row(fmt.Sprint(g.N()), fmt.Sprint(d), "-", fmt.Sprint(maxMult),
				fmt.Sprint(d+1), fmt.Sprintf("%.2f", sizeRatio),
				fmt.Sprint(maxRounds), fmt.Sprintf("%.0f", float64(k)*lgn),
				fmt.Sprintf("%.2f", surv))
		}
	}
	if multOK {
		t.Pass("vertex multiplicity never exceeded d+1 (Theorem 2.4)")
	} else {
		t.Fail("vertex multiplicity exceeded d+1")
	}
	if survOK {
		t.Pass("planted occurrence landed in a band w.p. >= 1/2 whenever d >= diam(H)")
	} else {
		t.Fail("survival below 1/2")
	}
	if roundsOK {
		t.Pass("in-cluster BFS round count stayed within 4·k·lg n")
	} else {
		t.Fail("BFS round count exceeded 4·k·lg n")
	}
	return t
}

func coverContains(cov *cover.Cover, occ []int32) bool {
	for _, b := range cov.Bands {
		present := 0
		for _, ov := range b.Orig {
			for _, o := range occ {
				if ov == o {
					present++
				}
			}
		}
		if present == len(occ) {
			return true
		}
	}
	return false
}

func intSqrt(n int) int {
	r := int(math.Sqrt(float64(n)))
	for r*r < n {
		r++
	}
	return r
}
