package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"

	"planarsi/internal/core"
	"planarsi/internal/graph"
	"planarsi/internal/naive"
)

// ListAll regenerates the Theorem 4.2 experiment: the listing algorithm
// finds *all* x occurrences w.h.p., using O(log x + log n) iterations,
// without knowing x in advance.
func ListAll(cfg Config) *Table {
	t := &Table{
		ID:     "Theorem 4.2",
		Title:  "listing all occurrences: completeness and iteration count",
		Claim:  "all x occurrences w.h.p.; O(log x + log n) iterations",
		Header: []string{"target", "n", "pattern", "x (oracle)", "x (listed)", "complete", "runs", "lg x + lg n"},
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 801))
	type instance struct {
		name string
		g    *graph.Graph
		h    *graph.Graph
	}
	side := 8
	if cfg.Quick {
		side = 5
	}
	instances := []instance{
		{"grid", graph.Grid(side, side), graph.Cycle(4)},
		{"grid", graph.Grid(side, side), graph.Path(3)},
		{"triangulation", graph.Apollonian(30, rng), graph.Cycle(3)},
		{"random planar", graph.RandomPlanar(60, 0.6, rng), graph.Path(4)},
	}
	completeAll, runsOK := true, true
	for _, in := range instances {
		oracle := naive.Search(in.g, in.h, naive.Options{})
		oracleKeys := make(map[string]struct{}, len(oracle))
		for _, a := range oracle {
			oracleKeys[core.Occurrence(a).Key()] = struct{}{}
		}
		var st core.Stats
		occs, err := core.List(in.g, in.h, core.Options{Seed: cfg.Seed, Stats: &st})
		if err != nil {
			t.Fail("%s: %v", in.name, err)
			continue
		}
		complete := len(occs) == len(oracleKeys)
		for _, o := range occs {
			if _, ok := oracleKeys[o.Key()]; !ok {
				complete = false
			}
		}
		if !complete {
			completeAll = false
		}
		x := len(oracleKeys)
		bound := math.Log2(float64(x)+2) + math.Log2(float64(in.g.N())+2)
		// The stopping rule needs ~1 productive phase plus the streak; a
		// generous constant covers the Θ(·) in the paper's bound.
		if float64(st.Runs) > 8*bound {
			runsOK = false
		}
		t.Row(in.name, fmt.Sprint(in.g.N()), patName(in.h), fmt.Sprint(x),
			fmt.Sprint(len(occs)), fmt.Sprint(complete), fmt.Sprint(st.Runs),
			fmt.Sprintf("%.0f", bound))
	}
	if completeAll {
		t.Pass("every occurrence set matched the oracle exactly (no misses, no spurious)")
	} else {
		t.Fail("listing missed or fabricated occurrences")
	}
	if runsOK {
		t.Pass("iteration counts stayed within ~8(lg x + lg n)")
	} else {
		t.Fail("iteration count exceeded the Theorem 4.2 shape")
	}
	return t
}

// Disconnected regenerates the Lemma 4.1 experiment: disconnected
// patterns found via random color splitting, with the repetition count
// scaling like l^k.
func Disconnected(cfg Config) *Table {
	t := &Table{
		ID:     "Lemma 4.1",
		Title:  "disconnected patterns via color splitting",
		Claim:  "O(l^k log n) extra repetitions for l components",
		Header: []string{"target n", "pattern", "l", "k", "oracle", "ours", "mean reps to hit"},
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 901))
	trials := 12
	if cfg.Quick {
		trials = 6
	}
	agreeAll := true
	type pat struct {
		name string
		h    *graph.Graph
	}
	pats := []pat{
		{"P2+P2", graph.DisjointUnion(graph.Path(2), graph.Path(2))},
		{"C3+P2", graph.DisjointUnion(graph.Cycle(3), graph.Path(2))},
		{"C3+C3", graph.DisjointUnion(graph.Cycle(3), graph.Cycle(3))},
	}
	for _, p := range pats {
		_, l := graph.Components(p.h)
		k := p.h.N()
		agree := 0
		for trial := 0; trial < trials; trial++ {
			g := graph.RandomPlanar(20+rng.IntN(30), 0.5+0.5*rng.Float64(), rng)
			want := naive.Decide(g, p.h)
			got, err := core.Decide(g, p.h, core.Options{Seed: cfg.Seed + uint64(trial)})
			if err != nil {
				t.Fail("%s: %v", p.name, err)
				continue
			}
			if got == want {
				agree++
			} else {
				agreeAll = false
			}
		}
		// Mean repetitions until a planted occurrence survives the
		// coloring: measured directly from the survival probability l^-k.
		meanReps := math.Pow(float64(l), float64(k))
		t.Row("random 20-50", p.name, fmt.Sprint(l), fmt.Sprint(k),
			fmt.Sprintf("%d/%d agree", agree, trials), "-",
			fmt.Sprintf("%.0f (=l^k)", meanReps))
	}
	// Empirical split-survival rate for a planted two-component
	// occurrence: both components keep their colors w.p. l^-k.
	g := graph.DisjointUnion(graph.Cycle(3), graph.Cycle(3))
	l, k := 2, 6
	colorTrials := 3000
	if cfg.Quick {
		colorTrials = 800
	}
	hits := 0
	for i := 0; i < colorTrials; i++ {
		ok := true
		for v := 0; v < 3; v++ {
			if rng.IntN(l) != 0 {
				ok = false
			}
		}
		for v := 3; v < 6; v++ {
			if rng.IntN(l) != 1 {
				ok = false
			}
		}
		if ok {
			hits++
		}
	}
	rate := float64(hits) / float64(colorTrials)
	want := math.Pow(float64(l), -float64(k))
	t.Row(fmt.Sprint(g.N()), "C3+C3 planted", fmt.Sprint(l), fmt.Sprint(k),
		fmt.Sprintf("survival %.4f", rate), fmt.Sprintf("theory %.4f", want), "-")
	if agreeAll {
		t.Pass("disconnected decisions agreed with the oracle on every trial")
	} else {
		t.Fail("disconnected decision disagreed with the oracle")
	}
	if math.Abs(rate-want) < 4*math.Sqrt(want/float64(colorTrials))+0.01 {
		t.Pass("coloring survival rate %.4f matches l^-k = %.4f", rate, want)
	} else {
		t.Fail("coloring survival rate %.4f far from l^-k = %.4f", rate, want)
	}
	return t
}

func patName(h *graph.Graph) string {
	k := h.N()
	switch {
	case h.M() == k-1 && graph.Diameter(h) == k-1:
		return fmt.Sprintf("P%d", k)
	case h.M() == k:
		return fmt.Sprintf("C%d", k)
	default:
		return fmt.Sprintf("H(%d,%d)", k, h.M())
	}
}
