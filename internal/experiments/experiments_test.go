package experiments

import (
	"strings"
	"testing"
)

// The experiments themselves are exercised end-to-end by cmd/paperbench;
// these tests pin the harness plumbing and run the cheapest experiments
// in quick mode to ensure their shape checks hold.

func TestTableRendering(t *testing.T) {
	tb := &Table{
		ID:     "Test",
		Title:  "rendering",
		Claim:  "claims are shown",
		Header: []string{"a", "bb"},
	}
	tb.Row("1", "2")
	tb.Pass("ok %d", 7)
	s := tb.String()
	for _, want := range []string{"Test", "rendering", "claims are shown", "a", "bb", "PASS: ok 7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
	if tb.Failed() {
		t.Fatal("table with only passes must not be failed")
	}
	tb.Fail("boom")
	if !tb.Failed() {
		t.Fatal("Fail must mark the table failed")
	}
}

func TestByNameCoversAll(t *testing.T) {
	for _, name := range Names() {
		if ByName(name) == nil {
			t.Fatalf("ByName(%q) = nil", name)
		}
	}
	if ByName("nope") != nil {
		t.Fatal("unknown name must return nil")
	}
}

func TestRatioSpread(t *testing.T) {
	if s := ratioSpread([]float64{2, 4, 8}); s != 4 {
		t.Fatalf("spread = %v, want 4", s)
	}
	if s := ratioSpread(nil); s != 1 {
		t.Fatalf("empty spread = %v, want 1", s)
	}
}

func TestQuickExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take seconds")
	}
	cfg := Config{Quick: true, Seed: 7}
	for _, exp := range []struct {
		name string
		run  func(Config) *Table
	}{
		{"fig1", Fig1},
		{"fig2", Fig2},
		{"fig4", Fig4},
		{"fig5", Fig5},
		{"ablation-shortcut", AblationShortcut},
	} {
		t.Run(exp.name, func(t *testing.T) {
			tb := exp.run(cfg)
			if tb.Failed() {
				t.Fatalf("shape check failed:\n%s", tb.String())
			}
			if len(tb.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
		})
	}
}
