// Package snap is the persistence subsystem: a versioned, endian-stable
// binary codec for the pipeline's reusable preprocessing artifacts —
// target graphs, ESTC clusterings, k-d cover bands, nice tree
// decompositions and prepared covers — packaged as an Index snapshot
// that the batch-query engine can save and restore.
//
// The paper front-loads work into exactly these artifacts (the
// clustering of Lemma 2.3, the cover of Theorem 2.4 and the band
// decompositions feeding Section 3's dynamic programs); planarsi.Index
// memoizes them in RAM, and this package makes them durable, so a
// restarted daemon warm-boots from disk instead of re-paying the
// O(d·n) preprocessing per pinned graph.
//
// # Format
//
// A snapshot is a fixed header followed by a strict sequence of
// sections:
//
//	header   8-byte magic "PLSISNAP", format version (uint32 LE)
//	section  tag (uint32 LE), payload length (uint32 LE),
//	         payload bytes, CRC-32/IEEE of the payload (uint32 LE)
//
// Sections appear in a fixed order (meta, graph, clusterings, plain
// covers, separating covers, end) and every one is mandatory, so a
// truncated file always fails with an explicit error. All integers are
// little-endian regardless of host; float64s are stored as their IEEE
// bit patterns.
//
// # Decoding discipline
//
// Snapshots are read from disk paths an operator controls, but the
// decoder still treats them as untrusted input (the gio parser's
// discipline): every count is bounds-checked against the bytes actually
// present before allocating, section payloads are read incrementally so
// a lying length field cannot force a large allocation, CRC mismatches
// and trailing garbage are rejected, and every decoded artifact is
// revalidated (graph.FromCSR, estc Validate, treedecomp CheckBounds +
// ValidateNice, cover Band.Validate) so a hostile file can produce an
// error but never a panic, an out-of-bounds index or an unbounded
// allocation.
package snap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// magic identifies a planarsi snapshot file.
const magic = "PLSISNAP"

// Version is the current snapshot format version. Readers reject other
// versions outright: artifacts are cheap to rebuild relative to the risk
// of misinterpreting a foreign layout. Version 2 added the lifetime
// sweep counter to the meta section; version 3 added the edit-epoch
// counter, so a warm boot resumes an index's mutation history.
const Version uint32 = 3

// Section tags, in their mandatory file order.
const (
	tagMeta uint32 = iota + 1
	tagGraph
	tagClusters
	tagPlain
	tagSep
	tagEnd
)

// maxSectionBytes caps a single section's declared payload length.
const maxSectionBytes = 1 << 30

// ErrFormat wraps every malformed-snapshot failure, so callers can
// distinguish a bad file from an I/O error with errors.Is.
var ErrFormat = errors.New("snap: malformed snapshot")

func formatErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrFormat, fmt.Sprintf(format, args...))
}

// enc accumulates one section's payload.
type enc struct {
	b []byte
}

func (e *enc) u8(v byte) { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) {
	e.b = binary.LittleEndian.AppendUint32(e.b, v)
}
func (e *enc) u64(v uint64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, v)
}
func (e *enc) i32(v int32)   { e.u32(uint32(v)) }
func (e *enc) i64(v int64)   { e.u64(uint64(v)) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *enc) i32s(v []int32) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.i32(x)
	}
}

func (e *enc) f64s(v []float64) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}

// bools writes an optional bool mask: a presence flag, then the length
// and the bit-packed values. nil and empty masks are distinguished
// (band semantics differ: a nil Allowed mask means "all allowed").
func (e *enc) bools(v []bool) {
	if v == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.u32(uint32(len(v)))
	e.b = append(e.b, packBits(v)...)
}

func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

func packBits(v []bool) []byte {
	out := make([]byte, (len(v)+7)/8)
	for i, x := range v {
		if x {
			out[i/8] |= 1 << uint(i%8)
		}
	}
	return out
}

// dec consumes one section's payload with a sticky error: after the
// first failure every further read returns zero values, and the caller
// checks err() once.
type dec struct {
	b   []byte
	e   error
	ctx string // section name for error messages
}

func (d *dec) fail(format string, args ...any) {
	if d.e == nil {
		d.e = formatErr("section %s: %s", d.ctx, fmt.Sprintf(format, args...))
	}
}

func (d *dec) take(n int) []byte {
	if d.e != nil {
		return nil
	}
	if len(d.b) < n {
		d.fail("need %d bytes, %d left", n, len(d.b))
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *dec) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *dec) i32() int32   { return int32(d.u32()) }
func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

// count reads an element count and verifies that count*elemBytes more
// payload bytes actually exist before the caller allocates — the
// over-allocation guard for every slice in the format.
func (d *dec) count(elemBytes int) int {
	v := d.u32()
	if d.e != nil {
		return 0
	}
	if elemBytes > 0 && int64(v)*int64(elemBytes) > int64(len(d.b)) {
		d.fail("declared %d elements of %d bytes, only %d bytes left", v, elemBytes, len(d.b))
		return 0
	}
	return int(v)
}

func (d *dec) i32s() []int32 {
	n := d.count(4)
	if d.e != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = d.i32()
	}
	return out
}

func (d *dec) f64s() []float64 {
	n := d.count(8)
	if d.e != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

func (d *dec) bools() []bool {
	if d.u8() == 0 {
		return nil
	}
	n := d.u32()
	if d.e != nil {
		return nil
	}
	nb := (int64(n) + 7) / 8
	if nb > int64(len(d.b)) {
		d.fail("declared %d packed bools, only %d bytes left", n, len(d.b))
		return nil
	}
	raw := d.take(int(nb))
	out := make([]bool, n)
	for i := range out {
		out[i] = raw[i/8]&(1<<uint(i%8)) != 0
	}
	return out
}

func (d *dec) str() string {
	n := d.count(1)
	if d.e != nil {
		return ""
	}
	return string(d.take(n))
}

// done rejects trailing garbage after a section's last field.
func (d *dec) done() error {
	if d.e == nil && len(d.b) > 0 {
		d.fail("%d trailing bytes", len(d.b))
	}
	return d.e
}

// writeSection frames one section: tag, length, payload, CRC.
func writeSection(w io.Writer, tag uint32, payload []byte) error {
	if len(payload) > maxSectionBytes {
		return fmt.Errorf("snap: section %d payload %d exceeds %d bytes", tag, len(payload), maxSectionBytes)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], tag)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(crc[:])
	return err
}

// readSection reads the next section, which must carry wantTag, and
// returns its CRC-verified payload. The payload is read incrementally
// (bytes.Buffer growth tracks bytes actually present), so a header
// declaring a huge length against a short file fails with ErrFormat
// instead of allocating the declared size up front.
func readSection(r io.Reader, wantTag uint32, name string) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, formatErr("section %s: truncated header: %v", name, err)
	}
	tag := binary.LittleEndian.Uint32(hdr[0:])
	if tag != wantTag {
		return nil, formatErr("section %s: tag %d, want %d", name, tag, wantTag)
	}
	n := binary.LittleEndian.Uint32(hdr[4:])
	if n > maxSectionBytes {
		return nil, formatErr("section %s: payload %d exceeds %d bytes", name, n, maxSectionBytes)
	}
	var buf bytes.Buffer
	if m, err := io.CopyN(&buf, r, int64(n)); err != nil {
		return nil, formatErr("section %s: payload truncated at %d of %d bytes", name, m, n)
	}
	var crcb [4]byte
	if _, err := io.ReadFull(r, crcb[:]); err != nil {
		return nil, formatErr("section %s: truncated CRC: %v", name, err)
	}
	payload := buf.Bytes()
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(crcb[:]); got != want {
		return nil, formatErr("section %s: CRC mismatch (%08x != %08x)", name, got, want)
	}
	return payload, nil
}

func writeHeader(w io.Writer) error {
	var hdr [12]byte
	copy(hdr[:8], magic)
	binary.LittleEndian.PutUint32(hdr[8:], Version)
	_, err := w.Write(hdr[:])
	return err
}

func readHeader(r io.Reader) error {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return formatErr("truncated file header: %v", err)
	}
	if string(hdr[:8]) != magic {
		return formatErr("bad magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != Version {
		return formatErr("format version %d, this build reads %d", v, Version)
	}
	return nil
}
