package snap

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecodeSnapshot feeds arbitrary bytes to the snapshot reader: it
// must either decode cleanly or return an error — never panic, and
// never allocate disproportionately to the input (the decoder's
// count-vs-remaining-bytes guards). Inputs that do decode must
// round-trip: re-encoding and re-decoding yields the same snapshot,
// the property the Index's save/load equivalence rests on.
func FuzzDecodeSnapshot(f *testing.F) {
	full := encode(f, makeSnapshot(f, 3, 3, 3, 1))
	f.Add(full)
	f.Add(full[:12])          // header only
	f.Add(full[:len(full)/2]) // mid-file truncation
	f.Add([]byte("PLSISNAP")) // magic, no version
	f.Add([]byte{})           // empty
	empty := &Snapshot{Options: testSnapshot(f).Options, Graph: testSnapshot(f).Graph}
	var buf bytes.Buffer
	if err := Write(&buf, empty); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		s, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, s); err != nil {
			t.Fatalf("decoded snapshot failed to re-encode: %v", err)
		}
		s2, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if s.Name != s2.Name || s.Queries != s2.Queries || s.Sweeps != s2.Sweeps || !s.Options.SameConfig(s2.Options) ||
			!reflect.DeepEqual(s.Graph, s2.Graph) ||
			len(s.Clusters) != len(s2.Clusters) || len(s.Plain) != len(s2.Plain) || len(s.Sep) != len(s2.Sep) {
			t.Fatalf("round trip through re-encode changed the snapshot")
		}
	})
}
