package snap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"reflect"
	"testing"

	"planarsi/internal/core"
	"planarsi/internal/graph"
)

// makeSnapshot builds a fully representative snapshot over an r-by-c
// grid target: one shared clustering, a plain prepared cover
// referencing it, and a separating cover.
func makeSnapshot(t testing.TB, r, c, k, d int) *Snapshot {
	t.Helper()
	g := graph.Grid(r, c)
	opt := core.Options{Seed: 7}
	beta := core.CoverBeta(k, opt)
	cl := core.ClusterRun(g, beta, 0, opt)
	plain := core.PrepareFromClustering(g, cl, k, d, opt)
	mask := make([]bool, g.N())
	last := g.N() - 1
	mask[0], mask[last] = true, true
	sep := core.PrepareSeparatingFromClustering(g, cl, mask, k, d, opt)
	packed := make([]byte, (g.N()+7)/8)
	packed[0] |= 1
	packed[last/8] |= 1 << (last % 8)

	return &Snapshot{
		Name:    "grid",
		Pinned:  true,
		Options: opt,
		Queries: 42,
		Sweeps:  17,
		Graph:   g,
		Clusters: []ClusterArtifact{{
			BetaBits: math.Float64bits(beta), Run: 0, Bytes: cl.MemBytes(), C: cl,
		}},
		Plain: []CoverArtifact{{
			K: k, D: d, Run: 0, Bytes: plain.MemBytes(), PC: plain,
		}},
		Sep: []CoverArtifact{{
			K: k, D: d, Run: 0, Bytes: sep.MemBytes(), Mask: string(packed), PC: sep,
		}},
	}
}

// testSnapshot is the default fixture for round-trip tests.
func testSnapshot(t testing.TB) *Snapshot { return makeSnapshot(t, 4, 4, 4, 2) }

// tinySnapshot keeps the exhaustive per-byte corruption sweeps fast.
func tinySnapshot(t testing.TB) *Snapshot { return makeSnapshot(t, 3, 3, 3, 1) }

func encode(t testing.TB, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	s := testSnapshot(t)
	data := encode(t, s)
	got, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Name != s.Name || got.Pinned != s.Pinned || got.Queries != s.Queries || got.Sweeps != s.Sweeps {
		t.Errorf("identity fields differ: %q/%v/%d/%d", got.Name, got.Pinned, got.Queries, got.Sweeps)
	}
	if !got.Options.SameConfig(s.Options) {
		t.Errorf("options differ: %+v vs %+v", got.Options, s.Options)
	}
	if !reflect.DeepEqual(got.Graph, s.Graph) {
		t.Errorf("graph differs after round trip")
	}
	if !reflect.DeepEqual(got.Clusters, s.Clusters) {
		t.Errorf("clusterings differ after round trip")
	}
	// Covers hold pointer-rich structures; compare by deep value.
	if len(got.Plain) != 1 || !reflect.DeepEqual(got.Plain[0].PC.Bands, s.Plain[0].PC.Bands) {
		t.Errorf("plain cover differs after round trip")
	}
	if len(got.Sep) != 1 || !reflect.DeepEqual(got.Sep[0].PC.Bands, s.Sep[0].PC.Bands) {
		t.Errorf("separating cover differs after round trip")
	}
	if got.Sep[0].Mask != s.Sep[0].Mask {
		t.Errorf("terminal mask differs after round trip")
	}
	// The cover's clustering must be restored as a pointer into the
	// shared table, exactly like the live Index's sharing.
	if got.Plain[0].PC.Cover.Clustering != got.Clusters[0].C {
		t.Errorf("plain cover does not share the table clustering")
	}
	if got.Plain[0].PC.Cover.BFSRounds != s.Plain[0].PC.Cover.BFSRounds {
		t.Errorf("BFSRounds differ after round trip")
	}
}

func TestWriteIsDeterministic(t *testing.T) {
	s := testSnapshot(t)
	a := encode(t, s)
	// Decode and re-encode: byte-identical output.
	got, err := Read(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	b := encode(t, got)
	if !bytes.Equal(a, b) {
		t.Fatalf("save -> load -> save is not byte-stable (%d vs %d bytes)", len(a), len(b))
	}
}

// TestRejectsBitFlips flips every byte of a valid snapshot in turn;
// each corrupted file must fail with ErrFormat (the magic, version,
// section framing, CRCs and validators together leave no byte that can
// change silently) and must never panic.
func TestRejectsBitFlips(t *testing.T) {
	data := encode(t, tinySnapshot(t))
	for i := range data {
		mut := bytes.Clone(data)
		mut[i] ^= 0xFF
		s, err := Read(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("byte %d/%d flipped: decode unexpectedly succeeded (%+v)", i, len(data), s.Name)
		}
		if !errors.Is(err, ErrFormat) {
			t.Fatalf("byte %d flipped: error %v does not wrap ErrFormat", i, err)
		}
	}
}

// TestRejectsTruncation cuts the file at every length; every prefix
// must be rejected cleanly.
func TestRejectsTruncation(t *testing.T) {
	data := encode(t, tinySnapshot(t))
	for i := 0; i < len(data); i++ {
		if _, err := Read(bytes.NewReader(data[:i])); err == nil {
			t.Fatalf("prefix of %d/%d bytes unexpectedly decoded", i, len(data))
		}
	}
	// Trailing garbage after a complete snapshot is tolerated (the
	// reader consumes exactly the snapshot), which keeps the format
	// streamable; assert the full file still decodes.
	if _, err := Read(bytes.NewReader(data)); err != nil {
		t.Fatalf("full file failed to decode: %v", err)
	}
}

// TestRejectsHugeDeclaredSection checks the over-allocation guard: a
// header declaring a section far larger than the file must fail
// without attempting the declared allocation.
func TestRejectsHugeDeclaredSection(t *testing.T) {
	var buf bytes.Buffer
	if err := writeHeader(&buf); err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], tagMeta)
	binary.LittleEndian.PutUint32(hdr[4:], maxSectionBytes) // 1 GiB claimed, 0 present
	buf.Write(hdr[:])
	if _, err := Read(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrFormat) {
		t.Fatalf("got %v, want ErrFormat", err)
	}
	// Over the cap entirely.
	binary.LittleEndian.PutUint32(hdr[4:], maxSectionBytes+1)
	var buf2 bytes.Buffer
	_ = writeHeader(&buf2)
	buf2.Write(hdr[:])
	if _, err := Read(bytes.NewReader(buf2.Bytes())); !errors.Is(err, ErrFormat) {
		t.Fatalf("got %v, want ErrFormat", err)
	}
}

func TestRejectsWrongMagicAndVersion(t *testing.T) {
	data := encode(t, testSnapshot(t))
	bad := bytes.Clone(data)
	copy(bad, "NOTASNAP")
	if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrFormat) {
		t.Fatalf("bad magic: got %v", err)
	}
	bad = bytes.Clone(data)
	binary.LittleEndian.PutUint32(bad[8:], Version+1)
	if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrFormat) {
		t.Fatalf("future version: got %v", err)
	}
}

func TestEmptySnapshotRoundTrip(t *testing.T) {
	s := &Snapshot{Options: core.Options{Seed: 3}, Graph: graph.Path(5)}
	got, err := Read(bytes.NewReader(encode(t, s)))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Graph.N() != 5 || len(got.Clusters)+len(got.Plain)+len(got.Sep) != 0 {
		t.Fatalf("empty snapshot round trip mismatch: %+v", got)
	}
}
