package snap

import (
	"fmt"
	"io"
	"math"

	"planarsi/internal/core"
	"planarsi/internal/cover"
	"planarsi/internal/estc"
	"planarsi/internal/graph"
	"planarsi/internal/match"
	"planarsi/internal/treedecomp"
)

// ClusterArtifact is one memoized ESTC clustering with its cache key
// ((beta bits, run) — the Index's clusterKey) and its accounted
// footprint. Bytes is carried verbatim so a restored Index reports
// byte-identical Stats to the one that saved it.
type ClusterArtifact struct {
	BetaBits uint64
	Run      int
	Bytes    int64
	C        *estc.Clustering
}

// CoverArtifact is one memoized prepared cover with its cache key. Mask
// is the packed terminal set of separating covers (the Index's sepKey
// string) and empty for plain covers.
type CoverArtifact struct {
	K, D, Run int
	Bytes     int64
	Mask      string
	PC        *core.PreparedCover
}

// Snapshot is the decoded form of a snapshot file: a target graph, the
// pipeline configuration its artifacts were built under, and the
// memoized artifact tables of an Index. Name and Pinned carry the
// serving layer's registry identity (empty/false for bare Index
// snapshots). Every artifact a Read returns has been revalidated, and
// every clustering referenced by a cover is resolved to a shared
// pointer, exactly as in the live Index that saved it.
type Snapshot struct {
	Name    string
	Pinned  bool
	Options core.Options
	Queries uint64
	Sweeps  uint64
	// Epoch is the Index's edit-generation counter at save time, so a
	// warm boot resumes the mutation history where the saved process
	// left it (format v3).
	Epoch uint64
	Graph *graph.Graph

	Clusters []ClusterArtifact
	Plain    []CoverArtifact
	Sep      []CoverArtifact
}

func encodeGraph(e *enc, g *graph.Graph) {
	off, adj, embedded, x, y := g.RawCSR()
	e.i32s(off)
	e.i32s(adj)
	var flags byte
	if embedded {
		flags |= 1
	}
	if x != nil {
		flags |= 2
	}
	e.u8(flags)
	if x != nil {
		e.f64s(x)
		e.f64s(y)
	}
}

func decodeGraph(d *dec) *graph.Graph {
	off := d.i32s()
	adj := d.i32s()
	flags := d.u8()
	var x, y []float64
	if flags&2 != 0 {
		x = d.f64s()
		y = d.f64s()
	}
	if d.e != nil {
		return nil
	}
	if flags&^byte(3) != 0 {
		d.fail("unknown graph flags %#x", flags)
		return nil
	}
	g, err := graph.FromCSR(off, adj, flags&1 != 0, x, y)
	if err != nil {
		d.fail("%v", err)
		return nil
	}
	return g
}

func encodeClustering(e *enc, c *estc.Clustering) {
	e.i32s(c.Owner)
	e.i32s(c.Center)
	e.u32(uint32(c.Rounds))
}

func decodeClustering(d *dec, n int) *estc.Clustering {
	c := &estc.Clustering{Owner: d.i32s(), Center: d.i32s(), Rounds: int(d.u32())}
	if d.e != nil {
		return nil
	}
	// The wire Owner of an empty clustering decodes as a non-nil empty
	// slice; normalize to the in-memory form estc.Cluster builds.
	if len(c.Owner) == 0 {
		c.Owner = nil
	}
	if len(c.Center) == 0 {
		c.Center = nil
	}
	if err := c.Validate(n); err != nil {
		d.fail("%v", err)
		return nil
	}
	return c
}

func encodeNice(e *enc, nd *treedecomp.Nice) {
	e.u32(uint32(len(nd.Kind)))
	for _, k := range nd.Kind {
		e.u8(byte(k))
	}
	e.i32s(nd.Vertex)
	e.u32(uint32(len(nd.Bag)))
	for _, bag := range nd.Bag {
		e.i32s(bag)
	}
	e.i32s(nd.Left)
	e.i32s(nd.Right)
	e.i32s(nd.Parent)
	e.i32(nd.Root)
	e.i32s(nd.Order)
	e.i32(int32(nd.Width))
}

func decodeNice(d *dec, n int) *treedecomp.Nice {
	nodes := d.count(1)
	if d.e != nil {
		return nil
	}
	kinds := make([]treedecomp.NodeKind, nodes)
	raw := d.take(nodes)
	for i := range kinds {
		kinds[i] = treedecomp.NodeKind(raw[i])
	}
	nd := &treedecomp.Nice{Kind: kinds, Vertex: d.i32s()}
	bags := d.count(4)
	if d.e != nil {
		return nil
	}
	nd.Bag = make([][]int32, bags)
	for i := range nd.Bag {
		nd.Bag[i] = d.i32s()
	}
	nd.Left = d.i32s()
	nd.Right = d.i32s()
	nd.Parent = d.i32s()
	nd.Root = d.i32()
	nd.Order = d.i32s()
	nd.Width = int(d.i32())
	if d.e != nil {
		return nil
	}
	if err := nd.CheckBounds(n); err != nil {
		d.fail("%v", err)
		return nil
	}
	if err := treedecomp.ValidateNice(nd); err != nil {
		d.fail("%v", err)
		return nil
	}
	return nd
}

func encodeBand(e *enc, b *cover.Band) {
	encodeGraph(e, b.G)
	e.i32s(b.Orig)
	e.i32(b.Cluster)
	e.i32(b.Level)
	e.bools(b.Allowed)
	e.bools(b.S)
	e.bools(b.LowestLevelLocal)
}

func decodeBand(d *dec, targetN int) *cover.Band {
	b := &cover.Band{
		G:       decodeGraph(d),
		Orig:    d.i32s(),
		Cluster: d.i32(),
		Level:   d.i32(),
	}
	b.Allowed = d.bools()
	b.S = d.bools()
	b.LowestLevelLocal = d.bools()
	if d.e != nil {
		return nil
	}
	if err := b.Validate(targetN); err != nil {
		d.fail("%v", err)
		return nil
	}
	return b
}

const (
	pbFallback byte = 1 << iota
	pbHasND
)

func encodePreparedBand(e *enc, pb *core.PreparedBand) error {
	if pb.Band == nil {
		return fmt.Errorf("snap: prepared band without a cover band (cancelled prepare leaked into a cache)")
	}
	var flags byte
	if pb.Fallback {
		flags |= pbFallback
	}
	if pb.ND != nil {
		flags |= pbHasND
	}
	e.u8(flags)
	encodeBand(e, pb.Band)
	if pb.ND != nil {
		encodeNice(e, pb.ND)
	}
	e.i32(int32(pb.Width))
	return nil
}

func decodePreparedBand(d *dec, targetN int) core.PreparedBand {
	flags := d.u8()
	pb := core.PreparedBand{
		Band:     decodeBand(d, targetN),
		Fallback: flags&pbFallback != 0,
	}
	if flags&pbHasND != 0 {
		if pb.Band != nil {
			pb.ND = decodeNice(d, pb.Band.G.N())
		}
	}
	pb.Width = int(d.i32())
	if d.e != nil {
		return core.PreparedBand{}
	}
	if flags&^(pbFallback|pbHasND) != 0 {
		d.fail("unknown prepared-band flags %#x", flags)
		return core.PreparedBand{}
	}
	// The engines dispatch on exactly this invariant: a band either
	// carries a decomposition the DP can run (bag fits the engine) or is
	// marked for the naive fallback. Anything else would panic mid-query.
	if pb.Fallback == (pb.ND != nil) {
		d.fail("prepared band must have a decomposition XOR the fallback mark")
		return core.PreparedBand{}
	}
	if pb.ND != nil && pb.ND.Width+1 > match.MaxBag {
		d.fail("band decomposition width %d exceeds engine capacity %d", pb.ND.Width, match.MaxBag-1)
		return core.PreparedBand{}
	}
	return pb
}

// encodePreparedCover writes a prepared cover. The clustering is not
// embedded: clusterRef indexes the snapshot's shared clustering table
// (-1 followed by an inline clustering covers the off-table case), so
// the clustering shared by many covers is stored once, mirroring the
// pointer sharing of the live Index.
func encodePreparedCover(e *enc, pc *core.PreparedCover, refs map[*estc.Clustering]int32) error {
	ref := int32(-1)
	if pc.Cover != nil && pc.Cover.Clustering != nil {
		if i, ok := refs[pc.Cover.Clustering]; ok {
			ref = i
		}
	}
	e.i32(ref)
	if ref < 0 {
		if pc.Cover == nil || pc.Cover.Clustering == nil {
			return fmt.Errorf("snap: prepared cover without a clustering")
		}
		encodeClustering(e, pc.Cover.Clustering)
	}
	e.u32(uint32(len(pc.Bands)))
	for i := range pc.Bands {
		if err := encodePreparedBand(e, &pc.Bands[i]); err != nil {
			return err
		}
	}
	e.u32(uint32(pc.Cover.BFSRounds))
	return nil
}

func decodePreparedCover(d *dec, targetN int, clusters []ClusterArtifact) *core.PreparedCover {
	ref := d.i32()
	var cl *estc.Clustering
	switch {
	case d.e != nil:
		return nil
	case ref >= 0:
		if int(ref) >= len(clusters) {
			d.fail("clustering ref %d outside table of %d", ref, len(clusters))
			return nil
		}
		cl = clusters[ref].C
	case ref == -1:
		cl = decodeClustering(d, targetN)
	default:
		d.fail("negative clustering ref %d", ref)
		return nil
	}
	// A minimal encoded prepared band (flags, one-vertex graph, Orig,
	// cluster/level, mask flags, width) occupies well over 16 payload
	// bytes, so this bounds the band count by the bytes actually
	// present; the slice then grows with the decoded data rather than
	// being pre-reserved against a declared count.
	nb := d.count(16)
	if d.e != nil {
		return nil
	}
	pc := &core.PreparedCover{Cover: &cover.Cover{Clustering: cl}}
	for i := 0; i < nb; i++ {
		pb := decodePreparedBand(d, targetN)
		if d.e != nil {
			return nil
		}
		pc.Bands = append(pc.Bands, pb)
		pc.Cover.Bands = append(pc.Cover.Bands, pb.Band)
	}
	pc.Cover.BFSRounds = int(d.u32())
	if d.e != nil {
		return nil
	}
	return pc
}

func encodeOptions(e *enc, o core.Options) {
	e.u64(o.Seed)
	e.i32(int32(o.Engine))
	e.i32(int32(o.MaxRuns))
	e.i32(int32(o.Heuristic))
	e.f64(o.Beta)
}

func decodeOptions(d *dec) core.Options {
	o := core.Options{
		Seed:      d.u64(),
		Engine:    core.Engine(d.i32()),
		MaxRuns:   int(d.i32()),
		Heuristic: treedecomp.Heuristic(d.i32()),
		Beta:      d.f64(),
	}
	if d.e != nil {
		return core.Options{}
	}
	if o.Engine < core.EngineAuto || o.Engine > core.EnginePathDAG {
		d.fail("unknown engine %d", o.Engine)
	}
	if o.Heuristic < treedecomp.MinDegree || o.Heuristic > treedecomp.MinFill {
		d.fail("unknown heuristic %d", o.Heuristic)
	}
	if o.MaxRuns < 0 {
		d.fail("negative MaxRuns %d", o.MaxRuns)
	}
	if math.IsNaN(o.Beta) || o.Beta < 0 {
		d.fail("invalid beta %v", o.Beta)
	}
	return o
}

// Write serializes a snapshot. Artifact lists are written in the order
// given; callers that want byte-stable output (the Index does) sort
// them by key first.
func Write(w io.Writer, s *Snapshot) error {
	if s.Graph == nil {
		return fmt.Errorf("snap: snapshot without a target graph")
	}
	if err := writeHeader(w); err != nil {
		return err
	}

	var e enc
	e.str(s.Name)
	if s.Pinned {
		e.u8(1)
	} else {
		e.u8(0)
	}
	encodeOptions(&e, s.Options)
	e.u64(s.Queries)
	e.u64(s.Sweeps)
	e.u64(s.Epoch)
	if err := writeSection(w, tagMeta, e.b); err != nil {
		return err
	}

	e = enc{}
	encodeGraph(&e, s.Graph)
	if err := writeSection(w, tagGraph, e.b); err != nil {
		return err
	}

	e = enc{}
	refs := make(map[*estc.Clustering]int32, len(s.Clusters))
	e.u32(uint32(len(s.Clusters)))
	for i, ca := range s.Clusters {
		e.u64(ca.BetaBits)
		e.i32(int32(ca.Run))
		e.i64(ca.Bytes)
		encodeClustering(&e, ca.C)
		refs[ca.C] = int32(i)
	}
	if err := writeSection(w, tagClusters, e.b); err != nil {
		return err
	}

	for _, sec := range []struct {
		tag  uint32
		list []CoverArtifact
		sep  bool
	}{{tagPlain, s.Plain, false}, {tagSep, s.Sep, true}} {
		e = enc{}
		e.u32(uint32(len(sec.list)))
		for _, ca := range sec.list {
			e.i32(int32(ca.K))
			e.i32(int32(ca.D))
			e.i32(int32(ca.Run))
			e.i64(ca.Bytes)
			if sec.sep {
				e.str(ca.Mask)
			}
			if err := encodePreparedCover(&e, ca.PC, refs); err != nil {
				return err
			}
		}
		if err := writeSection(w, sec.tag, e.b); err != nil {
			return err
		}
	}

	return writeSection(w, tagEnd, nil)
}

// Read decodes and revalidates a snapshot. Any structural problem —
// truncation, a CRC mismatch, an out-of-range index, an artifact
// violating the pipeline's invariants — fails with an error wrapping
// ErrFormat; decoding never panics and never allocates more than a
// small factor of the bytes actually read.
func Read(r io.Reader) (*Snapshot, error) {
	if err := readHeader(r); err != nil {
		return nil, err
	}
	s := &Snapshot{}

	payload, err := readSection(r, tagMeta, "meta")
	if err != nil {
		return nil, err
	}
	d := &dec{b: payload, ctx: "meta"}
	s.Name = d.str()
	pinned := d.u8()
	s.Options = decodeOptions(d)
	s.Queries = d.u64()
	s.Sweeps = d.u64()
	s.Epoch = d.u64()
	if pinned > 1 {
		d.fail("bad pinned flag %d", pinned)
	}
	s.Pinned = pinned == 1
	if err := d.done(); err != nil {
		return nil, err
	}

	if payload, err = readSection(r, tagGraph, "graph"); err != nil {
		return nil, err
	}
	d = &dec{b: payload, ctx: "graph"}
	s.Graph = decodeGraph(d)
	if err := d.done(); err != nil {
		return nil, err
	}
	n := s.Graph.N()

	if payload, err = readSection(r, tagClusters, "clusters"); err != nil {
		return nil, err
	}
	d = &dec{b: payload, ctx: "clusters"}
	nc := d.count(1)
	for i := 0; i < nc && d.e == nil; i++ {
		ca := ClusterArtifact{
			BetaBits: d.u64(),
			Run:      int(d.i32()),
			Bytes:    d.i64(),
		}
		ca.C = decodeClustering(d, n)
		if d.e != nil {
			break
		}
		if beta := math.Float64frombits(ca.BetaBits); math.IsNaN(beta) || math.IsInf(beta, 0) || beta <= 0 {
			d.fail("clustering %d: invalid beta key %v", i, beta)
			break
		}
		if ca.Run < 0 || ca.Bytes < 0 {
			d.fail("clustering %d: negative run %d or bytes %d", i, ca.Run, ca.Bytes)
			break
		}
		s.Clusters = append(s.Clusters, ca)
	}
	if err := d.done(); err != nil {
		return nil, err
	}

	for _, sec := range []struct {
		tag  uint32
		name string
		sep  bool
		dst  *[]CoverArtifact
	}{{tagPlain, "plain", false, &s.Plain}, {tagSep, "sep", true, &s.Sep}} {
		if payload, err = readSection(r, sec.tag, sec.name); err != nil {
			return nil, err
		}
		d = &dec{b: payload, ctx: sec.name}
		ncov := d.count(1)
		for i := 0; i < ncov && d.e == nil; i++ {
			ca := CoverArtifact{
				K:     int(d.i32()),
				D:     int(d.i32()),
				Run:   int(d.i32()),
				Bytes: d.i64(),
			}
			if sec.sep {
				ca.Mask = d.str()
			}
			ca.PC = decodePreparedCover(d, n, s.Clusters)
			if d.e != nil {
				break
			}
			if ca.K < 0 || ca.D < 0 || ca.Run < 0 || ca.Bytes < 0 {
				d.fail("cover %d: negative key field", i)
				break
			}
			if sec.sep && len(ca.Mask) != (n+7)/8 {
				d.fail("cover %d: terminal mask holds %d bytes, want %d", i, len(ca.Mask), (n+7)/8)
				break
			}
			*sec.dst = append(*sec.dst, ca)
		}
		if err := d.done(); err != nil {
			return nil, err
		}
	}

	if payload, err = readSection(r, tagEnd, "end"); err != nil {
		return nil, err
	}
	if len(payload) != 0 {
		return nil, formatErr("section end: nonempty payload")
	}
	return s, nil
}
