package index

// Live-graph mutation: ApplyEdits applies a batch of edge insertions and
// deletions to the Index's target, advancing it to a new generation
// (epoch + 1) whose artifact tables are migrated copy-on-write from the
// old one.
//
// Migration is surgical but answer-preserving. For every completed memo
// entry the cheap geometry is recomputed on the edited graph —
// clusterings are a pure function of (Seed, stream, run) and O(n) to
// rebuild, cover band-cutting is one BFS per cluster — and diffed
// against the old generation. The expensive artifacts (the nice tree
// decompositions of the bands) are reused exactly when their band is
// bit-identical to its predecessor, rebuilt otherwise. An entry whose
// every part survived keeps its old pointer outright, so its snapshot
// bytes are verbatim those of the previous generation. Because reuse
// requires bit-identity and every rebuild follows the fresh-build code
// path, the migrated generation is indistinguishable from an Index built
// from scratch on the edited graph: same artifacts, same answers, same
// snapshot bytes.
//
// In-flight queries are never disturbed: they pinned the old generation
// and drain against it (see generation.go); the swap only decides what
// later queries see.

import (
	"errors"
	"fmt"
	"math"
	"time"

	"planarsi/internal/core"
	"planarsi/internal/estc"
	"planarsi/internal/planarity"
)

// ErrEpochConflict is returned by ApplyEdits when the batch named an
// IfEpoch that is no longer the Index's current epoch — a concurrent
// editor won the race. The serving layer maps it to HTTP 409.
var ErrEpochConflict = errors.New("index: epoch conflict")

// ErrNonPlanarEdit is returned by ApplyEdits when RequirePlanar is set
// and the edited graph would not be planar. The Index is left unchanged.
var ErrNonPlanarEdit = errors.New("index: edit batch would make the target non-planar")

// EditBatch is one atomic set of edge edits. Removals are applied before
// additions (an edge may be removed and re-added in one batch);
// validation is all-or-nothing — any invalid edit rejects the whole
// batch with an error wrapping graph.ErrEdit and the Index unchanged.
type EditBatch struct {
	// Add and Remove list undirected edges as (u, v) vertex-id pairs
	// over the target's fixed vertex set.
	Add    [][2]int32 `json:"add,omitempty"`
	Remove [][2]int32 `json:"remove,omitempty"`
	// RequirePlanar rejects the batch (ErrNonPlanarEdit) if the edited
	// graph would lose planarity — the Theorem 2.4 work guarantee only
	// holds for planar targets.
	RequirePlanar bool `json:"requirePlanar,omitempty"`
	// IfEpoch, when non-nil, makes the batch conditional: it applies
	// only if the Index is still at that epoch (optimistic concurrency
	// for multiple writers; ErrEpochConflict otherwise).
	IfEpoch *uint64 `json:"ifEpoch,omitempty"`
}

// ClassDelta reports, for one artifact class, how many migrated entries
// were kept verbatim vs rebuilt by an edit batch.
type ClassDelta struct {
	Kept    int `json:"kept"`
	Rebuilt int `json:"rebuilt"`
}

// EditResult describes one applied batch: the new epoch and the
// per-class migration work. Bands counts individual band decompositions
// across all migrated covers — the unit the "surgical invalidation"
// claim is measured in: Bands.Rebuilt stays proportional to the
// edit's locality, not to the target size.
type EditResult struct {
	// Epoch is the Index's epoch after the batch (previous epoch + 1).
	Epoch uint64 `json:"epoch"`
	// Added and Removed count the applied edits.
	Added   int `json:"added"`
	Removed int `json:"removed"`
	// Clusterings, PlainCovers and SeparatingCovers describe migrated
	// memo entries; Bands describes band decompositions within the
	// migrated covers.
	Clusterings      ClassDelta `json:"clusterings"`
	PlainCovers      ClassDelta `json:"plainCovers"`
	SeparatingCovers ClassDelta `json:"separatingCovers"`
	Bands            ClassDelta `json:"bands"`
}

// ApplyEdits applies one batch of edge edits, advancing the Index to a
// new epoch. On success later queries run against the edited graph with
// every unaffected artifact retained; queries already in flight finish
// against the pre-edit generation. On any error the Index is unchanged:
// a batch failing validation wraps graph.ErrEdit, a stale IfEpoch wraps
// ErrEpochConflict, a planarity-violating batch under RequirePlanar
// returns ErrNonPlanarEdit.
//
// Concurrent ApplyEdits calls serialize; concurrent queries, Save and
// Stats need no coordination (they pin whichever generation is current
// when they start). Post-edit answers are byte-identical to those of a
// fresh Index built on the edited graph with the same Options.
func (ix *Index) ApplyEdits(b EditBatch) (EditResult, error) {
	ix.editMu.Lock()
	defer ix.editMu.Unlock()

	old := ix.cur.Load()
	if b.IfEpoch != nil && *b.IfEpoch != old.epoch {
		return EditResult{Epoch: old.epoch}, fmt.Errorf(
			"%w: batch conditioned on epoch %d, index at %d", ErrEpochConflict, *b.IfEpoch, old.epoch)
	}
	g2, err := old.g.WithEdits(b.Add, b.Remove)
	if err != nil {
		return EditResult{Epoch: old.epoch}, err
	}
	if b.RequirePlanar && !planarity.IsPlanar(g2) {
		return EditResult{Epoch: old.epoch}, ErrNonPlanarEdit
	}

	t0 := time.Now()
	next := ix.newGeneration(old.epoch+1, g2)
	res := EditResult{Epoch: next.epoch, Added: len(b.Add), Removed: len(b.Remove)}
	ix.migrate(old, next, &res)
	ix.memo[memoEpoch].buildNanos.Add(time.Since(t0).Nanoseconds())

	ix.cur.Store(next)
	ix.retire(old)
	return res, nil
}

// migrate carries every completed memo entry of old into next, keeping
// it verbatim when the edit did not touch it and rebuilding it through
// the fresh-build code path otherwise. Entries still under construction
// are skipped, exactly as Snapshot skips them: their builders publish
// into the old generation, and a later query against next rebuilds them
// on demand, bit-identically.
func (ix *Index) migrate(old, next *generation, res *EditResult) {
	// Snapshot old's completed entries under its lock; construction of
	// next needs no locks (it is unpublished and editMu serializes us).
	old.mu.Lock()
	clusters := make(map[clusterKey]*clusterEntry, len(old.clusters))
	for key, e := range old.clusters {
		if e.done.Load() {
			clusters[key] = e
		}
	}
	plain := make(map[coverKey]*coverEntry, len(old.plain))
	for key, e := range old.plain {
		if e.done.Load() {
			plain[key] = e
		}
	}
	sep := make(map[sepKey]*coverEntry, len(old.sep))
	for key, e := range old.sep {
		if e.done.Load() {
			sep[key] = e
		}
	}
	old.mu.Unlock()

	// Clusterings first: covers share them, and the kept/rebuilt
	// decision below wants the migrated pointer.
	for key, e := range clusters {
		beta := math.Float64frombits(key.betaBits)
		cl2 := core.ClusterRun(next.g, beta, key.run, ix.opt)
		if e.cl.Equal(cl2) {
			next.clusters[key] = e
			res.Clusterings.Kept++
			ix.inval[invalClustering].retained.Add(1)
		} else {
			next.clusters[key] = newDoneClusterEntry(cl2)
			res.Clusterings.Rebuilt++
			ix.inval[invalClustering].invalidated.Add(1)
		}
	}

	for key, e := range plain {
		cl := ix.migratedClustering(next, core.CoverBeta(key.k, ix.opt), key.run, res)
		pc2, kept, rebuilt := core.RefreshPrepared(next.g, cl, e.pc, key.k, key.d, ix.opt)
		ix.countBands(res, kept, rebuilt)
		if coverSurvived(e, pc2, rebuilt) {
			next.plain[key] = e
			res.PlainCovers.Kept++
			ix.inval[invalCover].retained.Add(1)
		} else {
			next.plain[key] = newDoneCoverEntry(pc2)
			res.PlainCovers.Rebuilt++
			ix.inval[invalCover].invalidated.Add(1)
		}
	}

	for key, e := range sep {
		cl := ix.migratedClustering(next, core.CoverBeta(key.k, ix.opt), key.run, res)
		s := unpackMask(key.s, next.g.N())
		pc2, kept, rebuilt := core.RefreshPreparedSeparating(next.g, cl, s, e.pc, key.k, key.d, ix.opt)
		ix.countBands(res, kept, rebuilt)
		if coverSurvived(e, pc2, rebuilt) {
			next.sep[key] = e
			res.SeparatingCovers.Kept++
			ix.inval[invalSeparating].retained.Add(1)
		} else {
			next.sep[key] = newDoneCoverEntry(pc2)
			res.SeparatingCovers.Rebuilt++
			ix.inval[invalSeparating].invalidated.Add(1)
		}
	}
}

// countBands accumulates one refreshed cover's band reuse into the batch
// result and the lifetime counters.
func (ix *Index) countBands(res *EditResult, kept, rebuilt int) {
	res.Bands.Kept += kept
	res.Bands.Rebuilt += rebuilt
	ix.inval[invalBand].retained.Add(uint64(kept))
	ix.inval[invalBand].invalidated.Add(uint64(rebuilt))
}

// coverSurvived decides whether a migrated cover entry can be kept
// verbatim: every band was reused, none appeared or disappeared, and the
// cover-level metadata (inducing clustering, BFS depth proxy) is
// unchanged. The refreshed cover pc2 references old band pointers for
// every kept band, so these checks make old and new bit-identical.
func coverSurvived(e *coverEntry, pc2 *core.PreparedCover, rebuilt int) bool {
	return rebuilt == 0 &&
		len(pc2.Bands) == len(e.pc.Bands) &&
		pc2.Cover.Clustering == e.pc.Cover.Clustering &&
		pc2.Cover.BFSRounds == e.pc.Cover.BFSRounds
}

// migratedClustering returns next's clustering for (beta, run), building
// and installing it if cover migration reaches it before any clustering
// entry did (possible when the old generation memoized a cover but not
// its clustering, e.g. after a partial snapshot restore). A build here
// counts as a rebuilt clustering.
func (ix *Index) migratedClustering(next *generation, beta float64, run int, res *EditResult) *estc.Clustering {
	key := clusterKey{math.Float64bits(beta), run}
	if e, ok := next.clusters[key]; ok {
		return e.cl
	}
	cl := core.ClusterRun(next.g, beta, run, ix.opt)
	next.clusters[key] = newDoneClusterEntry(cl)
	res.Clusterings.Rebuilt++
	ix.inval[invalClustering].invalidated.Add(1)
	return cl
}

// newDoneClusterEntry wraps a freshly built clustering as a completed
// memo entry (the once pre-fired, as FromSnapshot does).
func newDoneClusterEntry(cl *estc.Clustering) *clusterEntry {
	e := &clusterEntry{}
	e.once.Do(func() {
		e.cl = cl
		e.bytes = cl.MemBytes()
		e.done.Store(true)
	})
	return e
}

// newDoneCoverEntry wraps a refreshed prepared cover as a completed memo
// entry.
func newDoneCoverEntry(pc *core.PreparedCover) *coverEntry {
	e := &coverEntry{}
	e.once.Do(func() {
		e.pc = pc
		e.bytes = pc.MemBytes()
		e.bands = len(pc.Bands)
		e.done.Store(true)
	})
	return e
}
