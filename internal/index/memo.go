package index

import "sync/atomic"

// Memo-cache observability: per-artifact-class hit/miss/build-time
// counters, kept out of Stats deliberately — Stats describes cache
// *contents* and round-trips through snapshots byte-identically, while
// these counters describe cache *traffic* and restart from zero with
// the process. The serving layer exports them as the
// planarsi_index_memo_* metric families.

// Artifact classes, in the order MemoStats reports them.
const (
	memoClustering = iota
	memoPlainCover
	memoSepCover
	memoPattern
	numMemoClasses
)

var memoClassNames = [numMemoClasses]string{"clustering", "cover", "separating", "pattern"}

// memoCounters is one artifact class's traffic counters.
type memoCounters struct {
	hits       atomic.Uint64
	misses     atomic.Uint64
	buildNanos atomic.Int64
}

// touch records one cache access.
func (m *memoCounters) touch(hit bool) {
	if hit {
		m.hits.Add(1)
	} else {
		m.misses.Add(1)
	}
}

// MemoStats is one artifact class's cache-traffic snapshot.
type MemoStats struct {
	// Class names the artifact class: "clustering" (ESTC clusterings),
	// "cover" (plain prepared covers), "separating" (separating
	// prepared covers), "pattern" (compiled patterns keyed by canonical
	// form).
	Class string `json:"class"`
	// Hits counts accesses that found a fully built entry; Misses
	// counts the rest (entry absent, still building, or past the run
	// budget and deliberately uncached).
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// BuildSeconds totals wall time spent inside this class's builds.
	// Cover builds include the time of a clustering build they trigger,
	// so classes overlap: the column prices each class's critical path,
	// not a partition of CPU time.
	BuildSeconds float64 `json:"buildSeconds"`
	// Bytes and Entries describe the fully built entries currently
	// resident (the same accounting Stats aggregates across classes).
	Bytes   int64 `json:"bytes"`
	Entries int   `json:"entries"`
}

// MemoStats snapshots the per-class memo-cache traffic and residency,
// ordered clustering, cover, separating, pattern.
func (ix *Index) MemoStats() []MemoStats {
	out := make([]MemoStats, numMemoClasses)
	for c := range out {
		m := &ix.memo[c]
		out[c] = MemoStats{
			Class:        memoClassNames[c],
			Hits:         m.hits.Load(),
			Misses:       m.misses.Load(),
			BuildSeconds: float64(m.buildNanos.Load()) / 1e9,
		}
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, e := range ix.clusters {
		if e.done.Load() {
			out[memoClustering].Entries++
			out[memoClustering].Bytes += e.bytes
		}
	}
	for _, e := range ix.plain {
		if e.done.Load() {
			out[memoPlainCover].Entries++
			out[memoPlainCover].Bytes += e.bytes
		}
	}
	for _, e := range ix.sep {
		if e.done.Load() {
			out[memoSepCover].Entries++
			out[memoSepCover].Bytes += e.bytes
		}
	}
	ix.pmu.Lock()
	for key := range ix.patterns {
		out[memoPattern].Entries++
		out[memoPattern].Bytes += int64(len(key)) + compiledBytes
	}
	ix.pmu.Unlock()
	return out
}
