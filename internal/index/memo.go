package index

import "sync/atomic"

// Memo-cache observability: per-artifact-class hit/miss/build-time
// counters, kept out of Stats deliberately — Stats describes cache
// *contents* and round-trips through snapshots byte-identically, while
// these counters describe cache *traffic* and restart from zero with
// the process. The serving layer exports them as the
// planarsi_index_memo_* metric families.
//
// The synthetic "epoch" class covers live-graph mutation: its hits are
// artifacts retained verbatim across ApplyEdits migrations, its misses
// artifacts invalidated and rebuilt, its build time the migration work,
// and its entry count the live generations (1 + retired-but-draining).
// The per-class breakdown of the same retained/invalidated tallies is
// InvalidationStats.

// Artifact classes, in the order MemoStats reports them.
const (
	memoClustering = iota
	memoPlainCover
	memoSepCover
	memoPattern
	memoEpoch
	numMemoClasses
)

var memoClassNames = [numMemoClasses]string{"clustering", "cover", "separating", "pattern", "epoch"}

// Invalidation classes, in the order InvalidationStats reports them.
// Unlike the memo classes these count artifacts migrated by ApplyEdits:
// bands are decompositions within covers, so classes overlap by design
// (a rebuilt cover implies at least one rebuilt band; a kept cover
// implies all bands kept).
const (
	invalClustering = iota
	invalCover
	invalSeparating
	invalBand
	numInvalClasses
)

var invalClassNames = [numInvalClasses]string{"clustering", "cover", "separating", "band"}

// memoCounters is one artifact class's traffic counters.
type memoCounters struct {
	hits       atomic.Uint64
	misses     atomic.Uint64
	buildNanos atomic.Int64
}

// touch records one cache access.
func (m *memoCounters) touch(hit bool) {
	if hit {
		m.hits.Add(1)
	} else {
		m.misses.Add(1)
	}
}

// invalCounters is one artifact class's lifetime mutation tallies.
type invalCounters struct {
	invalidated atomic.Uint64
	retained    atomic.Uint64
}

// MemoStats is one artifact class's cache-traffic snapshot.
type MemoStats struct {
	// Class names the artifact class: "clustering" (ESTC clusterings),
	// "cover" (plain prepared covers), "separating" (separating
	// prepared covers), "pattern" (compiled patterns keyed by canonical
	// form), "epoch" (artifact migration across edit generations).
	Class string `json:"class"`
	// Hits counts accesses that found a fully built entry; Misses
	// counts the rest (entry absent, still building, or past the run
	// budget and deliberately uncached). For the epoch class, Hits are
	// artifacts retained across ApplyEdits and Misses artifacts rebuilt.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// BuildSeconds totals wall time spent inside this class's builds.
	// Cover builds include the time of a clustering build they trigger,
	// so classes overlap: the column prices each class's critical path,
	// not a partition of CPU time.
	BuildSeconds float64 `json:"buildSeconds"`
	// Bytes and Entries describe the fully built entries currently
	// resident (the same accounting Stats aggregates across classes).
	// For the epoch class, Entries counts live generations (1 unless
	// retired generations are still draining) and Bytes is 0.
	Bytes   int64 `json:"bytes"`
	Entries int   `json:"entries"`
}

// MemoStats snapshots the per-class memo-cache traffic and residency,
// ordered clustering, cover, separating, pattern, epoch.
func (ix *Index) MemoStats() []MemoStats {
	out := make([]MemoStats, numMemoClasses)
	for c := range out {
		m := &ix.memo[c]
		out[c] = MemoStats{
			Class:        memoClassNames[c],
			Hits:         m.hits.Load(),
			Misses:       m.misses.Load(),
			BuildSeconds: float64(m.buildNanos.Load()) / 1e9,
		}
	}
	for c := range ix.inval {
		out[memoEpoch].Hits += ix.inval[c].retained.Load()
		out[memoEpoch].Misses += ix.inval[c].invalidated.Load()
	}
	out[memoEpoch].Entries = int(1 + ix.retiredGens.Load())

	gen := ix.acquire()
	defer ix.release(gen)
	gen.mu.Lock()
	defer gen.mu.Unlock()
	for _, e := range gen.clusters {
		if e.done.Load() {
			out[memoClustering].Entries++
			out[memoClustering].Bytes += e.bytes
		}
	}
	for _, e := range gen.plain {
		if e.done.Load() {
			out[memoPlainCover].Entries++
			out[memoPlainCover].Bytes += e.bytes
		}
	}
	for _, e := range gen.sep {
		if e.done.Load() {
			out[memoSepCover].Entries++
			out[memoSepCover].Bytes += e.bytes
		}
	}
	ix.pmu.Lock()
	for key := range ix.patterns {
		out[memoPattern].Entries++
		out[memoPattern].Bytes += int64(len(key)) + compiledBytes
	}
	ix.pmu.Unlock()
	return out
}

// InvalidationStats is one artifact class's lifetime mutation tally:
// how many artifacts ApplyEdits migrations invalidated (rebuilt) vs
// retained verbatim. The serving layer exports these as
// planarsi_index_invalidations_total / planarsi_index_retained_total.
type InvalidationStats struct {
	// Class names the artifact class: "clustering", "cover",
	// "separating" (memo entries) or "band" (band decompositions within
	// the migrated covers — the granularity invalidation is surgical
	// at).
	Class string `json:"class"`
	// Invalidated counts artifacts an edit actually touched, rebuilt
	// through the fresh-build path; Retained counts artifacts that
	// survived a migration verbatim. Cumulative over the Index's
	// lifetime; zero until the first ApplyEdits.
	Invalidated uint64 `json:"invalidated"`
	Retained    uint64 `json:"retained"`
}

// InvalidationStats snapshots the per-class mutation tallies, ordered
// clustering, cover, separating, band.
func (ix *Index) InvalidationStats() []InvalidationStats {
	out := make([]InvalidationStats, numInvalClasses)
	for c := range out {
		out[c] = InvalidationStats{
			Class:       invalClassNames[c],
			Invalidated: ix.inval[c].invalidated.Load(),
			Retained:    ix.inval[c].retained.Load(),
		}
	}
	return out
}
