package index

import (
	"context"
	"sync"
	"testing"

	"planarsi/internal/core"
	"planarsi/internal/graph"
)

// TestConcurrentScanReset churns an Index the way the serving layer's
// eviction does — batched scans racing cache resets — and checks that
// every answer stays identical to the direct API's: in-flight queries
// keep the immutable artifacts they already hold, and rebuilt artifacts
// are bit-identical by the derived-randomness property.
func TestConcurrentScanReset(t *testing.T) {
	g := graph.Grid(6, 6)
	opt := core.Options{Seed: 11, MaxRuns: 4}
	patterns := []*graph.Graph{
		graph.Cycle(4), graph.Cycle(3), graph.Path(4), graph.Star(4),
	}
	want := make([]bool, len(patterns))
	for i, h := range patterns {
		var err error
		if want[i], err = core.Decide(g, h, opt); err != nil {
			t.Fatal(err)
		}
	}

	ix := New(g, opt)
	const rounds = 8
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i, res := range ix.Scan(context.Background(), patterns) {
					if res.Err != nil {
						t.Errorf("scan: %v", res.Err)
						return
					}
					if res.Found != want[i] {
						t.Errorf("pattern %d under churn: got %v, want %v", i, res.Found, want[i])
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < 4*rounds; r++ {
			ix.Reset()
			ix.Stats() // snapshotting races the rebuilds too
		}
	}()
	wg.Wait()

	if got := ix.Stats().Queries; got != 3*rounds*uint64(len(patterns)) {
		t.Errorf("queries = %d, want %d", got, 3*rounds*len(patterns))
	}
}

// TestStatsAccounting locks Stats() to the actual cached artifacts: the
// counts must equal what Prewarm materialized, and MemBytes must equal
// the sum of MemBytes over exactly those artifacts.
func TestStatsAccounting(t *testing.T) {
	g := graph.Grid(6, 6)
	opt := core.Options{Seed: 5, MaxRuns: 3}
	ix := New(g, opt)

	if st := ix.Stats(); st.Clusterings != 0 || st.PlainCovers != 0 || st.SeparatingCovers != 0 ||
		st.Bands != 0 || st.MemBytes != 0 {
		t.Fatalf("fresh index has nonzero cache stats: %+v", st)
	}
	if got, want := ix.Stats().GraphBytes, g.MemBytes(); got != want {
		t.Fatalf("GraphBytes = %d, want %d", got, want)
	}

	const k, d = 4, 2
	ix.Prewarm(k, d)
	runs := core.RunBudget(g.N(), opt)

	st := ix.Stats()
	if st.Clusterings != runs || st.PlainCovers != runs {
		t.Fatalf("after Prewarm(%d,%d): clusterings=%d plainCovers=%d, want %d each",
			k, d, st.Clusterings, st.PlainCovers, runs)
	}
	if st.SeparatingCovers != 0 {
		t.Fatalf("plain prewarm cached %d separating covers", st.SeparatingCovers)
	}

	// Recompute the footprint from the artifacts themselves.
	var wantBytes int64
	wantBands := 0
	for run := 0; run < runs; run++ {
		pc := ix.Prepared(k, d, run)
		wantBytes += pc.MemBytes()
		wantBands += len(pc.Bands)
		wantBytes += core.ClusterRun(g, core.CoverBeta(k, opt), run, opt).MemBytes()
	}
	if st.MemBytes != wantBytes {
		t.Fatalf("MemBytes = %d, want %d (sum over cached artifacts)", st.MemBytes, wantBytes)
	}
	if st.Bands != wantBands {
		t.Fatalf("Bands = %d, want %d", st.Bands, wantBands)
	}

	// Separating covers are accounted separately.
	s := make([]bool, g.N())
	s[0], s[g.N()-1] = true, true
	pc := ix.PreparedSeparating(s, k, d, 0)
	st2 := ix.Stats()
	if st2.SeparatingCovers != 1 {
		t.Fatalf("SeparatingCovers = %d, want 1", st2.SeparatingCovers)
	}
	if want := st.MemBytes + pc.MemBytes(); st2.MemBytes != want {
		t.Fatalf("MemBytes after separating cover = %d, want %d", st2.MemBytes, want)
	}

	// Queries count queries, not cache fills.
	if st2.Queries != 0 {
		t.Fatalf("Queries = %d before any query", st2.Queries)
	}
	if _, err := ix.Decide(graph.Cycle(4)); err != nil {
		t.Fatal(err)
	}
	if got := ix.Stats().Queries; got != 1 {
		t.Fatalf("Queries = %d after one Decide", got)
	}

	// Reset drops the artifacts but keeps the lifetime query counter.
	ix.Reset()
	st3 := ix.Stats()
	if st3.Clusterings != 0 || st3.PlainCovers != 0 || st3.SeparatingCovers != 0 ||
		st3.Bands != 0 || st3.MemBytes != 0 {
		t.Fatalf("after Reset: %+v", st3)
	}
	if st3.Queries != 1 {
		t.Fatalf("Reset cleared the query counter: %d", st3.Queries)
	}
}
