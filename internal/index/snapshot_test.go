package index

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"planarsi/internal/core"
	"planarsi/internal/graph"
	"planarsi/internal/snap"
)

// populate runs a representative query mix so the Index caches
// clusterings, plain covers and separating covers.
func populate(t *testing.T, ix *Index, g *graph.Graph) {
	t.Helper()
	if found, err := ix.Decide(graph.Cycle(4)); err != nil || !found {
		t.Fatalf("Decide(C4) = %v, %v", found, err)
	}
	if _, err := ix.CountOccurrences(graph.Path(3)); err != nil {
		t.Fatalf("Count(P3): %v", err)
	}
	mask := make([]bool, g.N())
	mask[0], mask[g.N()-1] = true, true
	if _, err := ix.DecideSeparating(graph.Cycle(4), mask); err != nil {
		t.Fatalf("DecideSeparating: %v", err)
	}
}

// TestSaveLoadEquivalence is the round-trip property the persistence
// subsystem promises: a loaded snapshot serves byte-identical answers
// and byte-identical Stats to the live Index that produced it, and
// serves them from cache (no artifact rebuilds for snapshotted keys).
func TestSaveLoadEquivalence(t *testing.T) {
	g := graph.Grid(5, 5)
	ix := New(g, core.Options{Seed: 3, MaxRuns: 4})
	populate(t, ix, g)

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}

	// Stats must match to the byte: same artifact counts, same MemBytes
	// (footprints are carried verbatim), same lifetime query counter.
	if got, want := loaded.Stats(), ix.Stats(); got != want {
		t.Fatalf("Stats diverge after load:\n got %+v\nwant %+v", got, want)
	}

	// The snapshotted shapes must be served from cache, not rebuilt:
	// re-answering the populate queries must not grow the cache.
	covers, clusters := loaded.CachedCovers(), loaded.CachedClusterings()
	if covers == 0 || clusters == 0 {
		t.Fatalf("loaded Index has an empty cache (%d covers, %d clusterings)", covers, clusters)
	}

	// Answers must be identical, both for snapshotted shapes and for
	// fresh ones (built on demand from the same derived randomness).
	patterns := []*graph.Graph{
		graph.Cycle(4), graph.Path(3), // snapshotted shapes
		graph.Cycle(6), graph.Star(5), // fresh shapes
	}
	for i, h := range patterns {
		want, err1 := ix.Decide(h)
		got, err2 := loaded.Decide(h)
		if err1 != nil || err2 != nil || got != want {
			t.Fatalf("pattern %d: Decide diverges: live (%v, %v) vs loaded (%v, %v)", i, want, err1, got, err2)
		}
		wc, err1 := ix.CountOccurrences(h)
		gc, err2 := loaded.CountOccurrences(h)
		if err1 != nil || err2 != nil || gc != wc {
			t.Fatalf("pattern %d: Count diverges: live (%d, %v) vs loaded (%d, %v)", i, wc, err1, gc, err2)
		}
	}
	mask := make([]bool, g.N())
	mask[0], mask[g.N()-1] = true, true
	wo, err1 := ix.DecideSeparating(graph.Cycle(4), mask)
	lo, err2 := loaded.DecideSeparating(graph.Cycle(4), mask)
	if err1 != nil || err2 != nil || string(wo.Key()) != string(lo.Key()) {
		t.Fatalf("DecideSeparating diverges: (%v, %v) vs (%v, %v)", wo, err1, lo, err2)
	}

	if loaded.CachedCovers() < covers || loaded.CachedClusterings() < clusters {
		t.Fatalf("cache shrank while querying a loaded Index")
	}
}

// TestSaveLoadAgainstFresh pins the stronger form of the property: a
// loaded Index answers exactly like a *fresh* Index with the same graph
// and Options (the deterministic (Seed, stream, run) derivation makes
// caches transparent).
func TestSaveLoadAgainstFresh(t *testing.T) {
	g := graph.Grid(4, 6)
	opt := core.Options{Seed: 11, MaxRuns: 3}
	ix := New(g, opt)
	populate(t, ix, g)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	fresh := New(g, opt)
	for _, h := range []*graph.Graph{graph.Cycle(4), graph.Path(4), graph.Star(4)} {
		a, err1 := loaded.Decide(h)
		b, err2 := fresh.Decide(h)
		if err1 != nil || err2 != nil || a != b {
			t.Fatalf("loaded (%v, %v) vs fresh (%v, %v) for %v", a, err1, b, err2, h)
		}
	}
}

// TestSaveMidChurn saves while concurrent scans are in flight: the
// snapshot must always decode to a valid Index whose answers match,
// whatever subset of completed artifacts it captured.
func TestSaveMidChurn(t *testing.T) {
	g := graph.Grid(5, 5)
	ix := New(g, core.Options{Seed: 5, MaxRuns: 3})
	patterns := []*graph.Graph{graph.Cycle(4), graph.Path(3), graph.Path(5), graph.Star(4)}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				ix.Scan(context.Background(), patterns)
			}
		}
	}()

	for i := 0; i < 5; i++ {
		var buf bytes.Buffer
		if err := ix.Save(&buf); err != nil {
			t.Errorf("Save mid-churn: %v", err)
			break
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Errorf("Load mid-churn: %v", err)
			break
		}
		for _, r := range loaded.Scan(context.Background(), patterns) {
			if r.Err != nil {
				t.Errorf("loaded scan: %v", r.Err)
			}
		}
	}
	close(stop)
	wg.Wait()

	// After quiescing, answers from a final save/load match the live ones.
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	live := ix.Scan(context.Background(), patterns)
	warm := loaded.Scan(context.Background(), patterns)
	for i := range live {
		if live[i].Found != warm[i].Found {
			t.Fatalf("pattern %d: live %v vs warm %v", i, live[i].Found, warm[i].Found)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"badmagic":  []byte("NOTASNAPxxxxxxxxxxxxxxxx"),
		"truncated": nil, // filled below
	}
	g := graph.Grid(3, 3)
	ix := New(g, core.Options{Seed: 1})
	if _, err := ix.Decide(graph.Path(3)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cases["truncated"] = buf.Bytes()[:buf.Len()/2]
	for name, data := range cases {
		if _, err := Load(bytes.NewReader(data)); !errors.Is(err, snap.ErrFormat) {
			t.Errorf("%s: got %v, want snap.ErrFormat", name, err)
		}
	}
}
