package index

import (
	"errors"
	"fmt"
	"runtime/debug"

	"planarsi/internal/par"
)

// ErrQueryPanic is the sentinel wrapped by every QueryPanicError, so
// callers classify panic-backed failures with errors.Is without
// depending on the concrete type.
var ErrQueryPanic = errors.New("index: query panicked")

// QueryPanicError is a panic converted into an error at the per-query
// boundary: the pipeline beneath one pattern's query panicked (on a
// pool worker or inline), par's fork-join scopes carried it to the
// query's goroutine, and Guard caught it there. Value and Stack
// preserve what the crash would have printed; the serving layer logs
// them under an incident ID and answers a structured 500 instead of
// dying.
type QueryPanicError struct {
	Value any
	Stack []byte
}

func (e *QueryPanicError) Error() string {
	return fmt.Sprintf("index: query panicked: %v", e.Value)
}

func (e *QueryPanicError) Unwrap() error { return ErrQueryPanic }

// Guard runs one query body, converting a panic — its own, or one
// carried from pool workers as a *par.PanicError — into a
// *QueryPanicError. This is the per-query panic boundary: everything
// inside f may share the process-wide pool, and a panic under one query
// must cost exactly that query.
func Guard(f func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = panicError(v)
		}
	}()
	return f()
}

// panicError converts a recovered value into a *QueryPanicError,
// unwrapping par's carrier so Value and Stack describe the original
// panic site rather than the re-panic at the join point.
func panicError(v any) *QueryPanicError {
	if pe, ok := v.(*par.PanicError); ok {
		return &QueryPanicError{Value: pe.Value, Stack: pe.Stack}
	}
	return &QueryPanicError{Value: v, Stack: debug.Stack()}
}
