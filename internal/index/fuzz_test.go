package index

import (
	"errors"
	"testing"

	"planarsi/internal/core"
	"planarsi/internal/graph"
)

// FuzzApplyEdits drives an Index through an arbitrary edit sequence and
// cross-checks it against a fresh-build oracle. Each pair of input bytes
// is one attempted edit (toggle the edge between two vertices of a small
// fixed base graph); after every accepted batch the mutated index must
// answer exactly like an Index built from scratch on the same graph, and
// rejected batches — duplicate adds, absent removes, planarity
// violations under RequirePlanar — must leave the index unchanged, never
// panic.
func FuzzApplyEdits(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x23})             // one edit
	f.Add([]byte{0x05, 0x50, 0x05, 0x50}) // toggle an edge back and forth
	f.Add([]byte{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 32 {
			data = data[:32]
		}
		base := graph.Grid(3, 3)
		g := graph.FromEdges(base.N(), base.Edges())
		n := int32(g.N())
		opt := core.Options{Seed: 11, MaxRuns: 2}
		ix := New(g, opt)
		patterns := []*graph.Graph{graph.Cycle(3), graph.Cycle(4)}

		present := make(map[[2]int32]bool)
		for _, e := range g.Edges() {
			present[e] = true
		}

		edited := false
		for i := 0; i+1 < len(data); i += 2 {
			u, v := int32(data[i])%n, int32(data[i+1])%n
			if u > v {
				u, v = v, u
			}
			e := [2]int32{u, v}
			var b EditBatch
			if present[e] {
				b.Remove = [][2]int32{e}
			} else {
				b.Add = [][2]int32{e}
			}
			// Alternate the planarity gate so both paths fuzz.
			b.RequirePlanar = data[i]&0x80 != 0

			before := ix.Epoch()
			res, err := ix.ApplyEdits(b)
			switch {
			case err == nil:
				if res.Epoch != before+1 || ix.Epoch() != res.Epoch {
					t.Fatalf("accepted batch: epoch %d -> %d, result %d", before, ix.Epoch(), res.Epoch)
				}
				present[e] = !present[e]
				edited = true
			case errors.Is(err, graph.ErrEdit) || errors.Is(err, ErrNonPlanarEdit):
				if ix.Epoch() != before {
					t.Fatalf("rejected batch advanced the epoch: %v", err)
				}
			default:
				t.Fatalf("ApplyEdits returned unexpected error class: %v", err)
			}
		}
		if !edited {
			return
		}

		// Oracle: a fresh build on the mutated graph. ix.Graph() is the
		// WithEdits result itself, so this checks the migrated artifact
		// tables against from-scratch construction on identical input.
		fresh := New(ix.Graph(), opt)
		for pi, h := range patterns {
			got, err1 := ix.Decide(h)
			want, err2 := fresh.Decide(h)
			if err1 != nil || err2 != nil {
				t.Fatalf("Decide: %v / %v", err1, err2)
			}
			if got != want {
				t.Fatalf("pattern %d: edited index says %v, fresh build says %v", pi, got, want)
			}
			gc, err1 := ix.CountOccurrences(h)
			wc, err2 := fresh.CountOccurrences(h)
			if err1 != nil || err2 != nil {
				t.Fatalf("Count: %v / %v", err1, err2)
			}
			if gc != wc {
				t.Fatalf("pattern %d: edited count %d, fresh count %d", pi, gc, wc)
			}
		}
	})
}
