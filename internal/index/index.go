// Package index implements the shared-preprocessing batch-query engine:
// an Index preprocesses one target graph and serves many pattern queries
// over cached pipeline artifacts.
//
// The paper's pipeline spends almost all of its target-side work on
// preprocessing — ESTC clustering (Lemma 2.3), the treewidth k-d cover
// (Theorem 2.4) and the nice tree decompositions of its bands — while the
// per-pattern dynamic program is comparatively cheap. The one-shot API
// (core.Decide and friends) rebuilds all of it per call; an Index builds
// each artifact at most once and reuses it for every query against the
// same target, the preprocess-once/query-many shape of Eppstein's JGAA
// 1999 formulation.
//
// Caching is sound because core derives run i's randomness as a pure
// function of (Seed, stream, run) and all prepared artifacts are
// immutable: an Index returns exactly the covers a fresh pipeline would
// build, so answers with and without the Index are identical for equal
// Options.
//
// Memoization keys:
//
//   - clusterings by (beta, run) where beta = 2k (or Options.Beta), so
//     one clustering serves every pattern diameter of a size class;
//   - plain prepared covers by (k, d, run);
//   - separating prepared covers by (k, d, run, terminal set).
//
// Seed and Heuristic are fixed per Index (they are part of its Options),
// so they need not appear in the keys. All methods are safe for
// concurrent use: lookups take a short lock and construction happens
// under a per-key sync.Once, so two goroutines asking for the same
// artifact build it once and share it.
//
// The target is live: ApplyEdits applies a batch of edge insertions and
// deletions, advancing the Index to a new epoch. Artifacts live in
// copy-on-write generations (see generation.go); every query pins one
// generation for its whole life, so in-flight scans finish against the
// consistent pre-edit world while new queries see the post-edit one.
// Invalidation is surgical — only artifacts the edit actually changed are
// rebuilt (see edits.go) — and the survivors are bit-identical to a
// fresh build on the edited graph.
package index

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"planarsi/internal/core"
	"planarsi/internal/estc"
	"planarsi/internal/fault"
	"planarsi/internal/graph"
	"planarsi/internal/obs"
	"planarsi/internal/par"
)

// Index preprocesses a target graph and answers repeated subgraph
// isomorphism queries over shared, memoized pipeline artifacts. Build one
// with New; the zero value is not usable.
type Index struct {
	opt core.Options

	// cur points at the live artifact generation (graph + embedding +
	// memo tables). ApplyEdits and Reset replace it copy-on-write under
	// editMu; queries pin a generation via acquire/release and never mix
	// two of them. retiredGens gauges swapped-out generations still
	// pinned by draining queries.
	cur         atomic.Pointer[generation]
	editMu      sync.Mutex
	retiredGens atomic.Int64

	// queries counts answered queries (one per pattern, including each
	// pattern of a batched scan) for the Index's whole lifetime; Reset
	// does not clear it. sweeps counts physical DP dispatches: a batched
	// scan that groups p isomorphic patterns into one shared sweep adds p
	// to queries but 1 to sweeps, so queries/sweeps measures batching
	// leverage. Reset does not clear sweeps either.
	queries atomic.Uint64
	sweeps  atomic.Uint64

	// memo holds the per-artifact-class cache-traffic counters behind
	// MemoStats (hits, misses, build time); residency lives in the maps.
	memo [numMemoClasses]memoCounters

	// inval holds the per-class invalidation counters ApplyEdits
	// advances: how many migrated artifacts were retained verbatim vs
	// rebuilt, cumulative over the Index's lifetime.
	inval [numInvalClasses]invalCounters

	// pmu guards the compiled-pattern cache (see compile.go); porder is
	// its FIFO eviction queue, oldest key first. Compiled patterns are
	// derived from patterns alone, so the cache is epoch-independent and
	// survives ApplyEdits untouched.
	pmu      sync.Mutex
	patterns map[string]*compiled
	porder   []string
}

type clusterKey struct {
	betaBits uint64
	run      int
}

type coverKey struct {
	k, d, run int
}

type sepKey struct {
	k, d, run int
	// s is the terminal mask packed into a byte string: an exact key, so
	// distinct terminal sets can never collide.
	s string
}

// clusterEntry is a memoized clustering. The builder publishes bytes
// before flipping done, so readers that observe done may read bytes (and
// cl) without holding the entry's once.
type clusterEntry struct {
	once  sync.Once
	cl    *estc.Clustering
	bytes int64
	done  atomic.Bool
}

// coverEntry is a memoized prepared cover, with its footprint published
// on completion (see clusterEntry).
type coverEntry struct {
	once  sync.Once
	pc    *core.PreparedCover
	bytes int64
	bands int
	done  atomic.Bool
}

// New builds an Index over the target g with the given pipeline options.
// Construction itself is O(1): clusterings, covers and band
// decompositions are built lazily on first use and memoized for the
// Index's lifetime (use Prewarm to pay the cost up front). Options.Seed
// fixes the Index's randomness — an Index answers exactly as the one-shot
// API would with the same Options.
func New(g *graph.Graph, opt core.Options) *Index {
	ix := &Index{
		opt:      opt,
		patterns: make(map[string]*compiled),
	}
	ix.cur.Store(ix.newGeneration(0, g))
	return ix
}

// Graph returns the Index's current target: the original graph passed to
// New, as edited by every ApplyEdits batch applied since.
func (ix *Index) Graph() *graph.Graph { return ix.cur.Load().g }

// Epoch returns the Index's edit-generation counter: 0 for a fresh
// build, +1 per applied edit batch. Snapshots persist it, so a restored
// Index resumes its mutation history.
func (ix *Index) Epoch() uint64 { return ix.cur.Load().epoch }

// RetiredGenerations reports how many superseded artifact generations
// are still pinned by draining queries. It is 0 whenever the Index is
// quiescent — old generations are released as soon as their last
// in-flight query finishes.
func (ix *Index) RetiredGenerations() int64 { return ix.retiredGens.Load() }

// Planar reports whether the target admits a planar embedding, computing
// (and caching) the embedding on first call. The query pipeline stays
// correct on non-planar targets — only the Theorem 2.4 treewidth bound,
// and with it the work guarantee, needs planarity.
func (ix *Index) Planar() bool {
	gen := ix.acquire()
	defer ix.release(gen)
	gen.embed()
	return gen.embedErr == nil
}

// Embedded returns the target carrying a combinatorial planar embedding
// (rotation system), or planarity.ErrNotPlanar. The embedding is computed
// once per generation and cached.
func (ix *Index) Embedded() (*graph.Graph, error) {
	gen := ix.acquire()
	defer ix.release(gen)
	gen.embed()
	return gen.embedded, gen.embedErr
}

// depoisonOnPanic is deferred inside every memo entry's once.Do build:
// sync.Once marks itself done even when its function panics, so without
// this a panicking build would poison the cache slot forever (every
// later query would read a half-built entry). done is only set by a
// build that ran to completion; when it is still false on the way out,
// the build is panicking and drop removes the entry from its map so the
// next query retries from scratch.
func depoisonOnPanic(done *atomic.Bool, drop func()) {
	if !done.Load() {
		drop()
	}
}

// checkBuilt guards concurrent waiters of a panicked build: their
// once.Do returns normally (the Once is done) but the entry never
// completed. Panicking here routes them through the same per-query
// boundary as the builder; the entry itself has already been dropped
// for retry by depoisonOnPanic.
func checkBuilt(done *atomic.Bool, what string) {
	if !done.Load() {
		panic(fmt.Errorf("index: %s build panicked concurrently; retry", what))
	}
}

// Prepared implements core.CoverSource against the current generation
// (see generation.Prepared). Queries that need several covers should run
// through the query methods, which pin one generation for their whole
// life; Prepared alone pins only per call.
func (ix *Index) Prepared(k, d, run int) *core.PreparedCover {
	gen := ix.acquire()
	defer ix.release(gen)
	return gen.Prepared(k, d, run)
}

// PreparedSeparating implements core.SeparatingSource against the
// current generation (see generation.PreparedSeparating).
func (ix *Index) PreparedSeparating(s []bool, k, d, run int) *core.PreparedCover {
	gen := ix.acquire()
	defer ix.release(gen)
	return gen.PreparedSeparating(s, k, d, run)
}

// packMask renders a bool mask as a compact comparable string.
func packMask(s []bool) string {
	b := make([]byte, (len(s)+7)/8)
	for i, in := range s {
		if in {
			b[i/8] |= 1 << uint(i%8)
		}
	}
	return string(b)
}

// unpackMask inverts packMask for an n-vertex target.
func unpackMask(s string, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		if i/8 < len(s) && s[i/8]&(1<<uint(i%8)) != 0 {
			out[i] = true
		}
	}
	return out
}

// queryOptions derives one query's pipeline Options from the Index's,
// attaching a cancellation token watching ctx plus the ctx's span
// recorder (obs.WithRecorder) and cost counter (obs.WithCost) when the
// query carries them. The returned stop func must be deferred by the
// caller. Cached artifact builds always run with the Index's own
// token-free Options (see generation.Prepared), so a cancelled query can
// never leave a partial artifact behind — only the query's own dynamic
// programs are abandoned.
func (ix *Index) queryOptions(ctx context.Context) (core.Options, func()) {
	opt := ix.opt
	opt.Trace = obs.FromContext(ctx)
	opt.Cost = obs.CostFromContext(ctx)
	if ctx == nil || ctx.Done() == nil {
		return opt, func() {}
	}
	c, stop := par.WatchContext(ctx)
	opt.Cancel = c
	return opt, stop
}

// ctxErr translates the pipeline's cooperative-cancellation sentinel
// into the context's own error at the API boundary.
func ctxErr(ctx context.Context, err error) error {
	if errors.Is(err, par.ErrCancelled) && ctx != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// Decide reports whether the pattern h occurs in the target. Answers
// equal core.Decide's for the Index's Options: true answers are exact,
// false answers hold w.h.p.
func (ix *Index) Decide(h *graph.Graph) (bool, error) {
	return ix.DecideCtx(context.Background(), h)
}

// DecideCtx is Decide honoring ctx: when the context is cancelled or
// times out mid-query, the dynamic programs running across the cover's
// bands stop at their next checkpoint and the context's error is
// returned. Cancellation never changes answers — rerunning with a live
// context returns exactly what an unwatched Decide would.
func (ix *Index) DecideCtx(ctx context.Context, h *graph.Graph) (bool, error) {
	ix.queries.Add(1)
	ix.sweeps.Add(1)
	fault.Check(fault.QueryPanic)
	gen := ix.acquire()
	defer ix.release(gen)
	opt, stop := ix.queryOptions(ctx)
	defer stop()
	found, err := core.DecideFrom(gen, gen.g, h, opt)
	return found, ctxErr(ctx, err)
}

// FindOccurrence returns one occurrence of the connected pattern h, or
// nil when none was found within the run budget.
func (ix *Index) FindOccurrence(h *graph.Graph) (core.Occurrence, error) {
	return ix.FindOccurrenceCtx(context.Background(), h)
}

// FindOccurrenceCtx is FindOccurrence honoring ctx (see DecideCtx).
func (ix *Index) FindOccurrenceCtx(ctx context.Context, h *graph.Graph) (core.Occurrence, error) {
	ix.queries.Add(1)
	ix.sweeps.Add(1)
	fault.Check(fault.QueryPanic)
	gen := ix.acquire()
	defer ix.release(gen)
	opt, stop := ix.queryOptions(ctx)
	defer stop()
	occ, err := core.FindOneFrom(gen, gen.g, h, opt)
	return occ, ctxErr(ctx, err)
}

// ListOccurrences returns (w.h.p.) every occurrence of the connected
// pattern h, deduplicated (Theorem 4.2 stopping rule).
func (ix *Index) ListOccurrences(h *graph.Graph) ([]core.Occurrence, error) {
	return ix.ListOccurrencesCtx(context.Background(), h)
}

// ListOccurrencesCtx is ListOccurrences honoring ctx (see DecideCtx).
func (ix *Index) ListOccurrencesCtx(ctx context.Context, h *graph.Graph) ([]core.Occurrence, error) {
	ix.queries.Add(1)
	ix.sweeps.Add(1)
	fault.Check(fault.QueryPanic)
	gen := ix.acquire()
	defer ix.release(gen)
	opt, stop := ix.queryOptions(ctx)
	defer stop()
	occs, err := core.ListFrom(gen, gen.g, h, opt)
	return occs, ctxErr(ctx, err)
}

// CountOccurrences returns (w.h.p.) the number of occurrences of the
// connected pattern h.
func (ix *Index) CountOccurrences(h *graph.Graph) (int, error) {
	return ix.CountOccurrencesCtx(context.Background(), h)
}

// CountOccurrencesCtx is CountOccurrences honoring ctx (see DecideCtx).
func (ix *Index) CountOccurrencesCtx(ctx context.Context, h *graph.Graph) (int, error) {
	ix.queries.Add(1)
	ix.sweeps.Add(1)
	fault.Check(fault.QueryPanic)
	gen := ix.acquire()
	defer ix.release(gen)
	opt, stop := ix.queryOptions(ctx)
	defer stop()
	c, err := core.CountFrom(gen, gen.g, h, opt)
	return c, ctxErr(ctx, err)
}

// DecideSeparating searches for an occurrence of the connected pattern h
// whose removal disconnects at least two vertices of the terminal set s
// (Lemma 5.3), returning a witness occurrence or nil.
func (ix *Index) DecideSeparating(h *graph.Graph, s []bool) (core.Occurrence, error) {
	return ix.DecideSeparatingCtx(context.Background(), h, s)
}

// DecideSeparatingCtx is DecideSeparating honoring ctx (see DecideCtx).
func (ix *Index) DecideSeparatingCtx(ctx context.Context, h *graph.Graph, s []bool) (core.Occurrence, error) {
	ix.queries.Add(1)
	ix.sweeps.Add(1)
	fault.Check(fault.QueryPanic)
	gen := ix.acquire()
	defer ix.release(gen)
	opt, stop := ix.queryOptions(ctx)
	defer stop()
	occ, err := core.DecideSeparatingFrom(gen, gen.g, h, s, opt)
	return occ, ctxErr(ctx, err)
}

// ScanResult is one pattern's answer in a batched scan.
type ScanResult struct {
	// Found reports whether the pattern occurs (Decide semantics: exact
	// when true, w.h.p. when false).
	Found bool
	// Count is the occurrence count; populated by ScanCount only.
	Count int
	// Err is the pattern's own failure (e.g. an oversized pattern); it
	// does not abort the rest of the batch.
	Err error
}

// Scan decides every pattern of the batch over the shared
// preprocessing. Results are positionally aligned with patterns, and
// each equals what Decide would return for that pattern alone. A
// cancelled or expired ctx stops the in-flight dynamic programs of every
// pattern at their next checkpoint; affected patterns carry the
// context's error in their ScanResult.Err.
//
// The whole batch pins one artifact generation: every member is answered
// against the same target graph even when ApplyEdits lands mid-scan.
//
// Batch members are canonicalized through the compiled-pattern cache:
// isomorphic members dedupe into one query, and distinct connected
// members sharing a (size, diameter) shape run as one multi-pattern DP
// sweep — every decomposition is walked once for the whole group rather
// than once per pattern (see Stats.Sweeps). Grouping never changes
// answers: a deduped member gets the first isomorph's answer (Decide is
// isomorphism-invariant), and the shared sweep maintains per-pattern
// state sets identical to the solo runs'.
//
// Each pattern runs under a panic Guard: a panic beneath one member
// (carried off pool workers by par's scopes) becomes that member's
// ScanResult.Err — a *QueryPanicError — and its batch-mates still get
// their answers. A panic inside a shared sweep costs only that sweep:
// its group is retried pattern by pattern, so one poisoned member
// cannot take down its shape-mates.
func (ix *Index) Scan(ctx context.Context, patterns []*graph.Graph) []ScanResult {
	return ix.scanBatch(ctx, patterns, false)
}

// ScanCount counts every pattern of the batch over the shared
// preprocessing. Each result's Count (and Found = Count > 0) equals what
// CountOccurrences would return for that pattern alone. Deduplication,
// shared sweeps, cancellation and panic isolation behave as in Scan.
func (ix *Index) ScanCount(ctx context.Context, patterns []*graph.Graph) []ScanResult {
	return ix.scanBatch(ctx, patterns, true)
}

// scanUniq is one distinct canonical pattern of a batch: the first
// member's original graph (so its answer is byte-identical to a solo
// run) plus every batch position holding an isomorph of it.
type scanUniq struct {
	h       *graph.Graph
	members []int
}

// scanShape keys group formation: connected batch members with equal
// vertex count and diameter share prepared covers and decompositions,
// so they can share one DP sweep.
type scanShape struct {
	k, d int
}

// scanBatch is the shared Scan/ScanCount engine. It compiles every
// member (charging queries and the per-member fault point), dedupes
// isomorphic members, groups the rest by (k, d) shape and dispatches
// the resulting units — solo queries and multi-pattern group sweeps —
// concurrently, all against one pinned generation.
func (ix *Index) scanBatch(ctx context.Context, patterns []*graph.Graph, count bool) []ScanResult {
	out := make([]ScanResult, len(patterns))
	gen := ix.acquire()
	defer ix.release(gen)
	opt, stop := ix.queryOptions(ctx)
	defer stop()

	// Phase 1: canonicalize sequentially. Each member is charged one
	// query and passes one fault checkpoint here, whatever unit it later
	// joins; a member that panics during compilation fails alone.
	comps := make([]*compiled, len(patterns))
	failed := make([]bool, len(patterns))
	for i := range patterns {
		ix.queries.Add(1)
		err := Guard(func() error {
			fault.Check(fault.QueryPanic)
			comps[i] = ix.compile(patterns[i])
			return nil
		})
		if err != nil {
			out[i].Err = ctxErr(ctx, err)
			failed[i] = true
		}
	}

	// Phase 2: classify. Members the group pipeline cannot model — too
	// large or empty (nil compile), disconnected, k = 1, or trivially
	// absent — go solo through the unbatched pipeline, which classifies
	// them exactly as a singleton query would. The rest dedupe by
	// canonical key and group by shape, preserving first-appearance
	// order so dispatch is deterministic.
	var solos []int
	groups := make(map[scanShape][]*scanUniq)
	uniqs := make(map[string]*scanUniq)
	var order []scanShape
	for i, c := range comps {
		if failed[i] {
			continue
		}
		if c == nil || !c.connected || c.k < 2 || c.k > gen.g.N() || patterns[i].M() > gen.g.M() {
			solos = append(solos, i)
			continue
		}
		if u, ok := uniqs[c.key]; ok {
			u.members = append(u.members, i)
			continue
		}
		u := &scanUniq{h: patterns[i], members: []int{i}}
		uniqs[c.key] = u
		sh := scanShape{c.k, c.d}
		if len(groups[sh]) == 0 {
			order = append(order, sh)
		}
		groups[sh] = append(groups[sh], u)
	}

	// Phase 3: dispatch all units concurrently — one per solo member,
	// one per shape group.
	units := make([]func(), 0, len(solos)+len(order))
	for _, i := range solos {
		i := i
		units = append(units, func() {
			ix.scanSolo(ctx, gen, patterns[i], count, opt, &out[i])
		})
	}
	for _, sh := range order {
		us := groups[sh]
		units = append(units, func() {
			ix.scanGroup(ctx, gen, us, count, opt, out)
		})
	}
	par.ForGrain(0, len(units), 1, func(u int) {
		units[u]()
	})
	return out
}

// scanSolo answers one pattern through the unbatched pipeline under its
// own Guard, writing the result in place. The caller has already
// charged the query, passed the fault checkpoint and pinned gen.
func (ix *Index) scanSolo(ctx context.Context, gen *generation, h *graph.Graph, count bool, opt core.Options, res *ScanResult) {
	ix.sweeps.Add(1)
	err := Guard(func() error {
		if count {
			c, err := core.CountFrom(gen, gen.g, h, opt)
			res.Found, res.Count = c > 0, c
			return err
		}
		found, err := core.DecideFrom(gen, gen.g, h, opt)
		res.Found = found
		return err
	})
	res.Err = ctxErr(ctx, err)
}

// scanGroup answers one shape group. A group with a single distinct
// pattern takes the solo path verbatim; larger groups run one shared
// multi-pattern sweep over the group's representatives. If the shared
// sweep panics, the group decomposes into per-pattern solo queries so
// one poisoned member cannot fail its shape-mates. Either way each
// distinct pattern's answer is scattered to all of its isomorphs.
func (ix *Index) scanGroup(ctx context.Context, gen *generation, us []*scanUniq, count bool, opt core.Options, out []ScanResult) {
	if len(us) == 1 {
		var res ScanResult
		ix.scanSolo(ctx, gen, us[0].h, count, opt, &res)
		for _, m := range us[0].members {
			out[m] = res
		}
		return
	}
	ix.sweeps.Add(1)
	hs := make([]*graph.Graph, len(us))
	for j, u := range us {
		hs[j] = u.h
	}
	var founds []bool
	var counts []int
	err := Guard(func() error {
		var err error
		if count {
			counts, err = core.CountGroupFrom(gen, gen.g, hs, opt)
		} else {
			founds, err = core.DecideGroupFrom(gen, gen.g, hs, opt)
		}
		return err
	})
	if errors.Is(err, ErrQueryPanic) {
		for _, u := range us {
			var res ScanResult
			ix.scanSolo(ctx, gen, u.h, count, opt, &res)
			for _, m := range u.members {
				out[m] = res
			}
		}
		return
	}
	if err != nil {
		err = ctxErr(ctx, err)
		for _, u := range us {
			for _, m := range u.members {
				out[m].Err = err
			}
		}
		return
	}
	for j, u := range us {
		for _, m := range u.members {
			if count {
				out[m].Found, out[m].Count = counts[j] > 0, counts[j]
			} else {
				out[m].Found = founds[j]
			}
		}
	}
}

// Prewarm materializes the full run budget of prepared covers for pattern
// shape (k = pattern size, d = pattern diameter) in parallel, moving the
// preprocessing cost out of the first queries.
func (ix *Index) Prewarm(k, d int) {
	gen := ix.acquire()
	defer ix.release(gen)
	runs := core.RunBudget(gen.g.N(), ix.opt)
	par.ForGrain(0, runs, 1, func(run int) {
		gen.Prepared(k, d, run)
	})
}

// Stats is a point-in-time snapshot of an Index's cache contents, memory
// footprint and query traffic. The serving layer's LRU eviction charges an
// Index MemBytes + GraphBytes against its memory budget.
type Stats struct {
	// Clusterings, PlainCovers and SeparatingCovers count fully built
	// memoized artifacts (artifacts still under construction are
	// excluded, so counts and bytes always describe completed state).
	Clusterings      int `json:"clusterings"`
	PlainCovers      int `json:"plainCovers"`
	SeparatingCovers int `json:"separatingCovers"`
	// Bands is the total number of prepared band decompositions across
	// the cached covers.
	Bands int `json:"bands"`
	// MemBytes approximates the heap held by the cached artifacts Reset
	// can reclaim (clusterings + prepared covers), excluding the target
	// graph and its embedding.
	MemBytes int64 `json:"memBytes"`
	// GraphBytes approximates the heap held by the target graph itself,
	// plus its cached planar embedding once one has been computed. The
	// embedding lives for the Index's lifetime (Reset does not drop it),
	// so eviction policies must treat these bytes as irreducible.
	GraphBytes int64 `json:"graphBytes"`
	// Queries counts queries answered over the Index's lifetime (each
	// pattern of a batched scan counts once); Reset does not clear it.
	Queries uint64 `json:"queries"`
	// Sweeps counts physical DP dispatches: a batched scan that groups p
	// isomorphic patterns into one shared sweep adds p to Queries but 1
	// to Sweeps, so Queries/Sweeps measures batching leverage. Singleton
	// queries add 1 to both. Reset does not clear it, and snapshots
	// persist it alongside Queries.
	Sweeps uint64 `json:"sweeps"`
	// Epoch counts applied edit batches (see ApplyEdits); snapshots
	// persist it so a warm boot resumes the mutation history.
	Epoch uint64 `json:"epoch"`
}

// Stats returns a snapshot of the Index's cache accounting. Only fully
// built artifacts are counted, so MemBytes equals the sum of MemBytes over
// the artifacts a caller could obtain from the cache right now.
func (ix *Index) Stats() Stats {
	gen := ix.acquire()
	defer ix.release(gen)
	st := Stats{
		GraphBytes: gen.g.MemBytes() + gen.embedBytes.Load(),
		Queries:    ix.queries.Load(),
		Sweeps:     ix.sweeps.Load(),
		Epoch:      gen.epoch,
	}
	gen.mu.Lock()
	defer gen.mu.Unlock()
	for _, e := range gen.clusters {
		if e.done.Load() {
			st.Clusterings++
			st.MemBytes += e.bytes
		}
	}
	for _, e := range gen.plain {
		if e.done.Load() {
			st.PlainCovers++
			st.Bands += e.bands
			st.MemBytes += e.bytes
		}
	}
	for _, e := range gen.sep {
		if e.done.Load() {
			st.SeparatingCovers++
			st.Bands += e.bands
			st.MemBytes += e.bytes
		}
	}
	return st
}

// CachedCovers reports how many prepared covers (plain + separating) are
// currently memoized — cache introspection for tests and capacity
// planning.
func (ix *Index) CachedCovers() int {
	gen := ix.acquire()
	defer ix.release(gen)
	gen.mu.Lock()
	defer gen.mu.Unlock()
	return len(gen.plain) + len(gen.sep)
}

// CachedClusterings reports how many ESTC clusterings are currently
// memoized.
func (ix *Index) CachedClusterings() int {
	gen := ix.acquire()
	defer ix.release(gen)
	gen.mu.Lock()
	defer gen.mu.Unlock()
	return len(gen.clusters)
}

// Reset drops every memoized artifact, returning the Index to its
// just-built state (same graph, same epoch, cached embedding kept).
// In-flight queries keep the generation — and with it the immutable
// artifacts — they already pinned, so Reset is safe to call concurrently
// with queries.
func (ix *Index) Reset() {
	ix.editMu.Lock()
	old := ix.cur.Load()
	next := ix.newGeneration(old.epoch, old.g)
	next.adoptEmbedding(old)
	ix.cur.Store(next)
	ix.retire(old)
	ix.editMu.Unlock()
	ix.pmu.Lock()
	ix.patterns = make(map[string]*compiled)
	ix.porder = nil
	ix.pmu.Unlock()
}
