package index

import (
	"context"
	"testing"

	"planarsi/internal/core"
	"planarsi/internal/graph"
	"planarsi/internal/obs"
)

// TestCostParityBandSpansMatchCounters is the cost-soundness check: on
// a warm index, a traced miss query (every run and band executes) must
// attribute its DP work so that three independent views agree exactly —
// the per-band span costs, the query-level CostCounter, and Stats.Cost
// are all flushed from the same engine-local batches, so their totals
// are equal byte for byte, not approximately.
func TestCostParityBandSpansMatchCounters(t *testing.T) {
	g := graph.Grid(6, 6)
	opt := core.Options{Seed: 3, MaxRuns: 4}
	ix := New(g, opt)
	h := graph.Cycle(3) // no triangles in a grid: a guaranteed miss

	if found, err := ix.Decide(h); err != nil || found {
		t.Fatalf("warm-up Decide = %v, %v; want false, nil", found, err)
	}

	var st core.Stats
	rec := obs.NewRecorder(0)
	counter := new(obs.CostCounter)
	qopt := opt
	qopt.Stats = &st
	qopt.Trace = rec
	qopt.Cost = counter
	found, err := core.DecideFrom(ix, g, h, qopt)
	if err != nil || found {
		t.Fatalf("traced Decide = %v, %v; want false, nil", found, err)
	}

	total := counter.Snapshot()
	if total.IsZero() || total.Emissions == 0 || total.Nodes == 0 {
		t.Fatalf("query cost counter empty: %+v", total)
	}
	if st.Cost != total {
		t.Fatalf("Stats.Cost = %+v, counter = %+v; want identical", st.Cost, total)
	}

	spans, dropped := rec.Snapshot()
	if dropped != 0 {
		t.Fatalf("dropped %d spans; raise the limit for this test", dropped)
	}
	var sum obs.Cost
	var bands int
	for _, sp := range spans {
		if sp.Name != "band" {
			continue
		}
		bands++
		// On a miss every band runs its full DP; each executed band must
		// carry nonzero cost (only skipped/fallback bands may be zero,
		// and this query has neither).
		if sp.Note == "miss" || sp.Note == "found" {
			if sp.Cost == nil || sp.Cost.IsZero() {
				t.Errorf("band span run=%d band=%d note=%q has no cost", sp.Run, sp.Band, sp.Note)
			}
		}
		if sp.Cost != nil {
			sum.Accumulate(*sp.Cost)
		}
	}
	if bands == 0 {
		t.Fatal("no band spans recorded")
	}
	if sum != total {
		t.Fatalf("sum of band span costs = %+v, counter = %+v; want identical", sum, total)
	}
	// Prepare spans carry only artifact residency bytes and must stay
	// out of the query's DP totals.
	for _, sp := range spans {
		if sp.Name == "prepare" && sp.Cost != nil {
			if sp.Cost.Emissions != 0 || sp.Cost.Nodes != 0 {
				t.Errorf("prepare span carries DP counters: %+v", sp.Cost)
			}
		}
	}
}

// TestDecideCtxPicksUpCostCounter checks the context carrier end to
// end: a counter attached via obs.WithCost reaches the engines through
// DecideCtx and accumulates nonzero work.
func TestDecideCtxPicksUpCostCounter(t *testing.T) {
	g := graph.Grid(5, 5)
	ix := New(g, core.Options{Seed: 1, MaxRuns: 2})
	counter := new(obs.CostCounter)
	ctx := obs.WithCost(context.Background(), counter)
	if _, err := ix.DecideCtx(ctx, graph.Cycle(4)); err != nil {
		t.Fatal(err)
	}
	if c := counter.Snapshot(); c.Emissions == 0 {
		t.Fatalf("cost counter stayed empty through DecideCtx: %+v", c)
	}
}

// TestMemoStats checks the cache-traffic counters: a cold query builds
// (misses, build time), a repeat of the same query hits, and residency
// (bytes, entries) reflects the built artifacts.
func TestMemoStats(t *testing.T) {
	g := graph.Grid(6, 6)
	ix := New(g, core.Options{Seed: 1, MaxRuns: 3})

	byClass := func() map[string]MemoStats {
		m := make(map[string]MemoStats)
		for _, ms := range ix.MemoStats() {
			m[ms.Class] = ms
		}
		return m
	}

	cold := byClass()
	if len(cold) != 5 {
		t.Fatalf("MemoStats classes = %d, want 5", len(cold))
	}
	for _, class := range []string{"clustering", "cover", "separating", "pattern", "epoch"} {
		if _, ok := cold[class]; !ok {
			t.Fatalf("missing class %q in %+v", class, cold)
		}
	}
	if cold["epoch"].Entries != 1 {
		t.Fatalf("quiescent index should report one live generation: %+v", cold["epoch"])
	}

	h := graph.Cycle(4)
	if _, err := ix.Decide(h); err != nil {
		t.Fatal(err)
	}
	warm := byClass()
	if warm["cover"].Misses == 0 {
		t.Fatalf("cold query recorded no cover misses: %+v", warm["cover"])
	}
	if warm["clustering"].Misses == 0 {
		t.Fatalf("cold query recorded no clustering misses: %+v", warm["clustering"])
	}
	if warm["cover"].BuildSeconds <= 0 {
		t.Fatalf("cover builds recorded no build time: %+v", warm["cover"])
	}
	if warm["cover"].Entries == 0 || warm["cover"].Bytes == 0 {
		t.Fatalf("built covers not resident: %+v", warm["cover"])
	}

	if _, err := ix.Decide(h); err != nil {
		t.Fatal(err)
	}
	again := byClass()
	if again["cover"].Hits <= warm["cover"].Hits {
		t.Fatalf("repeat query recorded no cover hits: %+v -> %+v", warm["cover"], again["cover"])
	}
	if again["cover"].Misses != warm["cover"].Misses {
		t.Fatalf("repeat query missed: %+v -> %+v", warm["cover"], again["cover"])
	}
}
