package index

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"

	"planarsi/internal/core"
	"planarsi/internal/graph"
	"planarsi/internal/naive"
)

// testTargets returns the randomized small planar targets the oracle
// tests sweep: grids, wheels and random planar graphs. They are kept
// small because the oracle tests run full-budget listing on every one.
func testTargets() []struct {
	name string
	g    *graph.Graph
} {
	rng := rand.New(rand.NewPCG(41, 43))
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"grid4x4", graph.Grid(4, 4)},
		{"grid4x3", graph.Grid(4, 3)},
		{"wheel7", graph.Wheel(7)},
		{"rand18", graph.RandomPlanar(18, 0.6, rng)},
		{"rand22", graph.RandomPlanar(22, 0.4, rng)},
	}
}

// testPatterns returns the pattern sweep: paths, cycles, stars and trees.
func testPatterns() []struct {
	name string
	h    *graph.Graph
} {
	rng := rand.New(rand.NewPCG(5, 6))
	return []struct {
		name string
		h    *graph.Graph
	}{
		{"P2", graph.Path(2)},
		{"P3", graph.Path(3)},
		{"P4", graph.Path(4)},
		{"C3", graph.Cycle(3)},
		{"C4", graph.Cycle(4)},
		{"C5", graph.Cycle(5)},
		{"star4", graph.Star(4)},
		{"tree5", graph.RandomTree(5, rng)},
	}
}

func sortedKeys(occs []core.Occurrence) []string {
	keys := make([]string, len(occs))
	for i, o := range occs {
		keys[i] = o.Key()
	}
	sort.Strings(keys)
	return keys
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIndexMatchesOracle cross-validates the Index against the
// brute-force oracle on the randomized target/pattern sweep: Decide
// nil-ness, the full listed occurrence set (which also pins down the
// count) and witness validity.
func TestIndexMatchesOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical sweep skipped in -short mode")
	}
	for _, tg := range testTargets() {
		t.Run(tg.name, func(t *testing.T) {
			ix := New(tg.g, core.Options{Seed: 7})
			for _, pt := range testPatterns() {
				want := naive.Search(tg.g, pt.h, naive.Options{})

				got, err := ix.Decide(pt.h)
				if err != nil {
					t.Fatalf("%s: Decide: %v", pt.name, err)
				}
				if got != (len(want) > 0) {
					t.Errorf("%s: Decide = %v, oracle has %d occurrences", pt.name, got, len(want))
				}

				occs, err := ix.ListOccurrences(pt.h)
				if err != nil {
					t.Fatalf("%s: List: %v", pt.name, err)
				}
				wantOccs := make([]core.Occurrence, len(want))
				for i, a := range want {
					wantOccs[i] = core.Occurrence(a)
				}
				if !equalKeys(sortedKeys(occs), sortedKeys(wantOccs)) {
					t.Errorf("%s: List returned %d occurrences, oracle %d (sets differ)", pt.name, len(occs), len(want))
				}

				occ, err := ix.FindOccurrence(pt.h)
				if err != nil {
					t.Fatalf("%s: Find: %v", pt.name, err)
				}
				if (occ != nil) != (len(want) > 0) {
					t.Errorf("%s: Find witness = %v, oracle has %d occurrences", pt.name, occ, len(want))
				}
				if occ != nil && !core.VerifyOccurrence(tg.g, pt.h, occ) {
					t.Errorf("%s: Find returned a non-verifying witness %v", pt.name, occ)
				}
			}
			// One full CountOccurrences pass for API coverage (Count is
			// len(List) by construction, so one pattern suffices).
			count, err := ix.CountOccurrences(graph.Cycle(4))
			if err != nil {
				t.Fatal(err)
			}
			if want := len(naive.Search(tg.g, graph.Cycle(4), naive.Options{})); count != want {
				t.Errorf("Count(C4) = %d, oracle = %d", count, want)
			}
		})
	}
}

// TestIndexMatchesDirect locks in the determinism contract: for the same
// Options.Seed, Index answers are identical to the one-shot core API's —
// shared preprocessing must not change results. Identity holds per run,
// so a reduced MaxRuns budget keeps the test fast without making the
// comparison weaker (both sides see exactly the same covers).
func TestIndexMatchesDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical sweep skipped in -short mode")
	}
	// Listing re-enumerates every band per run, so the List equality
	// sweep uses a pattern subset; Decide equality covers the full set.
	listPatterns := map[string]bool{"P3": true, "C4": true, "star4": true, "tree5": true}
	for _, tg := range testTargets() {
		t.Run(tg.name, func(t *testing.T) {
			for _, seed := range []uint64{1, 2} {
				opt := core.Options{Seed: seed, MaxRuns: 6}
				ix := New(tg.g, opt)
				for _, pt := range testPatterns() {
					direct, err1 := core.Decide(tg.g, pt.h, opt)
					indexed, err2 := ix.Decide(pt.h)
					if err1 != nil || err2 != nil {
						t.Fatalf("%s seed=%d: %v %v", pt.name, seed, err1, err2)
					}
					if direct != indexed {
						t.Errorf("%s seed=%d: Decide direct=%v indexed=%v", pt.name, seed, direct, indexed)
					}
					if !listPatterns[pt.name] {
						continue
					}
					directList, err1 := core.List(tg.g, pt.h, opt)
					indexedList, err2 := ix.ListOccurrences(pt.h)
					if err1 != nil || err2 != nil {
						t.Fatalf("%s seed=%d: %v %v", pt.name, seed, err1, err2)
					}
					if !equalKeys(sortedKeys(directList), sortedKeys(indexedList)) {
						t.Errorf("%s seed=%d: List direct %d occurrences, indexed %d (sets differ)",
							pt.name, seed, len(directList), len(indexedList))
					}
				}
			}
		})
	}
}

// TestScanMatchesPerPattern is the table-driven regression for the batch
// path: Scan/ScanCount must equal per-pattern Decide/CountOccurrences for
// the same seed, indexed and direct.
func TestScanMatchesPerPattern(t *testing.T) {
	patterns := testPatterns()
	batch := make([]*graph.Graph, len(patterns))
	for i, pt := range patterns {
		batch[i] = pt.h
	}
	for ti, tg := range testTargets() {
		countTarget := ti < 2 // ScanCount pays for full listings; two targets suffice
		t.Run(tg.name, func(t *testing.T) {
			if testing.Short() {
				t.Skip("statistical sweep skipped in -short mode")
			}
			opt := core.Options{Seed: 11, MaxRuns: 8}
			ix := New(tg.g, opt)
			for i, res := range ix.Scan(context.Background(), batch) {
				if res.Err != nil {
					t.Fatalf("%s: Scan: %v", patterns[i].name, res.Err)
				}
				direct, err := core.Decide(tg.g, batch[i], opt)
				if err != nil {
					t.Fatal(err)
				}
				if res.Found != direct {
					t.Errorf("%s: Scan=%v, direct Decide=%v", patterns[i].name, res.Found, direct)
				}
				single, err := ix.Decide(batch[i])
				if err != nil {
					t.Fatal(err)
				}
				if res.Found != single {
					t.Errorf("%s: Scan=%v, per-pattern Index.Decide=%v", patterns[i].name, res.Found, single)
				}
			}
			if !countTarget {
				return
			}
			for i, res := range ix.ScanCount(context.Background(), batch) {
				if res.Err != nil {
					t.Fatalf("%s: ScanCount: %v", patterns[i].name, res.Err)
				}
				direct, err := core.Count(tg.g, batch[i], opt)
				if err != nil {
					t.Fatal(err)
				}
				if res.Count != direct {
					t.Errorf("%s: ScanCount=%d, direct Count=%d", patterns[i].name, res.Count, direct)
				}
				if res.Found != (res.Count > 0) {
					t.Errorf("%s: ScanCount Found=%v inconsistent with Count=%d", patterns[i].name, res.Found, res.Count)
				}
			}
		})
	}
}

// TestScanOversizedPattern checks that a per-pattern failure does not
// poison the rest of the batch.
func TestScanOversizedPattern(t *testing.T) {
	ix := New(graph.Grid(4, 4), core.Options{Seed: 1})
	batch := []*graph.Graph{graph.Cycle(4), graph.Path(20), graph.Path(3)}
	res := ix.Scan(context.Background(), batch)
	if res[0].Err != nil || !res[0].Found {
		t.Errorf("C4: %+v", res[0])
	}
	if res[1].Err == nil {
		t.Error("oversized pattern: expected ErrPatternTooLarge")
	}
	if res[2].Err != nil || !res[2].Found {
		t.Errorf("P3: %+v", res[2])
	}
}

// TestIndexSeparating cross-validates DecideSeparating through the Index:
// the witness must verify and nil-ness must match the direct call.
func TestIndexSeparating(t *testing.T) {
	// A rim cycle whose removal separates the two poles (the Figure 7
	// family used by the core tests).
	rim := 6
	bld := graph.NewBuilder(rim + 2)
	for i := 0; i < rim; i++ {
		bld.AddEdge(int32(i), int32((i+1)%rim))
		bld.AddEdge(int32(i), int32(rim))
		bld.AddEdge(int32(i), int32(rim+1))
	}
	g := bld.Build()
	s := make([]bool, g.N())
	s[rim], s[rim+1] = true, true
	h := graph.Cycle(rim)

	opt := core.Options{Seed: 4}
	ix := New(g, opt)
	occ, err := ix.DecideSeparating(h, s)
	if err != nil {
		t.Fatal(err)
	}
	if occ == nil {
		t.Fatal("separating rim not found through the Index")
	}
	if !core.VerifySeparating(g, h, s, occ) {
		t.Fatalf("witness does not verify: %v", occ)
	}
	direct, err := core.DecideSeparating(g, h, s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if (direct == nil) != (occ == nil) {
		t.Errorf("separating nil-ness differs: direct=%v indexed=%v", direct, occ)
	}

	// A triangle cannot separate the poles of this target.
	none, err := ix.DecideSeparating(graph.Cycle(3), s)
	if err != nil {
		t.Fatal(err)
	}
	if none != nil {
		t.Errorf("C3 should not separate, got %v", none)
	}
}

// TestCacheReuse pins down the memoization contract: repeated requests
// return the same prepared artifacts, and clusterings are shared across
// pattern diameters of one size class.
func TestCacheReuse(t *testing.T) {
	ix := New(graph.Grid(6, 6), core.Options{Seed: 9})
	a := ix.Prepared(4, 2, 0)
	b := ix.Prepared(4, 2, 0)
	if a != b {
		t.Error("Prepared(4,2,0) rebuilt instead of cached")
	}
	if got := ix.CachedCovers(); got != 1 {
		t.Errorf("CachedCovers = %d, want 1", got)
	}
	// Same k, different d: new cover, same clustering.
	c := ix.Prepared(4, 3, 0)
	if c == a {
		t.Error("distinct (k,d) shapes must not share a prepared cover")
	}
	if got := ix.CachedClusterings(); got != 1 {
		t.Errorf("CachedClusterings = %d, want 1 (shared across d)", got)
	}
	if a.Cover.Clustering != c.Cover.Clustering {
		t.Error("covers of one (beta, run) must share the clustering")
	}
	// Separating covers share the clustering too.
	s := make([]bool, 36)
	s[0], s[35] = true, true
	sp := ix.PreparedSeparating(s, 4, 2, 0)
	if sp.Cover.Clustering != a.Cover.Clustering {
		t.Error("separating cover must reuse the (beta, run) clustering")
	}
	// Runs past the decide budget must not be memoized (the listing
	// loop can request arbitrarily deep run indices).
	before := ix.CachedCovers()
	if ix.Prepared(4, 2, core.RunBudget(36, core.Options{Seed: 9})) == nil {
		t.Error("overflow run returned nil")
	}
	if got := ix.CachedCovers(); got != before {
		t.Errorf("overflow run was cached: CachedCovers %d -> %d", before, got)
	}
	ix.Reset()
	if ix.CachedCovers() != 0 || ix.CachedClusterings() != 0 {
		t.Error("Reset left artifacts cached")
	}
	if ix.Prepared(4, 2, 0) == a {
		t.Error("Reset must drop memoized covers")
	}
}

// TestPrewarm checks that Prewarm materializes the full run budget and
// that subsequent same-shape queries are served entirely from cache.
func TestPrewarm(t *testing.T) {
	g := graph.Grid(6, 6)
	opt := core.Options{Seed: 2}
	ix := New(g, opt)
	ix.Prewarm(4, 2)
	want := core.RunBudget(g.N(), opt)
	if got := ix.CachedCovers(); got != want {
		t.Fatalf("CachedCovers after Prewarm = %d, want %d", got, want)
	}
	// C4 has k=4, d=2: deciding it must not build anything new.
	if _, err := ix.Decide(graph.Cycle(4)); err != nil {
		t.Fatal(err)
	}
	if got := ix.CachedCovers(); got != want {
		t.Errorf("Decide after Prewarm built new covers: %d, want %d", got, want)
	}
}

// TestIndexPlanarity exercises the cached embedding.
func TestIndexPlanarity(t *testing.T) {
	ix := New(graph.Grid(5, 5), core.Options{})
	if !ix.Planar() {
		t.Error("grid reported non-planar")
	}
	if emb, err := ix.Embedded(); err != nil || emb == nil {
		t.Errorf("Embedded: %v %v", emb, err)
	}
	k5 := New(graph.Complete(5), core.Options{})
	if k5.Planar() {
		t.Error("K5 reported planar")
	}
}

// TestConcurrentIndexQueries hammers one shared Index from a t.Run
// fan-out of parallel workers mixing every query type; run under -race
// this locks in the thread-safety of the memoized decompositions. The
// expectations are computed with the same (capped) options, so they are
// exact regardless of the budget.
func TestConcurrentIndexQueries(t *testing.T) {
	g := graph.Grid(6, 6)
	opt := core.Options{Seed: 13, MaxRuns: 8}
	ix := New(g, opt)
	patterns := testPatterns()
	batch := make([]*graph.Graph, len(patterns))
	want := make([]bool, len(patterns))
	wantCount := make([]int, len(patterns))
	for i, pt := range patterns {
		batch[i] = pt.h
		var err error
		if want[i], err = core.Decide(g, pt.h, opt); err != nil {
			t.Fatal(err)
		}
		if wantCount[i], err = core.Count(g, pt.h, opt); err != nil {
			t.Fatal(err)
		}
	}
	s := make([]bool, g.N())
	s[0], s[g.N()-1] = true, true

	t.Run("fanout", func(t *testing.T) {
		for w := 0; w < 8; w++ {
			t.Run(fmt.Sprintf("worker-%d", w), func(t *testing.T) {
				t.Parallel()
				for i, h := range batch {
					got, err := ix.Decide(h)
					if err != nil {
						t.Fatal(err)
					}
					if got != want[i] {
						t.Errorf("%s: concurrent Decide = %v, want %v", patterns[i].name, got, want[i])
					}
				}
				for i, res := range ix.Scan(context.Background(), batch) {
					if res.Err != nil {
						t.Fatal(res.Err)
					}
					if res.Found != want[i] {
						t.Errorf("%s: concurrent Scan = %v, want %v", patterns[i].name, res.Found, want[i])
					}
				}
				// Every worker counts one pattern and runs one separating
				// query, exercising List and the separating cache too.
				i := w % len(batch)
				count, err := ix.CountOccurrences(batch[i])
				if err != nil {
					t.Fatal(err)
				}
				if count != wantCount[i] {
					t.Errorf("%s: concurrent Count = %d, want %d", patterns[i].name, count, wantCount[i])
				}
				if _, err := ix.DecideSeparating(graph.Cycle(3), s); err != nil {
					t.Fatal(err)
				}
			})
		}
	})
}
