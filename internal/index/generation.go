package index

// Artifact generations: the copy-on-write layer beneath live edge
// mutation (ApplyEdits). Everything derived from the target graph — the
// graph itself, its lazy planar embedding, and the three memoized
// artifact tables — lives in a generation. The Index holds an atomic
// pointer to the current one; a query pins exactly one generation for
// its whole life, so it always sees one consistent (graph, artifacts)
// world even while edits land concurrently. ApplyEdits builds a
// successor generation off to the side (migrating every completed entry
// either verbatim or rebuilt), swaps the pointer, and retires the old
// generation, which is then held alive only by the queries still
// draining on it.
//
// The generation carries the memoized-build machinery that used to live
// on the Index: the per-key sync.Once entries, the depoison-on-panic
// discipline, and the CoverSource/SeparatingSource implementations the
// core pipeline consumes.

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"planarsi/internal/core"
	"planarsi/internal/estc"
	"planarsi/internal/graph"
	"planarsi/internal/planarity"
)

// generation is one immutable-graph world: target graph, lazy embedding,
// and the memoized artifact tables built against that graph. epoch
// counts the edit batches applied before this generation existed; refs
// counts its pins (one for being current, plus one per in-flight query).
type generation struct {
	ix    *Index
	epoch uint64
	g     *graph.Graph

	// embedOnce computes the target's planar embedding at most once
	// (queries do not need it, so it is lazy). embedDone flags a
	// completed build so Reset can carry the embedding into its
	// replacement generation; embedBytes publishes the embedded copy's
	// footprint for Stats.
	embedOnce  sync.Once
	embedDone  atomic.Bool
	embedded   *graph.Graph
	embedErr   error
	embedBytes atomic.Int64

	mu       sync.Mutex
	clusters map[clusterKey]*clusterEntry
	plain    map[coverKey]*coverEntry
	sep      map[sepKey]*coverEntry

	// refs is the pin count; retired marks a generation that has been
	// swapped out. When a retired generation's last pin drops, drainOnce
	// decrements the Index's retired-generation gauge exactly once.
	refs      atomic.Int64
	retired   atomic.Bool
	drainOnce sync.Once
}

// newGeneration builds an empty generation for g at the given epoch,
// pre-pinned once for its tenure as the current generation.
func (ix *Index) newGeneration(epoch uint64, g *graph.Graph) *generation {
	gen := &generation{
		ix:       ix,
		epoch:    epoch,
		g:        g,
		clusters: make(map[clusterKey]*clusterEntry),
		plain:    make(map[coverKey]*coverEntry),
		sep:      make(map[sepKey]*coverEntry),
	}
	gen.refs.Store(1)
	return gen
}

// acquire pins the current generation and returns it. The load-pin-check
// loop guarantees the returned generation was current at pin time, so a
// query that pins before an edit's swap drains on the pre-edit world and
// one that pins after sees the post-edit world — never a mixture.
func (ix *Index) acquire() *generation {
	for {
		gen := ix.cur.Load()
		gen.refs.Add(1)
		if ix.cur.Load() == gen {
			return gen
		}
		ix.release(gen)
	}
}

// release drops one pin. The last pin of a retired generation marks it
// drained (the artifacts themselves are reclaimed by the garbage
// collector once the query lets go of them).
func (ix *Index) release(gen *generation) {
	if gen.refs.Add(-1) == 0 && gen.retired.Load() {
		gen.drainOnce.Do(func() { ix.retiredGens.Add(-1) })
	}
}

// retire swaps gen out of currency: it is counted retired and its
// current-pin is dropped. Callers must already have published the
// successor via ix.cur.Store and hold editMu.
func (ix *Index) retire(gen *generation) {
	ix.retiredGens.Add(1)
	gen.retired.Store(true)
	ix.release(gen)
}

// embed computes the generation's planar embedding once.
func (gen *generation) embed() {
	gen.embedOnce.Do(func() {
		gen.embedded, gen.embedErr = planarity.Embed(gen.g)
		if gen.embedded != nil && gen.embedded != gen.g {
			gen.embedBytes.Store(gen.embedded.MemBytes())
		}
		gen.embedDone.Store(true)
	})
}

// adoptEmbedding installs a previously computed embedding result,
// pre-firing embedOnce. Reset uses it so replacing the artifact tables
// does not discard the (graph-determined) embedding.
func (gen *generation) adoptEmbedding(from *generation) {
	if !from.embedDone.Load() {
		return
	}
	gen.embedOnce.Do(func() {
		gen.embedded = from.embedded
		gen.embedErr = from.embedErr
		gen.embedBytes.Store(from.embedBytes.Load())
		gen.embedDone.Store(true)
	})
}

// clustering returns the memoized ESTC clustering for (beta, run).
func (gen *generation) clustering(beta float64, run int) *estc.Clustering {
	ix := gen.ix
	key := clusterKey{math.Float64bits(beta), run}
	gen.mu.Lock()
	e, ok := gen.clusters[key]
	if !ok {
		e = &clusterEntry{}
		gen.clusters[key] = e
	}
	gen.mu.Unlock()
	ix.memo[memoClustering].touch(ok && e.done.Load())
	e.once.Do(func() {
		t0 := time.Now()
		defer depoisonOnPanic(&e.done, func() {
			gen.mu.Lock()
			if gen.clusters[key] == e {
				delete(gen.clusters, key)
			}
			gen.mu.Unlock()
		})
		e.cl = core.ClusterRun(gen.g, beta, run, ix.opt)
		e.bytes = e.cl.MemBytes()
		ix.memo[memoClustering].buildNanos.Add(time.Since(t0).Nanoseconds())
		e.done.Store(true)
	})
	checkBuilt(&e.done, "clustering")
	return e.cl
}

// Prepared implements core.CoverSource against this generation's graph:
// the memoized prepared plain cover for run `run` of pattern shape
// (k, d), identical to the one core.PrepareRun would build fresh.
//
// Runs past the decide budget are built fresh and not cached: the
// listing loop's adaptive stopping rule (Theorem 4.2) can push run
// indices arbitrarily far on occurrence-rich targets, and memoizing that
// tail would grow the cache without bound. Identity of answers is
// unaffected — a fresh build equals a cached one by construction.
func (gen *generation) Prepared(k, d, run int) *core.PreparedCover {
	ix := gen.ix
	if run >= core.RunBudget(gen.g.N(), ix.opt) {
		// Deliberately uncached: every such access is a miss and its
		// build time is charged like a memoized build's.
		m := &ix.memo[memoPlainCover]
		m.touch(false)
		t0 := time.Now()
		pc := core.PrepareRun(gen.g, k, d, run, ix.opt)
		m.buildNanos.Add(time.Since(t0).Nanoseconds())
		return pc
	}
	key := coverKey{k, d, run}
	gen.mu.Lock()
	e, ok := gen.plain[key]
	if !ok {
		e = &coverEntry{}
		gen.plain[key] = e
	}
	gen.mu.Unlock()
	ix.memo[memoPlainCover].touch(ok && e.done.Load())
	e.once.Do(func() {
		t0 := time.Now()
		defer depoisonOnPanic(&e.done, func() {
			gen.mu.Lock()
			if gen.plain[key] == e {
				delete(gen.plain, key)
			}
			gen.mu.Unlock()
		})
		cl := gen.clustering(core.CoverBeta(k, ix.opt), run)
		e.pc = core.PrepareFromClustering(gen.g, cl, k, d, ix.opt)
		e.bytes = e.pc.MemBytes()
		e.bands = len(e.pc.Bands)
		ix.memo[memoPlainCover].buildNanos.Add(time.Since(t0).Nanoseconds())
		e.done.Store(true)
	})
	checkBuilt(&e.done, "prepared cover")
	return e.pc
}

// PreparedSeparating implements core.SeparatingSource: the memoized
// separating cover for run `run` of pattern shape (k, d) and terminal set
// s. It shares the (beta, run) clustering with the plain covers.
func (gen *generation) PreparedSeparating(s []bool, k, d, run int) *core.PreparedCover {
	ix := gen.ix
	key := sepKey{k, d, run, packMask(s)}
	gen.mu.Lock()
	e, ok := gen.sep[key]
	if !ok {
		e = &coverEntry{}
		gen.sep[key] = e
	}
	gen.mu.Unlock()
	ix.memo[memoSepCover].touch(ok && e.done.Load())
	e.once.Do(func() {
		t0 := time.Now()
		defer depoisonOnPanic(&e.done, func() {
			gen.mu.Lock()
			if gen.sep[key] == e {
				delete(gen.sep, key)
			}
			gen.mu.Unlock()
		})
		cl := gen.clustering(core.CoverBeta(k, ix.opt), run)
		e.pc = core.PrepareSeparatingFromClustering(gen.g, cl, s, k, d, ix.opt)
		e.bytes = e.pc.MemBytes()
		e.bands = len(e.pc.Bands)
		ix.memo[memoSepCover].buildNanos.Add(time.Since(t0).Nanoseconds())
		e.done.Store(true)
	})
	checkBuilt(&e.done, "separating cover")
	return e.pc
}
