package index

import (
	"context"
	"math/rand/v2"
	"testing"

	"planarsi/internal/core"
	"planarsi/internal/fault"
	"planarsi/internal/graph"
)

// relabeled returns an isomorphic copy of h under a fixed scramble, for
// exercising the canonical dedupe path.
func relabeled(h *graph.Graph, seed uint64) *graph.Graph {
	rng := rand.New(rand.NewPCG(seed, 99))
	perm := rng.Perm(h.N())
	b := graph.NewBuilder(h.N())
	for _, e := range h.Edges() {
		b.AddEdge(int32(perm[e[0]]), int32(perm[e[1]]))
	}
	return b.Build()
}

// diamond returns K4 minus one edge — same size and diameter as C4, so
// the two land in one shape group, but not isomorphic to it.
func diamond() *graph.Graph {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	return b.Build()
}

// TestScanBatchMatchesSingletonQueries: a batch mixing groupable
// members (shared shape), isomorphic duplicates, solo-path members
// (disconnected, single-vertex, trivially absent) and a failing member
// (oversized) must answer each position exactly like the corresponding
// singleton query — for both Scan and ScanCount.
func TestScanBatchMatchesSingletonQueries(t *testing.T) {
	g := graph.Grid(5, 5)
	opt := core.Options{Seed: 11}
	twoEdges := graph.NewBuilder(4) // disconnected: solo classification
	twoEdges.AddEdge(0, 1)
	twoEdges.AddEdge(2, 3)
	one := graph.NewBuilder(1) // k = 1: solo classification
	patterns := []*graph.Graph{
		graph.Cycle(4),               // grouped with the diamond (k=4, d=2)
		relabeled(graph.Cycle(4), 1), // isomorphic duplicate of member 0
		diamond(),                    // same shape, contains a triangle: absent
		graph.Cycle(6),               // present
		graph.Cycle(3),               // bipartite target: absent
		graph.Path(4),                // present
		graph.Star(5),                // present (interior degree 4)
		twoEdges.Build(),
		one.Build(),
		graph.Path(17), // k > MaxK: per-member error
	}

	ix := New(g, opt)
	for i, res := range ix.Scan(context.Background(), patterns) {
		want, err := core.Decide(g, patterns[i], opt)
		if (res.Err == nil) != (err == nil) {
			t.Fatalf("Scan member %d: err = %v, singleton err = %v", i, res.Err, err)
		}
		if err != nil {
			continue
		}
		if res.Found != want {
			t.Fatalf("Scan member %d: found = %v, singleton = %v", i, res.Found, want)
		}
	}
	for i, res := range ix.ScanCount(context.Background(), patterns) {
		want, err := core.Count(g, patterns[i], opt)
		if (res.Err == nil) != (err == nil) {
			t.Fatalf("ScanCount member %d: err = %v, singleton err = %v", i, res.Err, err)
		}
		if err != nil {
			continue
		}
		if res.Count != want || res.Found != (want > 0) {
			t.Fatalf("ScanCount member %d: count = %d found = %v, singleton = %d",
				i, res.Count, res.Found, want)
		}
	}
}

// TestScanDedupeAndSweepAccounting: queries stay per logical pattern
// while sweeps count physical DP dispatches — isomorphic duplicates add
// queries but no sweeps, and shape-mates share one sweep.
func TestScanDedupeAndSweepAccounting(t *testing.T) {
	g := graph.Grid(4, 4)
	ix := New(g, core.Options{Seed: 5})

	c4 := graph.Cycle(4)
	base := ix.Stats()

	// Three isomorphs of one pattern: three queries, one sweep.
	rs := ix.Scan(context.Background(), []*graph.Graph{c4, relabeled(c4, 2), relabeled(c4, 3)})
	for i, r := range rs {
		if r.Err != nil || !r.Found {
			t.Fatalf("member %d: %+v", i, r)
		}
	}
	st := ix.Stats()
	if q := st.Queries - base.Queries; q != 3 {
		t.Fatalf("isomorph batch charged %d queries, want 3", q)
	}
	if s := st.Sweeps - base.Sweeps; s != 1 {
		t.Fatalf("isomorph batch dispatched %d sweeps, want 1", s)
	}

	// Two distinct patterns of one shape (k=4, d=2): two queries, one
	// shared group sweep.
	base = st
	rs = ix.Scan(context.Background(), []*graph.Graph{c4, diamond()})
	if rs[0].Err != nil || !rs[0].Found {
		t.Fatalf("C4 member: %+v", rs[0])
	}
	if rs[1].Err != nil || rs[1].Found {
		t.Fatalf("diamond member: %+v (triangles cannot embed in a grid)", rs[1])
	}
	st = ix.Stats()
	if q := st.Queries - base.Queries; q != 2 {
		t.Fatalf("group batch charged %d queries, want 2", q)
	}
	if s := st.Sweeps - base.Sweeps; s != 1 {
		t.Fatalf("group batch dispatched %d sweeps, want 1", s)
	}

	// The compiled-pattern cache saw every member; the four C4 isomorphs
	// after the first are hits.
	for _, ms := range ix.MemoStats() {
		if ms.Class != "pattern" {
			continue
		}
		if ms.Misses < 2 || ms.Hits < 3 {
			t.Fatalf("pattern cache traffic hits=%d misses=%d, want >=3 hits and >=2 misses",
				ms.Hits, ms.Misses)
		}
	}
}

// TestScanGroupPanicFallsBackToSolo: a panic inside a shared group
// sweep must not fail the group — the group decomposes into per-pattern
// solo queries and every member still gets its answer.
func TestScanGroupPanicFallsBackToSolo(t *testing.T) {
	defer fault.Disable()
	g := graph.Grid(4, 4)
	ix := New(g, core.Options{Seed: 9})
	patterns := []*graph.Graph{graph.Cycle(4), diamond(), relabeled(graph.Cycle(4), 7)}

	// Warm the shape's covers so the injected fault lands inside the
	// shared group sweep's DP, not inside artifact preparation.
	warm := ix.Scan(context.Background(), patterns)
	base := ix.Stats()

	if err := fault.Enable("dp.panic=first:1", 1); err != nil {
		t.Fatal(err)
	}
	rs := ix.Scan(context.Background(), patterns)
	fault.Disable()

	for i, r := range rs {
		if r.Err != nil {
			t.Fatalf("member %d: %v (group panic must fall back to solo, not fail)", i, r.Err)
		}
		if r.Found != warm[i].Found {
			t.Fatalf("member %d: found = %v after fallback, want %v", i, r.Found, warm[i].Found)
		}
	}
	// Accounting: one poisoned group dispatch plus one solo rerun per
	// distinct pattern (C4 and the diamond; the C4 isomorph rides along).
	if s := ix.Stats().Sweeps - base.Sweeps; s != 3 {
		t.Fatalf("fallback batch dispatched %d sweeps, want 3 (group + 2 solo reruns)", s)
	}
}
