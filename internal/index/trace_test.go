package index

import (
	"context"
	"testing"

	"planarsi/internal/core"
	"planarsi/internal/graph"
	"planarsi/internal/obs"
)

// TestTraceSpansMatchStatsBands is the trace-soundness check: on a warm
// index, a traced miss query (no early exit, so every run and band
// executes) must record exactly one "band" span per Stats band and one
// "prepare" span per Stats run — the trace timeline and the counters
// describe the same work.
func TestTraceSpansMatchStatsBands(t *testing.T) {
	g := graph.Grid(6, 6)
	opt := core.Options{Seed: 3, MaxRuns: 4}
	ix := New(g, opt)
	h := graph.Cycle(3) // no triangles in a grid: a guaranteed miss

	// Warm the caches so the traced query serves purely memoized covers.
	if found, err := ix.Decide(h); err != nil || found {
		t.Fatalf("warm-up Decide = %v, %v; want false, nil", found, err)
	}

	var st core.Stats
	rec := obs.NewRecorder(0)
	qopt := opt
	qopt.Stats = &st
	qopt.Trace = rec
	found, err := core.DecideFrom(ix, g, h, qopt)
	if err != nil || found {
		t.Fatalf("traced Decide = %v, %v; want false, nil", found, err)
	}

	spans, dropped := rec.Snapshot()
	if dropped != 0 {
		t.Fatalf("dropped %d spans; raise the limit for this test", dropped)
	}
	var bands, prepares int
	for _, s := range spans {
		switch s.Name {
		case "band":
			bands++
		case "prepare":
			prepares++
		}
	}
	if st.Bands == 0 || st.Runs == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	if bands != st.Bands {
		t.Errorf("band spans = %d, Stats.Bands = %d", bands, st.Bands)
	}
	if prepares != st.Runs {
		t.Errorf("prepare spans = %d, Stats.Runs = %d", prepares, st.Runs)
	}
}

// TestDecideCtxPicksUpRecorder checks the context carrier end to end:
// a recorder attached via obs.WithRecorder reaches the pipeline through
// DecideCtx and receives at least one band span.
func TestDecideCtxPicksUpRecorder(t *testing.T) {
	g := graph.Grid(5, 5)
	ix := New(g, core.Options{Seed: 1, MaxRuns: 2})
	rec := obs.NewRecorder(0)
	ctx := obs.WithRecorder(context.Background(), rec)
	if _, err := ix.DecideCtx(ctx, graph.Cycle(4)); err != nil {
		t.Fatal(err)
	}
	spans, _ := rec.Snapshot()
	var bands int
	for _, s := range spans {
		if s.Name == "band" {
			bands++
		}
	}
	if bands == 0 {
		t.Fatalf("no band spans recorded; spans = %+v", spans)
	}
}
