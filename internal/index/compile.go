package index

import (
	"time"

	"planarsi/internal/graph"
	"planarsi/internal/match"
)

// Compiled-pattern cache: every pattern entering the Index is reduced to
// its canonical form (match.CanonicalKey), and the derived query shape —
// vertex count, connectivity, diameter — is memoized under that key.
// Isomorphic patterns therefore share one compiled entry: the second
// pattern of a batch that is a relabeling of the first skips the
// Components/Diameter scans entirely, and batched scans use the key to
// dedupe members before dispatching DP sweeps. The cache is bounded
// (FIFO eviction at patternCacheCap entries) because pattern shapes are
// query-side input, not target-side artifacts: an adversarial client
// could otherwise grow it without limit.

// patternCacheCap bounds the compiled-pattern cache.
const patternCacheCap = 1024

// compiledBytes approximates one cache entry's overhead beyond its key
// (struct, map bucket and eviction-queue shares) for MemoStats.
const compiledBytes = 64

// compiled is one canonical pattern's memoized query shape.
type compiled struct {
	// key is the pattern's canonical form (match.CanonicalKey).
	key string
	// k is the vertex count; connected reports one component.
	k         int
	connected bool
	// d is the pattern diameter, computed only for connected patterns
	// with k >= 2 (the only shape the banded pipeline keys on).
	d int
}

// compile canonicalizes the pattern h and returns its compiled shape,
// building and caching it on first sight of the canonical form. It
// returns nil for patterns the cache does not model (k = 0 or
// k > match.MaxK); callers fall back to the per-pattern pipeline, which
// classifies those itself. Safe for concurrent use.
func (ix *Index) compile(h *graph.Graph) *compiled {
	k := h.N()
	if k == 0 || k > match.MaxK {
		return nil
	}
	key := match.CanonicalKey(h)
	ix.pmu.Lock()
	c, ok := ix.patterns[key]
	ix.pmu.Unlock()
	ix.memo[memoPattern].touch(ok)
	if ok {
		return c
	}
	t0 := time.Now()
	c = &compiled{key: key, k: k}
	_, comps := graph.Components(h)
	c.connected = comps == 1
	if c.connected && k >= 2 {
		c.d = graph.Diameter(h)
	}
	ix.memo[memoPattern].buildNanos.Add(time.Since(t0).Nanoseconds())
	ix.pmu.Lock()
	defer ix.pmu.Unlock()
	if prev, ok := ix.patterns[key]; ok {
		// A concurrent compile of an isomorphic pattern won the race; its
		// entry is equivalent (both derive from the same canonical form).
		return prev
	}
	if len(ix.patterns) >= patternCacheCap {
		delete(ix.patterns, ix.porder[0])
		ix.porder = ix.porder[1:]
	}
	ix.patterns[key] = c
	ix.porder = append(ix.porder, key)
	return c
}
