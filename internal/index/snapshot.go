package index

// Persistence: an Index's memoized artifact tables can be written to a
// versioned binary snapshot (internal/snap) and restored behind the
// same memoization keys, so a process restart warm-boots from disk
// instead of re-paying the target-side preprocessing.
//
// What is snapshotted: the target graph, the pipeline configuration
// (Seed, Engine, MaxRuns, Heuristic, Beta), the lifetime query counter,
// and every *completed* memoized artifact — clusterings by (beta, run),
// plain prepared covers by (k, d, run), separating covers by (k, d,
// run, terminal mask) — together with their accounted byte footprints,
// carried verbatim so a restored Index reports byte-identical Stats.
//
// What is not: artifacts still under construction when Save runs
// (their sync.Once has not completed; the restored Index rebuilds them
// on demand, bit-identically, from the derived (Seed, stream, run)
// randomness), covers past the decide run budget (never memoized, see
// Prepared), and the cached planar embedding (recomputed lazily).

import (
	"cmp"
	"fmt"
	"io"
	"slices"
	"strings"

	"planarsi/internal/core"
	"planarsi/internal/snap"
)

// configOnly strips the per-call attachments (Tracker, Stats, Cancel)
// from an option set, leaving the value configuration a snapshot
// records.
func configOnly(o core.Options) core.Options {
	return core.Options{
		Seed:      o.Seed,
		Engine:    o.Engine,
		MaxRuns:   o.MaxRuns,
		Heuristic: o.Heuristic,
		Beta:      o.Beta,
	}
}

// Snapshot captures the Index's completed memoized artifacts as a
// serializable snapshot. Artifacts under construction are skipped (a
// restored Index rebuilds them bit-identically on demand), so Snapshot
// is safe to call concurrently with queries — "mid-churn" saves are
// first-class. Artifact lists are sorted by key, so equal cache
// contents always serialize to identical bytes.
func (ix *Index) Snapshot() *snap.Snapshot {
	gen := ix.acquire()
	defer ix.release(gen)
	s := &snap.Snapshot{
		Options: configOnly(ix.opt),
		Queries: ix.queries.Load(),
		Sweeps:  ix.sweeps.Load(),
		Epoch:   gen.epoch,
		Graph:   gen.g,
	}
	gen.mu.Lock()
	for key, e := range gen.clusters {
		if e.done.Load() {
			s.Clusters = append(s.Clusters, snap.ClusterArtifact{
				BetaBits: key.betaBits, Run: key.run, Bytes: e.bytes, C: e.cl,
			})
		}
	}
	for key, e := range gen.plain {
		if e.done.Load() {
			s.Plain = append(s.Plain, snap.CoverArtifact{
				K: key.k, D: key.d, Run: key.run, Bytes: e.bytes, PC: e.pc,
			})
		}
	}
	for key, e := range gen.sep {
		if e.done.Load() {
			s.Sep = append(s.Sep, snap.CoverArtifact{
				K: key.k, D: key.d, Run: key.run, Bytes: e.bytes, Mask: key.s, PC: e.pc,
			})
		}
	}
	gen.mu.Unlock()

	slices.SortFunc(s.Clusters, func(a, b snap.ClusterArtifact) int {
		if c := cmp.Compare(a.BetaBits, b.BetaBits); c != 0 {
			return c
		}
		return cmp.Compare(a.Run, b.Run)
	})
	sortCovers := func(list []snap.CoverArtifact) {
		slices.SortFunc(list, func(a, b snap.CoverArtifact) int {
			if c := cmp.Compare(a.K, b.K); c != 0 {
				return c
			}
			if c := cmp.Compare(a.D, b.D); c != 0 {
				return c
			}
			if c := cmp.Compare(a.Run, b.Run); c != 0 {
				return c
			}
			return strings.Compare(a.Mask, b.Mask)
		})
	}
	sortCovers(s.Plain)
	sortCovers(s.Sep)
	return s
}

// Save writes the Index's snapshot to w (see Snapshot for what is and
// is not captured). The written artifacts are immutable, so Save may
// run concurrently with queries; queries finishing new artifacts during
// the write land in the next Save.
func (ix *Index) Save(w io.Writer) error {
	return snap.Write(w, ix.Snapshot())
}

// FromSnapshot reconstructs an Index from a decoded snapshot: the
// restored artifacts are installed behind the same memoization keys,
// with their sync.Once already completed, so the first query for a
// restored (k, d, run) is served from cache exactly as on the Index
// that saved it. Because per-run randomness is derived purely from
// (Seed, stream, run), a restored Index answers byte-identically to a
// freshly built Index with the same Options — restoring only moves
// preprocessing cost, never answers.
func FromSnapshot(s *snap.Snapshot) (*Index, error) {
	ix := New(s.Graph, s.Options)
	ix.queries.Store(s.Queries)
	ix.sweeps.Store(s.Sweeps)
	// The generation is freshly built and unpublished beyond this
	// constructor, so its tables can be populated directly; its epoch
	// resumes the saved mutation history.
	gen := ix.cur.Load()
	gen.epoch = s.Epoch
	for _, ca := range s.Clusters {
		key := clusterKey{ca.BetaBits, ca.Run}
		if _, dup := gen.clusters[key]; dup {
			return nil, fmt.Errorf("%w: duplicate clustering key %+v", snap.ErrFormat, key)
		}
		e := &clusterEntry{}
		cl, bytes := ca.C, ca.Bytes
		e.once.Do(func() {
			e.cl = cl
			e.bytes = bytes
			e.done.Store(true)
		})
		gen.clusters[key] = e
	}
	install := func(e *coverEntry, ca snap.CoverArtifact) {
		pc, bytes := ca.PC, ca.Bytes
		e.once.Do(func() {
			e.pc = pc
			e.bytes = bytes
			e.bands = len(pc.Bands)
			e.done.Store(true)
		})
	}
	for _, ca := range s.Plain {
		key := coverKey{ca.K, ca.D, ca.Run}
		if _, dup := gen.plain[key]; dup {
			return nil, fmt.Errorf("%w: duplicate plain cover key %+v", snap.ErrFormat, key)
		}
		e := &coverEntry{}
		install(e, ca)
		gen.plain[key] = e
	}
	for _, ca := range s.Sep {
		key := sepKey{ca.K, ca.D, ca.Run, ca.Mask}
		if _, dup := gen.sep[key]; dup {
			return nil, fmt.Errorf("%w: duplicate separating cover key (k=%d d=%d run=%d)", snap.ErrFormat, ca.K, ca.D, ca.Run)
		}
		e := &coverEntry{}
		install(e, ca)
		gen.sep[key] = e
	}
	return ix, nil
}

// Load reads a snapshot written by Save and reconstructs the Index (see
// FromSnapshot). The reader is treated as untrusted: malformed input
// fails with an error wrapping snap.ErrFormat, never a panic.
func Load(r io.Reader) (*Index, error) {
	s, err := snap.Read(r)
	if err != nil {
		return nil, err
	}
	return FromSnapshot(s)
}
