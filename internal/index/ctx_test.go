package index

import (
	"context"
	"errors"
	"math/rand/v2"
	"testing"
	"time"

	"planarsi/internal/core"
	"planarsi/internal/graph"
)

// TestScanCancelledContext: a context that is already dead fails every
// pattern of the batch with the context's error, without corrupting the
// Index (a follow-up Scan with a live context answers exactly like the
// direct API).
func TestScanCancelledContext(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 43))
	g := graph.RandomPlanar(300, 0.7, rng)
	opt := core.Options{Seed: 3, MaxRuns: 6}
	ix := New(g, opt)
	patterns := []*graph.Graph{graph.Cycle(3), graph.Cycle(4), graph.Path(4), graph.Star(4)}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, res := range ix.Scan(ctx, patterns) {
		if !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("pattern %d: Err = %v, want context.Canceled", i, res.Err)
		}
	}

	// The cancelled batch must not have poisoned any cached artifact:
	// answers now equal the direct API's for the same Options.
	for i, res := range ix.Scan(context.Background(), patterns) {
		if res.Err != nil {
			t.Fatalf("pattern %d: %v", i, res.Err)
		}
		want, err := core.Decide(g, patterns[i], opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found != want {
			t.Fatalf("pattern %d: post-cancel Scan=%v direct=%v", i, res.Found, want)
		}
	}
}

// TestScanMidFlightCancel races a cancellation against a running batch;
// whatever the outcome, a fresh Scan must still be byte-identical to the
// direct API (the soundness property — no partial artifact or stale
// arena state may leak).
func TestScanMidFlightCancel(t *testing.T) {
	rng := rand.New(rand.NewPCG(47, 53))
	g := graph.RandomPlanar(400, 0.7, rng)
	opt := core.Options{Seed: 4, MaxRuns: 6}
	patterns := []*graph.Graph{graph.Cycle(4), graph.Star(4), graph.Path(3)}

	for _, delay := range []time.Duration{0, 200 * time.Microsecond, 2 * time.Millisecond} {
		ix := New(g, opt)
		ctx, cancel := context.WithCancel(context.Background())
		go func(d time.Duration) {
			time.Sleep(d)
			cancel()
		}(delay)
		for i, res := range ix.Scan(ctx, patterns) {
			if res.Err != nil && !errors.Is(res.Err, context.Canceled) {
				t.Fatalf("delay %v pattern %d: unexpected error %v", delay, i, res.Err)
			}
		}
		for i, res := range ix.Scan(context.Background(), patterns) {
			if res.Err != nil {
				t.Fatalf("delay %v pattern %d: %v", delay, i, res.Err)
			}
			want, err := core.Decide(g, patterns[i], opt)
			if err != nil {
				t.Fatal(err)
			}
			if res.Found != want {
				t.Fatalf("delay %v pattern %d: rerun=%v direct=%v", delay, i, res.Found, want)
			}
		}
	}
}

// TestCtxVariantsBackground: the *Ctx variants with a background context
// must behave exactly like the plain methods.
func TestCtxVariantsBackground(t *testing.T) {
	rng := rand.New(rand.NewPCG(59, 61))
	g := graph.RandomPlanar(200, 0.6, rng)
	opt := core.Options{Seed: 9, MaxRuns: 6}
	ix := New(g, opt)
	h := graph.Cycle(4)

	found, err := ix.DecideCtx(context.Background(), h)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ix.Decide(h)
	if err != nil || found != want {
		t.Fatalf("DecideCtx=%v Decide=%v err=%v", found, want, err)
	}
	n, err := ix.CountOccurrencesCtx(context.Background(), h)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ix.CountOccurrences(h)
	if err != nil || n != m {
		t.Fatalf("CountOccurrencesCtx=%d CountOccurrences=%d err=%v", n, m, err)
	}

	// Deadline already expired: the context error surfaces.
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := ix.DecideCtx(expired, h); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired DecideCtx err = %v, want DeadlineExceeded", err)
	}
}
