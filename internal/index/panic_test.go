package index

import (
	"context"
	"errors"
	"strings"
	"testing"

	"planarsi/internal/core"
	"planarsi/internal/fault"
	"planarsi/internal/graph"
	"planarsi/internal/par"
)

func TestGuardConvertsPanics(t *testing.T) {
	if err := Guard(func() error { return nil }); err != nil {
		t.Fatalf("clean body: %v", err)
	}
	err := Guard(func() error { panic("raw") })
	var qp *QueryPanicError
	if !errors.As(err, &qp) || !errors.Is(err, ErrQueryPanic) {
		t.Fatalf("raw panic: err = %v", err)
	}
	if qp.Value != "raw" || len(qp.Stack) == 0 {
		t.Fatalf("raw panic payload = %+v", qp)
	}
	// A par-carried panic keeps the original value and stack.
	carried := &par.PanicError{Value: "deep", Stack: []byte("stack-at-origin")}
	err = Guard(func() error { panic(carried) })
	if !errors.As(err, &qp) || qp.Value != "deep" || string(qp.Stack) != "stack-at-origin" {
		t.Fatalf("carried panic payload = %+v", qp)
	}
}

// TestScanMemberPanicIsolation is the batch-poisoning regression: one
// injected panic under a coalesced scan must cost exactly one member
// its answer, and the rest of the batch must still be correct.
func TestScanMemberPanicIsolation(t *testing.T) {
	defer fault.Disable()
	g := graph.Grid(4, 4)
	ix := New(g, core.Options{Seed: 1})
	patterns := make([]*graph.Graph, 8)
	for i := range patterns {
		patterns[i] = graph.Cycle(4)
	}

	if err := fault.Enable("query.panic=first:1", 1); err != nil {
		t.Fatal(err)
	}
	res := ix.Scan(context.Background(), patterns)
	fault.Disable()

	panicked := 0
	for i, r := range res {
		if r.Err != nil {
			if !errors.Is(r.Err, ErrQueryPanic) {
				t.Fatalf("member %d: unexpected err %v", i, r.Err)
			}
			panicked++
			continue
		}
		if !r.Found {
			t.Fatalf("member %d: found=false, want true (C4 in 4x4 grid)", i)
		}
	}
	if panicked != 1 {
		t.Fatalf("%d members errored, want exactly 1", panicked)
	}

	// The index (and the shared pool under it) must be fully usable
	// after the panic: a clean rescan answers everything.
	for i, r := range ix.Scan(context.Background(), patterns) {
		if r.Err != nil || !r.Found {
			t.Fatalf("post-fault member %d: %+v", i, r)
		}
	}
}

// TestDPPanicCrossesPoolToScanErr injects the panic deep inside a band
// dynamic program — on a pool worker, mid-solve — and asserts it
// surfaces as the member's error instead of killing the process or
// poisoning the artifact cache.
func TestDPPanicCrossesPoolToScanErr(t *testing.T) {
	defer fault.Disable()
	g := graph.Grid(4, 4)
	ix := New(g, core.Options{Seed: 1})

	if err := fault.Enable("dp.panic=first:1", 1); err != nil {
		t.Fatal(err)
	}
	res := ix.Scan(context.Background(), []*graph.Graph{graph.Cycle(4)})
	fault.Disable()
	if len(res) != 1 || res[0].Err == nil {
		t.Fatalf("injected band panic not surfaced: %+v", res)
	}
	if !errors.Is(res[0].Err, ErrQueryPanic) {
		t.Fatalf("err = %v, want ErrQueryPanic", res[0].Err)
	}
	var qp *QueryPanicError
	if !errors.As(res[0].Err, &qp) {
		t.Fatalf("err = %T", res[0].Err)
	}
	if _, ok := qp.Value.(*fault.InjectedPanic); !ok {
		t.Fatalf("panic value = %T (%v), want *fault.InjectedPanic", qp.Value, qp.Value)
	}
	if !strings.Contains(string(qp.Stack), "injectBandFaults") {
		t.Fatalf("stack does not name the injection site:\n%s", qp.Stack)
	}

	// Same query again, fault-free: correct answer, caches intact.
	res = ix.Scan(context.Background(), []*graph.Graph{graph.Cycle(4)})
	if res[0].Err != nil || !res[0].Found {
		t.Fatalf("post-fault rescan: %+v", res[0])
	}
}

// TestMemoDepoisonAfterBuildPanic: a panic inside a memoized artifact
// build must not leave a permanently poisoned sync.Once behind — the
// next query rebuilds the artifact and answers.
func TestMemoDepoisonAfterBuildPanic(t *testing.T) {
	defer fault.Disable()
	g := graph.Grid(4, 4)
	ix := New(g, core.Options{Seed: 1})

	// dp.panic's first hits land inside prepare()'s band-decomposition
	// loop, i.e. inside the cover memo's once.Do build. Without the
	// depoison logic the panicked build would leave a done Once with a
	// nil cover behind and every later C4 query would fail; with it the
	// entry is dropped and the clean rescan rebuilds.
	if err := fault.Enable("dp.panic=first:64", 1); err != nil {
		t.Fatal(err)
	}
	res := ix.Scan(context.Background(), []*graph.Graph{graph.Cycle(4)})
	if res[0].Err == nil {
		t.Fatal("expected injected failure")
	}
	fault.Disable()

	res = ix.Scan(context.Background(), []*graph.Graph{graph.Cycle(4)})
	if res[0].Err != nil || !res[0].Found {
		t.Fatalf("cache poisoned after build panic: %+v", res[0])
	}
	if ix.CachedCovers() == 0 {
		t.Fatal("no covers cached after clean rescan")
	}
}

func TestSingleQueryPanicPropagatesToCaller(t *testing.T) {
	defer fault.Disable()
	g := graph.Grid(4, 4)
	ix := New(g, core.Options{Seed: 1})
	if err := fault.Enable("query.panic=first:1", 1); err != nil {
		t.Fatal(err)
	}
	// The unbatched library methods keep panic semantics: the injected
	// panic reaches the caller's goroutine (exactly once), where a
	// caller-side Guard converts it.
	err := Guard(func() error {
		_, err := ix.Decide(graph.Cycle(4))
		return err
	})
	fault.Disable()
	if !errors.Is(err, ErrQueryPanic) {
		t.Fatalf("err = %v", err)
	}
	if found, err := ix.Decide(graph.Cycle(4)); err != nil || !found {
		t.Fatalf("post-fault Decide: found=%v err=%v", found, err)
	}
}
