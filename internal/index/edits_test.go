package index

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"planarsi/internal/core"
	"planarsi/internal/graph"
	"planarsi/internal/snap"
)

// editBase returns the non-embedded grid the edit tests mutate. Serving
// targets arrive as edge lists (never embedded), so the tests exercise
// that representation.
func editBase(r, c int) *graph.Graph {
	g := graph.Grid(r, c)
	return graph.FromEdges(g.N(), g.Edges())
}

// editOracleQueries runs the query mix the oracle tests compare across
// an edited and a fresh index.
func editOracleQueries(t *testing.T, ix *Index) []string {
	t.Helper()
	var out []string
	for _, h := range []*graph.Graph{graph.Cycle(3), graph.Cycle(4), graph.Path(4)} {
		found, err := ix.Decide(h)
		if err != nil {
			t.Fatalf("Decide: %v", err)
		}
		n, err := ix.CountOccurrences(h)
		if err != nil {
			t.Fatalf("Count: %v", err)
		}
		occ, err := ix.FindOccurrence(h)
		if err != nil {
			t.Fatalf("Find: %v", err)
		}
		out = append(out, fmt.Sprintf("found=%v count=%d occ=%v", found, n, occ))
	}
	s := make([]bool, ix.Graph().N())
	s[0] = true
	s[ix.Graph().N()-1] = true
	occ, err := ix.DecideSeparating(graph.Cycle(4), s)
	if err != nil {
		t.Fatalf("DecideSeparating: %v", err)
	}
	out = append(out, fmt.Sprintf("sep=%v", occ))
	for _, r := range ix.Scan(context.Background(), []*graph.Graph{graph.Cycle(4), graph.Path(3)}) {
		if r.Err != nil {
			t.Fatalf("Scan: %v", r.Err)
		}
		out = append(out, fmt.Sprintf("scan found=%v", r.Found))
	}
	return out
}

// TestApplyEditsOracle is the acceptance-criteria check: after a batch
// of edits, the index answers byte-identically to a fresh Index built on
// the edited graph, and its artifact tables serialize to the same bytes.
//
// The byte comparison warms both sides via Prewarm rather than queries:
// Prewarm materializes a deterministic key set (the full run budget,
// which depends only on N), whereas queries early-exit on found and so
// memoize different run counts on different graphs. Per-key the migrated
// artifacts are bit-identical to fresh ones; the fixed key set makes
// whole snapshots comparable.
func TestApplyEditsOracle(t *testing.T) {
	g := editBase(6, 6)
	opt := core.Options{Seed: 7, MaxRuns: 3}
	ix := New(g, opt)
	ix.Prewarm(4, 2)

	add := [][2]int32{{0, 7}, {14, 21}}
	remove := [][2]int32{{0, 1}, {28, 29}}
	res, err := ix.ApplyEdits(EditBatch{Add: add, Remove: remove})
	if err != nil {
		t.Fatalf("ApplyEdits: %v", err)
	}
	if res.Epoch != 1 || ix.Epoch() != 1 {
		t.Fatalf("epoch = %d / %d, want 1", res.Epoch, ix.Epoch())
	}
	if res.Added != 2 || res.Removed != 2 {
		t.Fatalf("res = %+v, want 2 added / 2 removed", res)
	}

	g2, err := g.WithEdits(add, remove)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(ix.Graph(), g2) {
		t.Fatal("edited index graph differs from WithEdits result")
	}
	fresh := New(g2, opt)
	fresh.Prewarm(4, 2)

	// Artifact-table identity: with traffic counters normalized, the
	// migrated index and the fresh one serialize byte-identically.
	se, sf := ix.Snapshot(), fresh.Snapshot()
	se.Queries, se.Sweeps, se.Epoch = 0, 0, 0
	sf.Queries, sf.Sweeps, sf.Epoch = 0, 0, 0
	var be, bf bytes.Buffer
	if err := snap.Write(&be, se); err != nil {
		t.Fatal(err)
	}
	if err := snap.Write(&bf, sf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(be.Bytes(), bf.Bytes()) {
		t.Fatalf("artifact snapshots diverged: edited %d bytes, fresh %d bytes", be.Len(), bf.Len())
	}

	got := editOracleQueries(t, ix)
	want := editOracleQueries(t, fresh)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("answer %d diverged after edit:\n edited: %s\n fresh:  %s", i, got[i], want[i])
		}
	}
}

// TestApplyEditsSurgical checks the invalidation is band-granular: a
// single removed edge rebuilds some bands but keeps the rest, and the
// lifetime counters expose both sides.
func TestApplyEditsSurgical(t *testing.T) {
	ix := New(editBase(8, 8), core.Options{Seed: 3, MaxRuns: 3})
	ix.Prewarm(4, 2)

	res, err := ix.ApplyEdits(EditBatch{Remove: [][2]int32{{0, 1}}})
	if err != nil {
		t.Fatalf("ApplyEdits: %v", err)
	}
	total := res.Bands.Kept + res.Bands.Rebuilt
	if total == 0 {
		t.Fatal("no bands migrated; Prewarm built nothing?")
	}
	if res.Bands.Kept == 0 {
		t.Fatalf("edit of one edge rebuilt every band (%d): invalidation is not surgical", total)
	}
	if res.Bands.Rebuilt == total {
		t.Fatalf("every band rebuilt (%d of %d)", res.Bands.Rebuilt, total)
	}

	inv := map[string]InvalidationStats{}
	for _, st := range ix.InvalidationStats() {
		inv[st.Class] = st
	}
	if got := inv["band"]; got.Retained != uint64(res.Bands.Kept) || got.Invalidated != uint64(res.Bands.Rebuilt) {
		t.Fatalf("band counters %+v disagree with result %+v", got, res.Bands)
	}
	if inv["clustering"].Retained+inv["clustering"].Invalidated == 0 {
		t.Fatal("no clustering migration recorded")
	}
	if st := ix.Stats(); st.Epoch != 1 {
		t.Fatalf("Stats.Epoch = %d, want 1", st.Epoch)
	}
}

func TestApplyEditsEpochConflict(t *testing.T) {
	ix := New(editBase(3, 3), core.Options{Seed: 1, MaxRuns: 2})
	zero, one := uint64(0), uint64(1)

	if _, err := ix.ApplyEdits(EditBatch{Add: [][2]int32{{0, 4}}, IfEpoch: &one}); !errors.Is(err, ErrEpochConflict) {
		t.Fatalf("stale IfEpoch: err = %v, want ErrEpochConflict", err)
	}
	if ix.Epoch() != 0 {
		t.Fatal("failed batch advanced the epoch")
	}
	if _, err := ix.ApplyEdits(EditBatch{Add: [][2]int32{{0, 4}}, IfEpoch: &zero}); err != nil {
		t.Fatalf("matching IfEpoch rejected: %v", err)
	}
	if ix.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", ix.Epoch())
	}
}

func TestApplyEditsRejectsBadBatch(t *testing.T) {
	g := editBase(3, 3)
	ix := New(g, core.Options{Seed: 1, MaxRuns: 2})
	cases := []EditBatch{
		{Add: [][2]int32{{0, 1}}},     // already present
		{Remove: [][2]int32{{0, 8}}},  // absent
		{Add: [][2]int32{{2, 2}}},     // self-loop
		{Add: [][2]int32{{0, 99}}},    // out of range
		{Remove: [][2]int32{{-1, 0}}}, // negative
	}
	for i, b := range cases {
		if _, err := ix.ApplyEdits(b); !errors.Is(err, graph.ErrEdit) {
			t.Fatalf("case %d: err = %v, want graph.ErrEdit", i, err)
		}
	}
	if ix.Epoch() != 0 || !graph.Equal(ix.Graph(), g) {
		t.Fatal("rejected batches must leave the index unchanged")
	}
}

func TestApplyEditsRequirePlanar(t *testing.T) {
	// K4 plus an isolated-ish path; adding the fifth clique vertex's
	// edges would create K5.
	g := graph.FromEdges(5, [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4},
	})
	ix := New(g, core.Options{Seed: 1, MaxRuns: 2})
	k5 := EditBatch{Add: [][2]int32{{0, 4}, {1, 4}, {2, 4}}, RequirePlanar: true}
	if _, err := ix.ApplyEdits(k5); !errors.Is(err, ErrNonPlanarEdit) {
		t.Fatalf("err = %v, want ErrNonPlanarEdit", err)
	}
	if ix.Epoch() != 0 {
		t.Fatal("rejected batch advanced the epoch")
	}
	if !ix.Planar() {
		t.Fatal("base graph should be planar")
	}
	// Without the gate the same batch applies, and the index keeps
	// answering (correctness does not need planarity, only the work
	// bound does).
	k5.RequirePlanar = false
	if _, err := ix.ApplyEdits(k5); err != nil {
		t.Fatalf("ungated batch rejected: %v", err)
	}
	if ix.Planar() {
		t.Fatal("K5 must not be planar")
	}
	found, err := ix.Decide(graph.Cycle(3))
	if err != nil || !found {
		t.Fatalf("post-edit Decide(C3) = %v, %v; want true", found, err)
	}
}

// TestApplyEditsEpochDrain is the concurrency contract under -race:
// scans pin one generation (answers always match exactly one epoch's
// oracle, never a mixture), concurrent saves stay decodable and
// byte-stable per epoch, and retired generations drain to zero.
func TestApplyEditsEpochDrain(t *testing.T) {
	opt := core.Options{Seed: 5, MaxRuns: 2}
	base := editBase(4, 4)
	patterns := []*graph.Graph{graph.Cycle(3), graph.Cycle(4)}

	// Precompute each epoch's expected answer vector (and graph) from
	// fresh builds: epoch e = base plus e diagonal edges.
	diagonals := [][2]int32{{0, 5}, {10, 15}, {2, 7}}
	oracle := make(map[uint64]string)
	graphs := make([]*graph.Graph, len(diagonals)+1)
	graphs[0] = base
	for e := 0; e <= len(diagonals); e++ {
		if e > 0 {
			var err error
			graphs[e], err = graphs[e-1].WithEdits([][2]int32{diagonals[e-1]}, nil)
			if err != nil {
				t.Fatal(err)
			}
		}
		fresh := New(graphs[e], opt)
		var vec string
		for _, r := range fresh.Scan(context.Background(), patterns) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			vec += fmt.Sprintf("%v,", r.Found)
		}
		oracle[uint64(e)] = vec
	}

	ix := New(base, opt)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, 64)

	// Scanners: every result vector must be exactly one epoch's.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var vec string
				for _, r := range ix.Scan(context.Background(), patterns) {
					if r.Err != nil {
						errc <- r.Err
						return
					}
					vec += fmt.Sprintf("%v,", r.Found)
				}
				ok := false
				for _, want := range oracle {
					if vec == want {
						ok = true
						break
					}
				}
				if !ok {
					errc <- fmt.Errorf("scan vector %q matches no epoch oracle %v", vec, oracle)
					return
				}
			}
		}()
	}

	// Saver: snapshots taken mid-churn must decode, and each must carry
	// a valid epoch.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := ix.Save(&buf); err != nil {
				errc <- err
				return
			}
			s, err := snap.Read(&buf)
			if err != nil {
				errc <- fmt.Errorf("mid-churn snapshot unreadable: %w", err)
				return
			}
			if s.Epoch > uint64(len(diagonals)) {
				errc <- fmt.Errorf("snapshot epoch %d out of range", s.Epoch)
				return
			}
			if !graph.Equal(s.Graph, graphs[s.Epoch]) {
				errc <- fmt.Errorf("snapshot at epoch %d carries a different epoch's graph", s.Epoch)
				return
			}
		}
	}()

	// Editor: apply the diagonal edits with small gaps.
	for _, d := range diagonals {
		time.Sleep(20 * time.Millisecond)
		if _, err := ix.ApplyEdits(EditBatch{Add: [][2]int32{d}}); err != nil {
			t.Fatalf("ApplyEdits: %v", err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	if ix.Epoch() != uint64(len(diagonals)) {
		t.Fatalf("final epoch = %d, want %d", ix.Epoch(), len(diagonals))
	}
	// All pins are released: retired generations have drained.
	for i := 0; i < 100 && ix.RetiredGenerations() != 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if n := ix.RetiredGenerations(); n != 0 {
		t.Fatalf("%d retired generations still pinned after drain", n)
	}

	// Quiescent byte-stability at the final epoch.
	var a, b bytes.Buffer
	if err := ix.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("quiescent saves are not byte-stable")
	}
}

// TestApplyEditsSnapshotRoundTrip checks a warm boot resumes the
// mutation history: epoch and artifacts survive Save/Load, and further
// edits continue from the restored epoch.
func TestApplyEditsSnapshotRoundTrip(t *testing.T) {
	ix := New(editBase(4, 4), core.Options{Seed: 2, MaxRuns: 2})
	if _, err := ix.Decide(graph.Cycle(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.ApplyEdits(EditBatch{Add: [][2]int32{{0, 5}}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.Epoch() != 1 {
		t.Fatalf("restored epoch = %d, want 1", ix2.Epoch())
	}
	if !graph.Equal(ix2.Graph(), ix.Graph()) {
		t.Fatal("restored graph differs")
	}
	if _, err := ix2.ApplyEdits(EditBatch{Remove: [][2]int32{{0, 5}}}); err != nil {
		t.Fatal(err)
	}
	if ix2.Epoch() != 2 {
		t.Fatalf("epoch after restored edit = %d, want 2", ix2.Epoch())
	}
}
