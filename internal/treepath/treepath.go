// Package treepath implements Lemma 3.2 and Appendix A of the paper:
// decomposing a rooted tree into O(log n) layers of vertex-disjoint paths,
// with the layer numbers computed either sequentially or by parallel tree
// contraction over the closed family of unary functions {f≠i, g=i} the
// appendix exhibits. It also provides pointer-jumping list ranking, which
// the shortcut construction of Section 3.3.3 uses to position vertices
// within forest paths.
//
// The layer number L of a node is 0 at leaves; an interior node takes the
// maximum layer among its children if that maximum is unique, and the
// maximum plus one otherwise. Nodes of equal layer form vertex-disjoint
// paths (no node has two children of its own layer), and the layer count
// is at most ⌊log₂ n⌋ + 1 because a layer increment requires two children
// of equal maximal layer, halving the population per layer.
package treepath

import (
	"planarsi/internal/wd"
)

// Children builds children lists from a parent array (root has parent -1;
// forests with several roots are allowed).
func Children(parent []int32) [][]int32 {
	ch := make([][]int32, len(parent))
	for v, p := range parent {
		if p >= 0 {
			ch[p] = append(ch[p], int32(v))
		}
	}
	return ch
}

// LayersSequential computes layer numbers with a post-order traversal.
func LayersSequential(parent []int32) []int32 {
	n := len(parent)
	layers := make([]int32, n)
	ch := Children(parent)
	// Iterative post-order over every root.
	state := make([]int32, n) // next child index to visit
	for r := 0; r < n; r++ {
		if parent[r] >= 0 {
			continue
		}
		stack := []int32{int32(r)}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			if int(state[v]) < len(ch[v]) {
				c := ch[v][state[v]]
				state[v]++
				stack = append(stack, c)
				continue
			}
			stack = stack[:len(stack)-1]
			var lmax int32 = -1
			unique := true
			for _, c := range ch[v] {
				switch {
				case layers[c] > lmax:
					lmax, unique = layers[c], true
				case layers[c] == lmax:
					unique = false
				}
			}
			if lmax < 0 {
				layers[v] = 0
			} else if unique {
				layers[v] = lmax
			} else {
				layers[v] = lmax + 1
			}
		}
	}
	return layers
}

// ---- Appendix A: the closed unary function family ----
//
// The appendix proposes the family {f≠i, g=i} with
//
//	f≠i(x) = i+1 if x == i, max(i, x) otherwise
//	g=i(x) = i+1 if i >= x, x otherwise
//
// and claims it is closed under composition. As printed, it is not:
// (f≠2 ∘ f≠1)(1) = f≠2(2) = 3, but the appendix's table says the
// composite equals f≠max(2,1) = f≠2, which maps 1 to 2. The issue arises
// whenever the inner function's bump output collides with the outer
// function's bump point (i = j + 1).
//
// The actual closure of {f≠i, g=i} under composition is the three-
// parameter family
//
//	φ(A,s,t)(x) = A    if x < s
//	            = t+1  if s <= x <= t
//	            = x    if x > t
//
// with A <= t+1 (identity is φ(0,0,-1), f≠i is φ(i,i,i), and g=i is
// φ(i+1,0,i)). Composition stays O(1), so Lemma 3.2's bounds are
// unaffected; EXPERIMENTS.md records the deviation, and the tests verify
// closure exhaustively over small parameter ranges.
type uFn struct {
	a, s, t int32
}

var identityFn = uFn{a: 0, s: 0, t: -1}

// fNeq is the appendix's f≠i: "running maximum i, currently unique".
func fNeq(i int32) uFn { return uFn{a: i, s: i, t: i} }

// gEq is the appendix's g=i: "running maximum i, currently tied".
func gEq(i int32) uFn { return uFn{a: i + 1, s: 0, t: i} }

// apply evaluates the function at x.
func (h uFn) apply(x int32) int32 {
	switch {
	case x > h.t:
		return x
	case x >= h.s:
		return h.t + 1
	default:
		return h.a
	}
}

// compose returns a ∘ b (apply b first, then a). The derivation of the
// three cases is in the comment above; each preserves A <= t+1.
func compose(a, b uFn) uFn {
	switch {
	case b.t >= a.t:
		// a is identity above b's plateau: only b's low constant moves.
		return uFn{a: a.apply(b.a), s: b.s, t: b.t}
	case a.s <= b.t+1:
		// b's plateau lands inside a's bump region: plateaus merge.
		return uFn{a: a.apply(b.a), s: b.s, t: a.t}
	default:
		// b's outputs below a.s all collapse onto a's low constant
		// (b.a <= b.t+1 < a.s guarantees a.apply(b.a) == a.a).
		return uFn{a: a.a, s: a.s, t: a.t}
	}
}

// aggregate tracks the (max, unique) state over the child layer values a
// node has received so far.
type aggregate struct {
	lmax   int32 // -1 when nothing arrived
	unique bool
}

func (a *aggregate) add(x int32) {
	switch {
	case x > a.lmax:
		a.lmax, a.unique = x, true
	case x == a.lmax:
		a.unique = false
	}
}

// value finishes the aggregate into the node's layer number.
func (a *aggregate) value() int32 {
	if a.lmax < 0 {
		return 0 // leaf
	}
	if a.unique {
		return a.lmax
	}
	return a.lmax + 1
}

// projection turns the aggregate over all-but-one children into the unary
// function of the missing child's value: L(l1..lk-1, x) = f≠m(x) when the
// received maximum m is unique, g=m(x) otherwise (Appendix A).
func (a *aggregate) projection() uFn {
	if a.lmax < 0 {
		return identityFn // unary node: L(x) = x
	}
	if a.unique {
		return fNeq(a.lmax)
	}
	return gEq(a.lmax)
}

// LayersParallel computes the same layer numbers as LayersSequential via
// randomized tree contraction (Miller-Reif rake and compress), evaluating
// the expression tree of L over the appendix's function family. The round
// count — O(log n) in expectation — is recorded on tr as depth.
func LayersParallel(parent []int32, tr *wd.Tracker) []int32 {
	n := len(parent)
	layers := make([]int32, n)
	if n == 0 {
		return layers
	}
	ch := Children(parent)
	unresolved := make([]int32, n) // children not yet delivered
	agg := make([]aggregate, n)
	fun := make([]uFn, n) // edge function toward the current parent
	up := make([]int32, n)
	resolved := make([]bool, n)
	spliced := make([]bool, n)
	for v := 0; v < n; v++ {
		unresolved[v] = int32(len(ch[v]))
		agg[v] = aggregate{lmax: -1}
		fun[v] = identityFn
		up[v] = parent[v]
	}
	// Splice events for the expansion phase: when w is spliced out, its
	// layer is proj(fBelow(layer of its unresolved child)); replaying the
	// events in reverse order resolves all spliced nodes.
	type spliceEvent struct {
		w, c   int32
		fBelow uFn
		proj   uFn
	}
	var events []spliceEvent
	pending := n
	rnd := uint64(0x9e3779b97f4a7c15)
	round := 0
	for pending > 0 {
		round++
		// Rake: resolve nodes with no unresolved children.
		var raked []int32
		for v := 0; v < n; v++ {
			if !resolved[v] && !spliced[v] && unresolved[v] == 0 {
				raked = append(raked, int32(v))
			}
		}
		for _, v := range raked {
			layers[v] = agg[v].value()
			resolved[v] = true
			pending--
			if p := up[v]; p >= 0 {
				agg[p].add(fun[v].apply(layers[v]))
				unresolved[p]--
			}
		}
		// Compress: splice unary-pending nodes with coin flips so no two
		// adjacent chain nodes splice in the same round.
		live := make([]int32, n) // unresolved child if exactly one, else -1
		for v := range live {
			live[v] = -1
		}
		cnt := make([]int32, n)
		for v := 0; v < n; v++ {
			if resolved[v] || spliced[v] {
				continue
			}
			if p := up[v]; p >= 0 {
				cnt[p]++
				if cnt[p] == 1 {
					live[p] = int32(v)
				} else {
					live[p] = -1
				}
			}
		}
		coin := func(v int32) bool {
			x := rnd + uint64(v)*0xbf58476d1ce4e5b9 + uint64(round)*0x94d049bb133111eb
			x ^= x >> 31
			x *= 0xbf58476d1ce4e5b9
			x ^= x >> 27
			return x&1 == 0
		}
		// Decide all splices from a snapshot before mutating anything:
		// deciding and mutating in one pass would let a node observe its
		// chain-child as already spliced and splice adjacent to it, which
		// orphans the child's delivery and stalls the contraction.
		elig := make([]bool, n)
		for v := 0; v < n; v++ {
			elig[v] = !resolved[v] && !spliced[v] && unresolved[v] == 1 && live[v] >= 0 && up[v] >= 0
		}
		splice := make([]bool, n)
		for v := 0; v < n; v++ {
			if !elig[v] || !coin(int32(v)) {
				continue
			}
			// Defer to a chain-child that also flipped heads, so no two
			// adjacent chain nodes splice in the same round.
			c := live[v]
			cChain := elig[c]
			if !cChain || !coin(c) {
				splice[v] = true
			}
		}
		for v := 0; v < n; v++ {
			if !splice[v] {
				continue
			}
			w := int32(v)
			c := live[w]
			// Splice w: c now reports to up[w] through w's projection.
			events = append(events, spliceEvent{w: w, c: c, fBelow: fun[c], proj: agg[w].projection()})
			fun[c] = compose(compose(fun[w], agg[w].projection()), fun[c])
			up[c] = up[w]
			spliced[w] = true
			pending--
		}
		tr.AddPhaseRounds("treecontract", 1)
		tr.AddPhaseWork("treecontract", int64(n))
	}
	// Expansion: replay splice events in reverse. When the event for w
	// is processed, its child c has already been resolved (either during
	// contraction or by a later event processed earlier in this loop),
	// so layer[w] = proj(fBelow(layer[c])).
	for i := len(events) - 1; i >= 0; i-- {
		e := events[i]
		layers[e.w] = e.proj.apply(e.fBelow.apply(layers[e.c]))
	}
	tr.AddPhaseRounds("treecontract", 1)
	return layers
}
