package treepath

import (
	"planarsi/internal/par"
	"planarsi/internal/wd"
)

// PathDecomposition groups the nodes of a rooted tree (or forest) into
// vertex-disjoint paths, one per maximal run of equal layer numbers along
// parent edges, organized into layers per Lemma 3.2:
//
//   - every path lies entirely in one layer;
//   - a node's children are in the same or a smaller layer, so all paths
//     of layer i can be processed once layers < i are done;
//   - there are at most ⌊log₂ n⌋ + 1 layers.
type PathDecomposition struct {
	// Paths lists each path bottom-up (Paths[p][0] is the lowest node).
	Paths [][]int32
	// LayerOfPath gives each path's layer.
	LayerOfPath []int32
	// PathOf / PosInPath locate every node inside its path.
	PathOf    []int32
	PosInPath []int32
	// NumLayers is 1 + the maximum layer.
	NumLayers int
}

// Decompose builds the path decomposition from a parent array and its
// layer numbers (from LayersSequential or LayersParallel).
func Decompose(parent []int32, layers []int32) *PathDecomposition {
	n := len(parent)
	ch := Children(parent)
	pd := &PathDecomposition{
		PathOf:    make([]int32, n),
		PosInPath: make([]int32, n),
	}
	for i := range pd.PathOf {
		pd.PathOf[i] = -1
	}
	// A node is a path bottom iff none of its children shares its layer.
	for v := 0; v < n; v++ {
		bottom := true
		for _, c := range ch[v] {
			if layers[c] == layers[v] {
				bottom = false
				break
			}
		}
		if !bottom {
			continue
		}
		id := int32(len(pd.Paths))
		var path []int32
		u := int32(v)
		for {
			path = append(path, u)
			pd.PathOf[u] = id
			pd.PosInPath[u] = int32(len(path) - 1)
			p := parent[u]
			if p < 0 || layers[p] != layers[u] {
				break
			}
			u = p
		}
		pd.Paths = append(pd.Paths, path)
		pd.LayerOfPath = append(pd.LayerOfPath, layers[v])
		if int(layers[v])+1 > pd.NumLayers {
			pd.NumLayers = int(layers[v]) + 1
		}
	}
	return pd
}

// PathsByLayer returns path ids grouped by layer, in increasing layer
// order: the processing schedule of Section 3.3.1 (all paths of one layer
// are independent and run in parallel).
func (pd *PathDecomposition) PathsByLayer() [][]int32 {
	out := make([][]int32, pd.NumLayers)
	for p, l := range pd.LayerOfPath {
		out[l] = append(out[l], int32(p))
	}
	return out
}

// ListRank computes, for each list node, its distance to the end of its
// list (next[v] == -1 means v is an end, rank 0) by pointer jumping:
// O(n log n) work and O(log n) rounds, recorded on tr. This is the
// classic PRAM list-ranking primitive the shortcut construction uses to
// position forest-path vertices.
func ListRank(next []int32, tr *wd.Tracker) []int32 {
	n := len(next)
	rank := make([]int32, n)
	nxt := make([]int32, n)
	copy(nxt, next)
	for i := range rank {
		if nxt[i] >= 0 {
			rank[i] = 1
		}
	}
	rank2 := make([]int32, n)
	nxt2 := make([]int32, n)
	for {
		done := true
		for _, p := range nxt {
			if p >= 0 {
				done = false
				break
			}
		}
		if done {
			break
		}
		par.For(0, n, func(i int) {
			if nxt[i] >= 0 {
				rank2[i] = rank[i] + rank[nxt[i]]
				nxt2[i] = nxt[nxt[i]]
			} else {
				rank2[i] = rank[i]
				nxt2[i] = -1
			}
		})
		rank, rank2 = rank2, rank
		nxt, nxt2 = nxt2, nxt
		tr.AddPhaseRounds("listrank", 1)
		tr.AddPhaseWork("listrank", int64(n))
	}
	return rank
}
