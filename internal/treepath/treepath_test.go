package treepath

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"planarsi/internal/wd"
)

// randomTreeParents builds a random rooted tree on n nodes (parent[0]=-1).
func randomTreeParents(n int, rng *rand.Rand) []int32 {
	parent := make([]int32, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = int32(rng.IntN(v))
	}
	return parent
}

// pathParents builds a path 0 <- 1 <- ... <- n-1 rooted at 0.
func pathParents(n int) []int32 {
	parent := make([]int32, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = int32(v - 1)
	}
	return parent
}

// completeBinaryParents builds a complete binary tree.
func completeBinaryParents(n int) []int32 {
	parent := make([]int32, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = int32((v - 1) / 2)
	}
	return parent
}

func TestLayersSequentialPath(t *testing.T) {
	layers := LayersSequential(pathParents(10))
	for v, l := range layers {
		if l != 0 {
			t.Fatalf("path node %d layer=%d want 0", v, l)
		}
	}
}

func TestLayersSequentialCompleteBinary(t *testing.T) {
	// A complete binary tree of height h has root layer h: every internal
	// node has two children of equal layer.
	n := 1<<6 - 1
	layers := LayersSequential(completeBinaryParents(n))
	if layers[0] != 5 {
		t.Fatalf("root layer=%d want 5", layers[0])
	}
	for v := n / 2; v < n; v++ {
		if layers[v] != 0 {
			t.Fatalf("leaf %d layer=%d", v, layers[v])
		}
	}
}

func TestLayerCountLogBound(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.IntN(3000)
		parent := randomTreeParents(n, rng)
		layers := LayersSequential(parent)
		maxL := int32(0)
		for _, l := range layers {
			if l > maxL {
				maxL = l
			}
		}
		bound := int32(math.Log2(float64(n))) + 1
		if maxL+1 > bound {
			t.Fatalf("n=%d: %d layers exceed log bound %d", n, maxL+1, bound)
		}
	}
}

func TestLayersParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	shapes := [][]int32{
		pathParents(1),
		pathParents(2),
		pathParents(50),
		completeBinaryParents(63),
		randomTreeParents(500, rng),
	}
	for trial := 0; trial < 40; trial++ {
		shapes = append(shapes, randomTreeParents(2+rng.IntN(300), rng))
	}
	for i, parent := range shapes {
		want := LayersSequential(parent)
		got := LayersParallel(parent, nil)
		for v := range want {
			if want[v] != got[v] {
				t.Fatalf("shape %d: node %d: parallel=%d sequential=%d", i, v, got[v], want[v])
			}
		}
	}
}

func TestLayersParallelRoundsLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	tr := wd.NewTracker()
	n := 20000
	parent := randomTreeParents(n, rng)
	LayersParallel(parent, tr)
	rounds := tr.PhaseRounds("treecontract")
	// Expect O(log n); allow a generous constant.
	if rounds > 30*int64(math.Log2(float64(n))) {
		t.Fatalf("tree contraction took %d rounds for n=%d", rounds, n)
	}
}

func TestLayersParallelForest(t *testing.T) {
	// Forest: two roots.
	parent := []int32{-1, 0, 0, -1, 3, 3, 4}
	want := LayersSequential(parent)
	got := LayersParallel(parent, nil)
	for v := range want {
		if want[v] != got[v] {
			t.Fatalf("forest node %d: parallel=%d sequential=%d", v, got[v], want[v])
		}
	}
}

func TestFunctionFamilyClosure(t *testing.T) {
	// compose(a, b).apply(x) must equal a.apply(b.apply(x)) for all small
	// combinations: verifies the Appendix A composition table.
	var fns []uFn
	fns = append(fns, identityFn)
	for i := int32(0); i < 5; i++ {
		fns = append(fns, fNeq(i), gEq(i))
	}
	// Include two-deep composites so closure is checked beyond the base
	// generators (this is where the paper's printed table fails).
	base := append([]uFn(nil), fns...)
	for _, a := range base {
		for _, b := range base {
			fns = append(fns, compose(a, b))
		}
	}
	for _, a := range fns {
		for _, b := range fns {
			c := compose(a, b)
			for x := int32(0); x < 8; x++ {
				want := a.apply(b.apply(x))
				got := c.apply(x)
				if want != got {
					t.Fatalf("compose(%v,%v)(%d) = %d want %d", a, b, x, got, want)
				}
			}
		}
	}
}

func TestDecomposeProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.IntN(500)
		parent := randomTreeParents(n, rng)
		layers := LayersSequential(parent)
		pd := Decompose(parent, layers)
		// Every node in exactly one path.
		seen := make([]int, n)
		for p, path := range pd.Paths {
			if len(path) == 0 {
				t.Fatal("empty path")
			}
			for pos, v := range path {
				seen[v]++
				if pd.PathOf[v] != int32(p) || pd.PosInPath[v] != int32(pos) {
					t.Fatal("PathOf/PosInPath inconsistent")
				}
				if layers[v] != pd.LayerOfPath[p] {
					t.Fatal("path mixes layers")
				}
			}
			// Consecutive nodes are parent-linked bottom-up.
			for i := 0; i+1 < len(path); i++ {
				if parent[path[i]] != path[i+1] {
					t.Fatal("path not parent-linked")
				}
			}
		}
		for v, s := range seen {
			if s != 1 {
				t.Fatalf("node %d in %d paths", v, s)
			}
		}
		// Lemma 3.2 property: children of a node never sit in a larger
		// layer.
		for v := 0; v < n; v++ {
			if p := parent[v]; p >= 0 && layers[v] > layers[p] {
				t.Fatal("child layer exceeds parent layer")
			}
		}
	}
}

func TestPathsByLayerSchedule(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	parent := randomTreeParents(300, rng)
	layers := LayersSequential(parent)
	pd := Decompose(parent, layers)
	byLayer := pd.PathsByLayer()
	count := 0
	for l, paths := range byLayer {
		for _, p := range paths {
			if pd.LayerOfPath[p] != int32(l) {
				t.Fatal("path in wrong layer bucket")
			}
			count++
		}
	}
	if count != len(pd.Paths) {
		t.Fatal("PathsByLayer lost paths")
	}
}

func TestListRank(t *testing.T) {
	// A single list 0 -> 1 -> ... -> 9.
	n := 10
	next := make([]int32, n)
	for i := 0; i < n-1; i++ {
		next[i] = int32(i + 1)
	}
	next[n-1] = -1
	rank := ListRank(next, nil)
	for i := 0; i < n; i++ {
		if rank[i] != int32(n-1-i) {
			t.Fatalf("rank[%d]=%d want %d", i, rank[i], n-1-i)
		}
	}
}

func TestListRankMultipleLists(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	// Build several disjoint lists with random interleaved ids.
	n := 500
	perm := rng.Perm(n)
	next := make([]int32, n)
	want := make([]int32, n)
	idx := 0
	for idx < n {
		length := 1 + rng.IntN(40)
		if idx+length > n {
			length = n - idx
		}
		for i := 0; i < length; i++ {
			v := perm[idx+i]
			if i == length-1 {
				next[v] = -1
			} else {
				next[v] = int32(perm[idx+i+1])
			}
			want[v] = int32(length - 1 - i)
		}
		idx += length
	}
	got := ListRank(next, nil)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("rank[%d]=%d want %d", v, got[v], want[v])
		}
	}
}

func TestListRankRounds(t *testing.T) {
	tr := wd.NewTracker()
	n := 4096
	next := make([]int32, n)
	for i := 0; i < n-1; i++ {
		next[i] = int32(i + 1)
	}
	next[n-1] = -1
	ListRank(next, tr)
	if r := tr.PhaseRounds("listrank"); r > 14 {
		t.Fatalf("list ranking took %d rounds for n=%d, want ~log n", r, n)
	}
}

// Regression: the randomized compress phase once spliced two adjacent
// chain nodes in one round (the second observing the first's mutation),
// orphaning a delivery and hanging the contraction. Stress the parallel
// layers on shapes that maximize chains: long paths, brooms, and many
// random trees.
func TestLayersParallelStress(t *testing.T) {
	shapes := [][]int32{
		chainParent(500),
		broomParent(200, 50),
	}
	rng := rand.New(rand.NewPCG(71, 72))
	for trial := 0; trial < 60; trial++ {
		shapes = append(shapes, randomParent(5+rng.IntN(300), rng))
	}
	for i, parent := range shapes {
		done := make(chan []int32, 1)
		go func() { done <- LayersParallel(parent, nil) }()
		select {
		case got := <-done:
			want := LayersSequential(parent)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("shape %d: layer mismatch at %d: %d vs %d", i, v, got[v], want[v])
				}
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("shape %d: contraction hung", i)
		}
	}
}

// chainParent builds a path rooted at 0.
func chainParent(n int) []int32 {
	parent := make([]int32, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = int32(v - 1)
	}
	return parent
}

// broomParent builds a chain with a fan of leaves at the end.
func broomParent(chain, leaves int) []int32 {
	parent := chainParent(chain + leaves)
	for l := 0; l < leaves; l++ {
		parent[chain+l] = int32(chain - 1)
	}
	return parent
}

func randomParent(n int, rng *rand.Rand) []int32 {
	parent := make([]int32, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = int32(rng.IntN(v))
	}
	return parent
}
