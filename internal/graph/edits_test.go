package graph

import (
	"errors"
	"testing"
)

func pathGraph(n int) *Graph {
	edges := make([][2]int32, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, [2]int32{int32(i), int32(i + 1)})
	}
	return FromEdges(n, edges)
}

func TestWithEditsAddRemove(t *testing.T) {
	g := pathGraph(5) // 0-1-2-3-4
	g2, err := g.WithEdits([][2]int32{{0, 4}, {1, 3}}, [][2]int32{{2, 3}})
	if err != nil {
		t.Fatalf("WithEdits: %v", err)
	}
	if g2.N() != 5 || g2.M() != 5 {
		t.Fatalf("got n=%d m=%d, want n=5 m=5", g2.N(), g2.M())
	}
	if g2.HasEdge(2, 3) {
		t.Fatal("removed edge {2,3} still present")
	}
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {3, 4}, {0, 4}, {1, 3}} {
		if !g2.HasEdge(e[0], e[1]) {
			t.Fatalf("edge {%d,%d} missing", e[0], e[1])
		}
	}
	// The receiver is untouched.
	if !g.HasEdge(2, 3) || g.HasEdge(0, 4) {
		t.Fatal("WithEdits mutated its receiver")
	}
}

// The determinism contract: editing an edge-list build equals a fresh
// build from the surviving edges (original order) plus the additions.
func TestWithEditsMatchesFreshBuild(t *testing.T) {
	edges := [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}}
	g := FromEdges(4, edges)
	g2, err := g.WithEdits([][2]int32{{1, 3}}, [][2]int32{{0, 2}})
	if err != nil {
		t.Fatalf("WithEdits: %v", err)
	}
	fresh := FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 3}})
	if !Equal(g2, fresh) {
		t.Fatalf("edited graph differs from fresh build:\n edited: %v %v\n fresh:  %v %v",
			g2.off, g2.adj, fresh.off, fresh.adj)
	}
}

func TestWithEditsRemoveThenReAdd(t *testing.T) {
	g := pathGraph(3)
	g2, err := g.WithEdits([][2]int32{{0, 1}}, [][2]int32{{0, 1}})
	if err != nil {
		t.Fatalf("remove+re-add of the same edge should be allowed: %v", err)
	}
	if !g2.HasEdge(0, 1) || g2.M() != g.M() {
		t.Fatal("re-added edge missing")
	}
	// The re-added edge moves to the tail of each endpoint's adjacency,
	// matching a fresh build with that edge last.
	fresh := FromEdges(3, [][2]int32{{1, 2}, {0, 1}})
	if !Equal(g2, fresh) {
		t.Fatal("re-add did not match fresh build ordering")
	}
}

func TestWithEditsRejections(t *testing.T) {
	g := pathGraph(4)
	cases := []struct {
		name        string
		add, remove [][2]int32
	}{
		{"add existing", [][2]int32{{0, 1}}, nil},
		{"add existing reversed", [][2]int32{{1, 0}}, nil},
		{"add self-loop", [][2]int32{{2, 2}}, nil},
		{"add out of range", [][2]int32{{0, 9}}, nil},
		{"add negative", [][2]int32{{-1, 2}}, nil},
		{"add duplicate", [][2]int32{{0, 2}, {2, 0}}, nil},
		{"remove absent", nil, [][2]int32{{0, 3}}},
		{"remove out of range", nil, [][2]int32{{0, 4}}},
		{"remove duplicate", nil, [][2]int32{{0, 1}, {1, 0}}},
		{"remove self-loop", nil, [][2]int32{{1, 1}}},
	}
	for _, tc := range cases {
		g2, err := g.WithEdits(tc.add, tc.remove)
		if err == nil {
			t.Errorf("%s: expected error, got graph %v", tc.name, g2)
			continue
		}
		if !errors.Is(err, ErrEdit) {
			t.Errorf("%s: error %v does not wrap ErrEdit", tc.name, err)
		}
	}
}

func TestWithEditsDropsEmbedding(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.BuildEmbedded([]float64{0, 1, 2}, []float64{0, 1, 0})
	if !g.Embedded() {
		t.Fatal("setup: graph should be embedded")
	}
	g2, err := g.WithEdits([][2]int32{{0, 2}}, nil)
	if err != nil {
		t.Fatalf("WithEdits: %v", err)
	}
	if g2.Embedded() {
		t.Fatal("edited graph must not claim an embedding")
	}
	if x, y := g2.Coords(1); x != 0 || y != 0 {
		t.Fatal("edited graph must not carry coordinates")
	}
}

func TestEqual(t *testing.T) {
	a := pathGraph(4)
	b := pathGraph(4)
	if !Equal(a, b) {
		t.Fatal("identical builds must be Equal")
	}
	if !Equal(nil, nil) || Equal(a, nil) || Equal(nil, b) {
		t.Fatal("nil handling")
	}
	// Same edge set, different insertion order => different adjacency
	// order => not Equal.
	c := FromEdges(4, [][2]int32{{2, 3}, {1, 2}, {0, 1}})
	if Equal(a, c) {
		t.Fatal("Equal must distinguish adjacency order")
	}
	d, err := a.WithEdits([][2]int32{{0, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if Equal(a, d) {
		t.Fatal("Equal must distinguish edge sets")
	}
}
