package graph

import "fmt"

// Face tracing for embedded planar graphs.
//
// A combinatorial embedding assigns every vertex a cyclic (counterclockwise)
// order of its incident edges. The faces of the embedding are the orbits of
// the "next dart" permutation: arriving at v along the dart (u -> v), the
// face boundary continues along the edge that follows (v -> u) in clockwise
// order around v. For a counterclockwise rotation list this is the
// predecessor of u's position.
//
// Darts are indexed by their position in the CSR adjacency array: dart p
// represents the directed edge (tail(p) -> g.adj[p]).

// Faces holds the result of tracing an embedding.
type Faces struct {
	// FaceOfDart maps each dart (CSR position) to its face id.
	FaceOfDart []int32
	// Boundary holds, for each face, the cyclic sequence of vertices on
	// its boundary walk (tails of the darts in orbit order).
	Boundary [][]int32
}

// NumFaces returns the number of faces.
func (f *Faces) NumFaces() int { return len(f.Boundary) }

// dartTails returns, for each dart position, its tail vertex.
func dartTails(g *Graph) []int32 {
	tails := make([]int32, len(g.adj))
	for v := int32(0); v < int32(g.N()); v++ {
		for p := g.off[v]; p < g.off[v+1]; p++ {
			tails[p] = v
		}
	}
	return tails
}

// reverseDarts returns, for each dart p = (u -> v), the position of the
// reverse dart (v -> u).
func reverseDarts(g *Graph) []int32 {
	tails := dartTails(g)
	// Map (u, v) -> dart position. Keys packed into int64.
	pos := make(map[int64]int32, len(g.adj))
	for p := range g.adj {
		u := tails[p]
		v := g.adj[p]
		pos[int64(u)<<32|int64(uint32(v))] = int32(p)
	}
	rev := make([]int32, len(g.adj))
	for p := range g.adj {
		u := tails[p]
		v := g.adj[p]
		q, ok := pos[int64(v)<<32|int64(uint32(u))]
		if !ok {
			panic(fmt.Sprintf("graph: missing reverse dart for (%d,%d)", u, v))
		}
		rev[p] = q
	}
	return rev
}

// TraceFaces computes the faces of an embedded graph's rotation system.
// It panics if the graph is not embedded.
func TraceFaces(g *Graph) *Faces {
	if !g.embedded {
		panic("graph: TraceFaces requires an embedded graph")
	}
	nd := len(g.adj)
	rev := reverseDarts(g)
	tails := dartTails(g)

	// next[p]: the dart that follows p on its face boundary walk.
	next := make([]int32, nd)
	for p := 0; p < nd; p++ {
		v := g.adj[p] // head of p
		q := rev[p]   // dart (v -> tail(p))
		lo, hi := g.off[v], g.off[v+1]
		deg := hi - lo
		lq := q - lo
		// Clockwise successor of the reverse dart in v's ccw rotation.
		next[p] = lo + (lq-1+deg)%deg
	}

	faceOf := make([]int32, nd)
	for p := range faceOf {
		faceOf[p] = -1
	}
	var boundary [][]int32
	for p := 0; p < nd; p++ {
		if faceOf[p] >= 0 {
			continue
		}
		id := int32(len(boundary))
		var walk []int32
		q := int32(p)
		for faceOf[q] < 0 {
			faceOf[q] = id
			walk = append(walk, tails[q])
			q = next[q]
		}
		boundary = append(boundary, walk)
	}
	return &Faces{FaceOfDart: faceOf, Boundary: boundary}
}

// ValidateEmbedding checks Euler's formula for the rotation system of g.
// Face tracing assigns every connected component its own outer face, and
// isolated vertices carry no darts (hence no faces), so the generalized
// identity is n - m + f = 2c - i, where c counts connected components and
// i counts isolated vertices. For a connected planar embedding this is the
// familiar n - m + f = 2. It returns an error when the rotation system is
// not a planar embedding.
func ValidateEmbedding(g *Graph) error {
	if !g.embedded {
		return fmt.Errorf("graph is not embedded")
	}
	if g.N() == 0 {
		return nil
	}
	faces := TraceFaces(g)
	_, comps := Components(g)
	iso := 0
	for v := int32(0); v < int32(g.N()); v++ {
		if g.Degree(v) == 0 {
			iso++
		}
	}
	n, m, f := g.N(), g.M(), faces.NumFaces()
	if n-m+f != 2*comps-iso {
		return fmt.Errorf("Euler check failed: n=%d m=%d f=%d components=%d isolated=%d (n-m+f=%d, want %d)",
			n, m, f, comps, iso, n-m+f, 2*comps-iso)
	}
	return nil
}
