package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("got n=%d m=%d", g.N(), g.M())
	}
	if !g.HasEdge(1, 2) || g.HasEdge(0, 3) {
		t.Fatal("HasEdge wrong")
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Fatal("Degree wrong")
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-loop")
		}
	}()
	NewBuilder(2).AddEdge(1, 1)
}

func TestBuilderRejectsDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate edge")
		}
	}()
	b := NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
}

func TestEdgesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	g := RandomPlanar(60, 0.5, rng)
	edges := g.Edges()
	if len(edges) != g.M() {
		t.Fatalf("Edges() returned %d, M()=%d", len(edges), g.M())
	}
	h := FromEdges(g.N(), edges)
	for _, e := range edges {
		if !h.HasEdge(e[0], e[1]) {
			t.Fatalf("edge %v lost in round trip", e)
		}
	}
	if h.M() != g.M() {
		t.Fatal("edge count changed in round trip")
	}
}

// Every embedded generator must satisfy Euler's formula — this validates
// both the face tracing and each generator's rotation system.
func TestGeneratorEmbeddingsSatisfyEuler(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	cases := map[string]*Graph{
		"path10":        Path(10),
		"cycle12":       Cycle(12),
		"star9":         Star(9),
		"wheel11":       Wheel(11),
		"grid5x7":       Grid(5, 7),
		"grid1x9":       Grid(1, 9),
		"diaggrid6x6":   GridWithDiagonals(6, 6),
		"bipyramid3":    Bipyramid(3),
		"bipyramid4":    Bipyramid(4),
		"bipyramid9":    Bipyramid(9),
		"tetrahedron":   Tetrahedron(),
		"cube":          Cube(),
		"octahedron":    Octahedron(),
		"dodecahedron":  Dodecahedron(),
		"icosahedron":   Icosahedron(),
		"apollonian50":  Apollonian(50, rng),
		"randplanar100": RandomPlanar(100, 0.5, rng),
		"randplanar30":  RandomPlanar(30, 0.0, rng),
	}
	for name, g := range cases {
		if err := ValidateEmbedding(g); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestPlatonicSolidShapes(t *testing.T) {
	cases := []struct {
		name    string
		g       *Graph
		n, m, f int
	}{
		{"tetrahedron", Tetrahedron(), 4, 6, 4},
		{"cube", Cube(), 8, 12, 6},
		{"octahedron", Octahedron(), 6, 12, 8},
		{"dodecahedron", Dodecahedron(), 20, 30, 12},
		{"icosahedron", Icosahedron(), 12, 30, 20},
	}
	for _, c := range cases {
		if c.g.N() != c.n || c.g.M() != c.m {
			t.Errorf("%s: n=%d m=%d, want n=%d m=%d", c.name, c.g.N(), c.g.M(), c.n, c.m)
			continue
		}
		faces := TraceFaces(c.g)
		if faces.NumFaces() != c.f {
			t.Errorf("%s: f=%d want %d", c.name, faces.NumFaces(), c.f)
		}
	}
}

func TestGridFaceCount(t *testing.T) {
	g := Grid(4, 5)
	faces := TraceFaces(g)
	// 3x4 = 12 inner faces + outer face.
	if faces.NumFaces() != 13 {
		t.Fatalf("grid faces = %d, want 13", faces.NumFaces())
	}
}

func TestFaceBoundariesCoverAllDarts(t *testing.T) {
	g := Apollonian(40, rand.New(rand.NewPCG(3, 4)))
	faces := TraceFaces(g)
	total := 0
	for _, wb := range faces.Boundary {
		total += len(wb)
	}
	if total != 2*g.M() {
		t.Fatalf("boundary darts = %d, want %d", total, 2*g.M())
	}
	for p, f := range faces.FaceOfDart {
		if f < 0 || int(f) >= faces.NumFaces() {
			t.Fatalf("dart %d has bad face %d", p, f)
		}
	}
}

func TestApollonianIsTriangulation(t *testing.T) {
	g := Apollonian(30, rand.New(rand.NewPCG(9, 9)))
	// A planar triangulation on n vertices has 3n-6 edges.
	if g.M() != 3*g.N()-6 {
		t.Fatalf("m=%d want %d", g.M(), 3*g.N()-6)
	}
	faces := TraceFaces(g)
	for i, wb := range faces.Boundary {
		if len(wb) != 3 {
			t.Fatalf("face %d has boundary length %d, want 3", i, len(wb))
		}
	}
}

func TestComponents(t *testing.T) {
	g := DisjointUnion(Cycle(5), Path(4), Star(3))
	comp, count := Components(g)
	if count != 3 {
		t.Fatalf("count=%d want 3", count)
	}
	if comp[0] != comp[4] || comp[5] != comp[8] || comp[9] != comp[11] {
		t.Fatal("components mislabeled within parts")
	}
	if comp[0] == comp[5] || comp[5] == comp[9] {
		t.Fatal("distinct parts share a label")
	}
}

func TestComponentsParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.IntN(120)
		// Random graph with ~n/2 random edges: many components.
		b := NewBuilder(n)
		for e := 0; e < n/2; e++ {
			u := rng.Int32N(int32(n))
			v := rng.Int32N(int32(n))
			if u != v && !b.HasEdge(u, v) {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		seq, cs := Components(g)
		parr, cp := ComponentsParallel(g, nil)
		if cs != cp {
			t.Fatalf("trial %d: sequential %d comps, parallel %d", trial, cs, cp)
		}
		// Same partition up to renaming.
		mapping := make(map[int32]int32)
		for v := 0; v < n; v++ {
			if m, ok := mapping[seq[v]]; ok {
				if m != parr[v] {
					t.Fatalf("trial %d: partition mismatch at %d", trial, v)
				}
			} else {
				mapping[seq[v]] = parr[v]
			}
		}
	}
}

func TestBFSDistOnGrid(t *testing.T) {
	g := Grid(3, 4)
	dist := BFSDist(g, 0)
	// Manhattan distances on a grid.
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if int(dist[i*4+j]) != i+j {
				t.Fatalf("dist[%d,%d]=%d want %d", i, j, dist[i*4+j], i+j)
			}
		}
	}
}

func TestDiameter(t *testing.T) {
	if d := Diameter(Path(7)); d != 6 {
		t.Fatalf("path diameter=%d want 6", d)
	}
	if d := Diameter(Cycle(8)); d != 4 {
		t.Fatalf("cycle diameter=%d want 4", d)
	}
	if d := Diameter(Star(6)); d != 2 {
		t.Fatalf("star diameter=%d want 2", d)
	}
	if d := Diameter(Complete(4)); d != 1 {
		t.Fatalf("K4 diameter=%d want 1", d)
	}
}

func TestArticulationPoints(t *testing.T) {
	// Two triangles sharing vertex 2: 2 is the unique cut vertex.
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 2)
	arts := ArticulationPoints(b.Build())
	for v, isArt := range arts {
		want := v == 2
		if isArt != want {
			t.Fatalf("vertex %d articulation=%v want %v", v, isArt, want)
		}
	}
}

func TestArticulationPointsPath(t *testing.T) {
	arts := ArticulationPoints(Path(5))
	want := []bool{false, true, true, true, false}
	for i := range want {
		if arts[i] != want[i] {
			t.Fatalf("path articulation[%d]=%v want %v", i, arts[i], want[i])
		}
	}
}

func TestArticulationPointsBiconnected(t *testing.T) {
	for _, g := range []*Graph{Cycle(6), Octahedron(), Grid(4, 4), Wheel(8)} {
		for v, a := range ArticulationPoints(g) {
			if a {
				t.Fatalf("%v: vertex %d wrongly marked articulation", g, v)
			}
		}
	}
}

// Property: articulation points agree with brute force (vertex removal
// changes component count) on small random graphs.
func TestArticulationPointsQuick(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 1))
		n := 4 + r.IntN(12)
		b := NewBuilder(n)
		for e := 0; e < n+r.IntN(n); e++ {
			u := r.Int32N(int32(n))
			v := r.Int32N(int32(n))
			if u != v && !b.HasEdge(u, v) {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		got := ArticulationPoints(g)
		_, base := Components(g)
		for v := int32(0); v < int32(n); v++ {
			if g.Degree(v) == 0 {
				continue
			}
			// Remove v and count components among the rest.
			keep := make([]int32, 0, n-1)
			for u := int32(0); u < int32(n); u++ {
				if u != v {
					keep = append(keep, u)
				}
			}
			sub, _ := Induce(g, keep)
			_, c := Components(sub)
			// Removing v removes one isolated "slot": component count of
			// G-v compared against G (v contributed one component if it
			// was isolated, which we skipped).
			want := c > base-boolToInt(g.Degree(v) >= 0)+0 && c > base
			_ = want
			isCut := c > base
			if got[v] != isCut {
				return false
			}
		}
		return true
	}
	for trial := 0; trial < 60; trial++ {
		if !f(rng.Uint64()) {
			t.Fatal("articulation points disagree with brute force")
		}
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestInducePreservesStructure(t *testing.T) {
	g := Grid(4, 4)
	verts := []int32{0, 1, 2, 4, 5, 6}
	sub, orig := Induce(g, verts)
	if sub.N() != 6 {
		t.Fatalf("sub n=%d", sub.N())
	}
	for i, v := range orig {
		if v != verts[i] {
			t.Fatal("orig mapping wrong")
		}
	}
	// Check edges: exactly those of g between chosen vertices.
	count := 0
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			inG := g.HasEdge(verts[i], verts[j])
			inSub := sub.HasEdge(int32(i), int32(j))
			if inG != inSub {
				t.Fatalf("edge (%d,%d) mismatch", verts[i], verts[j])
			}
			if inSub {
				count++
			}
		}
	}
	if count != sub.M() {
		t.Fatalf("edge count %d vs M=%d", count, sub.M())
	}
}

// Property: induced subgraph of an embedded planar graph keeps a valid
// embedding.
func TestInduceKeepsEmbedding(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 15; trial++ {
		g := Apollonian(40, rng)
		var verts []int32
		for v := int32(0); v < int32(g.N()); v++ {
			if rng.Float64() < 0.7 {
				verts = append(verts, v)
			}
		}
		if len(verts) == 0 {
			continue
		}
		sub, _ := Induce(g, verts)
		if err := ValidateEmbedding(sub); err != nil {
			t.Fatalf("trial %d: induced embedding invalid: %v", trial, err)
		}
	}
}

func TestContractPartition(t *testing.T) {
	g := Path(6)
	// Classes: {0,1}, {2,3}, {4,5} -> path of 3 classes.
	class := []int32{0, 0, 1, 1, 2, 2}
	minor := ContractPartition(g, class, 3)
	if minor.N() != 3 || minor.M() != 2 {
		t.Fatalf("minor n=%d m=%d want 3,2", minor.N(), minor.M())
	}
	if !minor.HasEdge(0, 1) || !minor.HasEdge(1, 2) || minor.HasEdge(0, 2) {
		t.Fatal("minor edges wrong")
	}
}

func TestContractPartitionDedup(t *testing.T) {
	g := Cycle(6)
	// Two classes alternating: many parallel edges must dedup to one.
	class := []int32{0, 1, 0, 1, 0, 1}
	minor := ContractPartition(g, class, 2)
	if minor.N() != 2 || minor.M() != 1 {
		t.Fatalf("minor n=%d m=%d want 2,1", minor.N(), minor.M())
	}
}

// Property: contraction preserves connectivity structure: two classes are
// in the same minor component iff their vertices are in the same component.
func TestContractPreservesConnectivity(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 3))
		n := 6 + r.IntN(40)
		b := NewBuilder(n)
		for e := 0; e < n; e++ {
			u := r.Int32N(int32(n))
			v := r.Int32N(int32(n))
			if u != v && !b.HasEdge(u, v) {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		nc := 1 + r.IntN(n)
		class := make([]int32, n)
		// Ensure class ids are dense: assign round robin then randomize.
		for v := range class {
			class[v] = int32(v % nc)
		}
		r.Shuffle(n, func(i, j int) { class[i], class[j] = class[j], class[i] })
		minor := ContractPartition(g, class, nc)
		gComp, _ := Components(g)
		mComp, _ := Components(minor)
		// Same class -> same minor vertex: check that any two vertices in
		// the same g-component have classes in the same minor component.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if gComp[u] == gComp[v] && mComp[class[u]] != mComp[class[v]] {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSpanningTreeEdges(t *testing.T) {
	g := Grid(5, 5)
	edges := SpanningTreeEdges(g)
	if len(edges) != 24 {
		t.Fatalf("spanning tree has %d edges, want 24", len(edges))
	}
	b := NewBuilder(25)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	if !IsConnected(b.Build()) {
		t.Fatal("spanning tree not connected")
	}
}

func TestMinDegreeAndComplete(t *testing.T) {
	if Icosahedron().MinDegree() != 5 {
		t.Fatal("icosahedron min degree should be 5")
	}
	if !Complete(4).IsComplete() {
		t.Fatal("K4 should be complete")
	}
	if Cycle(5).IsComplete() {
		t.Fatal("C5 is not complete")
	}
}

func TestRandomPlanarConnected(t *testing.T) {
	rng := rand.New(rand.NewPCG(14, 15))
	for _, keep := range []float64{0, 0.3, 1} {
		g := RandomPlanar(80, keep, rng)
		if !IsConnected(g) {
			t.Fatalf("RandomPlanar(keep=%v) disconnected", keep)
		}
		if g.M() > 3*g.N()-6 {
			t.Fatalf("too many edges for planar: %d", g.M())
		}
	}
}

func TestCaterpillarShape(t *testing.T) {
	g := Caterpillar(5, 3)
	if g.N() != 20 || g.M() != 19 {
		t.Fatalf("caterpillar n=%d m=%d", g.N(), g.M())
	}
	if !IsConnected(g) {
		t.Fatal("caterpillar should be connected (it is a tree)")
	}
}

func TestTorusGrid(t *testing.T) {
	g := TorusGrid(5, 7)
	if g.N() != 35 || g.M() != 70 {
		t.Fatalf("torus 5x7: n=%d m=%d, want 35/70", g.N(), g.M())
	}
	for v := int32(0); v < int32(g.N()); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus vertex %d has degree %d, want 4", v, g.Degree(v))
		}
	}
	if !IsConnected(g) {
		t.Fatal("torus must be connected")
	}
}

func TestGridWithHandles(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	base := Grid(6, 6)
	g := GridWithHandles(6, 6, 4, rng)
	if g.N() != base.N() {
		t.Fatalf("handles changed vertex count")
	}
	if g.M() != base.M()+4 {
		t.Fatalf("m=%d, want %d", g.M(), base.M()+4)
	}
	// Every grid edge survives.
	for _, e := range base.Edges() {
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("grid edge %v missing", e)
		}
	}
}

func TestFromRotationsRoundTrip(t *testing.T) {
	// The rotation lists of any embedded generator rebuild the same
	// embedded graph.
	rng := rand.New(rand.NewPCG(61, 62))
	for _, g := range []*Graph{Cycle(8), Grid(4, 5), Apollonian(25, rng), Octahedron()} {
		rot := make([][]int32, g.N())
		for v := int32(0); v < int32(g.N()); v++ {
			rot[v] = append([]int32{}, g.Neighbors(v)...)
		}
		back, err := FromRotations(rot)
		if err != nil {
			t.Fatal(err)
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatalf("size changed: %v vs %v", back, g)
		}
		if err := ValidateEmbedding(back); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFromRotationsRejectsBadInput(t *testing.T) {
	cases := [][][]int32{
		{{1}, {}},        // missing reverse
		{{0}},            // self loop
		{{1, 1}, {0, 0}}, // duplicates
		{{5}},            // out of range
	}
	for i, rot := range cases {
		if _, err := FromRotations(rot); err == nil {
			t.Errorf("case %d: invalid rotations accepted", i)
		}
	}
}
