// Package graph provides the immutable undirected graph type shared by the
// whole repository, combinatorial embeddings (rotation systems) with face
// tracing for planar graphs, generators for the planar graph families the
// experiments use, and the structural subroutines the paper's pipeline
// needs: induced subgraphs, minors by partition contraction, connected
// components (sequential and parallel), articulation points, and BFS
// utilities.
//
// Graphs are simple (no self-loops or parallel edges) and undirected.
// Vertices are dense int32 identifiers in [0, N). Adjacency is stored in
// CSR form; for embedded graphs the order of each adjacency list is the
// counterclockwise rotation of edges around the vertex, which is exactly
// the combinatorial embedding the paper's Section 5 consumes.
package graph

import (
	"fmt"
	"math"
	"slices"
)

// Graph is an immutable undirected graph in CSR form.
type Graph struct {
	off      []int32 // length N+1; adjacency of v is adj[off[v]:off[v+1]]
	adj      []int32
	embedded bool
	x, y     []float64 // optional planar coordinates (embedded graphs)
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.off) - 1 }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.adj) / 2 }

// Neighbors returns the adjacency list of v. The caller must not modify it.
// For embedded graphs the list is in counterclockwise rotation order.
func (g *Graph) Neighbors(v int32) []int32 { return g.adj[g.off[v]:g.off[v+1]] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int32) int { return int(g.off[v+1] - g.off[v]) }

// Embedded reports whether the adjacency lists carry a rotation system.
func (g *Graph) Embedded() bool { return g.embedded }

// Coords returns the planar coordinates of v (only for embedded graphs
// built from coordinates).
func (g *Graph) Coords(v int32) (float64, float64) {
	if g.x == nil {
		return 0, 0
	}
	return g.x[v], g.y[v]
}

// HasEdge reports whether u and v are adjacent. Linear in min degree.
func (g *Graph) HasEdge(u, v int32) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	for _, w := range g.Neighbors(u) {
		if w == v {
			return true
		}
	}
	return false
}

// MinDegree returns the minimum degree, or 0 for the empty graph.
func (g *Graph) MinDegree() int {
	n := g.N()
	if n == 0 {
		return 0
	}
	md := g.Degree(0)
	for v := int32(1); v < int32(n); v++ {
		if d := g.Degree(v); d < md {
			md = d
		}
	}
	return md
}

// Edges returns every undirected edge once, as (u, v) with u < v.
func (g *Graph) Edges() [][2]int32 {
	out := make([][2]int32, 0, g.M())
	for u := int32(0); u < int32(g.N()); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				out = append(out, [2]int32{u, v})
			}
		}
	}
	return out
}

// MemBytes returns the approximate heap footprint of the graph's backing
// arrays in bytes. Serving-layer memory budgets are enforced against this
// estimate.
func (g *Graph) MemBytes() int64 {
	return int64(cap(g.off))*4 + int64(cap(g.adj))*4 +
		int64(cap(g.x))*8 + int64(cap(g.y))*8
}

// IsComplete reports whether every pair of vertices is adjacent.
func (g *Graph) IsComplete() bool {
	n := g.N()
	return g.M() == n*(n-1)/2
}

// String renders a short description.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d embedded=%v}", g.N(), g.M(), g.embedded)
}

// Builder accumulates edges for a Graph.
type Builder struct {
	adj [][]int32
}

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{adj: make([][]int32, n)}
}

// N returns the number of vertices.
func (b *Builder) N() int { return len(b.adj) }

// AddEdge adds the undirected edge {u, v}. Adding a duplicate edge or a
// self-loop panics: graphs in this repository are simple, and silent
// duplicates would corrupt rotation systems and face tracing.
func (b *Builder) AddEdge(u, v int32) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	for _, w := range b.adj[u] {
		if w == v {
			panic(fmt.Sprintf("graph: duplicate edge {%d,%d}", u, v))
		}
	}
	b.adj[u] = append(b.adj[u], v)
	b.adj[v] = append(b.adj[v], u)
}

// HasEdge reports whether the edge {u, v} has been added.
func (b *Builder) HasEdge(u, v int32) bool {
	if len(b.adj[u]) > len(b.adj[v]) {
		u, v = v, u
	}
	for _, w := range b.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Degree returns the current degree of v.
func (b *Builder) Degree(v int32) int { return len(b.adj[v]) }

// Build freezes the builder into a Graph without an embedding.
func (b *Builder) Build() *Graph {
	return b.build(false, nil, nil)
}

// BuildEmbedded freezes the builder into an embedded Graph using the given
// planar coordinates: each adjacency list is sorted counterclockwise by
// angle, which yields a valid rotation system whenever (x, y) is a
// straight-line planar drawing.
func (b *Builder) BuildEmbedded(x, y []float64) *Graph {
	if len(x) != len(b.adj) || len(y) != len(b.adj) {
		panic("graph: coordinate slices must have length n")
	}
	for v := range b.adj {
		vs := b.adj[v]
		vx, vy := x[v], y[v]
		slices.SortFunc(vs, func(a, b int32) int {
			aa := math.Atan2(y[a]-vy, x[a]-vx)
			ab := math.Atan2(y[b]-vy, x[b]-vx)
			switch {
			case aa < ab:
				return -1
			case aa > ab:
				return 1
			}
			return 0
		})
	}
	xc := make([]float64, len(x))
	yc := make([]float64, len(y))
	copy(xc, x)
	copy(yc, y)
	return b.build(true, xc, yc)
}

// BuildWithRotations freezes the builder, declaring that the insertion
// order of each adjacency list already is a counterclockwise rotation
// system. The caller is responsible for its validity; ValidateEmbedding
// checks it via Euler's formula.
func (b *Builder) BuildWithRotations() *Graph {
	return b.build(true, nil, nil)
}

func (b *Builder) build(embedded bool, x, y []float64) *Graph {
	n := len(b.adj)
	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + int32(len(b.adj[v]))
	}
	adj := make([]int32, off[n])
	for v := 0; v < n; v++ {
		copy(adj[off[v]:off[v+1]], b.adj[v])
	}
	return &Graph{off: off, adj: adj, embedded: embedded, x: x, y: y}
}

// FromEdges builds a (non-embedded) graph from an edge list.
func FromEdges(n int, edges [][2]int32) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// FromRotations builds an embedded graph whose adjacency lists are the
// given rotation lists, verbatim. It checks symmetry (w appears in
// rot[v] exactly as often as v in rot[w], with no duplicates or loops)
// but not planarity; ValidateEmbedding checks the latter.
func FromRotations(rot [][]int32) (*Graph, error) {
	n := len(rot)
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		seen := make(map[int32]bool, len(rot[v]))
		for _, w := range rot[v] {
			if w < 0 || int(w) >= n {
				return nil, fmt.Errorf("graph: rotation of %d references %d", v, w)
			}
			if int32(v) == w {
				return nil, fmt.Errorf("graph: rotation of %d contains a self-loop", v)
			}
			if seen[w] {
				return nil, fmt.Errorf("graph: rotation of %d repeats %d", v, w)
			}
			seen[w] = true
		}
		b.adj[v] = append([]int32{}, rot[v]...)
	}
	for v := int32(0); v < int32(n); v++ {
		for _, w := range b.adj[v] {
			found := false
			for _, x := range b.adj[w] {
				if x == v {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("graph: edge (%d,%d) missing its reverse", v, w)
			}
		}
	}
	return b.build(true, nil, nil), nil
}
