package graph

import "fmt"

// RawCSR exposes the graph's backing arrays for serialization: the CSR
// offset and adjacency arrays, the embedding flag, and the optional
// planar coordinates (nil when the graph carries none). The returned
// slices alias the graph's own storage and must not be modified.
func (g *Graph) RawCSR() (off, adj []int32, embedded bool, x, y []float64) {
	return g.off, g.adj, g.embedded, g.x, g.y
}

// FromCSR reconstructs a Graph from serialized CSR arrays, taking
// ownership of the slices. It validates the structural invariants every
// algorithm in this repository assumes — a well-formed offset array,
// adjacency ids in range, and no self-loops — so a graph decoded from an
// untrusted snapshot can never index out of bounds. It does not verify
// edge symmetry or the planarity of a claimed rotation system (both are
// semantic properties: violating them yields wrong answers, not memory
// errors; ValidateEmbedding checks the latter).
func FromCSR(off, adj []int32, embedded bool, x, y []float64) (*Graph, error) {
	if len(off) < 1 {
		return nil, fmt.Errorf("graph: CSR offset array is empty")
	}
	n := len(off) - 1
	if off[0] != 0 {
		return nil, fmt.Errorf("graph: CSR offsets must start at 0, got %d", off[0])
	}
	for v := 0; v < n; v++ {
		if off[v+1] < off[v] {
			return nil, fmt.Errorf("graph: CSR offsets decrease at vertex %d", v)
		}
	}
	if int(off[n]) != len(adj) {
		return nil, fmt.Errorf("graph: CSR offsets end at %d, adjacency holds %d entries", off[n], len(adj))
	}
	if len(adj)%2 != 0 {
		return nil, fmt.Errorf("graph: odd adjacency length %d for an undirected graph", len(adj))
	}
	for v := 0; v < n; v++ {
		for _, w := range adj[off[v]:off[v+1]] {
			if w < 0 || int(w) >= n {
				return nil, fmt.Errorf("graph: adjacency of %d references %d, outside [0, %d)", v, w, n)
			}
			if int(w) == v {
				return nil, fmt.Errorf("graph: self-loop at %d", v)
			}
		}
	}
	if (x == nil) != (y == nil) {
		return nil, fmt.Errorf("graph: coordinate arrays must both be present or both absent")
	}
	if x != nil {
		if len(x) != n || len(y) != n {
			return nil, fmt.Errorf("graph: coordinate arrays have length %d/%d, want %d", len(x), len(y), n)
		}
		if !embedded {
			return nil, fmt.Errorf("graph: coordinates without an embedding")
		}
	}
	return &Graph{off: off, adj: adj, embedded: embedded, x: x, y: y}, nil
}
