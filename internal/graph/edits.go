package graph

// Edge edits. Graphs stay immutable: WithEdits derives a new Graph from
// an existing one by removing and adding undirected edges over the same
// vertex set. The derivation is deterministic in a way callers rely on
// for byte-identical rebuild checks: surviving adjacency entries keep
// their relative order, and added edges are appended endpoint-by-endpoint
// in batch order — exactly what Builder.AddEdge would do. A graph edited
// from an edge-list build is therefore bit-identical (same CSR arrays) to
// a fresh build from the surviving edges, in their original order,
// followed by the additions.

import (
	"errors"
	"fmt"
	"slices"
)

// ErrEdit is the sentinel wrapped by every edit-validation failure:
// out-of-range vertex ids, self-loops, removing an absent edge, adding a
// present one, or duplicate entries within a batch. Callers distinguish
// a rejected batch (errors.Is(err, ErrEdit)) from internal failures.
var ErrEdit = errors.New("graph: invalid edit")

// normEdge validates one edit pair against an n-vertex graph and returns
// it with endpoints ordered u < v (the canonical undirected key).
func normEdge(e [2]int32, n int32, op string) ([2]int32, error) {
	u, v := e[0], e[1]
	if u < 0 || v < 0 || u >= n || v >= n {
		return [2]int32{}, fmt.Errorf("%w: %s {%d,%d}: vertex outside [0,%d)", ErrEdit, op, u, v, n)
	}
	if u == v {
		return [2]int32{}, fmt.Errorf("%w: %s {%d,%d}: self-loop", ErrEdit, op, u, v)
	}
	if u > v {
		u, v = v, u
	}
	return [2]int32{u, v}, nil
}

// WithEdits returns a new graph over the same vertex set with the given
// undirected edges removed and added. Every removal must name a present
// edge and every addition an absent one (an edge removed earlier in the
// same batch may be re-added); duplicates within either list are
// rejected. On any validation failure the receiver is untouched and the
// error wraps ErrEdit.
//
// The result carries no embedding or coordinates: edge edits invalidate
// rotation systems, so callers re-embed on demand.
func (g *Graph) WithEdits(add, remove [][2]int32) (*Graph, error) {
	n := int32(g.N())
	removed := make(map[[2]int32]bool, len(remove))
	for _, e := range remove {
		key, err := normEdge(e, n, "remove")
		if err != nil {
			return nil, err
		}
		if !g.HasEdge(key[0], key[1]) {
			return nil, fmt.Errorf("%w: remove {%d,%d}: edge not present", ErrEdit, e[0], e[1])
		}
		if removed[key] {
			return nil, fmt.Errorf("%w: remove {%d,%d}: duplicate removal", ErrEdit, e[0], e[1])
		}
		removed[key] = true
	}
	added := make(map[[2]int32]bool, len(add))
	for _, e := range add {
		key, err := normEdge(e, n, "add")
		if err != nil {
			return nil, err
		}
		if g.HasEdge(key[0], key[1]) && !removed[key] {
			return nil, fmt.Errorf("%w: add {%d,%d}: edge already present", ErrEdit, e[0], e[1])
		}
		if added[key] {
			return nil, fmt.Errorf("%w: add {%d,%d}: duplicate addition", ErrEdit, e[0], e[1])
		}
		added[key] = true
	}

	adj := make([][]int32, n)
	for v := int32(0); v < n; v++ {
		for _, w := range g.Neighbors(v) {
			key := [2]int32{v, w}
			if w < v {
				key = [2]int32{w, v}
			}
			if !removed[key] {
				adj[v] = append(adj[v], w)
			}
		}
	}
	for _, e := range add {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	b := &Builder{adj: adj}
	return b.build(false, nil, nil), nil
}

// Equal reports whether two graphs are bit-identical: same CSR arrays,
// same embedded flag, same coordinates. This is stronger than
// isomorphism — even adjacency order must match — which is exactly the
// invariant incremental invalidation needs to reuse artifacts built from
// an earlier generation.
func Equal(a, b *Graph) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	return a.embedded == b.embedded &&
		slices.Equal(a.off, b.off) &&
		slices.Equal(a.adj, b.adj) &&
		slices.Equal(a.x, b.x) &&
		slices.Equal(a.y, b.y)
}
