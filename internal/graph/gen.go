package graph

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Generators for the graph families the experiments run on. Every planar
// generator returns an *embedded* graph: the generators maintain a
// straight-line planar drawing and derive the rotation system from it, so
// ValidateEmbedding (Euler's formula) holds by construction. The vertex
// connectivity of the named families is known exactly, which the Section 5
// experiments rely on:
//
//	Path            connectivity 1
//	Cycle, Grid     connectivity 2
//	Wheel, Apollonian networks, Tetrahedron, Cube, Dodecahedron:  3
//	Bipyramid (n>=4 equator), Octahedron:                          4
//	Icosahedron:                                                   5

// Path returns the path on n vertices (n >= 1), embedded on a line.
func Path(n int) *Graph {
	b := NewBuilder(n)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = float64(i)
	}
	for i := 0; i+1 < n; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.BuildEmbedded(x, y)
}

// Cycle returns the cycle on n vertices (n >= 3), embedded on a circle.
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: Cycle needs n >= 3")
	}
	b := NewBuilder(n)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		x[i], y[i] = math.Cos(a), math.Sin(a)
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.BuildEmbedded(x, y)
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *Graph {
	if n < 2 {
		panic("graph: Star needs n >= 2")
	}
	b := NewBuilder(n)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 1; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n-1)
		x[i], y[i] = math.Cos(a), math.Sin(a)
		b.AddEdge(0, int32(i))
	}
	return b.BuildEmbedded(x, y)
}

// Wheel returns the wheel: hub 0 joined to a cycle on vertices 1..n-1.
func Wheel(n int) *Graph {
	if n < 4 {
		panic("graph: Wheel needs n >= 4")
	}
	b := NewBuilder(n)
	x := make([]float64, n)
	y := make([]float64, n)
	rim := n - 1
	for i := 0; i < rim; i++ {
		a := 2 * math.Pi * float64(i) / float64(rim)
		x[i+1], y[i+1] = math.Cos(a), math.Sin(a)
		b.AddEdge(0, int32(i+1))
		b.AddEdge(int32(i+1), int32((i+1)%rim+1))
	}
	return b.BuildEmbedded(x, y)
}

// Grid returns the r x c grid graph, vertex (i,j) = i*c+j.
func Grid(r, c int) *Graph {
	if r < 1 || c < 1 {
		panic("graph: Grid needs positive dimensions")
	}
	n := r * c
	b := NewBuilder(n)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			v := int32(i*c + j)
			x[v], y[v] = float64(j), float64(-i)
			if j+1 < c {
				b.AddEdge(v, v+1)
			}
			if i+1 < r {
				b.AddEdge(v, v+int32(c))
			}
		}
	}
	return b.BuildEmbedded(x, y)
}

// Bipyramid returns the n-gonal bipyramid: an equatorial cycle on n
// vertices (ids 0..n-1) plus two poles (ids n and n+1) adjacent to every
// equatorial vertex. For n >= 4 it is a 4-connected planar triangulation
// (the octahedron is the 4-bipyramid on a square equator). The rotation
// system is built combinatorially: one pole drawn inside the equator
// circle, one outside.
func Bipyramid(n int) *Graph {
	if n < 3 {
		panic("graph: Bipyramid needs n >= 3")
	}
	b := NewBuilder(n + 2)
	inner := int32(n)
	outer := int32(n + 1)
	for i := 0; i < n; i++ {
		next := int32((i + 1) % n)
		prev := int32((i - 1 + n) % n)
		// CCW around equator vertex i (on a circle, inner pole at the
		// center, outer pole beyond the circle): next, inner, prev, outer.
		b.adj[i] = []int32{next, inner, prev, outer}
	}
	for i := 0; i < n; i++ {
		b.adj[inner] = append(b.adj[inner], int32(i))
	}
	b.adj[outer] = append(b.adj[outer], 0)
	for i := n - 1; i >= 1; i-- {
		b.adj[outer] = append(b.adj[outer], int32(i))
	}
	return b.BuildWithRotations()
}

// schlegel builds an embedded graph from 3D polyhedron coordinates by
// projecting from just outside the face whose outward direction is dir
// onto that face's plane (a Schlegel diagram, which is a straight-line
// planar drawing for convex polytopes).
func schlegel(coords [][3]float64, edges [][2]int32, dir [3]float64) *Graph {
	n := len(coords)
	// Normalize dir.
	norm := math.Sqrt(dir[0]*dir[0] + dir[1]*dir[1] + dir[2]*dir[2])
	d := [3]float64{dir[0] / norm, dir[1] / norm, dir[2] / norm}
	// Face plane height = max projection; the face consists of the
	// faceSize vertices achieving (close to) it.
	h := math.Inf(-1)
	proj := make([]float64, n)
	for i, c := range coords {
		proj[i] = c[0]*d[0] + c[1]*d[1] + c[2]*d[2]
		if proj[i] > h {
			h = proj[i]
		}
	}
	// Viewpoint slightly beyond the face plane along dir.
	vp := [3]float64{d[0] * h * 1.08, d[1] * h * 1.08, d[2] * h * 1.08}
	// Basis (e1, e2) of the face plane.
	var e1 [3]float64
	if math.Abs(d[0]) < 0.9 {
		e1 = cross3([3]float64{1, 0, 0}, d)
	} else {
		e1 = cross3([3]float64{0, 1, 0}, d)
	}
	e1 = norm3(e1)
	e2 := cross3(d, e1)
	x := make([]float64, n)
	y := make([]float64, n)
	for i, c := range coords {
		// Line vp + t (c - vp); intersect with plane <p, d> = h.
		dirv := [3]float64{c[0] - vp[0], c[1] - vp[1], c[2] - vp[2]}
		denom := dirv[0]*d[0] + dirv[1]*d[1] + dirv[2]*d[2]
		num := h - (vp[0]*d[0] + vp[1]*d[1] + vp[2]*d[2])
		t := num / denom
		p := [3]float64{vp[0] + t*dirv[0], vp[1] + t*dirv[1], vp[2] + t*dirv[2]}
		x[i] = p[0]*e1[0] + p[1]*e1[1] + p[2]*e1[2]
		y[i] = p[0]*e2[0] + p[1]*e2[1] + p[2]*e2[2]
	}
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.BuildEmbedded(x, y)
}

func cross3(a, b [3]float64) [3]float64 {
	return [3]float64{a[1]*b[2] - a[2]*b[1], a[2]*b[0] - a[0]*b[2], a[0]*b[1] - a[1]*b[0]}
}

func norm3(a [3]float64) [3]float64 {
	n := math.Sqrt(a[0]*a[0] + a[1]*a[1] + a[2]*a[2])
	return [3]float64{a[0] / n, a[1] / n, a[2] / n}
}

// edgesAtDistance returns the vertex pairs at squared distance d2 (within
// tolerance), used to derive polyhedron edge lists from coordinates.
func edgesAtDistance(coords [][3]float64, d2 float64) [][2]int32 {
	var out [][2]int32
	for i := 0; i < len(coords); i++ {
		for j := i + 1; j < len(coords); j++ {
			dx := coords[i][0] - coords[j][0]
			dy := coords[i][1] - coords[j][1]
			dz := coords[i][2] - coords[j][2]
			if math.Abs(dx*dx+dy*dy+dz*dz-d2) < 1e-9 {
				out = append(out, [2]int32{int32(i), int32(j)})
			}
		}
	}
	return out
}

// Tetrahedron returns K4 embedded (3-connected, 4 vertices).
func Tetrahedron() *Graph {
	coords := [][3]float64{{1, 1, 1}, {1, -1, -1}, {-1, 1, -1}, {-1, -1, 1}}
	edges := edgesAtDistance(coords, 8)
	return schlegel(coords, edges, [3]float64{-1, -1, -1})
}

// Cube returns the 3-cube graph embedded (3-connected, 8 vertices).
func Cube() *Graph {
	var coords [][3]float64
	for i := 0; i < 8; i++ {
		coords = append(coords, [3]float64{
			float64(2*(i&1) - 1), float64(2*((i>>1)&1) - 1), float64(2*((i>>2)&1) - 1),
		})
	}
	edges := edgesAtDistance(coords, 4)
	return schlegel(coords, edges, [3]float64{0, 0, 1})
}

// Octahedron returns the octahedron embedded (4-connected, 6 vertices).
func Octahedron() *Graph {
	coords := [][3]float64{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}}
	edges := edgesAtDistance(coords, 2)
	return schlegel(coords, edges, [3]float64{1, 1, 1})
}

// Dodecahedron returns the dodecahedron embedded (3-connected, 20 vertices).
func Dodecahedron() *Graph {
	phi := (1 + math.Sqrt(5)) / 2
	var coords [][3]float64
	for i := 0; i < 8; i++ {
		coords = append(coords, [3]float64{
			float64(2*(i&1) - 1), float64(2*((i>>1)&1) - 1), float64(2*((i>>2)&1) - 1),
		})
	}
	for _, s1 := range []float64{-1, 1} {
		for _, s2 := range []float64{-1, 1} {
			coords = append(coords, [3]float64{0, s1 / phi, s2 * phi})
			coords = append(coords, [3]float64{s1 / phi, s2 * phi, 0})
			coords = append(coords, [3]float64{s1 * phi, 0, s2 / phi})
		}
	}
	// Edge length of this standard dodecahedron is 2/phi.
	l := 2 / phi
	edges := edgesAtDistance(coords, l*l)
	// Face direction: an icosahedron vertex direction (dual).
	return schlegel(coords, edges, [3]float64{0, 1, phi})
}

// Icosahedron returns the icosahedron embedded (5-connected, 12 vertices).
func Icosahedron() *Graph {
	phi := (1 + math.Sqrt(5)) / 2
	var coords [][3]float64
	for _, s1 := range []float64{-1, 1} {
		for _, s2 := range []float64{-1, 1} {
			coords = append(coords, [3]float64{0, s1, s2 * phi})
			coords = append(coords, [3]float64{s1, s2 * phi, 0})
			coords = append(coords, [3]float64{s1 * phi, 0, s2})
		}
	}
	edges := edgesAtDistance(coords, 4)
	// Face direction: a dodecahedron vertex direction (dual), e.g. (1,1,1).
	return schlegel(coords, edges, [3]float64{1, 1, 1})
}

// Apollonian returns a random Apollonian network (stacked planar
// triangulation) with n >= 3 vertices: starting from a triangle,
// repeatedly pick a random triangular face and insert a vertex at its
// centroid joined to its three corners. The result is a 3-connected planar
// triangulation with an exact straight-line drawing.
func Apollonian(n int, rng *rand.Rand) *Graph {
	if n < 3 {
		panic("graph: Apollonian needs n >= 3")
	}
	b := NewBuilder(n)
	x := make([]float64, n)
	y := make([]float64, n)
	x[0], y[0] = 0, 0
	x[1], y[1] = 1, 0
	x[2], y[2] = 0.5, math.Sqrt(3)/2
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	faces := [][3]int32{{0, 1, 2}}
	for v := int32(3); v < int32(n); v++ {
		fi := rng.IntN(len(faces))
		f := faces[fi]
		x[v] = (x[f[0]] + x[f[1]] + x[f[2]]) / 3
		y[v] = (y[f[0]] + y[f[1]] + y[f[2]]) / 3
		b.AddEdge(v, f[0])
		b.AddEdge(v, f[1])
		b.AddEdge(v, f[2])
		faces[fi] = [3]int32{f[0], f[1], v}
		faces = append(faces, [3]int32{f[1], f[2], v}, [3]int32{f[2], f[0], v})
	}
	return b.BuildEmbedded(x, y)
}

// RandomPlanar returns a connected random planar graph with n vertices:
// an Apollonian triangulation thinned by keeping a spanning tree plus each
// remaining edge independently with probability keep. The drawing (and so
// the embedding) remains valid for the subgraph.
func RandomPlanar(n int, keep float64, rng *rand.Rand) *Graph {
	tri := Apollonian(n, rng)
	inTree := make(map[int64]bool)
	for _, e := range SpanningTreeEdges(tri) {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		inTree[int64(u)<<32|int64(uint32(v))] = true
	}
	b := NewBuilder(n)
	for _, e := range tri.Edges() {
		u, v := e[0], e[1]
		if inTree[int64(u)<<32|int64(uint32(v))] || rng.Float64() < keep {
			b.AddEdge(u, v)
		}
	}
	x := make([]float64, n)
	y := make([]float64, n)
	for v := int32(0); v < int32(n); v++ {
		x[v], y[v] = tri.Coords(v)
	}
	return b.BuildEmbedded(x, y)
}

// RandomTree returns a uniform random recursive tree on n vertices.
func RandomTree(n int, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(int32(v), int32(rng.IntN(v)))
	}
	return b.Build()
}

// Caterpillar returns a caterpillar tree: a spine path with legs leaves
// attached to every spine vertex. Useful for long-chain decomposition
// trees in the Section 3.3 experiments.
func Caterpillar(spine, legs int) *Graph {
	n := spine * (1 + legs)
	b := NewBuilder(n)
	for i := 0; i < spine; i++ {
		if i+1 < spine {
			b.AddEdge(int32(i), int32(i+1))
		}
		for l := 0; l < legs; l++ {
			b.AddEdge(int32(i), int32(spine+i*legs+l))
		}
	}
	return b.Build()
}

// Complete returns K_n (planar only for n <= 4; used by small tests and
// the naive baseline).
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for i := int32(0); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

// DisjointUnion returns the disjoint union of the given graphs (no
// embedding). Vertex ids are offset in argument order.
func DisjointUnion(gs ...*Graph) *Graph {
	n := 0
	for _, g := range gs {
		n += g.N()
	}
	b := NewBuilder(n)
	off := int32(0)
	for _, g := range gs {
		for _, e := range g.Edges() {
			b.AddEdge(e[0]+off, e[1]+off)
		}
		off += int32(g.N())
	}
	return b.Build()
}

// GridWithDiagonals returns the r x c grid with one diagonal added in each
// cell, a planar near-triangulation used as a denser test family.
func GridWithDiagonals(r, c int) *Graph {
	if r < 2 || c < 2 {
		panic("graph: GridWithDiagonals needs r, c >= 2")
	}
	n := r * c
	b := NewBuilder(n)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			v := int32(i*c + j)
			x[v], y[v] = float64(j), float64(-i)
			if j+1 < c {
				b.AddEdge(v, v+1)
			}
			if i+1 < r {
				b.AddEdge(v, v+int32(c))
			}
			if i+1 < r && j+1 < c {
				b.AddEdge(v, v+int32(c)+1)
			}
		}
	}
	return b.BuildEmbedded(x, y)
}

// TorusGrid returns the r x c grid with wraparound edges in both
// directions: a 4-regular graph of genus 1 (not planar for r, c >= 3,
// but of locally bounded treewidth — the Section 4.3 family the paper's
// apex-minor-free extension covers). No embedding is attached.
func TorusGrid(r, c int) *Graph {
	if r < 3 || c < 3 {
		panic("graph: TorusGrid needs r, c >= 3")
	}
	b := NewBuilder(r * c)
	id := func(i, j int) int32 { return int32(((i+r)%r)*c + (j+c)%c) }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			b.AddEdge(id(i, j), id(i, j+1))
			b.AddEdge(id(i, j), id(i+1, j))
		}
	}
	return b.Build()
}

// GridWithHandles returns the r x c grid plus `handles` extra edges
// between random distant vertices: each handle raises the genus by at
// most one, giving a bounded-genus, locally-bounded-treewidth family for
// the Section 4.3 experiments. No embedding is attached.
func GridWithHandles(r, c, handles int, rng *rand.Rand) *Graph {
	base := Grid(r, c)
	b := NewBuilder(base.N())
	for _, e := range base.Edges() {
		b.AddEdge(e[0], e[1])
	}
	for h := 0; h < handles; h++ {
		for tries := 0; tries < 100; tries++ {
			u := rng.Int32N(int32(base.N()))
			v := rng.Int32N(int32(base.N()))
			if u != v && !b.HasEdge(u, v) {
				b.AddEdge(u, v)
				break
			}
		}
	}
	return b.Build()
}

// MustValidateEmbedding panics when the embedding is invalid; generators'
// tests use it to assert Euler's formula on every family.
func MustValidateEmbedding(g *Graph) *Graph {
	if err := ValidateEmbedding(g); err != nil {
		panic(fmt.Sprintf("graph: %v", err))
	}
	return g
}
