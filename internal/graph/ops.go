package graph

import (
	"planarsi/internal/par"
	"planarsi/internal/wd"
	"sync/atomic"
)

// Components labels the connected components of g sequentially (BFS) and
// returns the label array and the number of components.
func Components(g *Graph) ([]int32, int) {
	n := g.N()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []int32
	count := 0
	for s := int32(0); s < int32(n); s++ {
		if comp[s] >= 0 {
			continue
		}
		id := int32(count)
		count++
		comp[s] = id
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Neighbors(v) {
				if comp[w] < 0 {
					comp[w] = id
					queue = append(queue, w)
				}
			}
		}
	}
	return comp, count
}

// atomicMin32 lowers a to min(a, v) atomically.
func atomicMin32(a *atomic.Int32, v int32) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ComponentsParallel labels connected components with a Shiloach-Vishkin /
// FastSV style hook-and-shortcut loop: every round, each vertex hooks its
// parent toward the smallest grandparent label seen across its edges, then
// parent pointers are compressed by pointer jumping. All updates are
// atomic-min CAS operations, so the routine is race-free. This is the
// parallel connectivity substrate the contraction steps of Section 5.2.1
// rely on (the paper cites Gazit [27]); it converges in O(log n) rounds on
// the graphs we use, which tr records as depth.
// Labels are normalized to 0..count-1 and agree with Components up to
// renaming.
func ComponentsParallel(g *Graph, tr *wd.Tracker) ([]int32, int) {
	n := g.N()
	if n == 0 {
		return nil, 0
	}
	f := make([]atomic.Int32, n)
	for i := range f {
		f[i].Store(int32(i))
	}
	changed := new(atomic.Bool)
	for {
		changed.Store(false)
		// Hook: push min grandparent labels across every edge.
		par.For(0, n, func(i int) {
			u := int32(i)
			fu := f[u].Load()
			gu := f[fu].Load()
			for _, v := range g.Neighbors(u) {
				gv := f[f[v].Load()].Load()
				if gv < gu {
					atomicMin32(&f[u], gv)
					atomicMin32(&f[fu], gv)
					gu = gv
					changed.Store(true)
				}
			}
		})
		// Shortcut: pointer jumping until every tree is a star.
		for {
			jumped := new(atomic.Bool)
			par.For(0, n, func(i int) {
				p := f[i].Load()
				gp := f[p].Load()
				if gp < p {
					atomicMin32(&f[i], gp)
					jumped.Store(true)
				}
			})
			tr.AddPhaseRounds("components", 1)
			if !jumped.Load() {
				break
			}
		}
		tr.AddPhaseRounds("components", 1)
		tr.AddPhaseWork("components", int64(n+2*g.M()))
		if !changed.Load() {
			break
		}
	}
	// Normalize labels.
	remap := make([]int32, n)
	for i := range remap {
		remap[i] = -1
	}
	count := 0
	comp := make([]int32, n)
	for v := 0; v < n; v++ {
		r := f[v].Load()
		if remap[r] < 0 {
			remap[r] = int32(count)
			count++
		}
		comp[v] = remap[r]
	}
	return comp, count
}

// IsConnected reports whether g is connected (the empty graph counts as
// connected).
func IsConnected(g *Graph) bool {
	if g.N() == 0 {
		return true
	}
	_, c := Components(g)
	return c == 1
}

// BFSDist returns the distance from src to every vertex (-1 when
// unreachable), computed sequentially.
func BFSDist(g *Graph, src int32) []int32 {
	n := g.N()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Eccentricity returns the largest finite distance from src.
func Eccentricity(g *Graph, src int32) int {
	dist := BFSDist(g, src)
	ecc := 0
	for _, d := range dist {
		if int(d) > ecc {
			ecc = int(d)
		}
	}
	return ecc
}

// Diameter computes the exact diameter by running a BFS from every vertex.
// Quadratic; intended for pattern graphs, which are small. Disconnected
// graphs return the largest component-internal distance.
func Diameter(g *Graph) int {
	diam := 0
	for v := int32(0); v < int32(g.N()); v++ {
		if e := Eccentricity(g, v); e > diam {
			diam = e
		}
	}
	return diam
}

// Induce returns the subgraph induced by verts, together with the mapping
// from local ids to the original ids (orig[local] = original id). The
// relative order of each adjacency list is preserved, so induced subgraphs
// of embedded graphs keep a valid rotation system.
func Induce(g *Graph, verts []int32) (*Graph, []int32) {
	local := make(map[int32]int32, len(verts))
	for i, v := range verts {
		local[v] = int32(i)
	}
	b := NewBuilder(len(verts))
	for i, v := range verts {
		for _, w := range g.Neighbors(v) {
			if j, ok := local[w]; ok {
				// Append directly to keep rotation order; each edge is
				// seen from both endpoints, so both direction entries
				// get added exactly once.
				b.adj[i] = append(b.adj[i], j)
			}
		}
	}
	orig := make([]int32, len(verts))
	copy(orig, verts)
	sub := b.build(g.embedded, nil, nil)
	return sub, orig
}

// ContractPartition contracts each class of the given partition to a
// single vertex and returns the resulting minor. class[v] must be a dense
// id in [0, numClasses). Parallel edges are deduplicated and self-loops
// dropped, so the result is again simple. The minor does not carry an
// embedding (contraction can invalidate rotations).
func ContractPartition(g *Graph, class []int32, numClasses int) *Graph {
	b := NewBuilder(numClasses)
	seen := make(map[int64]struct{})
	for u := int32(0); u < int32(g.N()); u++ {
		cu := class[u]
		for _, v := range g.Neighbors(u) {
			cv := class[v]
			if cu >= cv { // handle each unordered class pair once, skip loops
				continue
			}
			key := int64(cu)<<32 | int64(uint32(cv))
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			b.AddEdge(cu, cv)
		}
	}
	return b.Build()
}

// ArticulationPoints returns a boolean mask of the articulation (cut)
// vertices of g, via an iterative Tarjan lowpoint DFS.
func ArticulationPoints(g *Graph) []bool {
	n := g.N()
	isArt := make([]bool, n)
	disc := make([]int32, n)
	low := make([]int32, n)
	parent := make([]int32, n)
	childCount := make([]int32, n)
	iter := make([]int32, n) // next adjacency index to visit per vertex
	for i := range disc {
		disc[i] = -1
		parent[i] = -1
	}
	timer := int32(0)
	var stack []int32
	for s := int32(0); s < int32(n); s++ {
		if disc[s] >= 0 {
			continue
		}
		disc[s] = timer
		low[s] = timer
		timer++
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			nbrs := g.Neighbors(v)
			if int(iter[v]) < len(nbrs) {
				w := nbrs[iter[v]]
				iter[v]++
				if disc[w] < 0 {
					parent[w] = v
					childCount[v]++
					disc[w] = timer
					low[w] = timer
					timer++
					stack = append(stack, w)
				} else if w != parent[v] {
					if disc[w] < low[v] {
						low[v] = disc[w]
					}
				}
			} else {
				stack = stack[:len(stack)-1]
				p := parent[v]
				if p >= 0 {
					if low[v] < low[p] {
						low[p] = low[v]
					}
					if p != s && low[v] >= disc[p] {
						isArt[p] = true
					}
				}
			}
		}
		if childCount[s] >= 2 {
			isArt[s] = true
		}
	}
	return isArt
}

// SpanningTreeEdges returns the edges of a BFS spanning forest of g.
func SpanningTreeEdges(g *Graph) [][2]int32 {
	n := g.N()
	visited := make([]bool, n)
	var out [][2]int32
	var queue []int32
	for s := int32(0); s < int32(n); s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(v) {
				if !visited[w] {
					visited[w] = true
					out = append(out, [2]int32{v, w})
					queue = append(queue, w)
				}
			}
		}
	}
	return out
}
