// Package bfs implements the level-synchronous parallel breadth-first
// search the paper uses inside low-diameter clusters (Section 2.1, "naive
// parallel BFS"). Each level is expanded with a parallel edge scan:
// frontier degrees are prefix-summed, every frontier edge claims its head
// with an atomic compare-and-swap, and the next frontier is packed out of
// the claimed vertices. Work is O(n + m) and depth is O(D log n) for
// diameter D, which is exactly why the paper only runs it after the
// clustering has bounded D to O(k log n).
package bfs

import (
	"sync/atomic"

	"planarsi/internal/graph"
	"planarsi/internal/par"
	"planarsi/internal/wd"
)

// Result holds the output of a parallel BFS.
type Result struct {
	// Dist is the level of each vertex, -1 if unreachable.
	Dist []int32
	// Rounds is the number of synchronous frontier expansions, the
	// empirical depth of the search (up to the log-factor from packing).
	Rounds int
	// MaxLevel is the largest finite level.
	MaxLevel int
}

// Levels runs a parallel BFS from the given roots. If within is non-nil,
// the search is restricted to vertices v with within[v] == true (roots
// must satisfy it). tr accumulates work and depth.
func Levels(g *graph.Graph, roots []int32, within []bool, tr *wd.Tracker) *Result {
	n := g.N()
	dist := make([]int32, n)
	distA := make([]atomic.Int32, n)
	for i := range distA {
		distA[i].Store(-1)
	}
	frontier := make([]int32, 0, len(roots))
	for _, r := range roots {
		if within != nil && !within[r] {
			panic("bfs: root outside the allowed subset")
		}
		if distA[r].CompareAndSwap(-1, 0) {
			frontier = append(frontier, r)
		}
	}
	level := int32(0)
	rounds := 0
	for len(frontier) > 0 {
		rounds++
		level++
		// Prefix-sum frontier degrees to give every frontier edge a slot.
		deg := make([]int32, len(frontier))
		par.For(0, len(frontier), func(i int) {
			deg[i] = int32(g.Degree(frontier[i]))
		})
		total := par.ExclusivePrefixSum(deg)
		out := make([]int32, total)
		par.For(0, len(frontier), func(i int) {
			v := frontier[i]
			base := deg[i]
			for j, w := range g.Neighbors(v) {
				slot := base + int32(j)
				out[slot] = -1
				if within != nil && !within[w] {
					continue
				}
				if distA[w].CompareAndSwap(-1, level) {
					out[slot] = w
				}
			}
		})
		frontier = par.Pack(out, func(i int) bool { return out[i] >= 0 })
		tr.AddPhaseWork("bfs", int64(total)+int64(len(frontier)))
		tr.AddPhaseRounds("bfs", 1)
	}
	maxLevel := 0
	for i := range distA {
		dist[i] = distA[i].Load()
		if int(dist[i]) > maxLevel {
			maxLevel = int(dist[i])
		}
	}
	return &Result{Dist: dist, Rounds: rounds, MaxLevel: maxLevel}
}
