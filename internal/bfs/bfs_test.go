package bfs

import (
	"math/rand/v2"
	"testing"

	"planarsi/internal/graph"
	"planarsi/internal/wd"
)

func TestLevelsMatchesSequentialBFS(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomPlanar(100, rng.Float64(), rng)
		src := rng.Int32N(int32(g.N()))
		want := graph.BFSDist(g, src)
		got := Levels(g, []int32{src}, nil, nil)
		for v := range want {
			if want[v] != got.Dist[v] {
				t.Fatalf("trial %d: dist[%d]=%d want %d", trial, v, got.Dist[v], want[v])
			}
		}
	}
}

func TestLevelsMultiSource(t *testing.T) {
	g := graph.Path(10)
	res := Levels(g, []int32{0, 9}, nil, nil)
	want := []int32{0, 1, 2, 3, 4, 4, 3, 2, 1, 0}
	for v := range want {
		if res.Dist[v] != want[v] {
			t.Fatalf("dist[%d]=%d want %d", v, res.Dist[v], want[v])
		}
	}
	if res.MaxLevel != 4 {
		t.Fatalf("MaxLevel=%d want 4", res.MaxLevel)
	}
}

func TestLevelsRestricted(t *testing.T) {
	g := graph.Grid(3, 5)
	// Restrict to the top row: BFS behaves like a path.
	within := make([]bool, g.N())
	for j := 0; j < 5; j++ {
		within[j] = true
	}
	res := Levels(g, []int32{0}, within, nil)
	for j := 0; j < 5; j++ {
		if res.Dist[j] != int32(j) {
			t.Fatalf("dist[%d]=%d want %d", j, res.Dist[j], j)
		}
	}
	for v := 5; v < g.N(); v++ {
		if res.Dist[v] != -1 {
			t.Fatalf("vertex %d outside subset got dist %d", v, res.Dist[v])
		}
	}
}

func TestLevelsRoundsEqualEccentricityPlusOne(t *testing.T) {
	g := graph.Path(32)
	res := Levels(g, []int32{0}, nil, nil)
	// One round per nonempty frontier: levels 1..31 plus the final empty
	// check happen in 31 expansions; rounds counts the expansions that
	// produced work.
	if res.MaxLevel != 31 {
		t.Fatalf("MaxLevel=%d want 31", res.MaxLevel)
	}
	if res.Rounds < 31 || res.Rounds > 32 {
		t.Fatalf("Rounds=%d want ~31", res.Rounds)
	}
}

func TestLevelsTracksWork(t *testing.T) {
	tr := wd.NewTracker()
	g := graph.Grid(10, 10)
	Levels(g, []int32{0}, nil, tr)
	if tr.PhaseWork("bfs") == 0 || tr.PhaseRounds("bfs") == 0 {
		t.Fatal("tracker did not record BFS work/rounds")
	}
	// Work should be O(n + m): generously, at most 4(n+2m).
	bound := int64(4 * (g.N() + 2*g.M()))
	if tr.PhaseWork("bfs") > bound {
		t.Fatalf("BFS work %d exceeds linear bound %d", tr.PhaseWork("bfs"), bound)
	}
}

func TestLevelsDisconnected(t *testing.T) {
	g := graph.DisjointUnion(graph.Cycle(4), graph.Cycle(4))
	res := Levels(g, []int32{0}, nil, nil)
	for v := 4; v < 8; v++ {
		if res.Dist[v] != -1 {
			t.Fatalf("other component reached: dist[%d]=%d", v, res.Dist[v])
		}
	}
}
