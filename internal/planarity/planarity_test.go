package planarity

import (
	"math/rand/v2"
	"testing"

	"planarsi/internal/graph"
)

// stripEmbedding rebuilds g without its rotation system.
func stripEmbedding(g *graph.Graph) *graph.Graph {
	return graph.FromEdges(g.N(), g.Edges())
}

func TestEmbedsPlanarFamilies(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 52))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(20)},
		{"cycle", graph.Cycle(12)},
		{"star", graph.Star(9)},
		{"tree", graph.RandomTree(40, rng)},
		{"grid", graph.Grid(7, 9)},
		{"grid+diagonals", graph.GridWithDiagonals(6, 6)},
		{"wheel", graph.Wheel(10)},
		{"k4", graph.Complete(4)},
		{"bipyramid", graph.Bipyramid(8)},
		{"cube", graph.Cube()},
		{"octahedron", graph.Octahedron()},
		{"dodecahedron", graph.Dodecahedron()},
		{"icosahedron", graph.Icosahedron()},
		{"apollonian", graph.Apollonian(60, rng)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := stripEmbedding(tc.g)
			emb, err := Embed(in)
			if err != nil {
				t.Fatalf("Embed: %v", err)
			}
			if emb.N() != in.N() || emb.M() != in.M() {
				t.Fatalf("embedding changed the graph: %v vs %v", emb, in)
			}
			for _, e := range in.Edges() {
				if !emb.HasEdge(e[0], e[1]) {
					t.Fatalf("edge %v lost", e)
				}
			}
			if err := graph.ValidateEmbedding(emb); err != nil {
				t.Fatalf("invalid rotation system: %v", err)
			}
		})
	}
}

func TestEmbedsRandomPlanar(t *testing.T) {
	rng := rand.New(rand.NewPCG(53, 54))
	for trial := 0; trial < 25; trial++ {
		g := stripEmbedding(graph.RandomPlanar(20+rng.IntN(120), rng.Float64(), rng))
		emb, err := Embed(g)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := graph.ValidateEmbedding(emb); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRejectsNonPlanar(t *testing.T) {
	k33 := graph.NewBuilder(6)
	for i := 0; i < 3; i++ {
		for j := 3; j < 6; j++ {
			k33.AddEdge(int32(i), int32(j))
		}
	}
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"k5", graph.Complete(5)},
		{"k6", graph.Complete(6)},
		{"k33", k33.Build()},
		{"torus", graph.TorusGrid(4, 4)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Embed(tc.g); err == nil {
				t.Fatal("non-planar graph accepted")
			}
			if IsPlanar(tc.g) {
				t.Fatal("IsPlanar = true for a non-planar graph")
			}
		})
	}
}

func TestRejectsSubdividedK5(t *testing.T) {
	// Subdivide every edge of K5 once: still non-planar (a K5
	// subdivision), but with m <= 3n-6 so the Euler quick reject does not
	// fire and DMP itself must detect it.
	k5 := graph.Complete(5)
	edges := k5.Edges()
	n := 5 + len(edges)
	b := graph.NewBuilder(n)
	for i, e := range edges {
		mid := int32(5 + i)
		b.AddEdge(e[0], mid)
		b.AddEdge(mid, e[1])
	}
	g := b.Build()
	if g.M() > 3*g.N()-6 {
		t.Fatal("test setup: quick reject would fire")
	}
	if IsPlanar(g) {
		t.Fatal("subdivided K5 accepted as planar")
	}
}

func TestDisconnectedAndCutVertices(t *testing.T) {
	// Two blocks sharing a cut vertex plus a separate component.
	b := graph.NewBuilder(8)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0) // triangle block
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 2) // second triangle sharing vertex 2
	b.AddEdge(5, 6) // bridge in another component; 7 isolated
	g := b.Build()
	emb, err := Embed(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.ValidateEmbedding(emb); err != nil {
		t.Fatal(err)
	}
}

func TestEmbeddingUsableBySection5(t *testing.T) {
	// End-to-end: embed a raw planar edge list, trace faces, and check
	// the face count against Euler directly.
	g := stripEmbedding(graph.Grid(5, 5))
	emb, err := Embed(g)
	if err != nil {
		t.Fatal(err)
	}
	faces := graph.TraceFaces(emb)
	want := 2 - g.N() + g.M() // Euler: f = 2 - n + m (connected)
	if faces.NumFaces() != want {
		t.Fatalf("face count %d, want %d", faces.NumFaces(), want)
	}
}

func TestEmptyAndTiny(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.NewBuilder(0).Build(),
		graph.NewBuilder(1).Build(),
		graph.FromEdges(2, [][2]int32{{0, 1}}),
	} {
		if _, err := Embed(g); err != nil {
			t.Fatalf("%v: %v", g, err)
		}
	}
}

func TestBlocksDecomposition(t *testing.T) {
	// Two triangles sharing a vertex plus a pendant edge: 3 blocks.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 2)
	b.AddEdge(0, 5)
	g := b.Build()
	bl := blocks(g)
	if len(bl) != 3 {
		t.Fatalf("got %d blocks, want 3", len(bl))
	}
	edgeTotal := 0
	for _, blk := range bl {
		edgeTotal += len(blk)
	}
	if edgeTotal != g.M() {
		t.Fatalf("blocks cover %d edges, want %d", edgeTotal, g.M())
	}
}
