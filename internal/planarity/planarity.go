// Package planarity tests planarity and computes combinatorial planar
// embeddings (rotation systems) of arbitrary simple graphs.
//
// The paper assumes an embedding is available — its pipeline consumes a
// rotation system when building the vertex-face incidence graph of
// Section 5 — and cites the Klein-Reif parallel embedder (O(n) work,
// O(log² n) depth) for obtaining one. This package substitutes the
// classic sequential Demoucron-Malgrange-Pertuiset (DMP) algorithm:
// quadratic instead of parallel, but exact, and sufficient to let the
// tools run on raw edge lists (DESIGN.md records the substitution; the
// embedding is input preprocessing, not part of the measured pipeline).
//
// DMP embeds one biconnected block at a time. A block starts as a cycle
// (two faces); repeatedly, the *fragments* relative to the embedded
// subgraph H (unembedded edges between embedded vertices, and components
// of G−V(H) with their attachment edges) are assigned their sets of
// admissible faces — faces whose boundary contains all the fragment's
// attachments. A fragment with no admissible face certifies
// non-planarity; otherwise a fragment with the fewest admissible faces
// embeds one of its attachment-to-attachment paths into an admissible
// face, splitting it in two. Faces are maintained as cyclic dart walks,
// so the split is list surgery; the rotation system is recovered at the
// end from the face successor permutation via σ(next(d)) = rev(d).
// Blocks share only cut vertices, so their rotations concatenate.
package planarity

import (
	"errors"
	"fmt"

	"planarsi/internal/graph"
)

// ErrNotPlanar reports that the input graph has no planar embedding.
var ErrNotPlanar = errors.New("planarity: graph is not planar")

// dart is a directed edge.
type dart struct{ u, v int32 }

func (d dart) rev() dart { return dart{d.v, d.u} }

// Embed returns a copy of g carrying a combinatorial planar embedding
// (rotation system), or ErrNotPlanar. The input must be simple; it may
// be disconnected.
func Embed(g *graph.Graph) (*graph.Graph, error) {
	n := g.N()
	if n == 0 {
		return g, nil
	}
	// Euler quick reject.
	if n >= 3 && g.M() > 3*n-6 {
		return nil, fmt.Errorf("%w: m=%d > 3n-6=%d", ErrNotPlanar, g.M(), 3*n-6)
	}
	rot := make([][]int32, n)
	for _, block := range blocks(g) {
		if len(block) == 1 {
			// A bridge: both endpoints just gain one rotation entry.
			e := block[0]
			rot[e[0]] = append(rot[e[0]], e[1])
			rot[e[1]] = append(rot[e[1]], e[0])
			continue
		}
		if err := embedBlock(block, rot); err != nil {
			return nil, err
		}
	}
	return graph.FromRotations(rot)
}

// IsPlanar reports whether g is planar.
func IsPlanar(g *graph.Graph) bool {
	_, err := Embed(g)
	return err == nil
}

// blocks returns the biconnected components of g as edge lists
// (each edge once, endpoints in original ids), via the classic
// lowpoint edge-stack DFS.
func blocks(g *graph.Graph) [][][2]int32 {
	n := g.N()
	disc := make([]int32, n)
	low := make([]int32, n)
	parent := make([]int32, n)
	iter := make([]int32, n)
	for i := range disc {
		disc[i] = -1
		parent[i] = -1
	}
	var out [][][2]int32
	var edgeStack [][2]int32
	timer := int32(0)
	var stack []int32
	for s := int32(0); s < int32(n); s++ {
		if disc[s] >= 0 {
			continue
		}
		disc[s], low[s] = timer, timer
		timer++
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			nbrs := g.Neighbors(v)
			if int(iter[v]) < len(nbrs) {
				w := nbrs[iter[v]]
				iter[v]++
				if disc[w] < 0 {
					parent[w] = v
					edgeStack = append(edgeStack, [2]int32{v, w})
					disc[w], low[w] = timer, timer
					timer++
					stack = append(stack, w)
				} else if w != parent[v] && disc[w] < disc[v] {
					edgeStack = append(edgeStack, [2]int32{v, w})
					if disc[w] < low[v] {
						low[v] = disc[w]
					}
				}
				continue
			}
			stack = stack[:len(stack)-1]
			p := parent[v]
			if p < 0 {
				continue
			}
			if low[v] < low[p] {
				low[p] = low[v]
			}
			if low[v] >= disc[p] {
				// Pop the block ending with edge (p, v).
				var blk [][2]int32
				for len(edgeStack) > 0 {
					e := edgeStack[len(edgeStack)-1]
					edgeStack = edgeStack[:len(edgeStack)-1]
					blk = append(blk, e)
					if e[0] == p && e[1] == v {
						break
					}
				}
				out = append(out, blk)
			}
		}
	}
	return out
}

// embedBlock runs DMP on one biconnected block (>= 2 edges, hence it
// contains a cycle) and appends the block's rotation order of every
// block vertex to rot.
func embedBlock(blockEdges [][2]int32, rot [][]int32) error {
	st := newBlockState(blockEdges)
	if err := st.run(); err != nil {
		return err
	}
	st.appendRotations(rot)
	return nil
}

// blockState is the DMP working state for one block.
type blockState struct {
	verts []int32           // block vertices (original ids)
	adj   map[int32][]int32 // block adjacency
	// embedded darts and vertices
	inH     map[dart]bool
	vInH    map[int32]bool
	faces   [][]dart // cyclic boundary walks
	edgeCnt int      // embedded undirected edges
	total   int      // total undirected edges in the block
}

func newBlockState(blockEdges [][2]int32) *blockState {
	st := &blockState{
		adj:  make(map[int32][]int32),
		inH:  make(map[dart]bool),
		vInH: make(map[int32]bool),
	}
	seen := make(map[int32]bool)
	for _, e := range blockEdges {
		st.adj[e[0]] = append(st.adj[e[0]], e[1])
		st.adj[e[1]] = append(st.adj[e[1]], e[0])
		for _, v := range e {
			if !seen[v] {
				seen[v] = true
				st.verts = append(st.verts, v)
			}
		}
	}
	st.total = len(blockEdges)
	return st
}

func (st *blockState) run() error {
	cycle := st.findCycle()
	st.embedCycle(cycle)
	for st.edgeCnt < st.total {
		frags := st.fragments()
		if len(frags) == 0 {
			return fmt.Errorf("planarity: internal: edges remain but no fragments")
		}
		// Pick the fragment with the fewest admissible faces.
		best := -1
		var bestFaces []int
		for i, f := range frags {
			adm := st.admissibleFaces(f.attach)
			if len(adm) == 0 {
				return fmt.Errorf("%w: fragment with attachments %v fits no face", ErrNotPlanar, f.attach)
			}
			if best < 0 || len(adm) < len(bestFaces) {
				best, bestFaces = i, adm
				if len(adm) == 1 {
					break
				}
			}
		}
		f := frags[best]
		path := st.fragmentPath(f)
		st.embedPath(path, bestFaces[0])
	}
	return nil
}

// findCycle returns a cycle in the block (exists: >= 2 edges and
// biconnected) as a vertex sequence.
func (st *blockState) findCycle() []int32 {
	start := st.verts[0]
	parent := map[int32]int32{start: -1}
	order := []int32{start}
	for i := 0; i < len(order); i++ {
		v := order[i]
		for _, w := range st.adj[v] {
			if _, ok := parent[w]; !ok {
				parent[w] = v
				order = append(order, w)
			} else if parent[v] != w {
				// Back/cross edge (v, w): cycle through tree paths.
				return treeCycle(parent, v, w)
			}
		}
	}
	panic("planarity: biconnected block without a cycle")
}

// treeCycle builds the cycle closing edge (v, w) over the BFS tree.
func treeCycle(parent map[int32]int32, v, w int32) []int32 {
	anc := map[int32]bool{}
	for x := v; x >= 0; x = parent[x] {
		anc[x] = true
	}
	var wPath []int32
	x := w
	for ; !anc[x]; x = parent[x] {
		wPath = append(wPath, x)
	}
	meet := x
	var vPath []int32
	for y := v; y != meet; y = parent[y] {
		vPath = append(vPath, y)
	}
	// Cycle order: meet -> ... -> v (reversed vPath), then the cross edge
	// to w, then w's climb back toward meet exactly as collected.
	cycle := append([]int32{meet}, reverseInts(vPath)...)
	cycle = append(cycle, wPath...)
	return cycle
}

func reverseInts(a []int32) []int32 {
	out := make([]int32, len(a))
	for i, x := range a {
		out[len(a)-1-i] = x
	}
	return out
}

func reverseSlice(a []int32) {
	for i, j := 0, len(a)-1; i < j; i, j = i+1, j-1 {
		a[i], a[j] = a[j], a[i]
	}
}

func (st *blockState) embedCycle(cycle []int32) {
	l := len(cycle)
	fwd := make([]dart, l)
	bwd := make([]dart, l)
	for i := 0; i < l; i++ {
		u, v := cycle[i], cycle[(i+1)%l]
		fwd[i] = dart{u, v}
		bwd[l-1-i] = dart{v, u}
		st.inH[dart{u, v}] = true
		st.inH[dart{v, u}] = true
		st.vInH[u] = true
		st.edgeCnt++
	}
	st.faces = [][]dart{fwd, bwd}
}

// fragment is a DMP bridge: either a single unembedded chord, or a
// component of the block minus the embedded vertices plus its edges into
// them.
type fragment struct {
	// comp is the set of unembedded vertices (nil for chords).
	comp map[int32]bool
	// attach are the embedded vertices the fragment touches (sorted-ish).
	attach []int32
	// chord is the unembedded edge for chord fragments.
	chord [2]int32
	isChd bool
}

func (st *blockState) fragments() []*fragment {
	var out []*fragment
	// Chords: unembedded edges between embedded vertices.
	for _, u := range st.verts {
		if !st.vInH[u] {
			continue
		}
		for _, w := range st.adj[u] {
			if u < w && st.vInH[w] && !st.inH[dart{u, w}] {
				out = append(out, &fragment{attach: []int32{u, w}, chord: [2]int32{u, w}, isChd: true})
			}
		}
	}
	// Components of block − V(H).
	seen := map[int32]bool{}
	for _, s := range st.verts {
		if st.vInH[s] || seen[s] {
			continue
		}
		comp := map[int32]bool{s: true}
		seen[s] = true
		queue := []int32{s}
		attach := map[int32]bool{}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range st.adj[v] {
				if st.vInH[w] {
					attach[w] = true
				} else if !seen[w] {
					seen[w] = true
					comp[w] = true
					queue = append(queue, w)
				}
			}
		}
		f := &fragment{comp: comp}
		for a := range attach {
			f.attach = append(f.attach, a)
		}
		out = append(out, f)
	}
	return out
}

// admissibleFaces lists the faces whose boundary contains every
// attachment vertex.
func (st *blockState) admissibleFaces(attach []int32) []int {
	var out []int
	for fi, walk := range st.faces {
		onFace := map[int32]bool{}
		for _, d := range walk {
			onFace[d.u] = true
		}
		ok := true
		for _, a := range attach {
			if !onFace[a] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, fi)
		}
	}
	return out
}

// fragmentPath returns a path between two distinct attachments running
// through the fragment (for chords, the chord itself).
func (st *blockState) fragmentPath(f *fragment) []int32 {
	if f.isChd {
		return []int32{f.chord[0], f.chord[1]}
	}
	// BFS from attachment a1 through the component to any other
	// attachment (biconnected blocks guarantee >= 2 attachments).
	a1 := f.attach[0]
	targets := map[int32]bool{}
	for _, a := range f.attach[1:] {
		targets[a] = true
	}
	prev := map[int32]int32{a1: -1}
	queue := []int32{a1}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range st.adj[v] {
			if _, ok := prev[w]; ok {
				continue
			}
			// From a1 step only into the component; within it, step to
			// component vertices or to a target attachment.
			if f.comp[w] {
				prev[w] = v
				queue = append(queue, w)
			} else if targets[w] && v != a1 {
				prev[w] = v
				var path []int32
				for x := w; x >= 0; x = prev[x] {
					path = append(path, x)
				}
				reverseSlice(path)
				return path
			}
		}
	}
	panic("planarity: fragment path not found (block not biconnected?)")
}

// embedPath inserts the path (whose endpoints lie on face fi's boundary
// and whose interior vertices are new) into face fi, splitting it.
func (st *blockState) embedPath(path []int32, fi int) {
	walk := st.faces[fi]
	a1 := path[0]
	a2 := path[len(path)-1]
	// Locate the boundary positions where a1 and a2 start darts. Embedded
	// subgraphs of a biconnected block stay 2-connected (we add ears), so
	// each face walk is a simple cycle and the positions are unique.
	p1, p2 := -1, -1
	for i, d := range walk {
		if d.u == a1 {
			p1 = i
		}
		if d.u == a2 {
			p2 = i
		}
	}
	if p1 < 0 || p2 < 0 {
		panic("planarity: path endpoints not on the chosen face")
	}
	// Arcs: A = walk[p1:p2) from a1 to a2, B = walk[p2:p1) from a2 to a1.
	arcA := cyclicSlice(walk, p1, p2)
	arcB := cyclicSlice(walk, p2, p1)
	fwd := make([]dart, 0, len(path)-1)
	bwd := make([]dart, 0, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		u, v := path[i], path[i+1]
		fwd = append(fwd, dart{u, v})
		bwd = append(bwd, dart{v, u})
		st.inH[dart{u, v}] = true
		st.inH[dart{v, u}] = true
		st.vInH[u] = true
		st.vInH[v] = true
		st.edgeCnt++
	}
	reverseDarts(bwd)
	// Face 1: a1..a2 along arcA, back along the reversed path.
	face1 := append(append([]dart{}, arcA...), bwd...)
	// Face 2: a2..a1 along arcB, forward along the path.
	face2 := append(append([]dart{}, arcB...), fwd...)
	st.faces[fi] = face1
	st.faces = append(st.faces, face2)
}

func reverseDarts(a []dart) {
	for i, j := 0, len(a)-1; i < j; i, j = i+1, j-1 {
		a[i], a[j] = a[j], a[i]
	}
}

// cyclicSlice returns walk[from:to) cyclically.
func cyclicSlice(walk []dart, from, to int) []dart {
	if from <= to {
		return append([]dart{}, walk[from:to]...)
	}
	out := append([]dart{}, walk[from:]...)
	return append(out, walk[:to]...)
}

// appendRotations recovers the rotation system from the face walks via
// σ(next(d)) = rev(d) — next being the face successor permutation — and
// appends each block vertex's cyclic dart order to rot.
func (st *blockState) appendRotations(rot [][]int32) {
	sigma := make(map[dart]dart, 2*st.edgeCnt)
	for _, walk := range st.faces {
		l := len(walk)
		for i, d := range walk {
			nd := walk[(i+1)%l]
			sigma[nd] = d.rev()
		}
	}
	// Chain σ per vertex starting from an arbitrary dart.
	startOf := make(map[int32]dart, len(st.verts))
	for d := range sigma {
		if _, ok := startOf[d.u]; !ok {
			startOf[d.u] = d
		}
	}
	for _, v := range st.verts {
		d0, ok := startOf[v]
		if !ok {
			continue
		}
		d := d0
		for {
			rot[v] = append(rot[v], d.v)
			d = sigma[d]
			if d == d0 {
				break
			}
		}
	}
}
