package naive

import (
	"math/rand/v2"
	"testing"

	"planarsi/internal/graph"
)

func TestDecideBasics(t *testing.T) {
	g := graph.Grid(3, 3)
	if !Decide(g, graph.Path(3)) {
		t.Fatal("P3 must occur in a grid")
	}
	if !Decide(g, graph.Cycle(4)) {
		t.Fatal("C4 must occur in a grid")
	}
	if Decide(g, graph.Cycle(3)) {
		t.Fatal("no triangle in a bipartite grid")
	}
	if Decide(g, graph.Star(6)) {
		t.Fatal("no degree-5 vertex in a 3x3 grid")
	}
}

func TestSearchCountsExactly(t *testing.T) {
	// C4 in a 2x2 grid: one square, 8 automorphic maps.
	g := graph.Grid(2, 2)
	occs := Search(g, graph.Cycle(4), Options{})
	if len(occs) != 8 {
		t.Fatalf("C4 maps in unit square = %d, want 8", len(occs))
	}
	// P2 (an edge) in a triangle: 3 edges x 2 directions.
	occs = Search(graph.Cycle(3), graph.Path(2), Options{})
	if len(occs) != 6 {
		t.Fatalf("edge maps in triangle = %d, want 6", len(occs))
	}
	// K3 in K4: 4 triangles x 6 maps.
	occs = Search(graph.Complete(4), graph.Cycle(3), Options{})
	if len(occs) != 24 {
		t.Fatalf("triangle maps in K4 = %d, want 24", len(occs))
	}
}

func TestSearchLimit(t *testing.T) {
	g := graph.Complete(6)
	occs := Search(g, graph.Path(3), Options{Limit: 5})
	if len(occs) != 5 {
		t.Fatalf("limited search returned %d, want 5", len(occs))
	}
}

func TestSearchEmptyAndOversized(t *testing.T) {
	g := graph.Path(3)
	if occs := Search(g, graph.NewBuilder(0).Build(), Options{}); len(occs) != 1 {
		t.Fatalf("empty pattern should yield the empty map, got %d", len(occs))
	}
	if occs := Search(g, graph.Path(4), Options{}); len(occs) != 0 {
		t.Fatalf("oversized pattern matched: %d", len(occs))
	}
}

func TestSearchDisconnectedPattern(t *testing.T) {
	// Two isolated vertices in a 2-vertex edgeless graph: 2 orderings.
	g := graph.NewBuilder(2).Build()
	h := graph.NewBuilder(2).Build()
	if occs := Search(g, h, Options{}); len(occs) != 2 {
		t.Fatalf("got %d, want 2", len(occs))
	}
	// Two disjoint edges in P4: only the end pairs {0,1},{2,3} work.
	p4 := graph.Path(4)
	hh := graph.DisjointUnion(graph.Path(2), graph.Path(2))
	occs := Search(p4, hh, Options{})
	// Valid images: edges {0,1} and {2,3} in either component order, each
	// edge in 2 orientations: 2 x 2 x 2 = 8.
	if len(occs) != 8 {
		t.Fatalf("disjoint edges in P4 = %d, want 8", len(occs))
	}
}

func TestAllResultsAreValid(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomPlanar(8+rng.IntN(12), rng.Float64(), rng)
		h := graph.RandomTree(2+rng.IntN(3), rng)
		for _, occ := range Search(g, h, Options{}) {
			seen := map[int32]bool{}
			for _, v := range occ {
				if seen[v] {
					t.Fatalf("trial %d: non-injective %v", trial, occ)
				}
				seen[v] = true
			}
			for _, e := range h.Edges() {
				if !g.HasEdge(occ[e[0]], occ[e[1]]) {
					t.Fatalf("trial %d: unrealized edge in %v", trial, occ)
				}
			}
		}
	}
}

func TestWorkCounter(t *testing.T) {
	var work int64
	Search(graph.Grid(4, 4), graph.Path(3), Options{CountWork: &work})
	if work == 0 {
		t.Fatal("work counter not incremented")
	}
}

func TestNoDuplicateResults(t *testing.T) {
	g := graph.Grid(3, 4)
	occs := Search(g, graph.Cycle(4), Options{})
	seen := map[string]bool{}
	for _, occ := range occs {
		key := ""
		for _, v := range occ {
			key += string(rune(v)) + ","
		}
		if seen[key] {
			t.Fatalf("duplicate occurrence %v", occ)
		}
		seen[key] = true
	}
	// 3x4 grid has 6 unit squares, 8 maps each.
	if len(occs) != 48 {
		t.Fatalf("C4 maps = %d, want 48", len(occs))
	}
}
