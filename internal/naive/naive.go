// Package naive implements a backtracking subgraph isomorphism solver in
// the spirit of Ullmann's algorithm: pattern vertices are ordered along a
// BFS of the pattern (so each new vertex attaches to an already-matched
// neighbor when the pattern is connected), candidates are pruned by degree
// and adjacency consistency, and the search backtracks on failure.
//
// Its worst-case work is n^k — the general-case baseline in the paper's
// Table 1 discussion ("no algorithm with less work than the naive n^k is
// known") — and it serves as the correctness oracle for every other
// matcher in this repository.
package naive

import (
	"planarsi/internal/graph"
)

// Options configures a search.
type Options struct {
	// Limit stops after this many occurrences (0 = unbounded).
	Limit int
	// CountWork, when non-nil, accumulates the number of candidate
	// extension attempts (the work measure for Table 1).
	CountWork *int64
}

// Decide reports whether the pattern h occurs in g as a subgraph.
func Decide(g, h *graph.Graph) bool {
	res := Search(g, h, Options{Limit: 1})
	return len(res) > 0
}

// Search returns injective mappings (pattern vertex -> target vertex)
// realizing every H-edge, up to opts.Limit of them. All distinct mappings
// are enumerated (automorphic images of the same subgraph count
// separately, matching the semantics of the paper's listing problem).
func Search(g, h *graph.Graph, opts Options) [][]int32 {
	k := h.N()
	n := g.N()
	if k == 0 {
		return [][]int32{{}}
	}
	if k > n {
		return nil
	}
	order := searchOrder(h)
	// earlier[i] = H-neighbors of order[i] that appear before i in order.
	earlier := make([][]int32, k)
	posOf := make([]int32, k)
	for i, u := range order {
		posOf[u] = int32(i)
	}
	for i, u := range order {
		for _, w := range h.Neighbors(u) {
			if posOf[w] < int32(i) {
				earlier[i] = append(earlier[i], w)
			}
		}
	}
	assign := make([]int32, k)
	for i := range assign {
		assign[i] = -1
	}
	used := make([]bool, n)
	var out [][]int32
	var work int64

	var rec func(i int) bool // returns true when the limit is reached
	rec = func(i int) bool {
		if i == k {
			m := make([]int32, k)
			copy(m, assign)
			out = append(out, m)
			return opts.Limit > 0 && len(out) >= opts.Limit
		}
		u := order[i]
		degU := h.Degree(u)
		// Candidates: neighbors of an already-matched H-neighbor when one
		// exists (connected patterns), else all vertices.
		var candidates []int32
		if len(earlier[i]) > 0 {
			candidates = g.Neighbors(assign[earlier[i][0]])
		} else {
			candidates = allVertices(n)
		}
		for _, v := range candidates {
			work++
			if used[v] || g.Degree(v) < degU {
				continue
			}
			ok := true
			for _, w := range earlier[i] {
				if !g.HasEdge(v, assign[w]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			assign[u] = v
			used[v] = true
			done := rec(i + 1)
			used[v] = false
			assign[u] = -1
			if done {
				return true
			}
		}
		return false
	}
	rec(0)
	if opts.CountWork != nil {
		*opts.CountWork += work
	}
	return out
}

// searchOrder returns the pattern vertices in BFS order from a maximum
// degree vertex, visiting each connected component in turn.
func searchOrder(h *graph.Graph) []int32 {
	k := h.N()
	visited := make([]bool, k)
	var order []int32
	for len(order) < k {
		// Highest-degree unvisited vertex starts the next component.
		start := int32(-1)
		for v := int32(0); v < int32(k); v++ {
			if !visited[v] && (start < 0 || h.Degree(v) > h.Degree(start)) {
				start = v
			}
		}
		queue := []int32{start}
		visited[start] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, w := range h.Neighbors(v) {
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return order
}

func allVertices(n int) []int32 {
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(i)
	}
	return vs
}
