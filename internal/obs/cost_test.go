package obs

import (
	"context"
	"testing"
	"time"
)

func TestCostCounterNilSafe(t *testing.T) {
	var c *CostCounter
	c.Add(Cost{Nodes: 5, Emissions: 7}) // must not panic
	if got := c.Snapshot(); !got.IsZero() {
		t.Fatalf("nil counter snapshot = %+v, want zero", got)
	}
}

func TestCostCounterAccumulates(t *testing.T) {
	c := new(CostCounter)
	c.Add(Cost{Nodes: 1, States: 2, Joins: 3, Emissions: 4, Bytes: 5})
	c.Add(Cost{Nodes: 10, Emissions: 40})
	c.Add(Cost{}) // zero batch: free, no effect
	want := Cost{Nodes: 11, States: 2, Joins: 3, Emissions: 44, Bytes: 5}
	if got := c.Snapshot(); got != want {
		t.Fatalf("snapshot = %+v, want %+v", got, want)
	}
}

func TestCostAccumulateFieldwise(t *testing.T) {
	var c Cost
	c.Accumulate(Cost{Nodes: 1, Bytes: 2})
	c.Accumulate(Cost{Nodes: 3, Joins: 4})
	if want := (Cost{Nodes: 4, Joins: 4, Bytes: 2}); c != want {
		t.Fatalf("accumulated = %+v, want %+v", c, want)
	}
	if c.IsZero() {
		t.Fatal("nonzero cost reported IsZero")
	}
	if !(Cost{}).IsZero() {
		t.Fatal("zero cost not IsZero")
	}
}

func TestCostContextCarrier(t *testing.T) {
	if got := CostFromContext(context.Background()); got != nil {
		t.Fatalf("bare context carried a counter: %v", got)
	}
	if got := CostFromContext(nil); got != nil {
		t.Fatalf("nil context carried a counter: %v", got)
	}
	c := new(CostCounter)
	ctx := WithCost(context.Background(), c)
	if got := CostFromContext(ctx); got != c {
		t.Fatalf("carrier round-trip: got %p, want %p", got, c)
	}
}

// TestSpanCostAttachment: SpanCost attaches the cost breakdown only when
// it is nonzero, so zero-cost spans (skipped bands, fallback) serialize
// without a noise "cost" object.
func TestSpanCostAttachment(t *testing.T) {
	r := NewRecorder(0)
	t0 := r.Begin()
	r.SpanCost("band", 0, 0, t0, "miss", Cost{Emissions: 9})
	r.SpanCost("band", 0, 1, t0, "skipped", Cost{})
	spans, _ := r.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Cost == nil || spans[0].Cost.Emissions != 9 {
		t.Fatalf("span 0 cost = %+v, want Emissions 9", spans[0].Cost)
	}
	if spans[1].Cost != nil {
		t.Fatalf("zero-cost span carries cost %+v, want nil", spans[1].Cost)
	}
	// Nil recorders swallow SpanCost like every other method.
	var nilRec *Recorder
	nilRec.SpanCost("band", 0, 0, time.Time{}, "", Cost{Nodes: 1})
}

// TestRecorderDropCounting: spans past the limit are counted, Dropped
// agrees with Snapshot, and the kept spans are the prefix.
func TestRecorderDropCounting(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.Event("e", i, -1, "")
	}
	spans, dropped := r.Snapshot()
	if len(spans) != 3 || dropped != 2 {
		t.Fatalf("snapshot = %d spans, %d dropped; want 3, 2", len(spans), dropped)
	}
	if got := r.Dropped(); got != 2 {
		t.Fatalf("Dropped() = %d, want 2", got)
	}
	if spans[0].Run != 0 || spans[2].Run != 2 {
		t.Fatalf("kept spans are not the prefix: %+v", spans)
	}
	var nilRec *Recorder
	if nilRec.Dropped() != 0 {
		t.Fatal("nil recorder Dropped() != 0")
	}
}
