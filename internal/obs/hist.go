// Package obs is the serving stack's dependency-free observability
// substrate: fixed-bucket atomic histograms (the backing store of both
// the Prometheus /metrics exposition and the /stats percentiles) and a
// lightweight per-query span recorder (the band-level trace a ?trace=1
// query returns).
//
// Both halves are deliberately tiny. Histograms are a bounded array of
// atomic counters — observation is two atomic adds plus a CAS on the
// float sum, snapshots are lock-free reads, and there is no registry,
// no label machinery and no dependency beyond the standard library.
// The recorder is nil-safe (a nil *Recorder records nothing and costs
// one pointer check), so the pipeline can thread it unconditionally
// through core.Options next to the cancellation token.
package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// LatencyBuckets returns the bucket upper bounds (in seconds) every
// latency histogram in the serving stack uses: a 100µs..10s log-ish
// ladder matching the Prometheus client defaults' shape, dense enough
// that p99 interpolation within a bucket stays honest at serving
// latencies. Callers own the returned slice.
func LatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// SizeBuckets returns power-of-two count buckets 1, 2, 4, ... up to and
// including the first bound >= max — the shape batch-size and
// queue-depth distributions want.
func SizeBuckets(max int) []float64 {
	var out []float64
	for b := 1; ; b *= 2 {
		out = append(out, float64(b))
		if b >= max {
			return out
		}
	}
}

// Histogram is a fixed-bucket concurrent histogram. Observations land
// in the first bucket whose upper bound is >= the value; values above
// every bound land in the implicit +Inf overflow bucket. All methods
// are safe for concurrent use; a snapshot taken concurrently with
// observations is a consistent-enough point-in-time view (each counter
// is read atomically; cross-counter skew is at most the in-flight
// observations).
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// NewHistogram returns a histogram over the given strictly increasing
// upper bounds (plus the implicit +Inf overflow bucket).
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// NewLatencyHistogram returns a histogram over LatencyBuckets.
func NewLatencyHistogram() *Histogram { return NewHistogram(LatencyBuckets()) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds (the unit every latency
// histogram and the Prometheus exposition use).
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	// Bounds are the bucket upper bounds; Counts[i] holds the raw (not
	// cumulative) count of bucket i, with Counts[len(Bounds)] the +Inf
	// overflow bucket.
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the snapshot's average observation (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the bucket holding the q-th observation,
// Prometheus histogram_quantile-style. Observations in the +Inf
// overflow bucket are clamped to the largest finite bound (the
// documented overflow policy: percentiles saturate at the last bound
// rather than invent values). Returns 0 on an empty snapshot.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) >= rank {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1] // +Inf bucket: saturate
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			if c == 0 {
				return hi
			}
			frac := (rank - float64(cum-c)) / float64(c)
			return lo + (hi-lo)*frac
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}
