package obs

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketPlacement(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// le=1: {0.5, 1}; le=2: {1.5, 2}; le=4: {3, 4}; +Inf: {5, 100}.
	want := []uint64{2, 2, 2, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d: count = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 8 {
		t.Errorf("count = %d, want 8", s.Count)
	}
	if math.Abs(s.Sum-117) > 1e-9 {
		t.Errorf("sum = %v, want 117", s.Sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(0.5) // all in the first bucket
	}
	s := h.Snapshot()
	// Interpolation inside [0, 1]: p50 = 0.5, p100 = 1.
	if q := s.Quantile(0.5); math.Abs(q-0.5) > 1e-9 {
		t.Errorf("p50 = %v, want 0.5", q)
	}
	if q := s.Quantile(1); math.Abs(q-1) > 1e-9 {
		t.Errorf("p100 = %v, want 1", q)
	}

	// Overflow policy: observations beyond the last bound saturate
	// quantiles at that bound instead of inventing values.
	h2 := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		h2.Observe(1000)
	}
	if q := h2.Snapshot().Quantile(0.99); q != 4 {
		t.Errorf("overflow p99 = %v, want saturation at 4", q)
	}

	if q := (HistSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}

func TestHistogramQuantilesOrdered(t *testing.T) {
	h := NewLatencyHistogram()
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i%37) * 0.001)
	}
	s := h.Snapshot()
	p50, p95, p99 := s.Quantile(0.5), s.Quantile(0.95), s.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Errorf("quantiles not monotone: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	if p50 <= 0 {
		t.Errorf("p50 = %v, want > 0", p50)
	}
}

// TestHistogramConcurrent interleaves observers with snapshotters; run
// under -race it proves the observe/snapshot paths share no unsynchronized
// state, and the final snapshot must account for every observation.
func TestHistogramConcurrent(t *testing.T) {
	h := NewLatencyHistogram()
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent snapshotter
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var cum uint64
			for _, c := range s.Counts {
				cum += c
			}
			_ = s.Quantile(0.99)
			_ = cum
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(w*i%17) * 0.0005)
			}
		}(w)
	}
	for h.Count() < workers*perWorker {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, workers*perWorker)
	}
	var cum uint64
	for _, c := range s.Counts {
		cum += c
	}
	if cum != s.Count {
		t.Fatalf("bucket sum %d != count %d", cum, s.Count)
	}
}

func TestSizeBuckets(t *testing.T) {
	got := SizeBuckets(64)
	want := []float64{1, 2, 4, 8, 16, 32, 64}
	if len(got) != len(want) {
		t.Fatalf("SizeBuckets(64) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SizeBuckets(64) = %v, want %v", got, want)
		}
	}
}

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(0)
	t0 := r.Begin()
	time.Sleep(time.Millisecond)
	r.Span("band", 0, 3, t0, "miss")
	r.Event("dp.cancel", 1, -1, "checkpoint")
	spans, dropped := r.Snapshot()
	if dropped != 0 || len(spans) != 2 {
		t.Fatalf("spans = %d dropped = %d, want 2/0", len(spans), dropped)
	}
	if spans[0].Name != "band" || spans[0].Band != 3 || spans[0].Note != "miss" {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if spans[0].DurMicros < 500 {
		t.Errorf("span 0 duration = %vµs, want >= 500", spans[0].DurMicros)
	}
	if spans[1].DurMicros != 0 {
		t.Errorf("event duration = %v, want 0", spans[1].DurMicros)
	}
}

func TestRecorderLimit(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Event("e", 0, i, "")
	}
	spans, dropped := r.Snapshot()
	if len(spans) != 2 || dropped != 3 {
		t.Fatalf("spans = %d dropped = %d, want 2/3", len(spans), dropped)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	t0 := r.Begin()
	if !t0.IsZero() {
		t.Error("nil Begin read the clock")
	}
	r.Span("x", 0, 0, t0, "")
	r.Event("y", 0, 0, "")
	if spans, dropped := r.Snapshot(); spans != nil || dropped != 0 {
		t.Error("nil Snapshot returned data")
	}
}

func TestRecorderContext(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Error("empty context carried a recorder")
	}
	if FromContext(nil) != nil { //nolint:staticcheck // nil ctx is the point
		t.Error("nil context carried a recorder")
	}
	r := NewRecorder(0)
	ctx := WithRecorder(context.Background(), r)
	if FromContext(ctx) != r {
		t.Error("recorder did not round-trip through the context")
	}
}

// TestRecorderConcurrent exercises concurrent span emission (bands run
// in parallel and share one query recorder) under -race.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				t0 := r.Begin()
				r.Span("band", w, i, t0, "miss")
			}
		}(w)
	}
	wg.Wait()
	spans, dropped := r.Snapshot()
	if len(spans)+dropped != 400 {
		t.Fatalf("spans+dropped = %d, want 400", len(spans)+dropped)
	}
}
