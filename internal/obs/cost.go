package obs

import (
	"context"
	"sync/atomic"
)

// Cost is one batch of dynamic-programming cost counters: the paper's
// work measure broken down by what the engines actually did. Engines
// accumulate a Cost in function-local variables and flush it once per
// nice node (sequential engine) or once per path (pmdag engine), the
// same discipline as the work counter, so the disabled path stays a
// single nil check per flush site.
//
// Emissions is defined to equal the engine work counter
// (Result.StatesGenerated) exactly: both are flushed from the same
// local at the same program points. The other fields are attribution
// detail — Bytes is an estimate (state-struct sizes, not allocator
// truth).
type Cost struct {
	// Nodes counts nice-decomposition nodes visited.
	Nodes int64 `json:"nodes,omitempty"`
	// States counts states inserted into per-node state sets (for the
	// pmdag engine: states materialized into level universes).
	States int64 `json:"states,omitempty"`
	// Joins counts join combinations attempted (signature-bucket
	// pairings scanned, successful or not).
	Joins int64 `json:"joins,omitempty"`
	// Emissions counts state emissions across all transitions; it
	// matches the engine's StatesGenerated counter byte for byte.
	Emissions int64 `json:"emissions,omitempty"`
	// Bytes estimates state bytes read and written while processing.
	Bytes int64 `json:"bytes,omitempty"`
}

// IsZero reports whether every counter is zero.
func (c Cost) IsZero() bool {
	return c == Cost{}
}

// Accumulate adds d into c field by field.
func (c *Cost) Accumulate(d Cost) {
	c.Nodes += d.Nodes
	c.States += d.States
	c.Joins += d.Joins
	c.Emissions += d.Emissions
	c.Bytes += d.Bytes
}

// CostCounter is a concurrency-safe Cost accumulator. A nil
// *CostCounter is a valid no-op sink, mirroring the nil *Recorder
// contract: engines flush batched locals through one nil check.
type CostCounter struct {
	nodes     atomic.Int64
	states    atomic.Int64
	joins     atomic.Int64
	emissions atomic.Int64
	bytes     atomic.Int64
}

// Add accumulates a flushed cost batch. Nil receivers and zero batches
// are free.
func (c *CostCounter) Add(d Cost) {
	if c == nil || d.IsZero() {
		return
	}
	if d.Nodes != 0 {
		c.nodes.Add(d.Nodes)
	}
	if d.States != 0 {
		c.states.Add(d.States)
	}
	if d.Joins != 0 {
		c.joins.Add(d.Joins)
	}
	if d.Emissions != 0 {
		c.emissions.Add(d.Emissions)
	}
	if d.Bytes != 0 {
		c.bytes.Add(d.Bytes)
	}
}

// Snapshot returns the accumulated totals; zero for a nil counter.
func (c *CostCounter) Snapshot() Cost {
	if c == nil {
		return Cost{}
	}
	return Cost{
		Nodes:     c.nodes.Load(),
		States:    c.states.Load(),
		Joins:     c.joins.Load(),
		Emissions: c.emissions.Load(),
		Bytes:     c.bytes.Load(),
	}
}

// costKey carries a *CostCounter through a context.
type costKey struct{}

// WithCost returns a context carrying the query-level cost counter; the
// serving layer attaches one beside the span recorder at admission, and
// the Index picks it up at the query boundary.
func WithCost(ctx context.Context, c *CostCounter) context.Context {
	return context.WithValue(ctx, costKey{}, c)
}

// CostFromContext returns the context's cost counter, or nil (including
// for a nil context).
func CostFromContext(ctx context.Context) *CostCounter {
	if ctx == nil {
		return nil
	}
	c, _ := ctx.Value(costKey{}).(*CostCounter)
	return c
}
