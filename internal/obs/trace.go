package obs

import (
	"context"
	"sync"
	"time"
)

// Span is one recorded interval (or instant, when DurMicros is 0) of a
// traced query: a prepared-cover build, one band's dynamic program, or
// a cancellation event inside an engine. Offsets are relative to the
// recorder's creation, which the serving layer allocates at request
// admission, so a span timeline reads as "microseconds into this
// request".
type Span struct {
	// Name identifies the emit point: "prepare" (cover build / cache
	// hit), "band" (one band's DP), "dp.cancel" / "pmdag.cancel"
	// (engine-level cancellation checkpoints).
	Name string `json:"name"`
	// Run is the independent cover repetition the span belongs to, -1
	// when not run-scoped.
	Run int `json:"run"`
	// Band is the band index within the run's cover, -1 when not
	// band-scoped.
	Band int `json:"band"`
	// StartMicros is the span's start offset from the trace origin.
	StartMicros float64 `json:"startMicros"`
	// DurMicros is the span's duration (0 for instant events).
	DurMicros float64 `json:"durMicros"`
	// Note carries the outcome: "found", "miss", "skipped",
	// "cancelled", "fallback", "occs=N", ...
	Note string `json:"note,omitempty"`
	// Cost carries the span's DP cost counters when the emit point
	// attributed work to it (band spans: the band's engine counters;
	// prepare spans: the prepared artifact's resident bytes).
	Cost *Cost `json:"cost,omitempty"`
}

// DefaultSpanLimit bounds a recorder when the caller passes limit <= 0.
// Traces exist to explain one query's tail latency; past a few hundred
// spans the timeline is noise, and the cap keeps a hostile or
// pathological query from growing the response without bound.
const DefaultSpanLimit = 512

// Recorder accumulates the spans of one traced query. The zero value is
// not usable; build one with NewRecorder. A nil *Recorder is a valid
// no-op sink: every method checks the receiver first, so un-traced
// queries pay one pointer comparison per would-be span.
type Recorder struct {
	origin time.Time
	limit  int

	mu      sync.Mutex
	spans   []Span
	dropped int
}

// NewRecorder returns a recorder whose span offsets are measured from
// now, keeping at most limit spans (DefaultSpanLimit when <= 0); spans
// past the cap are counted in Dropped instead of stored.
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = DefaultSpanLimit
	}
	return &Recorder{origin: time.Now(), limit: limit}
}

// Begin returns the start timestamp for a span about to be measured.
// On a nil recorder it returns the zero time without reading the clock,
// so un-traced hot paths skip the time.Now call entirely.
func (r *Recorder) Begin() time.Time {
	if r == nil {
		return time.Time{}
	}
	return time.Now()
}

// Span records an interval from start (a Begin result) to now.
func (r *Recorder) Span(name string, run, band int, start time.Time, note string) {
	if r == nil {
		return
	}
	now := time.Now()
	r.add(Span{
		Name:        name,
		Run:         run,
		Band:        band,
		StartMicros: float64(start.Sub(r.origin).Nanoseconds()) / 1e3,
		DurMicros:   float64(now.Sub(start).Nanoseconds()) / 1e3,
		Note:        note,
	})
}

// SpanCost records an interval like Span, attaching c as the span's
// cost breakdown when it is nonzero.
func (r *Recorder) SpanCost(name string, run, band int, start time.Time, note string, c Cost) {
	if r == nil {
		return
	}
	now := time.Now()
	sp := Span{
		Name:        name,
		Run:         run,
		Band:        band,
		StartMicros: float64(start.Sub(r.origin).Nanoseconds()) / 1e3,
		DurMicros:   float64(now.Sub(start).Nanoseconds()) / 1e3,
		Note:        note,
	}
	if !c.IsZero() {
		sp.Cost = &c
	}
	r.add(sp)
}

// Event records an instant (zero-duration span) at now.
func (r *Recorder) Event(name string, run, band int, note string) {
	if r == nil {
		return
	}
	r.add(Span{
		Name:        name,
		Run:         run,
		Band:        band,
		StartMicros: float64(time.Since(r.origin).Nanoseconds()) / 1e3,
		Note:        note,
	})
}

func (r *Recorder) add(s Span) {
	r.mu.Lock()
	if len(r.spans) >= r.limit {
		r.dropped++
	} else {
		r.spans = append(r.spans, s)
	}
	r.mu.Unlock()
}

// Snapshot returns a copy of the recorded spans plus the count of spans
// dropped at the limit. Safe to call while recording continues.
func (r *Recorder) Snapshot() (spans []Span, dropped int) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out, r.dropped
}

// Dropped returns the count of spans discarded at the limit, without
// copying the span slice the way Snapshot does.
func (r *Recorder) Dropped() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// ctxKey carries a *Recorder through a context.
type ctxKey struct{}

// WithRecorder returns a context carrying the recorder; the serving
// layer attaches one at admission for ?trace=1 requests, and the Index
// picks it up at the query boundary (so traced and un-traced queries
// share every other code path).
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext returns the context's recorder, or nil (including for a
// nil context).
func FromContext(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(ctxKey{}).(*Recorder)
	return r
}
