package colorcode

import (
	"math"
	"math/rand/v2"
	"testing"

	"planarsi/internal/graph"
	"planarsi/internal/naive"
)

func TestRejectsNonTrees(t *testing.T) {
	g := graph.Grid(4, 4)
	for _, h := range []*graph.Graph{
		graph.Cycle(4),
		graph.DisjointUnion(graph.Path(2), graph.Path(2)),
		graph.NewBuilder(0).Build(),
	} {
		if _, err := Decide(g, h, Options{}, rand.New(rand.NewPCG(1, 1)), nil); err == nil {
			t.Fatalf("pattern %v accepted; want error", h)
		}
	}
}

func TestDecideAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 25; trial++ {
		g := graph.RandomPlanar(10+rng.IntN(30), rng.Float64(), rng)
		h := graph.RandomTree(2+rng.IntN(4), rng)
		want := naive.Decide(g, h)
		got, err := Decide(g, h, Options{}, rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: colorcode=%v oracle=%v (k=%d)", trial, got, want, h.N())
		}
	}
}

func TestFindReturnsValidOccurrence(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	found := 0
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomPlanar(15+rng.IntN(30), 0.5+0.5*rng.Float64(), rng)
		h := graph.RandomTree(3+rng.IntN(3), rng)
		occ, err := Find(g, h, Options{}, rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		if occ == nil {
			if naive.Decide(g, h) {
				t.Fatalf("trial %d: missed an existing occurrence", trial)
			}
			continue
		}
		found++
		if !VerifyOccurrence(g, h, occ) {
			t.Fatalf("trial %d: invalid occurrence %v", trial, occ)
		}
	}
	if found == 0 {
		t.Fatal("no trial found anything; inputs too hostile")
	}
}

func TestPathInPath(t *testing.T) {
	g := graph.Path(40)
	h := graph.Path(6)
	rng := rand.New(rand.NewPCG(9, 10))
	got, err := Decide(g, h, Options{}, rng, nil)
	if err != nil || !got {
		t.Fatalf("P6 in P40: got %v, %v", got, err)
	}
	long := graph.Path(13)
	gshort := graph.Path(12)
	got, err = Decide(gshort, long, Options{}, rng, nil)
	if err != nil || got {
		t.Fatalf("P13 in P12: got %v, %v", got, err)
	}
}

func TestStarPattern(t *testing.T) {
	// A degree-5 star needs a degree-5 vertex.
	rng := rand.New(rand.NewPCG(11, 12))
	h := graph.Star(6)
	if got, err := Decide(graph.Star(8), h, Options{}, rng, nil); err != nil || !got {
		t.Fatalf("star in star: %v, %v", got, err)
	}
	if got, err := Decide(graph.Grid(6, 6), h, Options{}, rng, nil); err != nil || got {
		t.Fatalf("degree-5 star in degree-4 grid: %v, %v", got, err)
	}
}

func TestWorkCounter(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	var work int64
	_, err := Decide(graph.Grid(8, 8), graph.Path(4), Options{Reps: 5, CountWork: &work}, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if work == 0 {
		t.Fatal("work counter not incremented")
	}
}

func TestExpectedColorfulProbability(t *testing.T) {
	// k!/k^k for k=3 is 6/27.
	if p := ExpectedColorfulProbability(3); math.Abs(p-6.0/27) > 1e-12 {
		t.Fatalf("p(3) = %v, want %v", p, 6.0/27)
	}
	if p := ExpectedColorfulProbability(1); p != 1 {
		t.Fatalf("p(1) = %v, want 1", p)
	}
	// Always above e^{-k}.
	for k := 1; k <= MaxK; k++ {
		if p := ExpectedColorfulProbability(k); p < math.Exp(-float64(k)) {
			t.Fatalf("p(%d)=%v below e^-k", k, p)
		}
	}
}

// The empirical colorful rate over many colorings should be near k!/k^k.
func TestColorfulRateMatchesTheory(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	g := graph.Path(3) // the occurrence is the whole path
	h := graph.Path(3)
	pt, err := rootTree(h)
	if err != nil {
		t.Fatal(err)
	}
	trials, hits := 4000, 0
	color := make([]int8, 3)
	for i := 0; i < trials; i++ {
		for v := range color {
			color[v] = int8(rng.IntN(3))
		}
		if _, found := colorfulSearch(g, pt, color, nil); found {
			hits++
		}
	}
	rate := float64(hits) / float64(trials)
	want := ExpectedColorfulProbability(3) // 2/9 per direction... both orientations share colors
	// The path has two automorphic occurrences using the same 3 vertices;
	// they are colorful together, so the hit rate is exactly k!/k^k.
	if math.Abs(rate-want) > 0.03 {
		t.Fatalf("colorful rate %.3f, theory %.3f", rate, want)
	}
}
