// Package colorcode implements the color-coding technique of Alon, Yuster
// and Zwick (J. ACM 1995) for finding tree-shaped patterns, the first row
// of the paper's Table 1.
//
// The target graph's vertices are colored independently and uniformly with
// k colors; a dynamic program over the (rooted) pattern tree then finds a
// "colorful" occurrence — one using every color exactly once — in
// O(2^k k m) time per coloring. A fixed occurrence is colorful with
// probability k!/k^k > e^{-k}, so O(e^k log(1/δ)) independent colorings
// certify absence with probability 1-δ. Colorful occurrences are
// automatically injective: a target vertex reused by two pattern vertices
// would repeat its color.
//
// The DP state is D[h][v] = the set of color masks M such that the subtree
// of the pattern rooted at h embeds into the colored target with h mapped
// to v and M exactly the colors used. Children are merged one at a time
// with disjoint-mask unions.
package colorcode

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"

	"planarsi/internal/graph"
	"planarsi/internal/par"
	"planarsi/internal/wd"
)

// MaxK caps the pattern size (masks are uint16).
const MaxK = 16

// Options configures a color-coding search.
type Options struct {
	// Reps is the number of independent colorings; 0 selects
	// ceil(e^k (ln n + 3)), which certifies absence w.h.p.
	Reps int
	// CountWork, when non-nil, accumulates mask-merge operations (the work
	// measure the Table 1 experiment reports).
	CountWork *int64
}

func (o Options) reps(k, n int) int {
	if o.Reps > 0 {
		return o.Reps
	}
	r := math.Exp(float64(k)) * (math.Log(float64(n)+1) + 3)
	return int(math.Ceil(r))
}

// patternTree is the pattern rooted and ordered for the DP.
type patternTree struct {
	k        int
	root     int32
	parent   []int32
	children [][]int32
	post     []int32 // post-order (children before parents)
}

// rootTree validates that h is a tree and roots it at vertex 0.
func rootTree(h *graph.Graph) (*patternTree, error) {
	k := h.N()
	if k == 0 {
		return nil, fmt.Errorf("colorcode: empty pattern")
	}
	if k > MaxK {
		return nil, fmt.Errorf("colorcode: pattern has %d vertices, max %d", k, MaxK)
	}
	if h.M() != k-1 || !graph.IsConnected(h) {
		return nil, fmt.Errorf("colorcode: pattern must be a tree (n=%d, m=%d)", k, h.M())
	}
	pt := &patternTree{
		k:        k,
		root:     0,
		parent:   make([]int32, k),
		children: make([][]int32, k),
	}
	for i := range pt.parent {
		pt.parent[i] = -1
	}
	// Iterative DFS from the root records parents and a post-order.
	type frame struct {
		v     int32
		stage int
	}
	visited := make([]bool, k)
	visited[0] = true
	stack := []frame{{0, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.stage == 0 {
			f.stage = 1
			for _, w := range h.Neighbors(f.v) {
				if !visited[w] {
					visited[w] = true
					pt.parent[w] = f.v
					pt.children[f.v] = append(pt.children[f.v], w)
					stack = append(stack, frame{w, 0})
				}
			}
			continue
		}
		pt.post = append(pt.post, f.v)
		stack = stack[:len(stack)-1]
	}
	return pt, nil
}

// colorfulSearch runs one coloring's DP. It returns the DP tables so a
// witness can be reconstructed; found reports whether some vertex admits a
// full-mask embedding of the whole pattern.
func colorfulSearch(g *graph.Graph, pt *patternTree, color []int8, work *int64) (dp [][][]uint16, found bool) {
	n := g.N()
	k := pt.k
	full := uint16(1<<k) - 1
	dp = make([][][]uint16, k)
	for h := 0; h < k; h++ {
		dp[h] = make([][]uint16, n)
	}
	var localWork int64
	for _, h := range pt.post {
		ch := pt.children[h]
		works := make([]int64, par.Parallelism())
		par.ForBlocks(0, n, max(1, n/(8*par.Parallelism())), func(lo, hi int) {
			var w int64
			for vi := lo; vi < hi; vi++ {
				v := int32(vi)
				masks := []uint16{1 << uint(color[v])}
				for _, c := range ch {
					// Merge: extend every current mask by a disjoint mask
					// of child c rooted at any neighbor of v.
					var merged []uint16
					seen := make(map[uint16]struct{})
					for _, u := range g.Neighbors(v) {
						for _, cm := range dp[c][u] {
							for _, m := range masks {
								w++
								if m&cm != 0 {
									continue
								}
								nm := m | cm
								if _, dup := seen[nm]; !dup {
									seen[nm] = struct{}{}
									merged = append(merged, nm)
								}
							}
						}
					}
					masks = merged
					if len(masks) == 0 {
						break
					}
				}
				dp[h][v] = masks
			}
			// Accumulate into a per-worker-ish slot to avoid contention;
			// slot choice by block start is stable enough for a counter.
			works[lo%len(works)] += w
		})
		for _, w := range works {
			localWork += w
		}
	}
	if work != nil {
		*work += localWork
	}
	for v := 0; v < n; v++ {
		for _, m := range dp[pt.root][v] {
			if m == full {
				return dp, true
			}
		}
	}
	return dp, false
}

// reconstruct extracts one embedding from a successful DP: assign[h] is
// the target vertex of pattern vertex h.
func reconstruct(g *graph.Graph, pt *patternTree, color []int8, dp [][][]uint16) []int32 {
	k := pt.k
	full := uint16(1<<k) - 1
	assign := make([]int32, k)
	for i := range assign {
		assign[i] = -1
	}
	var rootV int32 = -1
	for v := int32(0); v < int32(g.N()); v++ {
		for _, m := range dp[pt.root][v] {
			if m == full {
				rootV = v
				break
			}
		}
		if rootV >= 0 {
			break
		}
	}
	if rootV < 0 {
		return nil
	}
	// place(h, v, mask) assigns the subtree at h rooted on v using exactly
	// the colors in mask; feasibility is guaranteed by the DP tables.
	var place func(h, v int32, mask uint16) bool
	place = func(h, v int32, mask uint16) bool {
		assign[h] = v
		rest := mask &^ (1 << uint(color[v]))
		ch := pt.children[h]
		// Split rest among the children by backtracking over DP masks.
		var split func(ci int, rem uint16) bool
		split = func(ci int, rem uint16) bool {
			if ci == len(ch) {
				return rem == 0
			}
			c := ch[ci]
			for _, u := range g.Neighbors(v) {
				for _, cm := range dp[c][u] {
					if cm&^rem != 0 {
						continue
					}
					if split(ci+1, rem&^cm) && place(c, u, cm) {
						return true
					}
				}
			}
			return false
		}
		return split(0, rest)
	}
	if !place(pt.root, rootV, full) {
		return nil
	}
	return assign
}

// Decide reports (w.h.p. for the default repetition count) whether the
// tree pattern h occurs in g. h must be a tree with at most MaxK vertices.
func Decide(g, h *graph.Graph, opts Options, rng *rand.Rand, tr *wd.Tracker) (bool, error) {
	occ, err := Find(g, h, opts, rng, tr)
	return occ != nil, err
}

// Find returns one occurrence of the tree pattern h in g (as a map from
// pattern vertex to target vertex), or nil when none was found across the
// configured repetitions.
func Find(g, h *graph.Graph, opts Options, rng *rand.Rand, tr *wd.Tracker) ([]int32, error) {
	pt, err := rootTree(h)
	if err != nil {
		return nil, err
	}
	n := g.N()
	if n < pt.k {
		return nil, nil
	}
	reps := opts.reps(pt.k, n)
	color := make([]int8, n)
	for rep := 0; rep < reps; rep++ {
		for v := range color {
			color[v] = int8(rng.IntN(pt.k))
		}
		dp, found := colorfulSearch(g, pt, color, opts.CountWork)
		tr.AddPhaseRounds("colorcode", int64(pt.k))
		tr.AddPhaseWork("colorcode", int64(n))
		if found {
			if a := reconstruct(g, pt, color, dp); a != nil {
				return a, nil
			}
		}
	}
	return nil, nil
}

// VerifyOccurrence checks that assign is an injective homomorphism of h
// into g (used by tests and by Find's callers as a safety net).
func VerifyOccurrence(g, h *graph.Graph, assign []int32) bool {
	if len(assign) != h.N() {
		return false
	}
	seen := make(map[int32]struct{}, len(assign))
	for _, v := range assign {
		if v < 0 || int(v) >= g.N() {
			return false
		}
		if _, dup := seen[v]; dup {
			return false
		}
		seen[v] = struct{}{}
	}
	for _, e := range h.Edges() {
		if !g.HasEdge(assign[e[0]], assign[e[1]]) {
			return false
		}
	}
	return true
}

// ExpectedColorfulProbability returns k!/k^k, the chance a fixed
// occurrence is colorful under one coloring (reported by the Table 1
// experiment next to the measured rate).
func ExpectedColorfulProbability(k int) float64 {
	p := 1.0
	for i := 1; i <= k; i++ {
		p *= float64(i) / float64(k)
	}
	return p
}

var _ = bits.OnesCount16 // reserved for mask diagnostics in benches
