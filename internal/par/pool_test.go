package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestDequeLIFOFIFO(t *testing.T) {
	d := newDeque()
	mk := func(i int) *Task {
		t := Task(func(*Ctx) { _ = i })
		return &t
	}
	a, b, c := mk(1), mk(2), mk(3)
	d.push(a)
	d.push(b)
	d.push(c)
	if got := d.pop(); got != c {
		t.Fatal("pop should be LIFO (expected c)")
	}
	if got := d.steal(); got != a {
		t.Fatal("steal should be FIFO (expected a)")
	}
	if got := d.pop(); got != b {
		t.Fatal("expected b")
	}
	if d.pop() != nil || d.steal() != nil {
		t.Fatal("deque should be empty")
	}
}

func TestDequeGrowth(t *testing.T) {
	d := newDeque()
	const n = 1000
	tasks := make([]*Task, n)
	for i := range tasks {
		tt := Task(func(*Ctx) {})
		tasks[i] = &tt
		d.push(tasks[i])
	}
	for i := n - 1; i >= 0; i-- {
		if got := d.pop(); got != tasks[i] {
			t.Fatalf("pop %d: wrong task", i)
		}
	}
}

// Stress the deque with one owner and several thieves; every task must be
// extracted exactly once.
func TestDequeStress(t *testing.T) {
	d := newDeque()
	const total = 20000
	var extracted atomic.Int64
	var claimed [total]atomic.Int32

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for thief := 0; thief < 3; thief++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if tk := d.steal(); tk != nil {
					(*tk)(nil)
					extracted.Add(1)
				}
				select {
				case <-stop:
					// Drain what is left.
					for {
						tk := d.steal()
						if tk == nil {
							return
						}
						(*tk)(nil)
						extracted.Add(1)
					}
				default:
				}
			}
		}()
	}
	for i := 0; i < total; i++ {
		i := i
		tk := Task(func(*Ctx) {
			if claimed[i].Add(1) != 1 {
				t.Errorf("task %d executed twice", i)
			}
		})
		d.push(&tk)
		if i%3 == 0 {
			if got := d.pop(); got != nil {
				(*got)(nil)
				extracted.Add(1)
			}
		}
	}
	// Owner drains its own deque.
	for {
		tk := d.pop()
		if tk == nil {
			break
		}
		(*tk)(nil)
		extracted.Add(1)
	}
	close(stop)
	wg.Wait()
	if extracted.Load() != total {
		t.Fatalf("extracted %d tasks, want %d", extracted.Load(), total)
	}
}

func TestPoolRun(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var x atomic.Int32
	p.Run(func(c *Ctx) { x.Store(7) })
	if x.Load() != 7 {
		t.Fatal("Run did not execute the task")
	}
}

func TestPoolForkJoin(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sum atomic.Int64
	p.Run(func(c *Ctx) {
		var rec func(c *Ctx, lo, hi int)
		rec = func(c *Ctx, lo, hi int) {
			if hi-lo <= 4 {
				for i := lo; i < hi; i++ {
					sum.Add(int64(i))
				}
				return
			}
			mid := (lo + hi) / 2
			fu := c.Fork(func(c2 *Ctx) { rec(c2, mid, hi) })
			rec(c, lo, mid)
			c.Join(fu)
		}
		rec(c, 0, 1000)
	})
	if sum.Load() != 999*1000/2 {
		t.Fatalf("fork-join sum=%d want %d", sum.Load(), 999*1000/2)
	}
}

func TestPoolFor(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	n := 5000
	counts := make([]atomic.Int32, n)
	p.Run(func(c *Ctx) {
		c.For(0, n, 16, func(i int) { counts[i].Add(1) })
	})
	for i := range counts {
		if counts[i].Load() != 1 {
			t.Fatalf("index %d visited %d times", i, counts[i].Load())
		}
	}
}

func TestPoolDo(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var a, b, c atomic.Int32
	p.Run(func(ctx *Ctx) {
		ctx.Do(
			func(*Ctx) { a.Store(1) },
			func(*Ctx) { b.Store(2) },
			func(*Ctx) { c.Store(3) },
		)
	})
	if a.Load() != 1 || b.Load() != 2 || c.Load() != 3 {
		t.Fatal("Ctx.Do did not run all tasks")
	}
}

func TestPoolManySequentialRuns(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var total atomic.Int64
	for r := 0; r < 50; r++ {
		p.Run(func(c *Ctx) {
			c.For(0, 100, 8, func(i int) { total.Add(1) })
		})
	}
	if total.Load() != 5000 {
		t.Fatalf("total=%d want 5000", total.Load())
	}
}
