// Package par provides the shared-memory parallel primitives that stand in
// for the paper's CREW PRAM: fork-join parallel loops, parallel reductions,
// parallel prefix sums, packing, an explicit work-stealing pool, and a
// lightweight cooperative cancellation token (Canceller).
//
// Two execution engines back the package-level functions (Do, For,
// Reduce, ...).
//
// The default engine (EnginePool) runs every operation as a structured
// fork-join scope on a shared, lazily started work-stealing Pool
// (Chase-Lev deques, help-while-joining — the greedy scheduler the
// paper's Brent-style bounds assume). Scopes make nesting deadlock-free
// and keep load balanced when item costs are skewed: an idle participant
// steals half-ranges from whoever is behind, instead of the semaphore
// engine's degrade-to-inline-sequential behavior.
//
// The semaphore engine (EngineSemaphore) is the previous substrate —
// goroutines throttled by a semaphore sized to the worker count, with an
// inline sequential fallback when no slot is free. It stays selectable
// via SetEngine for the engine ablation benchmarks.
//
// Both engines draw their worker count from the same source: SetParallelism
// when pinned, else runtime.GOMAXPROCS(0) re-read per operation.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// engine is one sizing of the package-level runtime: a worker count and
// the semaphore of spare worker slots (the calling goroutine always works
// too, so there are procs-1 spare slots). Engines are immutable; resizing
// installs a fresh engine, and operations in flight keep the engine they
// captured at entry, so every acquire is released on the same channel.
type engine struct {
	procs int
	sem   chan struct{}
	// pinned marks an engine installed by SetParallelism: current() stops
	// tracking runtime.GOMAXPROCS until SetParallelism(0) unpins.
	pinned bool
}

var eng atomic.Pointer[engine]

func init() { eng.Store(newEngine(runtime.GOMAXPROCS(0), false)) }

func newEngine(procs int, pinned bool) *engine {
	if procs < 1 {
		procs = 1
	}
	return &engine{procs: procs, sem: make(chan struct{}, procs-1), pinned: pinned}
}

// current returns the engine sizing to use for one operation, first
// re-reading runtime.GOMAXPROCS(0) so daemons that resize the scheduler
// at runtime get the parallelism they asked for. The GOMAXPROCS query
// takes a runtime-internal lock, so current() is called once per parallel
// operation (a loop launch, not a loop element) and the helpers thread
// the engine through; pinning with SetParallelism skips the query
// entirely. The CAS race on resize is benign (both candidates are
// correctly sized).
func current() *engine {
	e := eng.Load()
	if e.pinned {
		return e
	}
	if p := runtime.GOMAXPROCS(0); p != e.procs {
		ne := newEngine(p, false)
		if eng.CompareAndSwap(e, ne) {
			return ne
		}
		return eng.Load()
	}
	return e
}

// Parallelism reports the number of workers the package-level engines use:
// the value fixed by SetParallelism, or runtime.GOMAXPROCS(0) (re-read on
// every operation, not frozen at package init).
func Parallelism() int { return current().procs }

// SetParallelism fixes the package-level worker count to n, decoupling it
// from runtime.GOMAXPROCS; n <= 0 reverts to tracking
// runtime.GOMAXPROCS(0). Operations already in flight finish on the
// engine they started with; the shared pool is re-sized lazily by the
// next operation.
func SetParallelism(n int) {
	if n <= 0 {
		eng.Store(newEngine(runtime.GOMAXPROCS(0), false))
	} else {
		eng.Store(newEngine(n, true))
	}
	if eng.Load().procs == 1 {
		// Downsized to sequential: retire the pool now rather than
		// waiting for the next operation's dispatch to do it.
		retireSharedPool()
	}
}

// EngineKind selects the package-level execution engine.
type EngineKind uint32

const (
	// EnginePool runs operations as fork-join scopes on the shared
	// work-stealing pool (the default).
	EnginePool EngineKind = iota
	// EngineSemaphore runs operations on semaphore-throttled goroutines
	// with inline sequential fallback (the pre-pool substrate, kept
	// selectable for the ablation benchmarks).
	EngineSemaphore
)

var engineKind atomic.Uint32 // EnginePool by default

// CurrentEngine reports which engine the package-level functions use.
func CurrentEngine() EngineKind { return EngineKind(engineKind.Load()) }

// SetEngine selects the package-level execution engine. Operations in
// flight finish on the engine they started with.
func SetEngine(k EngineKind) { engineKind.Store(uint32(k)) }

// sharedPool is the lazily started pool behind the EnginePool package
// functions, swapped whenever the requested worker count changes.
var sharedPool atomic.Pointer[Pool]

// poolFor returns a shared pool with the given parallelism, starting or
// resizing it as needed. A replaced pool is retired asynchronously: its
// workers drain their remaining tasks and exit, while scopes still
// registered on it keep making progress on their own goroutines.
func poolFor(procs int) *Pool {
	for {
		p := sharedPool.Load()
		if p != nil && p.procs == procs {
			return p
		}
		np := NewPool(procs)
		if sharedPool.CompareAndSwap(p, np) {
			poolResizes.Add(1)
			if p != nil {
				go p.Close()
			}
			return np
		}
		go np.Close() // lost the race; another resize installed a pool
	}
}

// retireSharedPool closes and clears the shared pool. The procs==1
// dispatch paths call it so downsizing to a sequential configuration
// (SetParallelism(1) or runtime.GOMAXPROCS(1)) does not strand the
// previous pool's parked workers for the process lifetime; the next
// parallel operation lazily starts a fresh pool.
func retireSharedPool() {
	if p := sharedPool.Load(); p != nil && sharedPool.CompareAndSwap(p, nil) {
		go p.Close()
	}
}

// runBlocks is the engine dispatch shared by every block-structured
// combinator: split [lo, hi) into blocks of at most grain indices and run
// body on each, possibly in parallel, with logarithmic fork depth
// (matching the PRAM convention that a parallel-for costs O(log n) depth
// to fork).
func runBlocks(e *engine, lo, hi, grain int, body func(lo, hi int)) {
	if lo >= hi {
		return
	}
	if grain < 1 {
		grain = 1
	}
	if hi-lo <= grain {
		// A single block: run inline without touching either engine's
		// machinery.
		body(lo, hi)
		return
	}
	if e.procs == 1 {
		// Sequential fallback, still honoring the ≤ grain block contract.
		retireSharedPool()
		for l := lo; l < hi; l += grain {
			body(l, min(l+grain, hi))
		}
		return
	}
	if CurrentEngine() == EngineSemaphore {
		semBlocks(e, lo, hi, grain, body)
		return
	}
	p := poolFor(e.procs)
	c := p.enter()
	defer p.exit(c)
	c.ForBlocks(lo, hi, grain, body)
}

// Do runs the given functions, possibly in parallel, and returns when all
// of them have returned. It is the fork-join primitive: fork every
// function but the first, run the first inline, join.
func Do(fs ...func()) {
	switch len(fs) {
	case 0:
		return
	case 1:
		fs[0]()
		return
	}
	e := current()
	if e.procs == 1 {
		retireSharedPool()
		for _, f := range fs {
			f()
		}
		return
	}
	if CurrentEngine() == EngineSemaphore {
		semDo(e, fs)
		return
	}
	p := poolFor(e.procs)
	c := p.enter()
	defer p.exit(c)
	tasks := make([]Task, len(fs))
	for i, f := range fs {
		f := f
		tasks[i] = func(*Ctx) { f() }
	}
	c.Do(tasks...)
}

// semDo is Do on the semaphore engine. Panics on forked goroutines are
// captured and re-panicked on the caller after every fork has finished;
// an inline panic propagates directly, but the deferred Wait still
// drains the forks first, so the group stays structured either way.
func semDo(e *engine, fs []func()) {
	var wg sync.WaitGroup
	var first atomic.Pointer[PanicError]
	func() {
		defer wg.Wait()
		for _, f := range fs[1:] {
			select {
			case e.sem <- struct{}{}:
				wg.Add(1)
				go func(f func()) {
					defer func() {
						if v := recover(); v != nil {
							first.CompareAndSwap(nil, asPanicError(v))
						}
						<-e.sem
						wg.Done()
					}()
					f()
				}(f)
			default:
				f()
			}
		}
		fs[0]()
	}()
	if pe := first.Load(); pe != nil {
		panic(pe)
	}
}

// For runs f(i) for every i in [lo, hi), possibly in parallel, with an
// automatically chosen grain size.
func For(lo, hi int, f func(i int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	e := current()
	runBlocks(e, lo, hi, grainFor(e, n), func(l, h int) {
		for i := l; i < h; i++ {
			f(i)
		}
	})
}

// ForGrain runs f(i) for every i in [lo, hi) with the given grain size:
// ranges of at most grain indices run sequentially.
func ForGrain(lo, hi, grain int, f func(i int)) {
	ForBlocks(lo, hi, grain, func(l, h int) {
		for i := l; i < h; i++ {
			f(i)
		}
	})
}

// ForBlocks splits [lo, hi) into blocks of at most grain indices and runs
// body on each block, possibly in parallel.
func ForBlocks(lo, hi, grain int, body func(lo, hi int)) {
	runBlocks(current(), lo, hi, grain, body)
}

// semBlocks is the semaphore engine's block runner: recursive halving,
// forking the right half into a worker slot when one is free and
// degrading to inline sequential execution otherwise. Panics on forked
// goroutines are captured and re-panicked once at the operation root
// after all forks have drained; inline panics propagate directly, with
// the deferred Waits keeping every in-flight fork joined first.
func semBlocks(e *engine, lo, hi, grain int, body func(lo, hi int)) {
	var first atomic.Pointer[PanicError]
	var run func(lo, hi int)
	run = func(lo, hi int) {
		for hi-lo > grain {
			mid := lo + (hi-lo)/2
			select {
			case e.sem <- struct{}{}:
				var wg sync.WaitGroup
				wg.Add(1)
				go func(l, h int) {
					defer func() {
						if v := recover(); v != nil {
							first.CompareAndSwap(nil, asPanicError(v))
						}
						<-e.sem
						wg.Done()
					}()
					run(l, h)
				}(mid, hi)
				defer wg.Wait()
				run(lo, mid)
				return
			default:
				run(lo, mid)
				lo = mid
			}
		}
		if lo < hi {
			body(lo, hi)
		}
	}
	run(lo, hi)
	if pe := first.Load(); pe != nil {
		panic(pe)
	}
}

// alignedBlocks partitions [lo, hi) into ⌈n/grain⌉ consecutive blocks of
// exactly grain indices (the last may be short) and runs body(b, l, h) for
// each block b, possibly in parallel. Unlike ForBlocks, block boundaries
// are aligned multiples of grain, so b indexes per-block scratch safely.
func alignedBlocks(e *engine, lo, hi, grain int, body func(b, l, h int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	nblocks := (n + grain - 1) / grain
	runBlocks(e, 0, nblocks, 1, func(bl, bh int) {
		for b := bl; b < bh; b++ {
			l := lo + b*grain
			h := l + grain
			if h > hi {
				h = hi
			}
			body(b, l, h)
		}
	})
}

func grainFor(e *engine, n int) int {
	grain := n / (8 * e.procs)
	if grain < 1 {
		grain = 1
	}
	return grain
}

// Reduce computes comb over f(i) for i in [lo, hi) in parallel.
// comb must be associative; id is its identity.
func Reduce[T any](lo, hi int, id T, f func(i int) T, comb func(a, b T) T) T {
	n := hi - lo
	if n <= 0 {
		return id
	}
	e := current()
	grain := grainFor(e, n)
	nblocks := (n + grain - 1) / grain
	partial := make([]T, nblocks)
	alignedBlocks(e, lo, hi, grain, func(b, l, h int) {
		acc := id
		for i := l; i < h; i++ {
			acc = comb(acc, f(i))
		}
		partial[b] = acc
	})
	acc := id
	for _, p := range partial {
		acc = comb(acc, p)
	}
	return acc
}

// Integer is the constraint for the prefix-sum and pack helpers.
type Integer interface {
	~int | ~int32 | ~int64
}

// ExclusivePrefixSum replaces xs with its exclusive prefix sum and returns
// the total. It uses the standard two-pass blocked parallel scan
// (O(n) work, O(log n) depth up to the block-combine pass).
func ExclusivePrefixSum[T Integer](xs []T) T {
	n := len(xs)
	if n == 0 {
		return 0
	}
	e := current()
	grain := grainFor(e, n)
	nblocks := (n + grain - 1) / grain
	sums := make([]T, nblocks)
	alignedBlocks(e, 0, n, grain, func(b, l, h int) {
		var s T
		for i := l; i < h; i++ {
			s += xs[i]
		}
		sums[b] = s
	})
	var total T
	for b := 0; b < nblocks; b++ {
		s := sums[b]
		sums[b] = total
		total += s
	}
	alignedBlocks(e, 0, n, grain, func(b, l, h int) {
		acc := sums[b]
		for i := l; i < h; i++ {
			v := xs[i]
			xs[i] = acc
			acc += v
		}
	})
	return total
}

// Pack returns the elements of xs whose index satisfies keep, preserving
// order, using a parallel prefix sum over flags (O(n) work, O(log n) depth).
func Pack[T any](xs []T, keep func(i int) bool) []T {
	n := len(xs)
	if n == 0 {
		return nil
	}
	flags := make([]int32, n)
	For(0, n, func(i int) {
		if keep(i) {
			flags[i] = 1
		}
	})
	total := ExclusivePrefixSum(flags)
	out := make([]T, total)
	For(0, n, func(i int) {
		if keep(i) {
			out[flags[i]] = xs[i]
		}
	})
	return out
}

// PackIndex returns the indices in [0, n) that satisfy keep, in order.
func PackIndex(n int, keep func(i int) bool) []int32 {
	if n == 0 {
		return nil
	}
	flags := make([]int32, n)
	For(0, n, func(i int) {
		if keep(i) {
			flags[i] = 1
		}
	})
	total := ExclusivePrefixSum(flags)
	out := make([]int32, total)
	For(0, n, func(i int) {
		if keep(i) {
			out[flags[i]] = int32(i)
		}
	})
	return out
}
