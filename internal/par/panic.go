package par

import (
	"fmt"
	"runtime/debug"
)

// PanicError carries a panic recovered on one fork-join participant to
// the scope's join point. Every task body forked through a Ctx runs
// under a recover; a captured panic is stored on the task's Future and
// re-panicked — wrapped exactly once as *PanicError — on the goroutine
// that joins it. The result is the panic-isolation contract the serving
// stack builds on:
//
//   - the shared pool and its deques are never wedged: workers survive
//     panicking tasks, and every forked sibling of a panicking task is
//     still joined before the panic propagates (structured cleanup);
//   - the panic surfaces exactly once, on the scope-owning goroutine,
//     where a per-query boundary (internal/index, internal/serve) can
//     convert it into an error instead of a process crash;
//   - Value and Stack preserve what a crash would have printed: the
//     original panic value and the stack of the panicking goroutine,
//     captured at the recovery point.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: task panicked: %v", e.Value)
}

// Unwrap exposes a panic value that was itself an error to
// errors.Is/errors.As chains at the recovery boundary.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// asPanicError wraps a recovered value, passing an already-wrapped
// panic through unchanged so a panic crossing nested scopes keeps the
// stack captured where it first fired.
func asPanicError(v any) *PanicError {
	if pe, ok := v.(*PanicError); ok {
		return pe
	}
	return &PanicError{Value: v, Stack: debug.Stack()}
}
