package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestParallelismTracksGOMAXPROCS is the regression test for the
// init-frozen worker count: a daemon that adjusts GOMAXPROCS at runtime
// must see the package-level engine follow, not the value read at package
// init.
func TestParallelismTracksGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	for _, want := range []int{1, 3, 2} {
		runtime.GOMAXPROCS(want)
		if got := Parallelism(); got != want {
			t.Fatalf("after GOMAXPROCS(%d): Parallelism() = %d", want, got)
		}
		// The engine must stay functional across every resize.
		var sum atomic.Int64
		For(0, 100, func(i int) { sum.Add(int64(i)) })
		if sum.Load() != 4950 {
			t.Fatalf("after GOMAXPROCS(%d): For sum = %d, want 4950", want, sum.Load())
		}
	}
}

// TestSetParallelism checks that an explicit worker count pins the engine
// against GOMAXPROCS changes until unpinned with SetParallelism(0).
func TestSetParallelism(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer func() {
		SetParallelism(0)
		runtime.GOMAXPROCS(old)
	}()

	SetParallelism(2)
	if got := Parallelism(); got != 2 {
		t.Fatalf("after SetParallelism(2): Parallelism() = %d", got)
	}
	runtime.GOMAXPROCS(4)
	if got := Parallelism(); got != 2 {
		t.Fatalf("pinned engine must ignore GOMAXPROCS: Parallelism() = %d", got)
	}

	done := make(chan struct{})
	Do(func() {}, func() { close(done) })
	<-done

	SetParallelism(0)
	if got := Parallelism(); got != 4 {
		t.Fatalf("after unpin: Parallelism() = %d, want 4", got)
	}
}

// TestParallelismConcurrentResize hammers the engine while GOMAXPROCS
// flips, for the race detector.
func TestParallelismConcurrentResize(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	stop := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				runtime.GOMAXPROCS(1 + i%4)
			}
		}
	}()
	for iter := 0; iter < 50; iter++ {
		var sum atomic.Int64
		For(0, 1000, func(i int) { sum.Add(1) })
		if sum.Load() != 1000 {
			t.Fatalf("iteration %d: %d calls, want 1000", iter, sum.Load())
		}
	}
	close(stop)
}
