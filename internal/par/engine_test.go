package par

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// withEngine runs f under each package-level engine, restoring the pool
// default afterwards: both substrates must satisfy the same combinator
// contracts.
func withEngine(t *testing.T, f func(t *testing.T)) {
	t.Helper()
	for _, k := range []EngineKind{EnginePool, EngineSemaphore} {
		name := "pool"
		if k == EngineSemaphore {
			name = "semaphore"
		}
		t.Run(name, func(t *testing.T) {
			SetEngine(k)
			defer SetEngine(EnginePool)
			f(t)
		})
	}
}

func TestEnginesCoverRangeExactlyOnce(t *testing.T) {
	withEngine(t, func(t *testing.T) {
		for _, n := range []int{0, 1, 7, 100, 10_000} {
			counts := make([]atomic.Int32, n)
			For(0, n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if counts[i].Load() != 1 {
					t.Fatalf("n=%d: index %d visited %d times", n, i, counts[i].Load())
				}
			}
		}
	})
}

func TestEnginesNestedFor(t *testing.T) {
	withEngine(t, func(t *testing.T) {
		var total atomic.Int64
		For(0, 40, func(i int) {
			For(0, 40, func(j int) {
				For(0, 5, func(k int) { total.Add(1) })
			})
		})
		if total.Load() != 40*40*5 {
			t.Fatalf("triple-nested For total=%d want %d", total.Load(), 40*40*5)
		}
	})
}

func TestEnginesReducePackPrefix(t *testing.T) {
	withEngine(t, func(t *testing.T) {
		n := 4096
		if got := Reduce(0, n, 0, func(i int) int { return i }, func(a, b int) int { return a + b }); got != n*(n-1)/2 {
			t.Fatalf("Reduce=%d want %d", got, n*(n-1)/2)
		}
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = 1
		}
		if total := ExclusivePrefixSum(xs); total != int64(n) {
			t.Fatalf("prefix total=%d want %d", total, n)
		}
		for i := range xs {
			if xs[i] != int64(i) {
				t.Fatalf("prefix[%d]=%d want %d", i, xs[i], i)
			}
		}
		idx := PackIndex(n, func(i int) bool { return i%7 == 0 })
		if len(idx) != (n+6)/7 {
			t.Fatalf("PackIndex len=%d", len(idx))
		}
	})
}

// TestPoolNestedForConcurrentResize is the cancellation-soundness
// satellite's race test: deeply nested pool-backed loops must stay
// correct while SetParallelism keeps swapping the shared pool under
// them (run under -race by make race).
func TestPoolNestedForConcurrentResize(t *testing.T) {
	SetEngine(EnginePool)
	defer SetParallelism(0)
	stop := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				SetParallelism(1 + i%5)
			}
		}
	}()
	for iter := 0; iter < 30; iter++ {
		var total atomic.Int64
		For(0, 30, func(i int) {
			For(0, 30, func(j int) { total.Add(1) })
		})
		if total.Load() != 900 {
			t.Fatalf("iteration %d: total=%d want 900", iter, total.Load())
		}
	}
	close(stop)
}

// TestSetParallelismOneRetiresPool: downsizing to a sequential
// configuration must not strand the shared pool's parked workers.
func TestSetParallelismOneRetiresPool(t *testing.T) {
	SetEngine(EnginePool)
	SetParallelism(3)
	defer SetParallelism(0)
	var sum atomic.Int64
	For(0, 1000, func(i int) { sum.Add(1) })
	if sum.Load() != 1000 {
		t.Fatalf("For sum=%d", sum.Load())
	}
	if sharedPool.Load() == nil {
		t.Fatal("parallel For should have started the shared pool")
	}
	SetParallelism(1)
	if p := sharedPool.Load(); p != nil {
		t.Fatalf("SetParallelism(1) left the shared pool alive (procs=%d)", p.procs)
	}
	// Still functional sequentially, and again after re-upsizing.
	sum.Store(0)
	For(0, 100, func(i int) { sum.Add(1) })
	SetParallelism(4)
	For(0, 100, func(i int) { sum.Add(1) })
	if sum.Load() != 200 {
		t.Fatalf("post-resize sum=%d", sum.Load())
	}
}

// TestPoolSharedAcrossGoroutines drives many goroutines through the
// shared pool at once; every loop must still cover its range exactly
// once (scopes from different goroutines steal from each other).
func TestPoolSharedAcrossGoroutines(t *testing.T) {
	SetEngine(EnginePool)
	const G = 8
	errc := make(chan error, G)
	for g := 0; g < G; g++ {
		go func() {
			for iter := 0; iter < 20; iter++ {
				n := 500
				counts := make([]atomic.Int32, n)
				For(0, n, func(i int) { counts[i].Add(1) })
				for i := range counts {
					if counts[i].Load() != 1 {
						errc <- fmt.Errorf("index %d visited %d times", i, counts[i].Load())
						return
					}
				}
			}
			errc <- nil
		}()
	}
	for g := 0; g < G; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
