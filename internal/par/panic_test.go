package par

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// recoverPanicError runs f and returns the *PanicError it panics with
// (nil if f returns normally; the test fails on any other panic value).
func recoverPanicError(t *testing.T, f func()) (pe *PanicError) {
	t.Helper()
	defer func() {
		if v := recover(); v != nil {
			var ok bool
			pe, ok = v.(*PanicError)
			if !ok {
				t.Fatalf("panicked with %T (%v), want *PanicError", v, v)
			}
		}
	}()
	f()
	return nil
}

func TestPoolTaskPanicReachesJoin(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for round := 0; round < 3; round++ {
		var ran atomic.Int32
		var pe *PanicError
		p.Run(func(c *Ctx) {
			pe = recoverPanicError(t, func() {
				c.Do(
					func(*Ctx) { ran.Add(1) },
					func(*Ctx) { panic("boom") },
					func(*Ctx) { ran.Add(1) },
				)
			})
		})
		if pe == nil {
			t.Fatalf("round %d: panic did not reach join", round)
		}
		if pe.Value != "boom" {
			t.Fatalf("round %d: Value = %v", round, pe.Value)
		}
		if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "goroutine") {
			t.Fatalf("round %d: no stack captured", round)
		}
		if ran.Load() != 2 {
			t.Fatalf("round %d: siblings ran %d times, want 2", round, ran.Load())
		}
		// The pool must still work after the panic: same pool, new scope.
		var sum atomic.Int64
		p.Run(func(c *Ctx) {
			c.For(0, 1000, 1, func(i int) { sum.Add(int64(i)) })
		})
		if sum.Load() != 999*1000/2 {
			t.Fatalf("round %d: pool wedged after panic: sum=%d", round, sum.Load())
		}
	}
}

func TestPoolInlinePanicStillJoinsForks(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var ran atomic.Int32
	p.Run(func(c *Ctx) {
		pe := recoverPanicError(t, func() {
			c.Do(
				func(*Ctx) { panic(errors.New("inline")) }, // runs inline on the scope owner
				func(*Ctx) { ran.Add(1) },
				func(*Ctx) { ran.Add(1) },
			)
		})
		if pe == nil {
			t.Fatal("inline panic lost")
		}
		if !errors.Is(pe, errors.New("inline")) && pe.Unwrap() == nil {
			t.Fatalf("error panic value not unwrappable: %v", pe)
		}
	})
	if ran.Load() != 2 {
		t.Fatalf("forked siblings ran %d times before panic propagated, want 2", ran.Load())
	}
}

func TestPanicWrappedExactlyOnceAcrossNesting(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var pe *PanicError
	p.Run(func(c *Ctx) {
		pe = recoverPanicError(t, func() {
			// Outer For → nested For inside a forked block → panic: the
			// value must cross both joins as the same *PanicError.
			c.For(0, 8, 1, func(i int) {
				if i == 5 {
					panic(fmt.Sprintf("nested-%d", i))
				}
			})
		})
	})
	if pe == nil {
		t.Fatal("nested panic lost")
	}
	if pe.Value != "nested-5" {
		t.Fatalf("Value = %v (double-wrapped?)", pe.Value)
	}
}

func TestPackagePanicIsolationBothEngines(t *testing.T) {
	for _, kind := range []EngineKind{EnginePool, EngineSemaphore} {
		name := map[EngineKind]string{EnginePool: "pool", EngineSemaphore: "semaphore"}[kind]
		t.Run(name, func(t *testing.T) {
			prev := CurrentEngine()
			SetEngine(kind)
			defer SetEngine(prev)
			SetParallelism(4)
			defer SetParallelism(0)

			pe := recoverPanicError(t, func() {
				ForGrain(0, 64, 1, func(i int) {
					if i == 17 {
						panic("for-panic")
					}
				})
			})
			if pe == nil || pe.Value != "for-panic" {
				t.Fatalf("For: pe=%v", pe)
			}

			pe = recoverPanicError(t, func() {
				Do(
					func() {},
					func() { panic("do-panic") },
					func() {},
				)
			})
			if pe == nil || pe.Value != "do-panic" {
				t.Fatalf("Do: pe=%v", pe)
			}

			// The engine must be fully usable afterwards.
			var sum atomic.Int64
			For(0, 1000, func(i int) { sum.Add(int64(i)) })
			if sum.Load() != 999*1000/2 {
				t.Fatalf("engine wedged after panic: sum=%d", sum.Load())
			}
		})
	}
}

func TestReducePanicPropagates(t *testing.T) {
	SetParallelism(4)
	defer SetParallelism(0)
	pe := recoverPanicError(t, func() {
		Reduce(0, 100, 0, func(i int) int {
			if i == 42 {
				panic("reduce")
			}
			return i
		}, func(a, b int) int { return a + b })
	})
	if pe == nil || pe.Value != "reduce" {
		t.Fatalf("Reduce: pe=%v", pe)
	}
}

func TestSequentialPathPanicPropagates(t *testing.T) {
	SetParallelism(1)
	defer SetParallelism(0)
	// procs==1 runs inline with no recover machinery: the raw value
	// reaches the caller (nothing to isolate — it is the owner's own
	// goroutine). Assert it is not swallowed.
	defer func() {
		if v := recover(); v == nil {
			t.Fatal("sequential panic swallowed")
		}
	}()
	For(0, 10, func(i int) {
		if i == 3 {
			panic("seq")
		}
	})
}
