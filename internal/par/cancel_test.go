package par

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestCancellerBasics(t *testing.T) {
	var nilC *Canceller
	if nilC.Cancelled() {
		t.Fatal("nil Canceller must never be cancelled")
	}
	if nilC.Err() != nil {
		t.Fatal("nil Canceller must have nil Err")
	}
	c := NewCanceller()
	if c.Cancelled() || c.Err() != nil {
		t.Fatal("fresh Canceller must be unfired")
	}
	c.Cancel()
	if !c.Cancelled() {
		t.Fatal("Cancel did not fire")
	}
	if !errors.Is(c.Err(), ErrCancelled) {
		t.Fatalf("Err() = %v, want ErrCancelled", c.Err())
	}
	c.Cancel() // idempotent
	if !c.Cancelled() {
		t.Fatal("second Cancel cleared the flag")
	}
}

func TestCancellerChildPropagation(t *testing.T) {
	root := NewCanceller()
	child := NewChild(root)
	grand := NewChild(child)
	if child.Cancelled() || grand.Cancelled() {
		t.Fatal("children of an unfired root must be unfired")
	}
	// Firing a child must not propagate upward.
	child.Cancel()
	if root.Cancelled() {
		t.Fatal("child Cancel leaked to the root")
	}
	if !grand.Cancelled() {
		t.Fatal("grandchild must observe its parent's Cancel")
	}
	// Firing the root reaches every descendant.
	sibling := NewChild(root)
	root.Cancel()
	if !sibling.Cancelled() {
		t.Fatal("sibling must observe the root's Cancel")
	}
	if NewChild(nil).Cancelled() {
		t.Fatal("NewChild(nil) must behave as an unfired root")
	}
}

func TestWatchContext(t *testing.T) {
	// Background: no watcher, never cancelled.
	c, stop := WatchContext(context.Background())
	defer stop()
	if c.Cancelled() {
		t.Fatal("background context produced a fired token")
	}

	// Already-done context: fired immediately, no goroutine.
	done, cancel := context.WithCancel(context.Background())
	cancel()
	c2, stop2 := WatchContext(done)
	defer stop2()
	if !c2.Cancelled() {
		t.Fatal("done context must produce a fired token")
	}

	// Live context cancelled later: the watcher fires the token.
	ctx, cancel3 := context.WithCancel(context.Background())
	c3, stop3 := WatchContext(ctx)
	if c3.Cancelled() {
		t.Fatal("token fired before the context died")
	}
	cancel3()
	deadline := time.Now().Add(2 * time.Second)
	for !c3.Cancelled() {
		if time.Now().After(deadline) {
			t.Fatal("watcher did not fire the token")
		}
		time.Sleep(time.Millisecond)
	}
	stop3()
	stop3() // idempotent
}
