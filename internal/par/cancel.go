package par

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrCancelled is returned by operations that observed their Canceller
// fire before completing. Callers that entered through a context should
// translate it to the context's own error (context.Canceled or
// context.DeadlineExceeded) at the API boundary.
var ErrCancelled = errors.New("par: computation cancelled")

// Canceller is a lightweight cooperative cancellation token: one atomic
// flag, checked by polling at algorithmic checkpoints (band, node and
// path boundaries), with none of context.Context's channel or timer
// machinery on the hot path. Cancellation is monotonic — once Cancel has
// been called, every subsequent Cancelled() observes true.
//
// Cancellers form trees: a child created with NewChild reports cancelled
// when either its own flag or any ancestor's flag is set, so a request
// token can fell an entire query while a sibling-band early exit fells
// only its own fan-out. The nil *Canceller is a valid token that is
// never cancelled, so unconditional Cancelled() polls cost one nil check
// on uninstrumented paths.
type Canceller struct {
	flag   atomic.Bool
	parent *Canceller
}

// NewCanceller returns a fresh, unfired root token.
func NewCanceller() *Canceller { return &Canceller{} }

// NewChild returns a token that fires when either it or parent fires.
// A nil parent is allowed (the child is then a root).
func NewChild(parent *Canceller) *Canceller {
	return &Canceller{parent: parent}
}

// Cancel fires the token. It is safe to call multiple times and from any
// goroutine; descendants observe the cancellation, ancestors do not.
func (c *Canceller) Cancel() { c.flag.Store(true) }

// Cancelled reports whether this token or any ancestor has fired. It is
// nil-safe: a nil Canceller is never cancelled.
func (c *Canceller) Cancelled() bool {
	for ; c != nil; c = c.parent {
		if c.flag.Load() {
			return true
		}
	}
	return false
}

// Err returns ErrCancelled when the token has fired, else nil.
func (c *Canceller) Err() error {
	if c.Cancelled() {
		return ErrCancelled
	}
	return nil
}

// WatchContext converts a context into a Canceller that fires when the
// context is done. The returned stop function releases the watcher
// goroutine and must be called (typically deferred) once the operation
// using the token has finished; stop is idempotent. Contexts that can
// never be cancelled (context.Background and friends) spawn no watcher.
func WatchContext(ctx context.Context) (*Canceller, func()) {
	c := NewCanceller()
	done := ctx.Done()
	if done == nil {
		return c, func() {}
	}
	if ctx.Err() != nil {
		c.Cancel()
		return c, func() {}
	}
	stopped := make(chan struct{})
	go func() {
		select {
		case <-done:
			c.Cancel()
		case <-stopped:
		}
	}()
	var once sync.Once
	return c, func() { once.Do(func() { close(stopped) }) }
}
