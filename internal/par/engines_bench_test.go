package par

import (
	"sync/atomic"
	"testing"
	"time"
)

// The engine ablation: the work-stealing pool vs the semaphore engine on
// synthetic band workloads. "balanced" gives every item equal cost —
// both engines should tie. "skewed" mimics Eppstein cover bands, whose
// sizes in practice follow a heavy-tailed distribution: a few large
// bands and a long tail of tiny ones. The semaphore engine loses there
// when an unlucky goroutine serializes behind a big item it cannot
// shed, while the pool's idle participants steal the big item's
// recursive halves.

// spinWork burns deterministic CPU proportional to units and returns a
// value the benchmarks accumulate so the loop cannot be optimized away.
func spinWork(units int) uint64 {
	x := uint64(units) | 1
	for i := 0; i < units; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x
}

// ablationSizes returns the per-item costs for both distributions,
// normalized to (nearly) equal totals so engine runtimes compare.
func ablationSizes(items, totalUnits int, skewed bool) []int {
	sizes := make([]int, items)
	if !skewed {
		for i := range sizes {
			sizes[i] = totalUnits / items
		}
		return sizes
	}
	// Zipf-ish: item i costs ∝ 1/(i+1).
	var norm float64
	for i := 0; i < items; i++ {
		norm += 1 / float64(i+1)
	}
	for i := range sizes {
		sizes[i] = int(float64(totalUnits) / float64(i+1) / norm)
	}
	return sizes
}

func benchEngineLoad(b *testing.B, kind EngineKind, sizes []int, nested bool) {
	SetEngine(kind)
	defer SetEngine(EnginePool)
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		var sink atomic.Uint64
		ForGrain(0, len(sizes), 1, func(i int) {
			if nested {
				// Large items fan out internally, the common shape when a
				// band's DP runs its own parallel loops.
				var inner atomic.Uint64
				For(0, 8, func(j int) {
					inner.Add(spinWork(sizes[i] / 8))
				})
				sink.Add(inner.Load())
			} else {
				sink.Add(spinWork(sizes[i]))
			}
		})
		if sink.Load() == 0 {
			b.Fatal("workload vanished")
		}
	}
}

// BenchmarkEngineLatencyLoad is the load-balancing half of the ablation
// on latency-bound items: each item *waits* (sleeps) instead of burning
// CPU, modeling bands dominated by memory stalls or—in future
// backends—IO, and isolating scheduling quality from core count (on a
// single-core CI box the CPU ablation above can only show parity). The
// semaphore engine's recursive halving commits a whole half-range to
// one goroutine whenever no slot is free at fork time, so a skewed
// distribution strands small items behind big ones; the pool's idle
// participants steal the stragglers' halves instead.
func BenchmarkEngineLatencyLoad(b *testing.B) {
	const items = 64
	const totalSleep = 64 * time.Millisecond
	defer SetParallelism(0)
	for _, shape := range []struct {
		name   string
		skewed bool
	}{{"balanced", false}, {"skewed", true}} {
		sizes := ablationSizes(items, int(totalSleep), shape.skewed)
		// Cap the head of the distribution below the ideal makespan
		// (total/P): otherwise the biggest item IS the critical path and
		// every scheduler ties. The capped tail still stretches 64:1.
		for i := range sizes {
			if cap := int(totalSleep) / 16; sizes[i] > cap {
				sizes[i] = cap
			}
		}
		for _, e := range []struct {
			name string
			kind EngineKind
		}{{"pool", EnginePool}, {"semaphore", EngineSemaphore}} {
			b.Run(shape.name+"/"+e.name, func(b *testing.B) {
				SetEngine(e.kind)
				SetParallelism(8) // scheduling quality, not core count
				defer func() {
					SetEngine(EnginePool)
					SetParallelism(0)
				}()
				b.ResetTimer()
				for iter := 0; iter < b.N; iter++ {
					var done atomic.Int64
					ForGrain(0, items, 1, func(i int) {
						time.Sleep(time.Duration(sizes[i]))
						done.Add(1)
					})
					if done.Load() != items {
						b.Fatal("lost items")
					}
				}
			})
		}
	}
}

// BenchmarkEngineAblation is the bench-engines target's core matrix:
// {balanced, skewed} × {flat, nested} × {pool, semaphore}.
func BenchmarkEngineAblation(b *testing.B) {
	const items = 64
	const totalUnits = 1 << 22
	for _, shape := range []struct {
		name   string
		skewed bool
	}{{"balanced", false}, {"skewed", true}} {
		sizes := ablationSizes(items, totalUnits, shape.skewed)
		for _, nest := range []struct {
			name   string
			nested bool
		}{{"flat", false}, {"nested", true}} {
			for _, e := range []struct {
				name string
				kind EngineKind
			}{{"pool", EnginePool}, {"semaphore", EngineSemaphore}} {
				b.Run(shape.name+"/"+nest.name+"/"+e.name, func(b *testing.B) {
					benchEngineLoad(b, e.kind, sizes, nest.nested)
				})
			}
		}
	}
}
