package par

import (
	"sync/atomic"
	"testing"
)

// TestReadPoolStats drives enough forked work through the pool engine
// to exercise the event counters and checks the snapshot invariants:
// counters are monotonic, the live pool's shape is reported, and the
// parked count never exceeds the worker count.
func TestReadPoolStats(t *testing.T) {
	if CurrentEngine() != EnginePool {
		t.Skip("pool stats describe the work-stealing engine")
	}
	before := ReadPoolStats()

	var sum atomic.Int64
	For(0, 1<<14, func(i int) { sum.Add(int64(i)) })
	if want := int64(1<<14) * ((1 << 14) - 1) / 2; sum.Load() != want {
		t.Fatalf("For sum = %d, want %d", sum.Load(), want)
	}

	after := ReadPoolStats()
	if after.Steals < before.Steals || after.Parks < before.Parks || after.Resizes < before.Resizes {
		t.Fatalf("counters went backwards: %+v -> %+v", before, after)
	}
	if Parallelism() > 1 {
		if after.Workers != Parallelism() {
			t.Fatalf("Workers = %d, want Parallelism() = %d", after.Workers, Parallelism())
		}
		if after.Parked < 0 || after.Parked > after.Workers {
			t.Fatalf("Parked = %d out of [0, %d]", after.Parked, after.Workers)
		}
	}
}
