package par

import "sync/atomic"

// Pool-wide event counters, package-level so the totals survive pool
// replacements (poolFor retires and reinstalls the shared pool on a
// parallelism change). The hooks sit off the fork fast path: a
// successful steal already paid a CAS, a park is about to block, and a
// resize rebuilds the pool — one atomic add each is noise there.
var (
	poolSteals  atomic.Int64
	poolParks   atomic.Int64
	poolResizes atomic.Int64
)

// PoolStats is a snapshot of the work-stealing runtime's internals: the
// lifetime event counters plus the live shared pool's shape. The
// serving layer exports it as the planarsi_pool_* metric family.
type PoolStats struct {
	// Steals counts successful steals (a task taken from another
	// participant's deque) across every pool this process ran.
	Steals int64
	// Parks counts worker park events: a background worker found no
	// work anywhere and blocked until woken.
	Parks int64
	// Resizes counts shared-pool replacements (parallelism or
	// GOMAXPROCS changes observed by poolFor).
	Resizes int64
	// Workers is the live shared pool's participant count, 0 when no
	// pool is installed (sequential configuration or semaphore engine).
	Workers int
	// Parked is how many of those workers are currently blocked waiting
	// for work; Workers - Parked approximates the active worker count.
	Parked int
}

// ReadPoolStats snapshots the pool counters and the live shared pool.
func ReadPoolStats() PoolStats {
	st := PoolStats{
		Steals:  poolSteals.Load(),
		Parks:   poolParks.Load(),
		Resizes: poolResizes.Load(),
	}
	if p := sharedPool.Load(); p != nil {
		st.Workers = p.procs
		st.Parked = int(p.parked.Load())
	}
	return st
}
