package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements an explicit work-stealing fork-join pool in the
// style of Cilk / Blumofe-Leiserson schedulers: each worker owns a
// Chase-Lev deque, pushes forked tasks to its own bottom, pops LIFO, and
// steals FIFO from the top of a random victim. A joining worker helps by
// running tasks until the joined future completes, so joins never block a
// worker thread.
//
// Brent's theorem is what connects this scheduler back to the paper's
// bounds: a computation with work W and depth D executes in O(W/P + D)
// steps on P workers under any greedy scheduler, of which work stealing is
// the standard practical instance.

// Task is the unit of work executed by a Pool.
type Task func(*Ctx)

// deque is a Chase-Lev work-stealing deque of Tasks.
// The owner pushes and pops at the bottom; thieves steal from the top.
type deque struct {
	top    atomic.Int64
	bottom atomic.Int64
	buf    atomic.Pointer[dequeBuf]
}

type dequeBuf struct {
	mask  int64
	tasks []atomic.Pointer[Task]
}

func newDequeBuf(capacity int64) *dequeBuf {
	return &dequeBuf{mask: capacity - 1, tasks: make([]atomic.Pointer[Task], capacity)}
}

func (b *dequeBuf) get(i int64) *Task    { return b.tasks[i&b.mask].Load() }
func (b *dequeBuf) put(i int64, t *Task) { b.tasks[i&b.mask].Store(t) }
func (b *dequeBuf) capacity() int64      { return b.mask + 1 }

func newDeque() *deque {
	d := &deque{}
	d.buf.Store(newDequeBuf(64))
	return d
}

// push adds a task at the bottom. Owner only.
func (d *deque) push(t *Task) {
	b := d.bottom.Load()
	top := d.top.Load()
	buf := d.buf.Load()
	if b-top >= buf.capacity() {
		// Grow: copy the live window into a buffer twice the size.
		nb := newDequeBuf(buf.capacity() * 2)
		for i := top; i < b; i++ {
			nb.put(i, buf.get(i))
		}
		d.buf.Store(nb)
		buf = nb
	}
	buf.put(b, t)
	d.bottom.Store(b + 1)
}

// pop removes the most recently pushed task. Owner only.
func (d *deque) pop() *Task {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Deque was empty; restore.
		d.bottom.Store(b + 1)
		return nil
	}
	task := d.buf.Load().get(b)
	if t == b {
		// Last element: race against thieves for it.
		if !d.top.CompareAndSwap(t, t+1) {
			task = nil // a thief won
		}
		d.bottom.Store(b + 1)
	}
	return task
}

// steal removes the oldest task. Any thread.
func (d *deque) steal() *Task {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil
	}
	task := d.buf.Load().get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil // lost the race; caller retries elsewhere
	}
	return task
}

// Future is the join handle returned by Ctx.Fork.
type Future struct {
	done atomic.Bool
	// claimed marks the task as started (by owner pop, a thief, or the
	// joiner running it inline) so it executes exactly once.
	claimed atomic.Bool
	f       Task
}

// run executes the future's function exactly once; later callers no-op.
func (fu *Future) run(ctx *Ctx) {
	if fu.claimed.CompareAndSwap(false, true) {
		fu.f(ctx)
		fu.done.Store(true)
	}
}

// Pool is a work-stealing fork-join pool with a fixed number of workers.
// The zero value is not usable; construct with NewPool.
type Pool struct {
	workers []*worker
	inbox   chan *rootJob
	quit    chan struct{}
	wg      sync.WaitGroup
	rng     atomic.Uint64
}

type rootJob struct {
	task Task
	done chan struct{}
}

type worker struct {
	pool *Pool
	id   int
	dq   *deque
	rnd  uint64
}

// NewPool creates a pool with p workers (p <= 0 selects GOMAXPROCS).
func NewPool(p int) *Pool {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	pool := &Pool{
		inbox: make(chan *rootJob),
		quit:  make(chan struct{}),
	}
	pool.workers = make([]*worker, p)
	for i := range pool.workers {
		pool.workers[i] = &worker{pool: pool, id: i, dq: newDeque(), rnd: uint64(i)*0x9e3779b97f4a7c15 + 1}
	}
	pool.wg.Add(p)
	for _, w := range pool.workers {
		go w.loop()
	}
	return pool
}

// Close shuts the pool down. Pending Run calls must have returned.
func (p *Pool) Close() {
	close(p.quit)
	p.wg.Wait()
}

// Run executes task on the pool and blocks until it (and everything it
// joined) returns.
func (p *Pool) Run(task Task) {
	job := &rootJob{task: task, done: make(chan struct{})}
	p.inbox <- job
	<-job.done
}

func (w *worker) loop() {
	defer w.pool.wg.Done()
	ctx := &Ctx{w: w}
	idleSpins := 0
	for {
		if t := w.findTask(); t != nil {
			(*t)(ctx)
			idleSpins = 0
			continue
		}
		select {
		case job := <-w.pool.inbox:
			job.task(ctx)
			close(job.done)
			idleSpins = 0
		case <-w.pool.quit:
			return
		default:
			idleSpins++
			if idleSpins < 64 {
				runtime.Gosched()
			} else {
				// Park lightly on the inbox or quit.
				select {
				case job := <-w.pool.inbox:
					job.task(ctx)
					close(job.done)
					idleSpins = 0
				case <-w.pool.quit:
					return
				}
			}
		}
	}
}

// findTask pops locally or steals from a random victim.
func (w *worker) findTask() *Task {
	if t := w.dq.pop(); t != nil {
		return t
	}
	n := len(w.pool.workers)
	// xorshift for victim selection
	w.rnd ^= w.rnd << 13
	w.rnd ^= w.rnd >> 7
	w.rnd ^= w.rnd << 17
	start := int(w.rnd % uint64(n))
	for i := 0; i < n; i++ {
		v := w.pool.workers[(start+i)%n]
		if v == w {
			continue
		}
		if t := v.dq.steal(); t != nil {
			return t
		}
	}
	return nil
}

// Ctx is the per-worker context threaded through pool tasks.
type Ctx struct {
	w *worker
}

// Fork schedules f to run asynchronously and returns its join handle.
func (c *Ctx) Fork(f Task) *Future {
	fu := &Future{f: f}
	t := Task(fu.run)
	c.w.dq.push(&t)
	return fu
}

// Join waits for fu, helping with other tasks while it is outstanding.
func (c *Ctx) Join(fu *Future) {
	for !fu.done.Load() {
		if t := c.w.findTask(); t != nil {
			(*t)(c)
			continue
		}
		// Nothing to help with. If the forked task has not started yet
		// run it inline; otherwise a thief is mid-execution, so yield.
		fu.run(c)
		if fu.done.Load() {
			return
		}
		runtime.Gosched()
	}
}

// Do runs the functions as a fork-join group: all but the first are forked,
// the first runs inline, then all forks are joined.
func (c *Ctx) Do(fs ...Task) {
	if len(fs) == 0 {
		return
	}
	futures := make([]*Future, len(fs)-1)
	for i := len(fs) - 1; i >= 1; i-- {
		futures[i-1] = c.Fork(fs[i])
	}
	fs[0](c)
	for _, fu := range futures {
		c.Join(fu)
	}
}

// For runs f(i) for i in [lo, hi) using recursive halving on the pool.
func (c *Ctx) For(lo, hi, grain int, f func(i int)) {
	if grain < 1 {
		grain = 1
	}
	var run Task
	var rec func(ctx *Ctx, lo, hi int)
	rec = func(ctx *Ctx, lo, hi int) {
		for hi-lo > grain {
			mid := lo + (hi-lo)/2
			l, h := mid, hi
			fu := ctx.Fork(func(c2 *Ctx) { rec(c2, l, h) })
			hi = mid
			defer ctx.Join(fu)
		}
		for i := lo; i < hi; i++ {
			f(i)
		}
	}
	run = func(ctx *Ctx) { rec(ctx, lo, hi) }
	run(c)
}
