package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the work-stealing fork-join runtime in the style
// of Cilk / Blumofe-Leiserson schedulers: every executing thread owns a
// Chase-Lev deque, pushes forked tasks to its own bottom, pops LIFO, and
// steals FIFO from the top of a random victim. A joining thread helps by
// running tasks until the joined future completes, so joins never block
// a thread.
//
// Two kinds of threads own deques. Background *workers* ((procs-1) per
// pool — the submitting goroutine always works too) live for the pool's
// lifetime and do nothing but steal and execute. *Scopes* are transient:
// every structured fork-join operation (a Pool.Run, or one package-level
// Do/For/Reduce call on the pool engine) registers a deque for its
// duration, forks into it, and helps until its own joins resolve. The
// scope's owner never blocks — it pops its own deque, steals from every
// registered deque, or runs an unclaimed future inline — which makes
// arbitrary nesting deadlock-free: a nested operation on a worker
// goroutine simply opens another scope whose tasks remain stealable by
// everyone.
//
// Brent's theorem is what connects this scheduler back to the paper's
// bounds: a computation with work W and depth D executes in O(W/P + D)
// steps on P workers under any greedy scheduler, of which work stealing
// is the standard practical instance.

// Task is the unit of work executed by a Pool.
type Task func(*Ctx)

// deque is a Chase-Lev work-stealing deque of Tasks.
// The owner pushes and pops at the bottom; thieves steal from the top.
type deque struct {
	top    atomic.Int64
	bottom atomic.Int64
	buf    atomic.Pointer[dequeBuf]
}

type dequeBuf struct {
	mask  int64
	tasks []atomic.Pointer[Task]
}

func newDequeBuf(capacity int64) *dequeBuf {
	return &dequeBuf{mask: capacity - 1, tasks: make([]atomic.Pointer[Task], capacity)}
}

func (b *dequeBuf) get(i int64) *Task    { return b.tasks[i&b.mask].Load() }
func (b *dequeBuf) put(i int64, t *Task) { b.tasks[i&b.mask].Store(t) }
func (b *dequeBuf) capacity() int64      { return b.mask + 1 }

func newDeque() *deque {
	d := &deque{}
	d.buf.Store(newDequeBuf(64))
	return d
}

// push adds a task at the bottom. Owner only.
func (d *deque) push(t *Task) {
	b := d.bottom.Load()
	top := d.top.Load()
	buf := d.buf.Load()
	if b-top >= buf.capacity() {
		// Grow: copy the live window into a buffer twice the size.
		nb := newDequeBuf(buf.capacity() * 2)
		for i := top; i < b; i++ {
			nb.put(i, buf.get(i))
		}
		d.buf.Store(nb)
		buf = nb
	}
	buf.put(b, t)
	d.bottom.Store(b + 1)
}

// pop removes the most recently pushed task. Owner only.
func (d *deque) pop() *Task {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Deque was empty; restore.
		d.bottom.Store(b + 1)
		return nil
	}
	task := d.buf.Load().get(b)
	if t == b {
		// Last element: race against thieves for it.
		if !d.top.CompareAndSwap(t, t+1) {
			task = nil // a thief won
		}
		d.bottom.Store(b + 1)
	}
	return task
}

// steal removes the oldest task. Any thread.
func (d *deque) steal() *Task {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil
	}
	task := d.buf.Load().get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil // lost the race; caller retries elsewhere
	}
	return task
}

// Future is the join handle returned by Ctx.Fork.
type Future struct {
	done atomic.Bool
	// claimed marks the task as started (by owner pop, a thief, or the
	// joiner running it inline) so it executes exactly once.
	claimed atomic.Bool
	f       Task
	// panicked holds a panic recovered from the task body, written
	// before done flips (so the done.Load in Join orders the read) and
	// re-panicked at the join point on the joining goroutine.
	panicked *PanicError
}

// run executes the future's function exactly once; later callers no-op.
// A panic in the task body is recovered here — never on the raw worker
// goroutine — so workers and thieves survive it; the capture is
// re-panicked by Join.
func (fu *Future) run(ctx *Ctx) {
	if fu.claimed.CompareAndSwap(false, true) {
		defer fu.done.Store(true)
		defer func() {
			if v := recover(); v != nil {
				fu.panicked = asPanicError(v)
			}
		}()
		fu.f(ctx)
	}
}

// Pool is a work-stealing fork-join pool. Construct with NewPool; the
// zero value is not usable. A Pool with parallelism p runs p-1
// background workers — the goroutine calling Run (or a package-level
// combinator routed to the pool) is always the p-th participant.
type Pool struct {
	procs int
	quit  chan struct{}
	wg    sync.WaitGroup

	// victims is the copy-on-write list of all stealable deques: the
	// permanent worker deques plus the currently registered scopes.
	// Readers load it wait-free on every steal attempt; register and
	// unregister copy under mu.
	mu      sync.Mutex
	victims atomic.Pointer[[]*deque]

	// parked counts workers blocked on wake; fork and scope entry only
	// touch the wake channel when it is non-zero, keeping the fork fast
	// path to one atomic load.
	parked atomic.Int32
	wake   chan struct{}

	seq atomic.Uint64 // victim-selection seed source
}

// NewPool creates a pool with parallelism p (p <= 0 selects GOMAXPROCS):
// p-1 background workers, the caller being the last participant.
func NewPool(p int) *Pool {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	pool := &Pool{
		procs: p,
		quit:  make(chan struct{}),
		wake:  make(chan struct{}, p),
	}
	empty := make([]*deque, 0, p)
	pool.victims.Store(&empty)
	pool.wg.Add(p - 1)
	for i := 0; i < p-1; i++ {
		c := &Ctx{p: pool, dq: newDeque(), rnd: pool.nextSeed()}
		pool.register(c.dq)
		go pool.workerLoop(c)
	}
	return pool
}

// Parallelism returns the pool's total participant count (workers + the
// submitting goroutine).
func (p *Pool) Parallelism() int { return p.procs }

// Close retires the pool: background workers exit once they run out of
// tasks. Scopes still running keep making progress on their own
// goroutines (the owner helps itself), so Close never strands work, but
// new operations should use a fresh pool.
func (p *Pool) Close() {
	close(p.quit)
	// Release any parked workers so they can observe quit.
	for i := 0; i < cap(p.wake); i++ {
		select {
		case p.wake <- struct{}{}:
		default:
		}
	}
	p.wg.Wait()
}

func (p *Pool) nextSeed() uint64 {
	return p.seq.Add(1)*0x9e3779b97f4a7c15 + 1
}

// register adds a deque to the steal set.
func (p *Pool) register(d *deque) {
	p.mu.Lock()
	old := *p.victims.Load()
	nv := make([]*deque, len(old)+1)
	copy(nv, old)
	nv[len(old)] = d
	p.victims.Store(&nv)
	p.mu.Unlock()
	p.signal()
}

// unregister removes a deque from the steal set.
func (p *Pool) unregister(d *deque) {
	p.mu.Lock()
	old := *p.victims.Load()
	nv := make([]*deque, 0, len(old)-1)
	for _, v := range old {
		if v != d {
			nv = append(nv, v)
		}
	}
	p.victims.Store(&nv)
	p.mu.Unlock()
}

// signal wakes one parked worker if any are parked.
func (p *Pool) signal() {
	if p.parked.Load() > 0 {
		select {
		case p.wake <- struct{}{}:
		default:
		}
	}
}

// scopeCtxs recycles scope contexts (and their deques) across operations.
var scopeCtxs = sync.Pool{New: func() any { return &Ctx{dq: newDeque()} }}

// enter opens a fork-join scope on the pool: a context whose deque is
// registered for stealing. The caller runs the scope's root task on its
// own goroutine and must close the scope with exit.
func (p *Pool) enter() *Ctx {
	c := scopeCtxs.Get().(*Ctx)
	c.p = p
	if c.rnd == 0 {
		c.rnd = p.nextSeed()
	}
	p.register(c.dq)
	return c
}

// exit closes a scope opened by enter. The scope's joins have all
// resolved, so any tasks left in the deque are claimed no-ops; they are
// drained before the deque is recycled.
func (p *Pool) exit(c *Ctx) {
	p.unregister(c.dq)
	for c.dq.pop() != nil {
	}
	c.p = nil
	scopeCtxs.Put(c)
}

// Run executes task on the pool as a fork-join scope and returns when it
// (and everything it joined) has. The calling goroutine participates in
// the work; nested Run calls (from inside pool tasks) are safe.
func (p *Pool) Run(task Task) {
	c := p.enter()
	defer p.exit(c)
	task(c)
}

// workerLoop is the background worker body: steal, execute, park.
func (p *Pool) workerLoop(c *Ctx) {
	defer p.wg.Done()
	idleSpins := 0
	for {
		if t := c.findTask(); t != nil {
			(*t)(c)
			idleSpins = 0
			continue
		}
		select {
		case <-p.quit:
			return
		default:
		}
		idleSpins++
		if idleSpins < 8 {
			runtime.Gosched()
			continue
		}
		// Park. Re-check for work after announcing the park so a fork
		// racing with it cannot be missed for long (forkers signal only
		// when parked > 0).
		p.parked.Add(1)
		if t := c.findTask(); t != nil {
			p.parked.Add(-1)
			(*t)(c)
			idleSpins = 0
			continue
		}
		poolParks.Add(1)
		select {
		case <-p.wake:
			p.parked.Add(-1)
		case <-p.quit:
			p.parked.Add(-1)
			return
		}
		idleSpins = 0
	}
}

// Ctx is the per-thread context of a pool participant (worker or scope).
type Ctx struct {
	p   *Pool
	dq  *deque
	rnd uint64
}

// findTask pops locally or steals from a random victim.
func (c *Ctx) findTask() *Task {
	if t := c.dq.pop(); t != nil {
		return t
	}
	victims := *c.p.victims.Load()
	n := len(victims)
	if n == 0 {
		return nil
	}
	// xorshift for victim selection
	c.rnd ^= c.rnd << 13
	c.rnd ^= c.rnd >> 7
	c.rnd ^= c.rnd << 17
	start := int(c.rnd % uint64(n))
	for i := 0; i < n; i++ {
		v := victims[(start+i)%n]
		if v == c.dq {
			continue
		}
		if t := v.steal(); t != nil {
			poolSteals.Add(1)
			return t
		}
	}
	return nil
}

// Fork schedules f to run asynchronously and returns its join handle.
func (c *Ctx) Fork(f Task) *Future {
	fu := &Future{f: f}
	t := Task(fu.run)
	c.dq.push(&t)
	c.p.signal()
	return fu
}

// Join waits for fu, helping with other tasks while it is outstanding.
// If the future's task panicked, Join re-panics the captured
// *PanicError on the calling goroutine once the task has completed.
func (c *Ctx) Join(fu *Future) {
	c.joinNoPanic(fu)
	if fu.panicked != nil {
		panic(fu.panicked)
	}
}

// joinNoPanic waits for fu without re-panicking a captured panic; Do
// uses it to finish joining every sibling before propagating the first
// panic.
func (c *Ctx) joinNoPanic(fu *Future) {
	spins := 0
	for !fu.done.Load() {
		if t := c.findTask(); t != nil {
			(*t)(c)
			spins = 0
			continue
		}
		// Nothing to help with. If the forked task has not started yet
		// run it inline; otherwise a thief is mid-execution — yield, and
		// once yielding has gone on for a while back off into short
		// sleeps: on an oversubscribed machine a Gosched storm steals
		// the very cycles the thief needs to finish.
		fu.run(c)
		if fu.done.Load() {
			return
		}
		spins++
		if spins < 16 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// Do runs the functions as a fork-join group: all but the first are forked,
// the first runs inline, then all forks are joined. If any function
// panics, every sibling is still joined before the first panic (in
// fork order: inline first, then forks) re-panics on the caller.
func (c *Ctx) Do(fs ...Task) {
	if len(fs) == 0 {
		return
	}
	futures := make([]*Future, len(fs)-1)
	for i := len(fs) - 1; i >= 1; i-- {
		futures[i-1] = c.Fork(fs[i])
	}
	var first *PanicError
	func() {
		defer func() {
			if v := recover(); v != nil {
				first = asPanicError(v)
			}
		}()
		fs[0](c)
	}()
	for _, fu := range futures {
		c.joinNoPanic(fu)
		if fu.panicked != nil && first == nil {
			first = fu.panicked
		}
	}
	if first != nil {
		panic(first)
	}
}

// ForBlocks splits [lo, hi) into blocks of at most grain indices and runs
// body on each block via recursive halving on the pool. Forked halves
// are joined by defer, so a panicking block still waits for its forked
// siblings before one *PanicError propagates to the caller.
func (c *Ctx) ForBlocks(lo, hi, grain int, body func(lo, hi int)) {
	if grain < 1 {
		grain = 1
	}
	var rec func(ctx *Ctx, lo, hi int)
	rec = func(ctx *Ctx, lo, hi int) {
		for hi-lo > grain {
			mid := lo + (hi-lo)/2
			l, h := mid, hi
			fu := ctx.Fork(func(c2 *Ctx) { rec(c2, l, h) })
			hi = mid
			defer ctx.Join(fu)
		}
		if lo < hi {
			body(lo, hi)
		}
	}
	if lo < hi {
		rec(c, lo, hi)
	}
}

// For runs f(i) for i in [lo, hi) using recursive halving on the pool.
func (c *Ctx) For(lo, hi, grain int, f func(i int)) {
	c.ForBlocks(lo, hi, grain, func(l, h int) {
		for i := l; i < h; i++ {
			f(i)
		}
	})
}
