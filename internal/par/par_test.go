package par

import (
	"math/rand/v2"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestDoRunsAll(t *testing.T) {
	var a, b, c atomic.Int32
	Do(func() { a.Store(1) }, func() { b.Store(2) }, func() { c.Store(3) })
	if a.Load() != 1 || b.Load() != 2 || c.Load() != 3 {
		t.Fatalf("Do did not run all functions: %d %d %d", a.Load(), b.Load(), c.Load())
	}
}

func TestDoEmptyAndSingle(t *testing.T) {
	Do() // must not panic
	ran := false
	Do(func() { ran = true })
	if !ran {
		t.Fatal("single-function Do did not run")
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 10_000} {
		counts := make([]atomic.Int32, n)
		For(0, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if counts[i].Load() != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, counts[i].Load())
			}
		}
	}
}

func TestForNegativeRange(t *testing.T) {
	called := false
	For(5, 3, func(i int) { called = true })
	if called {
		t.Fatal("For on empty range called body")
	}
}

func TestForGrainVariants(t *testing.T) {
	for _, grain := range []int{-1, 0, 1, 3, 1000} {
		n := 257
		counts := make([]atomic.Int32, n)
		ForGrain(0, n, grain, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if counts[i].Load() != 1 {
				t.Fatalf("grain=%d: index %d visited %d times", grain, i, counts[i].Load())
			}
		}
	}
}

func TestForBlocksPartition(t *testing.T) {
	n := 1023
	seen := make([]atomic.Int32, n)
	ForBlocks(0, n, 10, func(lo, hi int) {
		if hi-lo > 10 || hi <= lo {
			t.Errorf("bad block [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			seen[i].Add(1)
		}
	})
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("index %d covered %d times", i, seen[i].Load())
		}
	}
}

func TestReduceSum(t *testing.T) {
	n := 12345
	got := Reduce(0, n, 0, func(i int) int { return i }, func(a, b int) int { return a + b })
	want := n * (n - 1) / 2
	if got != want {
		t.Fatalf("Reduce sum = %d, want %d", got, want)
	}
}

func TestReduceMax(t *testing.T) {
	xs := []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	got := Reduce(0, len(xs), -1, func(i int) int { return xs[i] }, func(a, b int) int {
		if a > b {
			return a
		}
		return b
	})
	if got != 9 {
		t.Fatalf("Reduce max = %d, want 9", got)
	}
}

func TestReduceEmpty(t *testing.T) {
	got := Reduce(3, 3, 42, func(i int) int { return 0 }, func(a, b int) int { return a + b })
	if got != 42 {
		t.Fatalf("empty Reduce = %d, want identity 42", got)
	}
}

func prefixSumSeq(xs []int64) ([]int64, int64) {
	out := make([]int64, len(xs))
	var acc int64
	for i, v := range xs {
		out[i] = acc
		acc += v
	}
	return out, acc
}

func TestExclusivePrefixSumMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, n := range []int{0, 1, 2, 3, 63, 64, 65, 1000, 4096} {
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = rng.Int64N(100) - 50
		}
		want, wantTotal := prefixSumSeq(xs)
		got := make([]int64, n)
		copy(got, xs)
		total := ExclusivePrefixSum(got)
		if total != wantTotal {
			t.Fatalf("n=%d: total=%d want %d", n, total, wantTotal)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: prefix[%d]=%d want %d", n, i, got[i], want[i])
			}
		}
	}
}

// Property: ExclusivePrefixSum agrees with the sequential scan on random
// inputs of random sizes.
func TestExclusivePrefixSumQuick(t *testing.T) {
	f := func(xs []int64) bool {
		want, wantTotal := prefixSumSeq(xs)
		got := make([]int64, len(xs))
		copy(got, xs)
		total := ExclusivePrefixSum(got)
		if total != wantTotal {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPackKeepsOrder(t *testing.T) {
	xs := make([]int, 1000)
	for i := range xs {
		xs[i] = i
	}
	got := Pack(xs, func(i int) bool { return xs[i]%3 == 0 })
	want := 0
	for _, v := range got {
		if v != want {
			t.Fatalf("Pack out of order: got %d want %d", v, want)
		}
		want += 3
	}
	if len(got) != 334 {
		t.Fatalf("Pack len=%d want 334", len(got))
	}
}

func TestPackIndexMatchesPack(t *testing.T) {
	f := func(flags []bool) bool {
		n := len(flags)
		xs := make([]int32, n)
		for i := range xs {
			xs[i] = int32(i)
		}
		a := Pack(xs, func(i int) bool { return flags[i] })
		b := PackIndex(n, func(i int) bool { return flags[i] })
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNestedParallelFor(t *testing.T) {
	// Nesting must not deadlock even when it exceeds the worker count.
	var total atomic.Int64
	For(0, 50, func(i int) {
		For(0, 50, func(j int) {
			total.Add(1)
		})
	})
	if total.Load() != 2500 {
		t.Fatalf("nested For total=%d want 2500", total.Load())
	}
}
