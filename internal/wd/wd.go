// Package wd provides work/depth instrumentation for the PRAM-style
// algorithms in this repository.
//
// The paper states its bounds in the CREW PRAM work/depth model: work is
// the total number of operations performed by all processors, and depth is
// the length of the critical path. Wall-clock time on a fixed machine mixes
// the two together (Brent: T_P = O(W/P + D)), so every algorithm in this
// repository reports its empirical work (operation counts) and depth
// (synchronous round counts) through a Tracker. Benchmarks read these
// counters to verify the shapes the paper claims, e.g. near-linear work in
// n and poly-logarithmic depth.
//
// A nil *Tracker is valid everywhere and makes all methods no-ops, so
// instrumentation can be switched off without branching at call sites.
package wd

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Tracker accumulates work and depth counters, optionally split by phase.
// All methods are safe for concurrent use and are no-ops on a nil receiver.
type Tracker struct {
	work   atomic.Int64
	rounds atomic.Int64

	mu     sync.Mutex
	phases map[string]*phase
}

type phase struct {
	work   atomic.Int64
	rounds atomic.Int64
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{phases: make(map[string]*phase)}
}

// AddWork adds n units of work to the global counter.
func (t *Tracker) AddWork(n int64) {
	if t == nil {
		return
	}
	t.work.Add(n)
}

// AddRounds adds n synchronous rounds to the global depth counter.
// Rounds model PRAM time steps: a parallel BFS adds one round per level,
// pointer jumping adds one round per doubling step, and so on.
func (t *Tracker) AddRounds(n int64) {
	if t == nil {
		return
	}
	t.rounds.Add(n)
}

func (t *Tracker) phaseFor(name string) *phase {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.phases[name]
	if !ok {
		p = &phase{}
		t.phases[name] = p
	}
	return p
}

// AddPhaseWork adds work both globally and to the named phase.
func (t *Tracker) AddPhaseWork(name string, n int64) {
	if t == nil {
		return
	}
	t.work.Add(n)
	t.phaseFor(name).work.Add(n)
}

// AddPhaseRounds adds rounds both globally and to the named phase.
func (t *Tracker) AddPhaseRounds(name string, n int64) {
	if t == nil {
		return
	}
	t.rounds.Add(n)
	t.phaseFor(name).rounds.Add(n)
}

// Work returns the total work recorded so far.
func (t *Tracker) Work() int64 {
	if t == nil {
		return 0
	}
	return t.work.Load()
}

// Rounds returns the total rounds recorded so far.
func (t *Tracker) Rounds() int64 {
	if t == nil {
		return 0
	}
	return t.rounds.Load()
}

// PhaseWork returns the work recorded for the named phase.
func (t *Tracker) PhaseWork(name string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if p, ok := t.phases[name]; ok {
		return p.work.Load()
	}
	return 0
}

// PhaseRounds returns the rounds recorded for the named phase.
func (t *Tracker) PhaseRounds(name string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if p, ok := t.phases[name]; ok {
		return p.rounds.Load()
	}
	return 0
}

// Reset clears all counters.
func (t *Tracker) Reset() {
	if t == nil {
		return
	}
	t.work.Store(0)
	t.rounds.Store(0)
	t.mu.Lock()
	t.phases = make(map[string]*phase)
	t.mu.Unlock()
}

// String renders the counters, phases sorted by name, for reports.
func (t *Tracker) String() string {
	if t == nil {
		return "wd: off"
	}
	t.mu.Lock()
	names := make([]string, 0, len(t.phases))
	for name := range t.phases {
		names = append(names, name)
	}
	t.mu.Unlock()
	sort.Strings(names)
	s := fmt.Sprintf("work=%d rounds=%d", t.work.Load(), t.rounds.Load())
	for _, name := range names {
		t.mu.Lock()
		p := t.phases[name]
		t.mu.Unlock()
		s += fmt.Sprintf(" %s[w=%d r=%d]", name, p.work.Load(), p.rounds.Load())
	}
	return s
}
