package wd

import (
	"strings"
	"sync"
	"testing"
)

func TestNilTrackerIsSafe(t *testing.T) {
	var tr *Tracker
	tr.AddWork(5)
	tr.AddRounds(2)
	tr.AddPhaseWork("x", 1)
	tr.AddPhaseRounds("x", 1)
	tr.Reset()
	if tr.Work() != 0 || tr.Rounds() != 0 || tr.PhaseWork("x") != 0 || tr.PhaseRounds("x") != 0 {
		t.Fatal("nil tracker must report zeros")
	}
	if tr.String() != "wd: off" {
		t.Fatalf("nil String = %q", tr.String())
	}
}

func TestCountersAccumulate(t *testing.T) {
	tr := NewTracker()
	tr.AddWork(3)
	tr.AddPhaseWork("dp", 7)
	tr.AddRounds(1)
	tr.AddPhaseRounds("dp", 2)
	if tr.Work() != 10 {
		t.Fatalf("work = %d, want 10", tr.Work())
	}
	if tr.Rounds() != 3 {
		t.Fatalf("rounds = %d, want 3", tr.Rounds())
	}
	if tr.PhaseWork("dp") != 7 || tr.PhaseRounds("dp") != 2 {
		t.Fatalf("phase counters wrong: %d/%d", tr.PhaseWork("dp"), tr.PhaseRounds("dp"))
	}
	if tr.PhaseWork("absent") != 0 {
		t.Fatal("absent phase must be 0")
	}
}

func TestReset(t *testing.T) {
	tr := NewTracker()
	tr.AddPhaseWork("a", 5)
	tr.Reset()
	if tr.Work() != 0 || tr.PhaseWork("a") != 0 {
		t.Fatal("reset did not clear counters")
	}
}

func TestStringListsPhasesSorted(t *testing.T) {
	tr := NewTracker()
	tr.AddPhaseWork("zeta", 1)
	tr.AddPhaseWork("alpha", 1)
	s := tr.String()
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "zeta") {
		t.Fatalf("phases missing from %q", s)
	}
	if strings.Index(s, "alpha") > strings.Index(s, "zeta") {
		t.Fatalf("phases not sorted in %q", s)
	}
}

func TestConcurrentUse(t *testing.T) {
	tr := NewTracker()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.AddPhaseWork("p", 1)
				tr.AddPhaseRounds("q", 1)
			}
		}()
	}
	wg.Wait()
	if tr.PhaseWork("p") != 8000 || tr.PhaseRounds("q") != 8000 {
		t.Fatalf("lost updates: %d/%d", tr.PhaseWork("p"), tr.PhaseRounds("q"))
	}
}
