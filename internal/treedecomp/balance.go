package treedecomp

// Balance implements the height-reduction transform the paper's Section
// 3.3 cites as the alternative it *avoids* (Bodlaender-Hagerup [10]):
// any tree decomposition of width w can be rebalanced into one of height
// O(log n) and width at most 3w+2, after which the DP of Section 3.2 can
// be parallelized level by level. The catch — and the reason the paper
// builds the path-DAG engine instead — is that tripling the width raises
// the DP's (τ+3)^{3k+1} work by a factor of up to Ω(9^k). The Ablation A5
// experiment measures exactly that trade.
//
// The construction is the classic two-boundary recursion: a sub-forest S
// of the decomposition tree with at most two designated boundary nodes is
// split at a node c chosen on the path between the boundaries so that
// the boundary-containing components halve; the new root bag is the union
// of X_c and the (at most two) boundary bags — at most 3 original bags,
// hence width ≤ 3(w+1)-1 = 3w+2. Components hanging off c inherit a
// single boundary (their attachment), so a component that did not halve
// at this level halves at the next, giving height ≤ 2·log2 n + O(1).

// Balance returns a rebalanced tree decomposition of g-independent
// structure: height O(log n), width at most 3·Width(d)+2, valid for every
// graph d is valid for.
func Balance(d *Decomposition) *Decomposition {
	n := d.NumNodes()
	if n == 0 {
		return &Decomposition{Bags: [][]int32{{}}, Parent: []int32{-1}, Root: 0}
	}
	// Undirected adjacency of the decomposition tree.
	adj := make([][]int32, n)
	for i, p := range d.Parent {
		if p >= 0 {
			adj[i] = append(adj[i], p)
			adj[p] = append(adj[p], int32(i))
		}
	}
	b := &balancer{src: d, adj: adj}
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	root := b.build(all, nil)
	return &Decomposition{Bags: b.bags, Parent: b.parent, Root: root}
}

type balancer struct {
	src    *Decomposition
	adj    [][]int32
	bags   [][]int32
	parent []int32
}

func (b *balancer) add(bag []int32, parent int32) int32 {
	id := int32(len(b.bags))
	b.bags = append(b.bags, bag)
	b.parent = append(b.parent, parent)
	return id
}

// build recursively balances the sub-forest S (a connected subtree of the
// decomposition tree) with boundary nodes bd (|bd| <= 2) and returns the
// id of the new root, whose bag contains the union of the boundary bags.
func (b *balancer) build(S []int32, bd []int32) int32 {
	if len(S) <= 2 {
		var bag []int32
		for _, t := range S {
			bag = unionSorted(bag, b.src.Bags[t])
		}
		return b.add(bag, -1)
	}
	inS := make(map[int32]bool, len(S))
	for _, t := range S {
		inS[t] = true
	}
	c := b.splitNode(S, inS, bd)

	// Root bag: X_c plus the boundary bags (<= 3 original bags).
	bag := append([]int32(nil), b.src.Bags[c]...)
	for _, t := range bd {
		bag = unionSorted(bag, b.src.Bags[t])
	}
	root := b.add(bag, -1)

	// Components of S - c; each gets boundary = (bd ∩ component) plus the
	// neighbor of c inside it.
	delete(inS, c)
	seen := make(map[int32]bool, len(S))
	for _, attach := range b.adj[c] {
		if !inS[attach] || seen[attach] {
			continue
		}
		comp := b.component(attach, inS, seen)
		sub := []int32{attach}
		for _, t := range bd {
			if t != attach && containsNode(comp, t) {
				sub = append(sub, t)
			}
		}
		child := b.build(comp, sub)
		b.parent[child] = root
	}
	return root
}

// component collects the connected component of start in the forest
// restricted to inS, marking nodes in seen.
func (b *balancer) component(start int32, inS, seen map[int32]bool) []int32 {
	comp := []int32{start}
	seen[start] = true
	for i := 0; i < len(comp); i++ {
		for _, w := range b.adj[comp[i]] {
			if inS[w] && !seen[w] {
				seen[w] = true
				comp = append(comp, w)
			}
		}
	}
	return comp
}

func containsNode(comp []int32, t int32) bool {
	for _, x := range comp {
		if x == t {
			return true
		}
	}
	return false
}

// splitNode picks the split node: with fewer than two boundary nodes, the
// centroid of S (every component of S-c has size <= |S|/2); with two, the
// node on the boundary path that keeps both boundary-side components at
// size <= |S|/2 (hanging components shrink the next level, when they
// recurse with a single boundary).
func (b *balancer) splitNode(S []int32, inS map[int32]bool, bd []int32) int32 {
	if len(bd) < 2 {
		return b.centroid(S, inS)
	}
	path := b.treePath(bd[0], bd[1], inS)
	// Weight hanging below each path node (off-path subtree sizes + 1).
	onPath := make(map[int32]bool, len(path))
	for _, t := range path {
		onPath[t] = true
	}
	weight := make(map[int32]int, len(path))
	seen := make(map[int32]bool, len(S))
	for _, t := range path {
		seen[t] = true
	}
	for _, t := range path {
		w := 1
		for _, nb := range b.adj[t] {
			if inS[nb] && !onPath[nb] && !seen[nb] {
				w += len(b.component(nb, inS, seen))
			}
		}
		weight[t] = w
	}
	// Prefix weights along the path; choose the first node where the
	// strict prefix reaches half, so both path sides are <= |S|/2.
	total := len(S)
	prefix := 0
	for _, t := range path {
		if prefix+weight[t] >= (total+1)/2 {
			return t
		}
		prefix += weight[t]
	}
	return path[len(path)-1]
}

// centroid returns a node whose removal leaves components of size at most
// |S|/2 (computed by the standard subtree-size walk from an arbitrary
// root of the subtree).
func (b *balancer) centroid(S []int32, inS map[int32]bool) int32 {
	root := S[0]
	parent := make(map[int32]int32, len(S))
	order := make([]int32, 0, len(S))
	parent[root] = -1
	order = append(order, root)
	for i := 0; i < len(order); i++ {
		v := order[i]
		for _, w := range b.adj[v] {
			if inS[w] {
				if _, ok := parent[w]; !ok {
					parent[w] = v
					order = append(order, w)
				}
			}
		}
	}
	size := make(map[int32]int, len(S))
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		size[v]++
		if p := parent[v]; p >= 0 {
			size[p] += size[v]
		}
	}
	total := len(S)
	v := root
	for {
		next := int32(-1)
		for _, w := range b.adj[v] {
			if inS[w] && parent[w] == v && size[w] > total/2 {
				next = w
				break
			}
		}
		if next < 0 {
			return v
		}
		v = next
	}
}

// treePath returns the nodes on the unique path from a to b within the
// subtree inS (inclusive).
func (b *balancer) treePath(a, bb int32, inS map[int32]bool) []int32 {
	if a == bb {
		return []int32{a}
	}
	prev := map[int32]int32{a: -1}
	queue := []int32{a}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == bb {
			break
		}
		for _, w := range b.adj[v] {
			if inS[w] {
				if _, ok := prev[w]; !ok {
					prev[w] = v
					queue = append(queue, w)
				}
			}
		}
	}
	var path []int32
	for v := bb; v >= 0; v = prev[v] {
		path = append(path, v)
	}
	// Reverse to a..b order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// unionSorted merges two sorted unique slices into a sorted unique slice.
func unionSorted(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Height returns the number of nodes on the longest root-to-leaf path.
func (d *Decomposition) Height() int {
	depth := make([]int32, d.NumNodes())
	// Parents appear before children is not guaranteed; iterate to fixpoint
	// via topological order from the root using children lists.
	ch := d.Children()
	h := 0
	stack := []int32{d.Root}
	depth[d.Root] = 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if int(depth[v]) > h {
			h = int(depth[v])
		}
		for _, c := range ch[v] {
			depth[c] = depth[v] + 1
			stack = append(stack, c)
		}
	}
	return h
}
