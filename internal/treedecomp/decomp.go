// Package treedecomp builds and validates tree decompositions.
//
// The paper consumes tree decompositions in two places: the bounded
// treewidth subgraph isomorphism DP of Section 3 (any valid decomposition
// works; the width enters the work bound as (τ+3)^{3k+1}), and the
// covering argument of Section 2 (bands of a BFS within a planar cluster
// have treewidth at most 3d). The paper obtains width-3d decompositions
// from a planar embedding via Baker/Eppstein; this package substitutes
// elimination-order heuristics (min-degree and min-fill-in), which produce
// *valid* decompositions of every graph and empirically small width on the
// bounded-diameter planar bands the cover produces — DESIGN.md discusses
// the substitution and the Figure 1 experiment measures the widths.
package treedecomp

import (
	"fmt"
	"slices"
	"sort"

	"planarsi/internal/graph"
)

// Decomposition is a rooted tree decomposition. Node i has bag Bags[i]
// (sorted ascending) and parent Parent[i] (-1 at the root).
type Decomposition struct {
	Bags   [][]int32
	Parent []int32
	Root   int32
}

// Width returns the width (max bag size - 1) of the decomposition.
func (d *Decomposition) Width() int {
	w := 0
	for _, b := range d.Bags {
		if len(b) > w {
			w = len(b)
		}
	}
	return w - 1
}

// NumNodes returns the number of decomposition tree nodes.
func (d *Decomposition) NumNodes() int { return len(d.Bags) }

// Children returns the children lists of each node.
func (d *Decomposition) Children() [][]int32 {
	ch := make([][]int32, len(d.Bags))
	for i, p := range d.Parent {
		if p >= 0 {
			ch[p] = append(ch[p], int32(i))
		}
	}
	return ch
}

// Heuristic selects the elimination-order heuristic.
type Heuristic int

const (
	// MinDegree eliminates a vertex of minimum current degree each step.
	MinDegree Heuristic = iota
	// MinFill eliminates a vertex whose elimination adds the fewest
	// fill-in edges each step (slower, often narrower).
	MinFill
)

// Build computes a tree decomposition of g with the given elimination
// heuristic. The classic construction: eliminate vertices one by one,
// record the bag {v} ∪ N(v) at elimination time, add fill-in edges among
// N(v), and attach v's bag to the bag of the earliest-eliminated vertex in
// N(v). Works on disconnected graphs (component roots are chained).
func Build(g *graph.Graph, h Heuristic) *Decomposition {
	n := g.N()
	if n == 0 {
		return &Decomposition{Bags: [][]int32{{}}, Parent: []int32{-1}, Root: 0}
	}
	// Dynamic adjacency as sorted sets (slices kept unique).
	adj := make([]map[int32]struct{}, n)
	for v := 0; v < n; v++ {
		adj[v] = make(map[int32]struct{}, g.Degree(int32(v)))
		for _, w := range g.Neighbors(int32(v)) {
			adj[v][w] = struct{}{}
		}
	}
	eliminated := make([]bool, n)
	pos := make([]int32, n)     // elimination position of each vertex
	nbrAt := make([][]int32, n) // neighbors at elimination time

	// Lazy bucket queue keyed by current degree: vertices are (re)pushed
	// whenever their degree changes; stale entries are skipped at pop
	// time. Amortized near-linear in the number of degree updates.
	buckets := make([][]int32, n+1)
	pushBucket := func(v int32) {
		d := len(adj[v])
		buckets[d] = append(buckets[d], v)
	}
	if h == MinDegree {
		for v := 0; v < n; v++ {
			pushBucket(int32(v))
		}
	}
	minBucket := 0
	pickMinDegree := func() int32 {
		if minBucket > 0 {
			// Fill-in can lower a degree by at most nothing, but edge
			// deletions lower neighbors' degrees by one; rewind a step.
			minBucket--
		}
		for {
			for minBucket <= n && len(buckets[minBucket]) == 0 {
				minBucket++
			}
			bkt := buckets[minBucket]
			v := bkt[len(bkt)-1]
			buckets[minBucket] = bkt[:len(bkt)-1]
			if !eliminated[v] && len(adj[v]) == minBucket {
				return v
			}
		}
	}
	fillIn := func(v int32) int {
		nbrs := make([]int32, 0, len(adj[v]))
		for w := range adj[v] {
			nbrs = append(nbrs, w)
		}
		count := 0
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				if _, ok := adj[nbrs[i]][nbrs[j]]; !ok {
					count++
				}
			}
		}
		return count
	}
	pickMinFill := func() int32 {
		best, bestFill := int32(-1), 1<<30
		for v := 0; v < n; v++ {
			if eliminated[v] {
				continue
			}
			if f := fillIn(int32(v)); f < bestFill {
				best, bestFill = int32(v), f
				if f == 0 {
					break
				}
			}
		}
		return best
	}

	for step := 0; step < n; step++ {
		var v int32
		switch h {
		case MinFill:
			v = pickMinFill()
		default:
			v = pickMinDegree()
		}
		eliminated[v] = true
		pos[v] = int32(step)
		nbrs := make([]int32, 0, len(adj[v]))
		for w := range adj[v] {
			nbrs = append(nbrs, w)
		}
		slices.Sort(nbrs) // no reflection Swapper: this runs once per eliminated vertex
		nbrAt[v] = nbrs
		// Fill in: neighbors become a clique.
		for i := 0; i < len(nbrs); i++ {
			delete(adj[nbrs[i]], v)
			for j := i + 1; j < len(nbrs); j++ {
				a, b := nbrs[i], nbrs[j]
				adj[a][b] = struct{}{}
				adj[b][a] = struct{}{}
			}
		}
		adj[v] = nil
		if h == MinDegree {
			// Degrees of the neighborhood changed; re-enqueue lazily.
			for _, w := range nbrs {
				pushBucket(w)
			}
		}
	}

	// Build the tree: node v (one per vertex) has bag {v} ∪ nbrAt[v];
	// parent = the earliest-eliminated vertex in nbrAt[v].
	bags := make([][]int32, n)
	parent := make([]int32, n)
	var roots []int32
	for v := 0; v < n; v++ {
		bag := append([]int32{int32(v)}, nbrAt[v]...)
		slices.Sort(bag)
		bags[v] = bag
		parent[v] = -1
		bestPos := int32(1 << 30)
		for _, w := range nbrAt[v] {
			if pos[w] > pos[int32(v)] && pos[w] < bestPos {
				bestPos = pos[w]
				parent[v] = w
			}
		}
		if parent[v] == -1 {
			roots = append(roots, int32(v))
		}
	}
	// Chain extra roots (disconnected graphs) under the first root; bags
	// of different components are disjoint so contiguity is unaffected.
	root := roots[0]
	for _, r := range roots[1:] {
		parent[r] = root
	}
	return &Decomposition{Bags: bags, Parent: parent, Root: root}
}

// Validate checks the three tree decomposition axioms for g:
// every vertex occurs in some bag, every edge occurs in some bag, and the
// bags containing each vertex form a connected subtree.
func Validate(g *graph.Graph, d *Decomposition) error {
	n := g.N()
	nodes := d.NumNodes()
	if nodes == 0 {
		return fmt.Errorf("decomposition has no nodes")
	}
	// Check rootedness/acyclicity: parent pointers must reach Root.
	seen := make([]int8, nodes)
	for i := 0; i < nodes; i++ {
		j := int32(i)
		var path []int32
		for seen[j] == 0 && d.Parent[j] >= 0 {
			seen[j] = 1
			path = append(path, j)
			j = d.Parent[j]
		}
		if d.Parent[j] < 0 && j != d.Root {
			return fmt.Errorf("node %d is a second root", j)
		}
		for _, p := range path {
			seen[p] = 2
		}
	}
	inBag := func(node int32, v int32) bool {
		b := d.Bags[node]
		i := sort.Search(len(b), func(i int) bool { return b[i] >= v })
		return i < len(b) && b[i] == v
	}
	// Occurrence lists per vertex.
	occ := make([][]int32, n)
	for i, b := range d.Bags {
		for _, v := range b {
			if v < 0 || int(v) >= n {
				return fmt.Errorf("bag %d contains out-of-range vertex %d", i, v)
			}
			occ[v] = append(occ[v], int32(i))
		}
	}
	for v := 0; v < n; v++ {
		if len(occ[v]) == 0 {
			return fmt.Errorf("vertex %d appears in no bag", v)
		}
	}
	// Edge coverage: for each edge, some bag contains both endpoints.
	for _, e := range g.Edges() {
		u, v := e[0], e[1]
		short := occ[u]
		if len(occ[v]) < len(short) {
			short = occ[v]
		}
		found := false
		for _, node := range short {
			if inBag(node, u) && inBag(node, v) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("edge (%d,%d) not covered by any bag", u, v)
		}
	}
	// Contiguity: occurrences of v form a connected subtree. Walk from
	// each occurrence toward the root while staying in bags with v; all
	// occurrences must converge to one top node.
	for v := 0; v < n; v++ {
		top := make(map[int32]struct{})
		for _, node := range occ[v] {
			j := node
			for d.Parent[j] >= 0 && inBag(d.Parent[j], int32(v)) {
				j = d.Parent[j]
			}
			top[j] = struct{}{}
		}
		if len(top) != 1 {
			return fmt.Errorf("vertex %d occurs in %d disjoint subtrees", v, len(top))
		}
	}
	return nil
}
