package treedecomp

import (
	"math/rand/v2"
	"testing"

	"planarsi/internal/graph"
)

func randomGraph(n, extra int, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(int32(v), int32(rng.IntN(v)))
	}
	for e := 0; e < extra; e++ {
		u := rng.Int32N(int32(n))
		v := rng.Int32N(int32(n))
		if u != v && !b.HasEdge(u, v) {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

func TestBuildValidOnFamilies(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	cases := map[string]*graph.Graph{
		"path":       graph.Path(20),
		"cycle":      graph.Cycle(17),
		"star":       graph.Star(12),
		"grid":       graph.Grid(6, 7),
		"tree":       graph.RandomTree(40, rng),
		"apollonian": graph.Apollonian(50, rng),
		"k4":         graph.Complete(4),
		"planar":     graph.RandomPlanar(80, 0.6, rng),
		"octahedron": graph.Octahedron(),
		"single":     graph.Path(1),
		"disjoint":   graph.DisjointUnion(graph.Cycle(4), graph.Path(3)),
	}
	for name, g := range cases {
		for _, h := range []Heuristic{MinDegree, MinFill} {
			d := Build(g, h)
			if err := Validate(g, d); err != nil {
				t.Errorf("%s (heuristic %d): %v", name, h, err)
			}
		}
	}
}

func TestKnownWidths(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	if w := Build(graph.Path(30), MinDegree).Width(); w != 1 {
		t.Errorf("path width=%d want 1", w)
	}
	if w := Build(graph.RandomTree(50, rng), MinDegree).Width(); w != 1 {
		t.Errorf("tree width=%d want 1", w)
	}
	if w := Build(graph.Cycle(25), MinDegree).Width(); w != 2 {
		t.Errorf("cycle width=%d want 2", w)
	}
	if w := Build(graph.Complete(4), MinDegree).Width(); w != 3 {
		t.Errorf("K4 width=%d want 3", w)
	}
	// Grid r x c has treewidth min(r,c); min-degree stays close.
	if w := Build(graph.Grid(4, 12), MinDegree).Width(); w < 4 || w > 8 {
		t.Errorf("4x12 grid width=%d want in [4,8]", w)
	}
}

func TestValidateCatchesBrokenDecompositions(t *testing.T) {
	g := graph.Cycle(5)
	d := Build(g, MinDegree)
	// Remove a vertex from every bag: breaks vertex or edge coverage.
	broken := &Decomposition{Bags: make([][]int32, len(d.Bags)), Parent: d.Parent, Root: d.Root}
	for i, b := range d.Bags {
		var nb []int32
		for _, v := range b {
			if v != 3 {
				nb = append(nb, v)
			}
		}
		broken.Bags[i] = nb
	}
	if Validate(g, broken) == nil {
		t.Fatal("expected validation failure for missing vertex")
	}
	// Break contiguity: duplicate a vertex into a far-away bag.
	d2 := Build(graph.Path(10), MinDegree)
	bags := make([][]int32, len(d2.Bags))
	copy(bags, d2.Bags)
	broken2 := &Decomposition{Bags: bags, Parent: d2.Parent, Root: d2.Root}
	// Find a bag not containing 0 and not adjacent to one that does.
	for i := range broken2.Bags {
		has0 := false
		for _, v := range broken2.Bags[i] {
			if v == 0 {
				has0 = true
			}
		}
		if !has0 && broken2.Parent[i] >= 0 {
			p := broken2.Parent[i]
			hasP := false
			for _, v := range broken2.Bags[p] {
				if v == 0 {
					hasP = true
				}
			}
			if !hasP {
				nb := append([]int32{0}, broken2.Bags[i]...)
				broken2.Bags[i] = nb
				if Validate(graph.Path(10), broken2) == nil {
					t.Fatal("expected contiguity failure")
				}
				return
			}
		}
	}
	t.Skip("no suitable bag found to break contiguity")
}

func TestMakeNiceValid(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	cases := []*graph.Graph{
		graph.Path(15),
		graph.Cycle(12),
		graph.Grid(5, 5),
		graph.Apollonian(40, rng),
		graph.RandomPlanar(60, 0.5, rng),
		graph.Path(1),
		graph.DisjointUnion(graph.Cycle(4), graph.Cycle(5)),
	}
	for i, g := range cases {
		d := Build(g, MinDegree)
		nd := MakeNice(d)
		if err := ValidateNice(nd); err != nil {
			t.Errorf("case %d: nice invalid: %v", i, err)
			continue
		}
		// The nice tree is still a valid tree decomposition of g.
		if err := Validate(g, nd.ToDecomposition()); err != nil {
			t.Errorf("case %d: nice fails axioms: %v", i, err)
		}
		if nd.Width != d.Width() {
			t.Errorf("case %d: nice width %d != original %d", i, nd.Width, d.Width())
		}
	}
}

func TestMakeNiceJoinsForBranchyTrees(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	g := graph.Star(20)
	nd := MakeNice(Build(g, MinDegree))
	joins := 0
	for _, k := range nd.Kind {
		if k == Join {
			joins++
		}
	}
	if joins == 0 {
		t.Error("star decomposition should need join nodes")
	}
	_ = rng
}

// Property: on many random graphs, both heuristics produce valid nice
// decompositions whose every graph edge appears in some bag of the nice
// tree (spot-checking the conversion preserved coverage).
func TestRandomGraphsNiceQuick(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(3+rng.IntN(40), rng.IntN(30), rng)
		d := Build(g, MinDegree)
		if err := Validate(g, d); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		nd := MakeNice(d)
		if err := ValidateNice(nd); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := Validate(g, nd.ToDecomposition()); err != nil {
			t.Fatalf("trial %d nice axioms: %v", trial, err)
		}
	}
}

func TestSlot(t *testing.T) {
	g := graph.Cycle(6)
	nd := MakeNice(Build(g, MinDegree))
	for i := 0; i < nd.NumNodes(); i++ {
		for s, v := range nd.Bag[i] {
			if nd.Slot(int32(i), v) != s {
				t.Fatalf("Slot(%d,%d) wrong", i, v)
			}
		}
		if nd.Slot(int32(i), 99) != -1 {
			t.Fatal("Slot should return -1 for absent vertex")
		}
	}
}

func TestWidthNeverBelowClique(t *testing.T) {
	// Width of any decomposition is at least clique size - 1.
	for n := 2; n <= 4; n++ {
		if w := Build(graph.Complete(n), MinDegree).Width(); w < n-1 {
			t.Errorf("K%d width %d below %d", n, w, n-1)
		}
	}
}
