package treedecomp

import (
	"math"
	"math/rand/v2"
	"testing"

	"planarsi/internal/graph"
)

func TestBalanceValidOnFamilies(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	cases := []*graph.Graph{
		graph.Path(64),
		graph.Cycle(50),
		graph.Grid(8, 8),
		graph.RandomPlanar(120, 0.6, rng),
		graph.Apollonian(80, rng),
		graph.Star(20),
	}
	for i, g := range cases {
		d := Build(g, MinDegree)
		bal := Balance(d)
		if err := Validate(g, bal); err != nil {
			t.Fatalf("case %d: balanced decomposition invalid: %v", i, err)
		}
	}
}

func TestBalanceWidthBound(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 34))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomPlanar(30+rng.IntN(120), rng.Float64(), rng)
		d := Build(g, MinDegree)
		bal := Balance(d)
		if bal.Width() > 3*d.Width()+2 {
			t.Fatalf("trial %d: balanced width %d exceeds 3w+2 = %d",
				trial, bal.Width(), 3*d.Width()+2)
		}
	}
}

func TestBalanceHeightLogarithmic(t *testing.T) {
	// Path graphs give path-shaped decompositions: the worst case for
	// height, the best showcase for balancing.
	for _, n := range []int{64, 256, 1024, 4096} {
		g := graph.Path(n)
		d := Build(g, MinDegree)
		bal := Balance(d)
		if err := Validate(g, bal); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		bound := int(3*math.Log2(float64(n))) + 6
		if h := bal.Height(); h > bound {
			t.Fatalf("n=%d: balanced height %d exceeds ~3·lg n = %d (original %d)",
				n, h, bound, d.Height())
		}
		if d.Height() < n/2 {
			t.Fatalf("n=%d: expected a deep original decomposition, got %d", n, d.Height())
		}
	}
}

func TestBalanceTinyInputs(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Path(1), graph.Path(2), graph.Cycle(3)} {
		d := Build(g, MinDegree)
		bal := Balance(d)
		if err := Validate(g, bal); err != nil {
			t.Fatalf("%v: %v", g, err)
		}
	}
}

func TestBalancedNiceStillDecides(t *testing.T) {
	// End-to-end: a nice decomposition derived from the balanced tree
	// must still satisfy ValidateNice and keep the root bag empty.
	g := graph.Grid(6, 6)
	bal := Balance(Build(g, MinDegree))
	nd := MakeNice(bal)
	if err := ValidateNice(nd); err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, nd.ToDecomposition()); err != nil {
		t.Fatal(err)
	}
}

func TestHeight(t *testing.T) {
	// A 3-node path decomposition: root -> child -> grandchild.
	d := &Decomposition{
		Bags:   [][]int32{{0}, {0}, {0}},
		Parent: []int32{-1, 0, 1},
		Root:   0,
	}
	if h := d.Height(); h != 3 {
		t.Fatalf("height = %d, want 3", h)
	}
}
