package treedecomp

import (
	"fmt"
	"sort"
)

// NodeKind labels the four node types of a nice tree decomposition.
type NodeKind uint8

const (
	// Leaf nodes have an empty bag and no children.
	Leaf NodeKind = iota
	// Introduce nodes add one vertex to their single child's bag.
	Introduce
	// Forget nodes remove one vertex from their single child's bag.
	Forget
	// Join nodes have two children with identical bags (equal to theirs).
	Join
)

func (k NodeKind) String() string {
	switch k {
	case Leaf:
		return "leaf"
	case Introduce:
		return "introduce"
	case Forget:
		return "forget"
	case Join:
		return "join"
	}
	return "?"
}

// Nice is a nice tree decomposition: a binary decomposition tree whose
// nodes are leaves, introduces, forgets and joins. The root has an empty
// bag (everything is forgotten at the top), which makes the DP acceptance
// condition of Section 3 a single state lookup.
//
// This is the binary decomposition tree the paper's Section 3 machinery
// runs on: the unary chains (introduce/forget) are exactly the "paths" of
// Section 3.3.1, and the transitions that do not match a new pattern
// vertex are deterministic along them, giving the forest of Figure 5.
type Nice struct {
	Kind   []NodeKind
	Vertex []int32   // introduced/forgotten vertex, -1 otherwise
	Bag    [][]int32 // sorted ascending
	Left   []int32   // child (unary nodes use Left), -1 if none
	Right  []int32   // second child of joins, -1 otherwise
	Parent []int32
	Root   int32
	Order  []int32 // topological order, children before parents
	Width  int
}

// NumNodes returns the node count.
func (nd *Nice) NumNodes() int { return len(nd.Kind) }

// MemBytes returns the approximate heap footprint of the decomposition in
// bytes (cache accounting for the serving layer's memory budget).
func (nd *Nice) MemBytes() int64 {
	b := int64(cap(nd.Kind)) +
		4*int64(cap(nd.Vertex)+cap(nd.Left)+cap(nd.Right)+cap(nd.Parent)+cap(nd.Order))
	for _, bag := range nd.Bag {
		b += 4 * int64(cap(bag))
	}
	return b
}

// Slot returns the index of v in the sorted bag of node i, or -1.
func (nd *Nice) Slot(i int32, v int32) int {
	b := nd.Bag[i]
	j := sort.Search(len(b), func(j int) bool { return b[j] >= v })
	if j < len(b) && b[j] == v {
		return j
	}
	return -1
}

// niceBuilder accumulates nodes.
type niceBuilder struct {
	kind   []NodeKind
	vertex []int32
	bag    [][]int32
	left   []int32
	right  []int32
}

func (b *niceBuilder) add(k NodeKind, v int32, bag []int32, left, right int32) int32 {
	id := int32(len(b.kind))
	b.kind = append(b.kind, k)
	b.vertex = append(b.vertex, v)
	b.bag = append(b.bag, bag)
	b.left = append(b.left, left)
	b.right = append(b.right, right)
	return id
}

// chain builds the forget/introduce chain transforming bag `from` (top of
// subtree `below`) into bag `to`, returning the new top node. Both bags
// must be sorted.
func (b *niceBuilder) chain(below int32, from, to []int32) int32 {
	cur := below
	curBag := from
	// Forget vertices in from \ to.
	for _, v := range diffSorted(from, to) {
		curBag = removeSorted(curBag, v)
		cur = b.add(Forget, v, curBag, cur, -1)
	}
	// Introduce vertices in to \ from.
	for _, v := range diffSorted(to, from) {
		curBag = insertSorted(curBag, v)
		cur = b.add(Introduce, v, curBag, cur, -1)
	}
	return cur
}

// leafChain builds Leaf -> introduce* up to the given bag.
func (b *niceBuilder) leafChain(bag []int32) int32 {
	cur := b.add(Leaf, -1, []int32{}, -1, -1)
	curBag := []int32{}
	for _, v := range bag {
		curBag = insertSorted(curBag, v)
		cur = b.add(Introduce, v, curBag, cur, -1)
	}
	return cur
}

func diffSorted(a, bSet []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) {
		switch {
		case j >= len(bSet) || a[i] < bSet[j]:
			out = append(out, a[i])
			i++
		case a[i] == bSet[j]:
			i++
			j++
		default:
			j++
		}
	}
	return out
}

func removeSorted(a []int32, v int32) []int32 {
	out := make([]int32, 0, len(a)-1)
	for _, x := range a {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

func insertSorted(a []int32, v int32) []int32 {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	out := make([]int32, 0, len(a)+1)
	out = append(out, a[:i]...)
	out = append(out, v)
	out = append(out, a[i:]...)
	return out
}

// MakeNice converts a rooted tree decomposition into a nice one whose root
// bag is empty. The width is unchanged; the node count grows to O(n·w).
func MakeNice(d *Decomposition) *Nice {
	children := d.Children()
	b := &niceBuilder{}

	// Convert each original node bottom-up (explicit stack to avoid
	// recursion depth limits on path-like decompositions).
	type frame struct {
		node  int32
		stage int
	}
	top := make([]int32, d.NumNodes()) // top nice node of each subtree
	stack := []frame{{d.Root, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		node := f.node
		if f.stage == 0 {
			f.stage = 1
			for _, c := range children[node] {
				stack = append(stack, frame{c, 0})
			}
			continue
		}
		stack = stack[:len(stack)-1]
		bag := d.Bags[node]
		ch := children[node]
		switch len(ch) {
		case 0:
			top[node] = b.leafChain(bag)
		case 1:
			top[node] = b.chain(top[ch[0]], d.Bags[ch[0]], bag)
		default:
			// Adapt each child to this bag, then fold with joins.
			cur := b.chain(top[ch[0]], d.Bags[ch[0]], bag)
			for _, c := range ch[1:] {
				right := b.chain(top[c], d.Bags[c], bag)
				cur = b.add(Join, -1, bag, cur, right)
			}
			top[node] = cur
		}
	}
	// Forget the root bag down to empty.
	root := b.chain(top[d.Root], d.Bags[d.Root], []int32{})

	nd := &Nice{
		Kind:   b.kind,
		Vertex: b.vertex,
		Bag:    b.bag,
		Left:   b.left,
		Right:  b.right,
		Root:   root,
	}
	nd.Parent = make([]int32, nd.NumNodes())
	for i := range nd.Parent {
		nd.Parent[i] = -1
	}
	for i := 0; i < nd.NumNodes(); i++ {
		if nd.Left[i] >= 0 {
			nd.Parent[nd.Left[i]] = int32(i)
		}
		if nd.Right[i] >= 0 {
			nd.Parent[nd.Right[i]] = int32(i)
		}
	}
	// Builder emits children before parents, so identity is a topological
	// order already; record it explicitly for consumers.
	nd.Order = make([]int32, nd.NumNodes())
	for i := range nd.Order {
		nd.Order[i] = int32(i)
	}
	w := 0
	for _, bag := range nd.Bag {
		if len(bag) > w {
			w = len(bag)
		}
	}
	nd.Width = w - 1
	return nd
}

// CheckBounds validates the index ranges of a nice decomposition over an
// n-vertex graph: parallel arrays of equal length, kinds in range, child
// and parent links in [-1, NumNodes), a valid root, Order a permutation
// range, bag entries strictly ascending vertices of [0, n), and Width
// matching the widest bag. It is the cheap first gate for decompositions
// decoded from untrusted snapshots — after it passes, ValidateNice can
// check the kind-specific invariants without ever indexing out of
// bounds.
func (nd *Nice) CheckBounds(n int) error {
	nodes := len(nd.Kind)
	if nodes == 0 {
		return fmt.Errorf("treedecomp: empty nice decomposition")
	}
	if len(nd.Vertex) != nodes || len(nd.Bag) != nodes || len(nd.Left) != nodes ||
		len(nd.Right) != nodes || len(nd.Parent) != nodes || len(nd.Order) != nodes {
		return fmt.Errorf("treedecomp: parallel arrays disagree on node count")
	}
	if nd.Root < 0 || int(nd.Root) >= nodes {
		return fmt.Errorf("treedecomp: root %d outside [0, %d)", nd.Root, nodes)
	}
	width := 0
	for i := 0; i < nodes; i++ {
		if nd.Kind[i] > Join {
			return fmt.Errorf("treedecomp: node %d has unknown kind %d", i, nd.Kind[i])
		}
		if v := nd.Vertex[i]; v < -1 || int(v) >= n {
			return fmt.Errorf("treedecomp: node %d vertex %d outside [-1, %d)", i, v, n)
		}
		for _, link := range [3]int32{nd.Left[i], nd.Right[i], nd.Parent[i]} {
			if link < -1 || int(link) >= nodes {
				return fmt.Errorf("treedecomp: node %d link %d outside [-1, %d)", i, link, nodes)
			}
		}
		if o := nd.Order[i]; o < 0 || int(o) >= nodes {
			return fmt.Errorf("treedecomp: order entry %d outside [0, %d)", o, nodes)
		}
		bag := nd.Bag[i]
		if len(bag) > width {
			width = len(bag)
		}
		for j, v := range bag {
			if v < 0 || int(v) >= n {
				return fmt.Errorf("treedecomp: node %d bag vertex %d outside [0, %d)", i, v, n)
			}
			if j > 0 && bag[j-1] >= v {
				return fmt.Errorf("treedecomp: node %d bag not strictly ascending", i)
			}
		}
	}
	if nd.Width != width-1 {
		return fmt.Errorf("treedecomp: declared width %d, widest bag implies %d", nd.Width, width-1)
	}
	return nil
}

// ValidateNice checks the structural invariants of a nice decomposition.
func ValidateNice(nd *Nice) error {
	n := nd.NumNodes()
	if n == 0 {
		return fmt.Errorf("empty nice decomposition")
	}
	if len(nd.Bag[nd.Root]) != 0 {
		return fmt.Errorf("root bag not empty")
	}
	for i := 0; i < n; i++ {
		bag := nd.Bag[i]
		for j := 1; j < len(bag); j++ {
			if bag[j-1] >= bag[j] {
				return fmt.Errorf("node %d: bag not sorted/unique", i)
			}
		}
		switch nd.Kind[i] {
		case Leaf:
			if len(bag) != 0 || nd.Left[i] >= 0 || nd.Right[i] >= 0 {
				return fmt.Errorf("node %d: malformed leaf", i)
			}
		case Introduce:
			c := nd.Left[i]
			if c < 0 || nd.Right[i] >= 0 {
				return fmt.Errorf("node %d: introduce needs one child", i)
			}
			want := insertSorted(nd.Bag[c], nd.Vertex[i])
			if !equalSlices(want, bag) || nd.Slot(c, nd.Vertex[i]) >= 0 {
				return fmt.Errorf("node %d: introduce bag mismatch", i)
			}
		case Forget:
			c := nd.Left[i]
			if c < 0 || nd.Right[i] >= 0 {
				return fmt.Errorf("node %d: forget needs one child", i)
			}
			want := removeSorted(nd.Bag[c], nd.Vertex[i])
			if !equalSlices(want, bag) || nd.Slot(c, nd.Vertex[i]) < 0 {
				return fmt.Errorf("node %d: forget bag mismatch", i)
			}
		case Join:
			l, r := nd.Left[i], nd.Right[i]
			if l < 0 || r < 0 {
				return fmt.Errorf("node %d: join needs two children", i)
			}
			if !equalSlices(nd.Bag[l], bag) || !equalSlices(nd.Bag[r], bag) {
				return fmt.Errorf("node %d: join bags differ", i)
			}
		}
	}
	// Topological order sanity: children precede parents.
	seen := make([]bool, n)
	for _, i := range nd.Order {
		if nd.Left[i] >= 0 && !seen[nd.Left[i]] {
			return fmt.Errorf("order violates child-before-parent at %d", i)
		}
		if nd.Right[i] >= 0 && !seen[nd.Right[i]] {
			return fmt.Errorf("order violates child-before-parent at %d", i)
		}
		seen[i] = true
	}
	return nil
}

func equalSlices(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ToDecomposition converts a Nice back into a plain Decomposition (used by
// Validate to check the axioms of the nice tree against the graph).
func (nd *Nice) ToDecomposition() *Decomposition {
	return &Decomposition{Bags: nd.Bag, Parent: nd.Parent, Root: nd.Root}
}
