package fault

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisabledByDefault(t *testing.T) {
	Disable()
	if Active() {
		t.Fatal("active with no plan")
	}
	if Fire(DPPanic) {
		t.Fatal("fired with no plan")
	}
	if err := Err(SnapshotWrite); err != nil {
		t.Fatalf("Err = %v with no plan", err)
	}
	Check(QueryPanic) // must not panic
	Sleep(BandLatency)
	if Stats() != nil {
		t.Fatal("Stats non-nil with no plan")
	}
}

func TestSpecParsing(t *testing.T) {
	defer Disable()
	bad := []string{
		"nope=first:1",          // unknown site
		"dp.panic=first:0",      // zero count
		"dp.panic=first:x",      // not a number
		"dp.panic=p:1.5",        // probability out of range
		"dp.panic=dur:banana",   // bad duration
		"dp.panic=wat:1",        // unknown rule
		"dp.panic=1,dp.panic=2", // duplicate site (both also bad rules)
		",",                     // no sites at all
	}
	for _, spec := range bad {
		if err := Enable(spec, 1); err == nil {
			t.Errorf("Enable(%q) accepted", spec)
		}
	}
	if err := Enable("dp.panic=first:2;after:1, snapshot.write , band.latency=dur:5ms", 1); err != nil {
		t.Fatalf("Enable: %v", err)
	}
	if !Active() || Describe() == "" {
		t.Fatal("plan not active after Enable")
	}
	if err := Enable("", 1); err != nil {
		t.Fatalf("Enable(empty): %v", err)
	}
	if Active() {
		t.Fatal("empty spec should disable")
	}
}

func TestFirstAfterEvery(t *testing.T) {
	defer Disable()
	if err := Enable("dp.panic=first:2;after:1", 1); err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, true, false, false}
	for i, w := range want {
		if got := Fire(DPPanic); got != w {
			t.Fatalf("hit %d: fired=%v want %v", i+1, got, w)
		}
	}

	if err := Enable("dp.panic=every:3", 1); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 9; i++ {
		if got, w := Fire(DPPanic), i%3 == 0; got != w {
			t.Fatalf("every:3 hit %d: fired=%v want %v", i, got, w)
		}
	}
}

func TestBareSiteAlwaysFires(t *testing.T) {
	defer Disable()
	if err := Enable("snapshot.write", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		err := Err(SnapshotWrite)
		if err == nil || !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: Err = %v, want injected", i+1, err)
		}
	}
	// A site not in the plan never fires.
	if Fire(DPPanic) {
		t.Fatal("unlisted site fired")
	}
}

func TestProbabilityDeterministic(t *testing.T) {
	defer Disable()
	seq := func(seed uint64) []bool {
		if err := Enable("dp.panic=p:0.5", seed); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			out[i] = Fire(DPPanic)
		}
		return out
	}
	a, b := seq(7), seq(7)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs across identical seeds", i+1)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p:0.5 fired %d/%d — not probabilistic", fired, len(a))
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical firing sequence")
	}
}

func TestCheckPanicsWithSiteValue(t *testing.T) {
	defer Disable()
	if err := Enable("query.panic=first:1", 1); err != nil {
		t.Fatal(err)
	}
	defer func() {
		v := recover()
		ip, ok := v.(*InjectedPanic)
		if !ok {
			t.Fatalf("recovered %T, want *InjectedPanic", v)
		}
		if ip.Site != QueryPanic || ip.Hit != 1 {
			t.Fatalf("panic payload = %+v", ip)
		}
	}()
	Check(QueryPanic)
	t.Fatal("Check did not panic")
}

func TestSleepDuration(t *testing.T) {
	defer Disable()
	if err := Enable("band.latency=first:1;dur:20ms", 1); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	Sleep(BandLatency)
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("slept %v, want ~20ms", d)
	}
	start = time.Now()
	Sleep(BandLatency) // first:1 exhausted
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("slept %v after rule exhausted", d)
	}
}

func TestStatsAndConcurrency(t *testing.T) {
	defer Disable()
	if err := Enable("dp.panic=every:2", 1); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				Fire(DPPanic)
			}
		}()
	}
	wg.Wait()
	st := Stats()
	if len(st) != 1 || st[0].Site != DPPanic {
		t.Fatalf("Stats = %+v", st)
	}
	if st[0].Hits != 800 || st[0].Fired != 400 {
		t.Fatalf("hits=%d fired=%d, want 800/400", st[0].Hits, st[0].Fired)
	}
}
