// Package fault is a deterministic, seeded fault-injection registry.
//
// Production code declares named *sites* — places where a fault could
// plausibly occur (a snapshot write, a band dynamic program, a batch
// flush timer) — by calling one of the probe helpers (Err, Check,
// Sleep, Fire). With no plan enabled every probe is a single atomic
// pointer load that returns "no fault"; the daemon pays nothing for
// carrying the hooks.
//
// A plan is enabled from a spec string (the `planarsid -fault` flag):
//
//	site=rule[;rule][,site=rule...]
//
// where each rule is one of
//
//	first:N   fire on the first N hits (after any `after` offset)
//	every:N   fire on every Nth hit
//	after:N   skip the first N hits before the other rules apply
//	p:F       fire with probability F, derived deterministically from
//	          (seed, site, hit) — same seed, same firing sequence
//	dur:D     duration parameter for latency sites (e.g. 5ms)
//
// Rules within one site AND together. A bare `site` with no rules fires
// on every hit. Hit counters are per-site and reset when a new plan is
// enabled, so a scripted fault sequence is fully reproducible: the Nth
// probe of a site fires or not regardless of scheduling.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Site names one injection point. Sites are registered in knownSites;
// Enable rejects specs naming unknown sites so a typo in -fault fails
// loudly at boot instead of silently never firing.
type Site string

const (
	// QueryPanic panics one query at the index boundary (one hit per
	// scanned pattern / direct query). The panic starts on whatever
	// goroutine runs the query body — a pool worker under Scan.
	QueryPanic Site = "query.panic"
	// DPPanic panics inside a band dynamic program, on a pool worker,
	// mid-solve (one hit per band attempted).
	DPPanic Site = "dp.panic"
	// BandLatency sleeps for the rule's dur before each band dynamic
	// program (one hit per band attempted).
	BandLatency Site = "band.latency"
	// BatchTimerDrop drops one micro-batch flush: the group re-arms its
	// timer, so the batch dispatches a window late instead of never.
	BatchTimerDrop Site = "batch.timer.drop"
	// SnapshotWrite fails a snapshot save with an injected I/O error.
	SnapshotWrite Site = "snapshot.write"
	// SnapshotRead fails a snapshot restore with an injected I/O error.
	SnapshotRead Site = "snapshot.read"
)

var knownSites = map[Site]bool{
	QueryPanic:     true,
	DPPanic:        true,
	BandLatency:    true,
	BatchTimerDrop: true,
	SnapshotWrite:  true,
	SnapshotRead:   true,
}

// Sites returns the registered site names, sorted, for -fault usage text.
func Sites() []string {
	out := make([]string, 0, len(knownSites))
	for s := range knownSites {
		out = append(out, string(s))
	}
	sort.Strings(out)
	return out
}

type rule struct {
	after uint64
	first uint64 // 0 = no first-N bound
	every uint64 // 0/1 = every hit
	p     float64
	pSet  bool
	dur   time.Duration
}

func (r rule) fires(seed uint64, site Site, hit uint64) bool {
	if hit <= r.after {
		return false
	}
	n := hit - r.after
	if r.first > 0 && n > r.first {
		return false
	}
	if r.every > 1 && n%r.every != 0 {
		return false
	}
	if r.pSet && u01(seed, site, hit) >= r.p {
		return false
	}
	return true
}

type siteState struct {
	rule  rule
	hits  atomic.Uint64
	fired atomic.Uint64
}

type plan struct {
	seed  uint64
	spec  string
	sites map[Site]*siteState
}

var active atomic.Pointer[plan]

// Enable parses spec and installs it as the active plan, replacing any
// previous plan and resetting all hit counters. An empty spec disables
// injection (same as Disable).
func Enable(spec string, seed uint64) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		Disable()
		return nil
	}
	p := &plan{seed: seed, spec: spec, sites: make(map[Site]*siteState)}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rules, _ := strings.Cut(entry, "=")
		site := Site(strings.TrimSpace(name))
		if !knownSites[site] {
			return fmt.Errorf("fault: unknown site %q (known: %s)", site, strings.Join(Sites(), " "))
		}
		if _, dup := p.sites[site]; dup {
			return fmt.Errorf("fault: site %q specified twice", site)
		}
		r, err := parseRules(rules)
		if err != nil {
			return fmt.Errorf("fault: site %q: %w", site, err)
		}
		p.sites[site] = &siteState{rule: r}
	}
	if len(p.sites) == 0 {
		return fmt.Errorf("fault: empty spec %q", spec)
	}
	active.Store(p)
	return nil
}

func parseRules(s string) (rule, error) {
	var r rule
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, _ := strings.Cut(part, ":")
		switch key {
		case "first", "every", "after":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil || n == 0 && key != "after" {
				return r, fmt.Errorf("bad %s:%q (want positive integer)", key, val)
			}
			switch key {
			case "first":
				r.first = n
			case "every":
				r.every = n
			case "after":
				r.after = n
			}
		case "p":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return r, fmt.Errorf("bad p:%q (want 0..1)", val)
			}
			r.p, r.pSet = f, true
		case "dur":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return r, fmt.Errorf("bad dur:%q (want duration)", val)
			}
			r.dur = d
		default:
			return r, fmt.Errorf("unknown rule %q", part)
		}
	}
	return r, nil
}

// Disable removes the active plan; every probe becomes a no-op again.
func Disable() { active.Store(nil) }

// Active reports whether a plan is installed.
func Active() bool { return active.Load() != nil }

// Describe returns the active spec for boot-time logging, or "".
func Describe() string {
	if p := active.Load(); p != nil {
		return p.spec
	}
	return ""
}

// Fire records a hit at site and reports whether the fault fires. This
// is the raw probe; most call sites want Err, Check or Sleep instead.
func Fire(site Site) bool {
	fires, _ := fire(site)
	return fires
}

func fire(site Site) (bool, *siteState) {
	p := active.Load()
	if p == nil {
		return false, nil
	}
	st := p.sites[site]
	if st == nil {
		return false, nil
	}
	hit := st.hits.Add(1)
	if !st.rule.fires(p.seed, site, hit) {
		return false, st
	}
	st.fired.Add(1)
	return true, st
}

// ErrInjected is the sentinel wrapped by every injected error, for
// errors.Is at recovery boundaries.
var ErrInjected = fmt.Errorf("fault: injected")

// InjectedError is the error returned by Err when a site fires.
type InjectedError struct {
	Site Site
	Hit  uint64
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("fault: injected error at %s (hit %d)", e.Site, e.Hit)
}

func (e *InjectedError) Unwrap() error { return ErrInjected }

// Err returns an *InjectedError when site fires, nil otherwise.
func Err(site Site) error {
	fires, st := fire(site)
	if !fires {
		return nil
	}
	return &InjectedError{Site: site, Hit: st.hits.Load()}
}

// InjectedPanic is the value Check panics with when a site fires.
type InjectedPanic struct {
	Site Site
	Hit  uint64
}

func (e *InjectedPanic) Error() string {
	return fmt.Sprintf("fault: injected panic at %s (hit %d)", e.Site, e.Hit)
}

// Check panics with an *InjectedPanic when site fires.
func Check(site Site) {
	if fires, st := fire(site); fires {
		panic(&InjectedPanic{Site: site, Hit: st.hits.Load()})
	}
}

// Sleep blocks for the site's dur rule when the site fires (default
// 1ms when the spec gave no dur).
func Sleep(site Site) {
	fires, st := fire(site)
	if !fires {
		return
	}
	d := st.rule.dur
	if d <= 0 {
		d = time.Millisecond
	}
	time.Sleep(d)
}

// SiteStats is one row of Stats.
type SiteStats struct {
	Site  Site
	Hits  uint64
	Fired uint64
}

// Stats snapshots per-site hit/fired counters of the active plan,
// sorted by site name. Nil when no plan is installed.
func Stats() []SiteStats {
	p := active.Load()
	if p == nil {
		return nil
	}
	out := make([]SiteStats, 0, len(p.sites))
	for s, st := range p.sites {
		out = append(out, SiteStats{Site: s, Hits: st.hits.Load(), Fired: st.fired.Load()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// u01 maps (seed, site, hit) to [0,1) via splitmix64 — deterministic
// across runs and independent of goroutine scheduling.
func u01(seed uint64, site Site, hit uint64) float64 {
	x := seed ^ fnv64(string(site)) + hit*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
