// Package cover implements the Parallel Treewidth k-d Cover of Section
// 2.1 (Theorem 2.4) and its separating variant from Section 5.2.1.
//
// Given the Exponential Start Time clustering, every cluster is searched
// by a parallel BFS from its center; band i of a cluster is the subgraph
// induced by the vertices at BFS levels i through i+d. Theorem 2.4
// guarantees (for planar targets) that each band has treewidth at most
// 3d, each vertex lies in at most d+1 bands, and a fixed occurrence of a
// connected k-vertex pattern of diameter d survives — lands entirely
// inside one band — with probability at least 1/2.
//
// The separating variant produces minors instead of induced subgraphs:
// everything outside the cluster is contracted per connected component of
// the cluster's complement, and within the cluster the components left
// after removing a band are contracted too. Merged vertices inherit the
// S-membership of their class and are excluded from the allowed set, so
// an S-separating occurrence inside the band remains S-separating in the
// minor (Figure 7). Relative to the paper — which merges each neighboring
// cluster into one vertex — contracting the components of the cluster's
// complement is the same operation done exactly: contraction classes are
// connected, so the connectivity structure of G minus any band subset is
// preserved exactly.
package cover

import (
	"fmt"
	"math/rand/v2"
	"slices"

	"planarsi/internal/bfs"
	"planarsi/internal/estc"
	"planarsi/internal/graph"
	"planarsi/internal/par"
	"planarsi/internal/wd"
)

// Band is one element of a k-d cover: an induced subgraph (or minor, for
// separating covers) of the target graph.
type Band struct {
	// G is the band graph with local vertex ids.
	G *graph.Graph
	// Orig maps local ids to original target ids; merged minor vertices
	// map to -1.
	Orig []int32
	// Cluster and Level identify the band (BFS levels [Level, Level+d]
	// of that cluster).
	Cluster int32
	Level   int32
	// Allowed marks local vertices usable as pattern images (always true
	// for plain covers; false on merged vertices of separating covers).
	Allowed []bool
	// S marks local vertices in the terminal set (separating covers).
	S []bool
	// LowestLevelLocal lists the local ids at BFS level == Level: the
	// listing algorithm only reports occurrences touching the lowest
	// band level, so each occurrence is counted once per cluster
	// (Section 4.2.1).
	LowestLevelLocal []bool
}

// Validate checks the band's invariants against an n-vertex target: the
// Orig map covers every band vertex with target ids (or -1 for merged
// minor vertices) and the optional per-vertex marks have the band's
// size. Snapshot decoding calls it so a band restored from an untrusted
// file can never index out of the target's arrays.
func (b *Band) Validate(n int) error {
	if b.G == nil {
		return fmt.Errorf("cover: band without a graph")
	}
	bn := b.G.N()
	if len(b.Orig) != bn {
		return fmt.Errorf("cover: %d Orig entries for %d band vertices", len(b.Orig), bn)
	}
	for li, ov := range b.Orig {
		if ov < -1 || int(ov) >= n {
			return fmt.Errorf("cover: band vertex %d maps to %d, outside [-1, %d)", li, ov, n)
		}
	}
	for name, mask := range map[string][]bool{
		"Allowed": b.Allowed, "S": b.S, "LowestLevelLocal": b.LowestLevelLocal,
	} {
		if mask != nil && len(mask) != bn {
			return fmt.Errorf("cover: %s mask has %d entries for %d band vertices", name, len(mask), bn)
		}
	}
	if b.Cluster < 0 || b.Level < 0 {
		return fmt.Errorf("cover: negative cluster %d or level %d", b.Cluster, b.Level)
	}
	return nil
}

// Equal reports whether two bands are bit-identical: same identity
// (cluster, level), same vertex mapping and marks, and the same band
// graph down to adjacency order (graph.Equal). Incremental invalidation
// reuses a band's tree decomposition across graph generations exactly
// when Equal holds, which makes the reuse indistinguishable from a fresh
// rebuild.
func (b *Band) Equal(o *Band) bool {
	if b == o {
		return true
	}
	if b == nil || o == nil {
		return false
	}
	return b.Cluster == o.Cluster && b.Level == o.Level &&
		slices.Equal(b.Orig, o.Orig) &&
		slices.Equal(b.Allowed, o.Allowed) &&
		slices.Equal(b.S, o.S) &&
		slices.Equal(b.LowestLevelLocal, o.LowestLevelLocal) &&
		graph.Equal(b.G, o.G)
}

// MemBytes returns the approximate heap footprint of the band in bytes:
// the band graph plus the Orig map and vertex marks.
func (b *Band) MemBytes() int64 {
	return b.G.MemBytes() + int64(cap(b.Orig))*4 +
		int64(cap(b.Allowed)+cap(b.S)+cap(b.LowestLevelLocal))
}

// Cover is a set of bands plus the clustering that produced them.
type Cover struct {
	Bands      []*Band
	Clustering *estc.Clustering
	// BFSRounds is the largest in-cluster BFS round count (depth proxy).
	BFSRounds int
}

// Params configures cover construction.
type Params struct {
	// K and D are the pattern size and pattern diameter; the clustering
	// parameter is beta = 2k and bands span d+1 levels.
	K, D int
	// Beta overrides the clustering parameter when positive (used by the
	// beta-ablation experiment).
	Beta float64
}

func (p Params) beta() float64 {
	if p.Beta > 0 {
		return p.Beta
	}
	return float64(2 * p.K)
}

// Build constructs a plain k-d cover of g (Theorem 2.4).
func Build(g *graph.Graph, p Params, rng *rand.Rand, tr *wd.Tracker) *Cover {
	return FromClustering(g, estc.Cluster(g, p.beta(), rng, tr), p, tr)
}

// FromClustering constructs the plain k-d cover induced by an existing
// ESTC clustering. It is the second half of Build, split out so callers
// serving many queries against one target (planarsi.Index) can reuse a
// single clustering across every pattern diameter d.
func FromClustering(g *graph.Graph, cl *estc.Clustering, p Params, tr *wd.Tracker) *Cover {
	c := &Cover{Clustering: cl}
	members := clusterMembers(cl, g.N())
	bandsPer := make([][]*Band, cl.NumClusters())
	rounds := make([]int, cl.NumClusters())
	par.For(0, cl.NumClusters(), func(ci int) {
		bandsPer[ci], rounds[ci] = clusterBands(g, cl, int32(ci), members[ci], p, tr)
	})
	for ci, bs := range bandsPer {
		c.Bands = append(c.Bands, bs...)
		if rounds[ci] > c.BFSRounds {
			c.BFSRounds = rounds[ci]
		}
	}
	return c
}

// clusterMembers groups vertex ids by cluster.
func clusterMembers(cl *estc.Clustering, n int) [][]int32 {
	members := make([][]int32, cl.NumClusters())
	for v := 0; v < n; v++ {
		o := cl.Owner[v]
		members[o] = append(members[o], int32(v))
	}
	return members
}

// clusterBands runs the in-cluster BFS and cuts the level bands.
func clusterBands(g *graph.Graph, cl *estc.Clustering, ci int32, member []int32, p Params, tr *wd.Tracker) ([]*Band, int) {
	within := make([]bool, g.N())
	for _, v := range member {
		within[v] = true
	}
	res := bfs.Levels(g, []int32{cl.Center[ci]}, within, tr)
	// Bucket members by level.
	levels := make([][]int32, res.MaxLevel+1)
	for _, v := range member {
		levels[res.Dist[v]] = append(levels[res.Dist[v]], v)
	}
	d := p.D
	var bands []*Band
	for i := 0; i <= res.MaxLevel; i++ {
		// Skip bands that cannot contain a k-vertex pattern.
		var verts []int32
		hi := i + d
		if hi > res.MaxLevel {
			hi = res.MaxLevel
		}
		for l := i; l <= hi; l++ {
			verts = append(verts, levels[l]...)
		}
		if len(verts) < p.K {
			continue
		}
		sub, orig := graph.Induce(g, verts)
		lowest := make([]bool, len(orig))
		for li, ov := range orig {
			if res.Dist[ov] == int32(i) {
				lowest[li] = true
			}
		}
		bands = append(bands, &Band{
			G:                sub,
			Orig:             orig,
			Cluster:          ci,
			Level:            int32(i),
			LowestLevelLocal: lowest,
		})
		// Bands are emitted for every level i (as in the paper), even when
		// deeper bands are subsets of earlier ones: the listing algorithm
		// attributes each occurrence to the band whose lowest level is the
		// occurrence's closest-to-root level, so the tail bands must exist.
	}
	return bands, res.Rounds
}

// BuildSeparating constructs the Section 5.2.1 separating cover: bands
// become minors carrying Allowed and S marks. s is the terminal mask over
// the original graph.
func BuildSeparating(g *graph.Graph, s []bool, p Params, rng *rand.Rand, tr *wd.Tracker) *Cover {
	return SeparatingFromClustering(g, estc.Cluster(g, p.beta(), rng, tr), s, p, tr)
}

// SeparatingFromClustering constructs the separating cover induced by an
// existing ESTC clustering (the BuildSeparating analogue of
// FromClustering).
func SeparatingFromClustering(g *graph.Graph, cl *estc.Clustering, s []bool, p Params, tr *wd.Tracker) *Cover {
	c := &Cover{Clustering: cl}
	members := clusterMembers(cl, g.N())
	bandsPer := make([][]*Band, cl.NumClusters())
	rounds := make([]int, cl.NumClusters())
	par.For(0, cl.NumClusters(), func(ci int) {
		bandsPer[ci], rounds[ci] = separatingClusterBands(g, cl, int32(ci), members[ci], s, p, tr)
	})
	for ci, bs := range bandsPer {
		c.Bands = append(c.Bands, bs...)
		if rounds[ci] > c.BFSRounds {
			c.BFSRounds = rounds[ci]
		}
	}
	return c
}

// separatingClusterBands cuts bands as minors of the full graph: band
// vertices stay, every other vertex is contracted by connected component
// of G minus the band vertex set (computed in two stages: components of
// the cluster complement are fixed per cluster; components of
// cluster-minus-band vary per band).
func separatingClusterBands(g *graph.Graph, cl *estc.Clustering, ci int32, member []int32, s []bool, p Params, tr *wd.Tracker) ([]*Band, int) {
	n := g.N()
	within := make([]bool, n)
	for _, v := range member {
		within[v] = true
	}
	res := bfs.Levels(g, []int32{cl.Center[ci]}, within, tr)
	levels := make([][]int32, res.MaxLevel+1)
	for _, v := range member {
		levels[res.Dist[v]] = append(levels[res.Dist[v]], v)
	}
	d := p.D
	var bands []*Band
	for i := 0; i <= res.MaxLevel; i++ {
		hi := i + d
		if hi > res.MaxLevel {
			hi = res.MaxLevel
		}
		var verts []int32
		for l := i; l <= hi; l++ {
			verts = append(verts, levels[l]...)
		}
		if len(verts) >= p.K {
			bands = append(bands, separatingBand(g, ci, int32(i), verts, s))
		}
	}
	return bands, res.Rounds
}

// separatingBand builds the minor for one band: band vertices are
// singleton classes; all other vertices are contracted per connected
// component of G[V \ band].
func separatingBand(g *graph.Graph, ci, level int32, verts []int32, s []bool) *Band {
	n := g.N()
	inBand := make([]bool, n)
	for _, v := range verts {
		inBand[v] = true
	}
	// Components of the complement.
	var rest []int32
	for v := int32(0); v < int32(n); v++ {
		if !inBand[v] {
			rest = append(rest, v)
		}
	}
	restSub, restOrig := graph.Induce(g, rest)
	restComp, numComp := graph.Components(restSub)

	// Classes: 0..len(verts)-1 = band vertices, then one per component.
	class := make([]int32, n)
	for li, v := range verts {
		class[v] = int32(li)
	}
	for ri, ov := range restOrig {
		class[ov] = int32(len(verts)) + restComp[ri]
	}
	numClasses := len(verts) + numComp
	minor := graph.ContractPartition(g, class, numClasses)

	orig := make([]int32, numClasses)
	allowed := make([]bool, numClasses)
	sMask := make([]bool, numClasses)
	for li, v := range verts {
		orig[li] = v
		allowed[li] = true
		sMask[li] = s[v]
	}
	for c := len(verts); c < numClasses; c++ {
		orig[c] = -1
	}
	for _, ov := range restOrig {
		if s[ov] {
			sMask[int(class[ov])] = true
		}
	}
	return &Band{
		G:       minor,
		Orig:    orig,
		Cluster: ci,
		Level:   level,
		Allowed: allowed,
		S:       sMask,
	}
}

// Multiplicity returns how many bands contain each original vertex
// (Theorem 2.4 bounds this by d+1 for plain covers).
func (c *Cover) Multiplicity(n int) []int {
	mult := make([]int, n)
	for _, b := range c.Bands {
		for _, ov := range b.Orig {
			if ov >= 0 {
				mult[ov]++
			}
		}
	}
	return mult
}

// TotalSize returns the sum of band sizes (Theorem 2.4: O(dn)).
func (c *Cover) TotalSize() int {
	total := 0
	for _, b := range c.Bands {
		total += b.G.N()
	}
	return total
}
