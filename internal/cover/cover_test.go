package cover

import (
	"math/rand/v2"
	"testing"

	"planarsi/internal/graph"
	"planarsi/internal/treedecomp"
)

func TestBandsAreInducedSubgraphs(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	g := graph.RandomPlanar(200, 0.6, rng)
	c := Build(g, Params{K: 4, D: 2}, rng, nil)
	if len(c.Bands) == 0 {
		t.Fatal("no bands produced")
	}
	for _, b := range c.Bands {
		for li := int32(0); li < int32(b.G.N()); li++ {
			ov := b.Orig[li]
			if ov < 0 || int(ov) >= g.N() {
				t.Fatal("band vertex maps outside target")
			}
			for _, lw := range b.G.Neighbors(li) {
				if !g.HasEdge(ov, b.Orig[lw]) {
					t.Fatal("band edge not present in target")
				}
			}
		}
		// Induced: edges between band vertices in g appear in the band.
		local := make(map[int32]int32)
		for li, ov := range b.Orig {
			local[ov] = int32(li)
		}
		for _, ov := range b.Orig {
			for _, w := range g.Neighbors(ov) {
				if lw, ok := local[w]; ok && !b.G.HasEdge(local[ov], lw) {
					t.Fatal("band is not induced")
				}
			}
		}
	}
}

// Theorem 2.4: every vertex is in at most d+1 bands and the total size is
// O(dn).
func TestMultiplicityAndTotalSize(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomPlanar(150+rng.IntN(200), rng.Float64(), rng)
		d := 1 + rng.IntN(4)
		c := Build(g, Params{K: 4, D: d}, rng, nil)
		mult := c.Multiplicity(g.N())
		for v, m := range mult {
			if m > d+1 {
				t.Fatalf("trial %d: vertex %d in %d bands > d+1=%d", trial, v, m, d+1)
			}
		}
		if c.TotalSize() > (d+1)*g.N() {
			t.Fatalf("trial %d: total band size %d exceeds (d+1)n=%d", trial, c.TotalSize(), (d+1)*g.N())
		}
	}
}

// Theorem 2.4: band treewidth stays O(d) — measured via the min-degree
// heuristic on planar targets (the substitution DESIGN.md documents; the
// theoretical bound is 3d).
func TestBandWidthBounded(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	g := graph.Grid(25, 25)
	for _, d := range []int{1, 2, 3} {
		c := Build(g, Params{K: 4, D: d}, rng, nil)
		for _, b := range c.Bands {
			td := treedecomp.Build(b.G, treedecomp.MinDegree)
			if err := treedecomp.Validate(b.G, td); err != nil {
				t.Fatalf("d=%d: invalid decomposition: %v", d, err)
			}
			if td.Width() > 3*d+1 {
				t.Fatalf("d=%d: band width %d exceeds 3d+1", d, td.Width())
			}
		}
	}
}

// Theorem 2.4: a fixed occurrence lands inside a single band with
// probability at least 1/2 (planted 4-cycles in a grid). The 4-cycle has
// diameter 2, so the cover must use d = 2: from any BFS root its vertices
// span three consecutive levels.
func TestOccurrenceSurvival(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	g := graph.Grid(18, 18)
	// The 4-cycle at rows 8-9, cols 8-9 (middle of the grid).
	occ := []int32{8*18 + 8, 8*18 + 9, 9*18 + 9, 9*18 + 8}
	trials, survived := 120, 0
	for trial := 0; trial < trials; trial++ {
		c := Build(g, Params{K: 4, D: 2}, rng, nil)
		found := false
		for _, b := range c.Bands {
			present := 0
			for _, ov := range b.Orig {
				for _, o := range occ {
					if ov == o {
						present++
					}
				}
			}
			if present == len(occ) {
				found = true
				break
			}
		}
		if found {
			survived++
		}
	}
	frac := float64(survived) / float64(trials)
	if frac < 0.5 {
		t.Errorf("survival fraction %.3f below Theorem 2.4's 1/2", frac)
	}
}

func TestLowestLevelMarks(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	g := graph.RandomPlanar(100, 0.5, rng)
	c := Build(g, Params{K: 3, D: 2}, rng, nil)
	for _, b := range c.Bands {
		any := false
		for _, m := range b.LowestLevelLocal {
			if m {
				any = true
			}
		}
		if !any {
			t.Fatal("every band must contain its lowest level")
		}
	}
}

// Separating cover: bands are minors whose merged classes preserve the
// connectivity of the complement; removing any subset of band vertices
// separates S in the minor iff it does in the original graph.
func TestSeparatingBandPreservesSeparation(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomPlanar(40+rng.IntN(40), 0.4+0.6*rng.Float64(), rng)
		s := make([]bool, g.N())
		for v := range s {
			s[v] = rng.Float64() < 0.4
		}
		c := BuildSeparating(g, s, Params{K: 3, D: 1}, rng, nil)
		for _, b := range c.Bands {
			if b.Allowed == nil || b.S == nil {
				t.Fatal("separating band missing masks")
			}
			// Pick a random small subset of allowed (real) band vertices
			// and compare separation in minor vs original.
			var realVerts []int32
			for li, ov := range b.Orig {
				if ov >= 0 {
					if !b.Allowed[li] {
						t.Fatal("real vertex should be allowed")
					}
					realVerts = append(realVerts, int32(li))
				} else if b.Allowed[li] {
					t.Fatal("merged vertex should not be allowed")
				}
			}
			if len(realVerts) == 0 {
				continue
			}
			cut := map[int32]bool{}
			for j := 0; j < 1+rng.IntN(3) && j < len(realVerts); j++ {
				cut[realVerts[rng.IntN(len(realVerts))]] = true
			}
			if separatesInGraph(b.G, b.S, cut) != separatesInOriginal(g, s, b, cut) {
				t.Fatalf("trial %d: separation differs between minor and original", trial)
			}
		}
	}
}

// separatesInGraph removes the cut (local ids) from band graph bg and
// checks whether two S vertices land in different components.
func separatesInGraph(bg *graph.Graph, s []bool, cut map[int32]bool) bool {
	var keep []int32
	for v := int32(0); v < int32(bg.N()); v++ {
		if !cut[v] {
			keep = append(keep, v)
		}
	}
	sub, orig := graph.Induce(bg, keep)
	comp, _ := graph.Components(sub)
	first := int32(-1)
	for i, ov := range orig {
		if s[ov] {
			if first < 0 {
				first = comp[i]
			} else if comp[i] != first {
				return true
			}
		}
	}
	return false
}

// separatesInOriginal removes the images of the cut (original ids) from g.
func separatesInOriginal(g *graph.Graph, s []bool, b *Band, cut map[int32]bool) bool {
	inCut := make(map[int32]bool)
	for li := range cut {
		if b.Orig[li] >= 0 {
			inCut[b.Orig[li]] = true
		}
	}
	var keep []int32
	for v := int32(0); v < int32(g.N()); v++ {
		if !inCut[v] {
			keep = append(keep, v)
		}
	}
	sub, orig := graph.Induce(g, keep)
	comp, _ := graph.Components(sub)
	first := int32(-1)
	for i, ov := range orig {
		if s[ov] {
			if first < 0 {
				first = comp[i]
			} else if comp[i] != first {
				return true
			}
		}
	}
	return false
}

func TestCoverOnSmallGraphs(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	// Must not crash on tiny graphs.
	for _, g := range []*graph.Graph{graph.Path(1), graph.Path(2), graph.Cycle(3)} {
		c := Build(g, Params{K: 1, D: 0}, rng, nil)
		if len(c.Bands) == 0 {
			t.Fatal("expected at least one band")
		}
	}
}

func TestBetaOverride(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	g := graph.Grid(20, 20)
	small := Build(g, Params{K: 4, D: 1, Beta: 1.5}, rng, nil)
	big := Build(g, Params{K: 4, D: 1, Beta: 16}, rng, nil)
	// Smaller beta gives smaller clusters, hence more of them.
	if small.Clustering.NumClusters() <= big.Clustering.NumClusters() {
		t.Fatalf("beta=1.5 gave %d clusters, beta=16 gave %d — expected more with smaller beta",
			small.Clustering.NumClusters(), big.Clustering.NumClusters())
	}
}
