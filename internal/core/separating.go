package core

import (
	"sync"

	"planarsi/internal/cover"
	"planarsi/internal/graph"
	"planarsi/internal/match"
	"planarsi/internal/naive"
	"planarsi/internal/obs"
	"planarsi/internal/par"
)

// DecideSeparating implements Lemma 5.3: it searches for an occurrence of
// the connected pattern h in g whose removal leaves at least two vertices
// of the terminal set s in different connected components. On success it
// returns a witness occurrence (which always verifies: yes-answers are
// exact); a nil occurrence means none was found, which is correct w.h.p.
// after the default run budget.
//
// The cover is the Section 5.2.1 separating variant — bands are minors of
// g whose merged vertices (contracted complement components) keep the
// separation structure intact while being excluded from the pattern's
// image — and the per-band engine is the Section 5.2.2 extension tracking
// inside/outside labels.
func DecideSeparating(g, h *graph.Graph, s []bool, opt Options) (Occurrence, error) {
	return DecideSeparatingFrom(freshSource{g, opt}, g, h, s, opt)
}

// DecideSeparatingFrom is DecideSeparating drawing its per-run separating
// covers from src.
func DecideSeparatingFrom(src SeparatingSource, g, h *graph.Graph, s []bool, opt Options) (Occurrence, error) {
	if trivial, res, err := validate(g, h); err != nil {
		return nil, err
	} else if trivial {
		// The empty pattern separates nothing; an oversized pattern cannot
		// occur at all.
		_ = res
		return nil, nil
	}
	if len(s) != g.N() {
		panic("core: terminal mask length must equal g.N()")
	}
	if _, l := graph.Components(h); l > 1 {
		return nil, ErrDisconnectedPattern
	}
	// Separation needs at least two surviving terminals.
	terminals := 0
	for _, in := range s {
		if in {
			terminals++
		}
	}
	if terminals < 2 {
		return nil, nil
	}
	k := h.N()
	d := graph.Diameter(h)
	runs := opt.maxRuns(g.N())
	for run := 0; run < runs; run++ {
		if opt.Cancel.Cancelled() {
			return nil, par.ErrCancelled
		}
		t0 := opt.Trace.Begin()
		pc := src.PreparedSeparating(s, k, d, run)
		tracePrepare(opt, run, t0, pc)
		opt.addRun(len(pc.Bands))
		if occ := findSeparatingInPrepared(pc, h, run, opt); occ != nil {
			return occ, nil
		}
	}
	if err := opt.Cancel.Err(); err != nil {
		return nil, err
	}
	return nil, nil
}

// findSeparatingInPrepared solves every separating band and returns one
// witness occurrence in original vertex ids, or nil. As in
// findInPrepared, the first witness cancels the sibling bands mid-DP,
// and every band emits exactly one "band" span with its outcome and DP
// cost.
func findSeparatingInPrepared(pc *PreparedCover, h *graph.Graph, run int, opt Options) Occurrence {
	bands := pc.Bands
	bandCancel := par.NewChild(opt.Cancel)
	inner := opt
	inner.Cancel = bandCancel
	var mu sync.Mutex
	var hit Occurrence
	par.ForGrain(0, len(bands), 1, func(i int) {
		injectBandFaults()
		pb := &bands[i]
		b := pb.Band
		t0 := inner.Trace.Begin()
		if bandCancel.Cancelled() || b == nil || b.G.N() < h.N() {
			inner.Trace.Span("band", run, i, t0, "skipped")
			return
		}
		var local match.Assignment
		var cost obs.Cost
		if eng, ok := solvePrepared(pb, h, true, inner); ok {
			cost = eng.Problem().Cost.Snapshot()
			inner.addBandCost(cost)
			if bandCancel.Cancelled() {
				inner.Trace.SpanCost("band", run, i, t0, "cancelled", cost)
				return
			}
			if as := eng.Enumerate(1); len(as) > 0 {
				local = as[0]
			}
		} else {
			local = separatingBrute(b, h)
		}
		if local == nil {
			inner.Trace.SpanCost("band", run, i, t0, "miss", cost)
			return
		}
		inner.Trace.SpanCost("band", run, i, t0, "found", cost)
		occ := make(Occurrence, len(local))
		for u, lv := range local {
			occ[u] = b.Orig[lv]
		}
		mu.Lock()
		if hit == nil {
			hit = occ
		}
		mu.Unlock()
		cancelSiblings(bandCancel)
	})
	return hit
}

// separatingBrute is the exact fallback for bands whose decomposition
// exceeds the engine capacity: enumerate occurrences naively, restrict to
// allowed vertices, and test the separation condition directly on the
// band minor.
func separatingBrute(b *cover.Band, h *graph.Graph) match.Assignment {
	for _, a := range naive.Search(b.G, h, naive.Options{}) {
		allowed := true
		for _, v := range a {
			if !b.Allowed[v] {
				allowed = false
				break
			}
		}
		if !allowed {
			continue
		}
		if assignmentSeparates(b.G, b.S, a) {
			return match.Assignment(a)
		}
	}
	return nil
}

// assignmentSeparates checks whether removing the assignment's image
// leaves two S-vertices in different components of bg.
func assignmentSeparates(bg *graph.Graph, s []bool, a []int32) bool {
	removed := make(map[int32]bool, len(a))
	for _, v := range a {
		removed[v] = true
	}
	keep := make([]int32, 0, bg.N()-len(a))
	for v := int32(0); v < int32(bg.N()); v++ {
		if !removed[v] {
			keep = append(keep, v)
		}
	}
	sub, orig := graph.Induce(bg, keep)
	comp, _ := graph.Components(sub)
	first := int32(-1)
	for i, ov := range orig {
		if s[ov] {
			if first < 0 {
				first = comp[i]
			} else if comp[i] != first {
				return true
			}
		}
	}
	return false
}
