package core

// Incremental refresh: rebuilding a prepared cover after an edge edit
// without re-paying the tree decompositions of untouched bands.
//
// The cover geometry (which vertices land in which band) is cheap — one
// in-cluster BFS per cluster, linear total work — while the band
// decompositions dominate preprocessing cost. RefreshPrepared therefore
// always recomputes the geometry on the edited graph, then walks the new
// bands and reuses the old PreparedBand (band pointer, nice
// decomposition, width, fallback flag) for every band whose content is
// bit-identical to its predecessor (cover.Band.Equal, which includes
// graph.Equal on the band graph). A band that changed in any way — or is
// new — is decomposed exactly as prepare would.
//
// Because reuse requires bit-identity and treedecomp.Build is
// deterministic in its input graph, the refreshed cover is
// indistinguishable from PrepareFromClustering run fresh on the edited
// graph: same bands, same decompositions, same bytes. The kept/rebuilt
// counts only describe where the work went.

import (
	"sync/atomic"

	"planarsi/internal/cover"
	"planarsi/internal/estc"
	"planarsi/internal/graph"
	"planarsi/internal/match"
	"planarsi/internal/par"
	"planarsi/internal/treedecomp"
)

// RefreshPrepared rebuilds the plain prepared cover for pattern shape
// (k, d) on the edited graph g, reusing the decompositions of old's bands
// that survive unchanged. cl must be the clustering the refreshed cover
// is induced by (the caller decides whether that clustering itself was
// kept or rebuilt). Returns the refreshed cover plus how many bands were
// kept and how many were decomposed anew.
func RefreshPrepared(g *graph.Graph, cl *estc.Clustering, old *PreparedCover, k, d int, opt Options) (*PreparedCover, int, int) {
	cov := cover.FromClustering(g, cl, cover.Params{K: k, D: d, Beta: opt.Beta}, opt.Tracker)
	return refresh(cov, old, opt)
}

// RefreshPreparedSeparating is RefreshPrepared for separating covers
// (terminal mask s over the original vertex ids). Separating bands are
// minors of the whole graph, so any edit anywhere can change any band's
// contracted complement — the bit-identity check handles that
// automatically: only truly untouched minors are reused.
func RefreshPreparedSeparating(g *graph.Graph, cl *estc.Clustering, s []bool, old *PreparedCover, k, d int, opt Options) (*PreparedCover, int, int) {
	cov := cover.SeparatingFromClustering(g, cl, s, cover.Params{K: k, D: d, Beta: opt.Beta}, opt.Tracker)
	return refresh(cov, old, opt)
}

// refresh decomposes cov's bands in parallel, reusing old's prepared
// bands where content matches. Old bands are indexed by (cluster, level)
// — the band identity within one clustering — and matched against the
// new geometry; the Equal check then decides reuse.
func refresh(cov *cover.Cover, old *PreparedCover, opt Options) (*PreparedCover, int, int) {
	type bandID struct{ cluster, level int32 }
	prev := make(map[bandID]*PreparedBand, len(old.Bands))
	for i := range old.Bands {
		if pb := &old.Bands[i]; pb.Band != nil {
			prev[bandID{pb.Band.Cluster, pb.Band.Level}] = pb
		}
	}
	pc := &PreparedCover{Cover: cov, Bands: make([]PreparedBand, len(cov.Bands))}
	var kept, rebuilt atomic.Int64
	par.ForGrain(0, len(cov.Bands), 1, func(i int) {
		injectBandFaults()
		if opt.Cancel.Cancelled() {
			return
		}
		b := cov.Bands[i]
		if pb, ok := prev[bandID{b.Cluster, b.Level}]; ok && pb.Band.Equal(b) {
			// Share the old band object outright so entries kept across
			// a generation keep their exact pointers (and snapshot
			// encoders see one band, not two equal copies).
			cov.Bands[i] = pb.Band
			pc.Bands[i] = *pb
			kept.Add(1)
			return
		}
		td := treedecomp.Build(b.G, opt.Heuristic)
		nd := treedecomp.MakeNice(td)
		pb := PreparedBand{Band: b, Width: td.Width()}
		if nd.Width+1 > match.MaxBag {
			pb.Fallback = true
		} else {
			pb.ND = nd
		}
		pc.Bands[i] = pb
		rebuilt.Add(1)
	})
	return pc, int(kept.Load()), int(rebuilt.Load())
}
