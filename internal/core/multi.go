package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"planarsi/internal/cover"
	"planarsi/internal/graph"
	"planarsi/internal/match"
	"planarsi/internal/naive"
	"planarsi/internal/obs"
	"planarsi/internal/par"
	"planarsi/internal/pmdag"
)

// Multi-pattern sweeps: several connected patterns of one (k, d) shape
// share the run loop, the prepared covers, and — through match.RunMulti
// / pmdag.RunMulti — a single traversal of every band's decomposition.
// Answers, per-pattern Stats contributions and per-pattern cost flushes
// are identical to running each pattern alone; only the tree/path walks
// and the per-(G, ND) metadata are shared. Per-pattern band-local
// cancellers preserve the solo early-exit shape: a pattern certified
// found drops out of sibling bands (and later runs) without stopping
// its batch-mates.

// groupShape validates the group contract — connected patterns sharing
// one (k, d) shape, 2 <= k <= match.MaxK — and returns the shape. The
// Index's batch grouping guarantees this; violations are caller bugs.
func groupShape(hs []*graph.Graph) (k, d int) {
	k = hs[0].N()
	if k < 2 || k > match.MaxK {
		panic(fmt.Sprintf("core: group sweep requires 2 <= k <= %d, got k=%d", match.MaxK, k))
	}
	d = graph.Diameter(hs[0])
	for _, h := range hs {
		if _, l := graph.Components(h); l > 1 {
			panic("core: group sweep requires connected patterns")
		}
		if h.N() != k || graph.Diameter(h) != d {
			panic("core: group sweep requires patterns of one (k, d) shape")
		}
	}
	return k, d
}

// DecideGroupFrom decides every pattern of hs — connected, all of one
// (k, d) shape — against g in shared sweeps: each cover repetition is
// prepared once and each band's decomposition is walked once for all
// still-undecided patterns. The returned slice is positionally aligned
// with hs and each entry equals what DecideFrom would return for that
// pattern alone (true answers exact, false answers w.h.p.).
func DecideGroupFrom(src CoverSource, g *graph.Graph, hs []*graph.Graph, opt Options) ([]bool, error) {
	if len(hs) == 0 {
		return nil, nil
	}
	if len(hs) == 1 {
		found, err := DecideFrom(src, g, hs[0], opt)
		return []bool{found}, err
	}
	k, d := groupShape(hs)
	if k > g.N() {
		panic("core: group sweep requires k <= n (trivial patterns are the caller's)")
	}
	found := make([]bool, len(hs))
	runs := opt.maxRuns(g.N())
	remaining := len(hs)
	for run := 0; run < runs && remaining > 0; run++ {
		if opt.Cancel.Cancelled() {
			return nil, par.ErrCancelled
		}
		t0 := opt.Trace.Begin()
		pc := src.Prepared(k, d, run)
		tracePrepare(opt, run, t0, pc)
		// Stats stay per logical pattern: every pattern still searching
		// charges this repetition exactly as its solo run loop would.
		for j := range hs {
			if !found[j] {
				opt.addRun(len(pc.Bands))
			}
		}
		groupHasOccurrence(pc, hs, found, run, opt)
		remaining = 0
		for j := range hs {
			if !found[j] {
				remaining++
			}
		}
	}
	if err := opt.Cancel.Err(); err != nil {
		// The last sweep may have been felled mid-flight: negative
		// answers are only trustworthy when every band ran to completion.
		return nil, err
	}
	return found, nil
}

// groupHasOccurrence solves every band of the prepared cover once for
// all still-undecided patterns, setting found[j] for each pattern
// certified in some band. Each pattern owns a band-local child
// canceller: the band that finds pattern j fires j's token, so j's DP
// in sibling bands abandons at the next checkpoint while its
// batch-mates sweep on — the per-pattern analogue of
// preparedHasOccurrence's single-token early exit.
func groupHasOccurrence(pc *PreparedCover, hs []*graph.Graph, found []bool, run int, opt Options) {
	m := len(hs)
	hit := make([]atomic.Bool, m)
	cancels := make([]*par.Canceller, m)
	for j := range cancels {
		if !found[j] {
			cancels[j] = par.NewChild(opt.Cancel)
		}
	}
	k := hs[0].N()
	bands := pc.Bands
	par.ForGrain(0, len(bands), 1, func(i int) {
		injectBandFaults()
		pb := &bands[i]
		t0 := opt.Trace.Begin()
		// Patterns still in play at this band: not decided before the
		// sweep, not certified by a sibling band, token unfired.
		var act []int
		for j := 0; j < m; j++ {
			if !found[j] && !hit[j].Load() && !cancels[j].Cancelled() {
				act = append(act, j)
			}
		}
		if len(act) == 0 || opt.Cancel.Cancelled() || pb.Band == nil || pb.Band.G.N() < k {
			opt.Trace.Span("band", run, i, t0, "skipped")
			return
		}
		ahs := make([]*graph.Graph, len(act))
		acans := make([]*par.Canceller, len(act))
		for idx, j := range act {
			ahs[idx], acans[idx] = hs[j], cancels[j]
		}
		engs, ok := solveGroupBand(pb, ahs, acans, true, opt)
		if !ok {
			// Fallback: too wide for the engines; the naive baseline is
			// exact on the band, run per pattern (zero DP cost, as solo).
			nf := 0
			for _, j := range act {
				if cancels[j].Cancelled() {
					continue
				}
				if naive.Decide(pb.Band.G, hs[j]) {
					hit[j].Store(true)
					cancelSiblings(cancels[j])
					nf++
				}
			}
			if opt.Trace != nil {
				opt.Trace.Span("band", run, i, t0, fmt.Sprintf("fallback:found=%d/%d", nf, len(act)))
			}
			return
		}
		// Per-pattern cost snapshots feed the shared sinks exactly as a
		// solo band solve would; the band span carries their sum.
		var total obs.Cost
		nf := 0
		for idx, j := range act {
			bandCost := engs[idx].Problem().Cost.Snapshot()
			opt.addBandCost(bandCost)
			total.Accumulate(bandCost)
			if cancels[j].Cancelled() {
				// j's DP may have aborted mid-run: partial result, and j
				// is already certified elsewhere (or the query is dying).
				continue
			}
			if engs[idx].Found() {
				hit[j].Store(true)
				cancelSiblings(cancels[j])
				nf++
			}
		}
		if opt.Trace != nil {
			opt.Trace.SpanCost("band", run, i, t0, fmt.Sprintf("found=%d/%d", nf, len(act)), total)
		}
	})
	for j := range hs {
		if hit[j].Load() {
			found[j] = true
		}
	}
}

// solveGroupBand runs the selected engine once over the band's
// decomposition for every pattern of the active set (aligned cancels
// give each pattern its own token). ok=false signals the naive
// fallback, with Stats charged per pattern as the solo path would.
func solveGroupBand(pb *PreparedBand, hs []*graph.Graph, cancels []*par.Canceller, decideOnly bool, opt Options) ([]*match.Result, bool) {
	opt.noteWidth(pb.Width)
	if pb.Fallback {
		for range hs {
			opt.noteFallback()
		}
		return nil, false
	}
	b := pb.Band
	ps := make([]*match.Problem, len(hs))
	for idx, h := range hs {
		var bc *obs.CostCounter
		if opt.costed() {
			bc = new(obs.CostCounter)
		}
		ps[idx] = &match.Problem{G: b.G, H: h, ND: pb.ND, Allowed: b.Allowed, S: b.S,
			DecideOnly: decideOnly, Cancel: cancels[idx], Trace: opt.Trace, Cost: bc}
	}
	if opt.Engine == EngineSequential {
		// Group sweeps are plain-mode only, so the engine choice mirrors
		// solvePreparedMode's: sequential on request, path-DAG otherwise.
		return match.RunMulti(ps, opt.Tracker), true
	}
	return pmdag.RunMulti(ps, opt.Tracker), true
}

// CountGroupFrom counts the occurrences of every pattern of hs —
// connected, one (k, d) shape — sharing the Theorem 4.2 repetition loop:
// each run's cover is prepared once and each band enumerated in one
// group solve. Every pattern keeps its own dedupe set and stopping
// streak, so the returned counts (aligned with hs) equal CountFrom's
// solo answers; patterns that hit their stopping rule drop out of later
// sweeps.
func CountGroupFrom(src CoverSource, g *graph.Graph, hs []*graph.Graph, opt Options) ([]int, error) {
	if len(hs) == 0 {
		return nil, nil
	}
	if len(hs) == 1 {
		c, err := CountFrom(src, g, hs[0], opt)
		return []int{c}, err
	}
	k, d := groupShape(hs)
	if k > g.N() {
		panic("core: group sweep requires k <= n (trivial patterns are the caller's)")
	}
	m := len(hs)
	found := make([]map[string]struct{}, m)
	for j := range found {
		found[j] = make(map[string]struct{})
	}
	streak := make([]int, m)
	done := make([]bool, m)
	logN := math.Log2(float64(g.N()) + 2)
	j := 0
	remaining := m
	for remaining > 0 {
		if opt.Cancel.Cancelled() {
			return nil, par.ErrCancelled
		}
		t0 := opt.Trace.Begin()
		pc := src.Prepared(k, d, j)
		tracePrepare(opt, j, t0, pc)
		run := j
		j++
		var act []int
		for x := 0; x < m; x++ {
			if !done[x] {
				act = append(act, x)
				opt.addRun(len(pc.Bands))
			}
		}
		occs := enumerateGroupPrepared(pc, hs, act, run, opt)
		// Every active pattern's local iteration count equals the shared
		// run index (all start at run 0 and stop by dropping out), so the
		// solo stopping rule applies verbatim.
		threshold := int(math.Ceil(math.Log2(float64(j)+1))) + int(math.Ceil(2*logN)) + 1
		for idx, x := range act {
			added := 0
			for _, o := range occs[idx] {
				key := o.Key()
				if _, dup := found[x][key]; !dup {
					found[x][key] = struct{}{}
					added++
				}
			}
			if added > 0 {
				streak[x] = 0
			} else {
				streak[x]++
			}
			if streak[x] >= threshold || (opt.MaxRuns > 0 && j >= opt.MaxRuns) {
				done[x] = true
				remaining--
			}
		}
	}
	if err := opt.Cancel.Err(); err != nil {
		return nil, err
	}
	counts := make([]int, m)
	for x := range counts {
		counts[x] = len(found[x])
	}
	return counts, nil
}

// enumerateGroupPrepared lists, per active pattern, every occurrence in
// some band of the prepared cover (original ids, lowest-level filter),
// walking each band's decomposition once for the whole group. The outer
// result is aligned with act.
func enumerateGroupPrepared(pc *PreparedCover, hs []*graph.Graph, act []int, run int, opt Options) [][]Occurrence {
	bands := pc.Bands
	results := make([][][]Occurrence, len(bands))
	par.ForGrain(0, len(bands), 1, func(i int) {
		injectBandFaults()
		t0 := opt.Trace.Begin()
		if opt.Cancel.Cancelled() || bands[i].Band == nil {
			opt.Trace.Span("band", run, i, t0, "skipped")
			return
		}
		occs, cost := enumerateGroupBand(&bands[i], hs, act, opt)
		results[i] = occs
		if opt.Trace != nil {
			n := 0
			for _, o := range occs {
				n += len(o)
			}
			opt.Trace.SpanCost("band", run, i, t0, fmt.Sprintf("occs=%d", n), cost)
		}
	})
	out := make([][]Occurrence, len(act))
	for _, r := range results {
		for idx := range r {
			out[idx] = append(out[idx], r[idx]...)
		}
	}
	return out
}

// enumerateGroupBand solves one band once for the whole active group
// (full state sets — enumeration needs them) and extracts each
// pattern's lowest-level occurrences. The returned cost is the sum of
// the per-pattern snapshots already folded into the query sinks.
func enumerateGroupBand(pb *PreparedBand, hs []*graph.Graph, act []int, opt Options) ([][]Occurrence, obs.Cost) {
	b := pb.Band
	out := make([][]Occurrence, len(act))
	var total obs.Cost
	if b.G.N() < hs[act[0]].N() {
		return out, total
	}
	ahs := make([]*graph.Graph, len(act))
	cancels := make([]*par.Canceller, len(act))
	for idx, x := range act {
		ahs[idx] = hs[x]
		// Enumeration has no per-pattern early exit (all occurrences are
		// needed), so every pattern shares the query token.
		cancels[idx] = opt.Cancel
	}
	engs, ok := solveGroupBand(pb, ahs, cancels, false, opt)
	if !ok {
		for idx, x := range act {
			var local []match.Assignment
			for _, a := range naive.Search(b.G, hs[x], naive.Options{}) {
				local = append(local, match.Assignment(a))
			}
			out[idx] = bandOccurrences(b, local)
		}
		return out, total
	}
	for idx := range engs {
		cost := engs[idx].Problem().Cost.Snapshot()
		opt.addBandCost(cost)
		total.Accumulate(cost)
		if opt.Cancel.Cancelled() {
			// Partial DP: Enumerate would be unsound, and the caller's
			// error path discards the whole sweep anyway.
			continue
		}
		out[idx] = bandOccurrences(b, engs[idx].Enumerate(0))
	}
	return out, total
}

// bandOccurrences translates a band's local assignments that touch its
// lowest level into original-id occurrences (the Section 4.2.1 filter
// enumerateBand applies).
func bandOccurrences(b *cover.Band, local []match.Assignment) []Occurrence {
	var out []Occurrence
	for _, a := range local {
		if !touchesLowest(b.LowestLevelLocal, a) {
			continue
		}
		occ := make(Occurrence, len(a))
		for u, lv := range a {
			occ[u] = b.Orig[lv]
		}
		out = append(out, occ)
	}
	return out
}
