package core

import (
	"math"

	"planarsi/internal/graph"
	"planarsi/internal/par"
)

// decideDisconnected implements Lemma 4.1: color the target's vertices
// uniformly with l colors (one per pattern component) and search for the
// i-th component inside the i-th color class. A fixed occurrence assigns
// all its vertices the right colors with probability l^{-k}, so
// O(l^k log n) repetitions certify absence w.h.p.; each successful
// repetition is exact, so "yes" answers are always correct (component
// images are automatically disjoint because the color classes are).
func decideDisconnected(g, h *graph.Graph, l int, opt Options) (bool, error) {
	comps := splitComponents(h)
	k := h.N()
	reps := opt.MaxRuns
	if reps == 0 {
		reps = colorRepetitions(l, k, g.N())
	}
	rng := opt.rng(2)
	n := g.N()
	color := make([]int8, n)
	// The inner searches reuse the connected pipeline with a modest run
	// budget: the outer loop already repeats, so each inner search only
	// needs constant success probability given a surviving coloring.
	inner := opt
	inner.MaxRuns = 2
	inner.Stats = nil
	for rep := 0; rep < reps; rep++ {
		if opt.Cancel.Cancelled() {
			return false, par.ErrCancelled
		}
		for v := range color {
			color[v] = int8(rng.IntN(l))
		}
		inner.Seed = rng.Uint64()
		opt.addRun(0)
		ok := true
		for i := 0; i < l && ok; i++ {
			verts := make([]int32, 0, n/l+1)
			for v := 0; v < n; v++ {
				if color[v] == int8(i) {
					verts = append(verts, int32(v))
				}
			}
			gi, _ := graph.Induce(g, verts)
			hi := comps[i]
			if hi.N() > gi.N() {
				ok = false
				break
			}
			found, err := decideConnectedFrom(freshSource{gi, inner}, gi, hi, inner)
			if err != nil {
				return false, err
			}
			ok = found
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// colorRepetitions returns ceil(l^k · (log2 n + 2)), capped to keep
// pathological parameter choices from running forever (the cap is far
// beyond anything the experiments use; hitting it weakens the w.h.p.
// guarantee, not correctness of "yes" answers).
func colorRepetitions(l, k, n int) int {
	lk := math.Pow(float64(l), float64(k))
	r := lk * (math.Log2(float64(n)+2) + 2)
	const cap = 1 << 20
	if r > cap {
		return cap
	}
	return int(math.Ceil(r))
}

// splitComponents returns the connected components of h as standalone
// graphs with dense local ids, ordered by component label.
func splitComponents(h *graph.Graph) []*graph.Graph {
	comp, l := graph.Components(h)
	buckets := make([][]int32, l)
	for v := 0; v < h.N(); v++ {
		c := comp[v]
		buckets[c] = append(buckets[c], int32(v))
	}
	out := make([]*graph.Graph, l)
	for i, verts := range buckets {
		gi, _ := graph.Induce(h, verts)
		out[i] = gi
	}
	return out
}
