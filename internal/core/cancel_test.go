package core

import (
	"errors"
	"math/rand/v2"
	"sort"
	"testing"
	"time"

	"planarsi/internal/graph"
	"planarsi/internal/par"
)

// TestDecidePreCancelled: a token fired before the call returns
// par.ErrCancelled without doing work.
func TestDecidePreCancelled(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	g := graph.RandomPlanar(200, 0.6, rng)
	h := graph.Cycle(4)
	c := par.NewCanceller()
	c.Cancel()
	if _, err := Decide(g, h, Options{Seed: 1, Cancel: c}); !errors.Is(err, par.ErrCancelled) {
		t.Fatalf("pre-cancelled Decide err = %v, want ErrCancelled", err)
	}
	if _, err := FindOne(g, h, Options{Seed: 1, Cancel: c}); !errors.Is(err, par.ErrCancelled) {
		t.Fatalf("pre-cancelled FindOne err = %v, want ErrCancelled", err)
	}
	if _, err := List(g, h, Options{Seed: 1, Cancel: c}); !errors.Is(err, par.ErrCancelled) {
		t.Fatalf("pre-cancelled List err = %v, want ErrCancelled", err)
	}
	s := make([]bool, g.N())
	s[0], s[g.N()-1] = true, true
	if _, err := DecideSeparating(g, h, s, Options{Seed: 1, Cancel: c}); !errors.Is(err, par.ErrCancelled) {
		t.Fatalf("pre-cancelled DecideSeparating err = %v, want ErrCancelled", err)
	}
}

// TestDecideUnfiredTokenIdenticalAnswers: carrying a token that never
// fires must not perturb answers — the checkpoints are reads only.
func TestDecideUnfiredTokenIdenticalAnswers(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomPlanar(20+rng.IntN(60), rng.Float64(), rng)
		h := randomPattern(2+rng.IntN(4), rng.IntN(3), rng)
		want, err := Decide(g, h, Options{Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decide(g, h, Options{Seed: uint64(trial), Cancel: par.NewCanceller()})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: with-token=%v without=%v", trial, got, want)
		}
	}
}

// TestCancelledRerunByteIdentical: fire the token mid-flight (from a
// concurrent goroutine), then rerun from scratch with the same Options —
// the rerun must return byte-identical results to a never-cancelled
// call. This is the cancellation-soundness contract: abandoning DPs
// mid-band must leave no trace in any shared state.
func TestCancelledRerunByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19))
	g := graph.RandomPlanar(150, 0.7, rng)
	h := graph.Cycle(4)
	opt := Options{Seed: 42}

	refFound, err := Decide(g, h, opt)
	if err != nil {
		t.Fatal(err)
	}
	refOccs, err := List(g, h, opt)
	if err != nil {
		t.Fatal(err)
	}

	for _, delay := range []time.Duration{0, 50 * time.Microsecond, 500 * time.Microsecond, 5 * time.Millisecond} {
		for _, victim := range []string{"decide", "list"} {
			c := par.NewCanceller()
			go func(d time.Duration) {
				time.Sleep(d)
				c.Cancel()
			}(delay)
			copt := opt
			copt.Cancel = c
			var got bool
			var err error
			if victim == "decide" {
				got, err = Decide(g, h, copt)
			} else {
				var occs []Occurrence
				occs, err = List(g, h, copt)
				got = len(occs) > 0
				if err == nil && !sameOccurrences(occs, refOccs) {
					// A cancelled List must never return truncated data
					// with a nil error.
					t.Fatalf("delay %v: List returned %d occurrences with nil error, want %d", delay, len(occs), len(refOccs))
				}
			}
			// Either the call finished first (answer must match) or it
			// was cancelled (error must be ErrCancelled).
			if err != nil {
				if !errors.Is(err, par.ErrCancelled) {
					t.Fatalf("delay %v %s: unexpected error %v", delay, victim, err)
				}
			} else if got != refFound {
				t.Fatalf("delay %v %s: uncancelled answer %v, want %v", delay, victim, got, refFound)
			}

			// Rerun from scratch: byte-identical to the reference.
			again, err := Decide(g, h, opt)
			if err != nil || again != refFound {
				t.Fatalf("delay %v %s: rerun=%v err=%v, want %v", delay, victim, again, err, refFound)
			}
		}
	}
	// One full listing rerun after all the aborted attempts: the
	// occurrence set must be byte-identical to the pristine reference.
	occs, err := List(g, h, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !sameOccurrences(occs, refOccs) {
		t.Fatal("rerun List differs from reference after cancelled runs")
	}
}

func sameOccurrences(a, b []Occurrence) bool {
	if len(a) != len(b) {
		return false
	}
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i := range a {
		ka[i], kb[i] = a[i].Key(), b[i].Key()
	}
	sort.Strings(ka)
	sort.Strings(kb)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// TestBandCancelAblationToggle: clearing the ablation gate must not
// change answers, only how much sibling work a decide-hit performs.
func TestBandCancelAblationToggle(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 29))
	g := graph.RandomPlanar(300, 0.7, rng)
	h := graph.Cycle(3)
	want, err := Decide(g, h, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	bandCancelEnabled.Store(false)
	defer bandCancelEnabled.Store(true)
	got, err := Decide(g, h, Options{Seed: 5})
	if err != nil || got != want {
		t.Fatalf("ablation toggle changed the answer: got=%v err=%v want=%v", got, err, want)
	}
}
