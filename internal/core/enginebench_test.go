package core

import (
	"testing"

	"planarsi/internal/graph"
	"planarsi/internal/par"
)

// BenchmarkDecideCancellation measures what first-hit cancellation buys
// on multi-band covers. Both ablation arms keep the band-granularity
// early exit that predates the pool refactor (bands not yet started are
// skipped once the answer is known); the bandCancelEnabled gate isolates
// exactly the new *mid-flight* cancellation — felling DPs already
// running in sibling bands.
//
//   - hit-wide:  C4 in Grid(64,64) — many small bands. Each band's DP
//     is short, so mid-flight felling has little left to save beyond
//     the band-start exit: the arms should tie (this is the no-regret
//     check).
//   - hit-tall:  Path(8) in Grid(48,48) — few tall bands (k=8, d=7)
//     whose DPs run long. The first band to certify the hit fells the
//     expensive siblings mid-run; this is where cancellation pays.
//   - miss:      C3 in Grid(64,64) — bipartite target, so the full run
//     budget executes and the token never fires; cancellation must
//     cost nothing here.
//
// Both par engines run the matrix, and every iteration asserts its
// answer, so a result drift fails loudly.
func BenchmarkDecideCancellation(b *testing.B) {
	wide := graph.Grid(64, 64)
	tall := graph.Grid(48, 48)
	opt := Options{Seed: 7}

	run := func(b *testing.B, g, h *graph.Graph, want bool) {
		for i := 0; i < b.N; i++ {
			got, err := Decide(g, h, opt)
			if err != nil || got != want {
				b.Fatalf("Decide=%v err=%v want %v", got, err, want)
			}
		}
	}
	cases := []struct {
		name string
		g, h *graph.Graph
		want bool
	}{
		{"hit-wide", wide, graph.Cycle(4), true},
		{"hit-tall", tall, graph.Path(8), true},
		{"miss", wide, graph.Cycle(3), false},
	}
	for _, e := range []struct {
		name string
		kind par.EngineKind
	}{{"pool", par.EnginePool}, {"semaphore", par.EngineSemaphore}} {
		for _, c := range cases {
			for _, gate := range []struct {
				name string
				on   bool
			}{{"cancel", true}, {"nocancel", false}} {
				if c.name == "miss" && !gate.on {
					continue // the token never fires on a miss; one arm suffices
				}
				b.Run(c.name+"/"+gate.name+"/"+e.name, func(b *testing.B) {
					par.SetEngine(e.kind)
					bandCancelEnabled.Store(gate.on)
					defer func() {
						bandCancelEnabled.Store(true)
						par.SetEngine(par.EnginePool)
					}()
					run(b, c.g, c.h, c.want)
				})
			}
		}
	}
}
