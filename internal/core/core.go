// Package core assembles the paper's pipeline: the parallel treewidth
// k-d cover of Section 2 feeding the bounded-treewidth subgraph
// isomorphism engines of Section 3, with the extensions of Section 4
// (disconnected patterns, listing all occurrences) and Section 5
// (S-separating occurrences).
//
// One run of the decision algorithm covers the target with
// bounded-treewidth bands (each fixed occurrence survives into some band
// with probability >= 1/2, Theorem 2.4) and solves each band exactly.
// "Yes" answers are therefore always correct; "no" answers are correct
// with high probability after O(log n) independent runs. The same
// one-sided error structure carries through listing (Theorem 4.2),
// disconnected patterns (Lemma 4.1) and the separating variant
// (Lemma 5.3).
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"planarsi/internal/fault"
	"planarsi/internal/graph"
	"planarsi/internal/match"
	"planarsi/internal/naive"
	"planarsi/internal/obs"
	"planarsi/internal/par"
	"planarsi/internal/pmdag"
	"planarsi/internal/treedecomp"
	"planarsi/internal/wd"
)

// Engine selects the bounded-treewidth solver used per band.
type Engine int

const (
	// EngineAuto uses the path-DAG engine for plain decision problems and
	// the sequential engine for separating ones (the Section 3.3 engine
	// covers plain mode only).
	EngineAuto Engine = iota
	// EngineSequential forces the bottom-up DP of Section 3.2.
	EngineSequential
	// EnginePathDAG forces the Section 3.3 path-DAG engine.
	EnginePathDAG
)

// Options configures the pipeline. The zero value is usable: fresh
// deterministic seed 0, automatic engine, min-degree decompositions,
// automatic repetition counts.
type Options struct {
	// Seed seeds the run's randomness; equal seeds give equal results.
	Seed uint64
	// Engine selects the per-band solver.
	Engine Engine
	// MaxRuns bounds the independent cover repetitions; 0 selects
	// 2·ceil(log2(n+2)) + 3, enough to certify absence w.h.p.
	MaxRuns int
	// Heuristic selects the tree decomposition heuristic for bands.
	Heuristic treedecomp.Heuristic
	// Beta overrides the clustering parameter (default 2k), for the beta
	// ablation experiment.
	Beta float64
	// Tracker accumulates work/depth counters when non-nil.
	Tracker *wd.Tracker
	// Stats receives run statistics when non-nil.
	Stats *Stats
	// Cancel, when non-nil, aborts the call cooperatively: the pipeline
	// polls it at run, band, node and path boundaries and returns
	// par.ErrCancelled once it fires. Cancellation never changes answers
	// — a rerun with the same Options (and an unfired token) returns
	// exactly what an uncancelled call would have.
	Cancel *par.Canceller
	// Trace, when non-nil, records the call's band timeline: one
	// "prepare" span per cover repetition (near-zero on a cache hit) and
	// one "band" span per band with its outcome, plus cancellation
	// events at the engines' checkpoints. Like Cancel, it is a per-call
	// attachment that never influences answers.
	Trace *obs.Recorder
	// Cost, when non-nil, accumulates the call's DP cost counters
	// (nodes, states, joins, emissions, bytes) across every band
	// solved. Band spans on a traced call carry the same per-band
	// snapshots, so the span costs sum to this counter exactly.
	// Another per-call attachment that never influences answers.
	Cost *obs.CostCounter
}

// SameConfig reports whether two option sets produce identical answers
// and identical cached artifacts: it compares the value fields that feed
// the pipeline's randomness and shape (Seed, Engine, MaxRuns, Heuristic,
// Beta) and ignores the per-call attachments (Tracker, Stats, Cancel,
// Trace, Cost), which never influence results. Snapshot restore uses it
// to refuse loading artifacts built under a different configuration.
func (o Options) SameConfig(p Options) bool {
	return o.Seed == p.Seed && o.Engine == p.Engine && o.MaxRuns == p.MaxRuns &&
		o.Heuristic == p.Heuristic && o.Beta == p.Beta
}

// Stats reports what a pipeline call did.
type Stats struct {
	// Runs is the number of cover repetitions executed.
	Runs int
	// Bands is the total number of bands solved across all runs.
	Bands int
	// FallbackBands counts bands whose decomposition exceeded the engine's
	// bag capacity and were solved by the naive baseline instead.
	FallbackBands int64
	// MaxBandWidth is the widest band decomposition observed.
	MaxBandWidth int
	// Cost totals the engines' per-band cost counters across every band
	// solved (fallback and skipped bands contribute zero).
	Cost obs.Cost
}

// Occurrence maps pattern vertices to target vertices.
type Occurrence []int32

// Key renders the occurrence as a comparable string (the paper
// deduplicates occurrences "by hashing").
func (o Occurrence) Key() string {
	b := make([]byte, 0, len(o)*4)
	for _, v := range o {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// ErrPatternTooLarge is returned when the pattern exceeds the engine
// capacity (match.MaxK vertices).
var ErrPatternTooLarge = errors.New("core: pattern exceeds MaxK vertices")

// ErrDisconnectedPattern is returned by operations defined only for
// connected patterns (List, Count, DecideSeparating).
var ErrDisconnectedPattern = errors.New("core: operation requires a connected pattern")

func (o Options) maxRuns(n int) int {
	if o.MaxRuns > 0 {
		return o.MaxRuns
	}
	return 2*int(math.Ceil(math.Log2(float64(n)+2))) + 3
}

func (o Options) rng(stream uint64) *rand.Rand {
	return rand.New(rand.NewPCG(o.Seed, 0x9e3779b97f4a7c15^stream))
}

// statsMu guards every Stats update: band solves run in parallel loops,
// and an Index serves concurrent queries sharing one Stats. A global
// mutex is deliberate — it is only taken when Stats is non-nil
// (instrumentation mode), at per-band granularity, and embedding a lock
// in the public Stats struct would break callers that copy it.
var statsMu sync.Mutex

func (o Options) addRun(bands int) {
	if o.Stats == nil {
		return
	}
	statsMu.Lock()
	o.Stats.Runs++
	o.Stats.Bands += bands
	statsMu.Unlock()
}

func (o Options) noteWidth(w int) {
	if o.Stats == nil {
		return
	}
	statsMu.Lock()
	if w > o.Stats.MaxBandWidth {
		o.Stats.MaxBandWidth = w
	}
	statsMu.Unlock()
}

// addBandCost folds one solved band's engine cost counters into the
// per-call accumulator and the Stats totals. Each band is snapshotted
// exactly once, so the sum of the band spans' attached costs equals
// both totals byte for byte.
func (o Options) addBandCost(c obs.Cost) {
	o.Cost.Add(c)
	if o.Stats == nil || c.IsZero() {
		return
	}
	statsMu.Lock()
	o.Stats.Cost.Accumulate(c)
	statsMu.Unlock()
}

// costed reports whether band solves should account DP cost: any of the
// cost sinks (the per-call counter, a trace wanting span costs, Stats
// totals) is attached.
func (o Options) costed() bool {
	return o.Cost != nil || o.Trace != nil || o.Stats != nil
}

func (o Options) noteFallback() {
	if o.Stats == nil {
		return
	}
	statsMu.Lock()
	o.Stats.FallbackBands++
	statsMu.Unlock()
}

// validate performs the shared pattern checks. It returns (decided,
// result) when the instance is trivial.
func validate(g, h *graph.Graph) (trivial bool, result bool, err error) {
	k := h.N()
	if k > match.MaxK {
		return false, false, fmt.Errorf("%w: k=%d", ErrPatternTooLarge, k)
	}
	if k == 0 {
		return true, true, nil
	}
	if k > g.N() {
		return true, false, nil
	}
	if h.M() > g.M() {
		return true, false, nil
	}
	return false, false, nil
}

// Decide reports whether h occurs in g as a subgraph, dispatching between
// the connected pipeline (Theorem 2.1) and the disconnected extension
// (Lemma 4.1). The answer is exact when true and correct w.h.p. when
// false.
func Decide(g, h *graph.Graph, opt Options) (bool, error) {
	return DecideFrom(freshSource{g, opt}, g, h, opt)
}

// DecideFrom is Decide drawing its per-run covers from src; an Index
// passes itself to reuse preprocessing across queries. For equal Options,
// answers are identical to Decide's regardless of the source.
func DecideFrom(src CoverSource, g, h *graph.Graph, opt Options) (bool, error) {
	if trivial, res, err := validate(g, h); trivial || err != nil {
		return res, err
	}
	if _, l := graph.Components(h); l > 1 {
		// The Lemma 4.1 extension searches color-class induced subgraphs
		// of g, which no target-side cache can serve.
		return decideDisconnected(g, h, l, opt)
	}
	return decideConnectedFrom(src, g, h, opt)
}

// decideConnectedFrom runs the Theorem 2.1 pipeline: up to MaxRuns
// prepared covers, each band solved exactly, early exit on the first hit.
func decideConnectedFrom(src CoverSource, g, h *graph.Graph, opt Options) (bool, error) {
	k := h.N()
	if k == 1 {
		return g.N() >= 1, nil
	}
	d := graph.Diameter(h)
	runs := opt.maxRuns(g.N())
	for run := 0; run < runs; run++ {
		if opt.Cancel.Cancelled() {
			return false, par.ErrCancelled
		}
		t0 := opt.Trace.Begin()
		pc := src.Prepared(k, d, run)
		tracePrepare(opt, run, t0, pc)
		opt.addRun(len(pc.Bands))
		if preparedHasOccurrence(pc, h, run, opt) {
			return true, nil
		}
	}
	if err := opt.Cancel.Err(); err != nil {
		// The last run may have been felled mid-flight: a negative answer
		// is only trustworthy when every band ran to completion.
		return false, err
	}
	return false, nil
}

// tracePrepare emits one "prepare" span for a cover repetition, pricing
// the prepared artifact's resident bytes into the span cost. The bytes
// are span-only attribution — cache economics, not DP work — so they
// stay out of the query cost totals the band spans sum to.
func tracePrepare(opt Options, run int, t0 time.Time, pc *PreparedCover) {
	if opt.Trace == nil {
		return
	}
	opt.Trace.SpanCost("prepare", run, -1, t0, "", obs.Cost{Bytes: pc.MemBytes()})
}

// preparedHasOccurrence solves every band of the prepared cover in
// parallel and reports whether any contains the pattern. Decision bands
// run DecideOnly: the engines recycle consumed child sets as the
// bottom-up order advances, so peak memory per band is the active
// decomposition frontier, not the whole tree.
//
// The first band to find an occurrence fires a band-local child
// canceller, so sibling bands already mid-DP abandon their runs at the
// next node/path checkpoint instead of completing — the answer is
// already decided (yes-answers are exact). The child also inherits the
// request token, so a gone client fells every band the same way.
//
// Every band emits exactly one "band" trace span (including skipped and
// cancelled ones, with the outcome in the note), so a traced query's
// band-span count equals the Stats.Bands contribution of its runs.
func preparedHasOccurrence(pc *PreparedCover, h *graph.Graph, run int, opt Options) bool {
	var found atomic.Bool
	local := par.NewChild(opt.Cancel)
	inner := opt
	inner.Cancel = local
	bands := pc.Bands
	par.ForGrain(0, len(bands), 1, func(i int) {
		injectBandFaults()
		pb := &bands[i]
		t0 := inner.Trace.Begin()
		// The found.Load() check is the pre-pool band-granularity early
		// exit (skip bands not yet started once the answer is known); it
		// stays unconditional so the bandCancelEnabled ablation gate
		// isolates exactly the *mid-flight* cancellation on top of it.
		// pb.Band is nil when a cancelled prepare skipped the band; the
		// token is observed fired before any such band is reached.
		if found.Load() || local.Cancelled() || pb.Band == nil || pb.Band.G.N() < h.N() {
			inner.Trace.Span("band", run, i, t0, "skipped")
			return
		}
		eng, ok := solvePreparedMode(pb, h, false, true, inner)
		if !ok {
			// Fallback: the band decomposition was too wide for the
			// engine; the naive baseline is exact on the band (and not
			// cancellable mid-search, so bail if the answer is decided).
			// Fallback bands contribute zero DP cost: the naive search
			// is outside the state-machinery the counters price.
			if local.Cancelled() {
				inner.Trace.Span("band", run, i, t0, "cancelled")
				return
			}
			if naive.Decide(pb.Band.G, h) {
				found.Store(true)
				cancelSiblings(local)
				inner.Trace.Span("band", run, i, t0, "fallback:found")
			} else {
				inner.Trace.Span("band", run, i, t0, "fallback:miss")
			}
			return
		}
		// The band's cost is snapshotted once and feeds both the span and
		// the query totals; cancelled bands keep their partial cost (the
		// work was performed even though the answer is discarded).
		bandCost := eng.Problem().Cost.Snapshot()
		inner.addBandCost(bandCost)
		// A fired token here means our own DP may have aborted mid-run:
		// its partial result must not be read (and is not needed).
		if local.Cancelled() {
			inner.Trace.SpanCost("band", run, i, t0, "cancelled", bandCost)
			return
		}
		if eng.Found() {
			found.Store(true)
			cancelSiblings(local)
			inner.Trace.SpanCost("band", run, i, t0, "found", bandCost)
		} else {
			inner.Trace.SpanCost("band", run, i, t0, "miss", bandCost)
		}
	})
	return found.Load()
}

// injectBandFaults is the chaos hook at the head of every per-band
// loop body: the band decompositions of prepare and the band dynamic
// programs of decide, enumerate, find and separating. It runs on a
// pool worker mid-query, which is exactly where the fault plan wants
// injected latency (band.latency) and panics (dp.panic) to originate:
// a fired dp.panic must cross par's fork-join scopes to the query's
// goroutine without wedging the shared pool — and, when it fires under
// a memoized artifact build, without poisoning the Index's cache slot.
// No plan installed means one atomic load per band.
func injectBandFaults() {
	fault.Sleep(fault.BandLatency)
	fault.Check(fault.DPPanic)
}

// bandCancelEnabled gates the first-hit sibling cancellation. It exists
// only for the engine ablation benchmark (decide-hit latency with and
// without mid-band cancellation); production code never clears it.
var bandCancelEnabled atomic.Bool

func init() { bandCancelEnabled.Store(true) }

func cancelSiblings(local *par.Canceller) {
	if bandCancelEnabled.Load() {
		local.Cancel()
	}
}

// solvePrepared runs the selected engine on a prepared band, keeping the
// full per-node state sets (required by Enumerate). ok=false signals that
// the decomposition exceeded the engine's bag capacity and the caller
// must use the naive fallback. The prepared band is only read, so
// concurrent queries may share it.
func solvePrepared(pb *PreparedBand, h *graph.Graph, separating bool, opt Options) (*match.Result, bool) {
	return solvePreparedMode(pb, h, separating, false, opt)
}

// solvePreparedMode is solvePrepared with an explicit decideOnly switch:
// decision callers let the engines recycle child state sets as soon as
// they are consumed (only Found is valid on the result).
func solvePreparedMode(pb *PreparedBand, h *graph.Graph, separating, decideOnly bool, opt Options) (*match.Result, bool) {
	opt.noteWidth(pb.Width)
	if pb.Fallback {
		opt.noteFallback()
		return nil, false
	}
	b := pb.Band
	// Each band gets its own cost counter so callers can attribute the
	// engine's counters to this band's span before folding them into the
	// query totals; nil when no sink wants cost, keeping the engines'
	// flush sites on the single-nil-check path.
	var bc *obs.CostCounter
	if opt.costed() {
		bc = new(obs.CostCounter)
	}
	p := &match.Problem{G: b.G, H: h, ND: pb.ND, Allowed: b.Allowed, S: b.S,
		Separating: separating, DecideOnly: decideOnly, Cancel: opt.Cancel,
		Trace: opt.Trace, Cost: bc}
	if separating || opt.Engine == EngineSequential {
		// The path-DAG engine covers plain mode only (its state universe
		// enumeration has no separating labels).
		return match.Run(p, opt.Tracker), true
	}
	eng, _ := pmdag.Run(p, opt.Tracker)
	return eng, true
}
