package core

// Shared-preprocessing support: the pipeline's target-side artifacts
// (ESTC clusterings, k-d covers, nice band decompositions) are split out
// of the query loops so they can be built once and served to many
// queries.
//
// Two properties make the split sound:
//
//  1. Per-run randomness is derived, not consumed. Run i's clustering is
//     a pure function of (Options.Seed, coverStream, i), so a cached
//     cover for run i is bit-identical to the one a fresh pipeline would
//     build — answers with and without a cache are the same for equal
//     Options.
//  2. Prepared artifacts are immutable. The engines only read the band
//     graph, the nice decomposition and the Allowed/S masks, so one
//     PreparedCover can serve any number of concurrent queries.

import (
	"math/rand/v2"

	"planarsi/internal/cover"
	"planarsi/internal/estc"
	"planarsi/internal/graph"
	"planarsi/internal/match"
	"planarsi/internal/par"
	"planarsi/internal/treedecomp"
)

// coverStream is the rng stream from which every cover construction
// derives its per-run randomness. All cover-based operations (Decide,
// FindOne, List, Count, DecideSeparating) draw from this one stream so
// that run i of any operation sees the same clustering — the property
// that lets an Index reuse one prepared cover across operation types.
const coverStream = 1

// runRNG returns the rng driving independent run `run` of the given
// stream. Unlike a sequentially consumed rng, the derivation is a pure
// function of (Seed, stream, run), so run i's cover can be rebuilt — or
// served from a cache — without replaying runs 0..i-1.
func (o Options) runRNG(stream uint64, run int) *rand.Rand {
	return rand.New(rand.NewPCG(o.Seed, 0x9e3779b97f4a7c15^(stream<<32)^uint64(run)))
}

// CoverBeta returns the effective clustering parameter for pattern size k:
// 2k per Theorem 2.4, unless Options.Beta overrides it.
func CoverBeta(k int, opt Options) float64 {
	if opt.Beta > 0 {
		return opt.Beta
	}
	return float64(2 * k)
}

// RunBudget returns the number of independent cover repetitions a
// negative answer needs for w.h.p. correctness on an n-vertex target
// (MaxRuns when set). Callers prewarming a cache use it to size the
// per-(k, d) run range.
func RunBudget(n int, opt Options) int { return opt.maxRuns(n) }

// ClusterRun builds run `run`'s ESTC clustering of g for the clustering
// parameter beta. Equal (Seed, beta, run) give equal clusterings.
func ClusterRun(g *graph.Graph, beta float64, run int, opt Options) *estc.Clustering {
	return estc.Cluster(g, beta, opt.runRNG(coverStream, run), opt.Tracker)
}

// PreparedBand couples a cover band with its nice tree decomposition,
// built once and reusable by any number of queries.
type PreparedBand struct {
	// Band is the underlying cover band (graph, Orig map, Allowed/S
	// masks, lowest-level marks).
	Band *cover.Band
	// ND is the band graph's nice tree decomposition; nil when the
	// decomposition exceeded the engine's bag capacity (Fallback).
	ND *treedecomp.Nice
	// Width is the width of the band's tree decomposition.
	Width int
	// Fallback marks bands that must be solved by the exact naive
	// baseline because their decomposition was too wide for the DP.
	Fallback bool
}

// PreparedCover is one independent run's cover with every band
// decomposition precomputed. It is immutable after construction and safe
// for concurrent use.
type PreparedCover struct {
	Cover *cover.Cover
	Bands []PreparedBand
}

// MemBytes returns the approximate heap footprint of the prepared band:
// the cover band plus its nice decomposition.
func (pb *PreparedBand) MemBytes() int64 {
	b := pb.Band.MemBytes()
	if pb.ND != nil {
		b += pb.ND.MemBytes()
	}
	return b
}

// MemBytes returns the approximate heap footprint of the prepared cover in
// bytes. The clustering that induced the cover is excluded: caches share
// one clustering across many covers and account for it separately.
func (pc *PreparedCover) MemBytes() int64 {
	var b int64
	for i := range pc.Bands {
		b += pc.Bands[i].MemBytes()
	}
	return b
}

// prepare decomposes every band of cov in parallel. A fired Cancel token
// skips the remaining bands, leaving their PreparedBand entries zeroed
// (Band == nil): consumers observe the same monotonic token before
// touching any skipped band, and a cancelled prepare is never cached (an
// Index builds covers with its own token-free Options).
func prepare(cov *cover.Cover, opt Options) *PreparedCover {
	pc := &PreparedCover{Cover: cov, Bands: make([]PreparedBand, len(cov.Bands))}
	par.ForGrain(0, len(cov.Bands), 1, func(i int) {
		injectBandFaults()
		if opt.Cancel.Cancelled() {
			return
		}
		b := cov.Bands[i]
		td := treedecomp.Build(b.G, opt.Heuristic)
		nd := treedecomp.MakeNice(td)
		pb := PreparedBand{Band: b, Width: td.Width()}
		if nd.Width+1 > match.MaxBag {
			pb.Fallback = true
		} else {
			pb.ND = nd
		}
		pc.Bands[i] = pb
	})
	return pc
}

// PrepareRun builds and decomposes run `run`'s plain cover of g for
// patterns of size k and diameter d — the fresh, uncached path.
func PrepareRun(g *graph.Graph, k, d, run int, opt Options) *PreparedCover {
	return PrepareFromClustering(g, ClusterRun(g, CoverBeta(k, opt), run, opt), k, d, opt)
}

// PrepareFromClustering decomposes the plain cover induced by an existing
// clustering (shared across pattern diameters by a cache).
func PrepareFromClustering(g *graph.Graph, cl *estc.Clustering, k, d int, opt Options) *PreparedCover {
	cov := cover.FromClustering(g, cl, cover.Params{K: k, D: d, Beta: opt.Beta}, opt.Tracker)
	return prepare(cov, opt)
}

// PrepareSeparatingRun is PrepareRun for the Section 5.2.1 separating
// covers (band minors carrying Allowed and S marks for terminal set s).
func PrepareSeparatingRun(g *graph.Graph, s []bool, k, d, run int, opt Options) *PreparedCover {
	return PrepareSeparatingFromClustering(g, ClusterRun(g, CoverBeta(k, opt), run, opt), s, k, d, opt)
}

// PrepareSeparatingFromClustering decomposes the separating cover induced
// by an existing clustering.
func PrepareSeparatingFromClustering(g *graph.Graph, cl *estc.Clustering, s []bool, k, d int, opt Options) *PreparedCover {
	cov := cover.SeparatingFromClustering(g, cl, s, cover.Params{K: k, D: d, Beta: opt.Beta}, opt.Tracker)
	return prepare(cov, opt)
}

// A CoverSource supplies the prepared plain cover for each independent
// run of a pipeline loop, keyed by pattern size k, pattern diameter d and
// run index. Implementations must be safe for concurrent use and must
// return the cover PrepareRun(g, k, d, run, opt) would build for the same
// Options; planarsi.Index returns memoized instances.
type CoverSource interface {
	Prepared(k, d, run int) *PreparedCover
}

// A SeparatingSource supplies prepared separating covers per (terminal
// set, pattern size, pattern diameter, run).
type SeparatingSource interface {
	PreparedSeparating(s []bool, k, d, run int) *PreparedCover
}

// freshSource rebuilds every prepared cover on demand: the non-indexed
// single-query path.
type freshSource struct {
	g   *graph.Graph
	opt Options
}

func (f freshSource) Prepared(k, d, run int) *PreparedCover {
	return PrepareRun(f.g, k, d, run, f.opt)
}

func (f freshSource) PreparedSeparating(s []bool, k, d, run int) *PreparedCover {
	return PrepareSeparatingRun(f.g, s, k, d, run, f.opt)
}
