package core

import (
	"fmt"
	"math"
	"sync"

	"planarsi/internal/graph"
	"planarsi/internal/match"
	"planarsi/internal/naive"
	"planarsi/internal/obs"
	"planarsi/internal/par"
)

// List returns (w.h.p.) every occurrence of the connected pattern h in g,
// implementing Theorem 4.2: repeat the cover-and-enumerate run, dedupe by
// hashing, and stop once log2(j) + Θ(log n) consecutive iterations find
// nothing new (Observation 2 bounds the probability that a long head
// streak hides an unfound occurrence). Every iteration finds each fixed
// occurrence with probability >= 1/2.
//
// Occurrences are injective maps from pattern vertices to target vertices;
// automorphic images of the same vertex set count separately, matching the
// paper's listing semantics.
func List(g, h *graph.Graph, opt Options) ([]Occurrence, error) {
	return ListFrom(freshSource{g, opt}, g, h, opt)
}

// ListFrom is List drawing its per-run covers from src.
func ListFrom(src CoverSource, g, h *graph.Graph, opt Options) ([]Occurrence, error) {
	if trivial, res, err := validate(g, h); err != nil {
		return nil, err
	} else if trivial {
		if !res {
			return nil, nil
		}
		// k == 0: the unique empty occurrence.
		return []Occurrence{{}}, nil
	}
	if _, l := graph.Components(h); l > 1 {
		return nil, ErrDisconnectedPattern
	}
	k := h.N()
	if k == 1 {
		out := make([]Occurrence, g.N())
		for v := range out {
			out[v] = Occurrence{int32(v)}
		}
		return out, nil
	}
	d := graph.Diameter(h)
	found := make(map[string]Occurrence)
	logN := math.Log2(float64(g.N()) + 2)
	j := 0
	streak := 0
	for {
		if opt.Cancel.Cancelled() {
			return nil, par.ErrCancelled
		}
		t0 := opt.Trace.Begin()
		pc := src.Prepared(k, d, j)
		tracePrepare(opt, j, t0, pc)
		run := j
		j++
		opt.addRun(len(pc.Bands))
		occs := enumeratePrepared(pc, h, run, opt)
		added := 0
		for _, o := range occs {
			key := o.Key()
			if _, dup := found[key]; !dup {
				found[key] = o
				added++
			}
		}
		if added > 0 {
			streak = 0
		} else {
			streak++
		}
		// Stopping rule of Theorem 4.2: terminate after log2(j) + Θ(log n)
		// consecutive empty iterations.
		threshold := int(math.Ceil(math.Log2(float64(j)+1))) + int(math.Ceil(2*logN)) + 1
		if streak >= threshold {
			break
		}
		if opt.MaxRuns > 0 && j >= opt.MaxRuns {
			break
		}
	}
	// A token that fired during the last iterations may have truncated
	// enumeration (bands silently skip when cancelled); the stopping rule
	// could then break with an incomplete `found`. Never return partial
	// data with a nil error.
	if err := opt.Cancel.Err(); err != nil {
		return nil, err
	}
	out := make([]Occurrence, 0, len(found))
	for _, o := range found {
		out = append(out, o)
	}
	return out, nil
}

// Count returns (w.h.p.) the number of occurrences of the connected
// pattern h in g. As the paper's conclusion notes, counting via listing is
// not work-efficient — the work grows with the number of occurrences —
// but it is correct w.h.p.
func Count(g, h *graph.Graph, opt Options) (int, error) {
	occs, err := List(g, h, opt)
	return len(occs), err
}

// CountFrom is Count drawing its per-run covers from src.
func CountFrom(src CoverSource, g, h *graph.Graph, opt Options) (int, error) {
	occs, err := ListFrom(src, g, h, opt)
	return len(occs), err
}

// FindOne returns a single occurrence of the connected pattern h in g, or
// nil when none was found within the run budget.
func FindOne(g, h *graph.Graph, opt Options) (Occurrence, error) {
	return FindOneFrom(freshSource{g, opt}, g, h, opt)
}

// FindOneFrom is FindOne drawing its per-run covers from src.
func FindOneFrom(src CoverSource, g, h *graph.Graph, opt Options) (Occurrence, error) {
	if trivial, res, err := validate(g, h); err != nil {
		return nil, err
	} else if trivial {
		if res {
			return Occurrence{}, nil
		}
		return nil, nil
	}
	if _, l := graph.Components(h); l > 1 {
		return nil, ErrDisconnectedPattern
	}
	k := h.N()
	if k == 1 {
		return Occurrence{0}, nil
	}
	d := graph.Diameter(h)
	runs := opt.maxRuns(g.N())
	for run := 0; run < runs; run++ {
		if opt.Cancel.Cancelled() {
			return nil, par.ErrCancelled
		}
		t0 := opt.Trace.Begin()
		pc := src.Prepared(k, d, run)
		tracePrepare(opt, run, t0, pc)
		opt.addRun(len(pc.Bands))
		if occ := findInPrepared(pc, h, run, opt); occ != nil {
			return occ, nil
		}
	}
	if err := opt.Cancel.Err(); err != nil {
		return nil, err
	}
	return nil, nil
}

// enumeratePrepared lists every occurrence contained in some band of the
// prepared cover, translated to original vertex ids. Following Section
// 4.2.1, only occurrences touching the band's lowest BFS level are
// reported, so each occurrence inside a cluster is produced by exactly one
// band (the one whose lowest level is the occurrence's closest-to-root
// level); this keeps the per-run work proportional to the number of
// occurrences rather than d times it.
func enumeratePrepared(pc *PreparedCover, h *graph.Graph, run int, opt Options) []Occurrence {
	bands := pc.Bands
	results := make([][]Occurrence, len(bands))
	par.ForGrain(0, len(bands), 1, func(i int) {
		injectBandFaults()
		t0 := opt.Trace.Begin()
		if opt.Cancel.Cancelled() || bands[i].Band == nil {
			opt.Trace.Span("band", run, i, t0, "skipped")
			return
		}
		occs, cost := enumerateBand(&bands[i], h, opt)
		results[i] = occs
		opt.addBandCost(cost)
		if opt.Trace != nil {
			// The note's occurrence count is only rendered on traced
			// queries; unexercised fmt stays off the untraced path.
			opt.Trace.SpanCost("band", run, i, t0, fmt.Sprintf("occs=%d", len(occs)), cost)
		}
	})
	var out []Occurrence
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// enumerateBand lists the band's occurrences that touch its lowest
// level, returning the band's DP cost alongside (zero for tiny bands
// and naive fallbacks).
func enumerateBand(pb *PreparedBand, h *graph.Graph, opt Options) ([]Occurrence, obs.Cost) {
	b := pb.Band
	if b.G.N() < h.N() {
		return nil, obs.Cost{}
	}
	var local []match.Assignment
	var cost obs.Cost
	if eng, ok := solvePrepared(pb, h, false, opt); ok {
		cost = eng.Problem().Cost.Snapshot()
		if opt.Cancel.Cancelled() {
			// The DP may have aborted mid-run; Enumerate on a partial
			// result is unsound and the answer is being discarded anyway.
			return nil, cost
		}
		local = eng.Enumerate(0)
	} else {
		for _, a := range naive.Search(b.G, h, naive.Options{}) {
			local = append(local, match.Assignment(a))
		}
	}
	var out []Occurrence
	for _, a := range local {
		if !touchesLowest(b.LowestLevelLocal, a) {
			continue
		}
		occ := make(Occurrence, len(a))
		for u, lv := range a {
			occ[u] = b.Orig[lv]
		}
		out = append(out, occ)
	}
	return out, cost
}

func touchesLowest(lowest []bool, a match.Assignment) bool {
	for _, lv := range a {
		if lv >= 0 && lowest[lv] {
			return true
		}
	}
	return false
}

// findInPrepared returns one occurrence from any band of the prepared
// cover (original ids), or nil. The first band to store a hit cancels
// its siblings mid-DP through a band-local child token (the answer is a
// single witness; completing the other bands is pure waste).
func findInPrepared(pc *PreparedCover, h *graph.Graph, run int, opt Options) Occurrence {
	bands := pc.Bands
	bandCancel := par.NewChild(opt.Cancel)
	inner := opt
	inner.Cancel = bandCancel
	var mu sync.Mutex
	var hit Occurrence
	par.ForGrain(0, len(bands), 1, func(i int) {
		injectBandFaults()
		pb := &bands[i]
		b := pb.Band
		t0 := inner.Trace.Begin()
		if bandCancel.Cancelled() || b == nil || b.G.N() < h.N() {
			inner.Trace.Span("band", run, i, t0, "skipped")
			return
		}
		var local []match.Assignment
		var cost obs.Cost
		if eng, ok := solvePrepared(pb, h, false, inner); ok {
			cost = eng.Problem().Cost.Snapshot()
			inner.addBandCost(cost)
			if bandCancel.Cancelled() {
				inner.Trace.SpanCost("band", run, i, t0, "cancelled", cost)
				return
			}
			local = eng.Enumerate(1)
		} else {
			for _, a := range naive.Search(b.G, h, naive.Options{Limit: 1}) {
				local = append(local, match.Assignment(a))
			}
		}
		if len(local) == 0 {
			inner.Trace.SpanCost("band", run, i, t0, "miss", cost)
			return
		}
		inner.Trace.SpanCost("band", run, i, t0, "found", cost)
		occ := make(Occurrence, len(local[0]))
		for u, lv := range local[0] {
			occ[u] = b.Orig[lv]
		}
		mu.Lock()
		if hit == nil {
			hit = occ
		}
		mu.Unlock()
		cancelSiblings(bandCancel)
	})
	return hit
}
