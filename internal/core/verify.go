package core

import (
	"planarsi/internal/graph"
)

// VerifyOccurrence checks that occ is an injective map from the vertices
// of h to the vertices of g realizing every edge of h — the definition of
// a subgraph isomorphism from Section 1.1. It is the independent safety
// net the tests and the public API apply to every reported occurrence.
func VerifyOccurrence(g, h *graph.Graph, occ Occurrence) bool {
	if len(occ) != h.N() {
		return false
	}
	seen := make(map[int32]struct{}, len(occ))
	for _, v := range occ {
		if v < 0 || int(v) >= g.N() {
			return false
		}
		if _, dup := seen[v]; dup {
			return false
		}
		seen[v] = struct{}{}
	}
	for _, e := range h.Edges() {
		if !g.HasEdge(occ[e[0]], occ[e[1]]) {
			return false
		}
	}
	return true
}

// VerifySeparating checks that occ is a valid occurrence of h in g AND
// that removing its image disconnects at least two vertices of s
// (Section 5.1's separating-subgraph condition).
func VerifySeparating(g, h *graph.Graph, s []bool, occ Occurrence) bool {
	if !VerifyOccurrence(g, h, occ) {
		return false
	}
	return assignmentSeparates(g, s, occ)
}
