package core

import (
	"math/rand/v2"
	"sort"
	"testing"

	"planarsi/internal/graph"
	"planarsi/internal/naive"
	"planarsi/internal/wd"
)

func randomPattern(k, extra int, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(k)
	for v := 1; v < k; v++ {
		b.AddEdge(int32(v), int32(rng.IntN(v)))
	}
	for e := 0; e < extra; e++ {
		u := rng.Int32N(int32(k))
		v := rng.Int32N(int32(k))
		if u != v && !b.HasEdge(u, v) {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// Yes-answers must always be exact and no-answers match the oracle w.h.p.;
// on these sizes with the default run budget a disagreement would be a
// bug, not bad luck.
func TestDecideAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 40; trial++ {
		n := 10 + rng.IntN(60)
		g := graph.RandomPlanar(n, rng.Float64(), rng)
		h := randomPattern(2+rng.IntN(4), rng.IntN(3), rng)
		want := naive.Decide(g, h)
		got, err := Decide(g, h, Options{Seed: uint64(trial)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got != want {
			t.Fatalf("trial %d: Decide=%v oracle=%v (n=%d k=%d)", trial, got, want, n, h.N())
		}
	}
}

func TestDecideSequentialEngineAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomPlanar(10+rng.IntN(40), rng.Float64(), rng)
		h := randomPattern(3, rng.IntN(2), rng)
		want := naive.Decide(g, h)
		got, err := Decide(g, h, Options{Seed: uint64(trial), Engine: EngineSequential})
		if err != nil || got != want {
			t.Fatalf("trial %d: got=%v want=%v err=%v", trial, got, want, err)
		}
	}
}

func TestDecideTrivialCases(t *testing.T) {
	g := graph.Cycle(5)
	empty := graph.NewBuilder(0).Build()
	if ok, err := Decide(g, empty, Options{}); err != nil || !ok {
		t.Fatalf("empty pattern: got %v, %v", ok, err)
	}
	single := graph.NewBuilder(1).Build()
	if ok, err := Decide(g, single, Options{}); err != nil || !ok {
		t.Fatalf("single vertex: got %v, %v", ok, err)
	}
	big := graph.Cycle(6)
	if ok, err := Decide(g, big, Options{}); err != nil || ok {
		t.Fatalf("k>n: got %v, %v", ok, err)
	}
	dense := graph.Complete(4)
	sparse := graph.Path(4)
	if ok, err := Decide(sparse, dense, Options{}); err != nil || ok {
		t.Fatalf("m(H)>m(G): got %v, %v", ok, err)
	}
}

func TestDecidePatternTooLarge(t *testing.T) {
	g := graph.Grid(10, 10)
	h := graph.Path(17)
	if _, err := Decide(g, h, Options{}); err == nil {
		t.Fatal("expected ErrPatternTooLarge")
	}
}

func TestDecideFindsPlantedCycle(t *testing.T) {
	// A C4 planted in a grid must be found (w.p. 1 - 2^-runs; determinstic
	// seed makes the test reproducible).
	g := graph.Grid(12, 12)
	h := graph.Cycle(4)
	ok, err := Decide(g, h, Options{Seed: 42})
	if err != nil || !ok {
		t.Fatalf("C4 in grid: got %v, %v", ok, err)
	}
	// Grids are bipartite: no odd cycle.
	odd := graph.Cycle(5)
	ok, err = Decide(g, odd, Options{Seed: 42})
	if err != nil || ok {
		t.Fatalf("C5 in bipartite grid: got %v, %v", ok, err)
	}
}

func TestFindOneVerifies(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	foundSomething := false
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomPlanar(12+rng.IntN(50), 0.4+0.6*rng.Float64(), rng)
		h := randomPattern(2+rng.IntN(4), rng.IntN(2), rng)
		occ, err := FindOne(g, h, Options{Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if occ == nil {
			if naive.Decide(g, h) {
				t.Fatalf("trial %d: FindOne missed an existing occurrence", trial)
			}
			continue
		}
		foundSomething = true
		if !VerifyOccurrence(g, h, occ) {
			t.Fatalf("trial %d: invalid occurrence %v", trial, occ)
		}
	}
	if !foundSomething {
		t.Fatal("no trial produced an occurrence; test inputs too hostile")
	}
}

// The paper's listing guarantee: all occurrences, each exactly once.
func TestListMatchesOracleExactly(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomPlanar(8+rng.IntN(25), rng.Float64(), rng)
		h := randomPattern(3, rng.IntN(2), rng)
		wantSet := map[string]struct{}{}
		for _, a := range naive.Search(g, h, naive.Options{}) {
			wantSet[Occurrence(a).Key()] = struct{}{}
		}
		got, err := List(g, h, Options{Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(wantSet) {
			t.Fatalf("trial %d: listed %d occurrences, oracle has %d", trial, len(got), len(wantSet))
		}
		for _, o := range got {
			if _, ok := wantSet[o.Key()]; !ok {
				t.Fatalf("trial %d: listed non-occurrence %v", trial, o)
			}
			if !VerifyOccurrence(g, h, o) {
				t.Fatalf("trial %d: listed invalid occurrence %v", trial, o)
			}
		}
	}
}

func TestListSingleVertexPattern(t *testing.T) {
	g := graph.Path(7)
	h := graph.NewBuilder(1).Build()
	occs, err := List(g, h, Options{})
	if err != nil || len(occs) != 7 {
		t.Fatalf("got %d occurrences, %v; want 7", len(occs), err)
	}
}

func TestCountC4InGrid(t *testing.T) {
	// A 4x4 grid has exactly 9 unit squares; each C4 subgraph has 8
	// automorphic maps (4 rotations x 2 reflections).
	g := graph.Grid(4, 4)
	h := graph.Cycle(4)
	count, err := Count(g, h, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if count != 9*8 {
		t.Fatalf("count = %d, want %d", count, 9*8)
	}
}

func TestListRejectsDisconnectedPattern(t *testing.T) {
	g := graph.Grid(4, 4)
	h := graph.DisjointUnion(graph.Path(2), graph.Path(2))
	if _, err := List(g, h, Options{}); err != ErrDisconnectedPattern {
		t.Fatalf("err = %v, want ErrDisconnectedPattern", err)
	}
}

func TestDecideDisconnectedPattern(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomPlanar(15+rng.IntN(25), 0.5, rng)
		h := graph.DisjointUnion(graph.Path(2), graph.Path(2))
		want := naive.Decide(g, h)
		got, err := Decide(g, h, Options{Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: got=%v want=%v", trial, got, want)
		}
	}
}

func TestDecideDisconnectedTriangles(t *testing.T) {
	// Two disjoint triangles as pattern; target has exactly two triangles
	// far apart in a path of diamonds.
	rng := rand.New(rand.NewPCG(11, 12))
	g := graph.DisjointUnion(graph.Cycle(3), graph.Path(6), graph.Cycle(3))
	h := graph.DisjointUnion(graph.Cycle(3), graph.Cycle(3))
	got, err := Decide(g, h, Options{Seed: 1})
	if err != nil || !got {
		t.Fatalf("two triangles: got %v, %v", got, err)
	}
	// Only one triangle present: must be false.
	g2 := graph.DisjointUnion(graph.Cycle(3), graph.Path(9))
	got, err = Decide(g2, h, Options{Seed: 1})
	if err != nil || got {
		t.Fatalf("one triangle: got %v, %v", got, err)
	}
	_ = rng
}

func TestStatsPopulated(t *testing.T) {
	var st Stats
	tr := wd.NewTracker()
	g := graph.Grid(10, 10)
	h := graph.Cycle(4)
	ok, err := Decide(g, h, Options{Seed: 2, Stats: &st, Tracker: tr})
	if err != nil || !ok {
		t.Fatalf("decide failed: %v %v", ok, err)
	}
	if st.Runs == 0 || st.Bands == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	if tr.Work() == 0 || tr.Rounds() == 0 {
		t.Fatalf("tracker not populated: %v", tr)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	g := graph.Grid(9, 9)
	h := graph.Path(4)
	a, err1 := List(g, h, Options{Seed: 123})
	b, err2 := List(g, h, Options{Seed: 123})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i := range a {
		ka[i] = a[i].Key()
	}
	for i := range b {
		kb[i] = b[i].Key()
	}
	sort.Strings(ka)
	sort.Strings(kb)
	if len(ka) != len(kb) {
		t.Fatalf("different occurrence counts: %d vs %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("occurrence sets differ at %d", i)
		}
	}
}

func TestDecideSeparatingCycleOnGrid(t *testing.T) {
	// In a 5x5 grid with terminals at the center and a corner, a C8 around
	// the center separates them. (Removing the 8 neighbors of the center
	// isolates it.)
	g := graph.Grid(5, 5)
	s := make([]bool, g.N())
	s[2*5+2] = true // center
	s[0] = true     // corner
	h := graph.Cycle(8)
	occ, err := DecideSeparating(g, h, s, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if occ == nil {
		t.Skip("grid C8 separation needs the diagonal ring; covered below")
	}
	if !VerifySeparating(g, h, s, occ) {
		t.Fatalf("witness does not verify: %v", occ)
	}
}

func TestDecideSeparatingWheel(t *testing.T) {
	// Wheel: the rim cycle separates the hub from nothing else — with
	// terminals only the hub and one rim vertex there is no separating
	// triangle. With the hub and a phantom... use a two-hub construction:
	// two wheels sharing their rim. Removing the rim separates the hubs.
	rim := 6
	b := graph.NewBuilder(rim + 2)
	hub1, hub2 := int32(rim), int32(rim+1)
	for i := 0; i < rim; i++ {
		b.AddEdge(int32(i), int32((i+1)%rim))
		b.AddEdge(int32(i), hub1)
		b.AddEdge(int32(i), hub2)
	}
	g := b.Build()
	s := make([]bool, g.N())
	s[hub1] = true
	s[hub2] = true
	h := graph.Cycle(rim)
	occ, err := DecideSeparating(g, h, s, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if occ == nil {
		t.Fatal("rim cycle separating the two hubs not found")
	}
	if !VerifySeparating(g, h, s, occ) {
		t.Fatalf("witness does not verify: %v", occ)
	}
	// A triangle cannot separate the hubs: every 3 rim vertices leave a
	// rim path connecting them (rim >= 6 and hubs see all rim vertices).
	tri := graph.Cycle(3)
	occ, err = DecideSeparating(g, tri, s, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if occ != nil {
		t.Fatalf("found impossible separating triangle: %v", occ)
	}
}

func TestDecideSeparatingNoTerminals(t *testing.T) {
	g := graph.Grid(4, 4)
	s := make([]bool, g.N())
	h := graph.Cycle(4)
	occ, err := DecideSeparating(g, h, s, Options{})
	if err != nil || occ != nil {
		t.Fatalf("no terminals: got %v, %v", occ, err)
	}
	s[0] = true
	occ, err = DecideSeparating(g, h, s, Options{})
	if err != nil || occ != nil {
		t.Fatalf("one terminal: got %v, %v", occ, err)
	}
}

// DecideSeparating must agree with a brute-force separating search.
func TestDecideSeparatingAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	for trial := 0; trial < 12; trial++ {
		g := graph.RandomPlanar(10+rng.IntN(20), 0.4+0.6*rng.Float64(), rng)
		s := make([]bool, g.N())
		for v := range s {
			s[v] = rng.Float64() < 0.5
		}
		h := graph.Cycle(3 + rng.IntN(2))
		want := false
		for _, a := range naive.Search(g, h, naive.Options{}) {
			if assignmentSeparates(g, s, a) {
				want = true
				break
			}
		}
		occ, err := DecideSeparating(g, h, s, Options{Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		got := occ != nil
		if got != want {
			t.Fatalf("trial %d: got=%v want=%v", trial, got, want)
		}
		if got && !VerifySeparating(g, h, s, occ) {
			t.Fatalf("trial %d: witness fails verification", trial)
		}
	}
}

func TestListWithBetaOverride(t *testing.T) {
	// The beta override must not change the listed set, only the cover
	// shape (correctness is independent of beta).
	g := graph.Grid(4, 4)
	h := graph.Cycle(4)
	def, err := List(g, h, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	small, err := List(g, h, Options{Seed: 9, Beta: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(def) != len(small) {
		t.Fatalf("beta override changed the occurrence count: %d vs %d", len(def), len(small))
	}
}

func TestFindOneSequentialEngine(t *testing.T) {
	g := graph.Grid(6, 6)
	h := graph.Path(5)
	occ, err := FindOne(g, h, Options{Seed: 10, Engine: EngineSequential})
	if err != nil || occ == nil {
		t.Fatalf("P5 not found: %v %v", occ, err)
	}
	if !VerifyOccurrence(g, h, occ) {
		t.Fatalf("invalid occurrence %v", occ)
	}
}
