// Package estc implements Exponential Start Time Clustering
// (Miller-Peng-Vladu-Xu, SPAA 2015), the low-diameter decomposition behind
// Lemma 2.3 of the paper:
//
//	With O(n) work and O(β log n) depth, Exponential Start Time
//	β-Clustering produces, w.h.p., clusters of diameter O(β log n) where
//	each edge crosses the clusters with probability at most 1/β.
//
// Every vertex u draws an exponential shift δ_u ~ Exp(1/β) (mean β) and
// becomes a potential cluster center that "starts growing" at time
// (max δ) - δ_u; vertex w joins the center minimizing start_c + d(c, w).
// Because edge lengths are 1 and start times are real, arrival times of a
// round fall in a unit interval and each round's winners are final, so the
// process is simulated exactly by a bucketed level-synchronous expansion
// (one bucket per unit of time), the parallel-BFS-like loop below.
//
// Observation 1 of the paper is the reason this clustering is the right
// one: with β = 2k, a fixed connected k-vertex subgraph keeps all its
// spanning tree edges inside one cluster with probability at least 1/2.
package estc

import (
	"fmt"
	"math"
	"math/rand/v2"
	"slices"
	"sync/atomic"

	"planarsi/internal/graph"
	"planarsi/internal/par"
	"planarsi/internal/wd"
)

// Clustering is a partition of the vertices into low-diameter clusters.
type Clustering struct {
	// Owner[v] is the dense cluster id of v.
	Owner []int32
	// Center[c] is the vertex that seeded cluster c.
	Center []int32
	// Rounds is the number of synchronous rounds the growth took; the
	// paper's depth bound for this phase is O(β log n).
	Rounds int
}

// NumClusters returns the number of clusters.
func (c *Clustering) NumClusters() int { return len(c.Center) }

// Equal reports whether two clusterings are identical: same owners, same
// centers, same round count. Incremental invalidation uses it to decide
// whether a clustering memoized for an earlier graph generation can keep
// serving after an edit — equality here guarantees every artifact derived
// from the clustering is bit-identical to a fresh rebuild.
func (c *Clustering) Equal(o *Clustering) bool {
	if c == o {
		return true
	}
	if c == nil || o == nil {
		return false
	}
	return c.Rounds == o.Rounds &&
		slices.Equal(c.Owner, o.Owner) &&
		slices.Equal(c.Center, o.Center)
}

// MemBytes returns the approximate heap footprint of the clustering in
// bytes (cache accounting for the serving layer's memory budget).
func (c *Clustering) MemBytes() int64 {
	return int64(cap(c.Owner))*4 + int64(cap(c.Center))*4
}

// Validate checks that the clustering is structurally sound for an
// n-vertex graph: every vertex has an owner in [0, NumClusters) and
// every center is a vertex. Snapshot decoding calls it so a clustering
// restored from an untrusted file can never index out of bounds.
func (c *Clustering) Validate(n int) error {
	if len(c.Owner) != n {
		return fmt.Errorf("estc: %d owners for %d vertices", len(c.Owner), n)
	}
	nc := int32(len(c.Center))
	for v, o := range c.Owner {
		if o < 0 || o >= nc {
			return fmt.Errorf("estc: vertex %d owned by cluster %d, outside [0, %d)", v, o, nc)
		}
	}
	for ci, ctr := range c.Center {
		if ctr < 0 || int(ctr) >= n {
			return fmt.Errorf("estc: cluster %d centered at %d, outside [0, %d)", ci, ctr, n)
		}
	}
	if c.Rounds < 0 {
		return fmt.Errorf("estc: negative round count %d", c.Rounds)
	}
	return nil
}

// CrossingEdges counts edges whose endpoints lie in different clusters.
func (c *Clustering) CrossingEdges(g *graph.Graph) int {
	count := 0
	for _, e := range g.Edges() {
		if c.Owner[e[0]] != c.Owner[e[1]] {
			count++
		}
	}
	return count
}

// candidate is one (vertex, center, arrival) claim attempt of a round.
type candidate struct {
	vertex  int32
	center  int32
	arrival float64
}

// better reports whether a should beat b (smaller arrival; ties broken by
// center id so the outcome is schedule-independent).
func better(a, b candidate) bool {
	if a.arrival != b.arrival {
		return a.arrival < b.arrival
	}
	return a.center < b.center
}

// Cluster runs Exponential Start Time β-Clustering on g.
//
// The shifts are capped at β·(2 ln n + 6), which changes nothing w.h.p.
// (the exponential tail beyond the cap has probability n^{-2}) and keeps
// the round count deterministic and O(β log n).
func Cluster(g *graph.Graph, beta float64, rng *rand.Rand, tr *wd.Tracker) *Clustering {
	n := g.N()
	if n == 0 {
		return &Clustering{Owner: nil, Center: nil}
	}
	if beta <= 0 {
		panic("estc: beta must be positive")
	}
	cap64 := beta * (2*math.Log(float64(n)+1) + 6)
	delta := make([]float64, n)
	deltaMax := 0.0
	for v := 0; v < n; v++ {
		d := rng.ExpFloat64() * beta
		if d > cap64 {
			d = cap64
		}
		delta[v] = d
		if d > deltaMax {
			deltaMax = d
		}
	}
	// start[v] = deltaMax - delta[v] in [0, deltaMax].
	// Bucket potential centers by floor(start).
	numBuckets := int(deltaMax) + 2
	buckets := make([][]int32, numBuckets)
	start := make([]float64, n)
	for v := 0; v < n; v++ {
		start[v] = deltaMax - delta[v]
		b := int(start[v])
		buckets[b] = append(buckets[b], int32(v))
	}

	owner := make([]int32, n)
	arrival := make([]float64, n)
	claimed := make([]bool, n)
	for v := range owner {
		owner[v] = -1
	}

	// best[v] indexes into the current round's candidate slice; -1 = none.
	best := make([]atomic.Int32, n)
	for v := range best {
		best[v].Store(-1)
	}

	frontier := make([]int32, 0, n)
	rounds := 0
	remaining := n
	for t := 0; remaining > 0; t++ {
		rounds++
		// Gather candidates: center activations of this bucket plus
		// propagations from vertices claimed last round.
		var cands []candidate
		if t < numBuckets {
			for _, v := range buckets[t] {
				if !claimed[v] {
					cands = append(cands, candidate{vertex: v, center: v, arrival: start[v]})
				}
			}
		}
		// Frontier edges, slotted by prefix sums for a parallel scan.
		if len(frontier) > 0 {
			deg := make([]int32, len(frontier))
			par.For(0, len(frontier), func(i int) {
				deg[i] = int32(g.Degree(frontier[i]))
			})
			total := par.ExclusivePrefixSum(deg)
			props := make([]candidate, total)
			par.For(0, len(frontier), func(i int) {
				v := frontier[i]
				base := deg[i]
				for j, w := range g.Neighbors(v) {
					c := candidate{vertex: -1}
					if !claimed[w] {
						c = candidate{vertex: w, center: owner[v], arrival: arrival[v] + 1}
					}
					props[base+int32(j)] = c
				}
			})
			props = par.Pack(props, func(i int) bool { return props[i].vertex >= 0 })
			cands = append(cands, props...)
		}
		if len(cands) == 0 {
			if t >= numBuckets {
				break // nothing can ever activate again
			}
			continue
		}
		// Resolve: atomic best-candidate per vertex.
		par.For(0, len(cands), func(i int) {
			v := cands[i].vertex
			for {
				cur := best[v].Load()
				if cur >= 0 && !better(cands[i], cands[cur]) {
					return
				}
				if best[v].CompareAndSwap(cur, int32(i)) {
					return
				}
			}
		})
		// Claim winners and build the next frontier.
		winners := par.Pack(cands, func(i int) bool {
			c := cands[i]
			return best[c.vertex].Load() == int32(i)
		})
		frontier = frontier[:0]
		for _, w := range winners {
			if !claimed[w.vertex] {
				claimed[w.vertex] = true
				owner[w.vertex] = w.center
				arrival[w.vertex] = w.arrival
				frontier = append(frontier, w.vertex)
				remaining--
			}
			best[w.vertex].Store(-1)
		}
		// Reset best slots touched by losing candidates too.
		par.For(0, len(cands), func(i int) {
			best[cands[i].vertex].Store(-1)
		})
		tr.AddPhaseWork("estc", int64(len(cands)))
		tr.AddPhaseRounds("estc", 1)
	}

	// Relabel owners densely.
	centerIndex := make(map[int32]int32)
	var centers []int32
	dense := make([]int32, n)
	for v := 0; v < n; v++ {
		c := owner[v]
		idx, ok := centerIndex[c]
		if !ok {
			idx = int32(len(centers))
			centerIndex[c] = idx
			centers = append(centers, c)
		}
		dense[v] = idx
	}
	return &Clustering{Owner: dense, Center: centers, Rounds: rounds}
}
