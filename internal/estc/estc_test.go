package estc

import (
	"math"
	"math/rand/v2"
	"testing"

	"planarsi/internal/bfs"
	"planarsi/internal/graph"
)

func TestClusterIsPartition(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	g := graph.RandomPlanar(300, 0.5, rng)
	c := Cluster(g, 4, rng, nil)
	if len(c.Owner) != g.N() {
		t.Fatal("owner array wrong size")
	}
	for v, o := range c.Owner {
		if o < 0 || int(o) >= c.NumClusters() {
			t.Fatalf("vertex %d has invalid owner %d", v, o)
		}
	}
	// Every center owns itself.
	for i, ctr := range c.Center {
		if c.Owner[ctr] != int32(i) {
			t.Fatalf("center %d not in its own cluster", ctr)
		}
	}
}

// Clusters must be connected: each vertex joined via a neighbor in the
// same cluster (or is the center).
func TestClustersConnected(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 3))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomPlanar(200, rng.Float64(), rng)
		c := Cluster(g, 3, rng, nil)
		for cl := 0; cl < c.NumClusters(); cl++ {
			within := make([]bool, g.N())
			var members []int32
			for v := int32(0); v < int32(g.N()); v++ {
				if c.Owner[v] == int32(cl) {
					within[v] = true
					members = append(members, v)
				}
			}
			res := bfs.Levels(g, []int32{c.Center[cl]}, within, nil)
			for _, v := range members {
				if res.Dist[v] < 0 {
					t.Fatalf("trial %d: cluster %d disconnected at vertex %d", trial, cl, v)
				}
			}
		}
	}
}

// Lemma 2.3 shape check: each edge crosses with probability about 1/beta.
// We test the empirical crossing fraction stays below 2/beta over many
// runs (the union-bound constant in the paper's proof allows slack).
func TestCrossingProbabilityBound(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 5))
	g := graph.Grid(30, 30)
	for _, beta := range []float64{4, 8, 16} {
		crossing := 0
		totalEdges := 0
		for trial := 0; trial < 30; trial++ {
			c := Cluster(g, beta, rng, nil)
			crossing += c.CrossingEdges(g)
			totalEdges += g.M()
		}
		frac := float64(crossing) / float64(totalEdges)
		if frac > 2/beta {
			t.Errorf("beta=%v: crossing fraction %.4f exceeds 2/beta=%.4f", beta, frac, 2/beta)
		}
		if frac == 0 {
			t.Errorf("beta=%v: suspiciously zero crossing fraction", beta)
		}
	}
}

// Lemma 2.3 diameter check: cluster radius (distance from center) is
// O(beta log n); the cap in the implementation makes the worst case
// beta(2 ln n + 6) + O(1).
func TestClusterDiameterBound(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 7))
	g := graph.Grid(40, 40)
	beta := 6.0
	bound := int(beta*(2*math.Log(float64(g.N())+1)+6)) + 2
	for trial := 0; trial < 5; trial++ {
		c := Cluster(g, beta, rng, nil)
		for cl := 0; cl < c.NumClusters(); cl++ {
			within := make([]bool, g.N())
			for v := int32(0); v < int32(g.N()); v++ {
				if c.Owner[v] == int32(cl) {
					within[v] = true
				}
			}
			res := bfs.Levels(g, []int32{c.Center[cl]}, within, nil)
			if res.MaxLevel > bound {
				t.Fatalf("cluster %d radius %d exceeds bound %d", cl, res.MaxLevel, bound)
			}
		}
		if c.Rounds > 2*bound {
			t.Fatalf("rounds %d exceed 2x radius bound %d", c.Rounds, bound)
		}
	}
}

// Observation 1: with beta = 2k, a fixed connected k-vertex subgraph stays
// inside one cluster with probability at least 1/2. We plant a k-cycle in
// a grid-like graph and measure the survival frequency.
func TestObservation1Survival(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 9))
	// Grid with a known 8-cycle: vertices of a 3x3 block border.
	g := graph.Grid(20, 20)
	k := 8
	cyc := []int32{0, 1, 2, 22, 42, 41, 40, 20} // border of the top-left 3x3 block
	survived := 0
	trials := 200
	for trial := 0; trial < trials; trial++ {
		c := Cluster(g, float64(2*k), rng, nil)
		same := true
		for _, v := range cyc[1:] {
			if c.Owner[v] != c.Owner[cyc[0]] {
				same = false
				break
			}
		}
		if same {
			survived++
		}
	}
	frac := float64(survived) / float64(trials)
	if frac < 0.5 {
		t.Errorf("survival fraction %.3f below the 1/2 of Observation 1", frac)
	}
}

func TestSingletonAndSmallGraphs(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 11))
	g := graph.Path(1)
	c := Cluster(g, 4, rng, nil)
	if c.NumClusters() != 1 || c.Owner[0] != 0 {
		t.Fatal("single vertex should form one cluster")
	}
	g2 := graph.DisjointUnion(graph.Path(3), graph.Path(2))
	c2 := Cluster(g2, 4, rng, nil)
	// Separate components can never share a cluster.
	for v := 0; v < 3; v++ {
		for w := 3; w < 5; w++ {
			if c2.Owner[v] == c2.Owner[w] {
				t.Fatal("clusters bridged disconnected components")
			}
		}
	}
}

// Determinism: the same seed yields the same clustering.
func TestClusterDeterministic(t *testing.T) {
	g := graph.Grid(15, 15)
	a := Cluster(g, 5, rand.New(rand.NewPCG(42, 42)), nil)
	b := Cluster(g, 5, rand.New(rand.NewPCG(42, 42)), nil)
	for v := range a.Owner {
		if a.Owner[v] != b.Owner[v] {
			t.Fatalf("nondeterministic owner at %d", v)
		}
	}
}
