package flow

import (
	"math/rand/v2"
	"testing"

	"planarsi/internal/graph"
)

func TestMaxFlowTinyNetwork(t *testing.T) {
	// Two disjoint unit paths s -> t plus one shared bottleneck.
	nw := NewNetwork(4)
	nw.AddArc(0, 1, 1)
	nw.AddArc(0, 2, 1)
	nw.AddArc(1, 3, 1)
	nw.AddArc(2, 3, 1)
	if got := nw.MaxFlow(0, 3, -1); got != 2 {
		t.Fatalf("max flow = %d, want 2", got)
	}
}

func TestMaxFlowRespectsLimit(t *testing.T) {
	nw := NewNetwork(2)
	for i := 0; i < 5; i++ {
		nw.AddArc(0, 1, 1)
	}
	if got := nw.MaxFlow(0, 1, 2); got != 2 {
		t.Fatalf("limited max flow = %d, want 2", got)
	}
}

func TestMaxFlowSourceIsSink(t *testing.T) {
	nw := NewNetwork(2)
	nw.AddArc(0, 1, 5)
	if got := nw.MaxFlow(0, 0, -1); got != 0 {
		t.Fatalf("s==t flow = %d, want 0", got)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	nw := NewNetwork(4)
	nw.AddArc(0, 1, 3)
	nw.AddArc(2, 3, 3)
	if got := nw.MaxFlow(0, 3, -1); got != 0 {
		t.Fatalf("disconnected flow = %d, want 0", got)
	}
}

func TestMaxFlowParallelAndSerial(t *testing.T) {
	// s -(2)-> a -(1)-> t and s -(1)-> t directly: flow 2.
	nw := NewNetwork(3)
	nw.AddArc(0, 1, 2)
	nw.AddArc(1, 2, 1)
	nw.AddArc(0, 2, 1)
	if got := nw.MaxFlow(0, 2, -1); got != 2 {
		t.Fatalf("max flow = %d, want 2", got)
	}
}

func TestPairConnectivityGrid(t *testing.T) {
	g := graph.Grid(3, 3)
	// Opposite corners of a 3x3 grid have exactly 2 vertex-disjoint paths.
	if got := PairConnectivity(g, 0, 8); got != 2 {
		t.Fatalf("corner pair connectivity = %d, want 2", got)
	}
}

func TestPairConnectivityPath(t *testing.T) {
	g := graph.Path(5)
	if got := PairConnectivity(g, 0, 4); got != 1 {
		t.Fatalf("path end pair connectivity = %d, want 1", got)
	}
}

func TestPairConnectivityPanicsOnAdjacent(t *testing.T) {
	g := graph.Path(3)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for adjacent pair")
		}
	}()
	PairConnectivity(g, 0, 1)
}

func TestVertexConnectivityKnownFamilies(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"single", graph.Path(1), 0},
		{"edge", graph.Path(2), 1},
		{"path10", graph.Path(10), 1},
		{"cycle8", graph.Cycle(8), 2},
		{"grid4x5", graph.Grid(4, 5), 2},
		{"star6", graph.Star(6), 1},
		{"wheel7", graph.Wheel(7), 3},
		{"tetrahedron", graph.Tetrahedron(), 3},
		{"cube", graph.Cube(), 3},
		{"octahedron", graph.Octahedron(), 4},
		{"dodecahedron", graph.Dodecahedron(), 3},
		{"icosahedron", graph.Icosahedron(), 5},
		{"bipyramid6", graph.Bipyramid(6), 4},
		{"apollonian30", graph.Apollonian(30, rng), 3},
		{"k4", graph.Complete(4), 3},
		{"disconnected", graph.DisjointUnion(graph.Cycle(4), graph.Cycle(4)), 0},
	}
	for _, tc := range cases {
		if got := VertexConnectivity(tc.g); got != tc.want {
			t.Errorf("%s: connectivity = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestVertexConnectivityCutVertex(t *testing.T) {
	// Two triangles sharing one vertex: connectivity 1.
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 2)
	if got := VertexConnectivity(b.Build()); got != 1 {
		t.Fatalf("shared-vertex triangles connectivity = %d, want 1", got)
	}
}

func TestMinVertexCutSeparates(t *testing.T) {
	g := graph.Grid(3, 4)
	cut := MinVertexCut(g, 0, 11)
	if len(cut) != 2 {
		t.Fatalf("cut size = %d, want 2", len(cut))
	}
	// Removing the cut must disconnect 0 from 11.
	removed := make(map[int32]bool, len(cut))
	for _, v := range cut {
		if v == 0 || v == 11 {
			t.Fatalf("cut contains a terminal: %v", cut)
		}
		removed[v] = true
	}
	var keep []int32
	for v := int32(0); v < int32(g.N()); v++ {
		if !removed[v] {
			keep = append(keep, v)
		}
	}
	sub, orig := graph.Induce(g, keep)
	comp, _ := graph.Components(sub)
	var c0, c11 int32 = -1, -1
	for i, ov := range orig {
		if ov == 0 {
			c0 = comp[i]
		}
		if ov == 11 {
			c11 = comp[i]
		}
	}
	if c0 < 0 || c11 < 0 || c0 == c11 {
		t.Fatalf("cut %v does not separate 0 from 11", cut)
	}
}

func TestVertexConnectivityRandomPlanarAgainstDefinition(t *testing.T) {
	// Cross-check the oracle itself on small random planar graphs by brute
	// force over all vertex subsets up to size 3.
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomPlanar(9, 0.5, rng)
		want := bruteConnectivity(g, 4)
		got := VertexConnectivity(g)
		if want <= 3 && got != want {
			t.Fatalf("trial %d: oracle = %d, brute force = %d on %v", trial, got, want, g)
		}
	}
}

// bruteConnectivity returns the vertex connectivity when it is < limit,
// otherwise limit (complete graphs return n-1).
func bruteConnectivity(g *graph.Graph, limit int) int {
	n := g.N()
	if n <= 1 {
		return 0
	}
	if g.IsComplete() {
		return n - 1
	}
	if !graph.IsConnected(g) {
		return 0
	}
	verts := make([]int32, n)
	for i := range verts {
		verts[i] = int32(i)
	}
	for size := 1; size < limit && size < n-1; size++ {
		subset := make([]int32, size)
		var rec func(start, i int) bool
		rec = func(start, i int) bool {
			if i == size {
				removed := make(map[int32]bool, size)
				for _, v := range subset {
					removed[v] = true
				}
				var keep []int32
				for v := int32(0); v < int32(n); v++ {
					if !removed[v] {
						keep = append(keep, v)
					}
				}
				sub, _ := graph.Induce(g, keep)
				return !graph.IsConnected(sub)
			}
			for s := start; s < n; s++ {
				subset[i] = int32(s)
				if rec(s+1, i+1) {
					return true
				}
			}
			return false
		}
		if rec(0, 0) {
			return size
		}
	}
	return limit
}
