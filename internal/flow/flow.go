// Package flow implements Dinic's maximum-flow algorithm and, on top of
// it, an exhaustive vertex-connectivity oracle via the classic
// vertex-splitting reduction (Even-Tarjan).
//
// The paper's Section 5 decides planar vertex connectivity through
// S-separating cycles in the vertex-face incidence graph. This package is
// the independent correctness baseline for that pipeline: it computes the
// same quantity by maximum flow, with none of the planar machinery, so
// tests and the Figure 6 experiment can compare the two on every graph
// family. Its work is polynomially larger than the paper's algorithm,
// which is exactly the gap the paper's Table 1/Section 5 comparison is
// about.
package flow

import (
	"planarsi/internal/graph"
)

// maxCap is the "infinite" capacity used for edges that must never be in a
// minimum cut (the split arcs of original graph edges).
const maxCap = int32(1) << 30

// Network is a directed flow network with integer capacities in adjacency
// list form with residual twin arcs.
type Network struct {
	head []int32 // head vertex of each arc
	next []int32 // next arc index in the tail's list
	cap  []int32 // residual capacity of each arc
	out  []int32 // first arc index per vertex (-1 when none)
}

// NewNetwork creates an empty network on n vertices.
func NewNetwork(n int) *Network {
	out := make([]int32, n)
	for i := range out {
		out[i] = -1
	}
	return &Network{out: out}
}

// N returns the number of vertices.
func (nw *Network) N() int { return len(nw.out) }

// AddArc adds a directed arc u->v with the given capacity and its residual
// twin v->u with capacity 0. Arcs are stored so that arc i and arc i^1 are
// twins.
func (nw *Network) AddArc(u, v, c int32) {
	nw.head = append(nw.head, v)
	nw.next = append(nw.next, nw.out[u])
	nw.cap = append(nw.cap, c)
	nw.out[u] = int32(len(nw.head) - 1)

	nw.head = append(nw.head, u)
	nw.next = append(nw.next, nw.out[v])
	nw.cap = append(nw.cap, 0)
	nw.out[v] = int32(len(nw.head) - 1)
}

// reset restores every arc's residual capacity to its original value.
// Capacities are stored pairwise: original forward capacity is the pair
// total, so reset moves all flow back onto the even twin. This only works
// because AddArc always creates forward arcs at even indices.
func (nw *Network) reset(origCap []int32) {
	copy(nw.cap, origCap)
}

// MaxFlow computes the maximum s-t flow with Dinic's algorithm, stopping
// early once the flow reaches limit (limit < 0 means no limit). The
// network's residual capacities are consumed; use reset to reuse it.
func (nw *Network) MaxFlow(s, t int32, limit int32) int32 {
	if s == t {
		return 0
	}
	n := nw.N()
	level := make([]int32, n)
	iter := make([]int32, n)
	queue := make([]int32, 0, n)
	var total int32

	bfsLevels := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for a := nw.out[v]; a >= 0; a = nw.next[a] {
				w := nw.head[a]
				if nw.cap[a] > 0 && level[w] < 0 {
					level[w] = level[v] + 1
					queue = append(queue, w)
				}
			}
		}
		return level[t] >= 0
	}

	// Iterative DFS augmentation along level-increasing arcs.
	var dfs func(v int32, pushed int32) int32
	dfs = func(v int32, pushed int32) int32 {
		if v == t {
			return pushed
		}
		for ; iter[v] >= 0; iter[v] = nw.next[iter[v]] {
			a := iter[v]
			w := nw.head[a]
			if nw.cap[a] <= 0 || level[w] != level[v]+1 {
				continue
			}
			d := dfs(w, min32(pushed, nw.cap[a]))
			if d > 0 {
				nw.cap[a] -= d
				nw.cap[a^1] += d
				return d
			}
		}
		level[v] = -1 // dead end; prune
		return 0
	}

	for bfsLevels() {
		copy(iter, nw.out)
		for {
			f := dfs(s, maxCap)
			if f == 0 {
				break
			}
			total += f
			if limit >= 0 && total >= limit {
				return total
			}
		}
	}
	return total
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// splitNetwork builds the vertex-splitting reduction of g: every vertex v
// becomes v_in (id v) and v_out (id v+n) joined by a capacity-1 arc, and
// every undirected edge {u, v} becomes the arcs u_out->v_in and
// v_out->u_in of effectively infinite capacity. A minimum s_out -> t_in
// cut then corresponds to a minimum s-t vertex cut.
func splitNetwork(g *graph.Graph) *Network {
	n := int32(g.N())
	nw := NewNetwork(int(2 * n))
	for v := int32(0); v < n; v++ {
		nw.AddArc(v, v+n, 1)
	}
	for _, e := range g.Edges() {
		u, v := e[0], e[1]
		nw.AddArc(u+n, v, maxCap)
		nw.AddArc(v+n, u, maxCap)
	}
	return nw
}

// PairConnectivity returns the minimum number of vertices (excluding s and
// t themselves) whose removal disconnects t from s. s and t must be
// distinct and non-adjacent; otherwise the vertex cut is not defined
// (adjacent pairs cannot be separated).
func PairConnectivity(g *graph.Graph, s, t int32) int {
	if s == t {
		panic("flow: PairConnectivity needs distinct vertices")
	}
	if g.HasEdge(s, t) {
		panic("flow: PairConnectivity needs non-adjacent vertices")
	}
	nw := splitNetwork(g)
	n := int32(g.N())
	return int(nw.MaxFlow(s+n, t, -1))
}

// VertexConnectivity computes the vertex connectivity of g exactly:
// the minimum over non-adjacent pairs (s, t) of the s-t vertex cut, or
// n-1 for complete graphs. Following Even-Tarjan, it suffices to fix a
// minimum-degree vertex v0 and scan s over {v0} ∪ N(v0): any minimum cut
// C has |C| < |{v0} ∪ N(v0)|, so some s in that set survives the cut and
// pairs with a non-adjacent t on the other side.
//
// This is the exhaustive baseline: O(deg(v0) · n) max-flow runs.
func VertexConnectivity(g *graph.Graph) int {
	n := int32(g.N())
	if n <= 1 {
		return 0
	}
	if g.IsComplete() {
		return int(n - 1)
	}
	if !graph.IsConnected(g) {
		return 0
	}
	// Minimum-degree vertex.
	v0 := int32(0)
	for v := int32(1); v < n; v++ {
		if g.Degree(v) < g.Degree(v0) {
			v0 = v
		}
	}
	sources := append([]int32{v0}, g.Neighbors(v0)...)
	best := int(n - 1)
	nw := splitNetwork(g)
	origCap := make([]int32, len(nw.cap))
	copy(origCap, nw.cap)
	fresh := true
	for _, s := range sources {
		for t := int32(0); t < n; t++ {
			if t == s || g.HasEdge(s, t) {
				continue
			}
			if !fresh {
				nw.reset(origCap)
			}
			fresh = false
			// Cap the search at the current best: a flow that reaches
			// best cannot improve it.
			f := int(nw.MaxFlow(s+n, t, int32(best)))
			if f < best {
				best = f
			}
			if best == 0 {
				return 0
			}
		}
	}
	return best
}

// MinVertexCut returns a minimum vertex cut separating the non-adjacent
// pair (s, t): the set of split vertices whose in-half is reachable from
// s_out in the final residual network while the out-half is not.
func MinVertexCut(g *graph.Graph, s, t int32) []int32 {
	if g.HasEdge(s, t) {
		panic("flow: MinVertexCut needs non-adjacent vertices")
	}
	nw := splitNetwork(g)
	n := int32(g.N())
	nw.MaxFlow(s+n, t, -1)
	// Residual reachability from s_out.
	reach := make([]bool, nw.N())
	reach[s+n] = true
	queue := []int32{s + n}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for a := nw.out[v]; a >= 0; a = nw.next[a] {
			w := nw.head[a]
			if nw.cap[a] > 0 && !reach[w] {
				reach[w] = true
				queue = append(queue, w)
			}
		}
	}
	var cut []int32
	for v := int32(0); v < n; v++ {
		if reach[v] && !reach[v+n] {
			cut = append(cut, v)
		}
	}
	return cut
}
