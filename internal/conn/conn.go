// Package conn decides the vertex connectivity of embedded planar graphs,
// implementing Section 5 of the paper.
//
// The reduction (Nishizeki, via Eppstein; Lemma 5.1) goes through the
// bipartite vertex-face incidence graph G': one side holds the original
// vertices, the other a vertex per face of the embedding, with edges
// between a face and the vertices on its boundary. For a 2-connected
// planar graph, the vertex connectivity of G equals c exactly when the
// shortest cycle of G' separating the original vertices has length 2c.
//
// Since every planar graph has a vertex of degree at most 5 (Euler),
// planar vertex connectivity is at most 5, so the whole decision reduces
// to a constant number of S-separating cycle searches — C4, C6, C8 — each
// solved by the paper's separating subgraph isomorphism (Lemma 5.3) in
// O(n log n) work and O(log² n) depth. 0-, 1-connectivity and
// completeness are handled by direct substrate checks first.
//
// Where the paper runs dedicated 2-/3-connectivity algorithms [38, 50]
// and only uses the C8 search to split 4 from 5, this implementation
// tests 2-connectivity via articulation points and then lets the
// separating-cycle chain distinguish 2, 3, 4 and 5 — the same Lemma 5.1
// characterization, exercised at every length (DESIGN.md discusses the
// substitution).
package conn

import (
	"fmt"

	"planarsi/internal/core"
	"planarsi/internal/graph"
	"planarsi/internal/planarity"
	"planarsi/internal/wd"
)

// Result reports a connectivity decision.
type Result struct {
	// Connectivity is the vertex connectivity of the graph.
	Connectivity int
	// Cut is a witness vertex cut of size Connectivity when one was
	// identified (nil for complete graphs, connectivity 0, and
	// connectivity 5, where no small witness exists).
	Cut []int32
	// CycleChecks counts the separating-cycle searches performed.
	CycleChecks int
}

// Options configures the connectivity decision.
type Options struct {
	// Seed seeds the randomized separating-cycle searches.
	Seed uint64
	// MaxRuns bounds the cover repetitions per cycle search (0 = w.h.p.
	// default).
	MaxRuns int
	// Tracker accumulates work/depth counters when non-nil.
	Tracker *wd.Tracker
}

// FaceIncidence builds the bipartite vertex-face incidence graph G' of an
// embedded graph g. Vertices 0..n-1 of G' are the original vertices of g;
// vertices n..n+f-1 are its faces. The returned mask marks the original
// vertices (the set S that separating cycles must separate).
func FaceIncidence(g *graph.Graph) (*graph.Graph, []bool, error) {
	if !g.Embedded() {
		return nil, nil, fmt.Errorf("conn: face incidence needs an embedded graph")
	}
	if err := graph.ValidateEmbedding(g); err != nil {
		return nil, nil, fmt.Errorf("conn: %w", err)
	}
	faces := graph.TraceFaces(g)
	n := g.N()
	f := faces.NumFaces()
	b := graph.NewBuilder(n + f)
	for fi, walk := range faces.Boundary {
		fv := int32(n + fi)
		// A boundary walk can repeat vertices (at cut vertices);
		// deduplicate so the graph stays simple.
		seen := make(map[int32]struct{}, len(walk))
		for _, v := range walk {
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			b.AddEdge(v, fv)
		}
	}
	s := make([]bool, n+f)
	for v := 0; v < n; v++ {
		s[v] = true
	}
	return b.Build(), s, nil
}

// VertexConnectivity decides the vertex connectivity of the planar graph
// g (Lemma 5.2). Graphs without an embedding are embedded first with the
// DMP planarity algorithm (non-planar inputs return its error). The
// result is exact for connectivity 0 and 1 and for complete graphs; for
// the separating-cycle chain, reported cuts always verify (yes-answers
// are exact) and the absence of a shorter cut holds w.h.p.
func VertexConnectivity(g *graph.Graph, opt Options) (Result, error) {
	n := g.N()
	if n <= 1 {
		return Result{Connectivity: 0}, nil
	}
	if !g.Embedded() {
		emb, err := planarity.Embed(g)
		if err != nil {
			return Result{}, err
		}
		g = emb
	}
	if g.IsComplete() {
		// K1..K4 are the only complete planar graphs; removal of all but
		// one vertex is the only "cut", with no witness separation.
		return Result{Connectivity: n - 1}, nil
	}
	if !graph.IsConnected(g) {
		return Result{Connectivity: 0}, nil
	}
	if art := articulationWitness(g); art >= 0 {
		return Result{Connectivity: 1, Cut: []int32{art}}, nil
	}
	// 2-connected from here on: Lemma 5.1 applies.
	gp, s, err := FaceIncidence(g)
	if err != nil {
		return Result{}, err
	}
	res := Result{}
	for _, c := range []int{2, 3, 4} {
		res.CycleChecks++
		occ, err := core.DecideSeparating(gp, graph.Cycle(2*c), s, core.Options{
			Seed:    opt.Seed + uint64(c),
			MaxRuns: opt.MaxRuns,
			Tracker: opt.Tracker,
		})
		if err != nil {
			return Result{}, err
		}
		if occ != nil {
			res.Connectivity = c
			res.Cut = verifiedCut(g, gp, s, occ, c, opt)
			return res, nil
		}
	}
	// No separating cycle of length <= 8: Euler's formula caps planar
	// connectivity at 5.
	res.Connectivity = 5
	return res, nil
}

// articulationWitness returns an articulation vertex of g, or -1 when g
// is 2-connected (g must be connected with n >= 2; a connected graph on 2
// vertices is K2 and is handled by the completeness check).
func articulationWitness(g *graph.Graph) int32 {
	arts := graph.ArticulationPoints(g)
	for v, is := range arts {
		if is {
			return int32(v)
		}
	}
	return -1
}

// originalVerticesOf extracts the original (non-face) vertices from a
// separating-cycle occurrence in G'. Cycles of the bipartite G' alternate
// original and face vertices, so a 2c-cycle yields exactly c original
// vertices — the vertex cut of Lemma 5.1.
func originalVerticesOf(occ core.Occurrence, n int) []int32 {
	var cut []int32
	for _, v := range occ {
		if int(v) < n {
			cut = append(cut, v)
		}
	}
	return cut
}

// verifiedCut turns a separating-cycle occurrence into a verified vertex
// cut of g, or nil when none of a few candidate cycles yields one.
//
// The subtlety: graph separation in G' is witnessed by *some* separating
// 2c-cycle whenever κ = c (the cycle tracing the minimum cut's closed
// curve), which is what the decision relies on — but not every separating
// cycle's original vertices form a cut of g. In thin 2-connected graphs
// two faces can share many edges (both faces of a long cycle graph touch
// every vertex), so the 4-cycle through an edge and its two faces
// disconnects G' outright without {u,v} cutting g. Once g is 3-connected
// this cannot happen — two faces of a 3-connected planar graph share at
// most one edge, so removing a 2c-cycle never strands vertices that are
// connected in g — but for the witness we simply re-check and resample a
// few cycles with fresh seeds. A failed witness never changes the
// connectivity value, which Lemma 5.1 ties to the cycle length alone.
func verifiedCut(g, gp *graph.Graph, s []bool, occ core.Occurrence, c int, opt Options) []int32 {
	n := g.N()
	cut := originalVerticesOf(occ, n)
	if VerifyCut(g, cut) {
		return cut
	}
	for try := uint64(1); try <= 8; try++ {
		occ2, err := core.DecideSeparating(gp, graph.Cycle(2*c), s, core.Options{
			Seed:    opt.Seed + uint64(c) + try*0x9e3779b9,
			MaxRuns: 2,
			Tracker: opt.Tracker,
		})
		if err != nil || occ2 == nil {
			continue
		}
		cut = originalVerticesOf(occ2, n)
		if VerifyCut(g, cut) {
			return cut
		}
	}
	return nil
}

// VerifyCut checks that removing the given vertices disconnects g — the
// witness validation tests apply to every reported cut.
func VerifyCut(g *graph.Graph, cut []int32) bool {
	removed := make(map[int32]bool, len(cut))
	for _, v := range cut {
		removed[v] = true
	}
	keep := make([]int32, 0, g.N()-len(cut))
	for v := int32(0); v < int32(g.N()); v++ {
		if !removed[v] {
			keep = append(keep, v)
		}
	}
	if len(keep) < 2 {
		return false
	}
	sub, _ := graph.Induce(g, keep)
	return !graph.IsConnected(sub)
}
