package conn

import (
	"math/rand/v2"
	"testing"

	"planarsi/internal/flow"
	"planarsi/internal/graph"
)

func TestFaceIncidenceStructure(t *testing.T) {
	g := graph.Cycle(6)
	gp, s, err := FaceIncidence(g)
	if err != nil {
		t.Fatal(err)
	}
	// A cycle has 2 faces; each face touches all 6 vertices.
	if gp.N() != 6+2 {
		t.Fatalf("G' has %d vertices, want 8", gp.N())
	}
	if gp.M() != 12 {
		t.Fatalf("G' has %d edges, want 12", gp.M())
	}
	for v := 0; v < 6; v++ {
		if !s[v] {
			t.Fatalf("original vertex %d not in S", v)
		}
	}
	for v := 6; v < 8; v++ {
		if s[v] {
			t.Fatalf("face vertex %d wrongly in S", v)
		}
	}
	// Bipartite: no edge between two original or two face vertices.
	for _, e := range gp.Edges() {
		if (e[0] < 6) == (e[1] < 6) {
			t.Fatalf("edge %v violates bipartiteness", e)
		}
	}
}

func TestFaceIncidenceRequiresEmbedding(t *testing.T) {
	g := graph.FromEdges(3, [][2]int32{{0, 1}, {1, 2}, {2, 0}})
	if _, _, err := FaceIncidence(g); err == nil {
		t.Fatal("expected error for non-embedded graph")
	}
}

func TestVertexConnectivityKnownFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"single", graph.Path(1), 0},
		{"edge", graph.Path(2), 1}, // K2: complete
		{"path", graph.Path(12), 1},
		{"star", graph.Star(8), 1},
		{"cycle", graph.Cycle(10), 2},
		{"grid", graph.Grid(5, 6), 2},
		{"wheel", graph.Wheel(8), 3},
		{"tetrahedron", graph.Tetrahedron(), 3},
		{"cube", graph.Cube(), 3},
		{"dodecahedron", graph.Dodecahedron(), 3},
		{"octahedron", graph.Octahedron(), 4},
		{"bipyramid6", graph.Bipyramid(6), 4},
		{"bipyramid8", graph.Bipyramid(8), 4},
		{"icosahedron", graph.Icosahedron(), 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := VertexConnectivity(tc.g, Options{Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			if res.Connectivity != tc.want {
				t.Fatalf("connectivity = %d, want %d", res.Connectivity, tc.want)
			}
			if res.Cut != nil {
				if len(res.Cut) != tc.want {
					t.Fatalf("cut size %d != connectivity %d", len(res.Cut), tc.want)
				}
				if !VerifyCut(tc.g, res.Cut) {
					t.Fatalf("cut %v does not disconnect the graph", res.Cut)
				}
			}
		})
	}
}

func TestVertexConnectivityDisconnected(t *testing.T) {
	g := graph.DisjointUnion(graph.Cycle(4), graph.Cycle(4))
	res, err := VertexConnectivity(g, Options{})
	if err != nil || res.Connectivity != 0 {
		t.Fatalf("got %d, %v; want 0", res.Connectivity, err)
	}
}

func TestVertexConnectivityAgainstFlowOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	for trial := 0; trial < 12; trial++ {
		g := graph.RandomPlanar(12+rng.IntN(30), 0.3+0.7*rng.Float64(), rng)
		want := flow.VertexConnectivity(g)
		res, err := VertexConnectivity(g, Options{Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Connectivity != want {
			t.Fatalf("trial %d: conn=%d flow oracle=%d (n=%d m=%d)",
				trial, res.Connectivity, want, g.N(), g.M())
		}
		if res.Cut != nil && !VerifyCut(g, res.Cut) {
			t.Fatalf("trial %d: invalid cut %v", trial, res.Cut)
		}
	}
}

func TestVertexConnectivityApollonian(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 24))
	g := graph.Apollonian(40, rng)
	res, err := VertexConnectivity(g, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Connectivity != 3 {
		t.Fatalf("Apollonian connectivity = %d, want 3", res.Connectivity)
	}
	if res.Cut == nil || !VerifyCut(g, res.Cut) {
		t.Fatalf("expected a verifying 3-cut, got %v", res.Cut)
	}
}

func TestVerifyCut(t *testing.T) {
	g := graph.Path(5)
	if !VerifyCut(g, []int32{2}) {
		t.Fatal("middle vertex must disconnect a path")
	}
	if VerifyCut(g, []int32{0}) {
		t.Fatal("endpoint does not disconnect a path")
	}
	if VerifyCut(g, []int32{0, 1, 2, 3}) {
		t.Fatal("removing all but one vertex is not a separation")
	}
}

// Regression: in thin 2-connected graphs (both faces of a cycle touch
// every vertex) the 4-cycle through an edge and its two faces separates
// G' without the edge's endpoints being a cut of G. The witness logic
// must reject such cuts and either resample a verifying one or return
// nil — never a non-cut.
func TestCycleWitnessNeverAdjacentPair(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		g := graph.Cycle(10)
		res, err := VertexConnectivity(g, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.Connectivity != 2 {
			t.Fatalf("seed %d: connectivity %d, want 2", seed, res.Connectivity)
		}
		if res.Cut != nil {
			if len(res.Cut) != 2 {
				t.Fatalf("seed %d: cut size %d", seed, len(res.Cut))
			}
			if !VerifyCut(g, res.Cut) {
				t.Fatalf("seed %d: non-verifying cut %v", seed, res.Cut)
			}
			if g.HasEdge(res.Cut[0], res.Cut[1]) {
				t.Fatalf("seed %d: adjacent pair %v cannot cut a cycle", seed, res.Cut)
			}
		}
	}
}
