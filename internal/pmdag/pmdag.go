// Package pmdag implements Section 3.3 of the paper: the parallel engine
// for the bounded-treewidth subgraph isomorphism DP.
//
// The decomposition tree is split into layered paths (Lemma 3.2, package
// treepath). Paths of one layer are independent and processed in
// parallel; along each path the DP's sequential chain is broken by
// materializing the directed acyclic *graph of partial matches* (Section
// 3.3.2): one DAG vertex per partial match of each node on the path, and
// an edge from a child-node state to a parent-node state whenever the
// transition rules allow it (for joins, whenever some valid state of the
// already-solved off-path child makes the pair compatible).
//
// Valid partial matches are exactly the DAG vertices reachable from the
// tagged sources: the valid states of the path's bottom node and every
// partial match that marks no vertex as matched-in-a-child (C = ∅ states
// are always realizable from the trivial all-unmatched match). To make
// the reachability low-depth, shortcuts are inserted into the forest F of
// no-new-match transitions (Section 3.3.3): F is itself decomposed into
// layered paths, hub vertices every ~log₂(V) positions receive shortcut
// edges of exponentially increasing hub distance, and every vertex gets an
// escape edge to the forest-parent of its path top. Any root-to-valid
// path then needs O(k log V) hops — at most k matching edges, and O(log V)
// hops per forest segment — which the breadth-first search's round count
// certifies empirically (Lemma 3.3).
//
// State sets live on the flat match.StateSet substrate: per-level
// universes and per-node valid sets come from the engine's arena, join
// grouping uses the sort-by-signature match.JoinIndex, and each path
// worker batches its state-emission count into one flush per path.
package pmdag

import (
	"fmt"
	"math"
	"sync/atomic"

	"planarsi/internal/match"
	"planarsi/internal/obs"
	"planarsi/internal/par"
	"planarsi/internal/treedecomp"
	"planarsi/internal/treepath"
	"planarsi/internal/wd"
)

// Stats reports the structure of a run for the Figure 5 experiments.
type Stats struct {
	// Layers and Paths describe the Lemma 3.2 decomposition.
	Layers, Paths int
	// LongestPath is the longest decomposition-tree path (the sequential
	// chain the engine avoids).
	LongestPath int
	// DAGVertices / DAGEdges count partial-match DAG elements across all
	// paths; ForestEdges of those are no-new-match transitions, and
	// ShortcutEdges were added by the Section 3.3.3 construction.
	DAGVertices, DAGEdges, ForestEdges, ShortcutEdges int64
	// MaxHops is the largest BFS round count over all paths: the depth
	// of the reachability phase, O(k log n) per Lemma 3.3.
	MaxHops int
}

// Config tunes the engine; the zero value reproduces the paper's choices.
type Config struct {
	// ShortcutSpacing overrides the hub spacing of the Section 3.3.3
	// shortcut construction. 0 selects ceil(log2 V), the paper's
	// work-efficient choice; 1 places a hub at every forest vertex, the
	// Θ(log n)-work-overhead variant the paper warns about (kept for the
	// ablation benchmark).
	ShortcutSpacing int
}

// Run executes the parallel path-DAG engine with default configuration.
// It produces exactly the same per-node valid state sets as match.Run
// (the tests assert this), plain mode only. tr records work and depth.
func Run(p *match.Problem, tr *wd.Tracker) (*match.Result, *Stats) {
	return RunConfig(p, Config{}, tr)
}

// RunMulti executes the path-DAG engine for several patterns sharing
// one target and decomposition, walking the layered path decomposition
// once: LayersParallel and Decompose — the per-(G, ND) work — run a
// single time, then every (path, pattern) pair is processed in parallel
// by the unchanged per-path pipeline. Each pattern's per-node state
// sets, emission counts and cost flushes are byte-identical to a solo
// Run; a pattern whose Cancel fires drops out at its next path
// checkpoint (partial Result, one trace event) without stopping its
// batch-mates. Per-pattern DAG stats are not aggregated (the decide
// pipeline discards them).
func RunMulti(ps []*match.Problem, tr *wd.Tracker) []*match.Result {
	if len(ps) == 0 {
		return nil
	}
	for _, p := range ps {
		if p.Separating {
			panic("pmdag: separating mode is handled by the sequential engine")
		}
	}
	engs := match.NewEngines(ps)
	nd := ps[0].ND
	layers := treepath.LayersParallel(nd.Parent, tr)
	pd := treepath.Decompose(nd.Parent, layers)
	cancelTraced := make([]atomic.Bool, len(ps))
	for _, pathIDs := range pd.PathsByLayer() {
		ids := pathIDs
		// Paths of a layer are independent for every pattern, and the
		// patterns never share mutable state, so the (path, pattern)
		// grid of one layer is a single flat parallel loop.
		par.For(0, len(ids)*len(ps), func(t int) {
			j, x := t/len(ps), t%len(ps)
			p := ps[x]
			if p.Cancel.Cancelled() {
				if p.Trace != nil && !cancelTraced[x].Swap(true) {
					p.Trace.Event("pmdag.cancel", -1, -1, "path-DAG engine abandoned at path checkpoint")
				}
				return
			}
			processPath(engs[x], pd.Paths[ids[j]], Config{}, tr)
		})
		tr.AddPhaseRounds("pmdag-layers", 1)
	}
	return engs
}

// RunConfig is Run with explicit engine configuration.
func RunConfig(p *match.Problem, cfg Config, tr *wd.Tracker) (*match.Result, *Stats) {
	if p.Separating {
		panic("pmdag: separating mode is handled by the sequential engine")
	}
	eng := match.NewEngine(p)
	nd := p.ND
	layers := treepath.LayersParallel(nd.Parent, tr)
	pd := treepath.Decompose(nd.Parent, layers)
	stats := &Stats{Layers: pd.NumLayers, Paths: len(pd.Paths)}
	for _, path := range pd.Paths {
		if len(path) > stats.LongestPath {
			stats.LongestPath = len(path)
		}
	}
	var dagV, dagE, forestE, shortcutE atomic.Int64
	var maxHops atomic.Int64
	var cancelTraced atomic.Bool
	for _, pathIDs := range pd.PathsByLayer() {
		ids := pathIDs
		// All paths of a layer are independent: their bottom nodes only
		// depend on strictly lower layers (Lemma 3.2).
		par.For(0, len(ids), func(j int) {
			// Cancellation checkpoint at path granularity: a fired token
			// (request gone, or a sibling band already found an
			// occurrence) abandons the run. Skipped paths leave nil sets,
			// which is safe: any later path would observe the same
			// monotonic token before reading them, and callers that saw
			// Cancel fire discard the whole Result.
			if p.Cancel.Cancelled() {
				// One trace event per run marks the abandonment point;
				// every concurrently skipped path observes the same token.
				if p.Trace != nil && !cancelTraced.Swap(true) {
					p.Trace.Event("pmdag.cancel", -1, -1, "path-DAG engine abandoned at path checkpoint")
				}
				return
			}
			st := processPath(eng, pd.Paths[ids[j]], cfg, tr)
			dagV.Add(st.DAGVertices)
			dagE.Add(st.DAGEdges)
			forestE.Add(st.ForestEdges)
			shortcutE.Add(st.ShortcutEdges)
			for {
				cur := maxHops.Load()
				if int64(st.MaxHops) <= cur || maxHops.CompareAndSwap(cur, int64(st.MaxHops)) {
					break
				}
			}
		})
		tr.AddPhaseRounds("pmdag-layers", 1)
	}
	stats.DAGVertices = dagV.Load()
	stats.DAGEdges = dagE.Load()
	stats.ForestEdges = forestE.Load()
	stats.ShortcutEdges = shortcutE.Load()
	stats.MaxHops = int(maxHops.Load())
	return eng, stats
}

// bottomStates computes the complete valid state set of a path's bottom
// node directly from its (already solved) children. State emissions are
// accumulated into *emitted and join attempts into *joins (the caller
// flushes both once per path).
func bottomStates(eng *match.Result, i int32, ji *match.JoinIndex, emitted, joins *int64) *match.StateSet {
	nd := eng.Problem().ND
	switch nd.Kind[i] {
	case treedecomp.Leaf:
		out := eng.NewSet(1)
		out.Add(match.EmptyState())
		return out
	case treedecomp.Introduce:
		child := eng.Sets[nd.Left[i]]
		out := eng.NewSet(child.Len())
		for _, cs := range child.States() {
			eng.IntroduceSuccessors(i, cs, func(s match.State, _ bool) {
				out.Add(s)
				*emitted++
			})
		}
		return out
	case treedecomp.Forget:
		child := eng.Sets[nd.Left[i]]
		out := eng.NewSet(child.Len())
		for _, cs := range child.States() {
			*emitted++
			if s, ok := eng.ForgetSuccessor(i, cs); ok {
				out.Add(s)
			}
		}
		return out
	case treedecomp.Join:
		left := eng.Sets[nd.Left[i]]
		out := eng.NewSet(left.Len())
		ji.Build(eng.Sets[nd.Right[i]].States())
		for _, ls := range left.States() {
			lo, hi := ji.Bucket(&ls)
			if lo == hi {
				continue
			}
			block := eng.JoinBlockMask(ls.C)
			for t := lo; t < hi; t++ {
				*emitted++
				*joins++
				if s, ok := eng.JoinCombineBlocked(ls, block, ji.At(t)); ok {
					out.Add(s)
				}
			}
		}
		return out
	}
	panic("pmdag: unknown node kind")
}

// pathStats mirrors Stats for a single path.
type pathStats struct {
	DAGVertices, DAGEdges, ForestEdges, ShortcutEdges int64
	MaxHops                                           int
}

// processPath materializes the partial-match DAG of one decomposition-tree
// path, adds shortcuts, runs the reachability BFS, and stores the valid
// sets of every node on the path into eng.Sets. In DecideOnly mode only
// the top node's set is stored, and the sets this path consumed (the
// bottom node's children and the off-path join children) plus all scratch
// universes go back to the engine's arena.
func processPath(eng *match.Result, path []int32, cfg Config, tr *wd.Tracker) pathStats {
	p := eng.Problem()
	nd := p.ND
	L := len(path)
	// emitted batches every state emission of this path (and joins the
	// join-attempt subset); one atomic flush at the end keeps the
	// transition loops free of shared-counter traffic. The cost counter
	// is flushed at the same points from the same emitted local, so
	// Cost.Emissions tracks StatesGenerated exactly.
	var emitted, joins int64
	// ji is this worker's reusable signature index for join grouping.
	var ji match.JoinIndex
	// consumed collects the child nodes whose sets this path read; in
	// DecideOnly mode they are recycled once the path is done.
	var consumed []int32
	if p.DecideOnly {
		if l := nd.Left[path[0]]; l >= 0 {
			consumed = append(consumed, l)
		}
		if r := nd.Right[path[0]]; r >= 0 {
			consumed = append(consumed, r)
		}
	}
	// Universe of states per level; level 0 holds the bottom's valid set.
	// Each level is a StateSet: the dense slice numbers the DAG vertices
	// of the level and the index answers successor lookups.
	uni := make([]*match.StateSet, L)
	// abort recycles this path's private scratch and bails: nothing is
	// stored into eng.Sets, so a cancelled run leaves only nil or fully
	// solved node sets behind.
	abort := func() pathStats {
		for j := 0; j < L; j++ {
			if uni[j] != nil {
				eng.Recycle(uni[j])
			}
		}
		eng.AddStatesGenerated(emitted)
		p.Cost.Add(obs.Cost{Joins: joins, Emissions: emitted})
		return pathStats{}
	}
	uni[0] = bottomStates(eng, path[0], &ji, &emitted, &joins)
	for j := 1; j < L; j++ {
		if p.Cancel.Cancelled() {
			return abort()
		}
		us := eng.Universe(path[j])
		set := eng.NewSet(len(us))
		for _, s := range us {
			set.Add(s)
		}
		uni[j] = set
	}
	offset := make([]int32, L+1)
	for j := 0; j < L; j++ {
		offset[j+1] = offset[j] + int32(uni[j].Len())
	}
	V := int(offset[L])

	// Build edges into a flat (src, dst) pair list — compressed to CSR
	// below — plus the forest next-pointer (unique no-new-match
	// successor). A flat buffer replaces the old per-source [][]int32
	// adjacency: one amortized slice instead of V headers and V append
	// chains, and the BFS then walks contiguous memory.
	pairs := make([]uint64, 0, 4*V)
	forestNext := make([]int32, V)
	for i := range forestNext {
		forestNext[i] = -1
	}
	var forestEdges int64
	addEdge := func(src, dst int32, forest bool) {
		pairs = append(pairs, uint64(src)<<32|uint64(uint32(dst)))
		if forest {
			forestNext[src] = dst
			forestEdges++
		}
	}
	for j := 1; j < L; j++ {
		if p.Cancel.Cancelled() {
			return abort()
		}
		node := path[j]
		below := path[j-1]
		lookup := func(s match.State) int32 {
			li := uni[j].IndexOf(s)
			if li < 0 {
				panic(fmt.Sprintf("pmdag: successor state missing from universe at node %d", node))
			}
			return offset[j] + int32(li)
		}
		switch nd.Kind[node] {
		case treedecomp.Introduce, treedecomp.Forget:
			for li, s := range uni[j-1].States() {
				src := offset[j-1] + int32(li)
				if nd.Kind[node] == treedecomp.Introduce {
					eng.IntroduceSuccessors(node, s, func(t match.State, newMatch bool) {
						emitted++
						addEdge(src, lookup(t), !newMatch)
					})
				} else {
					emitted++
					if t, ok := eng.ForgetSuccessor(node, s); ok {
						addEdge(src, lookup(t), true)
					}
				}
			}
		case treedecomp.Join:
			// The off-path child is the sibling of path[j-1].
			off := nd.Left[node]
			if off == below {
				off = nd.Right[node]
			}
			if p.DecideOnly {
				consumed = append(consumed, off)
			}
			ji.Build(eng.Sets[off].States())
			for li, s := range uni[j-1].States() {
				src := offset[j-1] + int32(li)
				lo, hi := ji.Bucket(&s)
				if lo == hi {
					continue
				}
				block := eng.JoinBlockMask(s.C)
				for t := lo; t < hi; t++ {
					emitted++
					joins++
					if w, ok := eng.JoinCombineBlocked(s, block, ji.At(t)); ok {
						addEdge(src, lookup(w), ji.At(t).C == 0)
					}
				}
			}
		default:
			panic("pmdag: interior path node cannot be a leaf")
		}
	}

	// Shortcut construction (Section 3.3.3) over the forest F. Transition
	// edges are the DAG-edge count the stats report; the shortcut edges
	// land in the same flat pair list.
	edges := int64(len(pairs))
	shortcuts := buildShortcuts(forestNext, func(src, dst int32) {
		pairs = append(pairs, uint64(src)<<32|uint64(uint32(dst)))
	}, cfg.ShortcutSpacing)

	// Compress the pair list to CSR: per-source counting, prefix sum,
	// scatter.
	off := make([]int32, V+1)
	for _, e := range pairs {
		off[e>>32]++
	}
	var sum int32
	for i := 0; i <= V; i++ {
		c := off[i]
		off[i] = sum
		sum += c
	}
	csr := make([]int32, len(pairs))
	fill := make([]int32, V)
	for _, e := range pairs {
		src := e >> 32
		csr[off[src]+fill[src]] = int32(uint32(e))
		fill[src]++
	}

	// Sources: bottom valid states plus every C = ∅ state anywhere.
	sources := make([]int32, 0, uni[0].Len())
	for li := 0; li < uni[0].Len(); li++ {
		sources = append(sources, offset[0]+int32(li))
	}
	for j := 1; j < L; j++ {
		for li, s := range uni[j].States() {
			if s.C == 0 {
				sources = append(sources, offset[j]+int32(li))
			}
		}
	}

	// Parallel BFS over the shortcut graph.
	if p.Cancel.Cancelled() {
		return abort()
	}
	reached := make([]atomic.Bool, V)
	frontier := make([]int32, 0, len(sources))
	for _, s := range sources {
		if reached[s].CompareAndSwap(false, true) {
			frontier = append(frontier, s)
		}
	}
	hops := 0
	for len(frontier) > 0 {
		hops++
		var next []int32
		if len(frontier) > 256 {
			nexts := make([][]int32, len(frontier))
			par.For(0, len(frontier), func(i int) {
				v := frontier[i]
				var local []int32
				for _, w := range csr[off[v]:off[v+1]] {
					if reached[w].CompareAndSwap(false, true) {
						local = append(local, w)
					}
				}
				nexts[i] = local
			})
			for _, l := range nexts {
				next = append(next, l...)
			}
		} else {
			for _, v := range frontier {
				for _, w := range csr[off[v]:off[v+1]] {
					if reached[w].CompareAndSwap(false, true) {
						next = append(next, w)
					}
				}
			}
		}
		frontier = next
		tr.AddPhaseRounds("pmdag-bfs", 1)
	}
	tr.AddPhaseWork("pmdag", edges+int64(V))
	eng.AddStatesGenerated(emitted)
	// One cost flush per path, mirroring the work-counter flush above:
	// Nodes are the path's nice nodes, States the materialized DAG
	// vertices, Bytes the universes plus the pair list and its CSR copy.
	p.Cost.Add(obs.Cost{
		Nodes:     int64(L),
		States:    int64(V),
		Joins:     joins,
		Emissions: emitted,
		Bytes:     int64(V)*match.StateBytes + int64(len(pairs))*12,
	})

	// Store valid sets for the path's nodes. Level 0 is its own valid set
	// verbatim (every bottom state is a BFS source); interior levels keep
	// the reached subset of their universe. DecideOnly retains only the
	// top — the single set the parent path will consume — and recycles
	// every scratch universe plus the consumed child sets.
	for j := 0; j < L; j++ {
		if p.DecideOnly && j < L-1 {
			continue
		}
		if j == 0 {
			eng.Sets[path[0]] = uni[0]
			uni[0] = nil // stored, not scratch anymore
			continue
		}
		set := eng.NewSet(uni[j].Len())
		for li, s := range uni[j].States() {
			if reached[offset[j]+int32(li)].Load() {
				set.Add(s)
			}
		}
		eng.Sets[path[j]] = set
	}
	for j := 0; j < L; j++ {
		if uni[j] != nil {
			eng.Recycle(uni[j])
		}
	}
	for _, c := range consumed {
		eng.RecycleNode(c)
	}
	return pathStats{
		DAGVertices:   int64(V),
		DAGEdges:      edges,
		ForestEdges:   forestEdges,
		ShortcutEdges: shortcuts,
		MaxHops:       hops,
	}
}

// buildShortcuts decomposes the no-new-match forest into layered paths
// (Lemma 3.2 again), places hubs every ~log₂(V) positions with shortcut
// edges of exponentially increasing hub distance, and adds an escape edge
// from every vertex to the forest-parent of its path's top (the paper's
// "shortcut from every vertex to the first vertex in a lower layer").
// Shortcut edges go through addEdge; the count is returned. The added
// edge count is O(V): V/log V hubs with log V shortcuts each, plus one
// escape edge per vertex.
func buildShortcuts(forestNext []int32, addEdge func(src, dst int32), spacing int) int64 {
	V := len(forestNext)
	if V == 0 {
		return 0
	}
	nodes, starts := forestPaths(forestNext)
	if spacing <= 0 {
		spacing = int(math.Ceil(math.Log2(float64(V + 1))))
	}
	if spacing < 1 {
		spacing = 1
	}
	var count int64
	for p := 0; p+1 < len(starts); p++ {
		fp := nodes[starts[p]:starts[p+1]]
		l := len(fp)
		// Hub-to-hub exponential shortcuts.
		numHubs := (l + spacing - 1) / spacing
		for h := 0; h < numHubs; h++ {
			src := fp[h*spacing]
			for step := 1; h+step < numHubs; step *= 2 {
				dst := fp[(h+step)*spacing]
				addEdge(src, dst)
				count++
			}
		}
		// Escape edges: jump past the rest of this path in one hop.
		top := fp[l-1]
		esc := forestNext[top]
		if esc >= 0 {
			for _, v := range fp {
				if v != top { // top already has the forest edge itself
					addEdge(v, esc)
					count++
				}
			}
		}
	}
	return count
}

// forestPaths is the Lemma 3.2 layered-path decomposition specialized to
// a parent-pointer forest, replacing the generic treepath machinery
// (children lists, per-path slices) the shortcut construction used to
// allocate per path-DAG path. Layers are computed by a Kahn sweep over
// the parent pointers with per-node (max, unique) aggregates; paths come
// back bottom-up, packed into one flat node buffer with start offsets
// (paths are nodes[starts[p]:starts[p+1]]).
func forestPaths(next []int32) (nodes []int32, starts []int32) {
	V := len(next)
	// childCount doubles as the Kahn in-degree; lmax/unique aggregate the
	// child layers exactly like treepath's sequential post-order.
	childCount := make([]int32, V)
	for _, p := range next {
		if p >= 0 {
			childCount[p]++
		}
	}
	layers := make([]int32, V)
	lmax := make([]int32, V)
	for i := range lmax {
		lmax[i] = -1
	}
	unique := make([]bool, V)
	queue := make([]int32, 0, V)
	for v := 0; v < V; v++ {
		if childCount[v] == 0 {
			queue = append(queue, int32(v))
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		switch {
		case lmax[v] < 0:
			layers[v] = 0
		case unique[v]:
			layers[v] = lmax[v]
		default:
			layers[v] = lmax[v] + 1
		}
		if p := next[v]; p >= 0 {
			switch {
			case layers[v] > lmax[p]:
				lmax[p], unique[p] = layers[v], true
			case layers[v] == lmax[p]:
				unique[p] = false
			}
			childCount[p]--
			if childCount[p] == 0 {
				queue = append(queue, p)
			}
		}
	}
	// A node is a path bottom iff no child shares its layer.
	hasEqChild := make([]bool, V)
	for v, p := range next {
		if p >= 0 && layers[p] == layers[int32(v)] {
			hasEqChild[p] = true
		}
	}
	nodes = make([]int32, 0, V)
	starts = append(starts, 0)
	for v := 0; v < V; v++ {
		if hasEqChild[v] {
			continue
		}
		u := int32(v)
		for {
			nodes = append(nodes, u)
			p := next[u]
			if p < 0 || layers[p] != layers[u] {
				break
			}
			u = p
		}
		starts = append(starts, int32(len(nodes)))
	}
	return nodes, starts
}
